examples/load_balancer.ml: Api Array Cluster Hw Kernelmodel List Popcorn Printf Sim Stats Types Workloads
