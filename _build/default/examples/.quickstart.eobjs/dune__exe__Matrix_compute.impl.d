examples/matrix_compute.ml: Api Cluster Hw Kernelmodel List Msg Popcorn Printf Sim Types Workloads
