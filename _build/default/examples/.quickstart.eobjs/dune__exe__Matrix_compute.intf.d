examples/matrix_compute.mli:
