examples/pipeline.ml: Api Array Cluster Hw Kernelmodel Msg Popcorn Printf Sim Types Workloads
