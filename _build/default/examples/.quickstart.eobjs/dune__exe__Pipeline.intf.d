examples/pipeline.mli:
