examples/quickstart.ml: Api Cluster Hw Kernelmodel Migration Msg Popcorn Printf Sim Types Workloads
