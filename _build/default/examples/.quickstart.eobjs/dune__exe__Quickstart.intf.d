examples/quickstart.mli:
