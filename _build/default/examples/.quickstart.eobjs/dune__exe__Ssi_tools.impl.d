examples/ssi_tools.ml: Api Balancer Cluster Hw Kernelmodel List Msg Popcorn Printf Sim Ssi Types
