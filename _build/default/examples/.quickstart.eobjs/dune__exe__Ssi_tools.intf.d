examples/ssi_tools.mli:
