(* Dynamic load balancing with thread migration: the capability SMP Linux
   gets from a shared runqueue, recovered on a replicated-kernel OS by
   migrating threads between kernels at runtime.

   We start 12 compute threads, all pinned by bad luck onto kernel 0, then
   run a balancer that watches per-kernel load (via the single-system
   image) and migrates threads toward idle kernels. Completion time drops
   accordingly.

   Run with: dune exec examples/load_balancer.exe *)

open Popcorn
module K = Kernelmodel

let threads = 12
let work_slices = 40

(* Sample each kernel's cumulative CPU-busy time every 250us; the deltas
   divided by capacity give per-kernel utilisation over time. *)
let sample_utilisation cluster eng series =
  let prev = Array.make 4 0 in
  let rec loop () =
    Sim.Engine.sleep eng (Sim.Time.us 250);
    Array.iteri
      (fun k ts ->
        let busy = K.Sched.total_busy (Types.kernel_of cluster k).Types.sched in
        Stats.Timeseries.add ts ~at:(Sim.Engine.now eng)
          (float_of_int (busy - prev.(k)));
        prev.(k) <- busy)
      series;
    loop ()
  in
  Sim.Engine.spawn eng ~name:"util-sampler" loop

let run ~balance =
  let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  let cluster = Cluster.boot machine ~kernels:4 ~cores_per_kernel:4 in
  let eng = machine.Hw.Machine.eng in
  let series =
    Array.init 4 (fun _ -> Stats.Timeseries.create ~bucket_ns:(Sim.Time.ms 1))
  in
  sample_utilisation cluster eng series;
  let elapsed = ref 0 and migrations = ref 0 in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let t0 = Sim.Engine.now eng in
            let latch = Workloads.Latch.create eng threads in
            for _ = 1 to threads do
              (* Everything lands on kernel 0: a skewed arrival pattern. *)
              ignore
                (Api.spawn th ~target:0 (fun worker ->
                     for _ = 1 to work_slices do
                       Api.compute worker (Sim.Time.us 100);
                       (* Cooperative migration point: follow the balancer's
                          advice, as Popcorn's scheduler hooks do. *)
                       if balance then begin
                         let kernel = Api.current_kernel worker in
                         let load = K.Sched.total_load kernel.Types.sched in
                         let here = kernel.Types.kid in
                         let best = ref here and best_load = ref load in
                         for k = 0 to Types.nkernels worker.Api.cluster - 1 do
                           let cand = Types.kernel_of worker.Api.cluster k in
                           let l = K.Sched.total_load cand.Types.sched in
                           if l + 1 < !best_load then begin
                             best := k;
                             best_load := l
                           end
                         done;
                         if !best <> here then begin
                           ignore (Api.migrate worker ~dst:!best);
                           incr migrations
                         end
                       end
                     done;
                     Workloads.Latch.arrive latch))
            done;
            Workloads.Latch.wait latch;
            elapsed := Sim.Engine.now eng - t0)
      in
      Api.wait_exit cluster proc);
  Sim.Engine.run ~until:(Sim.Time.ms 20) eng;
  (!elapsed, !migrations, series)

(* Render per-kernel utilisation (percent of the 4 cores busy) for the
   first few milliseconds. *)
let print_utilisation label series =
  Printf.printf "\n%s — per-kernel utilisation (%% of 4 cores, 1ms buckets):\n"
    label;
  Printf.printf "  %-6s %6s %6s %6s %6s\n" "t(ms)" "k0" "k1" "k2" "k3";
  let columns = Array.map Stats.Timeseries.normalised series in
  let times = List.map fst (Array.to_list columns |> List.concat) in
  let times = List.sort_uniq compare times in
  List.iteri
    (fun row at ->
      if row < 6 then begin
        Printf.printf "  %-6.1f" (float_of_int at /. 1e6);
        Array.iter
          (fun col ->
            let v =
              match List.assoc_opt at col with Some v -> v | None -> 0.
            in
            (* 4 cores per kernel: normalise to a percentage of capacity. *)
            Printf.printf " %5.0f%%" (100. *. v /. 4.))
          columns;
        print_newline ()
      end)
    times

let () =
  Printf.printf "%d threads x %d slices of 100us, all born on kernel 0\n"
    threads work_slices;
  let skewed, _, series_off = run ~balance:false in
  let balanced, migs, series_on = run ~balance:true in
  print_utilisation "no balancing" series_off;
  print_utilisation "with thread migration" series_on;
  Printf.printf "\n%-32s %12s\n" "configuration" "completion";
  Printf.printf "%-32s %12s\n" "no balancing (4 cores used)"
    (Sim.Time.to_string skewed);
  Printf.printf "%-32s %12s  (%d migrations)\n" "with thread migration"
    (Sim.Time.to_string balanced)
    migs;
  Printf.printf "\nspeedup from migration: %.2fx\n"
    (float_of_int skewed /. float_of_int balanced);
  assert (balanced < skewed)
