(* An OpenMP-style parallel kernel (think NPB) on the replicated-kernel OS:
   one process, N worker threads spanning all kernels, a shared input
   matrix that gets read-replicated, and per-worker output tiles that stay
   exclusively owned — demonstrating how the coherence protocol keeps
   sharing cheap when the access pattern is disciplined.

   Run with: dune exec examples/matrix_compute.exe *)

open Popcorn
module K = Kernelmodel

let page = 4096
let workers = 8
let input_pages = 16
let output_pages_per_worker = 4

let run ~kernels =
  let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  let cluster = Cluster.boot machine ~kernels ~cores_per_kernel:(16 / kernels) in
  let eng = machine.Hw.Machine.eng in
  let elapsed = ref 0 in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let t0 = Sim.Engine.now eng in
            (* The shared input: written once by the master... *)
            let input =
              match
                Api.mmap th ~len:(input_pages * page) ~prot:K.Vma.prot_rw
              with
              | Ok v -> v.K.Vma.start
              | Error e -> failwith e
            in
            for i = 0 to input_pages - 1 do
              match Api.write th ~addr:(input + (i * page)) with
              | Ok () -> ()
              | Error e -> failwith e
            done;
            (* ...and an output region, one tile per worker. *)
            let output =
              match
                Api.mmap th
                  ~len:(workers * output_pages_per_worker * page)
                  ~prot:K.Vma.prot_rw
              with
              | Ok v -> v.K.Vma.start
              | Error e -> failwith e
            in
            let latch = Workloads.Latch.create eng workers in
            for w = 0 to workers - 1 do
              ignore
                (Api.spawn th ~target:(w mod kernels) (fun worker ->
                     (* Read the whole input (read-only replication: every
                        kernel ends up with its own copy, no ping-pong). *)
                     for i = 0 to input_pages - 1 do
                       match Api.read worker ~addr:(input + (i * page)) with
                       | Ok _ -> ()
                       | Error e -> failwith e
                     done;
                     (* Compute, then write the private tile (exclusive
                        ownership migrates once and stays). *)
                     Api.compute worker (Sim.Time.us 400);
                     let tile =
                       output + (w * output_pages_per_worker * page)
                     in
                     for i = 0 to output_pages_per_worker - 1 do
                       match Api.write worker ~addr:(tile + (i * page)) with
                       | Ok () -> ()
                       | Error e -> failwith e
                     done;
                     Workloads.Latch.arrive latch))
            done;
            Workloads.Latch.wait latch;
            (* The master gathers the results: reads every tile back. *)
            for i = 0 to (workers * output_pages_per_worker) - 1 do
              match Api.read th ~addr:(output + (i * page)) with
              | Ok v -> assert (v >= 1)
              | Error e -> failwith e
            done;
            elapsed := Sim.Engine.now eng - t0)
      in
      Api.wait_exit cluster proc);
  Sim.Engine.run eng;
  let st = Msg.Transport.stats cluster.Types.fabric in
  (!elapsed, st.Msg.Transport.sent)

let () =
  Printf.printf
    "matrix kernel: %d workers, %d shared input pages, %d output pages\n\n"
    workers input_pages
    (workers * output_pages_per_worker);
  Printf.printf "%-28s %12s %10s\n" "configuration" "elapsed" "messages";
  List.iter
    (fun kernels ->
      let elapsed, msgs = run ~kernels in
      Printf.printf "%-28s %12s %10d\n"
        (Printf.sprintf "%d kernel(s) x %d cores" kernels (16 / kernels))
        (Sim.Time.to_string elapsed)
        msgs)
    [ 1; 2; 4; 8 ];
  print_newline ();
  print_endline
    "The same unmodified program runs on every configuration: one kernel";
  print_endline
    "needs no messages; spanning more kernels costs bounded replication";
  print_endline
    "traffic (read-only input replicates once per kernel, private tiles";
  print_endline
    "migrate once) while removing every shared kernel data structure."
