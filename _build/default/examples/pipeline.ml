(* A three-stage software pipeline (parse -> transform -> emit) whose
   stages live on different kernels and hand work over with distributed
   futexes — the POSIX synchronisation path of the single-system image.

   Each stage owns a mailbox page; stage N writes the page (ownership
   migrates to it), wakes stage N+1's futex, and sleeps on its own. The
   same binary would run unmodified on SMP Linux.

   Run with: dune exec examples/pipeline.exe *)

open Popcorn
module K = Kernelmodel

let page = 4096
let items = 20

let () =
  let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  let cluster = Cluster.boot machine ~kernels:4 ~cores_per_kernel:4 in
  let eng = machine.Hw.Machine.eng in
  let processed = Array.make 3 0 in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let mbox =
              match Api.mmap th ~len:(4 * page) ~prot:K.Vma.prot_rw with
              | Ok v -> v.K.Vma.start
              | Error e -> failwith e
            in
            let slot i = mbox + (i * page) in
            let wake_until t addr =
              while Api.futex_wake t ~addr ~count:1 = 0 do
                Api.compute t (Sim.Time.us 2)
              done
            in
            let latch = Workloads.Latch.create eng 2 in
            (* Stage 1 (transform) on kernel 1. *)
            ignore
              (Api.spawn th ~target:1 (fun t ->
                   for _ = 1 to items do
                     (match Api.futex_wait t ~addr:(slot 1) () with
                     | Api.Woken -> ()
                     | Api.Timed_out -> assert false);
                     (match Api.write t ~addr:(slot 1) with
                     | Ok () -> ()
                     | Error e -> failwith e);
                     Api.compute t (Sim.Time.us 30);
                     processed.(1) <- processed.(1) + 1;
                     wake_until t (slot 2)
                   done;
                   Workloads.Latch.arrive latch));
            (* Stage 2 (emit) on kernel 3. *)
            ignore
              (Api.spawn th ~target:3 (fun t ->
                   for _ = 1 to items do
                     (match Api.futex_wait t ~addr:(slot 2) () with
                     | Api.Woken -> ()
                     | Api.Timed_out -> assert false);
                     (match Api.read t ~addr:(slot 1) with
                     | Ok _ -> ()
                     | Error e -> failwith e);
                     Api.compute t (Sim.Time.us 10);
                     processed.(2) <- processed.(2) + 1
                   done;
                   Workloads.Latch.arrive latch));
            (* Stage 0 (parse) right here on kernel 0. *)
            for _ = 1 to items do
              Api.compute th (Sim.Time.us 20);
              (match Api.write th ~addr:(slot 0) with
              | Ok () -> ()
              | Error e -> failwith e);
              processed.(0) <- processed.(0) + 1;
              wake_until th (slot 1)
            done;
            Workloads.Latch.wait latch)
      in
      Api.wait_exit cluster proc);
  Sim.Engine.run eng;
  Printf.printf "pipeline finished at %s\n"
    (Sim.Time.to_string (Sim.Engine.now eng));
  Array.iteri
    (fun i n -> Printf.printf "  stage %d (kernel %d): %d items\n" i
        (match i with 0 -> 0 | 1 -> 1 | _ -> 3)
        n)
    processed;
  let st = Msg.Transport.stats cluster.Types.fabric in
  Printf.printf "inter-kernel messages: %d\n" st.Msg.Transport.sent;
  assert (Array.for_all (fun n -> n = items) processed)
