(* Quickstart: boot a replicated-kernel OS on a simulated 16-core box,
   create a process, span its thread group across kernels, migrate a
   thread, and watch the address space stay coherent.

   Run with: dune exec examples/quickstart.exe *)

open Popcorn
module K = Kernelmodel

let page = 4096

let () =
  (* A 2-socket, 16-core machine running 4 kernels of 4 cores each. *)
  let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  let cluster = Cluster.boot machine ~kernels:4 ~cores_per_kernel:4 in
  let eng = machine.Hw.Machine.eng in
  let say fmt =
    Printf.ksprintf
      (fun s -> Printf.printf "[%8s] %s\n" (Sim.Time.to_string (Sim.Engine.now eng)) s)
      fmt
  in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            say "process %d started on kernel %d" (Api.pid th)
              th.Api.task.K.Task.kernel;

            (* Map memory and write to it — plain Linux-looking calls. *)
            let vma =
              match Api.mmap th ~len:(4 * page) ~prot:K.Vma.prot_rw with
              | Ok v -> v
              | Error e -> failwith e
            in
            say "mmap'd 4 pages at 0x%x" vma.K.Vma.start;
            (match Api.write th ~addr:vma.K.Vma.start with
            | Ok () -> say "wrote page 0 locally"
            | Error e -> failwith e);

            (* Spawn a sibling on another kernel: same process, same
               address space, different kernel underneath. *)
            let latch = Workloads.Latch.create eng 1 in
            let _tid =
              Api.spawn th ~target:2 (fun sibling ->
                  say "sibling tid %d running on kernel %d" (Api.tid sibling)
                    sibling.Api.task.K.Task.kernel;
                  (match Api.read sibling ~addr:vma.K.Vma.start with
                  | Ok v ->
                      say "sibling reads page 0: sees version %d (coherent)" v
                  | Error e -> failwith e);
                  Workloads.Latch.arrive latch)
            in
            Workloads.Latch.wait latch;

            (* Migrate this very thread to kernel 3 and keep going. *)
            let b = Api.migrate th ~dst:3 in
            say
              "migrated to kernel %d in %s (save %s, messaging %s, import \
               %s, sched-in %s)"
              th.Api.task.K.Task.kernel
              (Sim.Time.to_string b.Migration.total_ns)
              (Sim.Time.to_string b.Migration.save_ctx_ns)
              (Sim.Time.to_string b.Migration.messaging_ns)
              (Sim.Time.to_string b.Migration.import_ns)
              (Sim.Time.to_string b.Migration.schedule_in_ns);

            (* Our pages follow us on demand. *)
            (match Api.read th ~addr:vma.K.Vma.start with
            | Ok v -> say "after migration, page 0 still readable (v%d)" v
            | Error e -> failwith e);
            Api.compute th (Sim.Time.us 50);
            say "done computing on kernel %d" th.Api.task.K.Task.kernel)
      in
      Api.wait_exit cluster proc;
      say "process exited; every kernel saw a single system image");
  Sim.Engine.run eng;
  let st = Msg.Transport.stats cluster.Types.fabric in
  Printf.printf
    "\nsimulated time: %s | inter-kernel messages: %d (doorbell IPIs: %d)\n"
    (Sim.Time.to_string (Sim.Engine.now eng))
    st.Msg.Transport.sent st.Msg.Transport.doorbells
