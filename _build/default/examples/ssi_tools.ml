(* Single-system-image tooling: a "ps" and "kill" that work across kernels
   exactly as they would on one Linux image, plus the kernel-level load
   balancer spreading a skewed workload automatically.

   Run with: dune exec examples/ssi_tools.exe *)

open Popcorn
module K = Kernelmodel

let () =
  let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  let cluster = Cluster.boot machine ~kernels:4 ~cores_per_kernel:4 in
  let eng = machine.Hw.Machine.eng in
  let balancer = Balancer.start ~period:(Sim.Time.us 500) ~threshold:1 cluster in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            (* Ten workers, all dumped on kernel 0; the balancer will
               redistribute them. One of them is a runaway we'll kill. *)
            let runaway = ref 0 in
            for i = 1 to 10 do
              let tid =
                Api.spawn th ~target:0 (fun child ->
                    let slices = if i = 1 then max_int else 50 in
                    (try
                       for _ = 1 to slices do
                         Api.compute child (Sim.Time.us 100)
                       done
                     with Api.Killed -> ()))
              in
              if i = 1 then runaway := tid
            done;
            Api.compute th (Sim.Time.ms 2);

            (* ps: one listing covering every kernel. *)
            let tasks = Api.global_tasks th in
            Printf.printf "global ps at %s: %d threads\n"
              (Sim.Time.to_string (Sim.Engine.now eng))
              (List.length tasks);
            List.iter
              (fun (tid, pid) ->
                let where =
                  match Ssi.locate_thread th.Api.cluster ~tid with
                  | Some k -> Printf.sprintf "kernel %d" k
                  | None -> "gone"
                in
                Printf.printf "  tid %-3d pid %-3d  %s\n" tid pid where)
              tasks;

            (* kill: terminate the runaway wherever the balancer moved it. *)
            let victim_at = Ssi.locate_thread th.Api.cluster ~tid:!runaway in
            let found = Api.kill th ~tid:!runaway in
            Printf.printf "\nkill tid %d (was on %s): %s\n" !runaway
              (match victim_at with
              | Some k -> Printf.sprintf "kernel %d" k
              | None -> "?")
              (if found then "terminated" else "not found");

            (* Wait for the rest to finish normally. *)
            while List.length (Api.global_tasks th) > 1 do
              Api.compute th (Sim.Time.ms 1)
            done)
      in
      Api.wait_exit cluster proc;
      Balancer.stop balancer);
  Sim.Engine.run eng;
  Printf.printf
    "\nfinished at %s; balancer issued %d migration hints; messages: %d\n"
    (Sim.Time.to_string (Sim.Engine.now eng))
    (Balancer.hints_issued balancer)
    (Msg.Transport.stats cluster.Types.fabric).Msg.Transport.sent
