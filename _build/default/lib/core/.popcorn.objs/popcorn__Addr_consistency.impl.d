lib/core/addr_consistency.ml: Hashtbl Hw Kernelmodel List Page_coherence Process_model Proto_util Sim Types
