lib/core/addr_consistency.mli: Hw Kernelmodel Sim Types
