lib/core/api.ml: Addr_consistency Balancer Cluster Dfutex Fork Hashtbl Hw Kernelmodel Migration Page_coherence Printf Proto_util Result Sim Ssi Thread_group Types Vfs
