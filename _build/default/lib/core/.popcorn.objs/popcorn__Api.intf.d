lib/core/api.mli: Dfutex Hw Kernelmodel Migration Sim Types
