lib/core/balancer.ml: Array Fun Hashtbl Kernelmodel List Msg Printf Proto_util Sim Types
