lib/core/balancer.mli: Sim Types
