lib/core/cluster.ml: Addr_consistency Array Balancer Dfutex Hashtbl Hw Kernelmodel List Migration Msg Page_coherence Printf Process_model Sim Ssi Thread_group Types Vfs
