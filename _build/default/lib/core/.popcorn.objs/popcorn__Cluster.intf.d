lib/core/cluster.mli: Hw Kernelmodel Sim Types
