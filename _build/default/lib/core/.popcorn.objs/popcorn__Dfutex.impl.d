lib/core/dfutex.ml: Hashtbl Hw Kernelmodel Msg Proto_util Queue Sim Types
