lib/core/dfutex.mli: Hw Sim Types
