lib/core/fork.ml: Addr_consistency Hashtbl Hw Kernelmodel List Process_model Proto_util Sim Types
