lib/core/fork.mli: Hw Kernelmodel Types
