lib/core/migration.ml: Format Hashtbl Hw Kernelmodel List Page_coherence Process_model Proto_util Sim Thread_group Types
