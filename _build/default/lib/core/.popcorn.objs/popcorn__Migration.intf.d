lib/core/migration.mli: Hw Kernelmodel Types
