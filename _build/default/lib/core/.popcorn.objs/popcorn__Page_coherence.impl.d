lib/core/page_coherence.ml: Engine Hashtbl Hw Kernelmodel List Msg Mutex Proto_util Sim Time Types
