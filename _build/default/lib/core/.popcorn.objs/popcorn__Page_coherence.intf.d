lib/core/page_coherence.mli: Hw Kernelmodel Types
