lib/core/process_model.ml: Hashtbl Hw Kernelmodel List Proto_util Sim Types
