lib/core/process_model.mli: Kernelmodel Sim Types
