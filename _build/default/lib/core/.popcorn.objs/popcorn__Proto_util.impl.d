lib/core/proto_util.ml: Engine List Msg Sim Types
