lib/core/proto_util.mli: Hw Sim Types
