lib/core/ssi.ml: Fun Hashtbl Kernelmodel List Msg Proto_util Sim Ssi_locate Types
