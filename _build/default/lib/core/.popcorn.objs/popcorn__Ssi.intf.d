lib/core/ssi.mli: Kernelmodel Types
