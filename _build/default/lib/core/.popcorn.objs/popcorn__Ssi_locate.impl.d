lib/core/ssi_locate.ml: Hashtbl Types
