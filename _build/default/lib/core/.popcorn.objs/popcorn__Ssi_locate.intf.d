lib/core/ssi_locate.mli: Types
