lib/core/thread_group.ml: Hashtbl Hw Kernelmodel List Process_model Proto_util Sim Ssi_locate Types
