lib/core/thread_group.mli: Hw Kernelmodel Types
