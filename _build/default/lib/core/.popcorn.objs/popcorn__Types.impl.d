lib/core/types.ml: Array Engine Format Hashtbl Hw Kernelmodel List Msg Mutex Printf Queue Sim String Trace Waitq
