lib/core/vfs.ml: Hashtbl Hw Proto_util Sim Types
