lib/core/vfs.mli: Hw Types
