(** Distributed address-space consistency: the mmap family over replicated
    VMA trees.

    The origin kernel owns the authoritative layout. mmap only updates the
    master; replicas learn {e lazily} on their first fault into a region
    ([Vma_lookup]), as Popcorn does. Destructive operations (munmap,
    mprotect) are pushed {e eagerly} to every member kernel with acks —
    each replica drops the affected range (layout, translations, frames)
    and refetches lazily. A process living on a single kernel performs all
    of this without any message. *)

open Types

val vma_op_cost : Sim.Time.t
(** Modelled VMA-tree manipulation work per operation. *)

(** {1 Application-facing entry points} (called on the thread's kernel) *)

val mmap :
  cluster ->
  kernel ->
  core:Hw.Topology.core ->
  pid:pid ->
  len:int ->
  prot:Kernelmodel.Vma.prot ->
  (Kernelmodel.Vma.vma, string) result

val munmap :
  cluster ->
  kernel ->
  core:Hw.Topology.core ->
  pid:pid ->
  start:int ->
  len:int ->
  (unit, string) result

val mprotect :
  cluster ->
  kernel ->
  core:Hw.Topology.core ->
  pid:pid ->
  start:int ->
  len:int ->
  prot:Kernelmodel.Vma.prot ->
  (unit, string) result

val fetch_vma :
  cluster -> kernel -> core:Hw.Topology.core -> pid:pid -> addr:int -> bool
(** Lazy replication: resolve a fault address with no covering VMA in the
    local replica against the origin's master layout, installing the
    covering VMA locally. Returns whether the address is mapped at all.
    Must not be called on the origin (its layout is authoritative). *)

(** {1 Message handlers} (wired by [Cluster.dispatch]) *)

val handle_mmap_req :
  cluster ->
  kernel ->
  src:int ->
  ticket:int ->
  pid:pid ->
  len:int ->
  prot:Kernelmodel.Vma.prot ->
  unit

val handle_munmap_req :
  cluster ->
  kernel ->
  src:int ->
  ticket:int ->
  pid:pid ->
  start:int ->
  len:int ->
  unit

val handle_mprotect_req :
  cluster ->
  kernel ->
  src:int ->
  ticket:int ->
  pid:pid ->
  start:int ->
  len:int ->
  prot:Kernelmodel.Vma.prot ->
  unit

val handle_vma_remove :
  cluster ->
  kernel ->
  src:int ->
  pid:pid ->
  start:int ->
  len:int ->
  ack_ticket:int ->
  unit

val handle_vma_protect :
  cluster ->
  kernel ->
  src:int ->
  pid:pid ->
  start:int ->
  len:int ->
  prot:Kernelmodel.Vma.prot ->
  ack_ticket:int ->
  unit

val handle_vma_fetch :
  cluster -> kernel -> src:int -> ticket:int -> pid:pid -> unit
(** Membership-enrolling layout snapshot for a kernel about to host its
    first member of [pid]; runs under the origin's mm lock. *)

val handle_vma_lookup :
  cluster -> kernel -> src:int -> ticket:int -> pid:pid -> addr:int -> unit
