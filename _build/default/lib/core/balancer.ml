(** Inter-kernel load balancing.

    A per-kernel balancer fiber periodically queries the other kernels'
    run-queue weights over the messaging layer, and when its own kernel is
    overloaded relative to the cluster it leaves a migration hint for one
    of its threads. Threads consume hints at cooperative migration points
    (the [Api.compute] boundary), which is how Popcorn migrates: the kernel
    proposes, the thread's next safe point disposes.

    This recovers the work-spreading that SMP Linux gets for free from its
    shared runqueues — one of the paper's "cost of the design" discussion
    points — and is exercised by the load_balancer example and tests. *)

open Types
module K = Kernelmodel

type t = {
  period : Sim.Time.t;
  threshold : int;  (** hint only if local load exceeds average by this. *)
  mutable hints_issued : int;
  mutable running : bool;
}

let handle_load_query cluster (kernel : kernel) ~src ~ticket =
  Proto_util.kernel_work cluster (Sim.Time.ns 200);
  let load =
    List.fold_left
      (fun acc core -> acc + K.Cpu.assigned (K.Sched.cpu kernel.sched core))
      0 (K.Sched.cores kernel.sched)
  in
  send cluster ~src:kernel.kid ~dst:src (Load_info { ticket; load })

let local_load (kernel : kernel) =
  List.fold_left
    (fun acc core -> acc + K.Cpu.assigned (K.Sched.cpu kernel.sched core))
    0 (K.Sched.cores kernel.sched)

(* One balancing round on [kernel]: gather loads, hint one thread away if
   overloaded. *)
let round t cluster (kernel : kernel) =
  let eng = eng cluster in
  let others =
    List.filter (fun k -> k <> kernel.kid)
      (List.init (nkernels cluster) Fun.id)
  in
  let loads = Hashtbl.create 8 in
  let g = Msg.Gather.create eng ~expected:(List.length others) in
  List.iter
    (fun dst ->
      let ticket =
        Msg.Rpc.register kernel.rpc (fun resp ->
            (match resp with
            | Load_info { load; _ } -> Hashtbl.replace loads dst load
            | _ -> ());
            Msg.Gather.ack g)
      in
      send cluster ~src:kernel.kid ~dst (Load_query { ticket }))
    others;
  Msg.Gather.wait g;
  let mine = local_load kernel in
  let total =
    Hashtbl.fold (fun _ l acc -> acc + l) loads mine
  in
  let avg = total / nkernels cluster in
  if mine > avg + t.threshold then begin
    (* Pick the emptiest kernel and the first hint-free live local task. *)
    let target =
      Hashtbl.fold
        (fun k l (bk, bl) -> if l < bl then (k, l) else (bk, bl))
        loads (kernel.kid, mine)
      |> fst
    in
    if target <> kernel.kid then begin
      let candidate =
        Hashtbl.fold
          (fun tid (task : K.Task.t) acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if
                  K.Task.is_live task
                  && not (Hashtbl.mem kernel.migrate_hints tid)
                then Some tid
                else None)
          kernel.tasks None
      in
      match candidate with
      | Some tid ->
          Hashtbl.replace kernel.migrate_hints tid target;
          t.hints_issued <- t.hints_issued + 1
      | None -> ()
    end
  end

(** Start balancer fibers on every kernel. They run until [stop]. *)
let start ?(period = Sim.Time.ms 1) ?(threshold = 2) cluster : t =
  let t = { period; threshold; hints_issued = 0; running = true } in
  Array.iter
    (fun kernel ->
      Sim.Engine.spawn (eng cluster)
        ~name:(Printf.sprintf "balancer-k%d" kernel.kid)
        (fun () ->
          let rec loop () =
            if t.running then begin
              Sim.Engine.sleep (eng cluster) t.period;
              if t.running then begin
                round t cluster kernel;
                loop ()
              end
            end
          in
          loop ()))
    cluster.kernels;
  t

let stop t = t.running <- false
let hints_issued t = t.hints_issued

(** Cooperative migration point: called by the API layer after compute
    slices. Returns the destination if this thread was asked to move. *)
let take_hint (kernel : kernel) ~tid =
  match Hashtbl.find_opt kernel.migrate_hints tid with
  | Some dst ->
      Hashtbl.remove kernel.migrate_hints tid;
      Some dst
  | None -> None
