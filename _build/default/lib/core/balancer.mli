(** Inter-kernel load balancing.

    Per-kernel balancer fibers periodically exchange run-queue weights over
    the messaging layer; an overloaded kernel leaves migration hints that
    its threads consume at cooperative migration points ([Api.compute]
    boundaries) — how Popcorn migrates: the kernel proposes, the thread's
    next safe point disposes. *)

open Types

type t

val start : ?period:Sim.Time.t -> ?threshold:int -> cluster -> t
(** Start balancer fibers on every kernel. [period] defaults to 1 ms;
    [threshold] (default 2) is how far above the cluster average a
    kernel's load must be before it sheds a thread. *)

val stop : t -> unit
(** Stop all balancer fibers (at their next period boundary). *)

val hints_issued : t -> int

val take_hint : kernel -> tid:tid -> int option
(** Consume the pending migration hint for [tid], if any (API layer). *)

val handle_load_query : cluster -> kernel -> src:int -> ticket:int -> unit
(** Message handler (wired by [Cluster.dispatch]). *)
