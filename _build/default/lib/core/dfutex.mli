(** Distributed futexes.

    Futexes of a distributed thread group are served by a global queue at
    the group's origin kernel: a waiter registers remotely and sleeps
    locally on a ticket; a waker asks the origin to pop waiters, and the
    origin routes a grant to each waiter's kernel. Groups living on a
    single kernel use the plain per-kernel futex table — no messages. *)

open Types

type wait_result = Woken | Timed_out

val wait :
  cluster ->
  kernel ->
  core:Hw.Topology.core ->
  pid:pid ->
  ?timeout:Sim.Time.t ->
  unit ->
  addr:int ->
  wait_result
(** FUTEX_WAIT. The userspace value check is the caller's job. On timeout
    the registration is retracted (a racing grant is dropped by the
    stale-ticket check). *)

val wake :
  cluster -> kernel -> core:Hw.Topology.core -> pid:pid -> addr:int ->
  count:int -> int
(** FUTEX_WAKE: wake up to [count] waiters; returns how many. *)

(** {1 Message handlers} (wired by [Cluster.dispatch]) *)

val handle_wait_req :
  cluster -> kernel -> pid:pid -> addr:int -> waiter:dfutex_waiter -> unit

val handle_wait_cancel :
  cluster -> kernel -> pid:pid -> addr:int -> wake_ticket:int -> unit

val handle_wake_req :
  cluster ->
  kernel ->
  src:int ->
  ticket:int ->
  pid:pid ->
  addr:int ->
  count:int ->
  unit

val handle_grant : kernel -> wake_ticket:int -> unit
