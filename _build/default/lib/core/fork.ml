(** fork(): new processes from existing ones, on any kernel.

    The child is a fresh single-threaded process homed at the calling
    thread's kernel (every kernel owns a pid slice, so no coordination is
    needed for the id). Its layout is a snapshot of the parent's master
    layout — fetched from the parent's origin when the caller is remote —
    and its logical page contents are inherited copy-on-write style: no
    data moves at fork time; the child's first touch of each page faults
    and materialises a private copy, which is exactly the cost profile of
    a COW fork. *)

open Types
module K = Kernelmodel

(* Page-table/bookkeeping copy cost per inherited page entry. *)
let pte_copy_cost = Sim.Time.ns 150
let fork_bookkeeping_cost = Sim.Time.us 4

(** Fork a child of [pid] at [kernel]; returns (child process, initial
    task). Called from the parent thread's fiber on [kernel]/[core]. *)
let fork cluster (kernel : kernel) ~core ~pid : process * K.Task.t =
  Proto_util.kernel_work cluster
    (params cluster).Hw.Params.syscall_overhead;
  let parent = proc_exn cluster pid in
  (* A consistent full snapshot of the parent's layout: read locally at
     the parent's origin, fetched over the wire otherwise. *)
  let layout =
    if kernel.kid = parent.origin then begin
      let r = replica_exn kernel pid in
      Hw.Spinlock.with_lock kernel.mm_lock ~core (fun () ->
          Proto_util.kernel_work cluster Addr_consistency.vma_op_cost;
          K.Vma.vmas r.vmas)
    end
    else
      match
        Proto_util.call_from cluster ~src:kernel ~src_core:core
          ~dst:parent.origin (fun ~ticket -> Vma_fetch_req { ticket; pid })
      with
      | Vma_fetch_resp { vmas; _ } -> vmas
      | _ -> assert false
  in
  Proto_util.kernel_work cluster fork_bookkeeping_cost;
  Proto_util.kernel_work cluster
    (Sim.Time.scale (List.length layout) Addr_consistency.vma_op_cost);
  let child = Process_model.create_master cluster ~origin:kernel in
  let r = Process_model.create_replica kernel child ~vma_proto:layout in
  (* Inherit logical contents (COW: versions now, data on first touch).
     The copied page-table entries are what fork pays for. *)
  let inherited = Hashtbl.length parent.page_version in
  Proto_util.kernel_work cluster (Sim.Time.scale inherited pte_copy_cost);
  Hashtbl.iter
    (fun vpn v -> Hashtbl.replace child.page_version vpn v)
    parent.page_version;
  let tid = K.Ids.next kernel.tid_alloc in
  let ctx =
    K.Context.fresh (Sim.Engine.rng (eng cluster)) ~use_fpu:false
  in
  (* The child's task is built from scratch (fork cannot re-animate a
     dummy thread — that fast path is for imports); the pool is primed
     only afterwards, for future imports into the child. *)
  let task = Process_model.make_task cluster kernel r ~tid ~ctx in
  Process_model.prime_dummy_pool cluster r;
  trace cluster ~cat:"fork" "pid %d forked pid %d on k%d" pid child.pid
    kernel.kid;
  (child, task)
