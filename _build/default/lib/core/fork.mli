(** fork(): new processes from existing ones, on any kernel.

    The child is a fresh single-threaded process homed at the calling
    thread's kernel; its layout snapshots the parent's master layout and
    its logical contents are inherited COW-style (no data copied at fork;
    first touches fault in private copies). *)

open Types

val fork :
  cluster ->
  kernel ->
  core:Hw.Topology.core ->
  pid:pid ->
  process * Kernelmodel.Task.t
(** Fork a child of [pid] at [kernel]; returns the child's master record
    and its initial task. Most callers want [Api.fork]. *)
