(** On-demand page coherence for distributed address spaces.

    Single-writer / multiple-reader protocol with a directory at the
    process's origin kernel: a page is writable on at most one kernel;
    read-only replicas may exist on several (unless the [read_replication]
    ablation option is off). Write faults revoke the writer and invalidate
    readers; read faults downgrade the writer and replicate. The origin
    holds a per-page fault lock from directory update until the requester
    acknowledges installing the grant (the randomized tests show the
    dual-writer race this prevents).

    Page contents are modelled as per-page version numbers: the owner's
    writes bump the version in place (shared physical memory — hardware,
    not kernel state); protocol messages carry versions so tests can check
    read-after-write coherence across kernels. *)

open Types

val page_size : int

(** {1 Fault path (thread side)} *)

val touch :
  cluster ->
  kernel ->
  replica ->
  core:Hw.Topology.core ->
  addr:int ->
  access:Kernelmodel.Fault.access ->
  (Kernelmodel.Fault.classification, string) result
(** Memory access by an application thread: classify against the local
    replica, service the fault if needed (locally at the origin, via the
    directory protocol otherwise). [Error] is a segfault — callers with a
    lazily-replicated layout should first try [Addr_consistency.fetch_vma]. *)

val write_commit : replica -> addr:int -> unit
(** Commit a write on a page this kernel owns writable: bumps the logical
    content version (a plain memory store on real hardware). *)

val read_version : replica -> addr:int -> int
(** Content version visible on this kernel (0 if never written). *)

(** {1 munmap support} *)

val drop_range_local :
  cluster -> kernel -> replica -> start:int -> len:int -> unit
(** Drop local translations, frames and cached content for a byte range. *)

val drop_range_directory : process -> start:int -> len:int -> unit
(** Directory + content-version cleanup for a byte range (origin only). *)

(** {1 Message handlers} (wired by [Cluster.dispatch]) *)

val handle_page_req :
  cluster ->
  kernel ->
  src:int ->
  ticket:int ->
  pid:pid ->
  vpn:int ->
  access:Kernelmodel.Fault.access ->
  unit

val handle_page_pull :
  cluster -> kernel -> src:int -> ticket:int -> pid:pid -> vpn:int -> unit

val handle_page_invalidate :
  cluster -> kernel -> src:int -> pid:pid -> vpn:int -> ack_ticket:int -> unit

val handle_page_downgrade :
  cluster -> kernel -> src:int -> pid:pid -> vpn:int -> ack_ticket:int -> unit
