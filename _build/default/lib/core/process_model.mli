(** Creation and bookkeeping of distributed processes and their per-kernel
    replicas. *)

open Types

val task_construct_cost : Sim.Time.t
(** Full task-struct + kernel-stack construction (clone slow path). *)

val dummy_adopt_cost : Sim.Time.t
(** Re-animating a pre-spawned dummy thread (the paper's fast path). *)

val create_master : cluster -> origin:kernel -> process
(** Allocate a pid from the origin's slice and register the master record. *)

val create_replica :
  kernel -> process -> vma_proto:Kernelmodel.Vma.vma list -> replica
(** Materialise this kernel's replica from a layout snapshot. *)

val mark_distributed : process -> cluster -> unit
(** Flip the fast-path flag on every known replica of a spanning group. *)

val add_member_kernel : process -> int -> unit

val make_task :
  cluster -> kernel -> replica -> tid:tid -> ctx:Kernelmodel.Context.t ->
  Kernelmodel.Task.t
(** Brand-new thread on [kernel]: charges acquisition (pool or full
    construction) and counts a new live thread. *)

val adopt_task : cluster -> kernel -> replica -> Kernelmodel.Task.t -> unit
(** Adopt a migrating task: same acquisition cost, live count unchanged. *)

val prime_dummy_pool : cluster -> replica -> unit

val remove_member_local : kernel -> Kernelmodel.Task.t -> unit
(** Drop a task from this kernel's tables; the live-count decrement is
    routed to the origin separately. *)

val note_thread_exit : cluster -> kernel -> process -> unit
(** Origin-side: account one exit; the last one wakes the exit waiters
    and, when [reap_on_exit] is set, tears the process down
    cluster-wide. *)

val reap : cluster -> kernel -> process -> unit
(** Origin-side full teardown: free frames and replicas everywhere, reset
    the master tables. *)

val handle_group_exit_notify : cluster -> kernel -> pid:pid -> unit
(** Member-kernel cleanup on group death (wired by [Cluster.dispatch]). *)
