(** Thread location: which kernel hosts a tid right now.

    Simulation-level read of the per-kernel task tables; the real system
    does a local pid-hash walk plus origin forwarding. Shared by the kill
    path and the SSI services. *)

open Types

let locate cluster ~tid =
  let n = nkernels cluster in
  let rec scan k =
    if k >= n then None
    else if Hashtbl.mem (kernel_of cluster k).tasks tid then Some k
    else scan (k + 1)
  in
  scan 0
