(** Thread location: which kernel hosts a tid right now.

    Simulation-level read of the per-kernel task tables; the real system
    does a local pid-hash walk plus origin forwarding. Shared by the kill
    path and the SSI services. *)

open Types

val locate : cluster -> tid:tid -> int option
