(** Minimal virtual filesystem with remote-syscall forwarding.

    Single-system-image file semantics: one kernel (kernel 0, modelling the
    kernel that owns the storage device and its page cache) serves every
    file operation; threads on other kernels forward syscalls over the
    messaging layer, exactly as Popcorn routes device-bound syscalls to the
    owning kernel. File descriptors are per-process with server-side
    cursors, so a group's threads share fds wherever they run. *)

open Types

let server_kernel = 0

(* Server-side cost: dentry/page-cache work plus per-byte copy charged via
   the wire size on remote ops; local ops charge the copy here. *)
let vfs_op_cost = Sim.Time.ns 600

let serve cluster ~pid ~(op : vfs_op) : (int, string) result * int =
  let vfs = cluster.vfs in
  Proto_util.kernel_work cluster vfs_op_cost;
  vfs.vfs_ops <- vfs.vfs_ops + 1;
  match op with
  | Vfs_open path ->
      let file =
        match Hashtbl.find_opt vfs.files path with
        | Some f -> f
        | None ->
            let f = { size = 0; version = 0 } in
            Hashtbl.add vfs.files path f;
            f
      in
      let fd = vfs.next_fd in
      vfs.next_fd <- fd + 1;
      Hashtbl.replace vfs.fds (pid, fd) { file; pos = 0 };
      (Ok fd, 0)
  | Vfs_read { fd; len } -> (
      match Hashtbl.find_opt vfs.fds (pid, fd) with
      | None -> (Error "bad file descriptor", 0)
      | Some e ->
          let n = max 0 (min len (e.file.size - e.pos)) in
          e.pos <- e.pos + n;
          (Ok n, n))
  | Vfs_write { fd; len } -> (
      match Hashtbl.find_opt vfs.fds (pid, fd) with
      | None -> (Error "bad file descriptor", 0)
      | Some e ->
          e.pos <- e.pos + len;
          e.file.size <- max e.file.size e.pos;
          e.file.version <- e.file.version + 1;
          (Ok len, 0))
  | Vfs_seek { fd; pos } -> (
      match Hashtbl.find_opt vfs.fds (pid, fd) with
      | None -> (Error "bad file descriptor", 0)
      | Some e ->
          if pos < 0 then (Error "invalid offset", 0)
          else begin
            e.pos <- pos;
            (Ok pos, 0)
          end)
  | Vfs_close fd ->
      if Hashtbl.mem vfs.fds (pid, fd) then begin
        Hashtbl.remove vfs.fds (pid, fd);
        (Ok 0, 0)
      end
      else (Error "bad file descriptor", 0)

(** Message handler on the server kernel. *)
let handle_req cluster (kernel : kernel) ~src ~ticket ~pid ~op =
  let result, data_bytes = serve cluster ~pid ~op in
  send cluster ~src:kernel.kid ~dst:src (Vfs_resp { ticket; result; data_bytes })

(** Issue one file syscall from a thread on [kernel]/[core]: served
    locally on the device-owning kernel, forwarded otherwise. *)
let syscall cluster (kernel : kernel) ~core ~pid (op : vfs_op) :
    (int, string) result =
  Proto_util.kernel_work cluster
    (params cluster).Hw.Params.syscall_overhead;
  if kernel.kid = server_kernel then begin
    (* Local: charge the data copy the wire would have carried. *)
    let result, data_bytes = serve cluster ~pid ~op in
    let copy_bytes =
      data_bytes + match op with Vfs_write { len; _ } -> len | _ -> 0
    in
    if copy_bytes > 0 then
      Proto_util.kernel_work cluster
        (Hw.Params.copy_cost (params cluster) ~bytes:copy_bytes
           ~cross_socket:false);
    result
  end
  else begin
    match
      Proto_util.call_from cluster ~src:kernel ~src_core:core
        ~dst:server_kernel (fun ~ticket -> Vfs_req { ticket; pid; op })
    with
    | Vfs_resp { result; _ } -> result
    | _ -> assert false
  end

let total_ops cluster = cluster.vfs.vfs_ops
