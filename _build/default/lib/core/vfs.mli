(** Minimal virtual filesystem with remote-syscall forwarding.

    One kernel (kernel 0, modelling the owner of the storage device and
    its page cache) serves every file operation; threads on other kernels
    forward syscalls over the messaging layer, as Popcorn routes
    device-bound syscalls to the owning kernel. File descriptors are
    per-process with server-side cursors, so a group's threads share fds
    wherever they run. *)

open Types

val server_kernel : int
(** The kernel that owns the device (0). *)

val syscall :
  cluster ->
  kernel ->
  core:Hw.Topology.core ->
  pid:pid ->
  vfs_op ->
  (int, string) result
(** Issue one file syscall from a thread on [kernel]/[core]: served
    locally on the device-owning kernel, forwarded otherwise. The [int]
    result is the fd for open, the byte count for read/write, 0 for
    close. *)

val handle_req :
  cluster -> kernel -> src:int -> ticket:int -> pid:pid -> op:vfs_op -> unit
(** Server-side message handler (wired by [Cluster.dispatch]). *)

val total_ops : cluster -> int
