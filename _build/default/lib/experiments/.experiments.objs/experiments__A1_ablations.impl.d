lib/experiments/a1_ablations.ml: Api Common Kernelmodel Migration Popcorn Printf Sim Stats Types Workloads
