lib/experiments/a2_granularity.ml: Common List Popcorn Printf Stats Workloads
