lib/experiments/common.ml: Engine Hw Multikernel Popcorn Sim Smp Time
