lib/experiments/f1_thread_create.ml: Api Common Engine List Popcorn Sim Smp Smp_api Smp_os Stats Time Types
