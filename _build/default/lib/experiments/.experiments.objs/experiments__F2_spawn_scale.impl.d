lib/experiments/f2_spawn_scale.ml: Common Hw List Multikernel Popcorn Smp Stats Workloads
