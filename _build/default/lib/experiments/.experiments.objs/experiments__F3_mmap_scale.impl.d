lib/experiments/f3_mmap_scale.ml: Common List Popcorn Smp Stats Workloads
