lib/experiments/f4_page_fault.ml: Api Common Engine Kernelmodel List Popcorn Sim Smp Stats Time Types Workloads
