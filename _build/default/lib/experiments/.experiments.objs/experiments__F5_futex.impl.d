lib/experiments/f5_futex.ml: Api Common Engine List Popcorn Sim Smp Smp_api Smp_os Stats Time Types Workloads
