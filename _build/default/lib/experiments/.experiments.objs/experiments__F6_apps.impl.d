lib/experiments/f6_apps.ml: Common Hw List Multikernel Popcorn Printf Smp Stats Workloads
