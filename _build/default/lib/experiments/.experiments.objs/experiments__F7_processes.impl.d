lib/experiments/f7_processes.ml: Api Common Kernelmodel List Popcorn Printf Result Smp Smp_api Smp_os Stats Types Workloads
