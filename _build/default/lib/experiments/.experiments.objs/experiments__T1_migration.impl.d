lib/experiments/t1_migration.ml: Api Common Kernelmodel Migration Popcorn Sim Stats Types
