lib/experiments/t2_messaging.ml: Common Engine Hw List Msg Sim Stats Time
