lib/experiments/t3_syscalls.ml: Api Common Kernelmodel List Popcorn Printf Result Sim Stats Types Workloads
