lib/hw/cacheline.ml: Engine Params Sim Time Topology Waitq
