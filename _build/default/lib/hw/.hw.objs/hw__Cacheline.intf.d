lib/hw/cacheline.mli: Engine Params Sim Time Topology
