lib/hw/ipi.ml: Engine Params Sim Time Topology
