lib/hw/ipi.mli: Engine Params Sim Time Topology
