lib/hw/machine.ml: Engine Ipi Memory Params Sim Topology
