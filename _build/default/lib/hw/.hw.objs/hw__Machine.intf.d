lib/hw/machine.mli: Engine Ipi Memory Params Sim Time Topology
