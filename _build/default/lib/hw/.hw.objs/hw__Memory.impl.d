lib/hw/memory.ml: Array Bytes Stack Topology
