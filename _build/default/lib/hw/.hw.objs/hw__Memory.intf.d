lib/hw/memory.mli: Topology
