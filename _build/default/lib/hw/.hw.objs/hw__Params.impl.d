lib/hw/params.ml: Sim Stdlib Time
