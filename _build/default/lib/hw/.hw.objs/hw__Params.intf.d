lib/hw/params.mli: Sim Time
