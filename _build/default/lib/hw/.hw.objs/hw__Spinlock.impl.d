lib/hw/spinlock.ml: Engine Params Queue Sim Time Topology
