lib/hw/spinlock.mli: Engine Params Sim Time Topology
