lib/hw/topology.ml: Format Fun List
