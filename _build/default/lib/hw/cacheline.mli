open Sim

(** A contended shared cache line.

    Models the hardware serialisation of atomic read-modify-write operations
    on one line (lock prefixes, xadd on mmap_sem's count, runqueue counters):
    concurrent ops queue at the line's home and each pays the
    coherence-transfer cost from the previous owner core. This is the
    first-order reason shared-memory kernels stop scaling — the paper's
    motivation — so the SMP baseline charges every shared-structure atomic
    through one of these. *)

type t

val create : Engine.t -> Params.t -> Topology.t -> name:string -> t

val access : t -> core:Topology.core -> unit
(** Perform one atomic op from [core]: the calling fiber is delayed by the
    queueing time plus the line transfer from the previous owner. *)

val ops : t -> int
val total_wait : t -> Time.t
val reset_stats : t -> unit
