open Sim

type t = {
  eng : Engine.t;
  params : Params.t;
  topo : Topology.t;
  mutable sent : int;
}

let create eng params topo = { eng; params; topo; sent = 0 }

let delivery_latency t ~src ~dst =
  let base = Time.add t.params.Params.ipi_latency t.params.Params.irq_entry in
  match Topology.distance t.topo src dst with
  | Topology.Self | Topology.Same_socket -> base
  | Topology.Cross_socket -> Time.add base (Time.ns 300)

let send t ~src ~dst handler =
  t.sent <- t.sent + 1;
  Engine.schedule t.eng ~after:(delivery_latency t ~src ~dst) handler

let sent t = t.sent
