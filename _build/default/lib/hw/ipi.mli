open Sim

(** Inter-processor interrupts.

    An IPI is the doorbell mechanism of the Popcorn messaging layer: after
    writing a message into a shared-memory ring, the sender kicks the
    destination core. Delivery cost depends on socket distance. *)

type t

val create : Engine.t -> Params.t -> Topology.t -> t

val send :
  t -> src:Topology.core -> dst:Topology.core -> (unit -> unit) -> unit
(** Deliver: after the modelled latency, run the handler (a fresh fiber, as
    if in interrupt context on [dst]). *)

val delivery_latency : t -> src:Topology.core -> dst:Topology.core -> Time.t
(** The latency [send] will charge, exposed for cost breakdowns. *)

val sent : t -> int
(** Total IPIs sent (a contention/overhead metric reported by benches). *)
