open Sim

(** The simulated machine: engine, topology, parameters, physical memory and
    IPI fabric bundled together. Every OS model (Popcorn, SMP Linux,
    multikernel) boots on a [Machine.t]. *)

type t = {
  eng : Engine.t;
  params : Params.t;
  topo : Topology.t;
  mem : Memory.t;
  ipi : Ipi.t;
}

val create :
  ?seed:int ->
  ?params:Params.t ->
  ?frames_per_socket:int ->
  sockets:int ->
  cores_per_socket:int ->
  unit ->
  t
(** Build a machine with a fresh engine. [frames_per_socket] defaults to
    65536 (256 MiB of 4 KiB pages per socket). *)

val now : t -> Time.t
val compute : t -> Time.t -> unit
(** A task performing pure computation for the given duration. *)

val copy : t -> bytes:int -> src_socket:int -> dst_socket:int -> unit
(** A task performing a memory copy; sleeps for the modelled duration. *)

val line_access : t -> from:Topology.core -> core:Topology.core -> unit
(** A task pulling one cache line last touched by [from] into [core]. *)
