type frame = int

type t = {
  topo : Topology.t;
  frames_per_socket : int;
  free_lists : frame Stack.t array; (* one per socket *)
  allocated : Bytes.t; (* 1 byte per frame: 0 free, 1 used *)
  mutable used : int;
}

let create topo ~frames_per_socket =
  assert (frames_per_socket > 0);
  let sockets = Topology.sockets topo in
  let free_lists = Array.init sockets (fun _ -> Stack.create ()) in
  for s = sockets - 1 downto 0 do
    (* Push descending so frames pop in ascending order. *)
    for i = frames_per_socket - 1 downto 0 do
      Stack.push ((s * frames_per_socket) + i) free_lists.(s)
    done
  done;
  {
    topo;
    frames_per_socket;
    free_lists;
    allocated = Bytes.make (sockets * frames_per_socket) '\000';
    used = 0;
  }

let frames_per_socket t = t.frames_per_socket
let total_frames t = Topology.sockets t.topo * t.frames_per_socket

let take t node =
  match Stack.pop_opt t.free_lists.(node) with
  | None -> None
  | Some f ->
      Bytes.set t.allocated f '\001';
      t.used <- t.used + 1;
      Some f

let alloc t ~node =
  assert (node >= 0 && node < Topology.sockets t.topo);
  match take t node with
  | Some f -> Some f
  | None ->
      let sockets = Topology.sockets t.topo in
      let rec try_nodes i =
        if i >= sockets then None
        else if i = node then try_nodes (i + 1)
        else match take t i with Some f -> Some f | None -> try_nodes (i + 1)
      in
      try_nodes 0

let alloc_exn t ~node =
  match alloc t ~node with
  | Some f -> f
  | None -> failwith "Memory.alloc_exn: out of physical frames"

let node_of_frame t f =
  assert (f >= 0 && f < total_frames t);
  f / t.frames_per_socket

let free t f =
  if f < 0 || f >= total_frames t then
    invalid_arg "Memory.free: frame out of range";
  if Bytes.get t.allocated f = '\000' then
    invalid_arg "Memory.free: double free";
  Bytes.set t.allocated f '\000';
  t.used <- t.used - 1;
  Stack.push f t.free_lists.(node_of_frame t f)

let used_count t = t.used
let free_count t = total_frames t - t.used
