(** Physical memory: per-socket frame pools.

    Frames are integers numbered node-major, so [node_of_frame] is a pure
    division. Double frees are detected eagerly. *)

type t

type frame = int

val create : Topology.t -> frames_per_socket:int -> t

val frames_per_socket : t -> int
val total_frames : t -> int

val alloc : t -> node:int -> frame option
(** Allocate preferring [node], falling back to other sockets in ascending
    node order; [None] when physical memory is exhausted. *)

val alloc_exn : t -> node:int -> frame
(** @raise Failure when out of memory. *)

val free : t -> frame -> unit
(** @raise Invalid_argument on double free or out-of-range frame. *)

val node_of_frame : t -> frame -> int

val free_count : t -> int
val used_count : t -> int
