open Sim

type t = {
  l1_hit : Time.t;
  line_local : Time.t;
  line_same_socket : Time.t;
  line_cross_socket : Time.t;
  dram_local : Time.t;
  dram_remote : Time.t;
  spin_bounce : Time.t;
  ipi_latency : Time.t;
  irq_entry : Time.t;
  syscall_overhead : Time.t;
  context_switch : Time.t;
  copy_bandwidth_bytes_per_us : int;
  copy_bandwidth_cross_bytes_per_us : int;
  page_table_walk : Time.t;
  tlb_flush_local : Time.t;
  tlb_shootdown_per_core : Time.t;
  page_size : int;
}

let default =
  {
    l1_hit = Time.ns 1;
    line_local = Time.ns 4;
    line_same_socket = Time.ns 40;
    line_cross_socket = Time.ns 130;
    dram_local = Time.ns 90;
    dram_remote = Time.ns 150;
    spin_bounce = Time.ns 45;
    ipi_latency = Time.ns 1200;
    irq_entry = Time.ns 400;
    syscall_overhead = Time.ns 120;
    context_switch = Time.ns 1500;
    copy_bandwidth_bytes_per_us = 8_000;
    copy_bandwidth_cross_bytes_per_us = 4_500;
    page_table_walk = Time.ns 250;
    tlb_flush_local = Time.ns 200;
    tlb_shootdown_per_core = Time.ns 500;
    page_size = 4096;
  }

let copy_cost t ~bytes ~cross_socket =
  let bw =
    if cross_socket then t.copy_bandwidth_cross_bytes_per_us
    else t.copy_bandwidth_bytes_per_us
  in
  (* Fixed startup cost plus bandwidth term, rounded up to 1ns. *)
  let startup = if cross_socket then t.dram_remote else t.dram_local in
  Time.add startup (Stdlib.max 1 (bytes * 1000 / bw))

let line_transfer t ~same_core ~same_socket =
  if same_core then t.line_local
  else if same_socket then t.line_same_socket
  else t.line_cross_socket
