open Sim

(** Calibrated hardware cost parameters.

    All latencies are in simulated nanoseconds. The defaults approximate a
    dual-socket Intel Xeon of the paper's era (Westmere/Sandy Bridge class,
    as used by the Popcorn Linux evaluation): cache-to-cache transfer costs,
    IPI delivery, syscall and context-switch overheads, and memory-copy
    bandwidth. Experiments depend on the {e relative} magnitudes (local op ≪
    coherence miss ≪ IPI + message ≪ page copy), not the absolute values. *)

type t = {
  (* Cache / coherence *)
  l1_hit : Time.t;  (** load serviced by the local L1. *)
  line_local : Time.t;  (** line already exclusive in this core's cache. *)
  line_same_socket : Time.t;  (** line owned by a sibling core (via LLC). *)
  line_cross_socket : Time.t;  (** line owned by a core on another socket. *)
  dram_local : Time.t;  (** local-node DRAM access. *)
  dram_remote : Time.t;  (** remote-node DRAM access. *)
  spin_bounce : Time.t;
      (** extra coherence traffic per additional spinner on a contended
          ticket lock, paid on each lock handoff. *)
  (* Interrupts / kernel entry *)
  ipi_latency : Time.t;  (** IPI send to handler entry on the target core. *)
  irq_entry : Time.t;  (** interrupt prologue/epilogue on the target. *)
  syscall_overhead : Time.t;  (** user->kernel->user round trip. *)
  context_switch : Time.t;  (** scheduler switch between two tasks. *)
  (* Memory operations *)
  copy_bandwidth_bytes_per_us : int;  (** intra-socket memcpy bandwidth. *)
  copy_bandwidth_cross_bytes_per_us : int;  (** cross-socket memcpy. *)
  page_table_walk : Time.t;  (** software fault: walk + PTE update. *)
  tlb_flush_local : Time.t;
  tlb_shootdown_per_core : Time.t;
      (** per-remote-core cost of a TLB shootdown (IPI + ack wait is modelled
          separately by the caller; this is the handler work). *)
  page_size : int;  (** bytes per page (4 KiB). *)
}

val default : t
(** The calibrated dual-socket x86 defaults described above. *)

val copy_cost : t -> bytes:int -> cross_socket:bool -> Time.t
(** Latency to copy [bytes] between two buffers. *)

val line_transfer : t -> same_core:bool -> same_socket:bool -> Time.t
(** Cost for a core to obtain a cache line in exclusive state, given where
    the line currently lives. *)
