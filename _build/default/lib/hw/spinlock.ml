open Sim

type waiter = { core : Topology.core; enqueued_at : Time.t; resume : unit -> unit }

type stats = {
  acquisitions : int;
  contended : int;
  total_wait : Time.t;
  total_hold : Time.t;
  max_waiters : int;
}

type t = {
  eng : Engine.t;
  params : Params.t;
  topo : Topology.t;
  name : string;
  mutable holder : Topology.core option;
  mutable last_holder : Topology.core;
  mutable acquired_at : Time.t;
  waiters : waiter Queue.t;
  mutable st_acq : int;
  mutable st_contended : int;
  mutable st_wait : Time.t;
  mutable st_hold : Time.t;
  mutable st_max_waiters : int;
}

let create eng params topo ~name =
  {
    eng;
    params;
    topo;
    name;
    holder = None;
    last_holder = 0;
    acquired_at = Time.zero;
    waiters = Queue.create ();
    st_acq = 0;
    st_contended = 0;
    st_wait = Time.zero;
    st_hold = Time.zero;
    st_max_waiters = 0;
  }

let transfer_cost t ~from ~core =
  let same_core = from = core in
  let same_socket = Topology.same_socket t.topo from core in
  Params.line_transfer t.params ~same_core ~same_socket

let note_acquired t core =
  t.holder <- Some core;
  t.last_holder <- core;
  t.acquired_at <- Engine.now t.eng;
  t.st_acq <- t.st_acq + 1

let acquire t ~core =
  match t.holder with
  | None ->
      (* Uncontended: pay the cost of pulling the lock line exclusive. *)
      Engine.sleep t.eng (transfer_cost t ~from:t.last_holder ~core);
      (* A same-instant racer may have taken the lock while we slept. *)
      if t.holder = None then note_acquired t core
      else begin
        t.st_contended <- t.st_contended + 1;
        let t0 = Engine.now t.eng in
        Engine.suspend t.eng (fun resume ->
            Queue.push { core; enqueued_at = t0; resume } t.waiters;
            t.st_max_waiters <-
              max t.st_max_waiters (Queue.length t.waiters));
        t.st_wait <- Time.add t.st_wait (Time.sub (Engine.now t.eng) t0);
        note_acquired t core
      end
  | Some _ ->
      t.st_contended <- t.st_contended + 1;
      let t0 = Engine.now t.eng in
      Engine.suspend t.eng (fun resume ->
          Queue.push { core; enqueued_at = t0; resume } t.waiters;
          t.st_max_waiters <- max t.st_max_waiters (Queue.length t.waiters));
      t.st_wait <- Time.add t.st_wait (Time.sub (Engine.now t.eng) t0);
      note_acquired t core

let try_acquire t ~core =
  match t.holder with
  | Some _ -> false
  | None ->
      Engine.sleep t.eng (transfer_cost t ~from:t.last_holder ~core);
      if t.holder = None then begin
        note_acquired t core;
        true
      end
      else false

let release t =
  match t.holder with
  | None -> invalid_arg ("Spinlock.release (" ^ t.name ^ "): not held")
  | Some from ->
      t.st_hold <-
        Time.add t.st_hold (Time.sub (Engine.now t.eng) t.acquired_at);
      t.holder <- None;
      (match Queue.take_opt t.waiters with
      | None -> ()
      | Some w ->
          (* Handoff: line transfer to the winner plus one coherence bounce
             per remaining spinner re-reading the now-invalid line. *)
          let remaining = Queue.length t.waiters in
          let cost =
            Time.add
              (transfer_cost t ~from ~core:w.core)
              (Time.scale remaining t.params.Params.spin_bounce)
          in
          (* Mark as in-handoff so arriving acquirers queue behind. *)
          t.holder <- Some w.core;
          Engine.schedule t.eng ~after:cost w.resume)

let holder t = t.holder
let waiters t = Queue.length t.waiters

let stats t =
  {
    acquisitions = t.st_acq;
    contended = t.st_contended;
    total_wait = t.st_wait;
    total_hold = t.st_hold;
    max_waiters = t.st_max_waiters;
  }

let reset_stats t =
  t.st_acq <- 0;
  t.st_contended <- 0;
  t.st_wait <- Time.zero;
  t.st_hold <- Time.zero;
  t.st_max_waiters <- 0

let with_lock t ~core f =
  acquire t ~core;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
