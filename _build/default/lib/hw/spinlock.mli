open Sim

(** Ticket spinlock with a cache-coherence contention model.

    This is the mechanism whose scaling behaviour the paper's SMP-Linux
    baseline suffers from. The model follows the classic analysis of ticket
    locks on cache-coherent x86: every lock handoff transfers the lock's
    cache line from the releasing core to the next-in-line waiter {e and}
    re-invalidates the line in every other spinner's cache, so the handoff
    cost grows linearly with the number of waiters ([Params.spin_bounce] per
    extra spinner). Under [n]-core contention the per-critical-section cost
    is [cs + transfer + (n-1)*bounce], which reproduces the throughput
    collapse seen on real many-core machines.

    Waiting is modelled as a latency-accurate suspension rather than by
    burning simulated CPU (see DESIGN.md); FIFO order matches ticket-lock
    fairness. *)

type t

type stats = {
  acquisitions : int;
  contended : int;  (** acquisitions that found the lock held. *)
  total_wait : Time.t;  (** summed queueing delay across acquisitions. *)
  total_hold : Time.t;  (** summed hold time. *)
  max_waiters : int;
}

val create :
  Engine.t -> Params.t -> Topology.t -> name:string -> t

val acquire : t -> core:Topology.core -> unit
(** Acquire from [core]; the calling fiber is delayed by the modelled
    uncontended transfer cost or by the full queueing delay. *)

val try_acquire : t -> core:Topology.core -> bool
(** Non-blocking attempt; on success the caller still pays the line-transfer
    cost via a fiber sleep. *)

val release : t -> unit
(** Release; hands off to the oldest waiter, charging the handoff cost. *)

val holder : t -> Topology.core option
val waiters : t -> int
val stats : t -> stats
val reset_stats : t -> unit

val with_lock : t -> core:Topology.core -> (unit -> 'a) -> 'a
