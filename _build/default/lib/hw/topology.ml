type t = { sockets : int; cores_per_socket : int }

type core = int

let create ~sockets ~cores_per_socket =
  assert (sockets > 0 && cores_per_socket > 0);
  { sockets; cores_per_socket }

let sockets t = t.sockets
let cores_per_socket t = t.cores_per_socket
let total_cores t = t.sockets * t.cores_per_socket

let socket_of t core =
  assert (core >= 0 && core < total_cores t);
  core / t.cores_per_socket

let cores_of_socket t s =
  assert (s >= 0 && s < t.sockets);
  List.init t.cores_per_socket (fun i -> (s * t.cores_per_socket) + i)

let all_cores t = List.init (total_cores t) Fun.id

let same_socket t a b = socket_of t a = socket_of t b

type distance = Self | Same_socket | Cross_socket

let distance t a b =
  if a = b then Self
  else if same_socket t a b then Same_socket
  else Cross_socket

let pp fmt t =
  Format.fprintf fmt "%d socket(s) x %d core(s) = %d cores" t.sockets
    t.cores_per_socket (total_cores t)
