(** Machine topology: sockets × cores, with NUMA distance classes.

    Cores are numbered [0 .. total_cores - 1], socket-major: core [i] lives
    on socket [i / cores_per_socket], matching how the Popcorn evaluation
    partitions a multi-socket x86 box between kernels. *)

type t

type core = int

val create : sockets:int -> cores_per_socket:int -> t
(** Both arguments must be positive. *)

val sockets : t -> int
val cores_per_socket : t -> int
val total_cores : t -> int

val socket_of : t -> core -> int

val cores_of_socket : t -> int -> core list
(** Cores on a socket, ascending. *)

val all_cores : t -> core list

val same_socket : t -> core -> core -> bool

type distance = Self | Same_socket | Cross_socket

val distance : t -> core -> core -> distance

val pp : Format.formatter -> t -> unit
