lib/kernelmodel/context.ml: Array Format Int64 Sim
