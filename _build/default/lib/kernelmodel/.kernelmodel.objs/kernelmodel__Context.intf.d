lib/kernelmodel/context.mli: Format Sim
