lib/kernelmodel/cpu.ml: Engine Hw Sim Time Waitq
