lib/kernelmodel/cpu.mli: Engine Hw Sim Time
