lib/kernelmodel/fault.ml: Format Page_table Vma
