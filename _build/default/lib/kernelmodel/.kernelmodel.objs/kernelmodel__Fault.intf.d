lib/kernelmodel/fault.mli: Format Page_table Vma
