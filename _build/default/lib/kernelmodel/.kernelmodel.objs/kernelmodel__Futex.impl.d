lib/kernelmodel/futex.ml: Engine Hashtbl Sim Waitq
