lib/kernelmodel/futex.mli: Engine Sim Time
