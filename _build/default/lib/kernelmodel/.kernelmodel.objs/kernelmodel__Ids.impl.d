lib/kernelmodel/ids.ml: Format
