lib/kernelmodel/ids.mli: Format
