lib/kernelmodel/page_table.ml: Hashtbl Hw List
