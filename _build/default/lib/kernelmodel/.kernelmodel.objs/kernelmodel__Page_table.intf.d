lib/kernelmodel/page_table.mli: Hw
