lib/kernelmodel/sched.ml: Cpu Hw List Printf Sim Time
