lib/kernelmodel/sched.mli: Cpu Engine Hw Sim Time
