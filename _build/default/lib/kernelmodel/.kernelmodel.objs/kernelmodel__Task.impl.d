lib/kernelmodel/task.ml: Context Format Hw Ids List
