lib/kernelmodel/task.mli: Context Format Hw Ids
