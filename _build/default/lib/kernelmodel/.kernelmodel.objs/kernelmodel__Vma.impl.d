lib/kernelmodel/vma.ml: Format Int List Map
