lib/kernelmodel/vma.mli: Format
