type t = {
  gp : int64 array; (* 16 general-purpose registers *)
  ip : int64;
  sp : int64;
  flags : int64;
  fpu : int64 array option; (* 64 quadwords = 512-byte FXSAVE area *)
}

let gp_count = 16
let fpu_quads = 64

let fresh rng ~use_fpu =
  let r () = Sim.Prng.bits64 rng in
  {
    gp = Array.init gp_count (fun _ -> r ());
    ip = r ();
    sp = r ();
    flags = r ();
    fpu = (if use_fpu then Some (Array.init fpu_quads (fun _ -> r ())) else None);
  }

let size_bytes t =
  let base = (gp_count + 3) * 8 in
  match t.fpu with None -> base | Some _ -> base + (fpu_quads * 8)

let has_fpu t = t.fpu <> None

let touch_fpu rng t =
  match t.fpu with
  | Some _ -> t
  | None ->
      { t with fpu = Some (Array.init fpu_quads (fun _ -> Sim.Prng.bits64 rng)) }

let mix h v =
  let open Int64 in
  let h = logxor h v in
  let h = mul h 0x100000001B3L in
  h

let step t =
  let bump i v = Int64.add v (Int64.of_int (i + 1)) in
  {
    t with
    gp = Array.mapi bump t.gp;
    ip = Int64.add t.ip 4L;
    flags = Int64.logxor t.flags 1L;
  }

let digest t =
  let h = ref 0xCBF29CE484222325L in
  Array.iter (fun v -> h := mix !h v) t.gp;
  h := mix !h t.ip;
  h := mix !h t.sp;
  h := mix !h t.flags;
  (match t.fpu with
  | None -> h := mix !h 0L
  | Some f ->
      h := mix !h 1L;
      Array.iter (fun v -> h := mix !h v) f);
  Int64.to_int !h land max_int

let equal a b =
  a.gp = b.gp && a.ip = b.ip && a.sp = b.sp && a.flags = b.flags
  && a.fpu = b.fpu

let pp fmt t =
  Format.fprintf fmt "ctx{ip=%Lx sp=%Lx fpu=%b digest=%x}" t.ip t.sp
    (has_fpu t) (digest t)
