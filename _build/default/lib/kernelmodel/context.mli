(** Architectural thread context: the state saved and shipped by a context
    migration.

    Mirrors what Popcorn transfers for an x86-64 thread: general-purpose
    registers, instruction/stack pointers, and optionally the FPU/SSE state
    (transferred only if the thread used it, hence the [fpu] option). The
    register contents are opaque payload to the OS; we fill them with
    deterministic pseudo-random values so tests can verify bit-exact
    migration via {!digest}. *)

type t

val fresh : Sim.Prng.t -> use_fpu:bool -> t
(** New context with randomized register contents. *)

val size_bytes : t -> int
(** Wire size of the migrated state (GP regs + iret frame, plus 512 bytes of
    FXSAVE area when FPU state is present). *)

val has_fpu : t -> bool

val touch_fpu : Sim.Prng.t -> t -> t
(** Returns a context that now carries FPU state (first FP instruction). *)

val step : t -> t
(** Mutate deterministically, as running computation would; keeps tests
    honest about contexts evolving between migrations. *)

val digest : t -> int
(** Order-sensitive hash of all architectural state. Equal digests after a
    migration mean the context survived bit-exact. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
