open Sim

(** One hardware core as a schedulable resource.

    At most one fiber "computes" on a core at a time; others queue FIFO and
    the occupant is preempted at quantum boundaries, approximating a
    round-robin kernel scheduler. Context-switch cost is charged to the
    switched-in fiber. *)

type t

val create :
  Engine.t -> Hw.Params.t -> core:Hw.Topology.core -> quantum:Time.t -> t

val core : t -> Hw.Topology.core

val compute : t -> Time.t -> unit
(** Consume CPU time; the calling fiber is delayed by at least the requested
    duration, more under timesharing. *)

val assign : t -> unit
(** Register a thread as placed on this core (scheduler bookkeeping). *)

val unassign : t -> unit
(** Remove a placed thread (on exit or migration away). *)

val assigned : t -> int
(** Threads currently placed here, runnable or blocked. Placement decisions
    use this, like a per-CPU runqueue weight. *)

val load : t -> int
(** Current occupant (0/1) plus queued fibers — the instantaneous runqueue
    depth. *)

val busy_time : t -> Time.t
(** Total simulated time this core spent computing. *)

val switches : t -> int
(** Context switches performed. *)
