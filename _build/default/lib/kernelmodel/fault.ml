type access = Read | Write

type classification = Segv | Minor | Cow_or_upgrade | Present

let classify vmas pt ~addr ~access =
  match Vma.find vmas addr with
  | None -> Segv
  | Some vma ->
      let allowed =
        match access with
        | Read -> vma.Vma.prot.Vma.read
        | Write -> vma.Vma.prot.Vma.write
      in
      if not allowed then Segv
      else begin
        match Page_table.get pt ~vpn:(Page_table.vpn_of_addr addr) with
        | None -> Minor
        | Some pte -> (
            match access with
            | Read -> Present
            | Write ->
                if pte.Page_table.writable then Present else Cow_or_upgrade)
      end

let pp_access fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"

let pp fmt = function
  | Segv -> Format.pp_print_string fmt "segv"
  | Minor -> Format.pp_print_string fmt "minor"
  | Cow_or_upgrade -> Format.pp_print_string fmt "cow-or-upgrade"
  | Present -> Format.pp_print_string fmt "present"
