(** Page-fault classification, shared by all OS models.

    The fault handler's first job is identical in SMP Linux and Popcorn:
    look up the faulting address in the (local replica of the) VMA tree and
    decide whether this is a legal fault to service or a segfault. What
    happens next — allocate locally vs. fetch the page from its owner
    kernel — is where the models differ. *)

type access = Read | Write

type classification =
  | Segv  (** no VMA, or protection forbids the access. *)
  | Minor  (** VMA present, no translation: demand-zero / first touch. *)
  | Cow_or_upgrade
      (** translation present but read-only and the access is a write;
          in Popcorn this is the "page owned elsewhere" case. *)
  | Present  (** translation already valid for this access: spurious. *)

val classify :
  Vma.t -> Page_table.t -> addr:int -> access:access -> classification

val pp_access : Format.formatter -> access -> unit
val pp : Format.formatter -> classification -> unit
