open Sim

(** Futex wait queues, hashed by user address (one table per kernel, or a
    single shared table in the SMP model).

    The value check ("wait only if [*uaddr] still equals [expected]") is the
    caller's job, since memory contents live with the OS model; this module
    owns the queues and wake ordering. *)

type t

val create : Engine.t -> t

type wait_result = Woken | Timed_out

val wait : t -> addr:int -> ?timeout:Time.t -> unit -> wait_result
(** Park the calling fiber on the queue for [addr]. *)

val wake : t -> addr:int -> count:int -> int
(** Wake up to [count] waiters FIFO; returns how many were woken. *)

val requeue : t -> from_addr:int -> to_addr:int -> max_wake:int -> max_move:int -> int * int
(** FUTEX_REQUEUE: wake up to [max_wake] from [from_addr], move up to
    [max_move] of the remainder onto [to_addr]'s queue. Returns
    (woken, moved). *)

val waiters : t -> addr:int -> int
