type pid = int
type tid = int

type allocator = { mutable next : int; stride : int }

let make_shared () = { next = 1; stride = 1 }

let make_partitioned ~kernel ~stride =
  assert (kernel >= 0 && kernel < stride);
  (* Skip id 0 on kernel 0 (reserved, like PID 0). *)
  let first = if kernel = 0 then stride else kernel in
  { next = first; stride }

let next a =
  let id = a.next in
  a.next <- id + a.stride;
  id

let owner_kernel ~stride id = id mod stride

let pp_pid fmt p = Format.fprintf fmt "pid:%d" p
let pp_tid fmt t = Format.fprintf fmt "tid:%d" t
