(** Process/thread identifier allocation.

    In a replicated-kernel OS, PIDs must be unique across kernels without a
    shared allocator; Popcorn partitions the PID space by kernel (each kernel
    allocates [kernel_id + n * stride]), which is what {!make_partitioned}
    provides. The SMP model uses a single {!make_shared} allocator. *)

type pid = int
type tid = int

type allocator

val make_shared : unit -> allocator
(** Single global namespace: 1, 2, 3, ... *)

val make_partitioned : kernel:int -> stride:int -> allocator
(** Kernel-local slice of the global namespace: ids congruent to [kernel]
    modulo [stride]. Requires [0 <= kernel < stride]. *)

val next : allocator -> int

val owner_kernel : stride:int -> int -> int
(** Which kernel's slice an id belongs to (partitioned scheme). *)

val pp_pid : Format.formatter -> pid -> unit
val pp_tid : Format.formatter -> tid -> unit
