type pte = { frame : Hw.Memory.frame; writable : bool }

type t = (int, pte) Hashtbl.t

let page_size = 4096

let create () : t = Hashtbl.create 256

let vpn_of_addr addr = addr / page_size
let addr_of_vpn vpn = vpn * page_size

let set t ~vpn pte = Hashtbl.replace t vpn pte
let get t ~vpn = Hashtbl.find_opt t vpn

let clear t ~vpn =
  match Hashtbl.find_opt t vpn with
  | Some pte ->
      Hashtbl.remove t vpn;
      Some pte
  | None -> None

let clear_range t ~start ~len =
  let first = vpn_of_addr start in
  let last = vpn_of_addr (start + len - 1) in
  let removed = ref [] in
  for vpn = first to last do
    match clear t ~vpn with
    | Some pte -> removed := pte :: !removed
    | None -> ()
  done;
  List.rev !removed

let downgrade t ~vpn =
  match Hashtbl.find_opt t vpn with
  | Some pte ->
      Hashtbl.replace t vpn { pte with writable = false };
      true
  | None -> false

let count t = Hashtbl.length t
let iter t f = Hashtbl.iter (fun vpn pte -> f ~vpn pte) t
