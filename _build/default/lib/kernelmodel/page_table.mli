(** Per-kernel page table for one address space replica.

    Keys are virtual page numbers (address / 4096). In the replicated-kernel
    design each kernel hosting threads of a process keeps its own page
    table; the coherence protocol keeps them consistent at page granularity
    (a page is writable on at most one kernel at a time). *)

type pte = { frame : Hw.Memory.frame; writable : bool }

type t

val create : unit -> t

val vpn_of_addr : int -> int
val addr_of_vpn : int -> int

val set : t -> vpn:int -> pte -> unit
(** Install or update a translation. *)

val get : t -> vpn:int -> pte option

val clear : t -> vpn:int -> pte option
(** Remove a translation, returning what was there. *)

val clear_range : t -> start:int -> len:int -> pte list
(** Remove every translation for pages in the byte range; returns the
    removed PTEs (so the caller can free or transfer frames). *)

val downgrade : t -> vpn:int -> bool
(** Make a present page read-only; [false] if absent. *)

val count : t -> int
val iter : t -> (vpn:int -> pte -> unit) -> unit
