open Sim

type t = { cores : Hw.Topology.core list; cpus : (Hw.Topology.core * Cpu.t) list }

let create eng params ~cores ?(quantum = Time.ms 1) () =
  if cores = [] then invalid_arg "Sched.create: no cores";
  let sorted = List.sort_uniq compare cores in
  if List.length sorted <> List.length cores then
    invalid_arg "Sched.create: duplicate cores";
  let cpus =
    List.map (fun c -> (c, Cpu.create eng params ~core:c ~quantum)) sorted
  in
  { cores = sorted; cpus }

let cores t = t.cores
let owns t core = List.mem_assoc core t.cpus

let cpu t core =
  match List.assoc_opt core t.cpus with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Sched.cpu: core %d not owned" core)

let pick_core t =
  let best =
    List.fold_left
      (fun acc (core, cpu) ->
        let l = Cpu.assigned cpu in
        match acc with
        | Some (_, bl) when bl <= l -> acc
        | _ -> Some (core, l))
      None t.cpus
  in
  match best with Some (core, _) -> core | None -> assert false

let assign t core = Cpu.assign (cpu t core)
let unassign t core = Cpu.unassign (cpu t core)
let compute_on t core dt = Cpu.compute (cpu t core) dt

let total_load t = List.fold_left (fun acc (_, c) -> acc + Cpu.load c) 0 t.cpus

let total_busy t =
  List.fold_left (fun acc (_, c) -> Time.add acc (Cpu.busy_time c)) Time.zero
    t.cpus
