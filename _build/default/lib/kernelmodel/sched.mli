open Sim

(** Per-kernel scheduler: a set of cores with load-aware placement. *)

type t

val create :
  Engine.t ->
  Hw.Params.t ->
  cores:Hw.Topology.core list ->
  ?quantum:Time.t ->
  unit ->
  t
(** [quantum] defaults to 1 ms. [cores] must be non-empty and distinct. *)

val cores : t -> Hw.Topology.core list

val owns : t -> Hw.Topology.core -> bool

val cpu : t -> Hw.Topology.core -> Cpu.t
(** @raise Invalid_argument if the core is not owned by this scheduler. *)

val pick_core : t -> Hw.Topology.core
(** Core with the fewest assigned threads (ties broken by lowest id) —
    placement for a new or arriving task. The caller must follow up with
    {!assign}. *)

val assign : t -> Hw.Topology.core -> unit
val unassign : t -> Hw.Topology.core -> unit

val compute_on : t -> Hw.Topology.core -> Time.t -> unit
(** Consume CPU time on the given core (timeshared, see {!Cpu.compute}). *)

val total_load : t -> int
val total_busy : t -> Time.t
