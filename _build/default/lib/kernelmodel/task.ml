type state = Ready | Running | Blocked of string | Exited of int

type t = {
  tid : Ids.tid;
  tgid : Ids.pid;
  origin_kernel : int;
  mutable kernel : int;
  mutable core : Hw.Topology.core option;
  mutable state : state;
  mutable ctx : Context.t;
  mutable migrations : int;
  mutable recent_vpns : int list;
}

let create ~tid ~tgid ~kernel ~ctx =
  {
    tid;
    tgid;
    origin_kernel = kernel;
    kernel;
    core = None;
    state = Ready;
    ctx;
    migrations = 0;
    recent_vpns = [];
  }

let is_live t = match t.state with Exited _ -> false | _ -> true

let recent_cap = 8

let note_touch t ~vpn =
  let rest = List.filter (fun v -> v <> vpn) t.recent_vpns in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  t.recent_vpns <- vpn :: take (recent_cap - 1) rest
let set_state t s = t.state <- s

let pp_state fmt = function
  | Ready -> Format.pp_print_string fmt "ready"
  | Running -> Format.pp_print_string fmt "running"
  | Blocked why -> Format.fprintf fmt "blocked(%s)" why
  | Exited code -> Format.fprintf fmt "exited(%d)" code

let pp fmt t =
  Format.fprintf fmt "task{tid=%d tgid=%d k=%d core=%s %a mig=%d}" t.tid
    t.tgid t.kernel
    (match t.core with None -> "-" | Some c -> string_of_int c)
    pp_state t.state t.migrations
