(** Task (thread) control block, the analogue of Linux's [task_struct]
    restricted to what thread migration needs. *)

type state =
  | Ready
  | Running
  | Blocked of string  (** why, e.g. "futex" or "migration" *)
  | Exited of int

type t = {
  tid : Ids.tid;
  tgid : Ids.pid;  (** thread group (process) id. *)
  origin_kernel : int;  (** kernel where the thread was created. *)
  mutable kernel : int;  (** kernel currently hosting the thread. *)
  mutable core : Hw.Topology.core option;
  mutable state : state;
  mutable ctx : Context.t;
  mutable migrations : int;  (** how many times it has migrated. *)
  mutable recent_vpns : int list;
      (** small MRU ring of recently-touched virtual pages — the working
          set shipped ahead by migration prefetch. *)
}

val create :
  tid:Ids.tid -> tgid:Ids.pid -> kernel:int -> ctx:Context.t -> t

val is_live : t -> bool

val note_touch : t -> vpn:int -> unit
(** Record a memory touch in the MRU ring (bounded, most recent first). *)

val set_state : t -> state -> unit

val pp_state : Format.formatter -> state -> unit
val pp : Format.formatter -> t -> unit
