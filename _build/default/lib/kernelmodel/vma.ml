type prot = { read : bool; write : bool; exec : bool }

let prot_rw = { read = true; write = true; exec = false }
let prot_r = { read = true; write = false; exec = false }
let prot_rx = { read = true; write = false; exec = true }
let prot_none = { read = false; write = false; exec = false }

let pp_prot fmt p =
  Format.fprintf fmt "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.exec then 'x' else '-')

type kind = Anon | Stack | Heap | File of string

type vma = { start : int; len : int; prot : prot; kind : kind }

let vma_end v = v.start + v.len

module M = Map.Make (Int)

type t = { mutable by_start : vma M.t }

let page_size = 4096
let mmap_base = 0x7F00_0000_0000
let address_top = 0x7FFF_FFFF_F000

let create () = { by_start = M.empty }

let aligned x = x land (page_size - 1) = 0

(* VMA with the greatest start <= addr, if it covers addr. *)
let find t addr =
  match M.find_last_opt (fun s -> s <= addr) t.by_start with
  | Some (_, v) when addr < vma_end v -> Some v
  | _ -> None

(* Any VMA overlapping [start, start+len)? *)
let overlaps t ~start ~len =
  let stop = start + len in
  match M.find_last_opt (fun s -> s < stop) t.by_start with
  | Some (_, v) -> vma_end v > start
  | None -> false

let find_free t ~len =
  (* First fit from mmap_base, walking existing mappings in address order:
     advance past every VMA that intrudes on the current candidate hole. *)
  let candidate = ref mmap_base in
  (try
     M.iter
       (fun _ v ->
         if v.start >= !candidate + len then raise Exit
         else candidate := max !candidate (vma_end v))
       t.by_start
   with Exit -> ());
  if !candidate + len <= address_top then Some !candidate else None

let map t ?fixed ~len ~prot ~kind () =
  if len <= 0 then Error "map: non-positive length"
  else if not (aligned len) then Error "map: unaligned length"
  else
    match fixed with
    | Some start ->
        if not (aligned start) then Error "map: unaligned fixed address"
        else if overlaps t ~start ~len then Error "map: fixed range overlaps"
        else begin
          let v = { start; len; prot; kind } in
          t.by_start <- M.add start v t.by_start;
          Ok v
        end
    | None -> (
        match find_free t ~len with
        | None -> Error "map: address space exhausted"
        | Some start ->
            let v = { start; len; prot; kind } in
            t.by_start <- M.add start v t.by_start;
            Ok v)

(* All VMAs overlapping the range. *)
let overlapping t ~start ~len =
  let stop = start + len in
  M.fold
    (fun _ v acc ->
      if v.start < stop && vma_end v > start then v :: acc else acc)
    t.by_start []
  |> List.rev

let unmap t ~start ~len =
  if len <= 0 then Error "unmap: non-positive length"
  else if not (aligned start && aligned len) then Error "unmap: unaligned"
  else begin
    let stop = start + len in
    List.iter
      (fun v ->
        t.by_start <- M.remove v.start t.by_start;
        (* Left remainder. *)
        if v.start < start then begin
          let left = { v with len = start - v.start } in
          t.by_start <- M.add left.start left t.by_start
        end;
        (* Right remainder. *)
        if vma_end v > stop then begin
          let right = { v with start = stop; len = vma_end v - stop } in
          t.by_start <- M.add right.start right t.by_start
        end)
      (overlapping t ~start ~len);
    Ok ()
  end

let protect t ~start ~len ~prot =
  if len <= 0 then Error "protect: non-positive length"
  else if not (aligned start && aligned len) then Error "protect: unaligned"
  else begin
    let stop = start + len in
    (* Linux requires the whole range to be mapped. *)
    let covered =
      let rec check addr =
        if addr >= stop then true
        else
          match find t addr with
          | None -> false
          | Some v -> check (vma_end v)
      in
      check start
    in
    if not covered then Error "protect: range not fully mapped"
    else begin
      List.iter
        (fun v ->
          t.by_start <- M.remove v.start t.by_start;
          if v.start < start then begin
            let left = { v with len = start - v.start } in
            t.by_start <- M.add left.start left t.by_start
          end;
          if vma_end v > stop then begin
            let right = { v with start = stop; len = vma_end v - stop } in
            t.by_start <- M.add right.start right t.by_start
          end;
          let mid_start = max v.start start in
          let mid_end = min (vma_end v) stop in
          let mid =
            { v with start = mid_start; len = mid_end - mid_start; prot }
          in
          t.by_start <- M.add mid.start mid t.by_start)
        (overlapping t ~start ~len);
      Ok ()
    end
  end

let vmas t = M.fold (fun _ v acc -> v :: acc) t.by_start [] |> List.rev
let count t = M.cardinal t.by_start
let mapped_bytes t = M.fold (fun _ v acc -> acc + v.len) t.by_start 0
let equal_layout a b = vmas a = vmas b

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun v ->
      Format.fprintf fmt "%x-%x %a %s@,"
        v.start (vma_end v) pp_prot v.prot
        (match v.kind with
        | Anon -> "anon"
        | Stack -> "stack"
        | Heap -> "heap"
        | File f -> f))
    (vmas t);
  Format.fprintf fmt "@]"
