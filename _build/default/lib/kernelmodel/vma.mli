(** Virtual memory areas and per-process address-space layout.

    Addresses and lengths are in bytes and must be page-aligned (4 KiB).
    The structure is a sorted interval map supporting the mmap family with
    Linux semantics relevant to the paper: hole-finding allocation, fixed
    mappings, partial unmap with VMA splitting, and mprotect with
    splitting. Layout equality across replicas is what Popcorn's address
    space consistency protocol maintains. *)

type prot = { read : bool; write : bool; exec : bool }

val prot_rw : prot
val prot_r : prot
val prot_rx : prot
val prot_none : prot
val pp_prot : Format.formatter -> prot -> unit

type kind = Anon | Stack | Heap | File of string

type vma = {
  start : int;
  len : int;  (** bytes; always > 0 and page-aligned. *)
  prot : prot;
  kind : kind;
}

val vma_end : vma -> int
(** One past the last byte. *)

type t

val page_size : int

val create : unit -> t
(** Empty layout; anonymous mappings are placed from a conventional mmap
    base upward. *)

val map :
  t ->
  ?fixed:int ->
  len:int ->
  prot:prot ->
  kind:kind ->
  unit ->
  (vma, string) result
(** Allocate a region. With [fixed], the exact range must not overlap any
    existing mapping (MAP_FIXED_NOREPLACE semantics). Errors on bad
    alignment, zero length, or exhaustion. *)

val unmap : t -> start:int -> len:int -> (unit, string) result
(** Remove every mapped page in the range, splitting straddling VMAs; the
    range may cover holes (like munmap). *)

val protect : t -> start:int -> len:int -> prot:prot -> (unit, string) result
(** Change protection; errors if any page in the range is unmapped. *)

val find : t -> int -> vma option
(** VMA containing the address, if any. *)

val vmas : t -> vma list
(** Ascending by start; adjacent compatible VMAs are not merged (Linux only
    merges anonymous VMAs with identical attributes; we keep splits visible
    because the consistency protocol replicates them as-is). *)

val count : t -> int
val mapped_bytes : t -> int
val equal_layout : t -> t -> bool
val pp : Format.formatter -> t -> unit
