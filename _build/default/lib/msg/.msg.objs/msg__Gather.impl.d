lib/msg/gather.ml: Engine Sim
