lib/msg/gather.mli: Engine Sim
