lib/msg/rpc.ml: Engine Hashtbl Sim
