lib/msg/rpc.mli: Engine Sim Time
