lib/msg/transport.ml: Channel Engine Hashtbl Hw List Printf Sim Time
