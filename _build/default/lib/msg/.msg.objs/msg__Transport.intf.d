lib/msg/transport.mli: Hw Sim Time
