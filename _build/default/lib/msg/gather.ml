open Sim

type t = {
  eng : Engine.t;
  expected : int;
  mutable received : int;
  mutable waiter : (unit -> unit) option;
}

let create eng ~expected =
  assert (expected >= 0);
  { eng; expected; received = 0; waiter = None }

let ack t =
  if t.received >= t.expected then
    invalid_arg "Gather.ack: more acks than expected";
  t.received <- t.received + 1;
  if t.received = t.expected then
    match t.waiter with
    | Some resume ->
        t.waiter <- None;
        resume ()
    | None -> ()

let wait t =
  if t.received < t.expected then
    Engine.suspend t.eng (fun resume ->
        (match t.waiter with
        | None -> ()
        | Some _ -> invalid_arg "Gather.wait: already has a waiter");
        t.waiter <- Some resume)

let received t = t.received
