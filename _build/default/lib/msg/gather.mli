open Sim

(** Ack gathering for broadcast protocols (e.g. distributed munmap: send to
    every kernel in the group, wait until all acknowledge). *)

type t

val create : Engine.t -> expected:int -> t
(** [expected >= 0]; with 0, {!wait} returns immediately. *)

val ack : t -> unit
(** One acknowledgement arrived. Raises [Invalid_argument] if more acks
    arrive than expected. *)

val wait : t -> unit
(** Park until all expected acks have arrived. Only one fiber may wait. *)

val received : t -> int
