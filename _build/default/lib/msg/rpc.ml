open Sim

(* Response delivery may race with the caller still executing its send
   (which sleeps for the wire costs): the cell buffers an early response
   until the caller parks. *)
type 'r cell = Unresolved | Waiting of ('r -> unit) | Done of 'r

type 'r t = {
  eng : Engine.t;
  mutable next_ticket : int;
  waiting : (int, 'r -> unit) Hashtbl.t;
}

let create eng = { eng; next_ticket = 1; waiting = Hashtbl.create 64 }

let fresh t =
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  ticket

let register t callback =
  let ticket = fresh t in
  Hashtbl.replace t.waiting ticket callback;
  ticket

let call t send =
  let cell = ref Unresolved in
  let ticket =
    register t (fun r ->
        match !cell with
        | Waiting resume -> resume r
        | Unresolved -> cell := Done r
        | Done _ -> ())
  in
  send ticket;
  match !cell with
  | Done r -> r
  | Waiting _ -> assert false
  | Unresolved ->
      Engine.suspend t.eng (fun resume ->
          match !cell with
          | Done r -> resume r
          | Unresolved -> cell := Waiting resume
          | Waiting _ -> assert false)

let call_timeout t ~timeout send =
  (* [result]: Some (Some r) = responded, Some None = timed out. *)
  let result = ref None in
  let waiter = ref None in
  let deliver out =
    match !waiter with Some resume -> resume out | None -> result := Some out
  in
  let ticket = register t (fun r -> deliver (Some r)) in
  Engine.schedule t.eng ~after:timeout (fun () ->
      if Hashtbl.mem t.waiting ticket then begin
        Hashtbl.remove t.waiting ticket;
        deliver None
      end);
  send ticket;
  match !result with
  | Some out -> out
  | None ->
      Engine.suspend t.eng (fun resume ->
          match !result with
          | Some out -> resume out
          | None -> waiter := Some resume)

let complete t ~ticket r =
  match Hashtbl.find_opt t.waiting ticket with
  | None -> () (* stale response for a timed-out call *)
  | Some resume ->
      Hashtbl.remove t.waiting ticket;
      resume r

let forget t ~ticket =
  if Hashtbl.mem t.waiting ticket then begin
    Hashtbl.remove t.waiting ticket;
    true
  end
  else false

let pending t = Hashtbl.length t.waiting
