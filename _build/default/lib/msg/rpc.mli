open Sim

(** Ticketed request/response matching over {!Transport}.

    The OS model's protocol variant carries ticket integers; this module
    owns the ticket namespace and the table from ticket to parked caller.
    A typical remote operation is:

    {[
      let resp =
        Rpc.call rpc (fun ticket ->
            Transport.send fabric ~src ~dst ~bytes (Page_request { ticket; ... }))
      in ...
    ]}

    and the message handler for the response side runs
    [Rpc.complete rpc ~ticket resp]. *)

type 'r t
(** ['r] is the response payload type. *)

val create : Engine.t -> 'r t

val register : 'r t -> ('r -> unit) -> int
(** Allocate a ticket whose completion runs the callback instead of waking a
    parked fiber — the building block for parallel broadcasts where one
    fiber waits on many tickets at once. *)

val call : 'r t -> (int -> unit) -> 'r
(** [call t send] allocates a ticket, invokes [send ticket] (which should
    transmit the request), then parks the calling fiber until
    {!complete} is invoked with that ticket. *)

val call_timeout : 'r t -> timeout:Time.t -> (int -> unit) -> 'r option
(** Like {!call}; [None] if no response arrives in time (the ticket is then
    forgotten and a late response is dropped). *)

val complete : 'r t -> ticket:int -> 'r -> unit
(** Deliver a response. Unknown or stale tickets are ignored (they belong to
    timed-out calls). *)

val forget : 'r t -> ticket:int -> bool
(** Drop a pending ticket (e.g. when a caller times out on its own);
    returns whether it was still pending. A response arriving later is
    silently ignored. *)

val pending : 'r t -> int
(** Number of in-flight calls. *)
