open Sim

type node = int

type 'a packet = {
  src : node;
  src_core : Hw.Topology.core;
  payload : 'a;
  bytes : int;
  enqueued_at : Time.t;
  doorbell : Time.t;
      (** IPI delivery latency to charge before processing; non-zero only
          when the receive worker was idle at send time. *)
}

type 'a endpoint = {
  node : node;
  core : Hw.Topology.core;
  inbox : 'a packet Channel.t;
  mutable worker_idle : bool;
}

type stats = {
  sent : int;
  delivered : int;
  doorbells : int;
  total_latency : Time.t;
}

type 'a t = {
  machine : Hw.Machine.t;
  ring_slots : int;
  handler : 'a t -> dst:node -> src:node -> 'a -> unit;
  endpoints : (node, 'a endpoint) Hashtbl.t;
  mutable st_sent : int;
  mutable st_delivered : int;
  mutable st_doorbells : int;
  mutable st_latency : Time.t;
  mutable jitter : Time.t;
}

let create machine ~ring_slots ~handler =
  assert (ring_slots >= 1);
  {
    machine;
    ring_slots;
    handler;
    endpoints = Hashtbl.create 16;
    st_sent = 0;
    st_delivered = 0;
    st_doorbells = 0;
    st_latency = Time.zero;
    jitter = Time.zero;
  }

let machine t = t.machine

let endpoint t node =
  match Hashtbl.find_opt t.endpoints node with
  | Some ep -> ep
  | None -> invalid_arg (Printf.sprintf "Transport: unknown node %d" node)

let nodes t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.endpoints [] |> List.sort compare

let home_core t node = (endpoint t node).core

(* Receiver-side cost to pull a message out of the ring and enter the
   handler: payload copy plus a little dispatch work. *)
let receive_cost t ep (pkt : 'a packet) =
  let m = t.machine in
  let cross =
    not (Hw.Topology.same_socket m.Hw.Machine.topo ep.core pkt.src_core)
  in
  let copy =
    Hw.Params.copy_cost m.Hw.Machine.params ~bytes:pkt.bytes
      ~cross_socket:cross
  in
  Time.add copy (Time.ns 150)

let worker_loop t ep =
  let m = t.machine in
  let eng = m.Hw.Machine.eng in
  let rec loop () =
    ep.worker_idle <- true;
    let pkt = Channel.recv ep.inbox in
    ep.worker_idle <- false;
    (* A doorbell wake-up: the IPI takes this long to reach us. *)
    Engine.sleep eng pkt.doorbell;
    Engine.sleep eng (receive_cost t ep pkt);
    (* Robustness-testing jitter: a per-message processing delay. It keeps
       each ring FIFO (as real shared-memory rings are) while perturbing
       interleavings across kernels. *)
    if t.jitter > 0 then
      Engine.sleep eng (Sim.Prng.int (Engine.rng eng) (t.jitter + 1));
    t.st_delivered <- t.st_delivered + 1;
    t.st_latency <-
      Time.add t.st_latency (Time.sub (Engine.now eng) pkt.enqueued_at);
    let src = pkt.src and payload = pkt.payload in
    (* Fresh fiber per message: handlers may block on nested RPCs. *)
    Engine.spawn eng ~name:(Printf.sprintf "msg-handler-n%d" ep.node)
      (fun () -> t.handler t ~dst:ep.node ~src payload);
    loop ()
  in
  loop ()

let add_node t node ~home_core =
  if Hashtbl.mem t.endpoints node then
    invalid_arg (Printf.sprintf "Transport.add_node: duplicate node %d" node);
  let ep =
    {
      node;
      core = home_core;
      inbox = Channel.create t.machine.Hw.Machine.eng ~capacity:t.ring_slots;
      worker_idle = true;
    }
  in
  Hashtbl.add t.endpoints node ep;
  Engine.spawn t.machine.Hw.Machine.eng
    ~name:(Printf.sprintf "msg-worker-n%d" node)
    (fun () -> worker_loop t ep)

let send_from_core t ~src ~src_core ~dst ~bytes payload =
  let m = t.machine in
  let eng = m.Hw.Machine.eng in
  let ep = endpoint t dst in
  let cross = not (Hw.Topology.same_socket m.Hw.Machine.topo src_core ep.core) in
  (* Sender cost: reserve a slot (one atomic fetch-add on a possibly-remote
     cache line) + copy the payload into shared memory. *)
  let reserve =
    Hw.Params.line_transfer m.Hw.Machine.params ~same_core:false
      ~same_socket:(not cross)
  in
  let copy = Hw.Params.copy_cost m.Hw.Machine.params ~bytes ~cross_socket:cross in
  Engine.sleep eng (Time.add reserve copy);
  t.st_sent <- t.st_sent + 1;
  (* The ring write happens now (enqueue order = send order, FIFO); if the
     worker is idle it additionally needs a doorbell IPI, charged on its
     side before it processes this packet. *)
  let was_idle = ep.worker_idle && Channel.is_empty ep.inbox in
  let doorbell =
    if was_idle then begin
      t.st_doorbells <- t.st_doorbells + 1;
      Hw.Ipi.delivery_latency m.Hw.Machine.ipi ~src:src_core ~dst:ep.core
    end
    else Time.zero
  in
  Channel.send ep.inbox
    { src; src_core; payload; bytes; enqueued_at = Engine.now eng; doorbell }

let send t ~src ~dst ~bytes payload =
  send_from_core t ~src ~src_core:(endpoint t src).core ~dst ~bytes payload

let stats t =
  {
    sent = t.st_sent;
    delivered = t.st_delivered;
    doorbells = t.st_doorbells;
    total_latency = t.st_latency;
  }

let set_jitter t ~max_extra =
  assert (max_extra >= 0);
  t.jitter <- max_extra

let reset_stats t =
  t.st_sent <- 0;
  t.st_delivered <- 0;
  t.st_doorbells <- 0;
  t.st_latency <- Time.zero
