open Sim

(** Inter-kernel message transport.

    Models Popcorn's messaging layer: each kernel owns a receive ring in
    shared memory; senders copy the payload into a slot (paying memcpy +
    ring-bookkeeping coherence costs) and kick the destination kernel with an
    IPI doorbell only when its message worker is idle — when the worker is
    already draining the ring, messages are batched doorbell-free, exactly as
    in the real implementation.

    The transport is polymorphic in the payload type; the OS model defines a
    single protocol variant. Handlers run as fresh fibers so a handler may
    itself block (e.g. issue a nested RPC) without stalling the ring. *)

type 'a t

type node = int
(** Kernel identifier. *)

type stats = {
  sent : int;
  delivered : int;
  doorbells : int;
  total_latency : Time.t;  (** summed enqueue-to-handler-start latency. *)
}

val create :
  Hw.Machine.t ->
  ring_slots:int ->
  handler:('a t -> dst:node -> src:node -> 'a -> unit) ->
  'a t
(** A fabric with no nodes yet; [ring_slots] bounds each receive ring
    (senders block on a full ring). The handler receives every delivered
    message. *)

val add_node : 'a t -> node -> home_core:Hw.Topology.core -> unit
(** Register a kernel and start its message worker. The home core determines
    socket distances for cost modelling. *)

val machine : 'a t -> Hw.Machine.t
val nodes : 'a t -> node list
val home_core : 'a t -> node -> Hw.Topology.core

val send : 'a t -> src:node -> dst:node -> bytes:int -> 'a -> unit
(** Send; the calling fiber pays the sender-side costs and blocks if the
    destination ring is full. Delivery is asynchronous. *)

val send_from_core :
  'a t ->
  src:node ->
  src_core:Hw.Topology.core ->
  dst:node ->
  bytes:int ->
  'a ->
  unit
(** Like {!send} but with an explicit sending core (for threads running on a
    non-home core of the source kernel). *)

val set_jitter : 'a t -> max_extra:Time.t -> unit
(** Fault/robustness injection: add a uniformly random extra delay in
    [\[0, max_extra\]] to every delivery (drawn from the engine's seeded
    PRNG, so runs stay deterministic). 0 disables. Used by the protocol
    property tests to stress message interleavings. *)

val stats : 'a t -> stats
val reset_stats : 'a t -> unit
