(** Barrelfish-style multikernel baseline.

    One CPU driver per core; no shared kernel state, no single-system
    image, no transparent thread migration. An application is a {e domain}
    that spans cores by explicitly spawning one dispatcher per core; each
    dispatcher owns a private address space (mm operations are purely
    local and scale perfectly), and dispatchers communicate over explicit
    channels. The comparison point for the paper's claim that a
    replicated-kernel OS "scales as well as a multikernel" while keeping
    the shared-memory programming model. *)

open Sim
module K = Kernelmodel

type payload

type t = private {
  machine : Hw.Machine.t;
  fabric : payload Msg.Transport.t;
  cpus : K.Cpu.t array;
  rpc : payload Msg.Rpc.t array;
  chans : (int, chan) Hashtbl.t;
  mutable next_chan : int;
  mutable next_domain : int;
  domains : (int, domain) Hashtbl.t;
}

and domain = private {
  sys : t;
  id : int;
  mutable dispatchers : int;
  exit_waiters : unit Waitq.t;
}

and dispatcher = private {
  dom : domain;
  core : Hw.Topology.core;
  vmas : K.Vma.t;
  pt : K.Page_table.t;
}

and chan

val boot : Hw.Machine.t -> t

val compute : dispatcher -> Time.t -> unit

val start_domain : t -> core:Hw.Topology.core -> (dispatcher -> unit) -> domain
(** New domain with its first dispatcher on [core]. *)

val spawn_dispatcher :
  dispatcher -> core:Hw.Topology.core -> (dispatcher -> unit) -> unit
(** Explicitly span the domain onto another core: a spawn request to the
    remote monitor, dispatcher construction there, then the body runs.
    The multikernel's (non-transparent) analogue of remote creation. *)

val mmap :
  dispatcher -> len:int -> prot:K.Vma.prot -> (K.Vma.vma, string) result
(** Private per-dispatcher mapping — no consistency protocol at all. *)

val munmap : dispatcher -> start:int -> len:int -> (unit, string) result

val touch :
  dispatcher -> addr:int -> access:K.Fault.access ->
  (K.Fault.classification, string) result

val make_chan : t -> chan

val chan_send :
  dispatcher -> chan -> dst_core:Hw.Topology.core -> data:int -> bytes:int ->
  unit

val chan_recv : dispatcher -> chan -> int * int
(** Blocking receive; returns (data, bytes). *)

val wait_domain : domain -> unit
(** Park until every dispatcher of the domain has finished. *)
