lib/sim/barrier.ml: Engine Waitq
