lib/sim/channel.mli: Engine Time
