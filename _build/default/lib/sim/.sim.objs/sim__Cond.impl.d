lib/sim/cond.ml: Engine Mutex Waitq
