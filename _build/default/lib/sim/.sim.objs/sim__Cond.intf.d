lib/sim/cond.mli: Engine Mutex Time
