lib/sim/eheap.ml: Array Time
