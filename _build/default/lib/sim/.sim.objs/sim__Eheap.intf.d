lib/sim/eheap.mli: Time
