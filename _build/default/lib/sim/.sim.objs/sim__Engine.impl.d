lib/sim/engine.ml: Effect Eheap Prng Time
