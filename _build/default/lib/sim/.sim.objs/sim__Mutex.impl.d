lib/sim/mutex.ml: Engine Waitq
