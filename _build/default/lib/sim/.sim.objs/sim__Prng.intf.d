lib/sim/prng.mli:
