lib/sim/semaphore.ml: Engine Waitq
