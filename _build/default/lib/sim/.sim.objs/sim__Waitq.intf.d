lib/sim/waitq.mli: Engine Time
