(** Reusable cyclic barriers in simulated time.

    [n] parties call {!wait}; the last arrival releases everyone and the
    barrier resets for the next round (sense-reversing semantics). *)

type t

val create : Engine.t -> parties:int -> t
(** [parties >= 1]. *)

val wait : t -> [ `Leader | `Follower ]
(** Park until all parties have arrived; exactly one caller per round is
    told it was the last one in ([`Leader]). *)

val parties : t -> int

val waiting : t -> int
(** Parties currently parked in this round. *)

val rounds : t -> int
(** Completed rounds. *)
