(** Condition variables over {!Mutex}, in simulated time. *)

type t

val create : Engine.t -> t

val wait : t -> Mutex.t -> unit
(** Atomically release the mutex and park; re-acquires before returning. *)

val wait_timeout : t -> Mutex.t -> timeout:Time.t -> [ `Signalled | `Timed_out ]
(** Like {!wait} with a deadline; the mutex is re-acquired in both cases. *)

val signal : t -> unit
(** Wake one waiter (no-op if none). *)

val broadcast : t -> int
(** Wake all waiters; returns how many were woken. *)

val waiters : t -> int
