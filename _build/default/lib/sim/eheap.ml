type 'a cell = { at : Time.t; seq : int; v : 'a }

type 'a t = { mutable a : 'a cell array; mutable n : int }

let create () = { a = [||]; n = 0 }

let before x y = x.at < y.at || (x.at = y.at && x.seq < y.seq)

let grow t =
  let cap = Array.length t.a in
  let ncap = if cap = 0 then 16 else 2 * cap in
  (* The dummy cell at fresh slots is never observed: [n] bounds access. *)
  let a' = Array.make ncap t.a.(0) in
  Array.blit t.a 0 a' 0 t.n;
  t.a <- a'

let push t ~at ~seq v =
  let c = { at; seq; v } in
  if t.n = 0 && Array.length t.a = 0 then t.a <- Array.make 16 c;
  if t.n = Array.length t.a then grow t;
  t.a.(t.n) <- c;
  t.n <- t.n + 1;
  (* sift up *)
  let i = ref (t.n - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    before t.a.(!i) t.a.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.a.(p) in
    t.a.(p) <- t.a.(!i);
    t.a.(!i) <- tmp;
    i := p
  done

let pop t =
  if t.n = 0 then None
  else begin
    let root = t.a.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.a.(0) <- t.a.(t.n);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.n && before t.a.(l) t.a.(!smallest) then smallest := l;
        if r < t.n && before t.a.(r) t.a.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.a.(!smallest) in
          t.a.(!smallest) <- t.a.(!i);
          t.a.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (root.at, root.seq, root.v)
  end

let peek_time t = if t.n = 0 then None else Some t.a.(0).at
let size t = t.n
let is_empty t = t.n = 0
