(** Binary min-heap of scheduled events, keyed by (time, sequence).

    The sequence number makes ordering total and stable: two events scheduled
    for the same instant fire in scheduling order, which keeps simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> at:Time.t -> seq:int -> 'a -> unit

val pop : 'a t -> (Time.t * int * 'a) option
(** Remove and return the earliest event, or [None] when empty. *)

val peek_time : 'a t -> Time.t option

val size : 'a t -> int
val is_empty : 'a t -> bool
