(** Simulated-time mutual exclusion (sleeping lock, FIFO handoff).

    This models a Linux-style sleeping mutex: a blocked fiber consumes no
    simulated CPU and is handed the lock in FIFO order. For spinlocks with a
    cache-coherence contention model, see [Hw.Spinlock]. *)

type t

val create : Engine.t -> t

val lock : t -> unit
(** Acquire, parking the fiber if the mutex is held. *)

val try_lock : t -> bool

val unlock : t -> unit
(** Release. Raises [Invalid_argument] if the mutex is not held. *)

val is_locked : t -> bool

val waiters : t -> int

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] under the lock, releasing on exceptions. *)
