type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  (* Mask to 62 bits so the conversion can never wrap negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land max_int in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = ref (float t 1.0) in
  if !u <= 0.0 then u := epsilon_float;
  -.mean *. log !u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
