(** Deterministic pseudo-random number generator (SplitMix64).

    Each engine owns one generator so that simulations are reproducible from
    a single integer seed, independent of the global [Random] state. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent generator; [t] advances. Useful for
    giving each simulated component its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially-distributed positive float with the given mean; used for
    Poisson arrival processes in workload generators. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
