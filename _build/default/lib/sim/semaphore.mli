(** Counting semaphores in simulated time. *)

type t

val create : Engine.t -> int -> t
(** [create eng n] starts with [n] permits. [n >= 0]. *)

val acquire : t -> unit
val try_acquire : t -> bool
val release : t -> unit
val available : t -> int
val waiters : t -> int
