(** Simulated time, in integer nanoseconds.

    All simulation clocks and durations are values of type {!t}. The engine
    never consults wall-clock time, so simulations are fully deterministic. *)

type t = int
(** Nanoseconds. A 63-bit [int] covers ~292 simulated years. *)

val zero : t

val ns : int -> t
(** [ns x] is [x] nanoseconds. *)

val us : int -> t
(** [us x] is [x] microseconds. *)

val ms : int -> t
(** [ms x] is [x] milliseconds. *)

val s : int -> t
(** [s x] is [x] seconds. *)

val to_float_us : t -> float
(** Duration in microseconds as a float, for reporting. *)

val to_float_ms : t -> float
(** Duration in milliseconds as a float, for reporting. *)

val to_float_s : t -> float
(** Duration in seconds as a float, for reporting. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
