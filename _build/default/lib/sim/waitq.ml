type 'a entry = { mutable active : bool; resume : 'a -> unit }

type 'a t = { q : 'a entry Queue.t }

let create () = { q = Queue.create () }

let push t resume =
  let e = { active = true; resume } in
  Queue.push e t.q;
  e

let cancel e = e.active <- false
let is_active e = e.active

(* Dead (cancelled or already-woken) entries stay queued until they reach the
   head; popping purges them so they never consume a wake-up. *)
let rec pop_active t =
  match Queue.take_opt t.q with
  | None -> None
  | Some e -> if e.active then Some e else pop_active t

let wake_one t v =
  match pop_active t with
  | None -> false
  | Some e ->
      e.active <- false;
      e.resume v;
      true

let wake_all t v =
  let rec loop n =
    match pop_active t with
    | None -> n
    | Some e ->
        e.active <- false;
        e.resume v;
        loop (n + 1)
  in
  loop 0

let take t =
  match pop_active t with
  | None -> None
  | Some e ->
      e.active <- false;
      Some e.resume

let length t =
  Queue.fold (fun acc e -> if e.active then acc + 1 else acc) 0 t.q

let is_empty t = length t = 0

let wait eng t = Engine.suspend eng (fun resume -> ignore (push t resume))

type 'a timed = Signalled of 'a | Timed_out

let wait_timeout eng t ~timeout =
  Engine.suspend eng (fun resume ->
      let entry = push t (fun v -> resume (Signalled v)) in
      Engine.schedule eng ~after:timeout (fun () ->
          if is_active entry then begin
            cancel entry;
            resume Timed_out
          end))
