lib/smp/rwsem.ml: Engine Hw Queue Sim
