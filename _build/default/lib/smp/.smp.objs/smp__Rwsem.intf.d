lib/smp/rwsem.mli: Engine Hw Sim Time
