lib/smp/smp_api.ml: Engine Hw Kernelmodel Printf Sim Smp_os
