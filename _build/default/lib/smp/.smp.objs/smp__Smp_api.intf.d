lib/smp/smp_api.mli: Hw Kernelmodel Sim Smp_os
