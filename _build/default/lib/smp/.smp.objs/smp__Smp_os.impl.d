lib/smp/smp_os.ml: Array Engine Hashtbl Hw Kernelmodel List Printf Rwsem Sim Time Waitq
