lib/smp/smp_os.mli: Engine Hashtbl Hw Kernelmodel Rwsem Sim Time Waitq
