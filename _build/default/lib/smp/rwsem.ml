(** Reader-writer semaphore in the style of Linux's [mmap_sem].

    Every down/up performs one atomic on the semaphore's cache line (the
    scalability cost: even uncontended read acquisitions bounce the line
    between sockets), plus sleeping exclusion between readers and writers
    with FIFO fairness (writers are not starved: a queued writer blocks
    later readers). *)

open Sim

type waiter = Reader of (unit -> unit) | Writer of (unit -> unit)

type t = {
  eng : Engine.t;
  line : Hw.Cacheline.t;
  mutable readers : int;
  mutable writer : bool;
  queue : waiter Queue.t;
}

let create eng params topo ~name =
  {
    eng;
    line = Hw.Cacheline.create eng params topo ~name;
    readers = 0;
    writer = false;
    queue = Queue.create ();
  }

let down_read t ~core =
  Hw.Cacheline.access t.line ~core;
  if t.writer || not (Queue.is_empty t.queue) then
    Engine.suspend t.eng (fun resume -> Queue.push (Reader resume) t.queue)
  else t.readers <- t.readers + 1

let down_write t ~core =
  Hw.Cacheline.access t.line ~core;
  if t.writer || t.readers > 0 || not (Queue.is_empty t.queue) then
    Engine.suspend t.eng (fun resume -> Queue.push (Writer resume) t.queue)
  else t.writer <- true

(* Grant as much of the queue head as possible: one writer, or a maximal
   batch of consecutive readers. Ownership transfers directly. *)
let grant t =
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some (Writer _) -> (
      match Queue.pop t.queue with
      | Writer resume ->
          t.writer <- true;
          resume ()
      | Reader _ -> assert false)
  | Some (Reader _) ->
      let rec batch () =
        match Queue.peek_opt t.queue with
        | Some (Reader _) -> (
            match Queue.pop t.queue with
            | Reader resume ->
                t.readers <- t.readers + 1;
                resume ();
                batch ()
            | Writer _ -> assert false)
        | Some (Writer _) | None -> ()
      in
      batch ()

let up_read t ~core =
  Hw.Cacheline.access t.line ~core;
  assert (t.readers > 0);
  t.readers <- t.readers - 1;
  if t.readers = 0 && not t.writer then grant t

let up_write t ~core =
  Hw.Cacheline.access t.line ~core;
  assert t.writer;
  t.writer <- false;
  grant t

let with_read t ~core f =
  down_read t ~core;
  match f () with
  | v ->
      up_read t ~core;
      v
  | exception e ->
      up_read t ~core;
      raise e

let with_write t ~core f =
  down_write t ~core;
  match f () with
  | v ->
      up_write t ~core;
      v
  | exception e ->
      up_write t ~core;
      raise e

let line_ops t = Hw.Cacheline.ops t.line
let line_wait t = Hw.Cacheline.total_wait t.line
