open Sim

(** Reader-writer semaphore in the style of Linux's [mmap_sem].

    Every down/up performs one atomic on the semaphore's cache line — the
    scalability cost: even uncontended read acquisitions bounce the line
    between sockets — plus sleeping exclusion with FIFO fairness (a queued
    writer blocks later readers, so writers are not starved). *)

type t

val create : Engine.t -> Hw.Params.t -> Hw.Topology.t -> name:string -> t

val down_read : t -> core:Hw.Topology.core -> unit
val up_read : t -> core:Hw.Topology.core -> unit
val down_write : t -> core:Hw.Topology.core -> unit
val up_write : t -> core:Hw.Topology.core -> unit

val with_read : t -> core:Hw.Topology.core -> (unit -> 'a) -> 'a
val with_write : t -> core:Hw.Topology.core -> (unit -> 'a) -> 'a

val line_ops : t -> int
(** Atomic operations performed on the semaphore's cache line. *)

val line_wait : t -> Time.t
(** Total time spent serialised on the cache line. *)
