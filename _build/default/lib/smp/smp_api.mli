(** Thread-handle API over {!Smp_os}, mirroring [Popcorn.Api] so workloads
    and benchmarks drive both OS models through the same shapes. *)

module K = Kernelmodel

type thread = { sys : Smp_os.t; proc : Smp_os.process; task : K.Task.t }

val current_core : thread -> Hw.Topology.core
val tid : thread -> K.Ids.tid
val pid : thread -> K.Ids.pid

val compute : thread -> Sim.Time.t -> unit

val spawn : thread -> (thread -> unit) -> K.Ids.tid
(** Clone a thread running the body; the shared scheduler places it. *)

val mmap :
  thread -> len:int -> prot:K.Vma.prot -> (K.Vma.vma, string) result

val munmap : thread -> start:int -> len:int -> (unit, string) result

val mprotect :
  thread -> start:int -> len:int -> prot:K.Vma.prot -> (unit, string) result

val read : thread -> addr:int -> (int, string) result
val write : thread -> addr:int -> (unit, string) result

type wait_result = Smp_os.wait_result = Woken | Timed_out

val futex_wait :
  thread -> ?timeout:Sim.Time.t -> addr:int -> unit -> wait_result

val futex_wake : thread -> addr:int -> count:int -> int

val fork : thread -> (thread -> unit) -> Smp_os.process
(** Child process running the body with a COW-inherited address space;
    reaped when its last thread exits. *)

val start_process : Smp_os.t -> (thread -> unit) -> Smp_os.process
val wait_exit : Smp_os.t -> Smp_os.process -> unit
