(** The SMP Linux baseline: one shared kernel image over all cores.

    Same mechanisms as the Popcorn model (tasks, VMAs, demand faulting,
    futexes) but with the shared-memory structure of a symmetric monolithic
    kernel: one task list under a global lock, one VMA tree per process
    under an [mmap_sem] whose cache line every core hammers, one futex hash
    table with bucket spinlocks, and TLB-shootdown IPIs to every core
    running the process on unmap. No messages, no replicas — and therefore
    the contention collapse the paper measures. *)

open Sim
module K = Kernelmodel

type process = {
  pid : K.Ids.pid;
  vmas : K.Vma.t;
  pt : K.Page_table.t;
  page_version : (int, int) Hashtbl.t;
  mmap_sem : Rwsem.t;
  mm_line : Hw.Cacheline.t;  (** mm_users / counters cache line. *)
  mutable live_threads : int;
  mutable threads_per_core : (Hw.Topology.core, int) Hashtbl.t;
  exit_waiters : unit Waitq.t;
}

type t = {
  machine : Hw.Machine.t;
  sched : K.Sched.t;  (** all cores, one scheduler domain. *)
  tasklist_lock : Hw.Spinlock.t;
  pid_alloc : K.Ids.allocator;
  tid_alloc : K.Ids.allocator;
  futex : K.Futex.t;
  futex_buckets : Hw.Spinlock.t array;
  procs : (K.Ids.pid, process) Hashtbl.t;
  tasks : (K.Ids.tid, K.Task.t) Hashtbl.t;
}

val boot : Hw.Machine.t -> t

val eng : t -> Engine.t
val params : t -> Hw.Params.t
val topo : t -> Hw.Topology.t

val create_process : t -> process * K.Task.t
(** Fresh process with the conventional initial layout; live count 1. *)

val note_core : process -> Hw.Topology.core -> int -> unit
(** Track which cores run this mm (the TLB-shootdown victim set). *)

val clone : t -> process -> core:Hw.Topology.core -> K.Task.t
(** pthread_create: stack mmap under [mmap_sem] + clone under the global
    task-list lock. *)

val exit_thread : t -> process -> K.Task.t -> unit

val fork : t -> process -> core:Hw.Topology.core -> process * K.Task.t
(** COW-style fork; see {!Smp_api.fork}. *)

val reap : t -> process -> unit
(** Free a dead process's frames. *)

val mmap :
  t -> process -> core:Hw.Topology.core -> len:int -> prot:K.Vma.prot ->
  (K.Vma.vma, string) result

val munmap :
  t -> process -> core:Hw.Topology.core -> start:int -> len:int ->
  (unit, string) result

val mprotect :
  t -> process -> core:Hw.Topology.core -> start:int -> len:int ->
  prot:K.Vma.prot -> (unit, string) result

val touch :
  t -> process -> core:Hw.Topology.core -> addr:int ->
  access:K.Fault.access -> (K.Fault.classification, string) result
(** Memory access with demand faulting ([mmap_sem] read path). *)

val read : t -> process -> core:Hw.Topology.core -> addr:int ->
  (int, string) result

val write : t -> process -> core:Hw.Topology.core -> addr:int ->
  (unit, string) result

type wait_result = Woken | Timed_out

val futex_wait :
  t -> process -> core:Hw.Topology.core -> ?timeout:Time.t -> unit ->
  addr:int -> wait_result

val futex_wake :
  t -> process -> core:Hw.Topology.core -> addr:int -> count:int -> int

val wait_exit : t -> process -> unit
