lib/stats/breakdown.ml: Format Hashtbl List
