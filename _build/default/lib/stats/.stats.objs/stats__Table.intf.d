lib/stats/table.mli:
