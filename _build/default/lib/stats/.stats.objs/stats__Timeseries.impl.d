lib/stats/timeseries.ml: Hashtbl List
