lib/stats/timeseries.mli:
