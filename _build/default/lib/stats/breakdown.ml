type t = {
  tbl : (string, float ref) Hashtbl.t;
  mutable order : string list; (* reversed insertion order *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let add t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some r -> r := !r +. v
  | None ->
      Hashtbl.add t.tbl name (ref v);
      t.order <- name :: t.order

let get t name =
  match Hashtbl.find_opt t.tbl name with Some r -> !r | None -> 0.

let components t =
  List.rev_map (fun name -> (name, get t name)) t.order

let total t = List.fold_left (fun acc (_, v) -> acc +. v) 0. (components t)

let pp ~unit fmt t =
  let tot = total t in
  let pct v = if tot = 0. then 0. else 100. *. v /. tot in
  List.iter
    (fun (name, v) ->
      Format.fprintf fmt "  %-28s %10.2f%s (%5.1f%%)@\n" name v unit (pct v))
    (components t);
  Format.fprintf fmt "  %-28s %10.2f%s@\n" "TOTAL" tot unit
