(** Named latency breakdowns, e.g. the phases of one thread migration.

    Components keep insertion order so tables print in pipeline order. *)

type t

val create : unit -> t

val add : t -> string -> float -> unit
(** Accumulate [v] under the component name (creating it on first use). *)

val get : t -> string -> float
(** Total for a component; 0. if absent. *)

val components : t -> (string * float) list
(** Insertion order. *)

val total : t -> float

val pp : unit:string -> Format.formatter -> t -> unit
(** Multi-line "component: value (pct%)" rendering. *)
