(** Online summary statistics (Welford's algorithm). *)

type t

val create : unit -> t

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0. when empty. *)

val variance : t -> float
(** Sample variance; 0. with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val total : t -> float

val merge : t -> t -> t
(** Combine two summaries as if all observations went to one. *)

val pp : unit:string -> Format.formatter -> t -> unit
