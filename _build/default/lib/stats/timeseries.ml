type t = { bucket_ns : int; tbl : (int, float ref) Hashtbl.t }

let create ~bucket_ns =
  assert (bucket_ns > 0);
  { bucket_ns; tbl = Hashtbl.create 64 }

let bump t idx v =
  match Hashtbl.find_opt t.tbl idx with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add t.tbl idx (ref v)

let add t ~at v =
  assert (at >= 0);
  bump t (at / t.bucket_ns) v

let add_span t ~from_ns ~until_ns =
  if until_ns > from_ns then begin
    let first = from_ns / t.bucket_ns and last = (until_ns - 1) / t.bucket_ns in
    for idx = first to last do
      let lo = max from_ns (idx * t.bucket_ns) in
      let hi = min until_ns ((idx + 1) * t.bucket_ns) in
      bump t idx (float_of_int (hi - lo))
    done
  end

let buckets t =
  Hashtbl.fold (fun idx r acc -> (idx * t.bucket_ns, !r) :: acc) t.tbl []
  |> List.sort compare

let normalised t =
  List.map (fun (at, v) -> (at, v /. float_of_int t.bucket_ns)) (buckets t)

let total t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.tbl 0.
