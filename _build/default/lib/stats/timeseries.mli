(** Time-bucketed accumulators, for utilisation and rate curves.

    A timeseries divides time into fixed-width buckets and accumulates a
    float per bucket (e.g. busy nanoseconds, operation counts). Reporting
    yields (bucket_start, value) pairs, optionally normalised by the
    bucket width to a rate/utilisation. *)

type t

val create : bucket_ns:int -> t
(** [bucket_ns > 0]. *)

val add : t -> at:int -> float -> unit
(** Accumulate [v] into the bucket containing time [at] (ns, >= 0). *)

val add_span : t -> from_ns:int -> until_ns:int -> unit
(** Accumulate an interval (e.g. a busy period), split exactly across the
    buckets it covers. No-op when [until_ns <= from_ns]. *)

val buckets : t -> (int * float) list
(** Non-empty buckets, ascending by start time. *)

val normalised : t -> (int * float) list
(** Like {!buckets} but each value divided by the bucket width — an
    interval-accumulated series becomes utilisation in [0,1]. *)

val total : t -> float
