lib/workloads/adapters.ml: Kernelmodel Os_intf Popcorn Smp
