lib/workloads/adapters.mli: Os_intf Popcorn Smp
