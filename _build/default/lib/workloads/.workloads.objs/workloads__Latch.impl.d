lib/workloads/latch.ml: Sim
