lib/workloads/latch.mli: Sim
