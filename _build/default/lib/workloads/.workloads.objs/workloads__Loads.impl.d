lib/workloads/loads.ml: Latch Os_intf Result Sim Time
