lib/workloads/loads.mli: Os_intf Sim
