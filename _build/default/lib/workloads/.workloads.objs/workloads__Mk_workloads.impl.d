lib/workloads/mk_workloads.ml: Array Kernelmodel Latch Multikernel Sim Time
