lib/workloads/mk_workloads.mli: Multikernel Sim
