lib/workloads/os_intf.ml: Sim
