(** {!Os_intf.S} instances for the Popcorn and SMP models. *)

module Popcorn_os : Os_intf.S with type thread = Popcorn.Api.thread = struct
  type thread = Popcorn.Api.thread

  let name = "popcorn"

  let spawn th ?target body = ignore (Popcorn.Api.spawn th ?target body)
  let compute = Popcorn.Api.compute

  let mmap th ~len =
    match Popcorn.Api.mmap th ~len ~prot:Kernelmodel.Vma.prot_rw with
    | Ok vma -> Ok vma.Kernelmodel.Vma.start
    | Error e -> Error e

  let munmap th ~start ~len = Popcorn.Api.munmap th ~start ~len
  let read th ~addr = Popcorn.Api.read th ~addr
  let write th ~addr = Popcorn.Api.write th ~addr

  let futex_wait th ~addr =
    match Popcorn.Api.futex_wait th ~addr () with
    | Popcorn.Api.Woken -> ()
    | Popcorn.Api.Timed_out -> assert false

  let futex_wake th ~addr ~count = Popcorn.Api.futex_wake th ~addr ~count

  let nplaces th = Popcorn.Types.nkernels th.Popcorn.Api.cluster

  let migrate =
    Some (fun th ~dst -> ignore (Popcorn.Api.migrate th ~dst))
end

module Smp_os : Os_intf.S with type thread = Smp.Smp_api.thread = struct
  type thread = Smp.Smp_api.thread

  let name = "smp-linux"

  let spawn th ?target body =
    ignore target;
    ignore (Smp.Smp_api.spawn th body)

  let compute = Smp.Smp_api.compute

  let mmap th ~len =
    match Smp.Smp_api.mmap th ~len ~prot:Kernelmodel.Vma.prot_rw with
    | Ok vma -> Ok vma.Kernelmodel.Vma.start
    | Error e -> Error e

  let munmap th ~start ~len = Smp.Smp_api.munmap th ~start ~len
  let read th ~addr = Smp.Smp_api.read th ~addr
  let write th ~addr = Smp.Smp_api.write th ~addr

  let futex_wait th ~addr =
    match Smp.Smp_api.futex_wait th ~addr () with
    | Smp.Smp_api.Woken -> ()
    | Smp.Smp_api.Timed_out -> assert false

  let futex_wake th ~addr ~count = Smp.Smp_api.futex_wake th ~addr ~count

  let nplaces _ = 1
  let migrate = None
end
