(** {!Os_intf.S} instances for the Popcorn and SMP models, so benchmarks
    run literally the same program on both. *)

module Popcorn_os : Os_intf.S with type thread = Popcorn.Api.thread
module Smp_os : Os_intf.S with type thread = Smp.Smp_api.thread
