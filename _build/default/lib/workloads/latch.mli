(** Harness-level completion latch.

    Joins workload workers without charging any OS cost: the join is the
    stopwatch around the workload, not part of the benchmarked system. *)

type t

val create : Sim.Engine.t -> int -> t
(** [create eng n]: opens after [n] arrivals. *)

val arrive : t -> unit
val wait : t -> unit
