(** Workload generators, parametric over the OS model.

    These are the programs the evaluation runs on both Popcorn and SMP
    Linux. Workers are spread round-robin across placement targets
    (kernels) on Popcorn; SMP ignores placement. *)

open Sim

let page = 4096

module Make (Os : Os_intf.S) = struct
  let place th i = i mod Os.nplaces th

  (** Run [workers] group members, worker [i] on place [i mod places],
      then join. Returns after every worker finished. *)
  let run_workers eng (root : Os.thread) ~workers body =
    let latch = Latch.create eng workers in
    for i = 0 to workers - 1 do
      Os.spawn root ~target:(place root i) (fun th ->
          body i th;
          Latch.arrive latch)
    done;
    Latch.wait latch

  (** F2: thread-creation storm — [spawners] threads each create
      [per_spawner] short-lived group members as fast as they can. *)
  let spawn_storm eng (root : Os.thread) ~spawners ~per_spawner =
    run_workers eng root ~workers:spawners (fun i th ->
        let latch = Latch.create eng per_spawner in
        for j = 0 to per_spawner - 1 do
          Os.spawn th
            ~target:(place th (i + j))
            (fun child ->
              Os.compute child (Time.us 1);
              Latch.arrive latch)
        done;
        Latch.wait latch)

  (** F3: concurrent mmap/munmap churn — [workers] threads each perform
      [ops] map-touch-unmap cycles of [pages] pages. *)
  let mmap_stress eng (root : Os.thread) ~workers ~ops ~pages =
    run_workers eng root ~workers (fun _i th ->
        for _ = 1 to ops do
          match Os.mmap th ~len:(pages * page) with
          | Error e -> failwith e
          | Ok start ->
              (match Os.write th ~addr:start with
              | Ok () -> ()
              | Error e -> failwith e);
              (match Os.munmap th ~start ~len:(pages * page) with
              | Ok () -> ()
              | Error e -> failwith e)
        done)

  (** F4 helper: touch [pages] consecutive pages from [base]. *)
  let page_walk (th : Os.thread) ~base ~pages ~write =
    for i = 0 to pages - 1 do
      let addr = base + (i * page) in
      let r =
        if write then Os.write th ~addr
        else Result.map (fun _ -> ()) (Os.read th ~addr)
      in
      match r with Ok () -> () | Error e -> failwith e
    done

  (** F5/F6: futex ping-pong pairs. Each pair does [rounds] round trips:
      A wakes B and sleeps; B wakes A and sleeps. Wakes that find nobody
      (startup races) are retried with a tiny backoff — the same loop a
      userspace semaphore performs. *)
  let futex_pingpong eng (root : Os.thread) ~pairs ~rounds =
    let base =
      match Os.mmap root ~len:(((2 * pairs) + 1) * page) with
      | Ok a -> a
      | Error e -> failwith e
    in
    let latch = Latch.create eng (2 * pairs) in
    let addr_of slot = base + (slot * page) in
    let wake_until th addr =
      while Os.futex_wake th ~addr ~count:1 = 0 do
        Os.compute th (Time.us 2)
      done
    in
    for p = 0 to pairs - 1 do
      let a_addr = addr_of (2 * p) and b_addr = addr_of ((2 * p) + 1) in
      (* A starts the rally; B echoes. *)
      Os.spawn root ~target:(place root (2 * p)) (fun th ->
          for _ = 1 to rounds do
            wake_until th b_addr;
            Os.futex_wait th ~addr:a_addr
          done;
          Latch.arrive latch);
      Os.spawn root
        ~target:(place root ((2 * p) + 1))
        (fun th ->
          for _ = 1 to rounds do
            Os.futex_wait th ~addr:b_addr;
            wake_until th a_addr
          done;
          Latch.arrive latch)
    done;
    Latch.wait latch

  (* ---- F6 application classes ---- *)

  (** CPU-bound (NPB EP-like): pure parallel compute, one join. *)
  let app_cpu_bound eng (root : Os.thread) ~workers ~iters =
    run_workers eng root ~workers (fun _i th ->
        for _ = 1 to iters do
          Os.compute th (Time.us 200)
        done)

  (** Memory-management-bound (web-server / JVM-like allocation churn):
      compute interleaved with mmap/touch/munmap of a working buffer. *)
  let app_mm_bound eng (root : Os.thread) ~workers ~iters =
    run_workers eng root ~workers (fun _i th ->
        for _ = 1 to iters do
          Os.compute th (Time.us 30);
          match Os.mmap th ~len:(4 * page) with
          | Error e -> failwith e
          | Ok start ->
              page_walk th ~base:start ~pages:4 ~write:true;
              (match Os.munmap th ~start ~len:(4 * page) with
              | Ok () -> ()
              | Error e -> failwith e)
        done)

  (** Communication-bound (stencil-like): each worker repeatedly writes
      its own tile and reads its right neighbour's — true data sharing
      that the coherence protocol must mediate every iteration. *)
  let app_comm_bound eng (root : Os.thread) ~workers ~iters =
    let base =
      match Os.mmap root ~len:(workers * page) with
      | Ok a -> a
      | Error e -> failwith e
    in
    let tile w = base + (w mod workers * page) in
    run_workers eng root ~workers (fun w th ->
        for _ = 1 to iters do
          Os.compute th (Time.us 20);
          (match Os.write th ~addr:(tile w) with
          | Ok () -> ()
          | Error e -> failwith e);
          match Os.read th ~addr:(tile (w + 1)) with
          | Ok _ -> ()
          | Error e -> failwith e
        done)

  (** Synchronisation-bound (pipeline-like): ping-pong pairs with a little
      compute per round. *)
  let app_sync_bound eng (root : Os.thread) ~workers ~iters =
    let pairs = max 1 (workers / 2) in
    let base =
      match Os.mmap root ~len:(((2 * pairs) + 1) * page) with
      | Ok a -> a
      | Error e -> failwith e
    in
    let latch = Latch.create eng (2 * pairs) in
    let addr_of slot = base + (slot * page) in
    let wake_until th addr =
      while Os.futex_wake th ~addr ~count:1 = 0 do
        Os.compute th (Time.us 2)
      done
    in
    for p = 0 to pairs - 1 do
      let a_addr = addr_of (2 * p) and b_addr = addr_of ((2 * p) + 1) in
      Os.spawn root ~target:(place root (2 * p)) (fun th ->
          for _ = 1 to iters do
            Os.compute th (Time.us 20);
            wake_until th b_addr;
            Os.futex_wait th ~addr:a_addr
          done;
          Latch.arrive latch);
      Os.spawn root
        ~target:(place root ((2 * p) + 1))
        (fun th ->
          for _ = 1 to iters do
            Os.futex_wait th ~addr:b_addr;
            Os.compute th (Time.us 20);
            wake_until th a_addr
          done;
          Latch.arrive latch)
    done;
    Latch.wait latch
end
