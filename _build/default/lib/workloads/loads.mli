(** Workload generators, parametric over the OS model (see {!Os_intf.S}).

    These are the programs the evaluation runs on both Popcorn and SMP
    Linux; workers spread round-robin across placement targets (kernels)
    on Popcorn, while SMP ignores placement. *)

module Make (Os : Os_intf.S) : sig
  val run_workers :
    Sim.Engine.t -> Os.thread -> workers:int -> (int -> Os.thread -> unit) ->
    unit
  (** Spawn [workers] group members (worker [i] on place [i mod places])
      and join them. *)

  val spawn_storm :
    Sim.Engine.t -> Os.thread -> spawners:int -> per_spawner:int -> unit
  (** F2: concurrent thread-creation storm. *)

  val mmap_stress :
    Sim.Engine.t -> Os.thread -> workers:int -> ops:int -> pages:int -> unit
  (** F3: concurrent map-touch-unmap churn. *)

  val page_walk : Os.thread -> base:int -> pages:int -> write:bool -> unit
  (** F4 helper: touch consecutive pages. *)

  val futex_pingpong :
    Sim.Engine.t -> Os.thread -> pairs:int -> rounds:int -> unit
  (** F5: futex round trips between thread pairs. *)

  val app_cpu_bound :
    Sim.Engine.t -> Os.thread -> workers:int -> iters:int -> unit
  (** F6: embarrassingly parallel compute (NPB EP-like). *)

  val app_mm_bound :
    Sim.Engine.t -> Os.thread -> workers:int -> iters:int -> unit
  (** F6: allocation churn (mmap/touch/munmap per iteration). *)

  val app_comm_bound :
    Sim.Engine.t -> Os.thread -> workers:int -> iters:int -> unit
  (** F6: stencil-style neighbour sharing (true data sharing). *)

  val app_sync_bound :
    Sim.Engine.t -> Os.thread -> workers:int -> iters:int -> unit
  (** F6: futex ping-pong pipeline with light compute. *)
end
