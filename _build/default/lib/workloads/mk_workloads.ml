(** Multikernel (Barrelfish-like) versions of the benchmark workloads.

    These are {e rewritten} around explicit domains and channels — a
    multikernel cannot run the shared-memory pthread programs unchanged,
    which is exactly the programmability gap the paper's replicated-kernel
    design closes. Functionally each produces the same amount of work as
    its shared-memory counterpart in [Loads]. *)

open Sim
module Mk = Multikernel

let page = 4096

(** F2 analogue: spawn [spawners] dispatchers; each spans [per_spawner]
    further dispatchers (round-robin over cores) doing trivial work. *)
let spawn_storm (sys : Mk.t) eng ~cores ~spawners ~per_spawner ~on_done =
  Mk.start_domain sys ~core:0 (fun d0 ->
      let spawner_latch = Latch.create eng spawners in
      for i = 0 to spawners - 1 do
        Mk.spawn_dispatcher d0 ~core:(i mod cores) (fun di ->
            let children = Latch.create eng per_spawner in
            for j = 0 to per_spawner - 1 do
              Mk.spawn_dispatcher di
                ~core:((i + j) mod cores)
                (fun dj ->
                  Mk.compute dj (Time.us 1);
                  Latch.arrive children)
            done;
            Latch.wait children;
            Latch.arrive spawner_latch)
      done;
      Latch.wait spawner_latch;
      on_done ())

(** F6 CPU-bound analogue: one dispatcher per worker, pure compute. *)
let app_cpu_bound (sys : Mk.t) eng ~cores ~workers ~iters ~on_done =
  Mk.start_domain sys ~core:0 (fun d0 ->
      let latch = Latch.create eng workers in
      for i = 0 to workers - 1 do
        Mk.spawn_dispatcher d0 ~core:(i mod cores) (fun d ->
            for _ = 1 to iters do
              Mk.compute d (Time.us 200)
            done;
            Latch.arrive latch)
      done;
      Latch.wait latch;
      on_done ())

(** F6 mm-bound analogue: allocation churn is purely local per dispatcher
    (private address spaces — no consistency to maintain). *)
let app_mm_bound (sys : Mk.t) eng ~cores ~workers ~iters ~on_done =
  Mk.start_domain sys ~core:0 (fun d0 ->
      let latch = Latch.create eng workers in
      for i = 0 to workers - 1 do
        Mk.spawn_dispatcher d0 ~core:(i mod cores) (fun d ->
            for _ = 1 to iters do
              Mk.compute d (Time.us 30);
              (match Mk.mmap d ~len:(4 * page) ~prot:Kernelmodel.Vma.prot_rw with
              | Error e -> failwith e
              | Ok vma ->
                  let start = vma.Kernelmodel.Vma.start in
                  for p = 0 to 3 do
                    match
                      Mk.touch d ~addr:(start + (p * page))
                        ~access:Kernelmodel.Fault.Write
                    with
                    | Ok _ -> ()
                    | Error e -> failwith e
                  done;
                  (match Mk.munmap d ~start ~len:(4 * page) with
                  | Ok () -> ()
                  | Error e -> failwith e))
            done;
            Latch.arrive latch)
      done;
      Latch.wait latch;
      on_done ())

(** F6 comm-bound analogue: neighbour exchange by explicit messages — the
    multikernel's only option, since dispatchers share no memory. Each
    round a worker computes, sends its tile (one page) to its left
    neighbour and receives its right neighbour's. *)
let app_comm_bound (sys : Mk.t) eng ~cores ~workers ~iters ~on_done =
  Mk.start_domain sys ~core:0 (fun d0 ->
      let latch = Latch.create eng workers in
      let chans = Array.init workers (fun _ -> Mk.make_chan sys) in
      for w = 0 to workers - 1 do
        Mk.spawn_dispatcher d0 ~core:(w mod cores) (fun d ->
            let left = (w + workers - 1) mod workers in
            for _ = 1 to iters do
              Mk.compute d (Time.us 20);
              Mk.chan_send d chans.(left) ~dst_core:(left mod cores) ~data:w
                ~bytes:page;
              ignore (Mk.chan_recv d chans.(w))
            done;
            Latch.arrive latch)
      done;
      Latch.wait latch;
      on_done ())

(** F6 sync-bound analogue: channel-based ping-pong between dispatcher
    pairs (messages instead of futexes). *)
let app_sync_bound (sys : Mk.t) eng ~cores ~workers ~iters ~on_done =
  Mk.start_domain sys ~core:0 (fun d0 ->
      let pairs = max 1 (workers / 2) in
      let latch = Latch.create eng (2 * pairs) in
      for p = 0 to pairs - 1 do
        let core_a = 2 * p mod cores and core_b = ((2 * p) + 1) mod cores in
        let chan_a = Mk.make_chan sys and chan_b = Mk.make_chan sys in
        Mk.spawn_dispatcher d0 ~core:core_a (fun d ->
            for _ = 1 to iters do
              Mk.compute d (Time.us 20);
              Mk.chan_send d chan_b ~dst_core:core_b ~data:1 ~bytes:64;
              ignore (Mk.chan_recv d chan_a)
            done;
            Latch.arrive latch);
        Mk.spawn_dispatcher d0 ~core:core_b (fun d ->
            for _ = 1 to iters do
              ignore (Mk.chan_recv d chan_b);
              Mk.compute d (Time.us 20);
              Mk.chan_send d chan_a ~dst_core:core_a ~data:1 ~bytes:64
            done;
            Latch.arrive latch)
      done;
      Latch.wait latch;
      on_done ())
