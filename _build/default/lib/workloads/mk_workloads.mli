(** Multikernel (Barrelfish-like) versions of the benchmark workloads —
    rewritten around explicit domains and channels, since a multikernel
    cannot run the shared-memory programs unchanged (the programmability
    gap the paper's design closes). Each call invokes [on_done] once the
    workload completes. *)

val spawn_storm :
  Multikernel.t -> Sim.Engine.t -> cores:int -> spawners:int ->
  per_spawner:int -> on_done:(unit -> unit) -> Multikernel.domain

val app_cpu_bound :
  Multikernel.t -> Sim.Engine.t -> cores:int -> workers:int -> iters:int ->
  on_done:(unit -> unit) -> Multikernel.domain

val app_mm_bound :
  Multikernel.t -> Sim.Engine.t -> cores:int -> workers:int -> iters:int ->
  on_done:(unit -> unit) -> Multikernel.domain

val app_comm_bound :
  Multikernel.t -> Sim.Engine.t -> cores:int -> workers:int -> iters:int ->
  on_done:(unit -> unit) -> Multikernel.domain

val app_sync_bound :
  Multikernel.t -> Sim.Engine.t -> cores:int -> workers:int -> iters:int ->
  on_done:(unit -> unit) -> Multikernel.domain
