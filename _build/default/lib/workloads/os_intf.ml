(** Common surface over the Popcorn and SMP-Linux models.

    Benchmarks drive both OS models through this signature so every
    comparison runs literally the same program. [target] placement hints
    name a kernel for Popcorn and are ignored by SMP (its single scheduler
    domain places threads itself) — matching how the same pthread program
    behaves on both systems. The multikernel baseline is deliberately NOT
    behind this interface: a multikernel cannot run the shared-memory
    program unchanged, which is the paper's point; its benchmarks live in
    [Mk_workloads]. *)

module type S = sig
  type thread

  val name : string

  val spawn : thread -> ?target:int -> (thread -> unit) -> unit
  (** Clone a group member running the body; returns immediately. *)

  val compute : thread -> Sim.Time.t -> unit

  val mmap : thread -> len:int -> (int, string) result
  (** Anonymous RW mapping; returns the start address. *)

  val munmap : thread -> start:int -> len:int -> (unit, string) result
  val read : thread -> addr:int -> (int, string) result
  val write : thread -> addr:int -> (unit, string) result

  val futex_wait : thread -> addr:int -> unit
  val futex_wake : thread -> addr:int -> count:int -> int

  val nplaces : thread -> int
  (** Number of placement targets (kernels for Popcorn, 1 for SMP). *)

  val migrate : (thread -> dst:int -> unit) option
  (** Thread migration, when the OS supports it. *)
end
