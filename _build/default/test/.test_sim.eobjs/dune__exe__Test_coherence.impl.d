test/test_coherence.ml: Alcotest Api Array Cluster Hashtbl Hw Kernelmodel List Msg Popcorn Printf QCheck QCheck_alcotest Sim Types Workloads
