test/test_core.ml: Alcotest Api Cluster Hw Kernelmodel Migration Popcorn Sim Types
