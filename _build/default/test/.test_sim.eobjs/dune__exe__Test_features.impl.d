test/test_features.ml: Alcotest Api Array Balancer Cluster Hashtbl Hw Kernelmodel List Migration Msg Option Popcorn Printf QCheck QCheck_alcotest Sim Types Vfs Workloads
