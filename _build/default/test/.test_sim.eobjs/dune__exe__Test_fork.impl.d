test/test_fork.ml: Alcotest Api Cluster Hw Kernelmodel Popcorn Sim Smp Types Workloads
