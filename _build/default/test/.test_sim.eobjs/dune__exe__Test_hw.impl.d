test/test_hw.ml: Alcotest Engine Hw List QCheck QCheck_alcotest Sim Time
