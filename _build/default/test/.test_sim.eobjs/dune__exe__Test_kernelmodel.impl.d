test/test_kernelmodel.ml: Alcotest Array Engine Hw Kernelmodel List Prng QCheck QCheck_alcotest Sim Time
