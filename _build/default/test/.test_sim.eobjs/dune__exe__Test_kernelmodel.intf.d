test/test_kernelmodel.mli:
