test/test_msg.ml: Alcotest Engine Hashtbl Hw List Msg Option Prng QCheck QCheck_alcotest Sim Time
