test/test_multikernel.ml: Alcotest Engine Hw Kernelmodel List Multikernel Sim Time
