test/test_multikernel.mli:
