test/test_sim.ml: Alcotest Array Barrier Buffer Channel Cond Eheap Engine List Mutex Prng QCheck QCheck_alcotest Semaphore Sim Time Trace Waitq
