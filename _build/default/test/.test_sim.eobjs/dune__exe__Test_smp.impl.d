test/test_smp.ml: Alcotest Engine Hw Kernelmodel List Printf Sim Smp Time
