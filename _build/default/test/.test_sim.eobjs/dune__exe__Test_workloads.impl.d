test/test_workloads.ml: Alcotest Engine Experiments Hw List Multikernel Popcorn Sim Smp Workloads
