(* Integration smoke tests for the whole Popcorn stack: boot a cluster,
   create processes, spawn across kernels, migrate, fault pages, futex. *)

open Popcorn

let mk_cluster ?(kernels = 4) ?(cores_per_kernel = 4) ?opts () =
  let machine =
    Hw.Machine.create ~sockets:2
      ~cores_per_socket:(kernels * cores_per_kernel / 2)
      ()
  in
  let cluster = Cluster.boot ?opts machine ~kernels ~cores_per_kernel in
  (machine, cluster)

let run machine = Sim.Engine.run machine.Hw.Machine.eng

let test_boot () =
  let _machine, cluster = mk_cluster () in
  Alcotest.(check int) "kernels" 4 (Types.nkernels cluster)

let test_spawn_and_migrate () =
  let machine, cluster = mk_cluster () in
  let result = ref None in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            Api.compute th (Sim.Time.us 10);
            let b = Api.migrate th ~dst:2 in
            Alcotest.(check bool) "total positive" true (b.Migration.total_ns > 0);
            Alcotest.(check int) "now on kernel 2" 2
              th.Api.task.Kernelmodel.Task.kernel;
            Api.compute th (Sim.Time.us 10);
            result := Some b)
      in
      Api.wait_exit cluster proc);
  run machine;
  match !result with
  | None -> Alcotest.fail "thread did not finish"
  | Some b ->
      Alcotest.(check bool) "import measured" true (b.Migration.import_ns > 0)

let test_remote_spawn_and_memory () =
  let machine, cluster = mk_cluster () in
  let done_ = ref false in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            (* Map a region, write locally, spawn a remote thread that
               reads it: must see the committed version. *)
            let vma =
              match Api.mmap th ~len:(16 * 4096) ~prot:Kernelmodel.Vma.prot_rw with
              | Ok v -> v
              | Error e -> Alcotest.fail e
            in
            let addr = vma.Kernelmodel.Vma.start in
            (match Api.write th ~addr with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            let child_done = ref false in
            let _tid =
              Api.spawn th ~target:1 (fun child ->
                  (match Api.read child ~addr with
                  | Ok v -> Alcotest.(check int) "coherent read" 1 v
                  | Error e -> Alcotest.fail e);
                  child_done := true)
            in
            while not !child_done do
              Api.compute th (Sim.Time.us 50)
            done)
      in
      Api.wait_exit cluster proc;
      done_ := true);
  run machine;
  Alcotest.(check bool) "completed" true !done_

let test_futex_cross_kernel () =
  let machine, cluster = mk_cluster () in
  let woken = ref false in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let addr = 0x800000 in
            let _tid =
              Api.spawn th ~target:3 (fun child ->
                  match Api.futex_wait child ~addr () with
                  | Api.Woken -> woken := true
                  | Api.Timed_out -> Alcotest.fail "unexpected timeout")
            in
            Api.compute th (Sim.Time.ms 1);
            let n = ref 0 in
            while !n = 0 do
              n := Api.futex_wake th ~addr ~count:1;
              if !n = 0 then Api.compute th (Sim.Time.us 100)
            done)
      in
      Api.wait_exit cluster proc);
  run machine;
  Alcotest.(check bool) "woken" true !woken

let () =
  Alcotest.run "popcorn-integration"
    [
      ( "smoke",
        [
          Alcotest.test_case "boot" `Quick test_boot;
          Alcotest.test_case "spawn+migrate" `Quick test_spawn_and_migrate;
          Alcotest.test_case "remote memory" `Quick test_remote_spawn_and_memory;
          Alcotest.test_case "cross-kernel futex" `Quick test_futex_cross_kernel;
        ] );
    ]
