(* Tests for the extended OS services: exit_group, kill, migration
   prefetch, the load balancer, and protocol robustness under injected
   message-processing jitter. *)

open Popcorn
module K = Kernelmodel

let page = 4096

let mk ?(kernels = 4) ?opts ?seed () =
  let machine =
    Hw.Machine.create ?seed ~sockets:2 ~cores_per_socket:(kernels * 2) ()
  in
  (machine, Cluster.boot ?opts machine ~kernels ~cores_per_kernel:4)

let run machine = Sim.Engine.run machine.Hw.Machine.eng
let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* --- exit_group --- *)

let test_exit_group_terminates_all () =
  let machine, cluster = mk () in
  let side_effects = ref 0 in
  let observed_live = ref (-1) in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            (* Workers across kernels, looping forever on compute. *)
            for k = 0 to 3 do
              ignore
                (Api.spawn th ~target:k (fun child ->
                     while true do
                       Api.compute child (Sim.Time.us 100);
                       incr side_effects
                     done))
            done;
            Api.compute th (Sim.Time.ms 1);
            Api.exit_group th)
      in
      Api.wait_exit cluster proc;
      observed_live := proc.Types.live_threads);
  run machine;
  Alcotest.(check int) "group fully dead" 0 !observed_live;
  Alcotest.(check bool) "workers ran, then stopped" true (!side_effects > 0);
  (* Nobody is left in any kernel's task table for that group. *)
  Array.iter
    (fun (k : Types.kernel) ->
      Alcotest.(check int)
        (Printf.sprintf "kernel %d task table empty" k.Types.kid)
        0
        (Hashtbl.length k.Types.tasks))
    cluster.Types.kernels

let test_exit_group_from_remote_member () =
  let machine, cluster = mk () in
  let finished = ref false in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            (* A remote member (not the origin) pulls the trigger. *)
            ignore
              (Api.spawn th ~target:2 (fun child ->
                   Api.compute child (Sim.Time.us 50);
                   Api.exit_group child));
            while true do
              Api.compute th (Sim.Time.us 100)
            done)
      in
      Api.wait_exit cluster proc;
      finished := true);
  run machine;
  Alcotest.(check bool) "exit observed" true !finished

(* --- kill --- *)

let test_kill_single_thread () =
  let machine, cluster = mk () in
  let victim_cycles = ref 0 and sibling_cycles = ref 0 in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let victim =
              Api.spawn th ~target:3 (fun child ->
                  while true do
                    Api.compute child (Sim.Time.us 50);
                    incr victim_cycles
                  done)
            in
            let _sibling =
              Api.spawn th ~target:1 (fun child ->
                  for _ = 1 to 20 do
                    Api.compute child (Sim.Time.us 50);
                    incr sibling_cycles
                  done)
            in
            Api.compute th (Sim.Time.us 500);
            Alcotest.(check bool) "victim found" true (Api.kill th ~tid:victim);
            (* A second kill finds nothing. *)
            Api.compute th (Sim.Time.us 200);
            Alcotest.(check bool) "already dead" false
              (Api.kill th ~tid:victim))
      in
      Api.wait_exit cluster proc);
  run machine;
  Alcotest.(check bool) "victim stopped early" true (!victim_cycles < 20);
  Alcotest.(check int) "sibling unharmed" 20 !sibling_cycles

(* --- migration prefetch --- *)

let post_migration_touch_time ~prefetch =
  let opts =
    { Types.default_options with Types.migration_prefetch = prefetch }
  in
  let machine, cluster = mk ~opts () in
  let result = ref 0 in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let vma = ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw) in
            (* Build a working set of 8 pages. *)
            for i = 0 to 7 do
              ok (Api.write th ~addr:(vma.K.Vma.start + (i * page)))
            done;
            ignore (Api.migrate th ~dst:2);
            let eng = Types.eng cluster in
            let t0 = Sim.Engine.now eng in
            for i = 0 to 7 do
              ignore (ok (Api.read th ~addr:(vma.K.Vma.start + (i * page))))
            done;
            result := Sim.Engine.now eng - t0)
      in
      Api.wait_exit cluster proc);
  run machine;
  !result

let test_prefetch_accelerates_post_migration () =
  let cold = post_migration_touch_time ~prefetch:0 in
  let warm = post_migration_touch_time ~prefetch:8 in
  Alcotest.(check bool)
    (Printf.sprintf "prefetch helps (%dns vs %dns)" cold warm)
    true
    (warm * 3 < cold)

(* --- balancer --- *)

let test_balancer_spreads_load () =
  let machine, cluster = mk () in
  let balancer = Balancer.start ~period:(Sim.Time.us 200) ~threshold:1 cluster in
  let final_kernels = ref [] in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let latch = Workloads.Latch.create (Types.eng cluster) 8 in
            (* All 8 workers start on kernel 0; hints should spread them. *)
            for _ = 1 to 8 do
              ignore
                (Api.spawn th ~target:0 (fun child ->
                     for _ = 1 to 30 do
                       Api.compute child (Sim.Time.us 100)
                     done;
                     final_kernels :=
                       child.Api.task.K.Task.kernel :: !final_kernels;
                     Workloads.Latch.arrive latch))
            done;
            Workloads.Latch.wait latch)
      in
      Api.wait_exit cluster proc;
      Balancer.stop balancer);
  run machine;
  let distinct = List.sort_uniq compare !final_kernels in
  Alcotest.(check bool)
    (Printf.sprintf "threads spread to %d kernels (%d hints)"
       (List.length distinct)
       (Balancer.hints_issued balancer))
    true
    (List.length distinct >= 3);
  Alcotest.(check bool) "hints were issued" true
    (Balancer.hints_issued balancer > 0)

(* --- robustness: coherence invariants under message jitter --- *)

let jittered_workload ~seed =
  let machine, cluster = mk ~seed () in
  Msg.Transport.set_jitter cluster.Types.fabric ~max_extra:(Sim.Time.us 20);
  let the_pid = ref 0 in
  let rng = Sim.Prng.create ~seed in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            the_pid := Api.pid th;
            let shared = ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw) in
            let latch = Workloads.Latch.create (Types.eng cluster) 6 in
            for _ = 1 to 6 do
              let target = Sim.Prng.int rng 4 in
              ignore
                (Api.spawn th ~target (fun child ->
                     for _ = 1 to 15 do
                       let addr =
                         shared.K.Vma.start + (Sim.Prng.int rng 8 * page)
                       in
                       match Sim.Prng.int rng 3 with
                       | 0 -> ignore (ok (Api.read child ~addr))
                       | 1 -> ok (Api.write child ~addr)
                       | _ -> ignore (Api.migrate child ~dst:(Sim.Prng.int rng 4))
                     done;
                     Workloads.Latch.arrive latch))
            done;
            Workloads.Latch.wait latch)
      in
      Api.wait_exit cluster proc);
  run machine;
  (cluster, !the_pid)

let prop_coherence_under_jitter =
  QCheck.Test.make ~name:"coherence invariants hold under message jitter"
    ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let cluster, pid = jittered_workload ~seed in
      (* Reuse the invariant suite from the coherence tests: single writer
         + read coherence, inlined here to avoid a test-lib dependency. *)
      let holders : (int, (int * bool) list) Hashtbl.t = Hashtbl.create 64 in
      Array.iter
        (fun (k : Types.kernel) ->
          match Types.find_replica k pid with
          | None -> ()
          | Some r ->
              K.Page_table.iter r.Types.pt (fun ~vpn pte ->
                  let cur =
                    Option.value ~default:[] (Hashtbl.find_opt holders vpn)
                  in
                  Hashtbl.replace holders vpn
                    ((k.Types.kid, pte.K.Page_table.writable) :: cur)))
        cluster.Types.kernels;
      Hashtbl.iter
        (fun _vpn l ->
          let writers = List.filter snd l in
          assert (List.length writers <= 1);
          assert (not (writers <> [] && List.length l > 1)))
        holders;
      true)

(* --- heterogeneous-ISA migration --- *)

let test_heterogeneous_migration_cost () =
  let migrate_with ~opts =
    let machine, cluster = mk ~opts () in
    let total = ref 0 in
    Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
        let proc =
          Api.start_process cluster ~origin:0 (fun th ->
              let b = Api.migrate th ~dst:2 in
              total := b.Migration.total_ns)
        in
        Api.wait_exit cluster proc);
    run machine;
    !total
  in
  let homo = migrate_with ~opts:Types.default_options in
  let het =
    migrate_with
      ~opts:
        {
          Types.default_options with
          Types.arch_of_kernel =
            (fun k -> if k >= 2 then Types.Arm64 else Types.X86_64);
        }
  in
  (* The ABI transformation is ~25us of extra source-side work. *)
  Alcotest.(check bool)
    (Printf.sprintf "cross-ISA pays transformation (%d vs %d)" homo het)
    true
    (het > homo + 20_000)

(* --- option matrix: invariants hold under every configuration --- *)

let workload_with_opts ~opts ~seed =
  let machine, cluster = mk ~opts ~seed () in
  let rng = Sim.Prng.create ~seed in
  let the_pid = ref 0 in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            the_pid := Api.pid th;
            let shared = ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw) in
            let latch = Workloads.Latch.create (Types.eng cluster) 6 in
            for _ = 1 to 6 do
              ignore
                (Api.spawn th ~target:(Sim.Prng.int rng 4) (fun child ->
                     for _ = 1 to 12 do
                       let addr =
                         shared.K.Vma.start + (Sim.Prng.int rng 8 * page)
                       in
                       match Sim.Prng.int rng 3 with
                       | 0 -> ignore (ok (Api.read child ~addr))
                       | 1 -> ok (Api.write child ~addr)
                       | _ -> ignore (Api.migrate child ~dst:(Sim.Prng.int rng 4))
                     done;
                     Workloads.Latch.arrive latch))
            done;
            Workloads.Latch.wait latch)
      in
      Api.wait_exit cluster proc);
  run machine;
  (cluster, !the_pid)

let check_single_writer cluster pid =
  let holders : (int, (int * bool) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (k : Types.kernel) ->
      match Types.find_replica k pid with
      | None -> ()
      | Some r ->
          K.Page_table.iter r.Types.pt (fun ~vpn pte ->
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt holders vpn)
              in
              Hashtbl.replace holders vpn
                ((k.Types.kid, pte.K.Page_table.writable) :: cur)))
    cluster.Types.kernels;
  Hashtbl.iter
    (fun vpn l ->
      let writers = List.filter snd l in
      if List.length writers > 1 then
        Alcotest.failf "page %d has multiple writers" vpn;
      if writers <> [] && List.length l > 1 then
        Alcotest.failf "page %d writable and replicated" vpn)
    holders

let test_invariants_across_option_matrix () =
  let base = Types.default_options in
  List.iteri
    (fun i opts ->
      let cluster, pid = workload_with_opts ~opts ~seed:(100 + i) in
      check_single_writer cluster pid)
    [
      { base with Types.read_replication = false };
      { base with Types.use_dummy_pool = false };
      { base with Types.migration_prefetch = 8 };
      {
        base with
        Types.read_replication = false;
        Types.migration_prefetch = 4;
        Types.use_dummy_pool = false;
      };
    ]

(* --- VFS / remote syscalls --- *)

let test_vfs_shared_fds_across_kernels () =
  let machine, cluster = mk () in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let fd = ok (Api.open_file th ~path:"/data/log") in
            Alcotest.(check int) "writes all" 4096
              (ok (Api.file_write th ~fd ~len:4096));
            let latch = Workloads.Latch.create (Types.eng cluster) 1 in
            ignore
              (Api.spawn th ~target:3 (fun child ->
                   (* Same fd, other kernel: the cursor is shared (it sits
                      at EOF after the parent's write) — rewind first. *)
                   Alcotest.(check int) "shared cursor at EOF" 0
                     (ok (Api.file_read child ~fd ~len:8192));
                   ignore (ok (Api.file_seek child ~fd ~pos:0));
                   Alcotest.(check int) "remote read sees data" 4096
                     (ok (Api.file_read child ~fd ~len:8192));
                   Alcotest.(check int) "EOF" 0
                     (ok (Api.file_read child ~fd ~len:4096));
                   Alcotest.(check int) "remote append" 100
                     (ok (Api.file_write child ~fd ~len:100));
                   Workloads.Latch.arrive latch));
            Workloads.Latch.wait latch;
            ok (Api.close_file th ~fd);
            (match Api.file_read th ~fd ~len:1 with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "read after close succeeded");
            (* Reopen: contents persist (write appended at the shared
               cursor, which was at 4096 after the remote read). *)
            let fd2 = ok (Api.open_file th ~path:"/data/log") in
            Alcotest.(check int) "file grew to 4196" 4196
              (ok (Api.file_read th ~fd:fd2 ~len:1_000_000)))
      in
      Api.wait_exit cluster proc);
  run machine;
  Alcotest.(check bool) "ops counted" true (Vfs.total_ops cluster >= 8)

let test_vfs_remote_costs_more () =
  let latency ~target =
    let machine, cluster = mk () in
    let result = ref 0 in
    Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
        let proc =
          Api.start_process cluster ~origin:0 (fun th ->
              let fd = ok (Api.open_file th ~path:"/f") in
              ignore (ok (Api.file_write th ~fd ~len:4096));
              let latch = Workloads.Latch.create (Types.eng cluster) 1 in
              ignore
                (Api.spawn th ~target (fun child ->
                     let eng = Types.eng cluster in
                     let t0 = Sim.Engine.now eng in
                     ignore (ok (Api.file_read child ~fd ~len:4096));
                     result := Sim.Engine.now eng - t0;
                     Workloads.Latch.arrive latch));
              Workloads.Latch.wait latch)
        in
        Api.wait_exit cluster proc);
    run machine;
    !result
  in
  let local = latency ~target:0 and remote = latency ~target:3 in
  Alcotest.(check bool)
    (Printf.sprintf "remote syscall slower (%d vs %d)" local remote)
    true
    (remote > local + 2000)

(* --- tracing --- *)

let test_cluster_tracing () =
  let machine, cluster = mk () in
  let tr = Cluster.enable_tracing cluster in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let vma = ok (Api.mmap th ~len:page ~prot:K.Vma.prot_rw) in
            ok (Api.write th ~addr:vma.K.Vma.start);
            ignore (Api.migrate th ~dst:1);
            ignore (ok (Api.read th ~addr:vma.K.Vma.start)))
      in
      Api.wait_exit cluster proc);
  run machine;
  let cats =
    List.sort_uniq compare
      (List.map (fun e -> e.Sim.Trace.cat) (Sim.Trace.events tr))
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " traced") true (List.mem c cats))
    [ "mm"; "fault"; "migrate" ]

(* Everything at once: jittered messaging, kills, forks, migrations and
   memory traffic — the state at quiescence must still satisfy the
   single-writer invariant and leave no task-table stragglers. *)
let prop_chaos =
  QCheck.Test.make ~name:"chaos: kills+forks+jitter keep invariants" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let machine, cluster = mk ~seed () in
      Msg.Transport.set_jitter cluster.Types.fabric
        ~max_extra:(Sim.Time.us 10);
      let rng = Sim.Prng.create ~seed in
      let the_pid = ref 0 in
      Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
          let proc =
            Api.start_process cluster ~origin:0 (fun th ->
                the_pid := Api.pid th;
                let shared =
                  ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw)
                in
                let latch = Workloads.Latch.create (Types.eng cluster) 5 in
                let tids = ref [] in
                for _ = 1 to 5 do
                  let tid =
                    Api.spawn th
                      ~target:(Sim.Prng.int rng 4)
                      (fun child ->
                        (try
                           for _ = 1 to 12 do
                             let addr =
                               shared.K.Vma.start
                               + (Sim.Prng.int rng 8 * page)
                             in
                             match Sim.Prng.int rng 4 with
                             | 0 -> ignore (ok (Api.read child ~addr))
                             | 1 -> ok (Api.write child ~addr)
                             | 2 ->
                                 ignore
                                   (Api.migrate child
                                      ~dst:(Sim.Prng.int rng 4))
                             | _ ->
                                 let c =
                                   Api.fork child (fun grand ->
                                       ignore (Api.read grand ~addr))
                                 in
                                 Api.wait_exit child.Api.cluster c
                           done
                         with Api.Killed -> ());
                        Workloads.Latch.arrive latch)
                  in
                  tids := tid :: !tids
                done;
                (* Kill one worker mid-flight; its latch arrival still
                   happens via the Killed handler above. *)
                Api.compute th (Sim.Time.us 300);
                ignore (Api.kill th ~tid:(List.hd !tids));
                Workloads.Latch.wait latch)
          in
          Api.wait_exit cluster proc);
      run machine;
      (* Single-writer invariant. *)
      let pid = !the_pid in
      let holders : (int, int) Hashtbl.t = Hashtbl.create 64 in
      Array.iter
        (fun (k : Types.kernel) ->
          match Types.find_replica k pid with
          | None -> ()
          | Some r ->
              K.Page_table.iter r.Types.pt (fun ~vpn pte ->
                  if pte.K.Page_table.writable then begin
                    assert (not (Hashtbl.mem holders vpn));
                    Hashtbl.add holders vpn k.Types.kid
                  end))
        cluster.Types.kernels;
      (* No live tasks remain anywhere. *)
      Array.for_all
        (fun (k : Types.kernel) -> Hashtbl.length k.Types.tasks = 0)
        cluster.Types.kernels)

let () =
  Alcotest.run "popcorn-features"
    [
      ( "exit_group",
        [
          Alcotest.test_case "terminates all members" `Quick
            test_exit_group_terminates_all;
          Alcotest.test_case "from a remote member" `Quick
            test_exit_group_from_remote_member;
        ] );
      ("kill", [ Alcotest.test_case "single thread" `Quick test_kill_single_thread ]);
      ( "prefetch",
        [
          Alcotest.test_case "accelerates post-migration touches" `Quick
            test_prefetch_accelerates_post_migration;
        ] );
      ( "balancer",
        [ Alcotest.test_case "spreads skewed load" `Quick test_balancer_spreads_load ] );
      ( "heterogeneous",
        [
          Alcotest.test_case "cross-ISA transformation cost" `Quick
            test_heterogeneous_migration_cost;
        ] );
      ( "option-matrix",
        [
          Alcotest.test_case "invariants under every configuration" `Quick
            test_invariants_across_option_matrix;
        ] );
      ( "vfs",
        [
          Alcotest.test_case "shared fds across kernels" `Quick
            test_vfs_shared_fds_across_kernels;
          Alcotest.test_case "remote forwarding costs more" `Quick
            test_vfs_remote_costs_more;
        ] );
      ( "tracing",
        [ Alcotest.test_case "protocol events captured" `Quick test_cluster_tracing ] );
      ( "robustness",
        List.map QCheck_alcotest.to_alcotest
          [ prop_coherence_under_jitter; prop_chaos ] );
    ]
