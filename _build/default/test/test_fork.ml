(* Tests for fork(): COW inheritance, isolation, remote-member forks,
   nesting, and frame reaping on both OS models. *)

open Popcorn
module K = Kernelmodel

let page = 4096

let mk ?opts () =
  let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  (machine, Cluster.boot ?opts machine ~kernels:4 ~cores_per_kernel:4)

let run machine = Sim.Engine.run machine.Hw.Machine.eng
let ok = function Ok v -> v | Error e -> Alcotest.fail e

let test_child_inherits_and_isolates () =
  let machine, cluster = mk () in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let vma = ok (Api.mmap th ~len:(2 * page) ~prot:K.Vma.prot_rw) in
            let addr = vma.K.Vma.start in
            ok (Api.write th ~addr);
            ok (Api.write th ~addr);
            let child_done = Workloads.Latch.create (Types.eng cluster) 1 in
            let child =
              Api.fork th (fun c ->
                  Alcotest.(check bool) "new pid" true (Api.pid c <> Api.pid th);
                  (* Inherited contents... *)
                  Alcotest.(check int) "inherits v2" 2 (ok (Api.read c ~addr));
                  (* ...but writes are private. *)
                  ok (Api.write c ~addr);
                  Alcotest.(check int) "child sees v3" 3 (ok (Api.read c ~addr));
                  Workloads.Latch.arrive child_done)
            in
            Workloads.Latch.wait child_done;
            Alcotest.(check int) "parent unaffected" 2 (ok (Api.read th ~addr));
            Api.wait_exit cluster child)
      in
      Api.wait_exit cluster proc);
  run machine

let test_fork_from_remote_member () =
  let machine, cluster = mk () in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let vma = ok (Api.mmap th ~len:page ~prot:K.Vma.prot_rw) in
            ok (Api.write th ~addr:vma.K.Vma.start);
            let latch = Workloads.Latch.create (Types.eng cluster) 1 in
            ignore
              (Api.spawn th ~target:2 (fun member ->
                   let child =
                     Api.fork member (fun c ->
                         (* Child is homed where the forker ran, with the
                            full (lazily-replicated!) parent layout. *)
                         Alcotest.(check int) "child origin" 2
                           c.Api.proc.Types.origin;
                         Alcotest.(check int) "inherited page" 1
                           (ok (Api.read c ~addr:vma.K.Vma.start)))
                   in
                   Alcotest.(check int) "pid from kernel 2's slice" 2
                     (K.Ids.owner_kernel ~stride:4 child.Types.pid);
                   Api.wait_exit member.Api.cluster child;
                   Workloads.Latch.arrive latch));
            Workloads.Latch.wait latch)
      in
      Api.wait_exit cluster proc);
  run machine

let test_nested_fork () =
  let machine, cluster = mk () in
  let generations = ref 0 in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let vma = ok (Api.mmap th ~len:page ~prot:K.Vma.prot_rw) in
            ok (Api.write th ~addr:vma.K.Vma.start);
            let c1 =
              Api.fork th (fun child ->
                  incr generations;
                  let c2 =
                    Api.fork child (fun grandchild ->
                        incr generations;
                        Alcotest.(check int) "grandchild inherits" 1
                          (ok (Api.read grandchild ~addr:vma.K.Vma.start)))
                  in
                  Api.wait_exit child.Api.cluster c2)
            in
            Api.wait_exit cluster c1)
      in
      Api.wait_exit cluster proc);
  run machine;
  Alcotest.(check int) "two generations ran" 2 !generations

let test_reap_frees_frames () =
  let opts = { Types.default_options with Types.reap_on_exit = true } in
  let machine, cluster = mk ~opts () in
  let baseline = ref 0 and after = ref 0 in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      baseline := Hw.Memory.used_count machine.Hw.Machine.mem;
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let vma = ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw) in
            for i = 0 to 7 do
              ok (Api.write th ~addr:(vma.K.Vma.start + (i * page)))
            done;
            (* Spread pages onto another kernel too. *)
            let latch = Workloads.Latch.create (Types.eng cluster) 1 in
            ignore
              (Api.spawn th ~target:3 (fun c ->
                   for i = 0 to 7 do
                     ignore (ok (Api.read c ~addr:(vma.K.Vma.start + (i * page))))
                   done;
                   Workloads.Latch.arrive latch));
            Workloads.Latch.wait latch)
      in
      Api.wait_exit cluster proc;
      (* Reap notifications are async; let them drain. *)
      Sim.Engine.sleep machine.Hw.Machine.eng (Sim.Time.ms 1);
      after := Hw.Memory.used_count machine.Hw.Machine.mem);
  run machine;
  Alcotest.(check int) "all frames returned" !baseline !after

let test_smp_fork_and_reap () =
  let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  let sys = Smp.Smp_os.boot machine in
  let baseline = ref 0 and after = ref 0 in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      baseline := Hw.Memory.used_count machine.Hw.Machine.mem;
      let proc =
        Smp.Smp_api.start_process sys (fun th ->
            let vma = ok (Smp.Smp_api.mmap th ~len:(2 * page) ~prot:K.Vma.prot_rw) in
            let addr = vma.K.Vma.start in
            ok (Smp.Smp_api.write th ~addr);
            let child_done = ref false in
            let child =
              Smp.Smp_api.fork th (fun c ->
                  Alcotest.(check int) "smp child inherits" 1
                    (ok (Smp.Smp_api.read c ~addr));
                  ok (Smp.Smp_api.write c ~addr);
                  child_done := true)
            in
            Smp.Smp_api.wait_exit sys child;
            Alcotest.(check bool) "child ran" true !child_done;
            Alcotest.(check int) "parent isolated" 1
              (ok (Smp.Smp_api.read th ~addr)))
      in
      Smp.Smp_api.wait_exit sys proc;
      after := Hw.Memory.used_count machine.Hw.Machine.mem);
  run machine;
  (* The parent's frames remain (no reap for the root in this test), but
     the child's private copies must be gone. *)
  Alcotest.(check bool) "child frames reaped" true (!after <= !baseline + 2)

let () =
  Alcotest.run "fork"
    [
      ( "popcorn",
        [
          Alcotest.test_case "inherit + isolate" `Quick
            test_child_inherits_and_isolates;
          Alcotest.test_case "fork from remote member" `Quick
            test_fork_from_remote_member;
          Alcotest.test_case "nested" `Quick test_nested_fork;
          Alcotest.test_case "reap frees frames" `Quick test_reap_frees_frames;
        ] );
      ( "smp",
        [ Alcotest.test_case "fork + reap" `Quick test_smp_fork_and_reap ] );
    ]
