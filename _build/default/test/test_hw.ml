(* Tests for the hardware model: topology, memory, spinlock contention,
   cache-line serialisation, IPIs. *)

open Sim

let mk_machine () = Hw.Machine.create ~sockets:2 ~cores_per_socket:4 ()

let test_topology () =
  let topo = Hw.Topology.create ~sockets:2 ~cores_per_socket:4 in
  Alcotest.(check int) "total" 8 (Hw.Topology.total_cores topo);
  Alcotest.(check int) "socket of 3" 0 (Hw.Topology.socket_of topo 3);
  Alcotest.(check int) "socket of 4" 1 (Hw.Topology.socket_of topo 4);
  Alcotest.(check (list int)) "cores of socket 1" [ 4; 5; 6; 7 ]
    (Hw.Topology.cores_of_socket topo 1);
  Alcotest.(check bool) "same socket" true (Hw.Topology.same_socket topo 0 3);
  Alcotest.(check bool) "cross socket" false (Hw.Topology.same_socket topo 3 4);
  Alcotest.(check bool) "distance self" true
    (Hw.Topology.distance topo 2 2 = Hw.Topology.Self);
  Alcotest.(check bool) "distance cross" true
    (Hw.Topology.distance topo 0 7 = Hw.Topology.Cross_socket)

let test_params_costs () =
  let p = Hw.Params.default in
  Alcotest.(check bool) "hierarchy" true
    (p.Hw.Params.line_local < p.Hw.Params.line_same_socket
    && p.Hw.Params.line_same_socket < p.Hw.Params.line_cross_socket);
  let local = Hw.Params.copy_cost p ~bytes:4096 ~cross_socket:false in
  let cross = Hw.Params.copy_cost p ~bytes:4096 ~cross_socket:true in
  Alcotest.(check bool) "cross copy slower" true (cross > local);
  Alcotest.(check bool) "bigger copy slower" true
    (Hw.Params.copy_cost p ~bytes:8192 ~cross_socket:false > local)

let test_memory_alloc_free () =
  let topo = Hw.Topology.create ~sockets:2 ~cores_per_socket:2 in
  let mem = Hw.Memory.create topo ~frames_per_socket:4 in
  Alcotest.(check int) "total" 8 (Hw.Memory.total_frames mem);
  let f0 = Hw.Memory.alloc_exn mem ~node:0 in
  Alcotest.(check int) "node of frame" 0 (Hw.Memory.node_of_frame mem f0);
  let f1 = Hw.Memory.alloc_exn mem ~node:1 in
  Alcotest.(check int) "node of frame 1" 1 (Hw.Memory.node_of_frame mem f1);
  Alcotest.(check int) "used" 2 (Hw.Memory.used_count mem);
  Hw.Memory.free mem f0;
  Alcotest.(check int) "used after free" 1 (Hw.Memory.used_count mem);
  Alcotest.check_raises "double free"
    (Invalid_argument "Memory.free: double free") (fun () ->
      Hw.Memory.free mem f0)

let test_memory_fallback_and_exhaustion () =
  let topo = Hw.Topology.create ~sockets:2 ~cores_per_socket:1 in
  let mem = Hw.Memory.create topo ~frames_per_socket:2 in
  (* Drain node 0; next node-0 alloc falls back to node 1. *)
  let _ = Hw.Memory.alloc_exn mem ~node:0 in
  let _ = Hw.Memory.alloc_exn mem ~node:0 in
  let f = Hw.Memory.alloc_exn mem ~node:0 in
  Alcotest.(check int) "fallback node" 1 (Hw.Memory.node_of_frame mem f);
  let _ = Hw.Memory.alloc_exn mem ~node:1 in
  Alcotest.(check bool) "exhausted" true (Hw.Memory.alloc mem ~node:0 = None)

let test_spinlock_uncontended_cost () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let lock =
    Hw.Spinlock.create eng m.Hw.Machine.params m.Hw.Machine.topo ~name:"t"
  in
  let took = ref 0 in
  Engine.spawn eng (fun () ->
      let t0 = Engine.now eng in
      Hw.Spinlock.acquire lock ~core:0;
      took := Engine.now eng - t0;
      Hw.Spinlock.release lock);
  Engine.run eng;
  Alcotest.(check bool) "nonzero but small" true (!took > 0 && !took < 500)

let test_spinlock_contention_grows () =
  (* Total wait under contention must grow superlinearly with contenders
     (the coherence-bounce term). *)
  let total_wait n =
    let m = Hw.Machine.create ~sockets:2 ~cores_per_socket:32 () in
    let eng = m.Hw.Machine.eng in
    let lock =
      Hw.Spinlock.create eng m.Hw.Machine.params m.Hw.Machine.topo ~name:"t"
    in
    for core = 0 to n - 1 do
      Engine.spawn eng (fun () ->
          for _ = 1 to 10 do
            Hw.Spinlock.acquire lock ~core;
            Engine.sleep eng (Time.ns 100);
            Hw.Spinlock.release lock
          done)
    done;
    Engine.run eng;
    (Hw.Spinlock.stats lock).Hw.Spinlock.total_wait
  in
  let w2 = total_wait 2 and w16 = total_wait 16 in
  Alcotest.(check bool) "16 cores wait much more" true (w16 > 20 * w2)

let test_spinlock_fifo () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let lock =
    Hw.Spinlock.create eng m.Hw.Machine.params m.Hw.Machine.topo ~name:"t"
  in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      Hw.Spinlock.acquire lock ~core:0;
      Engine.sleep eng (Time.us 10);
      Hw.Spinlock.release lock);
  for i = 1 to 4 do
    Engine.schedule eng ~after:(i * 100) (fun () ->
        Hw.Spinlock.acquire lock ~core:i;
        order := i :: !order;
        Hw.Spinlock.release lock)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "ticket order" [ 1; 2; 3; 4 ] (List.rev !order)

let test_spinlock_release_unheld () =
  let m = mk_machine () in
  let lock =
    Hw.Spinlock.create m.Hw.Machine.eng m.Hw.Machine.params m.Hw.Machine.topo
      ~name:"x"
  in
  Alcotest.check_raises "release unheld"
    (Invalid_argument "Spinlock.release (x): not held") (fun () ->
      Hw.Spinlock.release lock)

let test_cacheline_serializes () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let line =
    Hw.Cacheline.create eng m.Hw.Machine.params m.Hw.Machine.topo ~name:"l"
  in
  let finished = ref 0 in
  for core = 0 to 7 do
    Engine.spawn eng (fun () ->
        Hw.Cacheline.access line ~core;
        incr finished)
  done;
  Engine.run eng;
  Alcotest.(check int) "all ops done" 8 !finished;
  Alcotest.(check int) "op count" 8 (Hw.Cacheline.ops line);
  (* 8 concurrent ops serialize: elapsed >= 7 transfers (first may be free
     same-core). *)
  Alcotest.(check bool) "serialized" true (Engine.now eng >= 7 * 40)

let test_ipi_latency () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let same = Hw.Ipi.delivery_latency m.Hw.Machine.ipi ~src:0 ~dst:1 in
  let cross = Hw.Ipi.delivery_latency m.Hw.Machine.ipi ~src:0 ~dst:7 in
  Alcotest.(check bool) "cross socket slower" true (cross > same);
  let fired_at = ref 0 in
  Engine.spawn eng (fun () ->
      Hw.Ipi.send m.Hw.Machine.ipi ~src:0 ~dst:7 (fun () ->
          fired_at := Engine.now eng));
  Engine.run eng;
  Alcotest.(check int) "handler delayed by latency" cross !fired_at;
  Alcotest.(check int) "counted" 1 (Hw.Ipi.sent m.Hw.Machine.ipi)

let test_machine_helpers () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let t = ref (0, 0, 0) in
  Engine.spawn eng (fun () ->
      let t0 = Engine.now eng in
      Hw.Machine.compute m (Time.us 3);
      let t1 = Engine.now eng in
      Hw.Machine.copy m ~bytes:8192 ~src_socket:0 ~dst_socket:1;
      let t2 = Engine.now eng in
      Hw.Machine.line_access m ~from:0 ~core:7;
      t := (t1 - t0, t2 - t1, Engine.now eng - t2));
  Engine.run eng;
  let compute, copy, line = !t in
  Alcotest.(check int) "compute exact" (Time.us 3) compute;
  Alcotest.(check bool) "copy >= 1us for 8KiB cross" true (copy > Time.us 1);
  Alcotest.(check int) "cross-socket line" 130 line

let test_engine_trace_hook () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let lines = ref [] in
  Engine.set_trace eng (Some (fun at msg -> lines := (at, msg) :: !lines));
  Engine.spawn eng (fun () ->
      Engine.trace eng (fun () -> "hello");
      Engine.sleep eng (Time.us 1);
      Engine.trace eng (fun () -> "world"));
  Engine.run eng;
  Alcotest.(check int) "two lines" 2 (List.length !lines);
  Engine.set_trace eng None;
  (* Thunks are not forced without a sink. *)
  Engine.spawn eng (fun () ->
      Engine.trace eng (fun () -> Alcotest.fail "forced without sink"));
  Engine.run eng

(* Properties *)

let prop_memory_frames_unique =
  QCheck.Test.make ~name:"allocated frames are unique" ~count:100
    QCheck.(int_bound 50)
    (fun n ->
      let topo = Hw.Topology.create ~sockets:2 ~cores_per_socket:2 in
      let mem = Hw.Memory.create topo ~frames_per_socket:64 in
      let frames = List.init (n + 1) (fun i -> Hw.Memory.alloc_exn mem ~node:(i mod 2)) in
      List.length (List.sort_uniq compare frames) = List.length frames)

let prop_memory_alloc_free_roundtrip =
  QCheck.Test.make ~name:"alloc/free keeps counts consistent" ~count:100
    QCheck.(list bool)
    (fun script ->
      let topo = Hw.Topology.create ~sockets:1 ~cores_per_socket:1 in
      let mem = Hw.Memory.create topo ~frames_per_socket:16 in
      let held = ref [] in
      List.iter
        (fun alloc ->
          if alloc then (
            match Hw.Memory.alloc mem ~node:0 with
            | Some f -> held := f :: !held
            | None -> ())
          else
            match !held with
            | f :: rest ->
                Hw.Memory.free mem f;
                held := rest
            | [] -> ())
        script;
      Hw.Memory.used_count mem = List.length !held)

let () =
  Alcotest.run "hw"
    [
      ( "topology",
        [
          Alcotest.test_case "layout" `Quick test_topology;
          Alcotest.test_case "cost hierarchy" `Quick test_params_costs;
        ] );
      ( "memory",
        [
          Alcotest.test_case "alloc/free" `Quick test_memory_alloc_free;
          Alcotest.test_case "fallback + exhaustion" `Quick
            test_memory_fallback_and_exhaustion;
        ] );
      ( "spinlock",
        [
          Alcotest.test_case "uncontended cost" `Quick
            test_spinlock_uncontended_cost;
          Alcotest.test_case "contention grows" `Quick
            test_spinlock_contention_grows;
          Alcotest.test_case "fifo" `Quick test_spinlock_fifo;
          Alcotest.test_case "release unheld" `Quick
            test_spinlock_release_unheld;
        ] );
      ( "machine",
        [
          Alcotest.test_case "cost helpers" `Quick test_machine_helpers;
          Alcotest.test_case "engine trace hook" `Quick test_engine_trace_hook;
        ] );
      ( "cacheline+ipi",
        [
          Alcotest.test_case "cacheline serializes" `Quick
            test_cacheline_serializes;
          Alcotest.test_case "ipi latency" `Quick test_ipi_latency;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_memory_frames_unique; prop_memory_alloc_free_roundtrip ] );
    ]
