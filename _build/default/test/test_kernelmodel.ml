(* Tests for the kernel machinery: ids, contexts, vma trees, page tables,
   fault classification, futexes, scheduler. *)

open Sim
module K = Kernelmodel

let page = 4096

(* --- ids --- *)

let test_ids_partitioned () =
  let a = K.Ids.make_partitioned ~kernel:0 ~stride:4 in
  let b = K.Ids.make_partitioned ~kernel:1 ~stride:4 in
  let xs = List.init 5 (fun _ -> K.Ids.next a) in
  let ys = List.init 5 (fun _ -> K.Ids.next b) in
  Alcotest.(check (list int)) "kernel 0 slice" [ 4; 8; 12; 16; 20 ] xs;
  Alcotest.(check (list int)) "kernel 1 slice" [ 1; 5; 9; 13; 17 ] ys;
  List.iter
    (fun y -> Alcotest.(check int) "owner" 1 (K.Ids.owner_kernel ~stride:4 y))
    ys

let prop_ids_disjoint =
  QCheck.Test.make ~name:"partitioned id spaces are disjoint" ~count:50
    QCheck.(int_range 2 8)
    (fun stride ->
      let allocs =
        List.init stride (fun k -> K.Ids.make_partitioned ~kernel:k ~stride)
      in
      let ids =
        List.concat_map (fun a -> List.init 50 (fun _ -> K.Ids.next a)) allocs
      in
      List.length (List.sort_uniq compare ids) = List.length ids)

(* --- context --- *)

let test_context_digest () =
  let rng = Prng.create ~seed:1 in
  let c = K.Context.fresh rng ~use_fpu:false in
  Alcotest.(check bool) "self equal" true (K.Context.equal c c);
  Alcotest.(check int) "digest stable" (K.Context.digest c) (K.Context.digest c);
  let c' = K.Context.step c in
  Alcotest.(check bool) "step changes digest" false
    (K.Context.digest c = K.Context.digest c');
  Alcotest.(check bool) "no fpu" false (K.Context.has_fpu c);
  let cf = K.Context.touch_fpu rng c in
  Alcotest.(check bool) "fpu now" true (K.Context.has_fpu cf);
  Alcotest.(check bool) "fpu grows size" true
    (K.Context.size_bytes cf = K.Context.size_bytes c + 512)

(* --- vma --- *)

let mk_vmas () = K.Vma.create ()

let map_ok ?fixed vmas ~len ~prot =
  match K.Vma.map vmas ?fixed ~len ~prot ~kind:K.Vma.Anon () with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let test_vma_basic_map () =
  let v = mk_vmas () in
  let a = map_ok v ~len:(4 * page) ~prot:K.Vma.prot_rw in
  let b = map_ok v ~len:(2 * page) ~prot:K.Vma.prot_r in
  Alcotest.(check bool) "disjoint" true
    (K.Vma.vma_end a <= b.K.Vma.start || K.Vma.vma_end b <= a.K.Vma.start);
  Alcotest.(check int) "count" 2 (K.Vma.count v);
  Alcotest.(check int) "mapped bytes" (6 * page) (K.Vma.mapped_bytes v);
  (match K.Vma.find v (a.K.Vma.start + page) with
  | Some f -> Alcotest.(check int) "find start" a.K.Vma.start f.K.Vma.start
  | None -> Alcotest.fail "find failed");
  Alcotest.(check bool) "miss below" true (K.Vma.find v (a.K.Vma.start - 1) <> Some a)

let test_vma_fixed_overlap_rejected () =
  let v = mk_vmas () in
  let a = map_ok v ~fixed:0x1000_0000 ~len:(4 * page) ~prot:K.Vma.prot_rw in
  (match
     K.Vma.map v ~fixed:(a.K.Vma.start + page) ~len:page ~prot:K.Vma.prot_rw
       ~kind:K.Vma.Anon ()
   with
  | Ok _ -> Alcotest.fail "overlap accepted"
  | Error _ -> ());
  (* Unaligned and empty rejected too. *)
  (match K.Vma.map v ~fixed:123 ~len:page ~prot:K.Vma.prot_rw ~kind:K.Vma.Anon () with
  | Ok _ -> Alcotest.fail "unaligned accepted"
  | Error _ -> ());
  match K.Vma.map v ~len:0 ~prot:K.Vma.prot_rw ~kind:K.Vma.Anon () with
  | Ok _ -> Alcotest.fail "zero length accepted"
  | Error _ -> ()

let test_vma_unmap_splits () =
  let v = mk_vmas () in
  let a = map_ok v ~fixed:0x1000_0000 ~len:(10 * page) ~prot:K.Vma.prot_rw in
  (* Punch a hole in the middle. *)
  (match K.Vma.unmap v ~start:(a.K.Vma.start + (4 * page)) ~len:(2 * page) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "split into two" 2 (K.Vma.count v);
  Alcotest.(check int) "bytes" (8 * page) (K.Vma.mapped_bytes v);
  Alcotest.(check bool) "hole unmapped" true
    (K.Vma.find v (a.K.Vma.start + (5 * page)) = None);
  Alcotest.(check bool) "left present" true
    (K.Vma.find v a.K.Vma.start <> None);
  Alcotest.(check bool) "right present" true
    (K.Vma.find v (a.K.Vma.start + (9 * page)) <> None)

let test_vma_unmap_across_hole () =
  let v = mk_vmas () in
  let _ = map_ok v ~fixed:0x1000_0000 ~len:(2 * page) ~prot:K.Vma.prot_rw in
  let _ = map_ok v ~fixed:(0x1000_0000 + (6 * page)) ~len:(2 * page) ~prot:K.Vma.prot_rw in
  (match K.Vma.unmap v ~start:0x1000_0000 ~len:(8 * page) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "all gone" 0 (K.Vma.count v)

let test_vma_protect_splits () =
  let v = mk_vmas () in
  let a = map_ok v ~fixed:0x1000_0000 ~len:(6 * page) ~prot:K.Vma.prot_rw in
  (match
     K.Vma.protect v ~start:(a.K.Vma.start + (2 * page)) ~len:(2 * page)
       ~prot:K.Vma.prot_r
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "three pieces" 3 (K.Vma.count v);
  (match K.Vma.find v (a.K.Vma.start + (2 * page)) with
  | Some m -> Alcotest.(check bool) "read only" false m.K.Vma.prot.K.Vma.write
  | None -> Alcotest.fail "middle missing");
  (* Protect over a hole errors. *)
  match K.Vma.protect v ~start:0x2000_0000 ~len:page ~prot:K.Vma.prot_r with
  | Ok () -> Alcotest.fail "protect over hole"
  | Error _ -> ()

let test_vma_layout_equality () =
  let build () =
    let v = mk_vmas () in
    let _ = map_ok v ~fixed:0x1000_0000 ~len:(4 * page) ~prot:K.Vma.prot_rw in
    let _ = map_ok v ~len:(2 * page) ~prot:K.Vma.prot_r in
    v
  in
  Alcotest.(check bool) "equal layouts" true
    (K.Vma.equal_layout (build ()) (build ()));
  let v2 = build () in
  ignore (K.Vma.unmap v2 ~start:0x1000_0000 ~len:page);
  Alcotest.(check bool) "diverged" false (K.Vma.equal_layout (build ()) v2)

(* Property: random map/unmap keeps VMAs disjoint and byte-count correct. *)
let prop_vma_disjoint =
  let cmd =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun n -> `Map (1 + (n mod 8))) nat);
          (2, map2 (fun a b -> `Unmap (a mod 32, 1 + (b mod 8))) nat nat);
        ])
  in
  QCheck.Test.make ~name:"vma tree stays disjoint" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_bound 40) cmd))
    (fun script ->
      let v = mk_vmas () in
      List.iter
        (function
          | `Map n ->
              ignore (K.Vma.map v ~len:(n * page) ~prot:K.Vma.prot_rw ~kind:K.Vma.Anon ())
          | `Unmap (slot, n) ->
              let base = K.Vma.page_size * 8 * slot in
              ignore
                (K.Vma.unmap v
                   ~start:(0x7F00_0000_0000 + base)
                   ~len:(n * page)))
        script;
      let vmas = K.Vma.vmas v in
      let rec disjoint = function
        | a :: (b :: _ as rest) ->
            K.Vma.vma_end a <= b.K.Vma.start && disjoint rest
        | _ -> true
      in
      disjoint vmas
      && K.Vma.mapped_bytes v
         = List.fold_left (fun acc (x : K.Vma.vma) -> acc + x.K.Vma.len) 0 vmas)

(* --- page table + faults --- *)

let test_page_table () =
  let pt = K.Page_table.create () in
  K.Page_table.set pt ~vpn:10 { K.Page_table.frame = 1; writable = true };
  K.Page_table.set pt ~vpn:11 { K.Page_table.frame = 2; writable = false };
  Alcotest.(check int) "count" 2 (K.Page_table.count pt);
  Alcotest.(check bool) "downgrade" true (K.Page_table.downgrade pt ~vpn:10);
  (match K.Page_table.get pt ~vpn:10 with
  | Some pte -> Alcotest.(check bool) "now ro" false pte.K.Page_table.writable
  | None -> Alcotest.fail "missing");
  let removed = K.Page_table.clear_range pt ~start:(10 * page) ~len:(2 * page) in
  Alcotest.(check int) "cleared both" 2 (List.length removed);
  Alcotest.(check int) "empty" 0 (K.Page_table.count pt)

let test_fault_classify () =
  let v = mk_vmas () in
  let pt = K.Page_table.create () in
  let a = map_ok v ~fixed:0x1000_0000 ~len:(2 * page) ~prot:K.Vma.prot_rw in
  let ro = map_ok v ~fixed:0x2000_0000 ~len:page ~prot:K.Vma.prot_r in
  let check name exp addr access =
    Alcotest.(check bool)
      name true
      (K.Fault.classify v pt ~addr ~access = exp)
  in
  check "unmapped -> segv" K.Fault.Segv 0x3000_0000 K.Fault.Read;
  check "write to ro vma -> segv" K.Fault.Segv ro.K.Vma.start K.Fault.Write;
  check "first touch -> minor" K.Fault.Minor a.K.Vma.start K.Fault.Write;
  K.Page_table.set pt
    ~vpn:(K.Page_table.vpn_of_addr a.K.Vma.start)
    { K.Page_table.frame = 7; writable = false };
  check "read present" K.Fault.Present a.K.Vma.start K.Fault.Read;
  check "write upgrade" K.Fault.Cow_or_upgrade a.K.Vma.start K.Fault.Write;
  ignore (K.Page_table.downgrade pt ~vpn:999)

(* --- futex --- *)

let test_futex_wait_wake () =
  let eng = Engine.create () in
  let f = K.Futex.create eng in
  let woken = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        match K.Futex.wait f ~addr:0x100 () with
        | K.Futex.Woken -> woken := i :: !woken
        | K.Futex.Timed_out -> ())
  done;
  Engine.schedule eng ~after:10 (fun () ->
      Alcotest.(check int) "waiters" 3 (K.Futex.waiters f ~addr:0x100);
      Alcotest.(check int) "woke 2" 2 (K.Futex.wake f ~addr:0x100 ~count:2));
  Engine.schedule eng ~after:20 (fun () ->
      Alcotest.(check int) "woke last" 1 (K.Futex.wake f ~addr:0x100 ~count:5));
  Engine.run eng;
  Alcotest.(check (list int)) "fifo wake order" [ 1; 2; 3 ] (List.rev !woken)

let test_futex_timeout () =
  let eng = Engine.create () in
  let f = K.Futex.create eng in
  let r = ref K.Futex.Woken in
  Engine.spawn eng (fun () ->
      r := K.Futex.wait f ~addr:0x200 ~timeout:(Time.us 5) ());
  Engine.run eng;
  Alcotest.(check bool) "timed out" true (!r = K.Futex.Timed_out);
  (* A later wake finds nobody. *)
  Alcotest.(check int) "no waiters" 0 (K.Futex.wake f ~addr:0x200 ~count:1)

let test_futex_requeue () =
  let eng = Engine.create () in
  let f = K.Futex.create eng in
  let woken = ref 0 in
  for _ = 1 to 4 do
    Engine.spawn eng (fun () ->
        match K.Futex.wait f ~addr:0x300 () with
        | K.Futex.Woken -> incr woken
        | K.Futex.Timed_out -> ())
  done;
  Engine.schedule eng ~after:10 (fun () ->
      let w, m = K.Futex.requeue f ~from_addr:0x300 ~to_addr:0x400 ~max_wake:1 ~max_move:2 in
      Alcotest.(check (pair int int)) "wake 1 move 2" (1, 2) (w, m);
      Alcotest.(check int) "left on 0x300" 1 (K.Futex.waiters f ~addr:0x300);
      Alcotest.(check int) "moved to 0x400" 2 (K.Futex.waiters f ~addr:0x400);
      ignore (K.Futex.wake f ~addr:0x300 ~count:10);
      ignore (K.Futex.wake f ~addr:0x400 ~count:10));
  Engine.run eng;
  Alcotest.(check int) "all woken eventually" 4 !woken

(* Property: wakes never exceed waiters and are conserved. *)
let prop_futex_conservation =
  QCheck.Test.make ~name:"futex wakes conserved" ~count:100
    QCheck.(pair (int_range 0 10) (int_range 0 15))
    (fun (waiters, wakes) ->
      let eng = Engine.create () in
      let f = K.Futex.create eng in
      let woken = ref 0 in
      for _ = 1 to waiters do
        Engine.spawn eng (fun () ->
            match K.Futex.wait f ~addr:0x42 () with
            | K.Futex.Woken -> incr woken
            | K.Futex.Timed_out -> ())
      done;
      let reported = ref 0 in
      Engine.schedule eng ~after:10 (fun () ->
          reported := K.Futex.wake f ~addr:0x42 ~count:wakes);
      Engine.run eng;
      !reported = min waiters wakes && !woken = !reported)

(* Property: protect never changes the mapped byte count. *)
let prop_protect_preserves_bytes =
  QCheck.Test.make ~name:"mprotect preserves mapped bytes" ~count:200
    QCheck.(triple (int_range 1 16) (int_range 0 15) (int_range 1 8))
    (fun (len, off, plen) ->
      let v = mk_vmas () in
      let a = map_ok v ~fixed:0x1000_0000 ~len:(len * page) ~prot:K.Vma.prot_rw in
      let before = K.Vma.mapped_bytes v in
      let start = a.K.Vma.start + (min off (len - 1) * page) in
      let plen = min plen (len - min off (len - 1)) * page in
      (match K.Vma.protect v ~start ~len:plen ~prot:K.Vma.prot_r with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_report e);
      K.Vma.mapped_bytes v = before)

(* --- cpu / sched --- *)

let test_cpu_timeshares () =
  let eng = Engine.create () in
  let cpu = K.Cpu.create eng Hw.Params.default ~core:0 ~quantum:(Time.us 10) in
  let done_at = Array.make 2 0 in
  for i = 0 to 1 do
    Engine.spawn eng (fun () ->
        K.Cpu.compute cpu (Time.us 50);
        done_at.(i) <- Engine.now eng)
  done;
  Engine.run eng;
  (* Both ran 50us on one core: total elapsed >= 100us and both finish near
     the end (interleaved), not one at 50us. *)
  Alcotest.(check bool) "elapsed >= serial" true (Engine.now eng >= Time.us 100);
  Alcotest.(check bool) "interleaved" true (done_at.(0) > Time.us 80);
  Alcotest.(check bool) "busy time accounted" true
    (K.Cpu.busy_time cpu = Time.us 100)

let test_sched_placement () =
  let eng = Engine.create () in
  let s = K.Sched.create eng Hw.Params.default ~cores:[ 0; 1; 2; 3 ] () in
  let picks =
    List.init 4 (fun _ ->
        let c = K.Sched.pick_core s in
        K.Sched.assign s c;
        c)
  in
  Alcotest.(check (list int)) "spread" [ 0; 1; 2; 3 ] picks;
  K.Sched.unassign s 1;
  Alcotest.(check int) "reuse freed" 1 (K.Sched.pick_core s)

let () =
  Alcotest.run "kernelmodel"
    [
      ( "ids",
        [ Alcotest.test_case "partitioned" `Quick test_ids_partitioned ] );
      ("context", [ Alcotest.test_case "digest/fpu" `Quick test_context_digest ]);
      ( "vma",
        [
          Alcotest.test_case "map basics" `Quick test_vma_basic_map;
          Alcotest.test_case "fixed overlap rejected" `Quick
            test_vma_fixed_overlap_rejected;
          Alcotest.test_case "unmap splits" `Quick test_vma_unmap_splits;
          Alcotest.test_case "unmap across hole" `Quick
            test_vma_unmap_across_hole;
          Alcotest.test_case "protect splits" `Quick test_vma_protect_splits;
          Alcotest.test_case "layout equality" `Quick test_vma_layout_equality;
        ] );
      ( "pt+fault",
        [
          Alcotest.test_case "page table" `Quick test_page_table;
          Alcotest.test_case "classification" `Quick test_fault_classify;
        ] );
      ( "futex",
        [
          Alcotest.test_case "wait/wake fifo" `Quick test_futex_wait_wake;
          Alcotest.test_case "timeout" `Quick test_futex_timeout;
          Alcotest.test_case "requeue" `Quick test_futex_requeue;
        ] );
      ( "sched",
        [
          Alcotest.test_case "cpu timeshares" `Quick test_cpu_timeshares;
          Alcotest.test_case "placement" `Quick test_sched_placement;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ids_disjoint;
            prop_vma_disjoint;
            prop_futex_conservation;
            prop_protect_preserves_bytes;
          ] );
    ]
