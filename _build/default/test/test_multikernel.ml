(* Tests for the Barrelfish-style multikernel baseline. *)

open Sim
module Mk = Multikernel
module K = Kernelmodel

let page = 4096

let mk () =
  let m = Hw.Machine.create ~sockets:2 ~cores_per_socket:4 () in
  (m, Mk.boot m)

let test_domain_spans_cores () =
  let machine, sys = mk () in
  let cores_seen = ref [] in
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      let dom =
        Mk.start_domain sys ~core:0 (fun d0 ->
            cores_seen := d0.Mk.core :: !cores_seen;
            let done_ = ref 0 in
            for c = 1 to 3 do
              Mk.spawn_dispatcher d0 ~core:c (fun d ->
                  cores_seen := d.Mk.core :: !cores_seen;
                  Mk.compute d (Time.us 5);
                  incr done_)
            done;
            while !done_ < 3 do
              Mk.compute d0 (Time.us 20)
            done)
      in
      Mk.wait_domain dom);
  Engine.run machine.Hw.Machine.eng;
  Alcotest.(check (list int)) "dispatchers on requested cores" [ 0; 1; 2; 3 ]
    (List.sort compare !cores_seen)

let test_spawn_has_messaging_cost () =
  let machine, sys = mk () in
  let spawn_cost = ref 0 in
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      let dom =
        Mk.start_domain sys ~core:0 (fun d0 ->
            let t0 = Engine.now machine.Hw.Machine.eng in
            Mk.spawn_dispatcher d0 ~core:5 (fun d -> Mk.compute d (Time.us 1));
            spawn_cost := Engine.now machine.Hw.Machine.eng - t0)
      in
      Mk.wait_domain dom);
  Engine.run machine.Hw.Machine.eng;
  (* Remote spawn: request message + 20us construction + ack. *)
  Alcotest.(check bool) "substantial" true (!spawn_cost > Time.us 20)

let test_private_memory () =
  let machine, sys = mk () in
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      let dom =
        Mk.start_domain sys ~core:0 (fun d0 ->
            let vma =
              match Mk.mmap d0 ~len:(2 * page) ~prot:K.Vma.prot_rw with
              | Ok v -> v
              | Error e -> Alcotest.fail e
            in
            let addr = vma.K.Vma.start in
            (match Mk.touch d0 ~addr ~access:K.Fault.Write with
            | Ok _ -> ()
            | Error e -> Alcotest.fail e);
            let sibling_sees = ref None in
            let done_ = ref false in
            Mk.spawn_dispatcher d0 ~core:1 (fun d1 ->
                (* The sibling has its own address space: this address is
                   not necessarily mapped there. *)
                sibling_sees :=
                  Some (K.Vma.find d1.Mk.vmas addr <> None);
                done_ := true);
            while not !done_ do
              Mk.compute d0 (Time.us 20)
            done;
            Alcotest.(check (option bool)) "no shared mapping" (Some false)
              !sibling_sees;
            match Mk.munmap d0 ~start:addr ~len:(2 * page) with
            | Ok () -> ()
            | Error e -> Alcotest.fail e)
      in
      Mk.wait_domain dom);
  Engine.run machine.Hw.Machine.eng

let test_channels_roundtrip () =
  let machine, sys = mk () in
  let transcript = ref [] in
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      let dom =
        Mk.start_domain sys ~core:0 (fun d0 ->
            let to_b = Mk.make_chan sys and to_a = Mk.make_chan sys in
            let finished = ref false in
            Mk.spawn_dispatcher d0 ~core:4 (fun d1 ->
                for _ = 1 to 3 do
                  let v, _ = Mk.chan_recv d1 to_b in
                  transcript := `B v :: !transcript;
                  Mk.chan_send d1 to_a ~dst_core:0 ~data:(v * 10) ~bytes:64
                done;
                finished := true);
            for i = 1 to 3 do
              Mk.chan_send d0 to_b ~dst_core:4 ~data:i ~bytes:64;
              let v, _ = Mk.chan_recv d0 to_a in
              transcript := `A v :: !transcript
            done;
            while not !finished do
              Mk.compute d0 (Time.us 10)
            done)
      in
      Mk.wait_domain dom);
  Engine.run machine.Hw.Machine.eng;
  Alcotest.(check int) "six exchanges" 6 (List.length !transcript);
  Alcotest.(check bool) "replies transformed" true
    (List.mem (`A 30) !transcript && List.mem (`B 3) !transcript)

let test_wait_domain () =
  let machine, sys = mk () in
  let finished = ref false in
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      let dom =
        Mk.start_domain sys ~core:2 (fun d ->
            Mk.compute d (Time.ms 2))
      in
      Mk.wait_domain dom;
      finished := true);
  Engine.run machine.Hw.Machine.eng;
  Alcotest.(check bool) "domain joined" true !finished

let () =
  Alcotest.run "multikernel"
    [
      ( "domains",
        [
          Alcotest.test_case "spans cores" `Quick test_domain_spans_cores;
          Alcotest.test_case "spawn messaging cost" `Quick
            test_spawn_has_messaging_cost;
          Alcotest.test_case "wait" `Quick test_wait_domain;
        ] );
      ( "memory",
        [ Alcotest.test_case "private address spaces" `Quick test_private_memory ] );
      ( "channels",
        [ Alcotest.test_case "roundtrip" `Quick test_channels_roundtrip ] );
    ]
