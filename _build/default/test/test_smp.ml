(* Tests for the SMP Linux baseline: rwsem semantics, clone/exit
   bookkeeping, mm operations with shootdowns, futexes, contention
   behaviour. *)

open Sim
module K = Kernelmodel

let page = 4096

let mk () =
  let m = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  (m, Smp.Smp_os.boot m)

let in_proc (machine, sys) main =
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc = Smp.Smp_api.start_process sys main in
      Smp.Smp_api.wait_exit sys proc);
  Engine.run machine.Hw.Machine.eng

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* --- rwsem --- *)

let test_rwsem_readers_concurrent () =
  let m = Hw.Machine.create ~sockets:1 ~cores_per_socket:8 () in
  let eng = m.Hw.Machine.eng in
  let sem = Smp.Rwsem.create eng m.Hw.Machine.params m.Hw.Machine.topo ~name:"s" in
  let inside = ref 0 and max_inside = ref 0 in
  for core = 0 to 3 do
    Engine.spawn eng (fun () ->
        Smp.Rwsem.down_read sem ~core;
        incr inside;
        max_inside := max !max_inside !inside;
        Engine.sleep eng (Time.us 10);
        decr inside;
        Smp.Rwsem.up_read sem ~core)
  done;
  Engine.run eng;
  Alcotest.(check bool) "readers overlap" true (!max_inside > 1)

let test_rwsem_writer_excludes () =
  let m = Hw.Machine.create ~sockets:1 ~cores_per_socket:8 () in
  let eng = m.Hw.Machine.eng in
  let sem = Smp.Rwsem.create eng m.Hw.Machine.params m.Hw.Machine.topo ~name:"s" in
  let in_write = ref false and violation = ref false in
  Engine.spawn eng (fun () ->
      Smp.Rwsem.down_write sem ~core:0;
      in_write := true;
      Engine.sleep eng (Time.us 20);
      in_write := false;
      Smp.Rwsem.up_write sem ~core:0);
  for core = 1 to 3 do
    Engine.schedule eng ~after:(Time.us 1) (fun () ->
        Smp.Rwsem.down_read sem ~core;
        if !in_write then violation := true;
        Engine.sleep eng (Time.us 5);
        Smp.Rwsem.up_read sem ~core)
  done;
  Engine.run eng;
  Alcotest.(check bool) "no reader inside writer" false !violation

let test_rwsem_writer_not_starved () =
  let m = Hw.Machine.create ~sockets:1 ~cores_per_socket:8 () in
  let eng = m.Hw.Machine.eng in
  let sem = Smp.Rwsem.create eng m.Hw.Machine.params m.Hw.Machine.topo ~name:"s" in
  let writer_done_at = ref 0 in
  (* A stream of readers; a writer arrives early and must get in before
     later readers pile past it. *)
  Engine.spawn eng (fun () ->
      Smp.Rwsem.down_read sem ~core:0;
      Engine.sleep eng (Time.us 10);
      Smp.Rwsem.up_read sem ~core:0);
  Engine.schedule eng ~after:(Time.us 1) (fun () ->
      Smp.Rwsem.down_write sem ~core:1;
      writer_done_at := Engine.now eng;
      Smp.Rwsem.up_write sem ~core:1);
  Engine.schedule eng ~after:(Time.us 2) (fun () ->
      Smp.Rwsem.down_read sem ~core:2;
      (* This reader must run after the queued writer. *)
      Alcotest.(check bool) "writer ran first" true (!writer_done_at > 0);
      Smp.Rwsem.up_read sem ~core:2);
  Engine.run eng

(* --- processes, threads, mm --- *)

let test_clone_and_exit_counts () =
  let sys = mk () in
  let _, os = sys in
  in_proc sys (fun th ->
      (* Park children on futexes so they stay alive for the count. *)
      for i = 1 to 5 do
        ignore
          (Smp.Smp_api.spawn th (fun child ->
               ignore (Smp.Smp_api.futex_wait child ~addr:(0xA000 + (i * 64)) ())))
      done;
      Smp.Smp_api.compute th (Time.ms 1);
      Alcotest.(check int) "live incl children" 6
        th.Smp.Smp_api.proc.Smp.Smp_os.live_threads;
      for i = 1 to 5 do
        let n = ref 0 in
        while !n = 0 do
          n := Smp.Smp_api.futex_wake th ~addr:(0xA000 + (i * 64)) ~count:1;
          if !n = 0 then Smp.Smp_api.compute th (Time.us 50)
        done
      done);
  ignore os

let test_mmap_fault_munmap () =
  let sys = mk () in
  in_proc sys (fun th ->
      let vma = ok (Smp.Smp_api.mmap th ~len:(4 * page) ~prot:K.Vma.prot_rw) in
      let addr = vma.K.Vma.start in
      ok (Smp.Smp_api.write th ~addr);
      Alcotest.(check int) "version 1" 1 (ok (Smp.Smp_api.read th ~addr));
      ok (Smp.Smp_api.write th ~addr);
      Alcotest.(check int) "version 2" 2 (ok (Smp.Smp_api.read th ~addr));
      ok (Smp.Smp_api.munmap th ~start:addr ~len:(4 * page));
      match Smp.Smp_api.read th ~addr with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read after munmap")

let test_munmap_frees_frames () =
  let machine, os = mk () in
  let used_before = ref 0 and used_mid = ref 0 and used_after = ref 0 in
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc = Smp.Smp_api.start_process os (fun th ->
          used_before := Hw.Memory.used_count machine.Hw.Machine.mem;
          let vma = ok (Smp.Smp_api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw) in
          for i = 0 to 7 do
            ok (Smp.Smp_api.write th ~addr:(vma.K.Vma.start + (i * page)))
          done;
          used_mid := Hw.Memory.used_count machine.Hw.Machine.mem;
          ok (Smp.Smp_api.munmap th ~start:vma.K.Vma.start ~len:(8 * page));
          used_after := Hw.Memory.used_count machine.Hw.Machine.mem)
      in
      Smp.Smp_api.wait_exit os proc);
  Engine.run machine.Hw.Machine.eng;
  Alcotest.(check int) "8 frames allocated" (!used_before + 8) !used_mid;
  Alcotest.(check int) "all freed" !used_before !used_after

let test_shootdown_scales_with_threads () =
  (* munmap cost must grow with the number of cores running the process. *)
  let cost_with_threads n =
    let sys = mk () in
    let _, os = sys in
    let result = ref 0 in
    in_proc sys (fun th ->
        let gate = ref 0 in
        for _ = 1 to n do
          ignore
            (Smp.Smp_api.spawn th (fun child ->
                 (* Keep running so the core stays in the mm's set. *)
                 while !gate = 0 do
                   Smp.Smp_api.compute child (Time.us 100)
                 done))
        done;
        Smp.Smp_api.compute th (Time.ms 1);
        let vma = ok (Smp.Smp_api.mmap th ~len:page ~prot:K.Vma.prot_rw) in
        ok (Smp.Smp_api.write th ~addr:vma.K.Vma.start);
        let t0 = Engine.now (Smp.Smp_os.eng os) in
        ok (Smp.Smp_api.munmap th ~start:vma.K.Vma.start ~len:page);
        result := Engine.now (Smp.Smp_os.eng os) - t0;
        gate := 1);
    !result
  in
  let c1 = cost_with_threads 1 and c12 = cost_with_threads 12 in
  Alcotest.(check bool)
    (Printf.sprintf "shootdown grows (%d vs %d)" c1 c12)
    true
    (c12 > c1 + Time.us 3)

let test_futex_roundtrip () =
  let sys = mk () in
  in_proc sys (fun th ->
      let woken = ref false in
      ignore
        (Smp.Smp_api.spawn th (fun child ->
             match Smp.Smp_api.futex_wait child ~addr:0xBEEF000 () with
             | Smp.Smp_api.Woken -> woken := true
             | Smp.Smp_api.Timed_out -> ()));
      Smp.Smp_api.compute th (Time.ms 1);
      let n = ref 0 in
      while !n = 0 do
        n := Smp.Smp_api.futex_wake th ~addr:0xBEEF000 ~count:1;
        if !n = 0 then Smp.Smp_api.compute th (Time.us 50)
      done;
      while not !woken do
        Smp.Smp_api.compute th (Time.us 50)
      done)

let test_pids_unique () =
  let machine, os = mk () in
  let pids = ref [] in
  Engine.spawn machine.Hw.Machine.eng (fun () ->
      for _ = 1 to 5 do
        let proc =
          Smp.Smp_api.start_process os (fun th ->
              Smp.Smp_api.compute th (Time.us 1))
        in
        pids := proc.Smp.Smp_os.pid :: !pids
      done);
  Engine.run machine.Hw.Machine.eng;
  Alcotest.(check int) "unique" 5 (List.length (List.sort_uniq compare !pids))

let () =
  Alcotest.run "smp"
    [
      ( "rwsem",
        [
          Alcotest.test_case "readers concurrent" `Quick
            test_rwsem_readers_concurrent;
          Alcotest.test_case "writer excludes" `Quick
            test_rwsem_writer_excludes;
          Alcotest.test_case "writer not starved" `Quick
            test_rwsem_writer_not_starved;
        ] );
      ( "threads",
        [
          Alcotest.test_case "clone/exit counts" `Quick
            test_clone_and_exit_counts;
          Alcotest.test_case "pids unique" `Quick test_pids_unique;
        ] );
      ( "mm",
        [
          Alcotest.test_case "mmap/fault/munmap" `Quick test_mmap_fault_munmap;
          Alcotest.test_case "munmap frees frames" `Quick
            test_munmap_frees_frames;
          Alcotest.test_case "shootdown scales" `Quick
            test_shootdown_scales_with_threads;
        ] );
      ( "futex",
        [ Alcotest.test_case "wait/wake roundtrip" `Quick test_futex_roundtrip ] );
    ]
