(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

   Default mode runs all experiments and prints paper-shaped tables of
   simulated-time results. `--exp <id>` runs one. `--quick` shrinks sweeps.

   `--bechamel` instead wraps each experiment in a Bechamel Test.make and
   reports wall-clock monotonic time per experiment run — useful for
   tracking the simulator's own performance. *)

let usage () =
  print_endline
    "usage: main.exe [--exp T1|T2|F1|..|F6] [--quick] [--bechamel] [--list] \
     [--jobs N] [--seed N] [--evq heap|calendar] [--json FILE]";
  exit 1

(* One Bechamel Test.make per table/figure; measures wall-clock time of a
   quick run of each experiment (i.e. the simulator's own speed). *)
let bechamel_mode () =
  let open Bechamel in
  let open Toolkit in
  let test_of (e : Experiments.Registry.t) =
    Test.make ~name:e.Experiments.Registry.id
      (Staged.stage (fun () ->
           ignore
             (e.Experiments.Registry.run
                (Experiments.Run_ctx.create ~quick:true ()))))
  in
  let tests =
    Test.make_grouped ~name:"experiments"
      (List.map test_of Experiments.Registry.all)
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:5 ~quota:(Time.second 10.0) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results =
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  Hashtbl.iter
    (fun label per_test ->
      Printf.printf "measure: %s\n" label;
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_test [] in
      List.iter
        (fun (name, o) ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Printf.printf "  %-24s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-24s (no estimate)\n" name)
        (List.sort compare rows))
    results

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let bech = List.mem "--bechamel" args in
  if List.mem "--list" args then begin
    List.iter
      (fun (e : Experiments.Registry.t) ->
        Printf.printf "%-4s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.title)
      Experiments.Registry.all;
    exit 0
  end;
  if bech then bechamel_mode ()
  else begin
    let rec keyed key = function
      | k :: v :: _ when k = key -> Some v
      | _ :: rest -> keyed key rest
      | [] -> None
    in
    let json_path = keyed "--json" args in
    let int_arg key =
      Option.map
        (fun v ->
          match int_of_string_opt v with
          | Some n -> n
          | None ->
              Printf.eprintf "%s expects an integer, got %s\n" key v;
              usage ())
        (keyed key args)
    in
    (* Experiments are scheduled over --jobs domains (default: host
       cores); outcomes are printed in registry order and are identical
       to a serial run. *)
    let jobs = int_arg "--jobs" in
    let seed =
      Option.value (int_arg "--seed") ~default:Experiments.Run_ctx.default_seed
    in
    let evq =
      match keyed "--evq" args with
      | None -> Sim.Evq.Heap
      | Some s -> (
          match Sim.Evq.impl_of_string s with
          | Some i -> i
          | None ->
              Printf.eprintf "--evq expects heap or calendar, got %s\n" s;
              usage ())
    in
    (* Observability is on iff the results are being exported; plain table
       runs stay instrumentation-free. *)
    let observe = json_path <> None in
    let outcomes =
      match keyed "--exp" args with
      | None ->
          Experiments.Registry.run_all ~quick ~observe ~seed ~evq ?jobs ()
      | Some id -> (
          match Experiments.Registry.find id with
          | Some e ->
              [ Experiments.Registry.run_one ~quick ~observe ~seed ~evq e ]
          | None ->
              Printf.eprintf "unknown experiment id: %s\n" id;
              usage ())
    in
    List.iter
      (fun (o : Experiments.Registry.outcome) -> print_string o.output)
      outcomes;
    print_newline ();
    print_endline (Experiments.Registry.render_suite_total outcomes);
    flush stdout;
    match json_path with
    | None -> ()
    | Some path ->
        Obs.Json.to_file path
          (Experiments.Registry.report_json ~quick outcomes);
        Printf.printf "\nwrote %s\n" path
  end
