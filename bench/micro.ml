(* Engine hot-path microbenchmarks (bechamel).

   Covers the four operations the DES-throughput refactor targets:
   event-queue push/pop (binary heap vs calendar queue), label interning,
   metric updates (by-name vs pre-resolved handle), and end-to-end message
   delivery through the transport. CI runs `--quick` and archives the
   report; the numbers are informational — bit-identity of results is
   guarded elsewhere (test_evq + the diff gates).

   usage: micro.exe [--quick] *)

open Bechamel
open Toolkit

(* Pseudorandom but fixed times: spread over a wide band so the calendar
   queue exercises buckets and rewindows, not just its front heap. *)
let times =
  let rng = Sim.Prng.create ~seed:7 in
  Array.init 512 (fun _ -> Sim.Prng.int_in rng 0 50_000_000)

let evq_push_pop impl =
  Staged.stage (fun () ->
      let q = Sim.Evq.create impl in
      Array.iteri (fun seq at -> Sim.Evq.push q ~at ~seq seq) times;
      while not (Sim.Evq.is_empty q) do
        ignore (Sim.Evq.pop_exn q)
      done)

(* Steady-state scheduling: the queue never drains, so the calendar pays
   its rewindow amortization (closer to the engine's real pattern than a
   fill-then-drain sweep). *)
let evq_churn impl =
  Staged.stage (fun () ->
      let q = Sim.Evq.create impl in
      let seq = ref 0 in
      Array.iteri
        (fun s at -> Sim.Evq.push q ~at ~seq:s s)
        (Array.sub times 0 64);
      seq := 64;
      for _ = 1 to 512 do
        let at = Sim.Evq.next_at q in
        ignore (Sim.Evq.pop_exn q);
        Sim.Evq.push q ~at:(at + 10_000) ~seq:!seq !seq;
        incr seq
      done;
      while not (Sim.Evq.is_empty q) do
        ignore (Sim.Evq.pop_exn q)
      done)

let names = Array.init 64 (fun i -> Printf.sprintf "metric.name.%d" i)

let intern_hit =
  let t = Obs.Names.create () in
  Array.iter (fun n -> ignore (Obs.Names.intern t n)) names;
  Staged.stage (fun () ->
      let acc = ref 0 in
      Array.iter (fun n -> acc := !acc + Obs.Names.intern t n) names;
      ignore !acc)

let metrics_by_name =
  let m = Obs.Metrics.create () in
  Staged.stage (fun () ->
      for _ = 1 to 64 do
        Obs.Metrics.incr m ~kernel:3 "bench.counter"
      done)

let metrics_handle =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.counter_handle m ~kernel:3 "bench.counter" in
  Staged.stage (fun () ->
      for _ = 1 to 64 do
        Obs.Metrics.handle_incr h
      done)

(* End-to-end delivery: 2-kernel fabric, one batch of messages per run,
   engine drained to completion. Measures send cost + ring + worker
   dispatch + handler spawn — the path the batched drain optimizes. *)
let deliver evq =
  let m =
    Hw.Machine.create ~evq ~frames_per_socket:16 ~sockets:2
      ~cores_per_socket:1 ()
  in
  let delivered = ref 0 in
  let tr =
    Msg.Transport.create m ~ring_slots:64
      ~handler:(fun _ ~dst:_ ~src:_ _ _ -> incr delivered)
  in
  Msg.Transport.add_node tr 0 ~home_core:0;
  Msg.Transport.add_node tr 1 ~home_core:1;
  Staged.stage (fun () ->
      Sim.Engine.spawn (Hw.Machine.(m.eng)) (fun () ->
          for i = 1 to 128 do
            Msg.Transport.send tr ~src:0 ~dst:1 ~bytes:64 i
          done);
      Sim.Engine.run Hw.Machine.(m.eng))

let tests =
  Test.make_grouped ~name:"engine"
    [
      Test.make ~name:"evq-push-pop/heap" (evq_push_pop Sim.Evq.Heap);
      Test.make ~name:"evq-push-pop/calendar" (evq_push_pop Sim.Evq.Calendar);
      Test.make ~name:"evq-churn/heap" (evq_churn Sim.Evq.Heap);
      Test.make ~name:"evq-churn/calendar" (evq_churn Sim.Evq.Calendar);
      Test.make ~name:"names-intern-hit" intern_hit;
      Test.make ~name:"metrics-incr/by-name" metrics_by_name;
      Test.make ~name:"metrics-incr/handle" metrics_handle;
      Test.make ~name:"deliver-128/heap" (deliver Sim.Evq.Heap);
      Test.make ~name:"deliver-128/calendar" (deliver Sim.Evq.Calendar);
    ]

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let quota = if quick then 0.25 else 2.0 in
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:(if quick then 500 else 3000)
      ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results =
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  Printf.printf "engine microbench (%s mode)\n"
    (if quick then "quick" else "full");
  Hashtbl.iter
    (fun label per_test ->
      Printf.printf "measure: %s\n" label;
      let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_test [] in
      List.iter
        (fun (name, o) ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        (List.sort compare rows))
    results
