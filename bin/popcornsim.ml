(* popcornsim — command-line driver for the replicated-kernel OS simulator.

   Subcommands:
     list               show the reproduction experiments
     run <id> [--quick] run one experiment (ids from `popcornsim list`)
     all [--quick]      run every experiment
     demo [...]         boot a cluster and run a demonstration workload *)

open Cmdliner

(* Derived from the registry so the docs can never go stale. *)
let experiment_ids =
  String.concat ", "
    (List.map
       (fun (e : Experiments.Registry.t) -> e.Experiments.Registry.id)
       Experiments.Registry.all)

let quick =
  let doc = "Shrink parameter sweeps for a fast run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.Registry.t) ->
        Printf.printf "%-4s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduction experiments.")
    Term.(const run $ const ())

(* --- run --- *)

let run_cmd =
  let id =
    let doc = Printf.sprintf "Experiment id (%s)." experiment_ids in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id quick =
    match Experiments.Registry.find id with
    | Some e ->
        Experiments.Registry.run_one ~quick e;
        `Ok ()
    | None -> `Error (false, "unknown experiment id: " ^ id)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment and print its tables.")
    Term.(ret (const run $ id $ quick))

(* --- all --- *)

let all_cmd =
  let run quick = Experiments.Registry.run_all ~quick () in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(const run $ quick)

(* --- demo --- *)

let demo_cmd =
  let kernels =
    let doc = "Number of kernels to boot." in
    Arg.(value & opt int 4 & info [ "kernels" ] ~doc)
  in
  let threads =
    let doc = "Worker threads to span across the kernels." in
    Arg.(value & opt int 8 & info [ "threads" ] ~doc)
  in
  let trace_flag =
    let doc = "Dump the protocol-event timeline after the run." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let run kernels threads trace =
    if kernels < 1 || 16 mod kernels <> 0 then
      `Error (false, "kernels must divide 16")
    else begin
      let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
      let cluster =
        Popcorn.Cluster.boot machine ~kernels ~cores_per_kernel:(16 / kernels)
      in
      let tracer =
        if trace then Some (Popcorn.Cluster.enable_tracing cluster) else None
      in
      let eng = machine.Hw.Machine.eng in
      Sim.Engine.spawn eng (fun () ->
          let proc =
            Popcorn.Api.start_process cluster ~origin:0 (fun th ->
                let latch = Workloads.Latch.create eng threads in
                for i = 0 to threads - 1 do
                  ignore
                    (Popcorn.Api.spawn th ~target:(i mod kernels)
                       (fun worker ->
                         Popcorn.Api.compute worker (Sim.Time.us 200);
                         ignore
                           (Popcorn.Api.migrate worker
                              ~dst:((i + 1) mod kernels));
                         Popcorn.Api.compute worker (Sim.Time.us 200);
                         Workloads.Latch.arrive latch))
                done;
                Workloads.Latch.wait latch)
          in
          Popcorn.Api.wait_exit cluster proc);
      Sim.Engine.run eng;
      (match tracer with
      | Some tr ->
          print_endline "protocol timeline:";
          Format.printf "%a@?" Sim.Trace.pp tr
      | None -> ());
      let st = Msg.Transport.stats cluster.Popcorn.Types.fabric in
      Printf.printf
        "demo: %d threads over %d kernels; simulated time %s; %d messages \
         (%d doorbells); %d events\n"
        threads kernels
        (Sim.Time.to_string (Sim.Engine.now eng))
        st.Msg.Transport.sent st.Msg.Transport.doorbells
        (Sim.Engine.events_processed eng);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Boot a cluster, span threads across kernels, migrate them.")
    Term.(ret (const run $ kernels $ threads $ trace_flag))

let () =
  let info =
    Cmd.info "popcornsim" ~version:"1.0.0"
      ~doc:"Replicated-kernel OS simulator (Popcorn Linux reproduction)."
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd; demo_cmd ]))
