(* popcornsim — command-line driver for the replicated-kernel OS simulator.

   Subcommands:
     list               show the reproduction experiments
     run <id> [--quick] run one experiment (ids from `popcornsim list`)
     all [--quick]      run every experiment
     demo [...]         boot a cluster and run a demonstration workload
     metrics demo [...] demo workload with the observability layer attached
     profile <id> [...] run one experiment under the host-time profiler
     analyze <file>     causal / critical-path report over exported results
     diff <old> <new>   compare two results files metric-by-metric

   `run` and `all` accept --seed N (machine seed; default 42), --evq IMPL
   (engine event-queue implementation; results are bit-identical under
   either), --json FILE (machine-readable results + metrics) and
   --trace-out FILE (Chrome trace_event JSON of the migration-protocol
   spans; load it at https://ui.perfetto.dev). `all` also accepts --jobs N:
   experiments are
   scheduled over N domains (default: host cores) with results identical to
   a serial run and printed in registry order. `analyze` reads either file
   kind; `diff --fail-on-regress PCT` exits 3 on regression (the CI gate). *)

open Cmdliner

(* Derived from the registry so the docs can never go stale. *)
let experiment_ids =
  String.concat ", "
    (List.map
       (fun (e : Experiments.Registry.t) -> e.Experiments.Registry.id)
       Experiments.Registry.all)

let quick =
  let doc = "Shrink parameter sweeps for a fast run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let seed =
  let doc =
    "Seed for every machine an experiment boots (the simulation is \
     deterministic: one seed, one result)."
  in
  Arg.(
    value
    & opt int Experiments.Run_ctx.default_seed
    & info [ "seed" ] ~docv:"N" ~doc)

let coherence =
  let protos =
    List.map
      (fun p -> (Coherence.Protocol.to_string p, p))
      Coherence.Protocol.all
  in
  let doc =
    Printf.sprintf
      "Page-coherence protocol every Popcorn cluster boots with: %s \
       (origin-home directory, the paper's design) or %s (vpn-sharded \
       directory). Experiments that pin their own options — the ablations, \
       and F4's explicit protocol comparison — are unaffected."
      (Cmdliner.Manpage.escape "origin")
      (Cmdliner.Manpage.escape "sharded")
  in
  Arg.(
    value
    & opt (enum protos) Coherence.Protocol.Origin_home
    & info [ "coherence" ] ~docv:"PROTO" ~doc)

let evq =
  let impls =
    List.map (fun i -> (Sim.Evq.impl_to_string i, i)) Sim.Evq.all_impls
  in
  let doc =
    "Engine event-queue implementation: $(b,heap) (binary min-heap, the \
     default) or $(b,calendar) (calendar/ladder queue: O(1) amortized \
     scheduling under heavy load). Runs are bit-identical under either — \
     the cross-implementation equivalence test and the CI gate enforce it \
     — so this is purely a host-performance knob."
  in
  Arg.(value & opt (enum impls) Sim.Evq.Heap & info [ "evq" ] ~docv:"IMPL" ~doc)

(* Validated numeric converters: a nonsensical $(b,--top 0) or
   $(b,--fail-on-regress -5) is a usage error at parse time, not a value
   to silently accept (a negative threshold would flag every unchanged
   metric as a regression). *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg (Printf.sprintf "%S must be a positive integer" s))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let nonneg_float =
  let parse s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f && f >= 0. -> Ok f
    | Some _ ->
        Error
          (`Msg (Printf.sprintf "%S must be a finite non-negative number" s))
    | None -> Error (`Msg (Printf.sprintf "%S is not a number" s))
  in
  Arg.conv (parse, fun ppf f -> Format.fprintf ppf "%g" f)

let jobs =
  let doc =
    "Run up to $(docv) experiments concurrently on separate domains \
     (default: host cores). Results are identical to $(b,--jobs 1) — every \
     experiment owns its context, sink and machines — and are printed in \
     registry order."
  in
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)

let json_out =
  let doc = "Write machine-readable results (tables + metrics) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let trace_out =
  let doc =
    "Write a Chrome trace_event JSON of the recorded protocol spans to \
     $(docv) (load in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let baseline_out =
  let doc =
    "Write a metrics-only copy of the results (no spans/causal sections) to \
     $(docv); small enough to commit as the perf-regression baseline for \
     $(b,popcornsim diff)."
  in
  Arg.(
    value & opt (some string) None & info [ "baseline-out" ] ~docv:"FILE" ~doc)

(* Shared by `run` and `all`: export outcomes to --json / --trace-out /
   --baseline-out. *)
let export ~quick outcomes json trace baseline =
  (match json with
  | None -> ()
  | Some path ->
      Obs.Json.to_file path (Experiments.Registry.report_json ~quick outcomes);
      Printf.printf "wrote %s\n" path);
  (match baseline with
  | None -> ()
  | Some path ->
      Obs.Json.to_file path
        (Experiments.Registry.report_json ~quick ~metrics_only:true outcomes);
      Printf.printf "wrote %s\n" path);
  match trace with
  | None -> ()
  | Some path ->
      let sinks =
        List.filter_map
          (fun (o : Experiments.Registry.outcome) -> o.sink)
          outcomes
      in
      let spans = List.map (fun (s : Obs.Sink.t) -> s.Obs.Sink.spans) sinks in
      let causal = List.map (fun (s : Obs.Sink.t) -> s.Obs.Sink.causal) sinks in
      let traces = List.map (fun (s : Obs.Sink.t) -> s.Obs.Sink.trace) sinks in
      Obs.Json.to_file path (Obs.Export.chrome_trace ~spans ~causal ~traces ());
      Printf.printf "wrote %s\n" path

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Experiments.Registry.t) ->
        Printf.printf "%-4s %s\n" e.Experiments.Registry.id
          e.Experiments.Registry.title)
      Experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproduction experiments.")
    Term.(const run $ const ())

(* --- run --- *)

let run_cmd =
  let id =
    let doc = Printf.sprintf "Experiment id (%s)." experiment_ids in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id quick seed coherence evq jobs json trace baseline =
    (* A single experiment occupies one domain; --jobs is accepted for
       symmetry with `all` (scripts can pass it to either subcommand). *)
    ignore (jobs : int option);
    match Experiments.Registry.find id with
    | Some e ->
        let observe = json <> None || trace <> None || baseline <> None in
        let o =
          Experiments.Registry.run_one ~quick ~observe ~seed ~coherence ~evq e
        in
        print_string o.Experiments.Registry.output;
        flush stdout;
        export ~quick [ o ] json trace baseline;
        `Ok ()
    | None -> `Error (false, "unknown experiment id: " ^ id)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one experiment and print its tables.")
    Term.(
      ret
        (const run $ id $ quick $ seed $ coherence $ evq $ jobs $ json_out
       $ trace_out $ baseline_out))

(* --- all --- *)

let all_cmd =
  let run quick seed coherence evq jobs json trace baseline =
    let observe = json <> None || trace <> None || baseline <> None in
    let outcomes =
      Experiments.Registry.run_all ~quick ~observe ~seed ~coherence ~evq ?jobs
        ()
    in
    List.iter
      (fun (o : Experiments.Registry.outcome) -> print_string o.output)
      outcomes;
    print_newline ();
    print_endline (Experiments.Registry.render_suite_total outcomes);
    flush stdout;
    export ~quick outcomes json trace baseline
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(
      const run $ quick $ seed $ coherence $ evq $ jobs $ json_out $ trace_out
      $ baseline_out)

(* --- demo --- *)

let demo_cmd =
  let kernels =
    let doc = "Number of kernels to boot." in
    Arg.(value & opt int 4 & info [ "kernels" ] ~doc)
  in
  let threads =
    let doc = "Worker threads to span across the kernels." in
    Arg.(value & opt int 8 & info [ "threads" ] ~doc)
  in
  let trace_flag =
    let doc = "Dump the protocol-event timeline after the run." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let run kernels threads trace =
    if kernels < 1 || 16 mod kernels <> 0 then
      `Error (false, "kernels must divide 16")
    else begin
      let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
      let cluster =
        Popcorn.Cluster.boot machine ~kernels ~cores_per_kernel:(16 / kernels)
      in
      let tracer =
        if trace then Some (Popcorn.Cluster.enable_tracing cluster) else None
      in
      let eng = machine.Hw.Machine.eng in
      Sim.Engine.spawn eng (fun () ->
          let proc =
            Popcorn.Api.start_process cluster ~origin:0 (fun th ->
                let latch = Workloads.Latch.create eng threads in
                for i = 0 to threads - 1 do
                  ignore
                    (Popcorn.Api.spawn th ~target:(i mod kernels)
                       (fun worker ->
                         Popcorn.Api.compute worker (Sim.Time.us 200);
                         ignore
                           (Popcorn.Api.migrate worker
                              ~dst:((i + 1) mod kernels));
                         Popcorn.Api.compute worker (Sim.Time.us 200);
                         Workloads.Latch.arrive latch))
                done;
                Workloads.Latch.wait latch)
          in
          Popcorn.Api.wait_exit cluster proc);
      Sim.Engine.run eng;
      (match tracer with
      | Some tr ->
          print_endline "protocol timeline:";
          Format.printf "%a@?" Sim.Trace.pp tr
      | None -> ());
      let st = Msg.Transport.stats cluster.Popcorn.Types.fabric in
      Printf.printf
        "demo: %d threads over %d kernels; simulated time %s; %d messages \
         (%d doorbells); %d events\n"
        threads kernels
        (Sim.Time.to_string (Sim.Engine.now eng))
        st.Msg.Transport.sent st.Msg.Transport.doorbells
        (Sim.Engine.events_processed eng);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Boot a cluster, span threads across kernels, migrate them.")
    Term.(ret (const run $ kernels $ threads $ trace_flag))

(* --- metrics (observability demo) --- *)

let metrics_demo_cmd =
  let kernels =
    let doc = "Number of kernels to boot." in
    Arg.(value & opt int 4 & info [ "kernels" ] ~doc)
  in
  let threads =
    let doc = "Worker threads to span across the kernels." in
    Arg.(value & opt int 8 & info [ "threads" ] ~doc)
  in
  let run kernels threads json trace =
    if kernels < 1 || 16 mod kernels <> 0 then
      `Error (false, "kernels must divide 16")
    else begin
      let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
      let cluster =
        Popcorn.Cluster.boot machine ~kernels ~cores_per_kernel:(16 / kernels)
      in
      let sink = Obs.Sink.create () in
      Hw.Machine.attach_obs machine ~metrics:sink.Obs.Sink.metrics
        ~spans:sink.Obs.Sink.spans ~causal:sink.Obs.Sink.causal ();
      Popcorn.Cluster.observe ~metrics:sink.Obs.Sink.metrics
        ~tracer:sink.Obs.Sink.trace cluster;
      let eng = machine.Hw.Machine.eng in
      Sim.Engine.spawn eng (fun () ->
          let proc =
            Popcorn.Api.start_process cluster ~origin:0 (fun th ->
                let latch = Workloads.Latch.create eng threads in
                for i = 0 to threads - 1 do
                  ignore
                    (Popcorn.Api.spawn th ~target:(i mod kernels)
                       (fun worker ->
                         Popcorn.Api.compute worker (Sim.Time.us 50);
                         (* Shared-heap writes to exercise page coherence. *)
                         for p = 0 to 3 do
                           ignore
                             (Popcorn.Api.write worker
                                ~addr:(0x800000 + (p * 4096)))
                         done;
                         ignore
                           (Popcorn.Api.migrate worker
                              ~dst:((i + 1) mod kernels));
                         Popcorn.Api.compute worker (Sim.Time.us 50);
                         (* A short timed futex wait: futex.waits with no
                            matching wake, so it times out. *)
                         ignore
                           (Popcorn.Api.futex_wait worker ~addr:0x800100
                              ~timeout:(Sim.Time.us 20) ());
                         Workloads.Latch.arrive latch))
                done;
                Workloads.Latch.wait latch)
          in
          Popcorn.Api.wait_exit cluster proc);
      Sim.Engine.run eng;
      Printf.printf
        "metrics demo: %d threads over %d kernels; simulated time %s\n\n"
        threads kernels
        (Sim.Time.to_string (Sim.Engine.now eng));
      Format.printf "%a@?" Obs.Metrics.pp sink.Obs.Sink.metrics;
      (match json with
      | None -> ()
      | Some path ->
          Obs.Json.to_file path (Obs.Metrics.to_json sink.Obs.Sink.metrics);
          Printf.printf "wrote %s\n" path);
      (match trace with
      | None -> ()
      | Some path ->
          Obs.Json.to_file path (Obs.Sink.chrome_trace sink);
          Printf.printf "wrote %s\n" path);
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:
         "Demo workload with the observability layer attached; prints the \
          per-kernel metrics and optionally exports them.")
    Term.(ret (const run $ kernels $ threads $ json_out $ trace_out))

let metrics_cmd =
  Cmd.group
    (Cmd.info "metrics"
       ~doc:"Observability: run instrumented workloads and export metrics.")
    [ metrics_demo_cmd ]

(* --- profile --- *)

let profile_cmd =
  let id =
    let doc = Printf.sprintf "Experiment id (%s)." experiment_ids in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let top =
    let doc = "Show the $(docv) hottest labels in the attribution table." in
    Arg.(value & opt positive_int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let folded_out =
    let doc =
      "Write collapsed-stack (\"folded\") lines to $(docv) — feed to \
       flamegraph.pl or any folded-format viewer."
    in
    Arg.(
      value & opt (some string) None & info [ "folded-out" ] ~docv:"FILE" ~doc)
  in
  let profile_out =
    let doc =
      "Write the raw profile (per-label attribution + scheduler-telemetry \
       samples, schema popcornsim-profile-v1) to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)
  in
  let overhead =
    let doc =
      "Instead of a profile, measure what observation costs: run the \
       experiment three times (observability off, metrics+spans on, \
       profiled) and report the host time of each."
    in
    Arg.(value & flag & info [ "overhead" ] ~doc)
  in
  let run id quick seed coherence evq top folded profile_out overhead =
    match Experiments.Registry.find id with
    | None -> `Error (false, "unknown experiment id: " ^ id)
    | Some e ->
        if overhead then begin
          Printf.printf
            "overhead comparison for %s%s (one run per mode; host time is \
             noisy — indicative, not a benchmark):\n"
            e.Experiments.Registry.id
            (if quick then " --quick" else "");
          let time label ~observe ~profile =
            let o =
              Experiments.Registry.run_one ~quick ~observe ~profile ~seed
                ~coherence ~evq e
            in
            Printf.printf "  %-24s %8.0f ms  %9d events  %12s\n" label
              o.Experiments.Registry.host_ms
              o.Experiments.Registry.events_processed
              (Experiments.Registry.render_mev_s
                 ~events:o.Experiments.Registry.events_processed
                 ~host_ms:o.Experiments.Registry.host_ms);
            o.Experiments.Registry.host_ms
          in
          let off = time "observability off" ~observe:false ~profile:false in
          let on = time "metrics+spans on" ~observe:true ~profile:false in
          let prof = time "profiled" ~observe:false ~profile:true in
          let rel x =
            if off > 0. then Printf.sprintf "%+.1f%%" (100. *. (x -. off) /. off)
            else "n/a"
          in
          Printf.printf
            "  relative to off: metrics+spans %s, profiled %s (simulated \
             results are bit-identical in all three modes)\n"
            (rel on) (rel prof);
          `Ok ()
        end
        else begin
          let o =
            Experiments.Registry.run_one ~quick ~profile:true ~seed ~coherence
              ~evq e
          in
          print_string o.Experiments.Registry.output;
          print_newline ();
          let p =
            match o.Experiments.Registry.prof with
            | Some p -> p
            | None -> assert false (* run_one ~profile:true always sets it *)
          in
          print_string
            (Obs.Prof.report p ~host_ms:o.Experiments.Registry.host_ms ~top);
          (match folded with
          | None -> ()
          | Some path ->
              Out_channel.with_open_text path (fun oc ->
                  Out_channel.output_string oc (Obs.Prof.folded p));
              Printf.printf "wrote %s\n" path);
          (match profile_out with
          | None -> ()
          | Some path ->
              Obs.Json.to_file path
                (Obs.Prof.to_json p ~host_ms:o.Experiments.Registry.host_ms);
              Printf.printf "wrote %s\n" path);
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one experiment under the host-time profiler: wall-clock \
          self-time, event counts and GC allocation attributed to fiber \
          labels, plus scheduler telemetry sampled over virtual time. \
          Profiling never perturbs simulated results.")
    Term.(
      ret
        (const run $ id $ quick $ seed $ coherence $ evq $ top $ folded_out
       $ profile_out $ overhead))

(* --- analyze --- *)

let analyze_cmd =
  let file =
    let doc =
      "Results file from --json (popcornsim-bench-v2) or Chrome trace from \
       --trace-out."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    match Obs.Json.of_file file with
    | Error e -> `Error (false, Printf.sprintf "%s: %s" file e)
    | Ok doc -> (
        match Obs.Report.analyze_doc doc with
        | Ok report ->
            print_string report;
            `Ok ()
        | Error e -> `Error (false, Printf.sprintf "%s: %s" file e))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Reconstruct the cross-kernel happens-before DAG from an exported \
          run and print per-subsystem self time plus the critical path of \
          each migration / thread-group-create.")
    Term.(ret (const run $ file))

(* --- diff --- *)

let diff_cmd =
  let old_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline results file (--json output).")
  in
  let new_file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate results file (--json output).")
  in
  let fail_on_regress =
    let doc =
      "Exit 3 when any time metric regressed by more than $(docv) percent \
       or any failure counter increased."
    in
    Arg.(
      value
      & opt (some nonneg_float) None
      & info [ "fail-on-regress" ] ~docv:"PCT" ~doc)
  in
  let run old_file new_file fail_pct =
    match (Obs.Json.of_file old_file, Obs.Json.of_file new_file) with
    | Error e, _ -> `Error (false, Printf.sprintf "%s: %s" old_file e)
    | _, Error e -> `Error (false, Printf.sprintf "%s: %s" new_file e)
    | Ok old_doc, Ok new_doc ->
        let report, regressions =
          Obs.Report.diff ?fail_pct ~old_doc ~new_doc ()
        in
        print_string report;
        if regressions > 0 && fail_pct <> None then Stdlib.exit 3;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two results files metric-by-metric; the perf-regression \
          gate for CI.")
    Term.(ret (const run $ old_file $ new_file $ fail_on_regress))

let () =
  let info =
    Cmd.info "popcornsim" ~version:"1.0.0"
      ~doc:"Replicated-kernel OS simulator (Popcorn Linux reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; demo_cmd; metrics_cmd; profile_cmd;
            analyze_cmd; diff_cmd ]))
