(** Directory entry for one virtual page of a distributed process.
    Invariant: [writer] and a non-empty [readers] are mutually exclusive.
    Entries live in the per-process directory table; which kernel is
    allowed to touch the entry for a given VPN is the protocol's home
    assignment ({!Protocol.home}). *)

type entry = {
  mutable writer : int option;  (** kernel with the sole writable copy. *)
  mutable readers : int list;  (** kernels holding read-only replicas. *)
}

let find_or_create tbl vpn =
  match Hashtbl.find_opt tbl vpn with
  | Some e -> e
  | None ->
      let e = { writer = None; readers = [] } in
      Hashtbl.add tbl vpn e;
      e
