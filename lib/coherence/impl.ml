(** Shared mechanics of the page-coherence protocols.

    Pages of a distributed process follow a single-writer /
    multiple-reader protocol with a directory, the design the paper
    describes for address-space consistency at page granularity:

    - a page is writable on at most one kernel at a time;
    - read-only replicas may exist on several kernels (unless the
      [read_replication] ablation option is off);
    - a write fault pulls the page exclusively: the home revokes the
      current writer, invalidates every reader, then grants ownership;
    - a read fault downgrades the current writer to a reader and
      replicates.

    Content is modelled as a per-page version number: the owning kernel's
    writes bump the version in place (physical memory is shared on this
    machine, so that mutation is "hardware", not kernel state); protocol
    messages carry the version so tests can verify read-after-write
    coherence across kernels.

    The protocols ({!Origin_home}, {!Sharded_dir}) differ only in the
    [home] function they close the state machine over — which kernel runs
    the directory service for a given page — and in how the munmap
    range-drop reaches the entries (locally vs. batched messages to the
    home shards). Everything here is home-agnostic. *)

open Sim
module K = Kernelmodel

let page_size = 4096

(* Cost of allocating a physical frame + zeroing it on first touch. *)
let frame_alloc_cost = Time.ns 300
let zero_page_cost = Time.ns 600

module Shared (Env : Intf.ENV) = struct
  (** Home assignment a protocol closes the state machine over. *)
  type home = Env.process -> vpn:int -> int

  let latest_version proc vpn =
    match Hashtbl.find_opt (Env.versions proc) vpn with
    | Some v -> v
    | None -> 0

  (* ---------------------------------------------------------------- *)
  (* Handlers running on copy-holding kernels (owner / reader side).   *)
  (* ---------------------------------------------------------------- *)

  (** Home asked us to give up our writable copy: unmap, flush, free the
      frame, return the content version we had. *)
  let handle_pull cluster kernel ~src ~ticket ~pid ~vpn =
    let p = Env.params cluster in
    let s = Env.stats cluster in
    s.Stats.pulls <- s.Stats.pulls + 1;
    Env.metric_incr cluster ~kernel:(Env.kid kernel) "coherence.pulls";
    Env.work cluster p.Hw.Params.page_table_walk;
    let version =
      match Env.find_replica kernel ~pid with
      | None -> 0
      | Some r -> (
          Env.work cluster p.Hw.Params.tlb_flush_local;
          (match K.Page_table.clear (Env.pt r) ~vpn with
          | Some pte -> Env.free_frame cluster ~frame:pte.K.Page_table.frame
          | None -> ());
          match Hashtbl.find_opt (Env.page_data r) vpn with
          | Some v ->
              Hashtbl.remove (Env.page_data r) vpn;
              v
          | None -> 0)
    in
    Env.reply cluster ~src:kernel ~dst:src (Wire.Pulled { ticket; version })

  (** Home asked us to drop our read-only copy. *)
  let handle_invalidate cluster kernel ~src ~pid ~vpn ~ack =
    let p = Env.params cluster in
    Env.metric_incr cluster ~kernel:(Env.kid kernel) "coherence.invalidations";
    Env.work cluster
      (Time.add p.Hw.Params.page_table_walk p.Hw.Params.tlb_flush_local);
    (match Env.find_replica kernel ~pid with
    | None -> ()
    | Some r -> (
        Hashtbl.remove (Env.page_data r) vpn;
        match K.Page_table.clear (Env.pt r) ~vpn with
        | Some pte -> Env.free_frame cluster ~frame:pte.K.Page_table.frame
        | None -> ()));
    Env.reply cluster ~src:kernel ~dst:src (Wire.Ack { ticket = ack })

  (** Home asked us to downgrade our writable copy to read-only (we keep
      the frame and become a reader). *)
  let handle_downgrade cluster kernel ~src ~pid ~vpn ~ack =
    let p = Env.params cluster in
    let s = Env.stats cluster in
    s.Stats.downgrades <- s.Stats.downgrades + 1;
    Env.metric_incr cluster ~kernel:(Env.kid kernel) "coherence.downgrades";
    Env.work cluster
      (Time.add p.Hw.Params.page_table_walk p.Hw.Params.tlb_flush_local);
    (match Env.find_replica kernel ~pid with
    | None -> ()
    | Some r -> ignore (K.Page_table.downgrade (Env.pt r) ~vpn));
    Env.reply cluster ~src:kernel ~dst:src (Wire.Ack { ticket = ack })

  (* ---------------------------------------------------------------- *)
  (* Directory service, running on the page's home kernel.             *)
  (* ---------------------------------------------------------------- *)

  (* Local (message-free) counterparts of pull/invalidate/downgrade, used
     when the kernel to revoke is the home itself. *)
  let local_revoke cluster kernel ~pid ~vpn =
    let p = Env.params cluster in
    Env.work cluster
      (Time.add p.Hw.Params.page_table_walk p.Hw.Params.tlb_flush_local);
    match Env.find_replica kernel ~pid with
    | None -> 0
    | Some r -> (
        (match K.Page_table.clear (Env.pt r) ~vpn with
        | Some pte -> Env.free_frame cluster ~frame:pte.K.Page_table.frame
        | None -> ());
        match Hashtbl.find_opt (Env.page_data r) vpn with
        | Some v ->
            Hashtbl.remove (Env.page_data r) vpn;
            v
        | None -> 0)

  let local_pull cluster kernel ~pid ~vpn =
    let s = Env.stats cluster in
    s.Stats.pulls <- s.Stats.pulls + 1;
    Env.metric_incr cluster ~kernel:(Env.kid kernel) "coherence.pulls";
    local_revoke cluster kernel ~pid ~vpn

  let local_invalidate cluster kernel ~pid ~vpn =
    Env.metric_incr cluster ~kernel:(Env.kid kernel) "coherence.invalidations";
    ignore (local_revoke cluster kernel ~pid ~vpn)

  let local_downgrade cluster kernel ~pid ~vpn =
    let p = Env.params cluster in
    let s = Env.stats cluster in
    s.Stats.downgrades <- s.Stats.downgrades + 1;
    Env.metric_incr cluster ~kernel:(Env.kid kernel) "coherence.downgrades";
    Env.work cluster
      (Time.add p.Hw.Params.page_table_walk p.Hw.Params.tlb_flush_local);
    match Env.find_replica kernel ~pid with
    | None -> ()
    | Some r -> ignore (K.Page_table.downgrade (Env.pt r) ~vpn)

  (** Serve one fault against the directory. Must run on the page's home
      kernel {e with the page's fault lock held}; may issue pulls /
      invalidations / downgrades to other kernels. Returns the grant for
      [requester].

      The caller keeps the lock until the requester has {e installed} the
      grant (locally, or signalled by a {!Wire.Ack}); releasing earlier
      lets a second writer be granted while the first install is still in
      flight, which the randomized coherence tests catch as a dual-writer
      state. *)
  let dir_service_locked cluster home_k proc ~requester ~vpn
      ~(access : K.Fault.access) : Wire.grant =
    let s = Env.stats cluster in
    let home_kid = Env.kid home_k in
    let pid = Env.pid proc in
    s.Stats.grants <- s.Stats.grants + 1;
    Env.metric_incr cluster ~kernel:home_kid "coherence.grants";
    let entry = Dir.find_or_create (Env.directory proc) vpn in
    let effective_access =
      if Env.read_replication cluster then access else K.Fault.Write
    in
    let requester_was_reader = List.mem requester entry.Dir.readers in
    match effective_access with
    | K.Fault.Write ->
        (* Revoke the current writer, if any and not the requester. *)
        let pulled_from =
          match entry.Dir.writer with
          | Some w when w = home_kid && w <> requester ->
              let version = local_pull cluster home_k ~pid ~vpn in
              if version > latest_version proc vpn then
                Hashtbl.replace (Env.versions proc) vpn version;
              Some w
          | Some w when w <> requester ->
              (match
                 Env.call cluster ~src:home_k ~dst:w (fun ~ticket ->
                     Wire.Pull { ticket; pid; vpn })
               with
              | Wire.Pulled { version; _ } ->
                  (* Keep the committed version in sync with what the
                     (now revoked) writer last wrote. *)
                  if version > latest_version proc vpn then
                    Hashtbl.replace (Env.versions proc) vpn version
              | _ -> assert false);
              Some w
          | _ -> None
        in
        (* Invalidate every reader except the requester; the home's own
           replica is revoked locally (broadcast skips self). *)
        let victims =
          List.filter (fun k -> k <> requester) entry.Dir.readers
        in
        let fanout = List.length victims in
        s.Stats.invalidations <- s.Stats.invalidations + fanout;
        if fanout > s.Stats.max_fanout then s.Stats.max_fanout <- fanout;
        if List.mem home_kid victims && requester <> home_kid then
          local_invalidate cluster home_k ~pid ~vpn;
        Env.broadcast_and_wait cluster ~src:home_k ~targets:victims
          (fun ~ack -> Wire.Invalidate { pid; vpn; ack });
        entry.Dir.writer <- Some requester;
        entry.Dir.readers <- [];
        {
          Wire.version = latest_version proc vpn;
          writable = true;
          from_kernel =
            (match pulled_from with Some w -> w | None -> home_kid);
          carries_data = not requester_was_reader;
          ack = 0;
        }
    | K.Fault.Read -> (
        match entry.Dir.writer with
        | Some w when w = requester ->
            (* Stale fault: a racing write fault from the same kernel
               already made it the writer. Reconfirm ownership; do NOT
               downgrade it or enrol it as a reader. *)
            {
              Wire.version = latest_version proc vpn;
              writable = true;
              from_kernel = requester;
              carries_data = false;
              ack = 0;
            }
        | writer ->
            (match writer with
            | Some w when w = home_kid ->
                local_downgrade cluster home_k ~pid ~vpn;
                entry.Dir.writer <- None;
                entry.Dir.readers <- [ w ]
            | Some w ->
                Env.broadcast_and_wait cluster ~src:home_k ~targets:[ w ]
                  (fun ~ack -> Wire.Downgrade { pid; vpn; ack });
                entry.Dir.writer <- None;
                entry.Dir.readers <- [ w ]
            | None -> ());
            if not (List.mem requester entry.Dir.readers) then
              entry.Dir.readers <- requester :: entry.Dir.readers;
            {
              Wire.version = latest_version proc vpn;
              writable = false;
              from_kernel = home_kid;
              carries_data = not requester_was_reader;
              ack = 0;
            })

  (** Message handler for a remote kernel's fault. Runs at the page's
      home. The fault lock is held from the directory update until the
      requester acks that it installed the grant. *)
  let handle_fault cluster kernel ~(home : home) ~src ~cause ~ticket ~pid
      ~vpn ~access =
    match Env.find_process cluster ~pid with
    | Some proc when home proc ~vpn = Env.kid kernel ->
        let sp = Env.span_begin cluster ~kernel:(Env.kid kernel) ~cause () in
        Mutex.with_lock
          (Env.fault_lock cluster proc ~vpn)
          (fun () ->
            let grant =
              dir_service_locked cluster kernel proc ~requester:src ~vpn
                ~access
            in
            Env.with_install_ack cluster kernel ~send:(fun ~ack ->
                Env.reply cluster ~src:kernel ~dst:src
                  (Wire.Grant { ticket; result = Ok { grant with Wire.ack } })));
        Env.span_end cluster sp
    | _ ->
        Env.reply cluster ~src:kernel ~dst:src
          (Wire.Grant
             { ticket; result = Error "not the directory home of this page" })

  (* ---------------------------------------------------------------- *)
  (* Fault path on the kernel where the thread runs.                   *)
  (* ---------------------------------------------------------------- *)

  let install cluster kernel r ~vpn ~(grant : Wire.grant) =
    let p = Env.params cluster in
    let pt = Env.pt r in
    let existing = K.Page_table.get pt ~vpn in
    (match existing with
    | Some _ when not grant.Wire.carries_data ->
        (* Permission upgrade on data we already hold. *)
        ()
    | Some pte ->
        (* Refresh in place (e.g. we were a reader and got fresh data). *)
        ignore pte
    | None ->
        Env.work cluster frame_alloc_cost;
        let frame = Env.alloc_frame cluster kernel in
        K.Page_table.set pt ~vpn { K.Page_table.frame; writable = false });
    (match K.Page_table.get pt ~vpn with
    | Some pte ->
        K.Page_table.set pt ~vpn
          { pte with K.Page_table.writable = grant.Wire.writable }
    | None -> assert false);
    Hashtbl.replace (Env.page_data r) vpn grant.Wire.version;
    Env.work cluster p.Hw.Params.page_table_walk

  (** Service a fault for a thread of [r] running on [kernel] at [core]. *)
  let service_fault cluster kernel r ~(home : home) ~core ~addr ~access =
    let vpn = K.Page_table.vpn_of_addr addr in
    let proc = Env.proc_of r in
    let pid = Env.pid proc in
    let s = Env.stats cluster in
    s.Stats.faults <- s.Stats.faults + 1;
    Env.metric_incr cluster ~kernel:(Env.kid kernel) "fault.serviced";
    Env.trace cluster (fun () ->
        Printf.sprintf "k%d %s fault pid %d vpn %d" (Env.kid kernel)
          (match access with K.Fault.Read -> "read" | K.Fault.Write -> "write")
          pid vpn);
    let home_kid = home proc ~vpn in
    if Env.kid kernel = home_kid then begin
      (* Local directory shard: no messages unless other kernels hold the
         page. Serve and install under the fault lock, like remote
         grants. *)
      s.Stats.local_faults <- s.Stats.local_faults + 1;
      Mutex.with_lock
        (Env.fault_lock cluster proc ~vpn)
        (fun () ->
          let grant =
            dir_service_locked cluster kernel proc
              ~requester:(Env.kid kernel) ~vpn ~access
          in
          (* First touch of a fresh anonymous page: demand-zero. *)
          if
            grant.Wire.version = 0
            && not (Hashtbl.mem (Env.versions proc) vpn)
          then Env.work cluster zero_page_cost;
          install cluster kernel r ~vpn ~grant)
    end
    else begin
      s.Stats.dir_hops <- s.Stats.dir_hops + 1;
      Env.metric_incr cluster ~kernel:(Env.kid kernel) "coherence.dir_hops";
      let sp = Env.span_begin cluster ~kernel:(Env.kid kernel) () in
      let resp =
        Env.call cluster ~src:kernel ~src_core:core ?span:sp ~dst:home_kid
          (fun ~ticket -> Wire.Fault { ticket; pid; vpn; access })
      in
      (match resp with
      | Wire.Grant { result = Ok grant; _ } ->
          install cluster kernel r ~vpn ~grant;
          (* Tell the home the grant is live; it holds the page's fault
             lock until this lands. *)
          Env.reply cluster ~src:kernel ~src_core:core ~dst:home_kid
            (Wire.Ack { ticket = grant.Wire.ack })
      | Wire.Grant { result = Error e; _ } -> failwith ("page fault: " ^ e)
      | _ -> assert false);
      Env.span_end cluster sp
    end

  let touch cluster kernel r ~(home : home) ~core ~addr ~access :
      (K.Fault.classification, string) result =
    let p = Env.params cluster in
    Env.work cluster p.Hw.Params.l1_hit;
    match K.Fault.classify (Env.vmas r) (Env.pt r) ~addr ~access with
    | K.Fault.Present -> Ok K.Fault.Present
    | K.Fault.Segv -> Error "segmentation fault"
    | (K.Fault.Minor | K.Fault.Cow_or_upgrade) as c ->
        (* Trap into the kernel and service. *)
        Env.work cluster p.Hw.Params.page_table_walk;
        service_fault cluster kernel r ~home ~core ~addr ~access;
        Ok c

  (* ---------------------------------------------------------------- *)
  (* munmap support                                                    *)
  (* ---------------------------------------------------------------- *)

  (** Drop local translations and frames for a byte range (on munmap).
      Within one kernel this is exactly SMP's unmap path: the initiating
      core flushes locally and TLB-shootdown-IPIs every other core running
      a member of the process on this kernel. *)
  let drop_range_local cluster kernel r ~start ~len =
    let p = Env.params cluster in
    let removed = K.Page_table.clear_range (Env.pt r) ~start ~len in
    List.iter
      (fun (pte : K.Page_table.pte) ->
        Env.free_frame cluster ~frame:pte.K.Page_table.frame)
      removed;
    let first = K.Page_table.vpn_of_addr start in
    let last = K.Page_table.vpn_of_addr (start + len - 1) in
    for vpn = first to last do
      Hashtbl.remove (Env.page_data r) vpn
    done;
    if removed <> [] then begin
      Env.work cluster p.Hw.Params.tlb_flush_local;
      let victims =
        min (max 0 (Env.member_count r - 1)) (Env.core_count kernel - 1)
      in
      if victims > 0 then
        Env.work cluster
          (Time.add p.Hw.Params.ipi_latency
             (Time.scale victims p.Hw.Params.tlb_shootdown_per_core))
    end

  (** Drop the directory entry and fault lock of one page; committed
      content goes too unless [keep_versions] (the mprotect reset). *)
  let drop_dir_vpn proc ~keep_versions vpn =
    Hashtbl.remove (Env.directory proc) vpn;
    Env.drop_fault_lock proc ~vpn;
    if not keep_versions then Hashtbl.remove (Env.versions proc) vpn

  (** Handler for a batched {!Wire.Drop_range}: drop every entry in the
      range whose home is this kernel. *)
  let handle_drop_range cluster kernel ~(home : home) ~src ~pid ~start ~len
      ~ack =
    let p = Env.params cluster in
    Env.work cluster p.Hw.Params.page_table_walk;
    (match Env.find_process cluster ~pid with
    | None -> ()
    | Some proc ->
        let self = Env.kid kernel in
        let first = K.Page_table.vpn_of_addr start in
        let last = K.Page_table.vpn_of_addr (start + len - 1) in
        for vpn = first to last do
          if home proc ~vpn = self then
            (* Versions are origin-side bookkeeping, already handled by
               the initiator; only shard state drops here. *)
            drop_dir_vpn proc ~keep_versions:true vpn
        done);
    Env.reply cluster ~src:kernel ~dst:src (Wire.Ack { ticket = ack })

  (** Request dispatcher a protocol exposes as its [handle]. *)
  let handle cluster kernel ~(home : home) ~src ~cause req =
    match req with
    | Wire.Fault { ticket; pid; vpn; access } ->
        handle_fault cluster kernel ~home ~src ~cause ~ticket ~pid ~vpn
          ~access
    | Wire.Pull { ticket; pid; vpn } ->
        handle_pull cluster kernel ~src ~ticket ~pid ~vpn
    | Wire.Invalidate { pid; vpn; ack } ->
        handle_invalidate cluster kernel ~src ~pid ~vpn ~ack
    | Wire.Downgrade { pid; vpn; ack } ->
        handle_downgrade cluster kernel ~src ~pid ~vpn ~ack
    | Wire.Drop_range { pid; start; len; ack } ->
        handle_drop_range cluster kernel ~home ~src ~pid ~start ~len ~ack
end
