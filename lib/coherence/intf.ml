(** The two module types of the subsystem.

    {!ENV} is everything a protocol needs from the OS it runs inside:
    projections over the cluster/kernel/process/replica records, the
    directory state (which stays on the master process record — the
    protocol only decides which kernel may touch which entry), simulated
    work charging, metrics/span hooks, and typed messaging over
    {!Wire}. The OS implements it once; protocols are functors over it,
    which keeps [lib/coherence] below the OS in the dependency order.

    {!S} is the surface a protocol exposes back: the fault path entered
    from a memory access, the message handler for {!Wire.req}, and the
    munmap range-drop hooks. *)

module type ENV = sig
  type cluster
  type kernel
  type process
  type replica
  type span

  (* topology *)
  val kid : kernel -> int
  val core_count : kernel -> int
  val nkernels : cluster -> int
  val params : cluster -> Hw.Params.t
  val read_replication : cluster -> bool
  val stats : cluster -> Stats.t

  (* processes and their per-kernel replicas *)
  val pid : process -> Kernelmodel.Ids.pid
  val origin : process -> int
  val find_process : cluster -> pid:Kernelmodel.Ids.pid -> process option
  val find_replica : kernel -> pid:Kernelmodel.Ids.pid -> replica option
  val proc_of : replica -> process
  val vmas : replica -> Kernelmodel.Vma.t
  val pt : replica -> Kernelmodel.Page_table.t
  val page_data : replica -> (int, int) Hashtbl.t
  val member_count : replica -> int

  (* directory state (lives on the master process record; the protocol's
     home assignment says which kernel may touch the entry for a vpn) *)
  val directory : process -> (int, Dir.entry) Hashtbl.t
  val versions : process -> (int, int) Hashtbl.t
  val fault_lock : cluster -> process -> vpn:int -> Sim.Mutex.t
  val drop_fault_lock : process -> vpn:int -> unit

  (* physical memory *)
  val alloc_frame : cluster -> kernel -> int
  val free_frame : cluster -> frame:int -> unit

  (* simulated time, metrics, tracing *)
  val work : cluster -> Sim.Time.t -> unit
  val metric_incr : cluster -> kernel:int -> string -> unit
  val trace : cluster -> (unit -> string) -> unit

  (* causal spans: a fault-service span on the requester wraps its call to
     the home so the message is stamped with it; the handler-side span is
     linked to the delivery that caused it. Free no-ops when the run is
     not observed. *)
  val span_begin : cluster -> kernel:int -> ?cause:int -> unit -> span option
  val span_end : cluster -> span option -> unit

  (* messaging *)
  val call :
    cluster ->
    src:kernel ->
    ?src_core:Hw.Topology.core ->
    ?span:span ->
    dst:int ->
    (ticket:int -> Wire.req) ->
    Wire.resp

  val reply :
    cluster ->
    src:kernel ->
    ?src_core:Hw.Topology.core ->
    dst:int ->
    Wire.resp ->
    unit

  val broadcast_and_wait :
    cluster -> src:kernel -> targets:int list -> (ack:int -> Wire.req) -> unit

  (** Register an install-ack ticket on [kernel], run [send] with it, park
      until the requester acknowledges. The caller holds the page's fault
      lock across the whole thing — releasing earlier lets a second writer
      be granted while the first install is still in flight. *)
  val with_install_ack : cluster -> kernel -> send:(ack:int -> unit) -> unit
end

module type S = sig
  type cluster
  type kernel
  type process
  type replica

  val protocol : Protocol.t

  (** Memory access by an application thread: classify against the local
      replica and fault if needed. [Ok classification] tells the caller
      what was needed; [Error] is a segfault. *)
  val touch :
    cluster ->
    kernel ->
    replica ->
    core:Hw.Topology.core ->
    addr:int ->
    access:Kernelmodel.Fault.access ->
    (Kernelmodel.Fault.classification, string) result

  (** Handle one protocol request delivered to [kernel]. [cause] is the
      delivery's message id, for causal span linking. *)
  val handle : cluster -> kernel -> src:int -> cause:int -> Wire.req -> unit

  (** Drop local translations and frames for a byte range (on munmap). *)
  val drop_range_local :
    cluster -> kernel -> replica -> start:int -> len:int -> unit

  (** Directory cleanup for a byte range, initiated from [kernel] (the
      process origin). [keep_versions] is the mprotect reset: directory
      entries and fault locks go, committed content stays. *)
  val drop_range_directory :
    cluster ->
    kernel ->
    process ->
    start:int ->
    len:int ->
    keep_versions:bool ->
    unit
end
