(** The paper's protocol: every page of a process is homed at the
    process's origin kernel. Faults on the origin are message-free; the
    munmap directory drop is a local loop because every entry lives
    here. The cost is that all remote coherence traffic — and every
    fault lock — serializes through the origin's message ring. *)

module Make (Env : Intf.ENV) :
  Intf.S
    with type cluster = Env.cluster
     and type kernel = Env.kernel
     and type process = Env.process
     and type replica = Env.replica = struct
  module B = Impl.Shared (Env)

  type cluster = Env.cluster
  type kernel = Env.kernel
  type process = Env.process
  type replica = Env.replica

  let protocol = Protocol.Origin_home
  let home proc ~vpn:_ = Env.origin proc

  let touch cluster kernel r ~core ~addr ~access =
    B.touch cluster kernel r ~home ~core ~addr ~access

  let handle cluster kernel ~src ~cause req =
    B.handle cluster kernel ~home ~src ~cause req

  let drop_range_local = B.drop_range_local

  (** Every entry is homed at the initiating (origin) kernel: purely
      local cleanup, no messages. *)
  let drop_range_directory _cluster _kernel proc ~start ~len ~keep_versions =
    let first = Kernelmodel.Page_table.vpn_of_addr start in
    let last = Kernelmodel.Page_table.vpn_of_addr (start + len - 1) in
    for vpn = first to last do
      B.drop_dir_vpn proc ~keep_versions vpn
    done
end
