(** Which page-coherence protocol a cluster runs, and where each page's
    directory shard lives under it.

    [Origin_home] is the paper's design: every page of a process is homed
    at the process's origin kernel, so faults from the origin are
    message-free but all remote coherence traffic serializes through one
    node. [Sharded_dir] hashes each VPN to a home kernel so directory
    load and fault-lock contention spread across the cluster, at the cost
    of making even origin-local pages remote with probability
    (nkernels-1)/nkernels. *)

type t = Origin_home | Sharded_dir

let all = [ Origin_home; Sharded_dir ]
let to_string = function Origin_home -> "origin" | Sharded_dir -> "sharded"

let long_name = function
  | Origin_home -> "origin-home directory"
  | Sharded_dir -> "sharded directory"

let of_string s =
  match String.lowercase_ascii s with
  | "origin" | "origin-home" | "origin_home" -> Ok Origin_home
  | "sharded" | "sharded-dir" | "sharded_dir" -> Ok Sharded_dir
  | _ ->
      Error
        (Printf.sprintf "unknown coherence protocol %S (expected %s)" s
           (String.concat "|" (List.map to_string all)))

(* SplitMix64 finalizer over the VPN. Adjacent pages of a hot region must
   scatter across home kernels or the shard assignment degenerates into
   origin-home with extra hops; a multiplicative hash alone is not enough
   because VPNs are tiny and consecutive. *)
let mix vpn =
  let open Int64 in
  let z = mul (of_int (vpn + 1)) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  Stdlib.( land ) (to_int (logxor z (shift_right_logical z 31))) Stdlib.max_int

(** Home kernel of [vpn] for a process originating at [origin]. *)
let home t ~origin ~nkernels ~vpn =
  match t with
  | Origin_home -> origin
  | Sharded_dir -> if nkernels <= 1 then origin else mix vpn mod nkernels
