(** Sharded directory: each VPN hashes to a home kernel
    ({!Protocol.home}), so directory service, fault locks and
    invalidation fan-out spread across the cluster instead of
    serializing through the origin's ring. The trade: pages private to a
    thread on kernel k still hash elsewhere with probability
    (nkernels-1)/nkernels, so low-sharing workloads pay directory hops
    the origin protocol never would. Experiment R3 maps the crossover.

    Home kernels need no replica of the process: the directory tables
    live on the master record, and a home that holds no copy of the page
    simply has nothing to revoke locally. VMA layout stays origin-owned
    ([Addr_consistency] is untouched by the protocol choice); only the
    per-page directory moves. *)

module Make (Env : Intf.ENV) :
  Intf.S
    with type cluster = Env.cluster
     and type kernel = Env.kernel
     and type process = Env.process
     and type replica = Env.replica = struct
  module B = Impl.Shared (Env)

  type cluster = Env.cluster
  type kernel = Env.kernel
  type process = Env.process
  type replica = Env.replica

  let protocol = Protocol.Sharded_dir

  let home_in cluster proc ~vpn =
    Protocol.home Protocol.Sharded_dir ~origin:(Env.origin proc)
      ~nkernels:(Env.nkernels cluster) ~vpn

  let touch cluster kernel r ~core ~addr ~access =
    B.touch cluster kernel r ~home:(home_in cluster) ~core ~addr ~access

  let handle cluster kernel ~src ~cause req =
    B.handle cluster kernel ~home:(home_in cluster) ~src ~cause req

  let drop_range_local = B.drop_range_local

  (** Directory entries are scattered: drop the locally-homed ones in
      place, then batch one {!Wire.Drop_range} per remote home shard and
      wait for all acks. Committed versions are origin bookkeeping and
      are always handled here, never by the shards. *)
  let drop_range_directory cluster kernel proc ~start ~len ~keep_versions =
    let self = Env.kid kernel in
    let first = Kernelmodel.Page_table.vpn_of_addr start in
    let last = Kernelmodel.Page_table.vpn_of_addr (start + len - 1) in
    let remote = ref [] in
    for vpn = first to last do
      if not keep_versions then Hashtbl.remove (Env.versions proc) vpn;
      let h = home_in cluster proc ~vpn in
      if h = self then begin
        Hashtbl.remove (Env.directory proc) vpn;
        Env.drop_fault_lock proc ~vpn
      end
      else if not (List.mem h !remote) then remote := h :: !remote
    done;
    match List.sort compare !remote with
    | [] -> ()
    | targets ->
        let s = Env.stats cluster in
        s.Stats.drop_msgs <- s.Stats.drop_msgs + List.length targets;
        Env.metric_incr cluster ~kernel:self "coherence.drop_range_msgs";
        Env.broadcast_and_wait cluster ~src:kernel ~targets (fun ~ack ->
            Wire.Drop_range { pid = Env.pid proc; start; len; ack })
end
