(** Per-cluster coherence traffic counters. Unlike the observability
    metrics registry (optional, attached per run), these are always on:
    they are plain mutable fields, cost nothing in simulated time, and are
    what experiment R3 reads to report directory load per protocol. *)

type t = {
  mutable faults : int;  (** faults serviced (local + remote). *)
  mutable local_faults : int;  (** serviced without leaving the kernel. *)
  mutable dir_hops : int;  (** fault requests sent to a remote home. *)
  mutable grants : int;  (** directory decisions taken. *)
  mutable invalidations : int;  (** reader copies revoked by writes. *)
  mutable max_fanout : int;  (** largest single invalidation set. *)
  mutable pulls : int;  (** writable copies revoked by the directory. *)
  mutable downgrades : int;  (** writable copies demoted to read-only. *)
  mutable drop_msgs : int;  (** batched directory-drop messages (munmap). *)
}

let create () =
  {
    faults = 0;
    local_faults = 0;
    dir_hops = 0;
    grants = 0;
    invalidations = 0;
    max_fanout = 0;
    pulls = 0;
    downgrades = 0;
    drop_msgs = 0;
  }

let reset t =
  t.faults <- 0;
  t.local_faults <- 0;
  t.dir_hops <- 0;
  t.grants <- 0;
  t.invalidations <- 0;
  t.max_fanout <- 0;
  t.pulls <- 0;
  t.downgrades <- 0;
  t.drop_msgs <- 0
