(** Message vocabulary of the coherence protocols. The cluster's payload
    type embeds [t] as a single constructor; requests are routed to the
    active protocol's [handle], responses complete the matching RPC ticket
    on the receiving kernel (see [resp_ticket]).

    Sizes are body bytes; the transport header is added by the embedding
    payload's size function. They match the sizes the pre-extraction
    protocol charged, message for message, so origin-home timing is
    bit-identical to the monolithic implementation it was carved out of. *)

type pid = Kernelmodel.Ids.pid

type grant = {
  version : int;  (** content version shipped with the page. *)
  writable : bool;
  from_kernel : int;  (** kernel that supplied the data (for cost model). *)
  carries_data : bool;
      (** false when the requester already holds current data (permission
          upgrade) — the response is then header-sized, not page-sized. *)
  ack : int;
      (** ticket at the home kernel to acknowledge once the grant is
          installed; the home holds the page's fault lock until then. 0
          for home-local grants, which install under the lock directly. *)
}

type req =
  | Fault of { ticket : int; pid : pid; vpn : int; access : Kernelmodel.Fault.access }
      (** faulting kernel -> home: serve a fault against the directory. *)
  | Pull of { ticket : int; pid : pid; vpn : int }
      (** home asks the current writer to hand the page back. *)
  | Invalidate of { pid : pid; vpn : int; ack : int }
      (** home asks a reader to drop its read-only copy. *)
  | Downgrade of { pid : pid; vpn : int; ack : int }
      (** home asks the writer to demote its copy to read-only. *)
  | Drop_range of { pid : pid; start : int; len : int; ack : int }
      (** munmap batch: drop every directory entry in the byte range whose
          home is the receiving kernel (sharded protocol only). *)

type resp =
  | Grant of { ticket : int; result : (grant, string) result }
  | Pulled of { ticket : int; version : int }
  | Ack of { ticket : int }

type t = Req of req | Resp of resp

let size = function
  | Req (Fault _) -> 16
  | Req (Pull _) -> 8
  | Req (Invalidate _) | Req (Downgrade _) -> 8
  | Req (Drop_range _) -> 24
  | Resp (Grant { result = Ok g; _ }) -> if g.carries_data then 4096 else 16
  | Resp (Grant { result = Error _; _ }) -> 0
  | Resp (Pulled _) -> 4096
  | Resp (Ack _) -> 0

let resp_ticket = function
  | Grant { ticket; _ } | Pulled { ticket; _ } | Ack { ticket } -> ticket
