(** Distributed address-space consistency: the mmap family over replicated
    VMA trees.

    One kernel — the process's origin — owns the authoritative layout.
    Every kernel hosting members keeps a replica. An mmap/munmap/mprotect
    issued anywhere is forwarded to the origin, which serialises it under
    its (locally contended) mm lock, applies it to the master layout,
    pushes the delta to every replica in parallel, waits for acks, and
    replies. A process that lives on a single kernel never sends a message
    — the fast path that keeps Popcorn competitive with SMP Linux at low
    thread counts while avoiding the shared-lock collapse at high counts. *)

open Types
module K = Kernelmodel

(* VMA tree manipulation work per operation (interval-tree update). *)
let vma_op_cost = Sim.Time.ns 350

let other_members (proc : process) ~except =
  List.filter (fun k -> k <> except && k <> proc.origin) proc.member_kernels

(* ------------------------------------------------------------------ *)
(* Replica-side handlers                                               *)
(*                                                                     *)
(* VMA replication is lazy (as in Popcorn): mmap only updates the      *)
(* master layout at the origin; replicas learn about regions on their  *)
(* first fault via Vma_lookup. Destructive operations (munmap,         *)
(* mprotect) are pushed eagerly: each replica drops the affected       *)
(* range — layout and translations — and will refetch lazily.          *)
(* ------------------------------------------------------------------ *)

let drop_replica_range cluster (kernel : kernel) (r : replica) ~start ~len =
  Page_coherence.drop_range_local cluster kernel r ~start ~len;
  match K.Vma.unmap r.vmas ~start ~len with
  | Ok () -> ()
  | Error e -> failwith ("replica vma drop diverged: " ^ e)

let handle_vma_remove cluster (kernel : kernel) ~src ~pid ~start ~len
    ~ack_ticket =
  Proto_util.kernel_work cluster vma_op_cost;
  (match find_replica kernel pid with
  | None -> ()
  | Some r -> drop_replica_range cluster kernel r ~start ~len);
  send cluster ~src:kernel.kid ~dst:src (Vma_ack { ticket = ack_ticket })

let handle_vma_protect cluster (kernel : kernel) ~src ~pid ~start ~len
    ~prot:_ ~ack_ticket =
  Proto_util.kernel_work cluster vma_op_cost;
  (match find_replica kernel pid with
  | None -> ()
  | Some r -> drop_replica_range cluster kernel r ~start ~len);
  send cluster ~src:kernel.kid ~dst:src (Vma_ack { ticket = ack_ticket })

(* ------------------------------------------------------------------ *)
(* Origin-side implementation                                          *)
(* ------------------------------------------------------------------ *)

(** Apply an mmap at the origin. No push: replicas learn lazily on their
    first fault into the region ([requester] applies the RPC response). *)
let origin_mmap cluster (origin : kernel) (proc : process) ~requester:_ ~len
    ~prot =
  let r = replica_exn origin proc.pid in
  trace cluster ~cat:"mm" "k%d mmap pid %d len %d" origin.kid proc.pid len;
  Hw.Spinlock.with_lock origin.mm_lock ~core:origin.home_core (fun () ->
      Proto_util.kernel_work cluster vma_op_cost;
      K.Vma.map r.vmas ~len ~prot ~kind:K.Vma.Anon ())

let origin_munmap cluster (origin : kernel) (proc : process) ~requester
    ~start ~len =
  trace cluster ~cat:"mm" "k%d munmap pid %d %x+%x" origin.kid proc.pid start
    len;
  let r = replica_exn origin proc.pid in
  Hw.Spinlock.with_lock origin.mm_lock ~core:origin.home_core (fun () ->
      Proto_util.kernel_work cluster vma_op_cost;
      match K.Vma.unmap r.vmas ~start ~len with
      | Error e -> Error e
      | Ok () ->
          Page_coherence.drop_range_local cluster origin r ~start ~len;
          Proto_util.broadcast_and_wait cluster ~src:origin
            ~targets:(other_members proc ~except:requester)
            ~make:(fun ~ack_ticket ->
              Vma_remove { pid = proc.pid; start; len; ack_ticket });
          Page_coherence.drop_range_directory cluster origin proc ~start ~len
            ~keep_versions:false;
          Ok ())

let origin_mprotect cluster (origin : kernel) (proc : process) ~requester
    ~start ~len ~prot =
  let r = replica_exn origin proc.pid in
  Hw.Spinlock.with_lock origin.mm_lock ~core:origin.home_core (fun () ->
      Proto_util.kernel_work cluster vma_op_cost;
      match K.Vma.protect r.vmas ~start ~len ~prot with
      | Error e -> Error e
      | Ok () ->
          (* Same local page-drop the replicas perform. *)
          let removed = K.Page_table.clear_range r.pt ~start ~len in
          List.iter
            (fun (pte : K.Page_table.pte) ->
              Hw.Memory.free cluster.machine.Hw.Machine.mem
                pte.K.Page_table.frame)
            removed;
          let first = K.Page_table.vpn_of_addr start in
          let last = K.Page_table.vpn_of_addr (start + len - 1) in
          for vpn = first to last do
            Hashtbl.remove r.page_data vpn
          done;
          Proto_util.broadcast_and_wait cluster ~src:origin
            ~targets:(other_members proc ~except:requester)
            ~make:(fun ~ack_ticket ->
              Vma_protect { pid = proc.pid; start; len; prot; ack_ticket });
          (* Reset directory entries without destroying content versions
             (munmap destroys those too). *)
          Page_coherence.drop_range_directory cluster origin proc ~start ~len
            ~keep_versions:true;
          Ok ())

(* ------------------------------------------------------------------ *)
(* Origin-side message handlers (requests from remote kernels)         *)
(* ------------------------------------------------------------------ *)

let handle_mmap_req cluster (kernel : kernel) ~src ~ticket ~pid ~len ~prot =
  let proc = proc_exn cluster pid in
  let result = origin_mmap cluster kernel proc ~requester:src ~len ~prot in
  send cluster ~src:kernel.kid ~dst:src (Mmap_resp { ticket; result })

let handle_munmap_req cluster (kernel : kernel) ~src ~ticket ~pid ~start ~len
    =
  let proc = proc_exn cluster pid in
  let result =
    origin_munmap cluster kernel proc ~requester:src ~start ~len
  in
  send cluster ~src:kernel.kid ~dst:src (Munmap_resp { ticket; result })

let handle_mprotect_req cluster (kernel : kernel) ~src ~ticket ~pid ~start
    ~len ~prot =
  let proc = proc_exn cluster pid in
  let result =
    origin_mprotect cluster kernel proc ~requester:src ~start ~len ~prot
  in
  send cluster ~src:kernel.kid ~dst:src (Mprotect_resp { ticket; result })

(** A kernel about to host its first member of [pid] fetches the layout.
    Taken under the origin's mm lock so the snapshot is consistent, and the
    requester joins the membership {e before} the snapshot — every later
    layout change will be pushed to it, so snapshot + pushes = the truth. *)
let handle_vma_fetch cluster (kernel : kernel) ~src ~ticket ~pid =
  let r = replica_exn kernel pid in
  let proc = r.proc in
  let vmas =
    Hw.Spinlock.with_lock kernel.mm_lock ~core:kernel.home_core (fun () ->
        Proto_util.kernel_work cluster vma_op_cost;
        Process_model.add_member_kernel proc src;
        Process_model.mark_distributed proc cluster;
        K.Vma.vmas r.vmas)
  in
  send cluster ~src:kernel.kid ~dst:src (Vma_fetch_resp { ticket; vmas })

(** Lazy replication: resolve one address against the master layout. *)
let handle_vma_lookup cluster (kernel : kernel) ~src ~ticket ~pid ~addr =
  Proto_util.kernel_work cluster vma_op_cost;
  let vma =
    match find_replica kernel pid with
    | None -> None
    | Some r -> K.Vma.find r.vmas addr
  in
  send cluster ~src:kernel.kid ~dst:src (Vma_lookup_resp { ticket; vma })

(** Called on a fault whose address has no VMA in the local replica: fetch
    the covering VMA from the origin and install it. Returns whether the
    address turned out to be mapped. Never called on the origin (its
    layout is authoritative). *)
let fetch_vma cluster (kernel : kernel) ~core ~pid ~addr : bool =
  let r = replica_exn kernel pid in
  let proc = r.proc in
  assert (kernel.kid <> proc.origin);
  match
    Proto_util.call_from cluster ~src:kernel ~src_core:core ~dst:proc.origin
      (fun ~ticket -> Vma_lookup_req { ticket; pid; addr })
  with
  | Vma_lookup_resp { vma = None; _ } -> false
  | Vma_lookup_resp { vma = Some vma; _ } ->
      Hw.Spinlock.with_lock kernel.mm_lock ~core (fun () ->
          Proto_util.kernel_work cluster vma_op_cost;
          (* A racing fault may have installed an overlapping VMA; treat
             any overlap as already-present. *)
          match
            K.Vma.map r.vmas ~fixed:vma.K.Vma.start ~len:vma.K.Vma.len
              ~prot:vma.K.Vma.prot ~kind:vma.K.Vma.kind ()
          with
          | Ok _ -> ()
          | Error _ -> ());
      true
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Application-facing entry points (called on the thread's kernel)     *)
(* ------------------------------------------------------------------ *)

let syscall_entry cluster =
  Proto_util.kernel_work cluster (params cluster).Hw.Params.syscall_overhead

let mmap cluster (kernel : kernel) ~core ~pid ~len ~prot =
  syscall_entry cluster;
  let r = replica_exn kernel pid in
  let proc = r.proc in
  if kernel.kid = proc.origin then
    origin_mmap cluster kernel proc ~requester:kernel.kid ~len ~prot
  else begin
    let resp =
      Proto_util.call_from cluster ~src:kernel ~src_core:core
        ~dst:proc.origin (fun ~ticket -> Mmap_req { ticket; pid; len; prot })
    in
    match resp with
    | Mmap_resp { result = Ok vma; _ } ->
        Hw.Spinlock.with_lock kernel.mm_lock ~core (fun () ->
            Proto_util.kernel_work cluster vma_op_cost;
            match
              K.Vma.map r.vmas ~fixed:vma.K.Vma.start ~len:vma.K.Vma.len
                ~prot:vma.K.Vma.prot ~kind:vma.K.Vma.kind ()
            with
            | Ok _ -> Ok vma
            | Error e -> Error ("local replica diverged: " ^ e))
    | Mmap_resp { result = Error e; _ } -> Error e
    | _ -> assert false
  end

let munmap cluster (kernel : kernel) ~core ~pid ~start ~len =
  syscall_entry cluster;
  let r = replica_exn kernel pid in
  let proc = r.proc in
  if kernel.kid = proc.origin then
    origin_munmap cluster kernel proc ~requester:kernel.kid ~start ~len
  else begin
    let resp =
      Proto_util.call_from cluster ~src:kernel ~src_core:core
        ~dst:proc.origin (fun ~ticket ->
          Munmap_req { ticket; pid; start; len })
    in
    match resp with
    | Munmap_resp { result = Ok (); _ } ->
        Hw.Spinlock.with_lock kernel.mm_lock ~core (fun () ->
            Proto_util.kernel_work cluster vma_op_cost;
            Page_coherence.drop_range_local cluster kernel r ~start ~len;
            match K.Vma.unmap r.vmas ~start ~len with
            | Ok () -> Ok ()
            | Error e -> Error ("local replica diverged: " ^ e))
    | Munmap_resp { result = Error e; _ } -> Error e
    | _ -> assert false
  end

let mprotect cluster (kernel : kernel) ~core ~pid ~start ~len ~prot =
  syscall_entry cluster;
  let r = replica_exn kernel pid in
  let proc = r.proc in
  if kernel.kid = proc.origin then
    origin_mprotect cluster kernel proc ~requester:kernel.kid ~start ~len
      ~prot
  else begin
    let resp =
      Proto_util.call_from cluster ~src:kernel ~src_core:core
        ~dst:proc.origin (fun ~ticket ->
          Mprotect_req { ticket; pid; start; len; prot })
    in
    match resp with
    | Mprotect_resp { result = Ok (); _ } ->
        Hw.Spinlock.with_lock kernel.mm_lock ~core (fun () ->
            Proto_util.kernel_work cluster vma_op_cost;
            (* Drop the local range; the re-protected layout is refetched
               lazily on the next fault. *)
            drop_replica_range cluster kernel r ~start ~len;
            Ok ())
    | Mprotect_resp { result = Error e; _ } -> Error e
    | _ -> assert false
  end
