(** Application-facing API of the replicated-kernel OS.

    Programs are OCaml closures receiving a {!thread} handle; the handle's
    operations mirror the Linux surface the paper's applications use —
    compute, clone (possibly onto another kernel), migrate, the mmap
    family, memory access (with demand faulting and coherence underneath),
    and futexes. Everything is location-transparent: the same program runs
    unchanged wherever its threads happen to live, which is the paper's
    single-system-image claim. *)

open Types
module K = Kernelmodel

type thread = {
  cluster : cluster;
  proc : process;
  task : K.Task.t;
}

exception Killed
(** Raised inside a thread's own operations once the thread has been
    terminated by [exit_group] or [kill]; the thread-body wrapper catches
    it, so user code may simply let it propagate. *)

let check_alive th = if not (K.Task.is_live th.task) then raise Killed

let current_kernel th = (kernel_of th.cluster th.task.K.Task.kernel : kernel)

let current_core th =
  match th.task.K.Task.core with
  | Some c -> c
  | None -> invalid_arg "thread has no core assigned"

let tid th = th.task.K.Task.tid
let pid th = th.proc.pid

(* Place a task on the emptiest core of its kernel and mark Running. *)
let schedule_in th =
  let kernel = current_kernel th in
  let core = K.Sched.pick_core kernel.sched in
  K.Sched.assign kernel.sched core;
  th.task.K.Task.core <- Some core;
  K.Task.set_state th.task K.Task.Running

(* Remove the task from its core's assignment on exit or migration away. *)
let unschedule th =
  match th.task.K.Task.core with
  | Some core ->
      let kernel = current_kernel th in
      if K.Sched.owns kernel.sched core then
        K.Sched.unassign kernel.sched core;
      th.task.K.Task.core <- None
  | None -> ()

(** Migrate this thread to kernel [dst]; returns the migration cost
    breakdown. On return the thread is running on [dst]. [deadline] is an
    optional end-to-end budget (simulated ns) accounted by the SLO layer. *)
let migrate ?deadline th ~dst =
  check_alive th;
  let kernel = current_kernel th in
  Migration.migrate ?deadline th.cluster kernel ~core:(current_core th)
    th.task ~dst

(** Burn CPU on the thread's current core for the given duration. The end
    of a compute slice is a cooperative migration point: balancer hints
    are honoured here. *)
let compute th dt =
  check_alive th;
  let kernel = current_kernel th in
  K.Sched.compute_on kernel.sched (current_core th) dt;
  check_alive th;
  match Balancer.take_hint kernel ~tid:th.task.K.Task.tid with
  | Some dst when dst <> kernel.kid -> ignore (migrate th ~dst)
  | Some _ | None -> ()

(** Clone a new thread of this group onto [target] (default: this kernel)
    running [body]. Returns the new thread's tid without waiting for the
    body to finish. *)
let spawn th ?target body : K.Ids.tid =
  check_alive th;
  let kernel = current_kernel th in
  let target = match target with Some t -> t | None -> kernel.kid in
  let new_tid =
    Thread_group.spawn th.cluster kernel ~core:(current_core th)
      ~pid:th.proc.pid ~target
  in
  let target_kernel = kernel_of th.cluster target in
  let new_task =
    match Hashtbl.find_opt target_kernel.tasks new_tid with
    | Some t -> t
    | None -> invalid_arg "spawn: created task vanished"
  in
  let child = { cluster = th.cluster; proc = th.proc; task = new_task } in
  Sim.Engine.spawn (eng th.cluster) ~tag:"popcorn"
    ~name:(Printf.sprintf "thread-%d" new_tid)
    (fun () ->
      schedule_in child;
      (* Pay the dispatch-in cost before user code runs. *)
      Proto_util.kernel_work th.cluster
        (params th.cluster).Hw.Params.context_switch;
      (try body child with Killed -> ());
      let kernel_at_exit = current_kernel child in
      unschedule child;
      (* A killed task was already torn down by exit_group/kill. *)
      if K.Task.is_live child.task then
        Thread_group.exit_thread child.cluster kernel_at_exit child.task);
  new_tid

(* --- memory --- *)

let replica th = replica_exn (current_kernel th) th.proc.pid

let mmap th ~len ~prot =
  check_alive th;
  let kernel = current_kernel th in
  Addr_consistency.mmap th.cluster kernel ~core:(current_core th)
    ~pid:th.proc.pid ~len ~prot

let munmap th ~start ~len =
  check_alive th;
  let kernel = current_kernel th in
  Addr_consistency.munmap th.cluster kernel ~core:(current_core th)
    ~pid:th.proc.pid ~start ~len

let mprotect th ~start ~len ~prot =
  check_alive th;
  let kernel = current_kernel th in
  Addr_consistency.mprotect th.cluster kernel ~core:(current_core th)
    ~pid:th.proc.pid ~start ~len ~prot

(* Touch with the lazy-VMA fill: a miss in the local replica's layout is
   resolved against the origin's master layout before being a segfault. *)
let touch_filling th ~addr ~access =
  check_alive th;
  K.Task.note_touch th.task ~vpn:(K.Page_table.vpn_of_addr addr);
  let kernel = current_kernel th in
  let r = replica th in
  let core = current_core th in
  match Page_coherence.touch th.cluster kernel r ~core ~addr ~access with
  | Error _ when kernel.kid <> th.proc.origin ->
      if
        Addr_consistency.fetch_vma th.cluster kernel ~core
          ~pid:th.proc.pid ~addr
      then Page_coherence.touch th.cluster kernel r ~core ~addr ~access
      else Error "segmentation fault"
  | res -> res

(** Read one word; faults (and replicates the page) as needed. Returns the
    content version visible to this thread — tests use it to check
    coherence; applications treat it as the loaded value. *)
let read th ~addr : (int, string) result =
  match touch_filling th ~addr ~access:K.Fault.Read with
  | Ok _ -> Ok (Page_coherence.read_version (replica th) ~addr)
  | Error e -> Error e

(** Write one word; acquires page ownership as needed and commits a new
    content version. *)
let write th ~addr : (unit, string) result =
  match touch_filling th ~addr ~access:K.Fault.Write with
  | Ok _ ->
      Page_coherence.write_commit (replica th) ~addr;
      Ok ()
  | Error e -> Error e

(* --- futexes --- *)

type wait_result = Dfutex.wait_result = Woken | Timed_out

let futex_wait th ?timeout ~addr () =
  check_alive th;
  let kernel = current_kernel th in
  Dfutex.wait th.cluster kernel ~core:(current_core th) ~pid:th.proc.pid
    ?timeout () ~addr

let futex_wake th ~addr ~count =
  check_alive th;
  let kernel = current_kernel th in
  Dfutex.wake th.cluster kernel ~core:(current_core th) ~pid:th.proc.pid
    ~addr ~count

(* --- files (SSI remote syscalls) --- *)

(** Open (creating if absent) a file; returns the fd, shared group-wide. *)
let open_file th ~path =
  check_alive th;
  let kernel = current_kernel th in
  Vfs.syscall th.cluster kernel ~core:(current_core th) ~pid:th.proc.pid
    (Vfs_open path)

(** Sequential read from the fd's cursor; returns bytes actually read. *)
let file_read th ~fd ~len =
  check_alive th;
  let kernel = current_kernel th in
  Vfs.syscall th.cluster kernel ~core:(current_core th) ~pid:th.proc.pid
    (Vfs_read { fd; len })

(** Sequential write at the fd's cursor; returns bytes written. *)
let file_write th ~fd ~len =
  check_alive th;
  let kernel = current_kernel th in
  Vfs.syscall th.cluster kernel ~core:(current_core th) ~pid:th.proc.pid
    (Vfs_write { fd; len })

(** Reposition the fd's (group-shared) cursor; returns the new offset. *)
let file_seek th ~fd ~pos =
  check_alive th;
  let kernel = current_kernel th in
  Vfs.syscall th.cluster kernel ~core:(current_core th) ~pid:th.proc.pid
    (Vfs_seek { fd; pos })

let close_file th ~fd =
  check_alive th;
  let kernel = current_kernel th in
  Result.map ignore
    (Vfs.syscall th.cluster kernel ~core:(current_core th) ~pid:th.proc.pid
       (Vfs_close fd))

(* --- processes --- *)

(** Start a new process whose initial thread runs [main] on kernel
    [origin]. Must be called from inside the simulation (a fiber). *)
let start_process cluster ~origin main : process =
  let proc, task = Cluster.create_process cluster ~origin_kernel:origin in
  let th = { cluster; proc; task } in
  Sim.Engine.spawn (eng cluster) ~tag:"popcorn"
    ~name:(Printf.sprintf "proc-%d-main" proc.pid)
    (fun () ->
      schedule_in th;
      Proto_util.kernel_work cluster
        (params cluster).Hw.Params.context_switch;
      (try main th with Killed -> ());
      let kernel_at_exit = current_kernel th in
      unschedule th;
      if K.Task.is_live th.task then
        Thread_group.exit_thread cluster kernel_at_exit th.task);
  proc

(** Terminate every thread of this group, on every kernel (exit_group).
    Raises {!Killed} in the calling thread after the group is dead. *)
let exit_group th =
  check_alive th;
  let kernel = current_kernel th in
  Thread_group.exit_group th.cluster kernel ~core:(current_core th)
    ~pid:th.proc.pid;
  raise Killed

(** SIGKILL a thread of this group by tid; returns whether it was found
    alive. The victim observes the kill at its next operation. *)
let kill th ~tid =
  check_alive th;
  let kernel = current_kernel th in
  Thread_group.kill th.cluster kernel ~core:(current_core th)
    ~pid:th.proc.pid ~tid

(** fork(): create a child process (homed at this thread's kernel) whose
    initial thread runs [main] with a COW-inherited copy of this process's
    address space. Returns the child's process record. *)
let fork th main : process =
  check_alive th;
  let kernel = current_kernel th in
  let child, task =
    Fork.fork th.cluster kernel ~core:(current_core th) ~pid:th.proc.pid
  in
  let cth = { cluster = th.cluster; proc = child; task } in
  Sim.Engine.spawn (eng th.cluster) ~tag:"popcorn"
    ~name:(Printf.sprintf "proc-%d-main" child.pid)
    (fun () ->
      schedule_in cth;
      Proto_util.kernel_work th.cluster
        (params th.cluster).Hw.Params.context_switch;
      (try main cth with Killed -> ());
      let kernel_at_exit = current_kernel cth in
      unschedule cth;
      if K.Task.is_live cth.task then
        Thread_group.exit_thread cth.cluster kernel_at_exit cth.task);
  child

(** Park until every thread of [proc] has exited. *)
let wait_exit cluster proc = Ssi.wait_group_exit cluster proc

(** Global ps-style listing as seen from [kernel]. *)
let global_tasks th =
  Ssi.global_tasks th.cluster (current_kernel th)
