(** Application-facing API of the replicated-kernel OS.

    Programs are OCaml closures receiving a {!thread} handle; its
    operations mirror the Linux surface the paper's applications use —
    compute, clone (optionally onto another kernel), migrate, the mmap
    family, memory access with demand faulting and coherence underneath,
    futexes, and process control. Everything is location-transparent: the
    same program runs unchanged wherever its threads live, which is the
    paper's single-system-image claim. *)

open Types

type thread = {
  cluster : cluster;
  proc : process;
  task : Kernelmodel.Task.t;
}
(** A running thread's handle: its group, its task control block, and the
    cluster it lives in. [task.kernel]/[task.core] track its location. *)

exception Killed
(** Raised inside a thread's own operations once the thread has been
    terminated by {!exit_group} or {!kill}; the thread-body wrapper catches
    it, so user code may simply let it propagate. *)

(** {1 Identity and location} *)

val tid : thread -> Kernelmodel.Ids.tid
val pid : thread -> pid

val current_kernel : thread -> kernel
(** The kernel hosting this thread right now. *)

val current_core : thread -> Hw.Topology.core

val replica : thread -> replica
(** This process's address-space replica on the thread's current kernel.
    Read-only inspection of local page-table state (e.g. deciding whether
    the next access would fault) costs nothing in simulated time. *)

(** {1 Execution} *)

val compute : thread -> Sim.Time.t -> unit
(** Burn CPU on the thread's core (timeshared). The end of a slice is a
    cooperative migration point: balancer hints are honoured here. *)

val spawn :
  thread -> ?target:int -> (thread -> unit) -> Kernelmodel.Ids.tid
(** Clone a new member of this thread group onto kernel [target] (default:
    the caller's kernel), running the body. Returns once the thread exists;
    the body runs concurrently. *)

val migrate : ?deadline:Sim.Time.t -> thread -> dst:int -> Migration.breakdown
(** Move this thread to kernel [dst]; on return it is running there. The
    returned breakdown decomposes the cost (experiment T1). When
    [deadline] (an end-to-end budget in simulated ns) is given, the SLO
    layer counts the migration as met or violated — see
    {!Migration.migrate}; accounting only, never a behaviour change. *)

(** {1 Memory} *)

val mmap :
  thread ->
  len:int ->
  prot:Kernelmodel.Vma.prot ->
  (Kernelmodel.Vma.vma, string) result
(** Anonymous mapping in the group-wide address space (page-aligned len). *)

val munmap : thread -> start:int -> len:int -> (unit, string) result
val mprotect :
  thread ->
  start:int ->
  len:int ->
  prot:Kernelmodel.Vma.prot ->
  (unit, string) result

val read : thread -> addr:int -> (int, string) result
(** Load one word, demand-faulting (and replicating the page) as needed.
    Returns the content version visible here — tests use it to check
    coherence; applications treat it as the loaded value. *)

val write : thread -> addr:int -> (unit, string) result
(** Store one word, acquiring exclusive page ownership as needed. *)

(** {1 Synchronisation} *)

type wait_result = Dfutex.wait_result = Woken | Timed_out

val futex_wait :
  thread -> ?timeout:Sim.Time.t -> addr:int -> unit -> wait_result

val futex_wake : thread -> addr:int -> count:int -> int
(** Returns how many waiters were woken. *)

(** {1 Files (single-system-image remote syscalls)}

    File operations are served by the kernel owning the storage device
    (kernel 0); threads elsewhere forward the syscall transparently. File
    descriptors are per-process and shared by the whole group, wherever
    its threads run. *)

val open_file : thread -> path:string -> (int, string) result
(** Open (creating if absent); returns the fd. *)

val file_read : thread -> fd:int -> len:int -> (int, string) result
(** Sequential read from the fd's cursor; returns bytes actually read
    (short at EOF). *)

val file_write : thread -> fd:int -> len:int -> (int, string) result

val file_seek : thread -> fd:int -> pos:int -> (int, string) result
(** Reposition the (group-shared) cursor; returns the new offset. *)

val close_file : thread -> fd:int -> (unit, string) result

(** {1 Process control} *)

val start_process : cluster -> origin:int -> (thread -> unit) -> process
(** Start a new process whose initial thread runs the body on kernel
    [origin]. Must be called from inside the simulation (a fiber). *)

val fork : thread -> (thread -> unit) -> process
(** fork(): child process homed at this thread's kernel, running [main]
    with a COW-inherited copy of this address space (contents shared
    logically; first touches fault in private copies). *)

val wait_exit : cluster -> process -> unit
(** Park until every thread of the group has exited. *)

val exit_group : thread -> 'a
(** Terminate every member of this group on every kernel, then raise
    {!Killed} in the caller. *)

val kill : thread -> tid:Kernelmodel.Ids.tid -> bool
(** SIGKILL a member by tid wherever it lives; [false] if already dead.
    The victim observes the kill at its next operation. *)

val global_tasks : thread -> (Kernelmodel.Ids.tid * pid) list
(** /proc-style global task listing, gathered from every kernel. *)
