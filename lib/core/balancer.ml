(** Inter-kernel load balancing.

    A per-kernel balancer fiber periodically queries the other kernels'
    run-queue weights over the messaging layer, and when its own kernel is
    overloaded relative to the cluster it leaves a migration hint for one
    of its threads. Threads consume hints at cooperative migration points
    (the [Api.compute] boundary), which is how Popcorn migrates: the kernel
    proposes, the thread's next safe point disposes.

    This recovers the work-spreading that SMP Linux gets for free from its
    shared runqueues — one of the paper's "cost of the design" discussion
    points — and is exercised by the load_balancer example and tests.

    Load queries are per-peer timed calls (never a barrier), so a crashed
    peer costs one timeout per round instead of wedging the balancer; each
    query outcome feeds the optional {!Health} tracker, and drained peers
    are neither queried nor chosen. The destination comes from a
    {!Placement.POLICY}. Hints that nothing consumes — the thread exited,
    migrated on its own, or never reached a migration point — are expired
    after [hint_ttl] (the stale-hint leak: a dead tid's hint used to live
    forever). *)

open Types
module K = Kernelmodel

type t = {
  period : Sim.Time.t;
  threshold : int;  (** hint only if local load exceeds average by this. *)
  hint_ttl : Sim.Time.t;
  query_timeout : Sim.Time.t;
  policy : (module Placement.POLICY);
  health : Health.t option;
  mutable hints_issued : int;
  mutable hints_stale : int;
  mutable running : bool;
}

let handle_load_query cluster (kernel : kernel) ~src ~ticket =
  Proto_util.kernel_work cluster (Sim.Time.ns 200);
  let load =
    List.fold_left
      (fun acc core -> acc + K.Cpu.assigned (K.Sched.cpu kernel.sched core))
      0 (K.Sched.cores kernel.sched)
  in
  send cluster ~src:kernel.kid ~dst:src (Load_info { ticket; load })

let local_load (kernel : kernel) =
  List.fold_left
    (fun acc core -> acc + K.Cpu.assigned (K.Sched.cpu kernel.sched core))
    0 (K.Sched.cores kernel.sched)

(* Expire hints nothing will consume: the thread is gone (exited or
   migrated away, taking its tid with it) or the hint outlived [hint_ttl]
   without the thread reaching a migration point. *)
let expire_hints t cluster (kernel : kernel) ~now =
  let stale =
    Hashtbl.fold
      (fun tid (h : migrate_hint) acc ->
        let live =
          match Hashtbl.find_opt kernel.tasks tid with
          | Some task -> K.Task.is_live task
          | None -> false
        in
        if (not live) || Sim.Time.sub now h.hint_at > t.hint_ttl then
          tid :: acc
        else acc)
      kernel.migrate_hints []
  in
  List.iter
    (fun tid ->
      Hashtbl.remove kernel.migrate_hints tid;
      t.hints_stale <- t.hints_stale + 1;
      m_incr cluster ~kernel:kernel.kid "balancer.hints_stale")
    stale

let peer_available t k =
  match t.health with None -> true | Some h -> Health.available h k

(* One balancing round on [kernel]: expire stale hints, gather loads, hint
   one thread away if overloaded. Self-quarantine: a kernel the cluster
   has drained skips its rounds — it cannot reach its peers, so every
   observation it would feed the shared health tracker is a spurious miss
   that would drain the healthy majority too. *)
let round t cluster (kernel : kernel) =
  let eng = eng cluster in
  expire_hints t cluster kernel ~now:(Sim.Engine.now eng);
  if peer_available t kernel.kid then begin
  let others =
    List.filter
      (fun k -> k <> kernel.kid && peer_available t k)
      (List.init (nkernels cluster) Fun.id)
  in
  let loads = Hashtbl.create 8 in
  List.iter
    (fun dst ->
      match
        Msg.Rpc.call_timeout kernel.rpc ~timeout:t.query_timeout
          (fun ticket ->
            send cluster ~src:kernel.kid ~dst (Load_query { ticket }))
      with
      | Some (Load_info { load; _ }) ->
          Hashtbl.replace loads dst load;
          Option.iter (fun h -> Health.note_success h ~kernel:dst) t.health
      | Some _ -> ()
      | None ->
          Option.iter (fun h -> Health.note_failure h ~kernel:dst) t.health)
    others;
  let mine = local_load kernel in
  let total = Hashtbl.fold (fun _ l acc -> acc + l) loads mine in
  let responders = Hashtbl.length loads + 1 in
  let avg = total / responders in
  if mine > avg + t.threshold then begin
    let candidates =
      Hashtbl.fold
        (fun dst load acc ->
          let peer = kernel_of cluster dst in
          {
            Placement.ck = dst;
            ck_core = peer.home_core;
            ck_load = load;
            ck_weight = List.length peer.cores;
          }
          :: acc)
        loads []
    in
    let (module P : Placement.POLICY) = t.policy in
    let target =
      P.choose
        ~topo:cluster.machine.Hw.Machine.topo
        ~src_core:kernel.home_core ~candidates
    in
    match target with
    | Some target
      when target <> kernel.kid
           && Hashtbl.find_opt loads target |> Option.value ~default:mine
              < mine -> begin
        (* First hint-free live local task. *)
        let candidate =
          Hashtbl.fold
            (fun tid (task : K.Task.t) acc ->
              match acc with
              | Some _ -> acc
              | None ->
                  if
                    K.Task.is_live task
                    && not (Hashtbl.mem kernel.migrate_hints tid)
                  then Some tid
                  else None)
            kernel.tasks None
        in
        match candidate with
        | Some tid ->
            Hashtbl.replace kernel.migrate_hints tid
              { hint_dst = target; hint_at = Sim.Engine.now eng };
            t.hints_issued <- t.hints_issued + 1;
            m_incr cluster ~kernel:kernel.kid "balancer.hints_issued"
        | None -> ()
      end
    | _ -> ()
  end
  end

(** Start balancer fibers on every kernel. They run until [stop]. *)
let start ?(period = Sim.Time.ms 1) ?(threshold = 2) ?policy ?health
    ?hint_ttl ?(query_timeout = Sim.Time.us 100) cluster : t =
  let policy =
    Option.value policy ~default:(module Placement.Weighted_least_loaded : Placement.POLICY)
  in
  let hint_ttl = Option.value hint_ttl ~default:(2 * period) in
  let t =
    {
      period;
      threshold;
      hint_ttl;
      query_timeout;
      policy;
      health;
      hints_issued = 0;
      hints_stale = 0;
      running = true;
    }
  in
  Array.iter
    (fun kernel ->
      Sim.Engine.spawn (eng cluster) ~tag:"popcorn"
        ~name:(Printf.sprintf "balancer-k%d" kernel.kid)
        (fun () ->
          let rec loop () =
            if t.running then begin
              Sim.Engine.sleep (eng cluster) t.period;
              if t.running then begin
                round t cluster kernel;
                loop ()
              end
            end
          in
          loop ()))
    cluster.kernels;
  t

let stop t = t.running <- false
let hints_issued t = t.hints_issued
let hints_stale t = t.hints_stale

(** Cooperative migration point: called by the API layer after compute
    slices. Returns the destination if this thread was asked to move. *)
let take_hint (kernel : kernel) ~tid =
  match Hashtbl.find_opt kernel.migrate_hints tid with
  | Some { hint_dst; _ } ->
      Hashtbl.remove kernel.migrate_hints tid;
      Some hint_dst
  | None -> None
