(** Inter-kernel load balancing.

    Per-kernel balancer fibers periodically exchange run-queue weights over
    the messaging layer; an overloaded kernel leaves migration hints that
    its threads consume at cooperative migration points ([Api.compute]
    boundaries) — how Popcorn migrates: the kernel proposes, the thread's
    next safe point disposes.

    Load queries are individually timed (a crashed peer costs a timeout,
    not a wedged balancer) and their outcomes feed an optional {!Health}
    tracker; drained peers are skipped, and a kernel that is itself
    drained self-quarantines — it skips its own rounds, because a node
    that cannot reach its peers would otherwise report the healthy
    majority as dead. Destinations come from a
    {!Placement.POLICY}. Hints nothing consumes are expired (the
    [balancer.hints_stale] metric counts them). *)

open Types

type t

val start :
  ?period:Sim.Time.t ->
  ?threshold:int ->
  ?policy:(module Placement.POLICY) ->
  ?health:Health.t ->
  ?hint_ttl:Sim.Time.t ->
  ?query_timeout:Sim.Time.t ->
  cluster ->
  t
(** Start balancer fibers on every kernel. [period] defaults to 1 ms;
    [threshold] (default 2) is how far above the cluster average a
    kernel's load must be before it sheds a thread; [policy] (default
    weighted-least-loaded) picks the destination; [health] (when given) is
    fed every load-query outcome and masks drained peers; [hint_ttl]
    (default 2 periods) expires unconsumed hints; [query_timeout] (default
    100 us) bounds each per-peer load query. *)

val stop : t -> unit
(** Stop all balancer fibers (at their next period boundary). *)

val hints_issued : t -> int

val hints_stale : t -> int
(** Hints expired unconsumed (thread exited, migrated on its own, or never
    reached a migration point within [hint_ttl]). *)

val take_hint : kernel -> tid:tid -> int option
(** Consume the pending migration hint for [tid], if any (API layer). *)

val handle_load_query : cluster -> kernel -> src:int -> ticket:int -> unit
(** Message handler (wired by [Cluster.dispatch]). *)
