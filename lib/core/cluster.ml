(** Booting the replicated-kernel OS and dispatching inter-kernel
    messages to the subsystems. *)

open Types
module K = Kernelmodel

let dispatch cluster ~dst ~src ~(delivery : Msg.Transport.delivery) payload =
  let kernel = kernel_of cluster dst in
  (* The message id of the delivery that triggered this handler: handlers
     that open a span pass it as [?cause] so the span is causally linked to
     the message that started it (see {!Obs.Causal}). *)
  let cause = delivery.Msg.Transport.msg_id in
  match payload with
  (* thread groups & migration *)
  | Thread_spawn_req { ticket; pid; target } ->
      Thread_group.handle_thread_spawn cluster kernel ~src ~cause ~ticket
        ~pid ~target
  | Thread_create_req { ticket; pid; new_tid; vma_proto } ->
      Thread_group.handle_thread_create cluster kernel ~src ~cause ~ticket
        ~pid ~new_tid ~vma_proto
  | Migrate_req { ticket; pid; task } ->
      Migration.handle_migrate_req cluster kernel ~src ~cause ~ticket ~pid
        ~task
  | Migrate_cancel { pid; tid } ->
      Migration.handle_migrate_cancel cluster kernel ~pid ~tid
  | Group_exit_notify { pid; _ } ->
      Process_model.handle_group_exit_notify cluster kernel ~pid
  | Thread_exit_notify { pid } ->
      Thread_group.handle_thread_exit_notify cluster kernel ~pid
  | Exit_group_req { ticket; pid } ->
      Thread_group.handle_exit_group_req cluster kernel ~src ~ticket ~pid
  | Exit_group_cmd { pid; ack_ticket } ->
      Thread_group.handle_exit_group_cmd cluster kernel ~src ~pid ~ack_ticket
  | Kill_req { ticket; pid; tid } ->
      Thread_group.handle_kill_req cluster kernel ~src ~ticket ~pid ~tid
  (* address space *)
  | Mmap_req { ticket; pid; len; prot } ->
      Addr_consistency.handle_mmap_req cluster kernel ~src ~ticket ~pid ~len
        ~prot
  | Munmap_req { ticket; pid; start; len } ->
      Addr_consistency.handle_munmap_req cluster kernel ~src ~ticket ~pid
        ~start ~len
  | Mprotect_req { ticket; pid; start; len; prot } ->
      Addr_consistency.handle_mprotect_req cluster kernel ~src ~ticket ~pid
        ~start ~len ~prot
  | Vma_remove { pid; start; len; ack_ticket } ->
      Addr_consistency.handle_vma_remove cluster kernel ~src ~pid ~start ~len
        ~ack_ticket
  | Vma_protect { pid; start; len; prot; ack_ticket } ->
      Addr_consistency.handle_vma_protect cluster kernel ~src ~pid ~start
        ~len ~prot ~ack_ticket
  | Vma_fetch_req { ticket; pid } ->
      Addr_consistency.handle_vma_fetch cluster kernel ~src ~ticket ~pid
  | Vma_lookup_req { ticket; pid; addr } ->
      Addr_consistency.handle_vma_lookup cluster kernel ~src ~ticket ~pid
        ~addr
  (* page coherence: requests go to the active protocol, responses
     complete the ticket like every other RPC *)
  | Coh (Coherence.Wire.Req req) ->
      Page_coherence.handle cluster kernel ~src ~cause req
  | Coh (Coherence.Wire.Resp resp) ->
      Msg.Rpc.complete kernel.rpc
        ~ticket:(Coherence.Wire.resp_ticket resp)
        payload
  (* distributed futex *)
  | Futex_wait_req { pid; addr; waiter } ->
      Dfutex.handle_wait_req cluster kernel ~pid ~addr ~waiter
  | Futex_wait_cancel { pid; addr; wake_ticket } ->
      Dfutex.handle_wait_cancel cluster kernel ~pid ~addr ~wake_ticket
  | Futex_wake_req { ticket; pid; addr; count } ->
      Dfutex.handle_wake_req cluster kernel ~src ~ticket ~pid ~addr ~count
  | Futex_grant { wake_ticket } -> Dfutex.handle_grant kernel ~wake_ticket
  (* VFS / remote syscalls *)
  | Vfs_req { ticket; pid; op } ->
      Vfs.handle_req cluster kernel ~src ~ticket ~pid ~op
  (* single-system image / balancing *)
  | Task_list_req { ticket } ->
      Ssi.handle_task_list cluster kernel ~src ~cause ~ticket
  | Load_query { ticket } ->
      Balancer.handle_load_query cluster kernel ~src ~ticket
  | Work_req { ticket; cost_ns } ->
      Placement.handle_work_req cluster kernel ~src ~ticket ~cost_ns
  (* responses: complete the matching ticket on the receiving kernel *)
  | Thread_spawn_resp { ticket; _ }
  | Thread_create_ack { ticket }
  | Exit_group_resp { ticket }
  | Kill_resp { ticket; _ }
  | Migrate_ack { ticket; _ }
  | Mmap_resp { ticket; _ }
  | Munmap_resp { ticket; _ }
  | Mprotect_resp { ticket; _ }
  | Vma_ack { ticket }
  | Vma_fetch_resp { ticket; _ }
  | Vma_lookup_resp { ticket; _ }
  | Futex_wake_resp { ticket; _ }
  | Task_list_resp { ticket; _ }
  | Load_info { ticket; _ }
  | Work_resp { ticket }
  | Vfs_resp { ticket; _ } ->
      Msg.Rpc.complete kernel.rpc ~ticket payload

(** Boot a replicated-kernel OS: one kernel per contiguous block of
    [cores_per_kernel] cores. The machine must have
    [kernels * cores_per_kernel] cores. *)
let boot ?(opts = default_options) (machine : Hw.Machine.t) ~kernels
    ~cores_per_kernel : cluster =
  let eng = machine.Hw.Machine.eng in
  let total = Hw.Topology.total_cores machine.Hw.Machine.topo in
  if kernels * cores_per_kernel > total then
    invalid_arg "Cluster.boot: not enough cores";
  if kernels < 1 then invalid_arg "Cluster.boot: need at least one kernel";
  let cluster_ref = ref None in
  let fabric =
    Msg.Transport.create machine ~ring_slots:256
      ~handler:(fun _t ~dst ~src delivery payload ->
        match !cluster_ref with
        | Some cluster -> dispatch cluster ~dst ~src ~delivery payload
        | None -> assert false)
  in
  let make_kernel kid =
    let cores =
      List.init cores_per_kernel (fun i -> (kid * cores_per_kernel) + i)
    in
    let home_core = List.hd cores in
    Msg.Transport.add_node fabric kid ~home_core;
    {
      kid;
      arch = opts.arch_of_kernel kid;
      cores;
      home_core;
      sched =
        K.Sched.create eng machine.Hw.Machine.params ~cores ();
      pid_alloc = K.Ids.make_partitioned ~kernel:kid ~stride:kernels;
      tid_alloc =
        K.Ids.make_partitioned ~kernel:kid ~stride:kernels;
      replicas = Hashtbl.create 16;
      local_futex = K.Futex.create eng;
      mm_lock =
        Hw.Spinlock.create eng machine.Hw.Machine.params
          machine.Hw.Machine.topo
          ~name:(Printf.sprintf "mm_lock.k%d" kid);
      rpc = Msg.Rpc.create eng;
      tasks = Hashtbl.create 64;
      migrate_hints = Hashtbl.create 16;
    }
  in
  let cluster =
    {
      machine;
      kernels = Array.init kernels make_kernel;
      fabric;
      procs = Hashtbl.create 16;
      stride = kernels;
      opts;
      coh_stats = Coherence.Stats.create ();
      vfs =
        {
          files = Hashtbl.create 32;
          fds = Hashtbl.create 64;
          next_fd = 3;
          vfs_ops = 0;
        };
      tracer = None;
    }
  in
  cluster_ref := Some cluster;
  cluster

(** Start collecting protocol events ([Types.trace] becomes live); returns
    the trace for inspection or [Sim.Trace.pp]. *)
let enable_tracing ?capacity cluster =
  let tr = Sim.Trace.create ?capacity () in
  cluster.tracer <- Some tr;
  tr

(** Attach an observability sink to the whole cluster: the metrics registry
    and span recorder go to the machine (the messaging layer and the OS
    models consult them), the trace ring becomes the protocol tracer, and
    every kernel's RPC table gets its rpc.* counters routed. *)
let observe ?metrics ?spans ?causal ?tracer cluster =
  Hw.Machine.attach_obs cluster.machine ?metrics ?spans ?causal ();
  (match tracer with Some _ -> cluster.tracer <- tracer | None -> ());
  match metrics with
  | None -> ()
  | Some reg ->
      Array.iter
        (fun k -> Msg.Rpc.set_metrics k.rpc reg ~kernel:k.kid)
        cluster.kernels

(** Create a fresh single-threaded process on [origin_kernel] with an
    initial layout (code+stack+heap), returning (process, initial task). *)
let create_process cluster ~origin_kernel : process * K.Task.t =
  let kernel = kernel_of cluster origin_kernel in
  let proc = Process_model.create_master cluster ~origin:kernel in
  let initial_layout =
    [
      (* text *)
      { K.Vma.start = 0x400000; len = 0x100000; prot = K.Vma.prot_rx; kind = K.Vma.File "a.out" };
      (* heap *)
      { K.Vma.start = 0x800000; len = 0x400000; prot = K.Vma.prot_rw; kind = K.Vma.Heap };
      (* stack *)
      { K.Vma.start = 0x7FFD_0000_0000; len = 0x200000; prot = K.Vma.prot_rw; kind = K.Vma.Stack };
    ]
  in
  let r = Process_model.create_replica kernel proc ~vma_proto:initial_layout in
  let tid = K.Ids.next kernel.tid_alloc in
  let ctx =
    K.Context.fresh (Sim.Engine.rng (eng cluster)) ~use_fpu:false
  in
  (* Full construction for the initial thread; the dummy pool is primed
     afterwards, for imports. *)
  let task = Process_model.make_task cluster kernel r ~tid ~ctx in
  Process_model.prime_dummy_pool cluster r;
  (proc, task)
