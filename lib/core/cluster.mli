(** Booting the replicated-kernel OS and dispatching inter-kernel messages
    to the subsystems. *)

open Types

val dispatch :
  cluster ->
  dst:int ->
  src:int ->
  delivery:Msg.Transport.delivery ->
  payload ->
  unit
(** Route one delivered message to its subsystem handler (installed as the
    transport handler by {!boot}; exposed for tests). [delivery] carries the
    wire metadata of the triggering message; handlers that open a span link
    it to that message in the causal event log ({!Obs.Causal}). *)

val boot :
  ?opts:options -> Hw.Machine.t -> kernels:int -> cores_per_kernel:int ->
  cluster
(** Boot a replicated-kernel OS: one kernel per contiguous block of
    [cores_per_kernel] cores, each with its own scheduler, id-space slice,
    mm lock, futex table and message endpoint. *)

val enable_tracing : ?capacity:int -> cluster -> Sim.Trace.t
(** Start collecting protocol events (migrations, faults, mm ops...);
    returns the trace for inspection or [Sim.Trace.pp]. *)

val observe :
  ?metrics:Obs.Metrics.t ->
  ?spans:Obs.Span.t ->
  ?causal:Obs.Causal.t ->
  ?tracer:Sim.Trace.t ->
  cluster ->
  unit
(** Attach observability: [metrics], [spans] and [causal] go to the machine
    (and [metrics] additionally to every kernel's RPC table for rpc.*
    counters); [tracer] becomes the protocol-event tracer. Typically called
    right after {!boot} with the pieces of an [Obs.Sink.t]. With nothing
    attached the instrumentation is free and simulated results are
    bit-identical. *)

val create_process :
  cluster -> origin_kernel:int -> process * Kernelmodel.Task.t
(** Fresh single-threaded process on [origin_kernel] with a conventional
    initial layout (text, heap, stack). Must run inside the simulation.
    Most callers want [Api.start_process] instead. *)
