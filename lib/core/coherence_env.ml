(** The OS side of the coherence subsystem: one implementation of
    {!Coherence.Intf.ENV} projecting the popcorn cluster records into
    what the protocol functors need. This is the whole dependency
    inversion — [lib/coherence] sits below popcorn and sees the OS only
    through this module. *)

open Types

module Env :
  Coherence.Intf.ENV
    with type cluster = cluster
     and type kernel = kernel
     and type process = process
     and type replica = replica = struct
  type nonrec cluster = cluster
  type nonrec kernel = kernel
  type nonrec process = process
  type nonrec replica = replica
  type span = Obs.Span.span

  let kid (k : kernel) = k.kid
  let core_count (k : kernel) = List.length k.cores
  let nkernels = nkernels
  let params = params
  let read_replication cluster = cluster.opts.read_replication
  let stats cluster = cluster.coh_stats
  let pid (p : process) = p.pid
  let origin (p : process) = p.origin
  let find_process cluster ~pid = Hashtbl.find_opt cluster.procs pid
  let find_replica (k : kernel) ~pid = find_replica k pid
  let proc_of (r : replica) = r.proc
  let vmas (r : replica) = r.vmas
  let pt (r : replica) = r.pt
  let page_data (r : replica) = r.page_data
  let member_count (r : replica) = List.length r.members
  let directory (p : process) = p.directory
  let versions (p : process) = p.page_version

  let fault_lock cluster (p : process) ~vpn =
    match Hashtbl.find_opt p.fault_locks vpn with
    | Some m -> m
    | None ->
        let m = Sim.Mutex.create (eng cluster) in
        Hashtbl.add p.fault_locks vpn m;
        m

  let drop_fault_lock (p : process) ~vpn = Hashtbl.remove p.fault_locks vpn

  let alloc_frame cluster (k : kernel) =
    let node =
      Hw.Topology.socket_of cluster.machine.Hw.Machine.topo k.home_core
    in
    Hw.Memory.alloc_exn cluster.machine.Hw.Machine.mem ~node

  let free_frame cluster ~frame =
    Hw.Memory.free cluster.machine.Hw.Machine.mem frame

  let work = Proto_util.kernel_work
  let metric_incr cluster ~kernel name = m_incr cluster ~kernel name

  let trace cluster msg =
    match cluster.tracer with
    | None -> ()
    | Some _ -> Types.trace cluster ~cat:"fault" "%s" (msg ())

  let span_begin cluster ~kernel ?cause () =
    sp_begin cluster ?cause ~kernel Obs.Span.Page_fault

  let span_end = sp_end

  let coh w = Coh w

  let uncoh = function
    | Coh (Coherence.Wire.Resp r) -> r
    | _ -> assert false

  let call cluster ~(src : kernel) ?src_core ?span ~dst make =
    let make ~ticket = coh (Coherence.Wire.Req (make ~ticket)) in
    uncoh
      (match src_core with
      | Some src_core ->
          Proto_util.call_from ?span cluster ~src ~src_core ~dst make
      | None -> Proto_util.call ?span cluster ~src ~dst make)

  let reply cluster ~(src : kernel) ?src_core ~dst resp =
    let payload = coh (Coherence.Wire.Resp resp) in
    match src_core with
    | Some src_core -> send_from cluster ~src:src.kid ~src_core ~dst payload
    | None -> send cluster ~src:src.kid ~dst payload

  let broadcast_and_wait cluster ~src ~targets make =
    Proto_util.broadcast_and_wait cluster ~src ~targets
      ~make:(fun ~ack_ticket -> coh (Coherence.Wire.Req (make ~ack:ack_ticket)))

  let with_install_ack cluster (k : kernel) ~send =
    let installed = Msg.Gather.create (eng cluster) ~expected:1 in
    let ack =
      Msg.Rpc.register k.rpc (fun (_ : payload) -> Msg.Gather.ack installed)
    in
    send ~ack;
    Msg.Gather.wait installed
end
