(** Distributed futexes.

    Futexes of a distributed thread group are served by a global queue at
    the group's origin kernel (the paper's global futex worker): a waiter
    registers remotely and sleeps locally; a waker asks the origin to pop
    waiters, and the origin sends a grant to each waiter's kernel, which
    wakes the locally-parked thread. Groups that live on one kernel use the
    plain per-kernel futex table — no messages. *)

open Types
module K = Kernelmodel

let futex_op_cost = Sim.Time.ns 250

type wait_result = Woken | Timed_out

(* ------------------------------------------------------------------ *)
(* Origin-side queue management                                        *)
(* ------------------------------------------------------------------ *)

let queue_of (proc : process) addr =
  match Hashtbl.find_opt proc.dfutex_queues addr with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add proc.dfutex_queues addr q;
      q

let handle_wait_req cluster (kernel : kernel) ~pid ~addr ~waiter =
  Proto_util.kernel_work cluster futex_op_cost;
  let proc = proc_exn cluster pid in
  Queue.push waiter (queue_of proc addr);
  ignore kernel

let handle_wait_cancel cluster (kernel : kernel) ~pid ~addr ~wake_ticket =
  Proto_util.kernel_work cluster futex_op_cost;
  let proc = proc_exn cluster pid in
  (match Hashtbl.find_opt proc.dfutex_queues addr with
  | None -> ()
  | Some q ->
      let keep = Queue.create () in
      Queue.iter
        (fun w -> if w.wake_ticket <> wake_ticket then Queue.push w keep)
        q;
      Queue.clear q;
      Queue.transfer keep q);
  ignore kernel

let handle_wake_req cluster (kernel : kernel) ~src ~ticket ~pid ~addr ~count =
  Proto_util.kernel_work cluster futex_op_cost;
  let proc = proc_exn cluster pid in
  let q = queue_of proc addr in
  let rec pop n =
    if n >= count || Queue.is_empty q then n
    else begin
      let w = Queue.pop q in
      if w.waiter_kernel = kernel.kid then
        (* Waiter parked on this very kernel: complete its ticket locally. *)
        Msg.Rpc.complete kernel.rpc ~ticket:w.wake_ticket
          (Futex_grant { wake_ticket = w.wake_ticket })
      else
        send cluster ~src:kernel.kid ~dst:w.waiter_kernel
          (Futex_grant { wake_ticket = w.wake_ticket });
      pop (n + 1)
    end
  in
  let woken = pop 0 in
  m_add cluster ~kernel:kernel.kid "futex.woken" woken;
  send cluster ~src:kernel.kid ~dst:src (Futex_wake_resp { ticket; woken })

let handle_grant (kernel : kernel) ~wake_ticket =
  Msg.Rpc.complete kernel.rpc ~ticket:wake_ticket
    (Futex_grant { wake_ticket })

(* ------------------------------------------------------------------ *)
(* Application-facing operations                                       *)
(* ------------------------------------------------------------------ *)

(** FUTEX_WAIT. The [expect] check against memory is the caller's job (the
    API layer reads the futex word first). *)
let wait cluster (kernel : kernel) ~core ~pid ?timeout () ~addr : wait_result
    =
  let p = params cluster in
  m_incr cluster ~kernel:kernel.kid "futex.waits";
  Proto_util.kernel_work cluster p.Hw.Params.syscall_overhead;
  let r = replica_exn kernel pid in
  let proc = r.proc in
  if (not r.distributed) && kernel.kid = proc.origin then begin
    (* Fast path: plain kernel-local futex. *)
    Proto_util.kernel_work cluster futex_op_cost;
    match K.Futex.wait kernel.local_futex ~addr ?timeout () with
    | K.Futex.Woken -> Woken
    | K.Futex.Timed_out -> Timed_out
  end
  else begin
    (* Register with the origin's global queue, then sleep on the ticket.
       The origin-resident waiter of a distributed group skips the wire and
       pushes directly (it runs on the kernel that owns the queue). *)
    let eng = eng cluster in
    let enlist ticket =
      let waiter = { waiter_kernel = kernel.kid; wake_ticket = ticket } in
      if kernel.kid = proc.origin then begin
        Proto_util.kernel_work cluster futex_op_cost;
        Queue.push waiter (queue_of proc addr)
      end
      else
        send_from cluster ~src:kernel.kid ~src_core:core ~dst:proc.origin
          (Futex_wait_req { pid; addr; waiter })
    in
    let used_ticket = ref 0 in
    let resp =
      Sim.Engine.suspend eng (fun resume ->
          let ticket =
            Msg.Rpc.register kernel.rpc (fun r -> resume (Some r))
          in
          used_ticket := ticket;
          (match timeout with
          | None -> ()
          | Some timeout ->
              Sim.Engine.schedule eng ~after:timeout (fun () ->
                  if Msg.Rpc.forget kernel.rpc ~ticket then resume None));
          (* [enlist] may block (message send); run it as its own fiber so
             the suspension is already armed when any grant arrives. *)
          Sim.Engine.spawn eng ~tag:"popcorn" ~name:"futex-enlist" (fun () ->
              enlist ticket))
    in
    match resp with
    | Some (Futex_grant _) -> Woken
    | Some _ -> assert false
    | None ->
        (* Timed out: retract the registration (best effort; a grant racing
           with the cancel is dropped by the stale-ticket check). *)
        if kernel.kid = proc.origin then
          handle_wait_cancel cluster kernel ~pid ~addr
            ~wake_ticket:!used_ticket
        else
          send_from cluster ~src:kernel.kid ~src_core:core ~dst:proc.origin
            (Futex_wait_cancel { pid; addr; wake_ticket = !used_ticket });
        Timed_out
  end

(** FUTEX_WAKE: wake up to [count] waiters; returns how many. *)
let wake cluster (kernel : kernel) ~core ~pid ~addr ~count : int =
  let p = params cluster in
  m_incr cluster ~kernel:kernel.kid "futex.wakes";
  Proto_util.kernel_work cluster p.Hw.Params.syscall_overhead;
  let r = replica_exn kernel pid in
  let proc = r.proc in
  if (not r.distributed) && kernel.kid = proc.origin then begin
    Proto_util.kernel_work cluster futex_op_cost;
    let woken = K.Futex.wake kernel.local_futex ~addr ~count in
    m_add cluster ~kernel:kernel.kid "futex.woken" woken;
    woken
  end
  else if kernel.kid = proc.origin then begin
    (* Origin-local distributed wake: operate on the global queue directly
       (plus drain any local fast-path waiters left from before the group
       became distributed). *)
    Proto_util.kernel_work cluster futex_op_cost;
    let local = K.Futex.wake kernel.local_futex ~addr ~count in
    let q = queue_of proc addr in
    let rec pop n =
      if n >= count - local || Queue.is_empty q then n
      else begin
        let w = Queue.pop q in
        if w.waiter_kernel = kernel.kid then
          Msg.Rpc.complete kernel.rpc ~ticket:w.wake_ticket
            (Futex_grant { wake_ticket = w.wake_ticket })
        else
          send cluster ~src:kernel.kid ~dst:w.waiter_kernel
            (Futex_grant { wake_ticket = w.wake_ticket });
        pop (n + 1)
      end
    in
    let woken = local + pop 0 in
    m_add cluster ~kernel:kernel.kid "futex.woken" woken;
    woken
  end
  else begin
    match
      Proto_util.call_from cluster ~src:kernel ~src_core:core
        ~dst:proc.origin (fun ~ticket ->
          Futex_wake_req { ticket; pid; addr; count })
    with
    | Futex_wake_resp { woken; _ } -> woken
    | _ -> assert false
  end
