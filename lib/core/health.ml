(** Passive per-kernel health tracking (see the interface for the state
    machine). Fed by RPC outcomes; never sends a message itself. *)

open Sim

type state = Healthy | Suspect | Drained

let state_name = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Drained -> "drained"

type config = {
  window : Time.t;
  suspect_misses : int;
  drain_misses : int;
  recover_successes : int;
  probe_interval : Time.t;
  readmit_prob : float;
}

let default_config =
  {
    window = Time.us 500;
    suspect_misses = 2;
    drain_misses = 3;
    recover_successes = 2;
    probe_interval = Time.us 250;
    readmit_prob = 0.5;
  }

type transition = {
  tr_at : Time.t;
  tr_kernel : int;
  tr_from : state;
  tr_to : state;
}

type entry = {
  mutable st : state;
  misses : Time.t Queue.t;  (** deadline-miss timestamps inside [window]. *)
  mutable successes : int;  (** consecutive successes while Suspect. *)
  mutable probation : bool;  (** Suspect entered via a probe readmission. *)
  mutable drained_since : Time.t;  (** valid while [st = Drained]. *)
  mutable drained_total : Time.t;
}

type t = {
  eng : Engine.t;
  cfg : config;
  rng : Prng.t;  (** probe draws only; independent of the engine stream. *)
  entries : entry array;
  mutable log : transition list;  (** newest first. *)
  mutable observers : (transition -> unit) list;
  mutable stopped : bool;
}

let create ?seed ?(config = default_config) eng ~kernels =
  let seed =
    match seed with
    | Some s -> s
    | None -> Engine.seed eng lxor 0x48454C54 (* "HELT" *)
  in
  {
    eng;
    cfg = config;
    rng = Prng.create ~seed;
    entries =
      Array.init kernels (fun _ ->
          {
            st = Healthy;
            misses = Queue.create ();
            successes = 0;
            probation = false;
            drained_since = 0;
            drained_total = 0;
          });
    log = [];
    observers = [];
    stopped = false;
  }

let config t = t.cfg
let state t k = t.entries.(k).st
let available t k = t.entries.(k).st <> Drained
let probation t k = t.entries.(k).probation
let on_transition t f = t.observers <- t.observers @ [ f ]
let transitions t = List.rev t.log

let drained_ns t k =
  let e = t.entries.(k) in
  e.drained_total
  + (if e.st = Drained then Time.sub (Engine.now t.eng) e.drained_since else 0)

let prune t e ~now =
  let horizon = Time.sub now t.cfg.window in
  while
    (not (Queue.is_empty e.misses)) && Queue.peek e.misses < horizon
  do
    ignore (Queue.pop e.misses)
  done

(* Probe timer: while [k] stays drained, draw a readmission every
   [probe_interval]. A successful draw readmits to probation; traffic then
   decides (one success -> recovery counting resumes, one miss -> drained
   again). Draws come from [t.rng], so the schedule is seed-deterministic. *)
let rec schedule_probe t k =
  if t.cfg.readmit_prob > 0. then
    Engine.schedule t.eng ~after:t.cfg.probe_interval (fun () ->
        let e = t.entries.(k) in
        if (not t.stopped) && e.st = Drained then
          if Prng.float t.rng 1.0 < t.cfg.readmit_prob then begin
            e.probation <- true;
            e.successes <- 0;
            Queue.clear e.misses;
            transition t k Suspect
          end
          else schedule_probe t k)

and transition t k st' =
  let e = t.entries.(k) in
  let now = Engine.now t.eng in
  let tr = { tr_at = now; tr_kernel = k; tr_from = e.st; tr_to = st' } in
  (match (e.st, st') with
  | Drained, _ ->
      e.drained_total <- e.drained_total + Time.sub now e.drained_since
  | _, Drained ->
      e.drained_since <- now;
      schedule_probe t k
  | _ -> ());
  e.st <- st';
  t.log <- tr :: t.log;
  List.iter (fun f -> f tr) t.observers

let note_success t ~kernel =
  if not t.stopped then begin
    let e = t.entries.(kernel) in
    match e.st with
    | Drained -> ()  (* a late response; the probe owns readmission. *)
    | Healthy -> prune t e ~now:(Engine.now t.eng)
    | Suspect ->
        e.probation <- false;
        e.successes <- e.successes + 1;
        if e.successes >= t.cfg.recover_successes then begin
          e.successes <- 0;
          Queue.clear e.misses;
          transition t kernel Healthy
        end
  end

let note_failure t ~kernel =
  if not t.stopped then begin
    let e = t.entries.(kernel) in
    let now = Engine.now t.eng in
    match e.st with
    | Drained -> ()
    | Suspect when e.probation ->
        (* The probe's trial traffic failed: back to drained at once. *)
        e.probation <- false;
        transition t kernel Drained
    | Healthy | Suspect ->
        e.successes <- 0;
        prune t e ~now;
        Queue.push now e.misses;
        let misses = Queue.length e.misses in
        if e.st = Healthy && misses >= t.cfg.suspect_misses then
          transition t kernel Suspect;
        if e.st = Suspect && misses >= t.cfg.drain_misses then
          transition t kernel Drained
  end

let stop t = t.stopped <- true
