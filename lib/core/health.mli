(** Passive per-kernel health tracking for placement decisions.

    The cluster has no active health prober: health is inferred from the
    outcomes the messaging layer already produces (an RPC that timed out
    after its retries is a missed deadline; a response that arrived is a
    success) — the passive-health-check semantics of an L7 load balancer
    (nginx's [max_fails]/[fail_timeout]) transplanted to kernels.

    Per kernel, a three-state machine:

    {v
      Healthy --[suspect_misses misses in window]--> Suspect
      Suspect --[drain_misses misses in window]----> Drained
      Suspect --[recover_successes successes]------> Healthy
      Drained --[probe readmits, seeded draw]------> Suspect (probation)
      Suspect(probation) --[one miss]--------------> Drained
    v}

    [Healthy] and [Suspect] kernels receive traffic; [Drained] kernels do
    not. While drained, a probe timer fires every [probe_interval]; each
    firing readmits the kernel to probation with probability
    [readmit_prob], drawn from the tracker's {e own} seeded stream (keyed
    off the engine seed): recovery timing is deterministic per seed and
    drawing it never perturbs the simulation's other random draws. *)

type state = Healthy | Suspect | Drained

val state_name : state -> string

type config = {
  window : Sim.Time.t;  (** sliding window over which misses are counted. *)
  suspect_misses : int;  (** misses in window: Healthy -> Suspect. *)
  drain_misses : int;  (** misses in window: Suspect -> Drained. *)
  recover_successes : int;
      (** consecutive successes: Suspect -> Healthy. *)
  probe_interval : Sim.Time.t;
      (** while Drained, how often a readmission draw happens. *)
  readmit_prob : float;
      (** per-probe probability of readmission to probation; 0 disables
          probing entirely (a drained kernel stays drained). *)
}

val default_config : config
(** 500us window, suspect after 2, drain after 3, recover after 2,
    probe every 250us with readmit probability 0.5. *)

(** One recorded state transition (the health event log). *)
type transition = {
  tr_at : Sim.Time.t;
  tr_kernel : int;
  tr_from : state;
  tr_to : state;
}

type t

val create : ?seed:int -> ?config:config -> Sim.Engine.t -> kernels:int -> t
(** All kernels start [Healthy]. [seed] defaults to a salt of the engine's
    seed, so one simulation seed reproduces the whole probe schedule. *)

val config : t -> config
val state : t -> int -> state

val available : t -> int -> bool
(** May this kernel receive traffic? ([Healthy] or [Suspect].) *)

val probation : t -> int -> bool
(** Is this kernel [Suspect] by way of a probe readmission (rather than by
    missed deadlines)? Callers should send {e trial} traffic — a little,
    not a flood: the kernel was just drained and one more miss re-drains
    it. Cleared by the first success. *)

val note_success : t -> kernel:int -> unit
(** An RPC to [kernel] completed in time. *)

val note_failure : t -> kernel:int -> unit
(** An RPC to [kernel] missed its deadline (timed out / gave up). *)

val on_transition : t -> (transition -> unit) -> unit
(** Install an observer called on every state change (after the log entry
    is recorded). Multiple observers compose; installation order is the
    call order. *)

val transitions : t -> transition list
(** Every transition so far, oldest first. *)

val drained_ns : t -> int -> int
(** Cumulative simulated time [kernel] has spent [Drained] (an open
    drained interval is counted up to now). *)

val stop : t -> unit
(** Cancel probing: pending probe timers become no-ops, so the simulation
    can quiesce even if a kernel is still drained. State stops changing. *)
