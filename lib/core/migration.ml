(** Context migration between kernels.

    The paper's central mechanism: a thread calls [migrate(dst)], its
    architectural context is saved and shipped to the destination kernel,
    which re-animates it in a task struct (a pre-spawned dummy thread when
    the pool optimisation is on), attaches it to the local address-space
    replica, and schedules it. The source keeps no runnable state — the
    thread now exists on exactly one kernel.

    [migrate] returns a per-phase cost breakdown so the T1 experiment can
    report the same decomposition as the paper's migration-cost table. *)

open Types
module K = Kernelmodel

type breakdown = {
  save_ctx_ns : int;
  messaging_ns : int;  (** both transfers, incl. ring + doorbell costs. *)
  import_ns : int;  (** destination-side work (replica, task, attach). *)
  schedule_in_ns : int;
  prefetch_ns : int;
      (** working-set prefetch at the destination (0 unless the
          [migration_prefetch] option is on). *)
  total_ns : int;
  migrated : bool;
      (** false when retries were exhausted and the thread fell back to
          running on the origin kernel (requires [migration_retry]). *)
}

let save_ctx_cost (ctx : K.Context.t) =
  (* Register save + kernel bookkeeping; FXSAVE for FPU users. *)
  Sim.Time.add (Sim.Time.ns 200)
    (if K.Context.has_fpu ctx then Sim.Time.ns 300 else Sim.Time.zero)

let restore_ctx_cost (ctx : K.Context.t) =
  Sim.Time.add (Sim.Time.ns 200)
    (if K.Context.has_fpu ctx then Sim.Time.ns 250 else Sim.Time.zero)

(* Attaching the incoming thread to the local mm: PGD switch etc. *)
let mm_attach_cost = Sim.Time.ns 500

(* Crossing an ISA boundary (heterogeneous Popcorn): the saved context
   must be transformed between ABIs — register remapping plus a stack
   rewrite pass. Calibrated to the order reported by the heterogeneous
   follow-on work (tens of microseconds for the state transformation). *)
let isa_transform_cost = Sim.Time.us 25

(** Destination-side import handler. Idempotent: a retransmitted request
    whose original was imported but whose ack was lost must not adopt the
    task a second time — it just re-acks. *)
let handle_migrate_req cluster (kernel : kernel) ~src ~cause ~ticket ~pid
    ~(task : K.Task.t) =
  if Hashtbl.mem kernel.tasks task.K.Task.tid then begin
    trace cluster ~cat:"migrate" "k%d: duplicate import of tid %d, re-ack"
      kernel.kid task.K.Task.tid;
    send cluster ~src:kernel.kid ~dst:src
      (Migrate_ack { ticket; import_ns = 0 })
  end
  else begin
    let eng = eng cluster in
    let t0 = Sim.Engine.now eng in
    let sp =
      sp_begin cluster ~cause ~tid:task.K.Task.tid ~kernel:kernel.kid
        Obs.Span.Import
    in
    let proc = proc_exn cluster pid in
    let r = Thread_group.ensure_replica cluster kernel proc in
    Process_model.adopt_task cluster kernel r task;
    task.K.Task.migrations <- task.K.Task.migrations + 1;
    Proto_util.kernel_work cluster (restore_ctx_cost task.K.Task.ctx);
    Proto_util.kernel_work cluster mm_attach_cost;
    K.Task.set_state task K.Task.Ready;
    sp_end cluster sp;
    m_incr cluster ~kernel:kernel.kid "migration.imported";
    let import_ns = Sim.Time.sub (Sim.Engine.now eng) t0 in
    trace cluster ~cat:"migrate" "k%d imported tid %d of pid %d (%dns)"
      kernel.kid task.K.Task.tid pid import_ns;
    send ?span:sp cluster ~src:kernel.kid ~dst:src
      (Migrate_ack { ticket; import_ns })
  end

(** Destination-side revocation: the origin exhausted its retries and kept
    the thread, but our import may have happened (only its ack was lost) —
    undo it. Guarded so a stale cancel can never evict a thread that
    legitimately lives here ([task.kernel] is only set to this kernel by a
    migration the origin saw complete). *)
let handle_migrate_cancel cluster (kernel : kernel) ~pid ~tid =
  match Hashtbl.find_opt kernel.tasks tid with
  | Some task when task.K.Task.kernel <> kernel.kid ->
      Proto_util.kernel_work cluster (Sim.Time.ns 500);
      Process_model.remove_member_local kernel task;
      trace cluster ~cat:"migrate" "k%d revoked orphan import of tid %d"
        kernel.kid tid
  | Some _ | None -> ignore pid

(* Deadline (SLO) accounting for one finished migration. A migration
   counts as met only when it actually migrated within budget; a
   fallback-to-origin is a violation regardless of how fast it gave up
   (the thread is not where it was promised to be). Violations also
   record the overrun and charge the phase that ate the largest share of
   the budget, so the metrics alone say *where* bounded migrations go to
   die (the critical-path analysis refines this offline per worst path). *)
let slo_account cluster ~deadline (b : breakdown) =
  (match deadline with
  | None -> ()
  | Some d ->
      if b.migrated && b.total_ns <= d then m_incr cluster "slo.met"
      else begin
        m_incr cluster "slo.violations";
        m_observe cluster "slo.overrun_ns"
          (float_of_int (Stdlib.max 0 (b.total_ns - d)));
        let phases =
          [
            ("save_ctx", b.save_ctx_ns);
            ("messaging", b.messaging_ns);
            ("import", b.import_ns);
            ("schedule_in", b.schedule_in_ns);
            ("prefetch", b.prefetch_ns);
          ]
        in
        let dominant, _ =
          List.fold_left
            (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
            (List.hd phases) (List.tl phases)
        in
        m_incr cluster ("slo.violation_phase." ^ dominant)
      end);
  b

(* Pull the migrated thread's recent working set to the destination, as
   read replicas, before it resumes. Trades migration latency for fewer
   post-migration remote faults (the A1 ablation experiment measures the
   trade). *)
let prefetch_working_set cluster (dst_kernel : kernel) (task : K.Task.t)
    ~core =
  let budget = cluster.opts.migration_prefetch in
  if budget > 0 then begin
    let r = replica_exn dst_kernel task.K.Task.tgid in
    let rec go n = function
      | [] -> ()
      | _ when n = 0 -> ()
      | vpn :: rest ->
          let addr = K.Page_table.addr_of_vpn vpn in
          (match
             Page_coherence.touch cluster dst_kernel r ~core ~addr
               ~access:K.Fault.Read
           with
          | Ok _ -> ()
          | Error _ -> () (* range may have been unmapped; skip *));
          go (n - 1) rest
    in
    go budget task.K.Task.recent_vpns
  end

(** Migrate [task] (running on [kernel]/[core]) to [dst]. The caller is the
    thread's own fiber; on return the task lives on [dst] and the fiber
    should continue computing there. *)
let migrate ?deadline cluster (kernel : kernel) ~core (task : K.Task.t) ~dst :
    breakdown =
  if dst = kernel.kid then
    slo_account cluster ~deadline
      {
        save_ctx_ns = 0;
        messaging_ns = 0;
        import_ns = 0;
        schedule_in_ns = 0;
        prefetch_ns = 0;
        total_ns = 0;
        migrated = true;
      }
  else begin
    let eng = eng cluster in
    let p = params cluster in
    let t0 = Sim.Engine.now eng in
    let tid = task.K.Task.tid in
    m_incr cluster ~kernel:kernel.kid "migration.started";
    let sp_mig = sp_begin cluster ~tid ~kernel:kernel.kid Obs.Span.Migration in
    let sp_cap =
      sp_begin cluster ?parent:sp_mig ~tid ~kernel:kernel.kid
        Obs.Span.Context_capture
    in
    Proto_util.kernel_work cluster p.Hw.Params.syscall_overhead;
    (* Save the outgoing context. *)
    K.Task.set_state task (K.Task.Blocked "migration");
    task.K.Task.ctx <- K.Context.step task.K.Task.ctx;
    Proto_util.kernel_work cluster (save_ctx_cost task.K.Task.ctx);
    (* Heterogeneous hop: transform the context between ABIs before it
       ships (register remap + stack rewrite at the source, as in the
       heterogeneous Popcorn design). *)
    if kernel.arch <> (kernel_of cluster dst).arch then
      Proto_util.kernel_work cluster isa_transform_cost;
    let t_saved = Sim.Engine.now eng in
    sp_end cluster sp_cap;
    let sp_xfer =
      sp_begin cluster ?parent:sp_mig ~tid ~kernel:kernel.kid
        Obs.Span.Transfer
    in
    (* Ship it and wait for the destination to adopt. Without a retry
       policy this parks until the ack arrives (fault-free fabric); with
       one, the request is retransmitted and may ultimately fail. *)
    let make ~ticket = Migrate_req { ticket; pid = task.K.Task.tgid; task } in
    let response =
      match cluster.opts.migration_retry with
      | None ->
          Some
            (Proto_util.call_from ?span:sp_xfer cluster ~src:kernel
               ~src_core:core ~dst make)
      | Some policy ->
          Proto_util.call_retry_from ?span:sp_xfer cluster ~src:kernel
            ~src_core:core ~dst ~policy make
    in
    match response with
    | Some (Migrate_ack { import_ns; _ }) ->
        let t_acked = Sim.Engine.now eng in
        sp_end cluster sp_xfer;
        let sp_resume = sp_begin cluster ?parent:sp_mig ~tid ~kernel:dst Obs.Span.Resume in
        (* Source-side teardown: the task no longer runs here. *)
        let r = replica_exn kernel task.K.Task.tgid in
        r.members <- List.filter (fun t -> t != task) r.members;
        Hashtbl.remove kernel.tasks task.K.Task.tid;
        (match task.K.Task.core with
        | Some c when K.Sched.owns kernel.sched c ->
            K.Sched.unassign kernel.sched c
        | Some _ | None -> ());
        (* Destination-side schedule-in, charged to the thread itself. *)
        let dst_kernel = kernel_of cluster dst in
        let new_core = K.Sched.pick_core dst_kernel.sched in
        K.Sched.assign dst_kernel.sched new_core;
        task.K.Task.kernel <- dst;
        task.K.Task.core <- Some new_core;
        K.Task.set_state task K.Task.Running;
        Proto_util.kernel_work cluster p.Hw.Params.context_switch;
        let t_sched = Sim.Engine.now eng in
        sp_end cluster sp_resume;
        let arch_name a = Format.asprintf "%a" pp_arch a in
        trace cluster ~cat:"migrate" "tid %d: k%d(%s) -> k%d(%s)"
          task.K.Task.tid kernel.kid (arch_name kernel.arch) dst
          (arch_name dst_kernel.arch);
        prefetch_working_set cluster dst_kernel task ~core:new_core;
        let t_end = Sim.Engine.now eng in
        sp_end cluster sp_mig;
        m_incr cluster ~kernel:kernel.kid "migration.completed";
        m_observe cluster ~kernel:kernel.kid "migration.total_ns"
          (float_of_int (Sim.Time.sub t_end t0));
        slo_account cluster ~deadline
          {
            save_ctx_ns = Sim.Time.sub t_saved t0;
            messaging_ns = Sim.Time.sub t_acked t_saved - import_ns;
            import_ns;
            schedule_in_ns = Sim.Time.sub t_sched t_acked;
            prefetch_ns = Sim.Time.sub t_end t_sched;
            total_ns = Sim.Time.sub t_end t0;
            migrated = true;
          }
    | Some _ -> assert false
    | None ->
        (* Graceful degradation: every attempt timed out. Tell the
           destination to revoke any orphan import (best effort — the
           cancel rides the same lossy fabric), then re-animate the thread
           right here instead of wedging the group. The thread keeps its
           core: it was never unassigned. *)
        let t_gave_up = Sim.Engine.now eng in
        sp_end cluster sp_xfer;
        send_from ?span:sp_mig cluster ~src:kernel.kid ~src_core:core ~dst
          (Migrate_cancel { pid = task.K.Task.tgid; tid = task.K.Task.tid });
        Proto_util.kernel_work cluster (restore_ctx_cost task.K.Task.ctx);
        K.Task.set_state task K.Task.Running;
        Proto_util.kernel_work cluster p.Hw.Params.context_switch;
        let t_end = Sim.Engine.now eng in
        sp_end cluster sp_mig;
        m_incr cluster ~kernel:kernel.kid "migration.failed";
        trace cluster ~cat:"migrate"
          "tid %d: k%d -> k%d gave up after retries; falling back to origin"
          task.K.Task.tid kernel.kid dst;
        slo_account cluster ~deadline
          {
            save_ctx_ns = Sim.Time.sub t_saved t0;
            messaging_ns = Sim.Time.sub t_gave_up t_saved;
            import_ns = 0;
            schedule_in_ns = Sim.Time.sub t_end t_gave_up;
            prefetch_ns = 0;
            total_ns = Sim.Time.sub t_end t0;
            migrated = false;
          }
  end
