(** Context migration between kernels — the paper's central mechanism.

    A thread calls migrate(dst): its architectural context is saved and
    shipped to the destination kernel, which re-animates it (in a
    pre-spawned dummy thread when the pool optimisation is on), attaches it
    to the local address-space replica, and schedules it. The source keeps
    no runnable state. With the [migration_prefetch] option the thread's
    recent working set is pulled before it resumes. *)

open Types

type breakdown = {
  save_ctx_ns : int;  (** register + optional FXSAVE save at the source. *)
  messaging_ns : int;  (** both transfers, incl. ring + doorbell costs. *)
  import_ns : int;  (** destination-side work (replica, task, attach). *)
  schedule_in_ns : int;
  prefetch_ns : int;
      (** working-set prefetch at the destination (0 unless the
          [migration_prefetch] option is on). *)
  total_ns : int;
  migrated : bool;
      (** false when the migration exhausted its retries (under the
          [migration_retry] option) and the thread fell back to running on
          the origin kernel instead. *)
}
(** Per-phase cost decomposition of one migration (experiment T1). *)

val handle_migrate_req :
  cluster ->
  kernel ->
  src:int ->
  cause:int ->
  ticket:int ->
  pid:pid ->
  task:Kernelmodel.Task.t ->
  unit
(** Destination-side import handler (wired by [Cluster.dispatch]).
    [cause] is the message id of the delivered request; the Import span is
    causally linked to it. Idempotent: a retransmitted request whose
    original was imported (only the ack was lost) re-acks without adopting
    the task again. *)

val handle_migrate_cancel : cluster -> kernel -> pid:pid -> tid:tid -> unit
(** Destination-side revocation of an orphan import, sent (best effort) by
    an origin that exhausted its retries and kept the thread. A no-op when
    no import happened, or when the thread legitimately lives here. *)

val migrate :
  ?deadline:Sim.Time.t ->
  cluster ->
  kernel ->
  core:Hw.Topology.core ->
  Kernelmodel.Task.t ->
  dst:int ->
  breakdown
(** Migrate [task] (running on [kernel]/[core], in the calling fiber) to
    [dst]. On return the task lives on [dst]; migrating to the current
    kernel is a free no-op. With the [migration_retry] option set, a
    migration whose retries are exhausted returns with [migrated = false]
    and the task still running on the origin kernel.

    [deadline] is an end-to-end latency budget in simulated ns. When
    given, the migration is accounted against it: [slo.met] when it
    completed within budget, else [slo.violations] plus the overrun
    ([slo.overrun_ns] histogram) and the dominant phase of the blown
    budget ([slo.violation_phase.<phase>]). A failed migration (retries
    exhausted) always counts as a violation. Deadlines never change
    protocol behaviour — accounting only, so deadline-carrying runs stay
    bit-identical to deadline-free ones in simulated time. *)
