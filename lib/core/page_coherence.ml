(** On-demand page coherence for distributed address spaces — facade over
    the pluggable protocol subsystem ({!Coherence}).

    The protocol state machine (single-writer / multiple-reader with a
    per-page directory, the paper's design) lives in
    [lib/coherence/impl.ml]; the two protocols instantiated here differ
    only in where a page's directory shard is homed:

    - {!Coherence.Origin_home} — at the process's origin kernel (the
      paper's protocol, and the default);
    - {!Coherence.Sharded_dir} — at a hash of the VPN, spreading
      directory load across the cluster.

    Which one a cluster runs is [cluster.opts.coherence], fixed at boot.
    [write_commit] / [read_version] model content as per-page version
    numbers and are protocol-independent ("hardware", not kernel
    state). *)

open Types
module K = Kernelmodel
module OH = Coherence.Origin_home.Make (Coherence_env.Env)
module SD = Coherence.Sharded_dir.Make (Coherence_env.Env)

let page_size = Coherence.Impl.page_size

module type IMPL =
  Coherence.Intf.S
    with type cluster = cluster
     and type kernel = kernel
     and type process = process
     and type replica = replica

let impl cluster : (module IMPL) =
  match cluster.opts.coherence with
  | Coherence.Protocol.Origin_home -> (module OH)
  | Coherence.Protocol.Sharded_dir -> (module SD)

let touch cluster (kernel : kernel) (r : replica) ~core ~addr ~access :
    (K.Fault.classification, string) result =
  let (module C) = impl cluster in
  C.touch cluster kernel r ~core ~addr ~access

(** Route one coherence request to the active protocol's handler. *)
let handle cluster (kernel : kernel) ~src ~cause req =
  let (module C) = impl cluster in
  C.handle cluster kernel ~src ~cause req

let drop_range_local cluster (kernel : kernel) (r : replica) ~start ~len =
  let (module C) = impl cluster in
  C.drop_range_local cluster kernel r ~start ~len

(** Directory cleanup for a byte range, initiated at the origin.
    [keep_versions] is the mprotect reset (directory entries and fault
    locks go, committed content stays); munmap passes [false]. Under the
    sharded protocol this batches drop messages to remote home shards. *)
let drop_range_directory cluster (kernel : kernel) (proc : process) ~start
    ~len ~keep_versions =
  let (module C) = impl cluster in
  C.drop_range_directory cluster kernel proc ~start ~len ~keep_versions

(** Commit a write on a page the calling kernel owns writable: bumps the
    logical content version (plain memory write on real hardware). *)
let write_commit (r : replica) ~addr =
  let vpn = K.Page_table.vpn_of_addr addr in
  let proc = r.proc in
  let v =
    (match Hashtbl.find_opt proc.page_version vpn with
    | Some v -> v
    | None -> 0)
    + 1
  in
  Hashtbl.replace proc.page_version vpn v;
  Hashtbl.replace r.page_data vpn v

(** Read the version visible on this kernel (tests compare against the
    committed version to verify coherence). *)
let read_version (r : replica) ~addr =
  let vpn = K.Page_table.vpn_of_addr addr in
  match Hashtbl.find_opt r.page_data vpn with Some v -> v | None -> 0
