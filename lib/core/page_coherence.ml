(** On-demand page coherence for distributed address spaces.

    Pages of a distributed process follow a single-writer /
    multiple-reader protocol with a directory at the origin kernel, the
    design the paper describes for address-space consistency at page
    granularity:

    - a page is writable on at most one kernel at a time;
    - read-only replicas may exist on several kernels (unless the
      [read_replication] ablation option is off);
    - a write fault pulls the page exclusively: the origin revokes the
      current writer, invalidates every reader, then grants ownership;
    - a read fault downgrades the current writer to a reader and replicates.

    Content is modelled as a per-page version number: the owning kernel's
    writes bump the version in place (physical memory is shared on this
    machine, so that mutation is "hardware", not kernel state); protocol
    messages carry the version so tests can verify read-after-write
    coherence across kernels. *)

open Sim
open Types
module K = Kernelmodel

let page_size = 4096

(* Cost of allocating a physical frame + zeroing it on first touch. *)
let frame_alloc_cost = Time.ns 300
let zero_page_cost = Time.ns 600

let fault_lock (proc : process) vpn eng =
  match Hashtbl.find_opt proc.fault_locks vpn with
  | Some m -> m
  | None ->
      let m = Mutex.create eng in
      Hashtbl.add proc.fault_locks vpn m;
      m

let latest_version (proc : process) vpn =
  match Hashtbl.find_opt proc.page_version vpn with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)
(* Handlers running on non-origin kernels (owner / reader side).      *)
(* ------------------------------------------------------------------ *)

(** Origin asked us to give up our writable copy: unmap, flush, free the
    frame, return the content version we had. *)
let handle_page_pull cluster (kernel : kernel) ~src ~ticket ~pid ~vpn =
  let p = params cluster in
  m_incr cluster ~kernel:kernel.kid "coherence.pulls";
  Proto_util.kernel_work cluster p.Hw.Params.page_table_walk;
  let version =
    match find_replica kernel pid with
    | None -> 0
    | Some r -> (
        Proto_util.kernel_work cluster p.Hw.Params.tlb_flush_local;
        (match K.Page_table.clear r.pt ~vpn with
        | Some pte -> Hw.Memory.free cluster.machine.Hw.Machine.mem pte.K.Page_table.frame
        | None -> ());
        match Hashtbl.find_opt r.page_data vpn with
        | Some v ->
            Hashtbl.remove r.page_data vpn;
            v
        | None -> 0)
  in
  send cluster ~src:kernel.kid ~dst:src (Page_pull_resp { ticket; version })

(** Origin asked us to drop our read-only copy. *)
let handle_page_invalidate cluster (kernel : kernel) ~src ~pid ~vpn
    ~ack_ticket =
  let p = params cluster in
  m_incr cluster ~kernel:kernel.kid "coherence.invalidations";
  Proto_util.kernel_work cluster
    (Time.add p.Hw.Params.page_table_walk p.Hw.Params.tlb_flush_local);
  (match find_replica kernel pid with
  | None -> ()
  | Some r -> (
      Hashtbl.remove r.page_data vpn;
      match K.Page_table.clear r.pt ~vpn with
      | Some pte ->
          Hw.Memory.free cluster.machine.Hw.Machine.mem pte.K.Page_table.frame
      | None -> ()));
  send cluster ~src:kernel.kid ~dst:src (Page_ack { ticket = ack_ticket })

(** Origin asked us to downgrade our writable copy to read-only (we keep
    the frame and become a reader). Replies with the version like a pull. *)
let handle_page_downgrade cluster (kernel : kernel) ~src ~pid ~vpn
    ~ack_ticket =
  let p = params cluster in
  m_incr cluster ~kernel:kernel.kid "coherence.downgrades";
  Proto_util.kernel_work cluster
    (Time.add p.Hw.Params.page_table_walk p.Hw.Params.tlb_flush_local);
  (match find_replica kernel pid with
  | None -> ()
  | Some r -> ignore (K.Page_table.downgrade r.pt ~vpn));
  send cluster ~src:kernel.kid ~dst:src (Page_ack { ticket = ack_ticket })

(* ------------------------------------------------------------------ *)
(* Directory service, running on the origin kernel.                    *)
(* ------------------------------------------------------------------ *)

(* Local (message-free) counterparts of pull/invalidate/downgrade, used
   when the kernel to revoke is the origin itself. *)
let local_revoke cluster (kernel : kernel) ~pid ~vpn =
  let p = params cluster in
  Proto_util.kernel_work cluster
    (Time.add p.Hw.Params.page_table_walk p.Hw.Params.tlb_flush_local);
  match find_replica kernel pid with
  | None -> 0
  | Some r -> (
      (match K.Page_table.clear r.pt ~vpn with
      | Some pte ->
          Hw.Memory.free cluster.machine.Hw.Machine.mem pte.K.Page_table.frame
      | None -> ());
      match Hashtbl.find_opt r.page_data vpn with
      | Some v ->
          Hashtbl.remove r.page_data vpn;
          v
      | None -> 0)

let local_pull cluster (kernel : kernel) ~pid ~vpn =
  m_incr cluster ~kernel:kernel.kid "coherence.pulls";
  local_revoke cluster kernel ~pid ~vpn

let local_invalidate cluster (kernel : kernel) ~pid ~vpn =
  m_incr cluster ~kernel:kernel.kid "coherence.invalidations";
  ignore (local_revoke cluster kernel ~pid ~vpn)

let local_downgrade cluster (kernel : kernel) ~pid ~vpn =
  let p = params cluster in
  m_incr cluster ~kernel:kernel.kid "coherence.downgrades";
  Proto_util.kernel_work cluster
    (Time.add p.Hw.Params.page_table_walk p.Hw.Params.tlb_flush_local);
  match find_replica kernel pid with
  | None -> ()
  | Some r -> ignore (K.Page_table.downgrade r.pt ~vpn)

(** Serve one fault against the directory. Must run on the origin kernel
    {e with the page's fault lock held}; may issue pulls / invalidations /
    downgrades to other kernels. Returns the grant for [requester].

    The caller keeps the lock until the requester has {e installed} the
    grant (locally, or signalled by a [Page_ack]); releasing earlier lets a
    second writer be granted while the first install is still in flight,
    which the randomized coherence tests catch as a dual-writer state. *)
let origin_service_locked cluster (origin : kernel) (proc : process)
    ~requester ~vpn ~(access : K.Fault.access) : page_grant =
  m_incr cluster ~kernel:origin.kid "coherence.grants";
  let entry =
        match Hashtbl.find_opt proc.directory vpn with
        | Some e -> e
        | None ->
            let e = { writer = None; readers = [] } in
            Hashtbl.add proc.directory vpn e;
            e
      in
      let effective_access =
        if cluster.opts.read_replication then access else K.Fault.Write
      in
      let requester_was_reader = List.mem requester entry.readers in
      match effective_access with
      | K.Fault.Write ->
          (* Revoke the current writer, if any and not the requester. *)
          let pulled_from =
            match entry.writer with
            | Some w when w = origin.kid && w <> requester ->
                let version = local_pull cluster origin ~pid:proc.pid ~vpn in
                if version > latest_version proc vpn then
                  Hashtbl.replace proc.page_version vpn version;
                Some w
            | Some w when w <> requester ->
                (match
                   Proto_util.call cluster ~src:origin ~dst:w
                     (fun ~ticket -> Page_pull { ticket; pid = proc.pid; vpn })
                 with
                | Page_pull_resp { version; _ } ->
                    (* Keep the committed version in sync with what the
                       (now revoked) writer last wrote. *)
                    if version > latest_version proc vpn then
                      Hashtbl.replace proc.page_version vpn version
                | _ -> assert false);
                Some w
            | _ -> None
          in
          (* Invalidate every reader except the requester; the origin's own
             replica is revoked locally (broadcast skips self). *)
          let victims = List.filter (fun k -> k <> requester) entry.readers in
          if List.mem origin.kid victims && requester <> origin.kid then
            local_invalidate cluster origin ~pid:proc.pid ~vpn;
          Proto_util.broadcast_and_wait cluster ~src:origin ~targets:victims
            ~make:(fun ~ack_ticket ->
              Page_invalidate { pid = proc.pid; vpn; ack_ticket });
          entry.writer <- Some requester;
          entry.readers <- [];
          {
            grant_version = latest_version proc vpn;
            grant_writable = true;
            grant_from =
              (match pulled_from with Some w -> w | None -> origin.kid);
            grant_carries_data = not requester_was_reader;
            grant_ack = 0;
          }
      | K.Fault.Read -> (
          match entry.writer with
          | Some w when w = requester ->
              (* Stale fault: a racing write fault from the same kernel
                 already made it the writer. Reconfirm ownership; do NOT
                 downgrade it or enrol it as a reader. *)
              {
                grant_version = latest_version proc vpn;
                grant_writable = true;
                grant_from = requester;
                grant_carries_data = false;
                grant_ack = 0;
              }
          | writer ->
              (match writer with
              | Some w when w = origin.kid ->
                  local_downgrade cluster origin ~pid:proc.pid ~vpn;
                  entry.writer <- None;
                  entry.readers <- [ w ]
              | Some w ->
                  Proto_util.broadcast_and_wait cluster ~src:origin
                    ~targets:[ w ] ~make:(fun ~ack_ticket ->
                      Page_downgrade { pid = proc.pid; vpn; ack_ticket });
                  entry.writer <- None;
                  entry.readers <- [ w ]
              | None -> ());
              if not (List.mem requester entry.readers) then
                entry.readers <- requester :: entry.readers;
              {
                grant_version = latest_version proc vpn;
                grant_writable = false;
                grant_from = origin.kid;
                grant_carries_data = not requester_was_reader;
                grant_ack = 0;
              })

(** Message handler for a remote kernel's fault. Runs at origin. The
    page's fault lock is held from the directory update until the
    requester acks that it installed the grant. *)
let handle_page_req cluster (kernel : kernel) ~src ~ticket ~pid ~vpn ~access =
  match Hashtbl.find_opt cluster.procs pid with
  | Some proc when proc.origin = kernel.kid ->
      let lock = fault_lock proc vpn (eng cluster) in
      Mutex.with_lock lock (fun () ->
          let grant =
            origin_service_locked cluster kernel proc ~requester:src ~vpn
              ~access
          in
          let installed = Msg.Gather.create (eng cluster) ~expected:1 in
          let ack_ticket =
            Msg.Rpc.register kernel.rpc (fun (_ : payload) ->
                Msg.Gather.ack installed)
          in
          send cluster ~src:kernel.kid ~dst:src
            (Page_resp
               { ticket; result = Ok { grant with grant_ack = ack_ticket } });
          Msg.Gather.wait installed)
  | _ ->
      send cluster ~src:kernel.kid ~dst:src
        (Page_resp { ticket; result = Error "not the origin of this pid" })

(* ------------------------------------------------------------------ *)
(* Fault path on the kernel where the thread runs.                     *)
(* ------------------------------------------------------------------ *)

let install cluster (kernel : kernel) (r : replica) ~vpn ~(grant : page_grant)
    =
  let p = params cluster in
  let existing = K.Page_table.get r.pt ~vpn in
  (match existing with
  | Some _ when not grant.grant_carries_data ->
      (* Permission upgrade on data we already hold. *)
      ()
  | Some pte ->
      (* Refresh in place (e.g. we were a reader and got fresh data). *)
      ignore pte
  | None ->
      Proto_util.kernel_work cluster frame_alloc_cost;
      let node =
        Hw.Topology.socket_of cluster.machine.Hw.Machine.topo kernel.home_core
      in
      let frame = Hw.Memory.alloc_exn cluster.machine.Hw.Machine.mem ~node in
      K.Page_table.set r.pt ~vpn { K.Page_table.frame; writable = false });
  (match K.Page_table.get r.pt ~vpn with
  | Some pte ->
      K.Page_table.set r.pt ~vpn
        { pte with K.Page_table.writable = grant.grant_writable }
  | None -> assert false);
  Hashtbl.replace r.page_data vpn grant.grant_version;
  Proto_util.kernel_work cluster p.Hw.Params.page_table_walk

(** Service a fault for a thread of [r] running on [kernel] at [core].
    Returns the fault classification it serviced (for stats). *)
let service_fault cluster (kernel : kernel) (r : replica) ~core ~addr ~access
    =
  let vpn = K.Page_table.vpn_of_addr addr in
  let proc = r.proc in
  m_incr cluster ~kernel:kernel.kid "fault.serviced";
  trace cluster ~cat:"fault" "k%d %s fault pid %d vpn %d" kernel.kid
    (match access with K.Fault.Read -> "read" | K.Fault.Write -> "write")
    proc.pid vpn;
  if kernel.kid = proc.origin then begin
    (* Local directory: no messages unless other kernels hold the page.
       Serve and install under the fault lock, like remote grants. *)
    let lock = fault_lock proc vpn (eng cluster) in
    Mutex.with_lock lock (fun () ->
        let grant =
          origin_service_locked cluster kernel proc ~requester:kernel.kid
            ~vpn ~access
        in
        (* First touch of a fresh anonymous page: demand-zero. *)
        if grant.grant_version = 0 && not (Hashtbl.mem proc.page_version vpn)
        then Proto_util.kernel_work cluster zero_page_cost;
        install cluster kernel r ~vpn ~grant)
  end
  else begin
    let resp =
      Proto_util.call_from cluster ~src:kernel ~src_core:core
        ~dst:proc.origin (fun ~ticket ->
          Page_req { ticket; pid = proc.pid; vpn; access })
    in
    match resp with
    | Page_resp { result = Ok grant; _ } ->
        install cluster kernel r ~vpn ~grant;
        (* Tell the origin the grant is live; it holds the page's fault
           lock until this lands. *)
        send_from cluster ~src:kernel.kid ~src_core:core ~dst:proc.origin
          (Page_ack { ticket = grant.grant_ack })
    | Page_resp { result = Error e; _ } -> failwith ("page fault: " ^ e)
    | _ -> assert false
  end

(** Memory access by an application thread: classify against the local
    replica and fault if needed. [Ok classification] tells the caller what
    was needed; [Error] is a segfault. *)
let touch cluster (kernel : kernel) (r : replica) ~core ~addr ~access :
    (K.Fault.classification, string) result =
  let p = params cluster in
  Engine.sleep (eng cluster) p.Hw.Params.l1_hit;
  match K.Fault.classify r.vmas r.pt ~addr ~access with
  | K.Fault.Present -> Ok K.Fault.Present
  | K.Fault.Segv -> Error "segmentation fault"
  | (K.Fault.Minor | K.Fault.Cow_or_upgrade) as c ->
      (* Trap into the kernel and service. *)
      Proto_util.kernel_work cluster p.Hw.Params.page_table_walk;
      service_fault cluster kernel r ~core ~addr ~access;
      Ok c

(** Commit a write on a page the calling kernel owns writable: bumps the
    logical content version (plain memory write on real hardware). *)
let write_commit (r : replica) ~addr =
  let vpn = K.Page_table.vpn_of_addr addr in
  let proc = r.proc in
  let v = latest_version proc vpn + 1 in
  Hashtbl.replace proc.page_version vpn v;
  Hashtbl.replace r.page_data vpn v

(** Read the version visible on this kernel (tests compare against the
    committed version to verify coherence). *)
let read_version (r : replica) ~addr =
  let vpn = K.Page_table.vpn_of_addr addr in
  match Hashtbl.find_opt r.page_data vpn with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)
(* munmap support                                                      *)
(* ------------------------------------------------------------------ *)

(** Drop local translations and frames for a byte range (on munmap).
    Within one kernel this is exactly SMP's unmap path: the initiating
    core flushes locally and TLB-shootdown-IPIs every other core running
    a member of the process on this kernel. *)
let drop_range_local cluster (kernel : kernel) (r : replica) ~start ~len =
  let p = params cluster in
  let removed = K.Page_table.clear_range r.pt ~start ~len in
  List.iter
    (fun (pte : K.Page_table.pte) ->
      Hw.Memory.free cluster.machine.Hw.Machine.mem pte.K.Page_table.frame)
    removed;
  let first = K.Page_table.vpn_of_addr start in
  let last = K.Page_table.vpn_of_addr (start + len - 1) in
  for vpn = first to last do
    Hashtbl.remove r.page_data vpn
  done;
  if removed <> [] then begin
    Proto_util.kernel_work cluster p.Hw.Params.tlb_flush_local;
    let victims =
      min
        (max 0 (List.length r.members - 1))
        (List.length kernel.cores - 1)
    in
    if victims > 0 then
      Proto_util.kernel_work cluster
        (Time.add p.Hw.Params.ipi_latency
           (Time.scale victims p.Hw.Params.tlb_shootdown_per_core))
  end

(** Directory cleanup for a byte range; must run at the origin. *)
let drop_range_directory (proc : process) ~start ~len =
  let first = K.Page_table.vpn_of_addr start in
  let last = K.Page_table.vpn_of_addr (start + len - 1) in
  for vpn = first to last do
    Hashtbl.remove proc.directory vpn;
    Hashtbl.remove proc.page_version vpn;
    Hashtbl.remove proc.fault_locks vpn
  done
