(** On-demand page coherence for distributed address spaces — facade over
    the pluggable protocol subsystem ({!Coherence}).

    Single-writer / multiple-reader protocol with a per-page directory: a
    page is writable on at most one kernel; read-only replicas may exist
    on several (unless the [read_replication] ablation option is off).
    Write faults revoke the writer and invalidate readers; read faults
    downgrade the writer and replicate. The page's home kernel holds a
    per-page fault lock from directory update until the requester
    acknowledges installing the grant (the randomized tests show the
    dual-writer race this prevents).

    Where a page is homed is the protocol choice ([cluster.opts.coherence]):
    the process's origin kernel under {!Coherence.Protocol.Origin_home}
    (the paper's design, and the default), a hash of the VPN under
    {!Coherence.Protocol.Sharded_dir}.

    Page contents are modelled as per-page version numbers: the owner's
    writes bump the version in place (shared physical memory — hardware,
    not kernel state); protocol messages carry versions so tests can check
    read-after-write coherence across kernels. *)

open Types

val page_size : int

(** {1 Fault path (thread side)} *)

val touch :
  cluster ->
  kernel ->
  replica ->
  core:Hw.Topology.core ->
  addr:int ->
  access:Kernelmodel.Fault.access ->
  (Kernelmodel.Fault.classification, string) result
(** Memory access by an application thread: classify against the local
    replica, service the fault if needed (locally when this kernel homes
    the page, via the directory protocol otherwise). [Error] is a
    segfault — callers with a lazily-replicated layout should first try
    [Addr_consistency.fetch_vma]. *)

val write_commit : replica -> addr:int -> unit
(** Commit a write on a page this kernel owns writable: bumps the logical
    content version (a plain memory store on real hardware). *)

val read_version : replica -> addr:int -> int
(** Content version visible on this kernel (0 if never written). *)

(** {1 munmap support} *)

val drop_range_local :
  cluster -> kernel -> replica -> start:int -> len:int -> unit
(** Drop local translations, frames and cached content for a byte range. *)

val drop_range_directory :
  cluster ->
  kernel ->
  process ->
  start:int ->
  len:int ->
  keep_versions:bool ->
  unit
(** Directory cleanup for a byte range, initiated at the origin kernel.
    [keep_versions:true] is the mprotect reset (directory entries and
    fault locks go, committed content stays); munmap passes [false].
    Under the sharded protocol, entries homed elsewhere are dropped via
    batched [Drop_range] messages to the remote shards. *)

(** {1 Message handler} (wired by [Cluster.dispatch]) *)

val handle :
  cluster -> kernel -> src:int -> cause:int -> Coherence.Wire.req -> unit
(** Route one coherence request to the active protocol. [cause] is the
    delivery's message id, linking the handler span into the causal DAG. *)
