(** Health-aware cluster placement (see the interface for the model). *)

open Sim
open Types
module K = Kernelmodel

type candidate = {
  ck : int;
  ck_core : Hw.Topology.core;
  ck_load : int;
  ck_weight : int;
}

module type POLICY = sig
  val name : string

  val choose :
    topo:Hw.Topology.t ->
    src_core:Hw.Topology.core ->
    candidates:candidate list ->
    int option
end

(* Lowest score wins; equal scores break towards the lowest kernel id.
   Scores are scaled integers (1024 = one load unit) so policies stay
   float-free and bit-stable. *)
let argmin score candidates =
  List.fold_left
    (fun acc c ->
      let s = score c in
      match acc with
      | Some (bs, bk) when bs < s || (bs = s && bk < c.ck) -> acc
      | _ -> Some (s, c.ck))
    None candidates
  |> Option.map snd

let weighted_load c = c.ck_load * 1024 / max 1 c.ck_weight

module Weighted_least_loaded = struct
  let name = "least-loaded"
  let choose ~topo:_ ~src_core:_ ~candidates = argmin weighted_load candidates
end

module Numa_aware = struct
  let name = "numa"

  (* Crossing a socket costs about one load unit; staying on the
     requester's socket a quarter of one. The imbalance must pay for the
     interconnect crossing before work leaves the socket. *)
  let penalty = function
    | Hw.Topology.Self -> 0
    | Hw.Topology.Same_socket -> 256
    | Hw.Topology.Cross_socket -> 1024

  let choose ~topo ~src_core ~candidates =
    argmin
      (fun c ->
        weighted_load c + penalty (Hw.Topology.distance topo src_core c.ck_core))
      candidates
end

let policies =
  [
    (Weighted_least_loaded.name, (module Weighted_least_loaded : POLICY));
    (Numa_aware.name, (module Numa_aware : POLICY));
  ]

(* --- dispatcher --- *)

type retry = {
  max_attempts : int;
  base_deadline : Time.t;
  backoff_factor : int;
  max_deadline : Time.t;
}

let default_retry =
  {
    max_attempts = 3;
    base_deadline = Time.us 60;
    backoff_factor = 2;
    max_deadline = Time.us 400;
  }

type t = {
  cluster : cluster;
  policy : (module POLICY);
  health : Health.t option;
  retry : retry;
  high_water : int;
  frontend : int;
  per_kernel : int array;  (** dispatcher's view of in-flight per kernel. *)
  mutable total : int;
}

let create ?(policy = (module Weighted_least_loaded : POLICY)) ?health ?retry
    ?high_water ~frontend cluster =
  let retry = Option.value retry ~default:default_retry in
  if retry.max_attempts < 1 then
    invalid_arg "Placement.create: max_attempts must be >= 1";
  let high_water =
    match high_water with
    | Some h -> h
    | None ->
        Hw.Topology.total_cores cluster.machine.Hw.Machine.topo
  in
  {
    cluster;
    policy;
    health;
    retry;
    high_water;
    frontend;
    per_kernel = Array.make (nkernels cluster) 0;
    total = 0;
  }

let inflight t = t.total
let inflight_on t k = t.per_kernel.(k)

(* A kernel on probation (readmitted by a probe, not yet proven) takes at
   most one request at a time: a just-recovered kernel gets trial traffic,
   not the flood its empty load counter would otherwise attract — and a
   still-dead one burns one request per probe cycle, not fifty. *)
let available t k =
  k <> t.frontend
  &&
  match t.health with
  | None -> true
  | Some h ->
      Health.available h k
      && not (Health.probation h k && t.per_kernel.(k) > 0)

let candidates t ~exclude ~ignore_health =
  Array.to_list t.cluster.kernels
  |> List.filter_map (fun (k : kernel) ->
         let ok =
           if ignore_health then k.kid <> t.frontend
           else available t k.kid
         in
         if ok && not (List.mem k.kid exclude) then
           Some
             {
               ck = k.kid;
               ck_core = k.home_core;
               ck_load = t.per_kernel.(k.kid);
               ck_weight = List.length k.cores;
             }
         else None)

let pick t ?(exclude = []) () =
  let cs =
    match candidates t ~exclude ~ignore_health:false with
    | [] ->
        (* Panic mode: a fabric-wide fault can drain every kernel at once,
           and refusing to place is then strictly worse than trying one —
           the L7-balancer rule that when no upstream is live, traffic is
           passed anyway. *)
        candidates t ~exclude ~ignore_health:true
    | cs -> cs
  in
  let (module P : POLICY) = t.policy in
  P.choose ~topo:t.cluster.machine.Hw.Machine.topo
    ~src_core:(kernel_of t.cluster t.frontend).home_core ~candidates:cs

type outcome =
  | Placed of { kernel : int; attempts : int }
  | Rejected
  | Failed of { attempts : int }

(* Attempt [n] (1-based) waits the service cost plus a backed-off slack. *)
let deadline t ~attempt ~cost_ns =
  let slack = ref t.retry.base_deadline in
  for _ = 2 to attempt do
    slack := !slack * t.retry.backoff_factor
  done;
  cost_ns + min !slack t.retry.max_deadline

let note_outcome t ~kernel ok =
  match t.health with
  | None -> ()
  | Some h ->
      if ok then Health.note_success h ~kernel
      else Health.note_failure h ~kernel

let dispatch ?deadline:slo_deadline t ~cost_ns =
  let cluster = t.cluster in
  let fk = kernel_of cluster t.frontend in
  let t0 = Engine.now (eng cluster) in
  (* Deadline accounting for dispatches that do land (rejections and
     failures are already first-class outcomes with their own counters;
     the deadline question is about the latency of the successes). *)
  let slo_placed () =
    match slo_deadline with
    | None -> ()
    | Some d ->
        if Time.sub (Engine.now (eng cluster)) t0 <= d then
          m_incr cluster "slo.dispatch.met"
        else m_incr cluster "slo.dispatch.violations"
  in
  m_incr cluster ~kernel:t.frontend "placement.requests";
  if t.total >= t.high_water then begin
    m_incr cluster ~kernel:t.frontend "placement.rejected";
    Rejected
  end
  else
    let rec attempt n tried =
      if n > t.retry.max_attempts then begin
        m_incr cluster ~kernel:t.frontend "placement.failed";
        Failed { attempts = n - 1 }
      end
      else
        match pick t ~exclude:tried () with
        | None ->
            (* Every kernel is drained or already tried: give up early. *)
            m_incr cluster ~kernel:t.frontend "placement.failed";
            Failed { attempts = n - 1 }
        | Some dst ->
            t.per_kernel.(dst) <- t.per_kernel.(dst) + 1;
            t.total <- t.total + 1;
            let resp =
              Msg.Rpc.call_timeout fk.rpc
                ~timeout:(deadline t ~attempt:n ~cost_ns)
                (fun ticket ->
                  send_from cluster ~src:t.frontend ~src_core:fk.home_core
                    ~dst
                    (Work_req { ticket; cost_ns }))
            in
            t.per_kernel.(dst) <- t.per_kernel.(dst) - 1;
            t.total <- t.total - 1;
            (match resp with
            | Some _ ->
                note_outcome t ~kernel:dst true;
                m_incr cluster ~kernel:t.frontend "placement.placed";
                if n > 1 then
                  m_incr cluster ~kernel:t.frontend "placement.recovered"
            | None ->
                note_outcome t ~kernel:dst false;
                m_incr cluster ~kernel:t.frontend "placement.attempt_timeout");
            if resp <> None then begin
              slo_placed ();
              Placed { kernel = dst; attempts = n }
            end
            else attempt (n + 1) (dst :: tried)
    in
    attempt 1 []

(* Server side: occupy a core for the request's cost. Timesharing via
   [K.Cpu.compute] is what makes overload visible as latency rather than
   unbounded queueing. Idempotent under retries: attempts are independent
   work items, so re-execution only re-charges CPU. *)
let handle_work_req cluster (kernel : kernel) ~src ~ticket ~cost_ns =
  let core = K.Sched.pick_core kernel.sched in
  K.Sched.assign kernel.sched core;
  K.Sched.compute_on kernel.sched core cost_ns;
  K.Sched.unassign kernel.sched core;
  m_incr cluster ~kernel:kernel.kid "placement.served";
  send_from cluster ~src:kernel.kid ~src_core:core ~dst:src
    (Work_resp { ticket })

(* --- health observability --- *)

let observe_health cluster health =
  let open_drain = Array.make (nkernels cluster) None in
  Health.on_transition health (fun (tr : Health.transition) ->
      trace cluster ~cat:"health" "k%d health %s -> %s" tr.tr_kernel
        (Health.state_name tr.tr_from)
        (Health.state_name tr.tr_to);
      m_incr cluster ~kernel:tr.tr_kernel "health.transitions";
      (match tr.tr_to with
      | Health.Drained ->
          m_incr cluster ~kernel:tr.tr_kernel "health.drained";
          open_drain.(tr.tr_kernel) <-
            Some
              (sp_begin cluster ~kernel:tr.tr_kernel
                 (Obs.Span.Custom "health_drained"))
      | Health.Suspect when tr.tr_from = Health.Drained ->
          m_incr cluster ~kernel:tr.tr_kernel "health.readmitted"
      | _ -> ());
      match (tr.tr_from, open_drain.(tr.tr_kernel)) with
      | Health.Drained, Some sp ->
          sp_end cluster sp;
          open_drain.(tr.tr_kernel) <- None
      | _ -> ())
