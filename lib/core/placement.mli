(** Cluster-wide placement: policies deciding which kernel should host
    work, plus a dispatcher with admission control and bounded
    retry-on-other-kernel.

    Policies are pure: they score a candidate list and pick a kernel, so
    the balancer (thread re-placement hints) and the request dispatcher
    (initial placement of incoming work) share them. The dispatcher is the
    nginx-upstream shape transplanted to kernels: passive health checks
    ({!Health}) mark kernels down, a failed placement retries on the next
    candidate under a capped exponential per-attempt deadline (the
    [Rpc.call_retry] shape), and once cluster-wide in-flight load crosses
    a high-water mark new work is shed with an explicit {!Rejected}
    outcome instead of queueing to collapse. *)

open Types

(** One kernel as a placement candidate. *)
type candidate = {
  ck : int;  (** kernel id. *)
  ck_core : Hw.Topology.core;  (** its home core (NUMA position). *)
  ck_load : int;  (** current load (dispatcher in-flight or runqueue). *)
  ck_weight : int;  (** capacity weight (its core count). *)
}

module type POLICY = sig
  val name : string

  val choose :
    topo:Hw.Topology.t ->
    src_core:Hw.Topology.core ->
    candidates:candidate list ->
    int option
  (** Pick a kernel from [candidates] (already filtered for availability);
      [None] iff the list is empty. Deterministic: equal scores break ties
      towards the lowest kernel id. *)
end

module Weighted_least_loaded : POLICY
(** Minimise load normalised by weight — nginx's weighted least-conn. *)

module Numa_aware : POLICY
(** Weighted-least-loaded plus a NUMA distance penalty from [src_core] to
    the candidate's home core (same socket is cheap, crossing a socket
    costs about one load unit) — per "New Thread Migration Strategies for
    NUMA Systems": keep work near its requester unless the imbalance pays
    for the crossing. *)

val policies : (string * (module POLICY)) list
(** Registered policies by name (for CLIs and sweeps). *)

(** {1 Dispatcher} *)

(** Bounded retry-on-other-kernel: attempt [n] (1-based) waits
    [base_deadline * backoff_factor^(n-1)] (capped at [max_deadline]) on
    top of the request's service cost before declaring a miss and moving
    to the next candidate — capped exponential backoff in the
    [Rpc.retry_policy] shape. *)
type retry = {
  max_attempts : int;  (** distinct kernels tried per request (>= 1). *)
  base_deadline : Sim.Time.t;
  backoff_factor : int;
  max_deadline : Sim.Time.t;
}

val default_retry : retry
(** 3 attempts, 60us base deadline, doubling, capped at 400us. *)

type t

val create :
  ?policy:(module POLICY) ->
  ?health:Health.t ->
  ?retry:retry ->
  ?high_water:int ->
  frontend:int ->
  cluster ->
  t
(** A dispatcher living on kernel [frontend]. [policy] defaults to
    {!Weighted_least_loaded}; [health] (when given) masks drained kernels
    out of the candidate set and is fed every dispatch outcome;
    [high_water] is the cluster-wide in-flight cap above which new work is
    shed (default: the cluster's total core count). *)

val inflight : t -> int
(** Cluster-wide requests currently dispatched and unanswered. *)

val inflight_on : t -> int -> int

val pick : t -> ?exclude:int list -> unit -> int option
(** The policy's current choice among available (healthy/suspect, not
    excluded) kernels. When health has drained {e every} kernel — a
    fabric-wide fault looks like unanimous sickness — falls back to
    ignoring health rather than refusing to place (the L7-balancer panic
    mode: with no live upstream, pass traffic anyway). [None] only when
    every non-frontend kernel is excluded. *)

type outcome =
  | Placed of { kernel : int; attempts : int }
  | Rejected  (** shed by admission control before any attempt. *)
  | Failed of { attempts : int }
      (** every attempt missed its deadline (or no kernel was available). *)

val dispatch : ?deadline:Sim.Time.t -> t -> cost_ns:int -> outcome
(** Place one request costing [cost_ns] of CPU and wait for its response
    (must run in a fiber). Feeds {!Health} with the outcome of every
    attempt and bumps [placement.*] metrics when observability is on.
    When [deadline] (end-to-end budget in simulated ns, spanning every
    retry) is given, each [Placed] outcome additionally counts towards
    [slo.dispatch.met] or [slo.dispatch.violations]. Accounting only —
    a late response is still returned, never cancelled. *)

val observe_health : cluster -> Health.t -> unit
(** Wire a health tracker into the cluster's observability: every
    transition bumps [health.*] metrics and emits a protocol-trace event,
    and each drained interval is recorded as a [health_drained] span on
    the drained kernel — so [popcornsim analyze] attributes degraded-mode
    time per kernel. Call at most once per (cluster, tracker). *)

val handle_work_req :
  cluster -> kernel -> src:int -> ticket:int -> cost_ns:int -> unit
(** Server side of a dispatched request (wired by [Cluster.dispatch]):
    occupy a core of this kernel for [cost_ns] (timeshared, so overload
    shows up as latency), then respond. *)
