(** Creation and bookkeeping of distributed processes and their per-kernel
    replicas. *)

open Types
module K = Kernelmodel

(** Cost of constructing a task struct + kernel stack from scratch, vs.
    adopting a pre-spawned dummy thread from the pool. Calibrated against
    the gap the paper exploits: a full fork-style task construction is an
    order of magnitude more expensive than re-animating a parked dummy. *)
let task_construct_cost = Sim.Time.us 12
let dummy_adopt_cost = Sim.Time.us 1

let create_master cluster ~(origin : kernel) : process =
  let pid = K.Ids.next origin.pid_alloc in
  let proc =
    {
      pid;
      origin = origin.kid;
      member_kernels = [ origin.kid ];
      live_threads = 0;
      directory = Hashtbl.create 512;
      page_version = Hashtbl.create 512;
      dfutex_queues = Hashtbl.create 16;
      fault_locks = Hashtbl.create 64;
      exit_waiters = Sim.Waitq.create ~eng:(eng cluster) ();
    }
  in
  Hashtbl.replace cluster.procs pid proc;
  proc

let create_replica (kernel : kernel) (proc : process)
    ~(vma_proto : K.Vma.vma list) : replica =
  let vmas = K.Vma.create () in
  List.iter
    (fun (v : K.Vma.vma) ->
      match
        K.Vma.map vmas ~fixed:v.K.Vma.start ~len:v.K.Vma.len
          ~prot:v.K.Vma.prot ~kind:v.K.Vma.kind ()
      with
      | Ok _ -> ()
      | Error e -> invalid_arg ("create_replica: bad prototype: " ^ e))
    vma_proto;
  let r =
    {
      proc;
      vmas;
      pt = K.Page_table.create ();
      page_data = Hashtbl.create 256;
      members = [];
      dummy_pool = 0;
      distributed = false;
    }
  in
  Hashtbl.replace kernel.replicas proc.pid r;
  r

(** Mark a process as spanning kernels; flips the fast-path flag on every
    replica the caller knows about. *)
let mark_distributed (proc : process) (cluster : cluster) =
  List.iter
    (fun kid ->
      match find_replica (kernel_of cluster kid) proc.pid with
      | Some r -> r.distributed <- true
      | None -> ())
    proc.member_kernels

let add_member_kernel (proc : process) kid =
  if not (List.mem kid proc.member_kernels) then
    proc.member_kernels <- kid :: proc.member_kernels

(** Charge the cost of obtaining a task struct: adopt a pre-spawned dummy
    thread from the pool when the optimisation is on and the pool is
    non-empty, else construct from scratch. *)
let charge_task_acquisition cluster (r : replica) =
  let opts = cluster.opts in
  if opts.use_dummy_pool && r.dummy_pool > 0 then begin
    r.dummy_pool <- r.dummy_pool - 1;
    Proto_util.kernel_work cluster dummy_adopt_cost;
    (* Refill the pool in the background, as Popcorn's refill worker does. *)
    let refill_target = opts.dummy_pool_size in
    Sim.Engine.spawn (eng cluster) ~tag:"popcorn" ~name:"dummy-refill" (fun () ->
        if r.dummy_pool < refill_target then begin
          Proto_util.kernel_work cluster task_construct_cost;
          r.dummy_pool <- r.dummy_pool + 1
        end)
  end
  else Proto_util.kernel_work cluster task_construct_cost

(** Create a brand-new task on [kernel]. Charges acquisition cost and
    counts a new live thread. *)
let make_task cluster (kernel : kernel) (r : replica) ~tid ~ctx =
  charge_task_acquisition cluster r;
  let task = K.Task.create ~tid ~tgid:r.proc.pid ~kernel:kernel.kid ~ctx in
  Hashtbl.replace kernel.tasks tid task;
  r.members <- task :: r.members;
  r.proc.live_threads <- r.proc.live_threads + 1;
  task

(** Adopt a migrating task on [kernel]: same acquisition cost, but the
    thread already exists group-wide, so the live count is unchanged. *)
let adopt_task cluster (kernel : kernel) (r : replica)
    (task : K.Task.t) =
  charge_task_acquisition cluster r;
  Hashtbl.replace kernel.tasks task.K.Task.tid task;
  r.members <- task :: r.members

(** Pre-populate a replica's dummy pool (done when a replica is created on
    a remote kernel, off the critical path in the real system; here we just
    set the counter since the spawning happened "earlier"). *)
let prime_dummy_pool cluster (r : replica) =
  if cluster.opts.use_dummy_pool then
    r.dummy_pool <- cluster.opts.dummy_pool_size

(** Remove a task from this kernel's tables. The group-wide live count is
    owned by the origin; callers route the decrement there (directly when
    on the origin, via [Thread_exit_notify] otherwise). *)
let remove_member_local (kernel : kernel) (task : K.Task.t) =
  let r = replica_exn kernel task.K.Task.tgid in
  r.members <- List.filter (fun t -> t != task) r.members;
  Hashtbl.remove kernel.tasks task.K.Task.tid

(** Free everything a kernel's replica holds (frames, translations,
    cached content) and drop the replica. *)
let reap_replica cluster (kernel : kernel) pid =
  match find_replica kernel pid with
  | None -> ()
  | Some r ->
      K.Page_table.iter r.pt (fun ~vpn:_ pte ->
          Hw.Memory.free cluster.machine.Hw.Machine.mem pte.K.Page_table.frame);
      Hashtbl.remove kernel.replicas pid

(** Origin-side full teardown: local replica, directory, master tables,
    and an async cleanup notification to every member kernel. *)
let reap cluster (origin : kernel) (proc : process) =
  reap_replica cluster origin proc.pid;
  Hashtbl.reset proc.directory;
  Hashtbl.reset proc.page_version;
  Hashtbl.reset proc.fault_locks;
  List.iter
    (fun kid ->
      if kid <> origin.kid then
        send cluster ~src:origin.kid ~dst:kid
          (Group_exit_notify { pid = proc.pid; from_kernel = origin.kid }))
    proc.member_kernels

(** Member-kernel cleanup on group death. *)
let handle_group_exit_notify cluster (kernel : kernel) ~pid =
  Proto_util.kernel_work cluster (Sim.Time.us 1);
  reap_replica cluster kernel pid

(** Origin-side: account one thread exit; the last one wakes waiters and,
    with [reap_on_exit], tears the process down cluster-wide. *)
let note_thread_exit cluster (origin : kernel) (proc : process) =
  proc.live_threads <- proc.live_threads - 1;
  if proc.live_threads = 0 then begin
    ignore (Sim.Waitq.wake_all proc.exit_waiters ());
    if cluster.opts.reap_on_exit then reap cluster origin proc
  end
