(** Small protocol helpers shared by the Popcorn subsystems. *)

open Sim
open Types

(** Charge kernel-side processing work to the current fiber. *)
let kernel_work cluster dt = Engine.sleep (eng cluster) dt

(** Send [make ~ack_ticket] to every kernel in [targets] in parallel and
    park until all have acked (via [Rpc.complete] on this kernel). *)
let broadcast_and_wait ?span cluster ~(src : kernel) ~targets ~make =
  let targets = List.filter (fun k -> k <> src.kid) targets in
  match targets with
  | [] -> ()
  | _ ->
      let g = Msg.Gather.create (eng cluster) ~expected:(List.length targets) in
      List.iter
        (fun dst ->
          let ticket =
            Msg.Rpc.register src.rpc (fun (_ : payload) -> Msg.Gather.ack g)
          in
          send ?span cluster ~src:src.kid ~dst (make ~ack_ticket:ticket))
        targets;
      Msg.Gather.wait g

(** RPC round trip from kernel [src] to kernel [dst]. [?span] stamps the
    request with the protocol span it belongs to (causal trace context). *)
let call ?span cluster ~(src : kernel) ~dst make =
  Msg.Rpc.call src.rpc (fun ticket ->
      send ?span cluster ~src:src.kid ~dst (make ~ticket))

(** Like {!call} but sent from an explicit core of the source kernel. *)
let call_from ?span cluster ~(src : kernel) ~src_core ~dst make =
  Msg.Rpc.call src.rpc (fun ticket ->
      send_from ?span cluster ~src:src.kid ~src_core ~dst (make ~ticket))

(** Like {!call_from} but retransmitting under [policy] instead of parking
    forever; [None] when every attempt timed out. Handlers of retried
    requests must be idempotent: an earlier attempt may have been executed
    with only its response lost. *)
let call_retry_from ?span cluster ~(src : kernel) ~src_core ~dst ~policy make =
  Msg.Rpc.call_retry src.rpc ~policy (fun ~attempt:_ ticket ->
      send_from ?span cluster ~src:src.kid ~src_core ~dst (make ~ticket))
