(** Small protocol helpers shared by the Popcorn subsystems. *)

open Types

val kernel_work : cluster -> Sim.Time.t -> unit
(** Charge kernel-side processing work to the current fiber. *)

val broadcast_and_wait :
  ?span:Obs.Span.span ->
  cluster ->
  src:kernel ->
  targets:int list ->
  make:(ack_ticket:int -> payload) ->
  unit
(** Send [make ~ack_ticket] to every kernel in [targets] (self excluded) in
    parallel and park until all have acked via this kernel's RPC table. *)

val call :
  ?span:Obs.Span.span ->
  cluster ->
  src:kernel ->
  dst:int ->
  (ticket:int -> payload) ->
  payload
(** RPC round trip from kernel [src]'s home core to kernel [dst]. [?span]
    stamps the request with the protocol span it is issued from, recording
    the span -> message causal edge ({!Obs.Causal}). *)

val call_from :
  ?span:Obs.Span.span ->
  cluster ->
  src:kernel ->
  src_core:Hw.Topology.core ->
  dst:int ->
  (ticket:int -> payload) ->
  payload
(** Like {!call} but sent from an explicit core of the source kernel. *)

val call_retry_from :
  ?span:Obs.Span.span ->
  cluster ->
  src:kernel ->
  src_core:Hw.Topology.core ->
  dst:int ->
  policy:Msg.Rpc.retry_policy ->
  (ticket:int -> payload) ->
  payload option
(** Like {!call_from} but retransmitting under [policy]; [None] when every
    attempt timed out. Handlers of retried requests must be idempotent. *)
