(** Single-system-image services.

    The replicated-kernel OS presents one Linux-like system: globally
    unique pids/tids (via partitioned allocation), a global task listing
    (a /proc-style view assembled by broadcast), and location-transparent
    thread lookup (any tid resolves to its hosting kernel). *)

open Types
module K = Kernelmodel

let handle_task_list cluster (kernel : kernel) ~src ~cause ~ticket =
  let sp =
    sp_begin cluster ~cause ~kernel:kernel.kid (Obs.Span.Custom "task_list")
  in
  Proto_util.kernel_work cluster (Sim.Time.ns 500);
  let tids =
    Hashtbl.fold
      (fun tid (task : K.Task.t) acc -> (tid, task.K.Task.tgid) :: acc)
      kernel.tasks []
    |> List.sort compare
  in
  sp_end cluster sp;
  send ?span:sp cluster ~src:kernel.kid ~dst:src
    (Task_list_resp { ticket; tids })

(** Global task listing, as a ps/procfs reader on [kernel] would see it:
    queries every other kernel in parallel and merges. *)
let global_tasks cluster (kernel : kernel) : (K.Ids.tid * pid) list =
  let eng = eng cluster in
  let sp =
    sp_begin cluster ~kernel:kernel.kid (Obs.Span.Custom "ssi_task_list")
  in
  let others =
    List.filter (fun k -> k <> kernel.kid)
      (List.init (nkernels cluster) Fun.id)
  in
  let acc = ref [] in
  let g = Msg.Gather.create eng ~expected:(List.length others) in
  List.iter
    (fun dst ->
      let ticket =
        Msg.Rpc.register kernel.rpc (fun resp ->
            (match resp with
            | Task_list_resp { tids; _ } -> acc := tids @ !acc
            | _ -> assert false);
            Msg.Gather.ack g)
      in
      send ?span:sp cluster ~src:kernel.kid ~dst (Task_list_req { ticket }))
    others;
  Msg.Gather.wait g;
  let local =
    Hashtbl.fold
      (fun tid (task : K.Task.t) l -> (tid, task.K.Task.tgid) :: l)
      kernel.tasks []
  in
  let r = List.sort compare (local @ !acc) in
  sp_end cluster sp;
  r

(** Which kernel hosts [tid] right now; [None] if it exited. *)
let locate_thread cluster ~tid = Ssi_locate.locate cluster ~tid

(** Block until every thread of the group has exited (waitpid-ish). *)
let wait_group_exit cluster (proc : process) =
  if proc.live_threads > 0 then
    Sim.Waitq.wait (eng cluster) proc.exit_waiters
