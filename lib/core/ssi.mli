(** Single-system-image services: globally unique ids (by partitioned
    allocation), a global /proc-style task listing, location-transparent
    thread lookup, and group exit waiting. *)

open Types

val global_tasks : cluster -> kernel -> (Kernelmodel.Ids.tid * pid) list
(** ps-style listing as a reader on [kernel] sees it: parallel query of
    every other kernel, merged and sorted. *)

val locate_thread : cluster -> tid:tid -> int option
(** Which kernel hosts [tid] right now; [None] if it exited. *)

val wait_group_exit : cluster -> process -> unit
(** Park until every thread of the group has exited (waitpid-ish). *)

val handle_task_list :
  cluster -> kernel -> src:int -> cause:int -> ticket:int -> unit
(** Message handler (wired by [Cluster.dispatch]); the responder span is
    causally linked to the delivered request via [cause]. *)
