(** Distributed thread group creation.

    A process is a distributed thread group: its threads may live on any
    kernel while sharing one logical address space. Creation of a remote
    thread is mediated by the group's origin kernel so that membership,
    replica creation and layout replication stay ordered:

    requester -> origin  [Thread_spawn_req]
    origin    -> target  [Thread_create_req, with the layout snapshot iff
                          the target has no replica yet]
    target    -> origin  [Thread_create_ack]
    origin    -> requester [Thread_spawn_resp with the new tid]

    Local creation (clone on the same kernel) takes none of these hops. *)

open Types
module K = Kernelmodel

(* Kernel-side clone() work beyond task construction. *)
let clone_bookkeeping_cost = Sim.Time.us 2

(* Modelled thread stack (pthread stacks are mmapped at create; like glibc
   we never unmap them — exited threads' stacks go to the stack cache). *)
let stack_len = 16 * 4096

let new_context cluster =
  K.Context.fresh (Sim.Engine.rng (eng cluster)) ~use_fpu:false

(* Allocate the new thread's stack in the master layout; must run at the
   origin. Replicas learn about it lazily on first fault. *)
let alloc_stack cluster (origin : kernel) (proc : process) =
  let r = replica_exn origin proc.pid in
  Hw.Spinlock.with_lock origin.mm_lock ~core:origin.home_core (fun () ->
      Proto_util.kernel_work cluster (Sim.Time.ns 350);
      match
        K.Vma.map r.vmas ~len:stack_len ~prot:K.Vma.prot_rw
          ~kind:K.Vma.Stack ()
      with
      | Ok _ -> ()
      | Error e -> failwith ("thread stack allocation failed: " ^ e))

(** Create a thread locally on the origin kernel. Returns the new task. *)
let create_local cluster (kernel : kernel) (r : replica) : K.Task.t =
  Proto_util.kernel_work cluster
    (params cluster).Hw.Params.syscall_overhead;
  alloc_stack cluster kernel r.proc;
  Proto_util.kernel_work cluster clone_bookkeeping_cost;
  let tid = K.Ids.next kernel.tid_alloc in
  Process_model.make_task cluster kernel r ~tid ~ctx:(new_context cluster)

(** Ensure [kernel] has a replica of [proc], fetching the layout from the
    origin if needed. Runs on [kernel]. The replica must be created in the
    same event as the fetch response lands (no sleeps in between) so that
    no replicated layout push can slip past it. *)
let ensure_replica cluster (kernel : kernel) (proc : process) : replica =
  match find_replica kernel proc.pid with
  | Some r -> r
  | None ->
      if kernel.kid = proc.origin then
        invalid_arg "ensure_replica: origin lost its replica"
      else begin
        let resp =
          Proto_util.call cluster ~src:kernel ~dst:proc.origin
            (fun ~ticket -> Vma_fetch_req { ticket; pid = proc.pid })
        in
        match resp with
        | Vma_fetch_resp { vmas; _ } ->
            let r = Process_model.create_replica kernel proc ~vma_proto:vmas in
            r.distributed <- true;
            Process_model.prime_dummy_pool cluster r;
            r
        | _ -> assert false
      end

(** Target-side handler: actually build the thread. *)
let handle_thread_create cluster (kernel : kernel) ~src ~cause ~ticket ~pid
    ~new_tid ~vma_proto =
  let sp =
    sp_begin cluster ~cause ~tid:new_tid ~kernel:kernel.kid
      (Obs.Span.Custom "thread_import")
  in
  let proc = proc_exn cluster pid in
  let r =
    match (find_replica kernel pid, vma_proto) with
    | Some r, _ -> r
    | None, Some proto ->
        let r = Process_model.create_replica kernel proc ~vma_proto:proto in
        r.distributed <- true;
        Process_model.prime_dummy_pool cluster r;
        r
    | None, None -> ensure_replica cluster kernel proc
  in
  let task =
    Process_model.make_task cluster kernel r ~tid:new_tid
      ~ctx:(new_context cluster)
  in
  K.Task.set_state task K.Task.Ready;
  sp_end cluster sp;
  send ?span:sp cluster ~src:kernel.kid ~dst:src (Thread_create_ack { ticket })

(** Origin-side spawn coordination: allocate the tid and the stack, update
    membership, drive the target, return the tid. [?cause] is the message
    id of the [Thread_spawn_req] that triggered a remote-requester spawn. *)
let origin_spawn ?cause cluster (origin : kernel) (proc : process) ~target :
    tid =
  m_incr cluster ~kernel:target "threads.spawned";
  if target = origin.kid then
    (create_local cluster origin (replica_exn origin proc.pid)).K.Task.tid
  else begin
    let sp =
      sp_begin ?cause cluster ~kernel:origin.kid Obs.Span.Thread_group_create
    in
    alloc_stack cluster origin proc;
    let tid = K.Ids.next origin.tid_alloc in
    (* Membership and the optional snapshot are decided under the mm lock,
       mirroring handle_vma_fetch. *)
    let vma_proto =
      Hw.Spinlock.with_lock origin.mm_lock ~core:origin.home_core (fun () ->
          let already = List.mem target proc.member_kernels in
          Process_model.add_member_kernel proc target;
          Process_model.mark_distributed proc cluster;
          if already then None
          else
            Some (K.Vma.vmas (replica_exn origin proc.pid).vmas))
    in
    trace cluster ~cat:"spawn" "origin k%d creating tid %d on k%d"
      origin.kid tid target;
    (match
       Proto_util.call ?span:sp cluster ~src:origin ~dst:target
         (fun ~ticket ->
           Thread_create_req { ticket; pid = proc.pid; new_tid = tid; vma_proto })
     with
    | Thread_create_ack _ -> ()
    | _ -> assert false);
    sp_end cluster sp;
    tid
  end

(** Origin-side message handler for remote spawn requests. *)
let handle_thread_spawn cluster (kernel : kernel) ~src ~cause ~ticket ~pid
    ~target =
  let proc = proc_exn cluster pid in
  let tid = origin_spawn ~cause cluster kernel proc ~target in
  send cluster ~src:kernel.kid ~dst:src (Thread_spawn_resp { ticket; tid })

(** Application-facing spawn: create a thread of [pid] on [target] from a
    thread running on [kernel]/[core]. All spawns are coordinated by the
    origin (it owns the tid space, the membership list and the master
    layout for the stack allocation); spawns issued at the origin for the
    origin take the message-free path. Returns the new tid. *)
let spawn cluster (kernel : kernel) ~core ~pid ~target : tid =
  let r = replica_exn kernel pid in
  let proc = r.proc in
  if kernel.kid = proc.origin then origin_spawn cluster kernel proc ~target
  else begin
    Proto_util.kernel_work cluster
      (params cluster).Hw.Params.syscall_overhead;
    match
      Proto_util.call_from cluster ~src:kernel ~src_core:core
        ~dst:proc.origin (fun ~ticket ->
          Thread_spawn_req { ticket; pid; target })
    with
    | Thread_spawn_resp { tid; _ } -> tid
    | _ -> assert false
  end

(** Thread exit: tear down local membership and route the live-count
    decrement to the origin (which owns it). The last exit, observed at
    the origin, wakes the group's exit waiters. *)
let exit_thread cluster (kernel : kernel) (task : K.Task.t) =
  Proto_util.kernel_work cluster
    (params cluster).Hw.Params.syscall_overhead;
  K.Task.set_state task (K.Task.Exited 0);
  m_incr cluster ~kernel:kernel.kid "threads.exited";
  let proc = (replica_exn kernel task.K.Task.tgid).proc in
  Process_model.remove_member_local kernel task;
  if kernel.kid = proc.origin then
    Process_model.note_thread_exit cluster kernel proc
  else
    send cluster ~src:kernel.kid ~dst:proc.origin
      (Thread_exit_notify { pid = proc.pid })

(** Origin-side handler for remote exits. *)
let handle_thread_exit_notify cluster (kernel : kernel) ~pid =
  Proto_util.kernel_work cluster (Sim.Time.ns 200);
  Process_model.note_thread_exit cluster kernel (proc_exn cluster pid)

(* ------------------------------------------------------------------ *)
(* exit_group: terminate every member of the group on every kernel.    *)
(* ------------------------------------------------------------------ *)

(** Member-kernel handler: mark every local member exited and drop it.
    Parked fibers observe the kill at their next API operation. *)
let handle_exit_group_cmd cluster (kernel : kernel) ~src ~pid ~ack_ticket =
  Proto_util.kernel_work cluster (Sim.Time.us 1);
  (match find_replica kernel pid with
  | None -> ()
  | Some r ->
      List.iter
        (fun (t : K.Task.t) ->
          K.Task.set_state t (K.Task.Exited 137);
          Hashtbl.remove kernel.tasks t.K.Task.tid)
        r.members;
      r.members <- []);
  send cluster ~src:kernel.kid ~dst:src (Vma_ack { ticket = ack_ticket })

let origin_exit_group cluster (origin : kernel) (proc : process) =
  trace cluster ~cat:"exit" "exit_group pid %d (%d members)" proc.pid
    proc.live_threads;
  (* Terminate local members first, then every member kernel, then
     publish the death of the group. *)
  (match find_replica origin proc.pid with
  | None -> ()
  | Some r ->
      List.iter
        (fun (t : K.Task.t) ->
          K.Task.set_state t (K.Task.Exited 137);
          Hashtbl.remove origin.tasks t.K.Task.tid)
        r.members;
      r.members <- []);
  Proto_util.broadcast_and_wait cluster ~src:origin
    ~targets:(List.filter (fun k -> k <> origin.kid) proc.member_kernels)
    ~make:(fun ~ack_ticket -> Exit_group_cmd { pid = proc.pid; ack_ticket });
  proc.live_threads <- 0;
  ignore (Sim.Waitq.wake_all proc.exit_waiters ());
  if cluster.opts.reap_on_exit then Process_model.reap cluster origin proc

let handle_exit_group_req cluster (kernel : kernel) ~src ~ticket ~pid =
  origin_exit_group cluster kernel (proc_exn cluster pid);
  send cluster ~src:kernel.kid ~dst:src (Exit_group_resp { ticket })

(** Application-facing exit_group, callable from any member. *)
let exit_group cluster (kernel : kernel) ~core ~pid =
  Proto_util.kernel_work cluster
    (params cluster).Hw.Params.syscall_overhead;
  let proc = proc_exn cluster pid in
  if kernel.kid = proc.origin then origin_exit_group cluster kernel proc
  else
    match
      Proto_util.call_from cluster ~src:kernel ~src_core:core
        ~dst:proc.origin (fun ~ticket -> Exit_group_req { ticket; pid })
    with
    | Exit_group_resp _ -> ()
    | _ -> assert false

(* ------------------------------------------------------------------ *)
(* kill: terminate one thread wherever it lives.                       *)
(* ------------------------------------------------------------------ *)

(** Handler on the kernel believed to host [tid]. *)
let handle_kill_req cluster (kernel : kernel) ~src ~ticket ~pid ~tid =
  Proto_util.kernel_work cluster (Sim.Time.ns 500);
  let found =
    match Hashtbl.find_opt kernel.tasks tid with
    | Some task when task.K.Task.tgid = pid ->
        K.Task.set_state task (K.Task.Exited 137);
        Process_model.remove_member_local kernel task;
        let proc = proc_exn cluster pid in
        if kernel.kid = proc.origin then
          Process_model.note_thread_exit cluster kernel proc
        else
          send cluster ~src:kernel.kid ~dst:proc.origin
            (Thread_exit_notify { pid });
        true
    | Some _ | None -> false
  in
  send cluster ~src:kernel.kid ~dst:src (Kill_resp { ticket; found })

(** SIGKILL a thread by tid. Resolves the hosting kernel (pid-hash walk /
    origin forwarding in the real system) and delivers. Returns whether
    the thread was found alive. The victim's fiber observes the kill at
    its next API operation. *)
let kill cluster (kernel : kernel) ~core ~pid ~tid : bool =
  Proto_util.kernel_work cluster
    (params cluster).Hw.Params.syscall_overhead;
  match Ssi_locate.locate cluster ~tid with
  | None -> false
  | Some host when host = kernel.kid -> (
      match Hashtbl.find_opt kernel.tasks tid with
      | Some task when task.K.Task.tgid = pid ->
          K.Task.set_state task (K.Task.Exited 137);
          Process_model.remove_member_local kernel task;
          let proc = proc_exn cluster pid in
          if kernel.kid = proc.origin then
            Process_model.note_thread_exit cluster kernel proc
          else
            send cluster ~src:kernel.kid ~dst:proc.origin
              (Thread_exit_notify { pid });
          true
      | Some _ | None -> false)
  | Some host -> (
      match
        Proto_util.call_from cluster ~src:kernel ~src_core:core ~dst:host
          (fun ~ticket -> Kill_req { ticket; pid; tid })
      with
      | Kill_resp { found; _ } -> found
      | _ -> assert false)
