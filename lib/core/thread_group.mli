(** Distributed thread groups: creation, exit, group-wide termination.

    Remote creation is mediated by the group's origin kernel so that
    membership, tid allocation, stack allocation (in the master layout)
    and replica creation stay ordered:

    requester -> origin [Thread_spawn_req] -> target [Thread_create_req]
    -> origin [Thread_create_ack] -> requester [Thread_spawn_resp]. *)

open Types

val stack_len : int
(** Modelled per-thread stack size (bytes; stacks live in the shared
    layout and, like glibc's, are cached rather than unmapped on exit). *)

val ensure_replica : cluster -> kernel -> process -> replica
(** Get (or lazily create, via an origin layout fetch) this kernel's
    replica of [process]. The fetch enrols the kernel in the membership
    before the snapshot, so snapshot + later pushes equal the truth. *)

val spawn :
  cluster -> kernel -> core:Hw.Topology.core -> pid:pid -> target:int -> tid
(** Create a thread of [pid] on kernel [target], called from a thread on
    [kernel]/[core]. Returns the new tid once the task exists. *)

val exit_thread : cluster -> kernel -> Kernelmodel.Task.t -> unit
(** Normal thread exit: local teardown plus the origin-owned live-count
    decrement (direct at the origin, [Thread_exit_notify] otherwise). *)

val exit_group : cluster -> kernel -> core:Hw.Topology.core -> pid:pid -> unit
(** Terminate every member on every kernel; returns once all member
    kernels acked. Parked victims observe death at their next operation. *)

val kill :
  cluster -> kernel -> core:Hw.Topology.core -> pid:pid -> tid:tid -> bool
(** SIGKILL one member wherever it lives; [false] if not found alive. *)

(** {1 Message handlers} (wired by [Cluster.dispatch]) *)

val handle_thread_spawn :
  cluster ->
  kernel ->
  src:int ->
  cause:int ->
  ticket:int ->
  pid:pid ->
  target:int ->
  unit

val handle_thread_create :
  cluster ->
  kernel ->
  src:int ->
  cause:int ->
  ticket:int ->
  pid:pid ->
  new_tid:tid ->
  vma_proto:Kernelmodel.Vma.vma list option ->
  unit

val handle_thread_exit_notify : cluster -> kernel -> pid:pid -> unit
val handle_exit_group_req :
  cluster -> kernel -> src:int -> ticket:int -> pid:pid -> unit

val handle_exit_group_cmd :
  cluster -> kernel -> src:int -> pid:pid -> ack_ticket:int -> unit

val handle_kill_req :
  cluster -> kernel -> src:int -> ticket:int -> pid:pid -> tid:tid -> unit
