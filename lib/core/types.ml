(** Shared state and wire protocol of the replicated-kernel OS.

    This module defines the records threaded through every Popcorn
    subsystem: the cluster, the per-kernel state, distributed processes and
    their per-kernel replicas, and the inter-kernel message payloads.

    Discipline note: because the whole OS is simulated in one OCaml process,
    every kernel could physically reach every record. The code keeps the
    replicated-kernel structure honest by convention, which the tests check
    behaviourally: master-process state ([directory], [dfutex_queues],
    authoritative membership) is only touched by handlers running on the
    origin kernel, and all cross-kernel interaction goes through
    [Msg.Transport]. *)

open Sim

type pid = Kernelmodel.Ids.pid
type tid = Kernelmodel.Ids.tid

(** Directory entry for one virtual page of a distributed process, kept at
    the kernel the active coherence protocol homes the page on (the origin
    under [Origin_home], a hash of the vpn under [Sharded_dir]).
    Re-exported from {!Coherence.Dir} so tests and tools can keep using
    [Types.page_loc]. *)
type page_loc = Coherence.Dir.entry = {
  mutable writer : int option;  (** kernel with the sole writable copy. *)
  mutable readers : int list;  (** kernels holding read-only replicas. *)
}

(** A futex waiter parked on the origin kernel's global queue. *)
type dfutex_waiter = { waiter_kernel : int; wake_ticket : int }

(** Master record of a distributed process ("thread group" in the paper).
    Created at the origin kernel; remote kernels get {!replica}s. *)
type process = {
  pid : pid;
  origin : int;
  mutable member_kernels : int list;  (** kernels hosting live members. *)
  mutable live_threads : int;
  directory : (int, page_loc) Hashtbl.t;
      (** vpn -> location; each entry is only touched by handlers running
          on the page's home kernel (protocol-dependent). *)
  page_version : (int, int) Hashtbl.t;
      (** vpn -> logical content version; bumped on every write so tests can
          check read-after-write coherence across kernels. *)
  dfutex_queues : (int, dfutex_waiter Queue.t) Hashtbl.t;
      (** futex addr -> global wait queue (origin only). *)
  fault_locks : (int, Mutex.t) Hashtbl.t;
      (** vpn -> home-side per-page fault serialisation lock. *)
  exit_waiters : unit Waitq.t;  (** fibers in waitpid-like waits. *)
}

(** Per-kernel replica of a process: local VMA tree, local page table, local
    members, and the pool of pre-spawned dummy threads that adopt incoming
    migrated contexts (the paper's fast thread-import path). *)
type replica = {
  proc : process;
  vmas : Kernelmodel.Vma.t;
  pt : Kernelmodel.Page_table.t;
  page_data : (int, int) Hashtbl.t;  (** vpn -> content version held here. *)
  mutable members : Kernelmodel.Task.t list;
  mutable dummy_pool : int;  (** available pre-spawned dummy threads. *)
  mutable distributed : bool;
      (** this kernel's view: does the group span kernels? enables the
          local fast paths when false. *)
}

(** Wire protocol between kernels. Tickets refer to {!Msg.Rpc} tables on the
    sending kernel. Sizes charged on the wire are computed in [Wire]. *)
type payload =
  (* --- thread groups & migration --- *)
  | Thread_spawn_req of { ticket : int; pid : pid; target : int }
      (** requester -> origin: create a thread of [pid] on kernel
          [target]; the origin mediates so membership stays consistent. *)
  | Thread_spawn_resp of { ticket : int; tid : tid }
  | Thread_create_req of {
      ticket : int;
      pid : pid;
      new_tid : tid;
      vma_proto : Kernelmodel.Vma.vma list option;
          (** layout snapshot when the destination has no replica yet. *)
    }
  | Thread_create_ack of { ticket : int }
  | Migrate_req of {
      ticket : int;
      pid : pid;
      task : Kernelmodel.Task.t;
          (** simulation identity of the migrating thread; on the wire this
              is the tid + saved context (sized from [task.ctx]). *)
    }
  | Migrate_ack of { ticket : int; import_ns : int }
      (** [import_ns]: destination-side import time, reported back for the
          migration cost breakdown. *)
  | Migrate_cancel of { pid : pid; tid : tid }
      (** origin -> destination, best-effort: the origin gave up on a
          migration (retries exhausted) and is re-animating the thread
          locally; revoke the import if one happened (its ack was lost). *)
  | Group_exit_notify of { pid : pid; from_kernel : int }
  | Thread_exit_notify of { pid : pid }
      (** any kernel -> origin: one of my local members of [pid] exited;
          the origin owns the live-thread count. *)
  | Exit_group_req of { ticket : int; pid : pid }
      (** requester -> origin: kill the whole thread group. *)
  | Exit_group_resp of { ticket : int }
  | Exit_group_cmd of { pid : pid; ack_ticket : int }
      (** origin -> member kernels: terminate every local member. *)
  | Kill_req of { ticket : int; pid : pid; tid : tid }
      (** SIGKILL-style: sent to the kernel hosting [tid]. *)
  | Kill_resp of { ticket : int; found : bool }
  (* --- address space consistency --- *)
  | Mmap_req of { ticket : int; pid : pid; len : int; prot : Kernelmodel.Vma.prot }
  | Mmap_resp of { ticket : int; result : (Kernelmodel.Vma.vma, string) result }
  | Munmap_req of { ticket : int; pid : pid; start : int; len : int }
  | Munmap_resp of { ticket : int; result : (unit, string) result }
  | Mprotect_req of {
      ticket : int;
      pid : pid;
      start : int;
      len : int;
      prot : Kernelmodel.Vma.prot;
    }
  | Mprotect_resp of { ticket : int; result : (unit, string) result }
  | Vma_remove of { pid : pid; start : int; len : int; ack_ticket : int }
  | Vma_protect of {
      pid : pid;
      start : int;
      len : int;
      prot : Kernelmodel.Vma.prot;
      ack_ticket : int;
    }
  | Vma_ack of { ticket : int }
  | Vma_fetch_req of { ticket : int; pid : pid }
  | Vma_fetch_resp of { ticket : int; vmas : Kernelmodel.Vma.vma list }
  | Vma_lookup_req of { ticket : int; pid : pid; addr : int }
      (** lazy VMA replication: a kernel whose replica has no VMA covering
          a faulting address asks the origin before declaring a segfault. *)
  | Vma_lookup_resp of { ticket : int; vma : Kernelmodel.Vma.vma option }
  (* --- page coherence --- *)
  | Coh of Coherence.Wire.t
      (** the active coherence protocol's vocabulary (fault/pull/
          invalidate/downgrade/drop-range and their responses); requests
          route to the protocol's handler, responses complete the ticket
          named by {!Coherence.Wire.resp_ticket}. *)
  (* --- distributed futex --- *)
  | Futex_wait_req of { pid : pid; addr : int; waiter : dfutex_waiter }
  | Futex_wait_cancel of { pid : pid; addr : int; wake_ticket : int }
  | Futex_wake_req of { ticket : int; pid : pid; addr : int; count : int }
  | Futex_wake_resp of { ticket : int; woken : int }
  | Futex_grant of { wake_ticket : int }
  (* --- VFS / remote syscalls --- *)
  | Vfs_req of { ticket : int; pid : pid; op : vfs_op }
  | Vfs_resp of {
      ticket : int;
      result : (int, string) result;
          (** fd for open, byte count for read/write, 0 for close. *)
      data_bytes : int;  (** read payload travelling with the response. *)
    }
  (* --- single-system image / balancing --- *)
  | Task_list_req of { ticket : int }
  | Task_list_resp of { ticket : int; tids : (tid * pid) list }
  | Load_query of { ticket : int }
      (** balancer heartbeat: how many threads are assigned to your cores? *)
  | Load_info of { ticket : int; load : int }
  | Work_req of { ticket : int; cost_ns : int }
      (** dispatcher -> worker kernel: serve one request costing [cost_ns]
          of CPU on one of your cores (see {!Placement}). *)
  | Work_resp of { ticket : int }

and vfs_op =
  | Vfs_open of string
  | Vfs_read of { fd : int; len : int }
  | Vfs_write of { fd : int; len : int }
  | Vfs_seek of { fd : int; pos : int }
  | Vfs_close of int

(** Instruction-set architecture of a kernel. The ICDCS'15 system is
    homogeneous x86; heterogeneous-ISA migration (the project's published
    follow-on direction) is modelled by a context-transformation cost when
    a thread crosses an ISA boundary. *)
type arch = X86_64 | Arm64

(** Server-side VFS state (lives on the device-owning kernel, kernel 0):
    a file table plus per-process fd tables with server-side cursors. *)
type vfs_file = { mutable size : int; mutable version : int }

type vfs_fd = { file : vfs_file; mutable pos : int }

type vfs_state = {
  files : (string, vfs_file) Hashtbl.t;
  fds : (pid * int, vfs_fd) Hashtbl.t;
  mutable next_fd : int;
  mutable vfs_ops : int;
}

(** Balancer advice for one thread: migrate to [hint_dst]. Stamped with its
    creation time so unconsumed hints can be expired ({!Balancer}). *)
type migrate_hint = { hint_dst : int; hint_at : Time.t }

(** One kernel of the replicated-kernel OS. *)
type kernel = {
  kid : int;
  arch : arch;
  cores : Hw.Topology.core list;
  home_core : Hw.Topology.core;
  sched : Kernelmodel.Sched.t;
  pid_alloc : Kernelmodel.Ids.allocator;
  tid_alloc : Kernelmodel.Ids.allocator;
  replicas : (pid, replica) Hashtbl.t;
  local_futex : Kernelmodel.Futex.t;  (** fast path for local-only groups. *)
  mm_lock : Hw.Spinlock.t;  (** per-kernel mm lock (locally contended). *)
  rpc : payload Msg.Rpc.t;  (** response matching for this kernel's calls. *)
  tasks : (tid, Kernelmodel.Task.t) Hashtbl.t;  (** tasks hosted here. *)
  migrate_hints : (tid, migrate_hint) Hashtbl.t;
      (** balancer advice: tid -> suggested destination kernel; consumed
          by the thread at its next cooperative migration point, or expired
          by the balancer if the thread never reaches one. *)
}

type cluster = {
  machine : Hw.Machine.t;
  kernels : kernel array;
  fabric : payload Msg.Transport.t;
  procs : (pid, process) Hashtbl.t;  (** pid -> master record (at origin). *)
  stride : int;  (** number of kernels; pid/tid partition stride. *)
  opts : options;
  coh_stats : Coherence.Stats.t;
      (** always-on coherence traffic counters (zero simulated cost);
          what R3 reads to compare directory load per protocol. *)
  vfs : vfs_state;  (** served by kernel 0 (the device owner). *)
  mutable tracer : Trace.t option;
      (** protocol-event trace, when enabled ([Cluster.enable_tracing]). *)
}

and options = {
  reap_on_exit : bool;
      (** when the last thread exits, tear down replicas and free frames
          cluster-wide (true OS behaviour). Off by default so post-mortem
          inspection — which the invariant tests rely on — sees the final
          protocol state. *)
  arch_of_kernel : int -> arch;
      (** ISA per kernel (default: all x86-64). Heterogeneous clusters pay
          a context transformation on cross-ISA migration. *)
  migration_prefetch : int;
      (** after a migration, eagerly re-fault up to this many of the
          thread's recently-touched pages at the destination (0 = purely
          on-demand, the paper's default). *)
  use_dummy_pool : bool;
      (** pre-spawn dummy threads at remote kernels (paper's optimisation);
          when false every import pays full task-construction cost. *)
  dummy_pool_size : int;
  read_replication : bool;
      (** allow read-only page replicas; when false every remote fault
          migrates the page exclusively (ablation). *)
  coherence : Coherence.Protocol.t;
      (** which page-coherence protocol the cluster runs: the paper's
          origin-home directory (default) or the vpn-sharded directory
          (see {!Coherence}). *)
  migration_retry : Msg.Rpc.retry_policy option;
      (** when set, migration requests are retransmitted under this policy
          instead of waiting forever, and a migration that exhausts its
          retries falls back to re-animating the thread on the origin
          kernel (graceful degradation under an unreliable fabric). [None]
          (the default) preserves the fault-free blocking behaviour. *)
}

let default_options =
  {
    reap_on_exit = false;
    arch_of_kernel = (fun _ -> X86_64);
    migration_prefetch = 0;
    use_dummy_pool = true;
    dummy_pool_size = 8;
    read_replication = true;
    coherence = Coherence.Protocol.Origin_home;
    migration_retry = None;
  }

let eng cluster = cluster.machine.Hw.Machine.eng
let params cluster = cluster.machine.Hw.Machine.params
let kernel_of cluster kid = cluster.kernels.(kid)
let nkernels cluster = Array.length cluster.kernels

let find_replica kernel pid = Hashtbl.find_opt kernel.replicas pid

let replica_exn kernel pid =
  match find_replica kernel pid with
  | Some r -> r
  | None ->
      invalid_arg
        (Printf.sprintf "kernel %d has no replica of pid %d" kernel.kid pid)

let proc_exn cluster pid =
  match Hashtbl.find_opt cluster.procs pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "no process with pid %d" pid)

(** Wire sizes (bytes) of each message, for transport cost modelling. *)
module Wire = struct
  let header = 48
  let vma_bytes = 40

  let vma_list = function
    | None -> 0
    | Some l -> List.length l * vma_bytes

  let size = function
    | Thread_spawn_req _ -> header + 16
    | Thread_spawn_resp _ -> header + 8
    | Thread_create_req { vma_proto; _ } -> header + 64 + vma_list vma_proto
    | Thread_create_ack _ -> header
    | Migrate_req { task; _ } ->
        header + Kernelmodel.Context.size_bytes task.Kernelmodel.Task.ctx
    | Migrate_ack _ -> header + 8
    | Migrate_cancel _ -> header + 16
    | Group_exit_notify _ -> header
    | Thread_exit_notify _ -> header
    | Exit_group_req _ | Exit_group_resp _ | Exit_group_cmd _ -> header + 8
    | Kill_req _ -> header + 16
    | Kill_resp _ -> header + 8
    | Mmap_req _ | Munmap_req _ | Mprotect_req _ -> header + 32
    | Mmap_resp _ | Munmap_resp _ | Mprotect_resp _ -> header + vma_bytes
    | Vma_remove _ | Vma_protect _ -> header + vma_bytes
    | Vma_ack _ -> header
    | Vma_fetch_req _ -> header
    | Vma_fetch_resp { vmas; _ } -> header + vma_list (Some vmas)
    | Vma_lookup_req _ -> header + 8
    | Vma_lookup_resp _ -> header + vma_bytes
    | Coh w -> header + Coherence.Wire.size w
    | Futex_wait_req _ | Futex_wait_cancel _ | Futex_wake_req _
    | Futex_wake_resp _ | Futex_grant _ ->
        header + 24
    | Task_list_req _ -> header
    | Task_list_resp { tids; _ } -> header + (List.length tids * 8)
    | Load_query _ -> header
    | Load_info _ -> header + 8
    | Work_req _ -> header + 16
    | Work_resp _ -> header + 8
    | Vfs_req { op; _ } -> (
        header
        +
        match op with
        | Vfs_open path -> String.length path
        | Vfs_read _ -> 16
        | Vfs_write { len; _ } -> 16 + len
        | Vfs_seek _ -> 16
        | Vfs_close _ -> 8)
    | Vfs_resp { data_bytes; _ } -> header + 8 + data_bytes
end

(** Emit a protocol trace event (cheap no-op unless tracing is enabled). *)
let trace cluster ~cat fmt =
  match cluster.tracer with
  | None -> Printf.ikfprintf (fun _ -> ()) () fmt
  | Some tr ->
      Printf.ksprintf
        (fun msg ->
          Trace.emit tr ~at:(Engine.now cluster.machine.Hw.Machine.eng) ~cat
            msg)
        fmt

(** Metric helpers: route to the machine's registry when one is attached
    ([Cluster.observe]); free no-ops otherwise. *)
let m_incr cluster ?kernel name = Hw.Machine.metric_incr cluster.machine ?kernel name
let m_add cluster ?kernel name n = Hw.Machine.metric_add cluster.machine ?kernel name n

let m_observe cluster ?kernel name x =
  Hw.Machine.metric_observe cluster.machine ?kernel name x

(** Span helpers: open/close a protocol-phase span at the current simulated
    time when a recorder is attached; [None] (and no cost) otherwise.
    [?cause] is the id of the delivered message this span handles
    ({!Msg.Transport.delivery}); it records the message -> span edge of the
    cross-kernel happens-before DAG ({!Obs.Causal}). *)
let sp_begin cluster ?parent ?cause ?tid ~kernel kind =
  match cluster.machine.Hw.Machine.spans with
  | None -> None
  | Some rec_ ->
      let parent = Option.map (fun (p : Obs.Span.span) -> p.Obs.Span.id) parent in
      let sp =
        Obs.Span.start rec_ ?parent ?tid ~kernel
          ~at:(Engine.now cluster.machine.Hw.Machine.eng) kind
      in
      (match cause with
      | Some id ->
          Hw.Machine.causal_link cluster.machine ~id ~span:sp.Obs.Span.id
      | None -> ());
      Some sp

let sp_end cluster sp =
  match sp with
  | None -> ()
  | Some sp ->
      Obs.Span.finish sp ~at:(Engine.now cluster.machine.Hw.Machine.eng)

let pp_arch fmt = function
  | X86_64 -> Format.pp_print_string fmt "x86_64"
  | Arm64 -> Format.pp_print_string fmt "arm64"

(** Send helpers: every cross-kernel interaction funnels through these.
    [?span] stamps the message with the protocol span it is sent from, so
    the causal log can chain origin spans to the destination's handler
    spans across the wire. *)
let span_id = function
  | None -> None
  | Some (s : Obs.Span.span) -> Some s.Obs.Span.id

let send ?span cluster ~src ~dst payload =
  Msg.Transport.send cluster.fabric ?from_span:(span_id span) ~src ~dst
    ~bytes:(Wire.size payload) payload

let send_from ?span cluster ~src ~src_core ~dst payload =
  Msg.Transport.send_from_core cluster.fabric ?from_span:(span_id span) ~src
    ~src_core ~dst ~bytes:(Wire.size payload) payload
