(** A1 — Ablations of the design choices.

    Each row disables one mechanism the paper's design relies on and
    measures the operation it protects:

    - dummy-thread pool  -> remote thread-creation latency
    - read replication   -> multi-reader hot-page throughput
    - migration prefetch -> migration cost vs post-migration fault cost

    These back the DESIGN.md discussion of why the mechanisms exist. *)

open Popcorn
module K = Kernelmodel

let page = 4096

(* Remote create latency with/without the dummy pool. *)
let remote_create_latency ctx ~use_pool =
  let opts = { Types.default_options with Types.use_dummy_pool = use_pool } in
  let result = ref 0 in
  ignore
    (Common.run_popcorn ctx ~opts (fun cluster th ->
         (* Warm the replica so only task acquisition differs. *)
         ignore (Api.spawn th ~target:8 (fun c -> Api.compute c (Sim.Time.us 1)));
         Api.compute th (Sim.Time.us 100);
         let eng = Types.eng cluster in
         let t0 = Sim.Engine.now eng in
         ignore (Api.spawn th ~target:8 (fun c -> Api.compute c (Sim.Time.us 1)));
         result := Sim.Engine.now eng - t0));
  float_of_int !result

(* N kernels re-reading one hot page after each origin write. With
   replication each reader keeps a copy; without, the page bounces
   exclusively between readers. *)
let hot_page_read_time ctx ~replication =
  let opts =
    { Types.default_options with Types.read_replication = replication }
  in
  let result = ref 0 in
  ignore
    (Common.run_popcorn ctx ~opts (fun cluster th ->
         let eng = Types.eng cluster in
         let vma =
           match Api.mmap th ~len:page ~prot:K.Vma.prot_rw with
           | Ok v -> v
           | Error e -> failwith e
         in
         let addr = vma.K.Vma.start in
         (match Api.write th ~addr with Ok () -> () | Error e -> failwith e);
         let readers = 6 in
         let latch = Workloads.Latch.create eng readers in
         let t0 = Sim.Engine.now eng in
         for k = 1 to readers do
           ignore
             (Api.spawn th ~target:k (fun child ->
                  for _ = 1 to 10 do
                    match Api.read child ~addr with
                    | Ok _ -> ()
                    | Error e -> failwith e
                  done;
                  Workloads.Latch.arrive latch))
         done;
         Workloads.Latch.wait latch;
         result := Sim.Engine.now eng - t0));
  float_of_int !result

(* Migration + post-migration working-set touch, with/without prefetch. *)
let migration_and_touch ctx ~prefetch =
  let opts =
    { Types.default_options with Types.migration_prefetch = prefetch }
  in
  let mig = ref 0 and touch = ref 0 in
  ignore
    (Common.run_popcorn ctx ~opts (fun cluster th ->
         let eng = Types.eng cluster in
         let vma =
           match Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw with
           | Ok v -> v
           | Error e -> failwith e
         in
         for i = 0 to 7 do
           match Api.write th ~addr:(vma.K.Vma.start + (i * page)) with
           | Ok () -> ()
           | Error e -> failwith e
         done;
         let b = Api.migrate th ~dst:8 in
         mig := b.Migration.total_ns;
         let t0 = Sim.Engine.now eng in
         for i = 0 to 7 do
           match Api.read th ~addr:(vma.K.Vma.start + (i * page)) with
           | Ok _ -> ()
           | Error e -> failwith e
         done;
         touch := Sim.Engine.now eng - t0));
  (float_of_int !mig, float_of_int !touch)

let run (ctx : Run_ctx.t) =
  let remote_create_latency = remote_create_latency ctx
  and hot_page_read_time = hot_page_read_time ctx
  and migration_and_touch = migration_and_touch ctx in
  let t =
    Stats.Table.create ~title:"A1: design-choice ablations"
      ~columns:[ "mechanism"; "metric"; "enabled"; "disabled"; "ratio" ]
  in
  let row mech metric on off =
    Stats.Table.add_row t
      [
        mech;
        metric;
        Stats.Table.fmt_ns on;
        Stats.Table.fmt_ns off;
        Printf.sprintf "%.2fx" (off /. on);
      ]
  in
  row "dummy thread pool" "remote create latency"
    (remote_create_latency ~use_pool:true)
    (remote_create_latency ~use_pool:false);
  row "read replication" "6 readers x 10 reads of hot page"
    (hot_page_read_time ~replication:true)
    (hot_page_read_time ~replication:false);
  let mig_on, touch_on = migration_and_touch ~prefetch:8 in
  let mig_off, touch_off = migration_and_touch ~prefetch:0 in
  Stats.Table.add_row t
    [
      "migration prefetch (8 pages)";
      "migration latency";
      Stats.Table.fmt_ns mig_on;
      Stats.Table.fmt_ns mig_off;
      Printf.sprintf "%.2fx" (mig_off /. mig_on);
    ];
  Stats.Table.add_row t
    [
      "migration prefetch (8 pages)";
      "post-migration 8-page touch";
      Stats.Table.fmt_ns touch_on;
      Stats.Table.fmt_ns touch_off;
      Printf.sprintf "%.2fx" (touch_off /. touch_on);
    ];
  [ t ]
