(** A2 — Kernel granularity sweep.

    How should a 64-core machine be partitioned? Few big kernels keep more
    operations message-free but re-grow intra-kernel lock contention; many
    small kernels eliminate shared structures but push more operations onto
    the messaging layer and the origin. We sweep 1..64 kernels at fixed
    machine size on the mm-bound and sync-bound application classes with 64
    workers — the partitioning trade the replicated-kernel design exposes. *)

module P = Workloads.Loads.Make (Workloads.Adapters.Popcorn_os)

let workers = 64
let iters ~quick = if quick then 20 else 60

let run_app ctx ~kernels ~quick app =
  let i = iters ~quick in
  Common.run_popcorn ctx ~kernels (fun cluster th ->
      let eng = Popcorn.Types.eng cluster in
      match app with
      | `Mm -> P.app_mm_bound eng th ~workers ~iters:i
      | `Sync -> P.app_sync_bound eng th ~workers ~iters:i
      | `Cpu -> P.app_cpu_bound eng th ~workers ~iters:i)

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let t =
    Stats.Table.create
      ~title:
        "A2: kernel granularity on a 64-core machine (64 workers, work \
         items/s)"
      ~columns:[ "kernels x cores"; "cpu-bound"; "mm-bound"; "sync-bound" ]
  in
  let configs = if quick then [ 1; 16 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  List.iter
    (fun kernels ->
      let work = workers * iters ~quick in
      let rate app =
        Stats.Table.fmt_rate
          (Common.ops_per_sec ~ops:work ~elapsed:(run_app ctx ~kernels ~quick app))
      in
      Stats.Table.add_row t
        [
          Printf.sprintf "%dx%d" kernels (64 / kernels);
          rate `Cpu;
          rate `Mm;
          rate `Sync;
        ])
    configs;
  [ t ]
