(** Shared scaffolding for the reproduction experiments.

    Every data point boots a fresh machine (64 cores: 4 sockets x 16, the
    class of box the paper evaluates on) and a fresh OS instance, runs the
    workload inside the simulation, and reports simulated time.

    All helpers take the run's [Run_ctx.t] explicitly — there is no ambient
    state here, so independent runs can execute on different [Domain]s. *)

open Sim

let sockets = 4
let cores_per_socket = 16
let total_cores = sockets * cores_per_socket

(** Popcorn kernel granularity for the scalability experiments: 16 kernels
    x 4 cores. (T1/F4 use smaller explicit configs.) *)
let default_kernels = 16

let machine (ctx : Run_ctx.t) ?seed () =
  let seed = Option.value seed ~default:ctx.Run_ctx.seed in
  let m =
    Hw.Machine.create ~seed ~evq:ctx.Run_ctx.evq ~sockets ~cores_per_socket ()
  in
  (match ctx.Run_ctx.sink with
  | None -> ()
  | Some s ->
      Hw.Machine.attach_obs m ~metrics:s.Obs.Sink.metrics
        ~spans:s.Obs.Sink.spans ~causal:s.Obs.Sink.causal ());
  (match ctx.Run_ctx.prof with
  | None -> ()
  | Some p -> Obs.Prof.attach p m.Hw.Machine.eng);
  (* Recorded so the run's total event count (events/sec) can be summed
     after the body finishes; engines are small once their queues drain. *)
  ctx.Run_ctx.engines <- m.Hw.Machine.eng :: ctx.Run_ctx.engines;
  m

(** Run [f cluster root_thread] as the main thread of a fresh process on a
    fresh Popcorn cluster; returns the simulated duration of [f]. *)
let run_popcorn (ctx : Run_ctx.t) ?seed ?opts ?(kernels = default_kernels) f :
    Time.t =
  let m = machine ctx ?seed () in
  (* Experiments that pin their own options keep full control; everything
     else inherits the run's coherence protocol (the --coherence flag). *)
  let opts =
    match opts with
    | Some o -> o
    | None ->
        {
          Popcorn.Types.default_options with
          Popcorn.Types.coherence = ctx.Run_ctx.coherence;
        }
  in
  let cluster =
    Popcorn.Cluster.boot ~opts m ~kernels
      ~cores_per_kernel:(total_cores / kernels)
  in
  (match ctx.Run_ctx.sink with
  | None -> ()
  | Some s ->
      (* The machine already has metrics+spans; route the cluster-level
         pieces (tracer, per-kernel rpc counters) too. *)
      Popcorn.Cluster.observe ~metrics:s.Obs.Sink.metrics
        ~tracer:s.Obs.Sink.trace cluster);
  let eng = m.Hw.Machine.eng in
  let elapsed = ref (-1) in
  Engine.spawn eng (fun () ->
      ignore
        (Popcorn.Api.start_process cluster ~origin:0 (fun th ->
             let t0 = Engine.now eng in
             f cluster th;
             elapsed := Time.sub (Engine.now eng) t0)));
  Engine.run eng;
  if !elapsed < 0 then failwith "run_popcorn: workload did not finish";
  !elapsed

(** Same shape for the SMP-Linux model. *)
let run_smp (ctx : Run_ctx.t) ?seed f : Time.t =
  let m = machine ctx ?seed () in
  let sys = Smp.Smp_os.boot m in
  let eng = m.Hw.Machine.eng in
  let elapsed = ref (-1) in
  Engine.spawn eng (fun () ->
      ignore
        (Smp.Smp_api.start_process sys (fun th ->
             let t0 = Engine.now eng in
             f sys th;
             elapsed := Time.sub (Engine.now eng) t0)));
  Engine.run eng;
  if !elapsed < 0 then failwith "run_smp: workload did not finish";
  !elapsed

(** Multikernel: [f sys ~on_done] must eventually call [on_done]; elapsed
    is measured from boot of the domain to [on_done]. *)
let run_mk (ctx : Run_ctx.t) ?seed f : Time.t =
  let m = machine ctx ?seed () in
  let sys = Multikernel.boot m in
  let eng = m.Hw.Machine.eng in
  let elapsed = ref (-1) in
  let t0 = ref 0 in
  Engine.spawn eng (fun () ->
      t0 := Engine.now eng;
      f sys ~on_done:(fun () -> elapsed := Time.sub (Engine.now eng) !t0));
  Engine.run eng;
  if !elapsed < 0 then failwith "run_mk: workload did not finish";
  !elapsed

let ops_per_sec ~ops ~elapsed =
  if elapsed <= 0 then 0.
  else float_of_int ops /. (float_of_int elapsed /. 1e9)

let ns f = float_of_int (f : Time.t)

(** Worker-count sweep used by the scalability figures. *)
let sweep (ctx : Run_ctx.t) =
  if ctx.Run_ctx.quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32; 64 ]
