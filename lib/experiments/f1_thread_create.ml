(** F1 — Thread-creation latency vs existing group size.

    Latency of creating one more member of a thread group that already has
    [m] members, for: SMP clone, Popcorn local clone, Popcorn remote create
    onto a kernel that already hosts the group ("warm"), and onto a kernel
    that must first build a replica ("cold"). Existing members are parked
    on futexes so they occupy no CPU. *)

open Sim

let park_addr i = 0x800000 + (i * 64)

(* Group of [m] parked members, then time one creation. *)
let popcorn_case ctx ~m ~mode : Time.t =
  let result = ref 0 in
  ignore
    (Common.run_popcorn ctx ~kernels:16 (fun _cluster th ->
         let open Popcorn in
         for i = 1 to m do
           (* Spread pre-existing members over the first 8 kernels. *)
           let target = match mode with `Local -> 0 | _ -> i mod 8 in
           ignore
             (Api.spawn th ~target (fun child ->
                  match Api.futex_wait child ~addr:(park_addr i) () with
                  | Api.Woken | Api.Timed_out -> ()))
         done;
         Api.compute th (Time.ms 1);
         (* Warm: kernel 1 already hosts members (i mod 8 = 1). Cold:
            kernel 15 was never touched. *)
         let target =
           match mode with `Local -> 0 | `Warm -> 1 | `Cold -> 15
         in
         let t0 = Engine.now (Types.eng th.Api.cluster) in
         ignore (Api.spawn th ~target (fun child -> Api.compute child (Time.us 1)));
         result := Time.sub (Engine.now (Types.eng th.Api.cluster)) t0;
         (* Unpark everyone so the process exits. *)
         for i = 1 to m do
           ignore (Api.futex_wake th ~addr:(park_addr i) ~count:1)
         done));
  !result

let smp_case ctx ~m : Time.t =
  let result = ref 0 in
  ignore
    (Common.run_smp ctx (fun sys th ->
         let open Smp in
         for i = 1 to m do
           ignore
             (Smp_api.spawn th (fun child ->
                  match Smp_api.futex_wait child ~addr:(park_addr i) () with
                  | Smp_api.Woken | Smp_api.Timed_out -> ()))
         done;
         Smp_api.compute th (Time.ms 1);
         let t0 = Engine.now (Smp_os.eng sys) in
         ignore (Smp_api.spawn th (fun child -> Smp_api.compute child (Time.us 1)));
         result := Time.sub (Engine.now (Smp_os.eng sys)) t0;
         for i = 1 to m do
           ignore (Smp_api.futex_wake th ~addr:(park_addr i) ~count:1)
         done));
  !result

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let popcorn_case = popcorn_case ctx and smp_case = smp_case ctx in
  let t =
    Stats.Table.create
      ~title:"F1: thread creation latency vs existing group size"
      ~columns:
        [
          "group size";
          "SMP clone";
          "Popcorn local";
          "Popcorn remote (warm)";
          "Popcorn remote (cold)";
        ]
  in
  let sizes = if quick then [ 1; 8 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  List.iter
    (fun m ->
      Stats.Table.add_row t
        [
          string_of_int m;
          Stats.Table.fmt_ns (Common.ns (smp_case ~m));
          Stats.Table.fmt_ns (Common.ns (popcorn_case ~m ~mode:`Local));
          Stats.Table.fmt_ns (Common.ns (popcorn_case ~m ~mode:`Warm));
          Stats.Table.fmt_ns (Common.ns (popcorn_case ~m ~mode:`Cold));
        ])
    sizes;
  [ t ]
