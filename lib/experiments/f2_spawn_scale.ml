(** F2 — Thread-creation throughput vs concurrent spawners.

    [n] threads of one group, spread over the machine, each create 50
    short-lived members as fast as they can. SMP serialises on the task
    list lock and mm counters; Popcorn partitions creation across kernels;
    the multikernel spawns dispatchers (its non-transparent equivalent). *)

module P = Workloads.Loads.Make (Workloads.Adapters.Popcorn_os)
module S = Workloads.Loads.Make (Workloads.Adapters.Smp_os)

let per_spawner = 50

let popcorn ctx n =
  Common.run_popcorn ctx (fun cluster th ->
      P.spawn_storm (Popcorn.Types.eng cluster) th ~spawners:n ~per_spawner)

let smp ctx n =
  Common.run_smp ctx (fun sys th ->
      S.spawn_storm (Smp.Smp_os.eng sys) th ~spawners:n ~per_spawner)

let mk ctx n =
  Common.run_mk ctx (fun sys ~on_done ->
      ignore
        (Workloads.Mk_workloads.spawn_storm sys
           sys.Multikernel.machine.Hw.Machine.eng ~cores:Common.total_cores
           ~spawners:n ~per_spawner ~on_done))

let run (ctx : Run_ctx.t) =
  let popcorn = popcorn ctx and smp = smp ctx and mk = mk ctx in
  let t =
    Stats.Table.create
      ~title:
        "F2: thread-creation throughput (creations/s) vs concurrent spawners"
      ~columns:[ "spawners"; "SMP Linux"; "Popcorn"; "Multikernel" ]
  in
  List.iter
    (fun n ->
      let ops = n * per_spawner in
      let rate f = Stats.Table.fmt_rate (Common.ops_per_sec ~ops ~elapsed:(f n)) in
      Stats.Table.add_row t
        [ string_of_int n; rate smp; rate popcorn; rate mk ])
    (Common.sweep ctx);
  [ t ]
