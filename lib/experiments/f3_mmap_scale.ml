(** F3 — Concurrent mmap/munmap throughput vs cores.

    [n] threads of one group each run map-touch-unmap cycles. SMP Linux
    serialises every cycle on the process's mmap_sem (plus TLB shootdown
    IPIs to all cores running the process); Popcorn serialises only at the
    origin's local lock with replica pushes overlapping. A single-kernel
    Popcorn configuration is included as an ablation: it shows the win
    comes from replication, not from other modelling differences. *)

module P = Workloads.Loads.Make (Workloads.Adapters.Popcorn_os)
module S = Workloads.Loads.Make (Workloads.Adapters.Smp_os)

let ops = 50
let pages = 4

let popcorn ctx ?kernels n =
  Common.run_popcorn ctx ?kernels (fun cluster th ->
      P.mmap_stress (Popcorn.Types.eng cluster) th ~workers:n ~ops ~pages)

let smp ctx n =
  Common.run_smp ctx (fun sys th ->
      S.mmap_stress (Smp.Smp_os.eng sys) th ~workers:n ~ops ~pages)

let run (ctx : Run_ctx.t) =
  let popcorn = popcorn ctx and smp = smp ctx in
  let t =
    Stats.Table.create
      ~title:"F3: mmap+touch+munmap cycles/s vs concurrent threads"
      ~columns:
        [ "threads"; "SMP Linux"; "Popcorn (16 kernels)"; "Popcorn (1 kernel)" ]
  in
  List.iter
    (fun n ->
      let total = n * ops in
      let rate f =
        Stats.Table.fmt_rate (Common.ops_per_sec ~ops:total ~elapsed:(f n))
      in
      Stats.Table.add_row t
        [
          string_of_int n;
          rate smp;
          rate (popcorn ~kernels:16);
          rate (popcorn ~kernels:1);
        ])
    (Common.sweep ctx);
  [ t ]
