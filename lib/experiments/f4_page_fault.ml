(** F4 — Page-fault service latency under the coherence protocol.

    Per-page latency for the fault classes the protocol distinguishes:
    local first touch, remote first touch (directory registration at the
    origin), remote read of dirty pages (downgrade + replicate), write
    upgrade (invalidate readers), and the invalidation cost as the reader
    set grows. SMP's local fault is the baseline row. *)

open Sim
open Popcorn

let pages = 64
let page = 4096

(* Time [walk] pages of a fresh mapping under [f]; returns per-page ns. *)
let per_page eng thunk =
  let t0 = Engine.now eng in
  thunk ();
  float_of_int (Time.sub (Engine.now eng) t0) /. float_of_int pages

let write_all th base =
  for i = 0 to pages - 1 do
    match Api.write th ~addr:(base + (i * page)) with
    | Ok () -> ()
    | Error e -> failwith e
  done

let read_all th base =
  for i = 0 to pages - 1 do
    match Api.read th ~addr:(base + (i * page)) with
    | Ok _ -> ()
    | Error e -> failwith e
  done

type results = {
  mutable local_touch : float;
  mutable remote_touch : float;
  mutable remote_read_dirty : float;
  mutable upgrade : float;
}

let popcorn_cases ctx ~protocol () =
  let r =
    { local_touch = 0.; remote_touch = 0.; remote_read_dirty = 0.; upgrade = 0. }
  in
  let opts =
    { Popcorn.Types.default_options with Popcorn.Types.coherence = protocol }
  in
  ignore
    (Common.run_popcorn ctx ~opts ~kernels:16 (fun cluster th ->
         let eng = Types.eng cluster in
         let map () =
           match Api.mmap th ~len:(pages * page) ~prot:Kernelmodel.Vma.prot_rw with
           | Ok v -> v.Kernelmodel.Vma.start
           | Error e -> failwith e
         in
         (* a) local first touch at the origin. *)
         let a = map () in
         r.local_touch <- per_page eng (fun () -> write_all th a);
         (* b) remote first touch; c) remote read of origin-dirty pages;
            d) origin write-upgrade afterwards (invalidates the reader). *)
         let b = map () and c = map () in
         write_all th c;
         let latch = Workloads.Latch.create eng 1 in
         ignore
           (Api.spawn th ~target:8 (fun child ->
                r.remote_touch <- per_page eng (fun () -> write_all child b);
                r.remote_read_dirty <-
                  per_page eng (fun () -> read_all child c);
                Workloads.Latch.arrive latch));
         Workloads.Latch.wait latch;
         (* d) the origin re-acquires write ownership of [c]: every page is
            read-replicated on kernel 8 and owned nowhere writable. *)
         r.upgrade <- per_page eng (fun () -> write_all th c)));
  r

let smp_local_touch ctx () =
  let result = ref 0. in
  ignore
    (Common.run_smp ctx (fun sys th ->
         let eng = Smp.Smp_os.eng sys in
         let base =
           match Smp.Smp_api.mmap th ~len:(pages * page) ~prot:Kernelmodel.Vma.prot_rw with
           | Ok v -> v.Kernelmodel.Vma.start
           | Error e -> failwith e
         in
         result :=
           per_page eng (fun () ->
               for i = 0 to pages - 1 do
                 match Smp.Smp_api.write th ~addr:(base + (i * page)) with
                 | Ok () -> ()
                 | Error e -> failwith e
               done)));
  !result

(* Invalidation fan-out: [readers] kernels replicate a page, then the
   origin writes it. *)
let invalidation_cost ctx ~readers =
  let result = ref 0. in
  ignore
    (Common.run_popcorn ctx ~kernels:16 (fun cluster th ->
         let eng = Types.eng cluster in
         let base =
           match Api.mmap th ~len:page ~prot:Kernelmodel.Vma.prot_rw with
           | Ok v -> v.Kernelmodel.Vma.start
           | Error e -> failwith e
         in
         (match Api.write th ~addr:base with Ok () -> () | Error e -> failwith e);
         let latch = Workloads.Latch.create eng readers in
         for k = 1 to readers do
           ignore
             (Api.spawn th ~target:k (fun child ->
                  (match Api.read child ~addr:base with
                  | Ok _ -> ()
                  | Error e -> failwith e);
                  Workloads.Latch.arrive latch))
         done;
         Workloads.Latch.wait latch;
         let t0 = Engine.now eng in
         (match Api.write th ~addr:base with Ok () -> () | Error e -> failwith e);
         result := float_of_int (Time.sub (Engine.now eng) t0)));
  !result

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let t =
    Stats.Table.create ~title:"F4a: page-fault service latency (per page)"
      ~columns:[ "fault class"; "protocol"; "latency" ]
  in
  let add name proto v =
    Stats.Table.add_row t [ name; proto; Stats.Table.fmt_ns v ]
  in
  add "SMP local first touch" "-" (smp_local_touch ctx ());
  (* The same fault classes under each coherence protocol: the per-class
     table doubles as a protocol comparison. "local/remote" below are
     relative to the origin kernel; under the sharded directory the
     origin's first touch still messages whenever the page hashes
     elsewhere — exactly the difference the rows expose. *)
  List.iter
    (fun protocol ->
      let p = Coherence.Protocol.to_string protocol in
      let r = popcorn_cases ctx ~protocol () in
      add "Popcorn first touch at origin" p r.local_touch;
      add "Popcorn remote first touch" p r.remote_touch;
      add "Popcorn remote read of dirty page" p r.remote_read_dirty;
      add "Popcorn write upgrade (1 reader inval)" p r.upgrade)
    Coherence.Protocol.all;
  let inval =
    Stats.Table.create
      ~title:"F4b: write-fault latency vs read-replica count (invalidation fan-out)"
      ~columns:[ "readers"; "latency" ]
  in
  let counts = if quick then [ 1; 8 ] else [ 1; 2; 4; 8; 15 ] in
  List.iter
    (fun readers ->
      Stats.Table.add_row inval
        [
          string_of_int readers;
          Stats.Table.fmt_ns (invalidation_cost ctx ~readers);
        ])
    counts;
  [ t; inval ]
