(** F5 — Futex latency and contended throughput.

    Wake-to-resume latency for a waiter on the same kernel vs a waiter on
    another kernel (through the origin's global futex queue) vs SMP; then
    ping-pong round-trip throughput as pairs scale across the machine. *)

open Sim
module P = Workloads.Loads.Make (Workloads.Adapters.Popcorn_os)
module S = Workloads.Loads.Make (Workloads.Adapters.Smp_os)

let addr = 0x800000

(* Latency from the wake syscall to the waiter actually resuming. *)
let popcorn_wake_latency ctx ~remote : float =
  let result = ref 0. in
  ignore
    (Common.run_popcorn ctx ~kernels:16 (fun cluster th ->
         let open Popcorn in
         let eng = Types.eng cluster in
         let woke_at = ref 0 in
         let latch = Workloads.Latch.create eng 1 in
         let target = if remote then 8 else 0 in
         ignore
           (Api.spawn th ~target (fun child ->
                (match Api.futex_wait child ~addr () with
                | Api.Woken -> woke_at := Engine.now eng
                | Api.Timed_out -> failwith "timeout");
                Workloads.Latch.arrive latch));
         Api.compute th (Time.ms 1);
         let t0 = Engine.now eng in
         let rec wake () =
           if Api.futex_wake th ~addr ~count:1 = 0 then begin
             Api.compute th (Time.us 10);
             wake ()
           end
         in
         wake ();
         Workloads.Latch.wait latch;
         result := float_of_int (Time.sub !woke_at t0)));
  !result

let smp_wake_latency ctx () : float =
  let result = ref 0. in
  ignore
    (Common.run_smp ctx (fun sys th ->
         let open Smp in
         let eng = Smp_os.eng sys in
         let woke_at = ref 0 in
         let latch = Workloads.Latch.create eng 1 in
         ignore
           (Smp_api.spawn th (fun child ->
                (match Smp_api.futex_wait child ~addr () with
                | Smp_api.Woken -> woke_at := Engine.now eng
                | Smp_api.Timed_out -> failwith "timeout");
                Workloads.Latch.arrive latch));
         Smp_api.compute th (Time.ms 1);
         let t0 = Engine.now eng in
         let rec wake () =
           if Smp_api.futex_wake th ~addr ~count:1 = 0 then begin
             Smp_api.compute th (Time.us 10);
             wake ()
           end
         in
         wake ();
         Workloads.Latch.wait latch;
         result := float_of_int (Time.sub !woke_at t0)));
  !result

let rounds = 50

let popcorn_pingpong ctx pairs =
  Common.run_popcorn ctx (fun cluster th ->
      P.futex_pingpong (Popcorn.Types.eng cluster) th ~pairs ~rounds)

let smp_pingpong ctx pairs =
  Common.run_smp ctx (fun sys th ->
      S.futex_pingpong (Smp.Smp_os.eng sys) th ~pairs ~rounds)

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let popcorn_wake_latency = popcorn_wake_latency ctx
  and smp_wake_latency = smp_wake_latency ctx
  and popcorn_pingpong = popcorn_pingpong ctx
  and smp_pingpong = smp_pingpong ctx in
  let lat =
    Stats.Table.create ~title:"F5a: futex wake-to-resume latency"
      ~columns:[ "configuration"; "latency" ]
  in
  Stats.Table.add_row lat
    [ "SMP Linux"; Stats.Table.fmt_ns (smp_wake_latency ()) ];
  Stats.Table.add_row lat
    [
      "Popcorn, waiter on same kernel";
      Stats.Table.fmt_ns (popcorn_wake_latency ~remote:false);
    ];
  Stats.Table.add_row lat
    [
      "Popcorn, waiter cross-kernel";
      Stats.Table.fmt_ns (popcorn_wake_latency ~remote:true);
    ];
  let thr =
    Stats.Table.create
      ~title:"F5b: futex ping-pong round trips/s vs pairs"
      ~columns:[ "pairs"; "SMP Linux"; "Popcorn" ]
  in
  let pair_counts = if quick then [ 1; 8 ] else [ 1; 2; 4; 8; 16; 32 ] in
  List.iter
    (fun pairs ->
      let total = pairs * rounds in
      Stats.Table.add_row thr
        [
          string_of_int pairs;
          Stats.Table.fmt_rate
            (Common.ops_per_sec ~ops:total ~elapsed:(smp_pingpong pairs));
          Stats.Table.fmt_rate
            (Common.ops_per_sec ~ops:total ~elapsed:(popcorn_pingpong pairs));
        ])
    pair_counts;
  [ lat; thr ]
