(** F6 — Application benchmark scalability: Popcorn vs SMP Linux vs the
    multikernel, on three application classes (CPU-bound, memory-
    management-bound, synchronisation-bound). This is the experiment behind
    the abstract's headline: Popcorn competitive with SMP Linux and up to
    ~40% faster where shared kernel structures dominate, scaling like a
    multikernel. *)

module P = Workloads.Loads.Make (Workloads.Adapters.Popcorn_os)
module S = Workloads.Loads.Make (Workloads.Adapters.Smp_os)
module Mk = Workloads.Mk_workloads

type app = Cpu | Mm | Sync | Comm

let app_name = function
  | Cpu -> "cpu-bound"
  | Mm -> "mm-bound"
  | Sync -> "sync-bound"
  | Comm -> "comm-bound"

let iters ~quick = if quick then 20 else 100

let popcorn ctx app ~quick n =
  let i = iters ~quick in
  Common.run_popcorn ctx (fun cluster th ->
      let eng = Popcorn.Types.eng cluster in
      match app with
      | Cpu -> P.app_cpu_bound eng th ~workers:n ~iters:i
      | Mm -> P.app_mm_bound eng th ~workers:n ~iters:i
      | Sync -> P.app_sync_bound eng th ~workers:n ~iters:i
      | Comm -> P.app_comm_bound eng th ~workers:n ~iters:i)

let smp ctx app ~quick n =
  let i = iters ~quick in
  Common.run_smp ctx (fun sys th ->
      let eng = Smp.Smp_os.eng sys in
      match app with
      | Cpu -> S.app_cpu_bound eng th ~workers:n ~iters:i
      | Mm -> S.app_mm_bound eng th ~workers:n ~iters:i
      | Sync -> S.app_sync_bound eng th ~workers:n ~iters:i
      | Comm -> S.app_comm_bound eng th ~workers:n ~iters:i)

let mk ctx app ~quick n =
  let i = iters ~quick in
  Common.run_mk ctx (fun sys ~on_done ->
      let eng = sys.Multikernel.machine.Hw.Machine.eng in
      let cores = Common.total_cores in
      match app with
      | Cpu -> ignore (Mk.app_cpu_bound sys eng ~cores ~workers:n ~iters:i ~on_done)
      | Mm -> ignore (Mk.app_mm_bound sys eng ~cores ~workers:n ~iters:i ~on_done)
      | Sync -> ignore (Mk.app_sync_bound sys eng ~cores ~workers:n ~iters:i ~on_done)
      | Comm -> ignore (Mk.app_comm_bound sys eng ~cores ~workers:n ~iters:i ~on_done))

let table ctx app ~quick =
  let popcorn = popcorn ctx and smp = smp ctx and mk = mk ctx in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "F6 (%s): work items/s vs workers (higher is better)"
           (app_name app))
      ~columns:
        [ "workers"; "SMP Linux"; "Popcorn"; "Multikernel"; "Popcorn/SMP" ]
  in
  List.iter
    (fun n ->
      let work = n * iters ~quick in
      let s = Common.ops_per_sec ~ops:work ~elapsed:(smp app ~quick n) in
      let p = Common.ops_per_sec ~ops:work ~elapsed:(popcorn app ~quick n) in
      let m = Common.ops_per_sec ~ops:work ~elapsed:(mk app ~quick n) in
      Stats.Table.add_row t
        [
          string_of_int n;
          Stats.Table.fmt_rate s;
          Stats.Table.fmt_rate p;
          Stats.Table.fmt_rate m;
          (if s > 0. then Printf.sprintf "%.2fx" (p /. s) else "-");
        ])
    (Common.sweep ctx);
  t

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  [
    table ctx Cpu ~quick;
    table ctx Mm ~quick;
    table ctx Sync ~quick;
    table ctx Comm ~quick;
  ]
