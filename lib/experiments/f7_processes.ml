(** F7 — Process-creation scalability (fork/exit storm).

    A shell-like parent spreads worker threads over the machine; each
    worker forks short-lived child processes (map two pages, touch them,
    exit) in a loop. SMP serialises forks on the global pid allocator and
    task-list lock; every kernel in the replicated-kernel OS owns a pid
    slice and forks entirely locally. Reaping is on, as in a real system. *)

module K = Kernelmodel

let page = 4096
let forks_each = 10

let child_body read_ write_ mmap_ munmap_ th =
  match mmap_ th with
  | Error e -> failwith e
  | Ok start ->
      (match write_ th start with Ok () -> () | Error e -> failwith e);
      (match read_ th start with Ok _ -> () | Error e -> failwith e);
      (match munmap_ th start with Ok () -> () | Error e -> failwith e)

let popcorn ctx n =
  let opts = { Popcorn.Types.default_options with Popcorn.Types.reap_on_exit = true } in
  Common.run_popcorn ctx ~opts (fun cluster th ->
      let open Popcorn in
      let eng = Types.eng cluster in
      let latch = Workloads.Latch.create eng n in
      for i = 0 to n - 1 do
        ignore
          (Api.spawn th ~target:(i mod 16) (fun worker ->
               for _ = 1 to forks_each do
                 let child =
                   Api.fork worker
                     (child_body
                        (fun t a -> Api.read t ~addr:a)
                        (fun t a -> Api.write t ~addr:a)
                        (fun t ->
                          Result.map
                            (fun (v : K.Vma.vma) -> v.K.Vma.start)
                            (Api.mmap t ~len:(2 * page) ~prot:K.Vma.prot_rw))
                        (fun t a -> Api.munmap t ~start:a ~len:(2 * page)))
                 in
                 Api.wait_exit worker.Api.cluster child
               done;
               Workloads.Latch.arrive latch))
      done;
      Workloads.Latch.wait latch)

let smp ctx n =
  Common.run_smp ctx (fun sys th ->
      let open Smp in
      let eng = Smp_os.eng sys in
      let latch = Workloads.Latch.create eng n in
      for _ = 1 to n do
        ignore
          (Smp_api.spawn th (fun worker ->
               for _ = 1 to forks_each do
                 let child =
                   Smp_api.fork worker
                     (child_body
                        (fun t a -> Smp_api.read t ~addr:a)
                        (fun t a -> Smp_api.write t ~addr:a)
                        (fun t ->
                          Result.map
                            (fun (v : K.Vma.vma) -> v.K.Vma.start)
                            (Smp_api.mmap t ~len:(2 * page) ~prot:K.Vma.prot_rw))
                        (fun t a -> Smp_api.munmap t ~start:a ~len:(2 * page)))
                 in
                 Smp_api.wait_exit sys child
               done;
               Workloads.Latch.arrive latch))
      done;
      Workloads.Latch.wait latch)

let run (ctx : Run_ctx.t) =
  let popcorn = popcorn ctx and smp = smp ctx in
  let t =
    Stats.Table.create
      ~title:"F7: process lifecycles/s (fork+map+touch+exit) vs forkers"
      ~columns:[ "forkers"; "SMP Linux"; "Popcorn"; "Popcorn/SMP" ]
  in
  List.iter
    (fun n ->
      let ops = n * forks_each in
      let s = Common.ops_per_sec ~ops ~elapsed:(smp n) in
      let p = Common.ops_per_sec ~ops ~elapsed:(popcorn n) in
      Stats.Table.add_row t
        [
          string_of_int n;
          Stats.Table.fmt_rate s;
          Stats.Table.fmt_rate p;
          Printf.sprintf "%.2fx" (p /. s);
        ])
    (Common.sweep ctx);
  [ t ]
