(** R1 — thread migration under injected messaging faults.

    Not a paper figure: a robustness experiment over the reproduction.
    A deterministic fault plan ([Inject.Plan]) drops / delays / duplicates
    inter-kernel messages, loses doorbell IPIs and stalls a kernel's
    receive ring, while worker threads ping-pong between kernels. The
    resilient messaging stack (sequence-number duplicate suppression +
    [Rpc.call_retry] retransmission) masks most faults; migrations that
    exhaust their retries degrade gracefully by falling back to the origin
    kernel. We sweep fault rate x retry policy and report migration
    success rate, p50/p99 latency of successful migrations, and the retry
    machinery's counters. *)

open Sim
module P = Popcorn.Types

type cell = {
  attempts : int;
  ok : int;
  fallbacks : int;
  p50_ns : float;
  p99_ns : float;
  retried : int;
  gave_up : int;
  injected : int;  (** faults the plan injected (all kinds). *)
}

(* One sweep cell: [workers] threads each attempt [migrations] ping-pong
   migrations between kernel 0 and a per-worker partner kernel, under a
   fault plan seeded with [plan_seed]. The fault window opens only after
   every worker exists (spawn is not retry-protected) and closes before
   group teardown. Deterministic: same (plan_seed, rate, policy) gives the
   identical schedule and the identical cell. *)
let run_cell ctx ?(kernels = 4) ~workers ~migrations ~rate ~policy ~plan_seed
    () :
    cell =
  let attempts = ref 0 and ok = ref 0 and fallbacks = ref 0 in
  let lat = Stats.Histogram.create () in
  let retried = ref 0 and gave_up = ref 0 and injected = ref 0 in
  let opts = { P.default_options with P.migration_retry = Some policy } in
  ignore
    (Common.run_popcorn ctx ~opts ~kernels (fun cluster th ->
         let eng = P.eng cluster in
         let plan = Inject.Plan.create ~seed:plan_seed eng in
         Inject.Plan.attach plan cluster.P.fabric;
         let faulty =
           {
             Inject.Plan.drop = rate;
             duplicate = rate /. 2.;
             delay = rate;
             delay_max = Time.us 20;
             doorbell_loss = rate;
             doorbell_recovery = Time.us 30;
           }
         in
         (* A kernel-stall window early in the fault phase: partner kernel
            1 stops draining its ring for 150us. *)
         if rate > 0. then
           Inject.Plan.add_stall plan ~node:1
             ~from_:(Time.add (Engine.now eng) (Time.us 100))
             ~until_:(Time.add (Engine.now eng) (Time.us 250));
         let start = Barrier.create eng ~parties:(workers + 1) in
         let latch = Workloads.Latch.create eng workers in
         for w = 0 to workers - 1 do
           ignore
             (Popcorn.Api.spawn th ~target:0 (fun worker ->
                  ignore (Barrier.wait start);
                  let partner = 1 + (w mod (kernels - 1)) in
                  for _ = 1 to migrations do
                    Popcorn.Api.compute worker (Time.us 2);
                    let here = (Popcorn.Api.current_kernel worker).P.kid in
                    let dst = if here = 0 then partner else 0 in
                    let b = Popcorn.Api.migrate worker ~dst in
                    incr attempts;
                    if b.Popcorn.Migration.migrated then begin
                      incr ok;
                      Stats.Histogram.add lat
                        (float_of_int b.Popcorn.Migration.total_ns)
                    end
                    else incr fallbacks
                  done;
                  Workloads.Latch.arrive latch))
         done;
         (* All workers exist: open the fault window and let them run. *)
         Inject.Plan.set_default_rates plan faulty;
         ignore (Barrier.wait start);
         Workloads.Latch.wait latch;
         (* Close the window so group teardown is not disrupted. *)
         Inject.Plan.set_default_rates plan Inject.Plan.zero;
         injected := Inject.Plan.injected plan;
         Array.iter
           (fun (k : P.kernel) ->
             let s = Msg.Rpc.retry_stats k.P.rpc in
             retried := !retried + s.Msg.Rpc.retried;
             gave_up := !gave_up + s.Msg.Rpc.gave_up)
           cluster.P.kernels));
  {
    attempts = !attempts;
    ok = !ok;
    fallbacks = !fallbacks;
    p50_ns = Stats.Histogram.median lat;
    p99_ns = Stats.Histogram.p99 lat;
    retried = !retried;
    gave_up = !gave_up;
    injected = !injected;
  }

let policies =
  [
    ( "2x50us",
      {
        Msg.Rpc.max_tries = 2;
        base_timeout = Time.us 50;
        backoff_factor = 2;
        max_timeout = Time.ms 1;
      } );
    ( "6x50us",
      {
        Msg.Rpc.max_tries = 6;
        base_timeout = Time.us 50;
        backoff_factor = 2;
        max_timeout = Time.ms 1;
      } );
  ]

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let rates = if quick then [ 0.0; 0.1 ] else [ 0.0; 0.02; 0.05; 0.1; 0.2 ] in
  let workers = if quick then 8 else 16 in
  let migrations = if quick then 10 else 25 in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "R1: migration under faults (4 kernels, %d workers x %d \
            migrations; drop=dup/2=delay=doorbell-loss=rate)"
           workers migrations)
      ~columns:
        [
          "fault rate";
          "retry policy";
          "attempts";
          "ok";
          "fallback";
          "success";
          "p50";
          "p99";
          "retried";
          "gave up";
          "injected";
        ]
  in
  List.iter
    (fun rate ->
      List.iter
        (fun (pname, policy) ->
          let c =
            run_cell ctx ~workers ~migrations ~rate ~policy ~plan_seed:1337
              ()
          in
          Stats.Table.add_row t
            [
              Printf.sprintf "%.2f" rate;
              pname;
              string_of_int c.attempts;
              string_of_int c.ok;
              string_of_int c.fallbacks;
              Printf.sprintf "%.1f%%"
                (100. *. float_of_int c.ok
                /. float_of_int (max 1 c.attempts));
              Stats.Table.fmt_ns c.p50_ns;
              Stats.Table.fmt_ns c.p99_ns;
              string_of_int c.retried;
              string_of_int c.gave_up;
              string_of_int c.injected;
            ])
        policies)
    rates;
  [ t ]
