(** R2 — health-aware placement under faults, driven by an open-loop
    server workload.

    Not a paper figure: the robustness companion to R1, at the placement
    layer instead of the messaging layer. A frontend kernel dispatches an
    open-loop request stream ([Workloads.Server]) across the worker
    kernels through [Popcorn.Placement] — admission control, passive
    health ([Popcorn.Health]) and bounded retry — while a fault scenario
    degrades one kernel (crash, slowness, doorbell loss) or the offered
    load itself spikes past capacity. We sweep arrival rate x scenario and
    report goodput, shed rate, latency percentiles (p50/p99/max), and the
    health machine's reaction times (time-to-drain, time-to-readmit).

    The shape this is checking for: goodput degrades proportionally to the
    lost capacity — no collapse — because deadline misses drain the sick
    kernel out of the candidate set, retries move its traffic elsewhere,
    and admission control converts overload into explicit sheds instead of
    unbounded queueing. Asserted (not just printed) in [test_health]. *)

open Sim
module P = Popcorn.Types

type scenario = Baseline | Crash | Slow | Doorbell | Overload

let scenario_name = function
  | Baseline -> "baseline"
  | Crash -> "crash"
  | Slow -> "slow"
  | Doorbell -> "doorbell"
  | Overload -> "overload"

let scenarios = [ Baseline; Crash; Slow; Doorbell; Overload ]

(** Cluster shape: the frontend dispatches, workers serve. *)
let kernels = 4

let frontend = 0
let victim = kernels - 1
let cost_ns = Time.us 40

type cell = {
  stats : Workloads.Server.stats;
  transitions : Popcorn.Health.transition list;  (** whole run, in order. *)
  drain_after_ns : int;
      (** fault-open -> victim first drained; -1 if never drained. *)
  readmit_after_ns : int;
      (** fault-close -> victim first readmitted after it; -1 if never. *)
  victim_final : Popcorn.Health.state;
  victim_drained_ns : int;  (** victim's cumulative drained time. *)
}

(* One sweep cell. The fault window is the middle third of the arrival
   span, so the run shows clean -> degraded -> recovered in one stream.
   Deterministic: the plan and the health prober draw from their own
   seeded streams, so a (seed, rate, scenario) cell is bit-reproducible. *)
let run_cell ctx ~requests ~gap ~scenario () : cell =
  let stats = ref None in
  let transitions = ref [] in
  let w_open = ref 0 and w_close = ref 0 in
  let victim_final = ref Popcorn.Health.Healthy in
  let victim_drained = ref 0 in
  ignore
    (Common.run_popcorn ctx ~kernels (fun cluster _th ->
         let eng = P.eng cluster in
         let plan = Inject.Plan.create eng in
         Inject.Plan.attach plan cluster.P.fabric;
         let health = Popcorn.Health.create eng ~kernels in
         Popcorn.Placement.observe_health cluster health;
         let disp =
           Popcorn.Placement.create ~health ~frontend cluster
         in
         let span = requests * gap in
         let now0 = Engine.now eng in
         w_open := now0 + (span / 3);
         w_close := now0 + (2 * span / 3);
         let crashed = { Inject.Plan.zero with Inject.Plan.drop = 1.0 } in
         let set_victim_links rates =
           for k = 0 to kernels - 1 do
             if k <> victim then begin
               Inject.Plan.set_link plan ~src:k ~dst:victim rates;
               Inject.Plan.set_link plan ~src:victim ~dst:k rates
             end
           done
         in
         let during_window body =
           Engine.spawn eng ~name:"fault-window" (fun () ->
               Engine.sleep eng (Time.sub !w_open (Engine.now eng));
               body true;
               Engine.sleep eng (Time.sub !w_close (Engine.now eng));
               body false)
         in
         (match scenario with
         | Baseline -> ()
         | Crash ->
             (* Total silence from the victim: requests into it vanish,
                responses out of it vanish. *)
             during_window (fun opening ->
                 set_victim_links
                   (if opening then crashed else Inject.Plan.zero))
         | Slow ->
             (* The victim drains its ring 20% of the time: 80us stalled,
                20us running, for the whole window. *)
             let t = ref !w_open in
             while !t < !w_close do
               Inject.Plan.add_stall plan ~node:victim ~from_:!t
                 ~until_:(min !w_close (!t + Time.us 80));
               t := !t + Time.us 100
             done
         | Doorbell ->
             during_window (fun opening ->
                 Inject.Plan.set_default_rates plan
                   (if opening then
                      {
                        Inject.Plan.zero with
                        Inject.Plan.doorbell_loss = 0.3;
                        doorbell_recovery = Time.us 50;
                      }
                    else Inject.Plan.zero))
         | Overload -> ());
         let interarrival =
           match scenario with
           | Overload ->
               (* The middle third arrives 8x too fast: offered load far
                  past capacity, which admission control must shed. *)
               fun i ->
                 if i > requests / 3 && i <= 2 * requests / 3 then gap / 8
                 else gap
           | _ -> fun _ -> gap
         in
         let config =
           { Workloads.Server.requests; interarrival; cost_ns;
             deadline_ns = None }
         in
         stats := Some (Workloads.Server.run cluster disp config);
         Popcorn.Health.stop health;
         transitions := Popcorn.Health.transitions health;
         victim_final := Popcorn.Health.state health victim;
         victim_drained := Popcorn.Health.drained_ns health victim));
  let drain_after_ns =
    List.find_map
      (fun (tr : Popcorn.Health.transition) ->
        if
          tr.Popcorn.Health.tr_kernel = victim
          && tr.Popcorn.Health.tr_to = Popcorn.Health.Drained
          && tr.Popcorn.Health.tr_at >= !w_open
        then Some (tr.Popcorn.Health.tr_at - !w_open)
        else None)
      !transitions
    |> Option.value ~default:(-1)
  in
  let readmit_after_ns =
    List.find_map
      (fun (tr : Popcorn.Health.transition) ->
        if
          tr.Popcorn.Health.tr_kernel = victim
          && tr.Popcorn.Health.tr_from = Popcorn.Health.Drained
          && tr.Popcorn.Health.tr_at >= !w_close
        then Some (tr.Popcorn.Health.tr_at - !w_close)
        else None)
      !transitions
    |> Option.value ~default:(-1)
  in
  {
    stats = Option.get !stats;
    transitions = !transitions;
    drain_after_ns;
    readmit_after_ns;
    victim_final = !victim_final;
    victim_drained_ns = !victim_drained;
  }

let fmt_opt_ns = function -1 -> "-" | ns -> Stats.Table.fmt_ns (float_of_int ns)

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let rates =
    (* (label, interarrival gap): worker capacity is 3 kernels x 16 cores
       / 40us = 1.2M req/s, so these are ~21%, 42% and 83% utilisation. *)
    if quick then [ ("500k/s", Time.us 2) ]
    else [ ("250k/s", Time.us 4); ("500k/s", Time.us 2); ("1M/s", Time.us 1) ]
  in
  let requests = if quick then 3000 else 12000 in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "R2: health-aware placement under faults (%d kernels, frontend \
            k%d, victim k%d; %d requests x %s; fault window = middle third)"
           kernels frontend victim requests
           (Stats.Table.fmt_ns (float_of_int cost_ns)))
      ~columns:
        [
          "rate";
          "scenario";
          "goodput";
          "shed";
          "failed";
          "retried";
          "p50";
          "p99";
          "max";
          "drain";
          "readmit";
          "transitions";
        ]
  in
  List.iter
    (fun (rname, gap) ->
      List.iter
        (fun scenario ->
          let c = run_cell ctx ~requests ~gap ~scenario () in
          let s = c.stats in
          Stats.Table.add_row t
            [
              rname;
              scenario_name scenario;
              Printf.sprintf "%.1f%%" (100. *. Workloads.Server.goodput s);
              Printf.sprintf "%.1f%%" (100. *. Workloads.Server.shed_rate s);
              string_of_int s.Workloads.Server.failed;
              string_of_int s.Workloads.Server.retried;
              Stats.Table.fmt_ns
                (Stats.Histogram.median s.Workloads.Server.latency);
              Stats.Table.fmt_ns
                (Stats.Histogram.p99 s.Workloads.Server.latency);
              Stats.Table.fmt_ns
                (Stats.Histogram.max s.Workloads.Server.latency);
              fmt_opt_ns c.drain_after_ns;
              fmt_opt_ns c.readmit_after_ns;
              string_of_int (List.length c.transitions);
            ])
        scenarios)
    rates;
  [ t ]
