(** R3 — Coherence protocol crossover: kernels × write-sharing intensity.

    One worker per kernel hammers a mapping that mixes a small hot region
    (every worker writes the same pages — ownership bounces, so nearly
    every hot write faults through the directory) with a per-worker
    private region (faults once, then hits). The share knob is the
    probability a write goes to the hot region.

    The experiment runs under the protocol the run context carries (the
    [--coherence] CLI flag), so comparing protocols is two runs:

      popcornsim run R3 --coherence origin
      popcornsim run R3 --coherence sharded

    Expected shape: origin-home wins the low-kernel / low-sharing corner
    (all directory state is origin-local, and the origin worker faults
    without messages), while the sharded directory wins the high-kernel /
    high-sharing corner, where origin-home serializes every fault, pull
    and invalidation through one kernel's message ring and fault locks.
    Latencies are per-write fault-service times (p50/p99/max); directory
    hops and invalidation counts come from the cluster's always-on
    coherence counters. *)

open Sim
open Popcorn

let page = Page_coherence.page_size

(* Hot pages: few enough to contend, spread over several sharded homes. *)
let hot_pages = 8
let priv_pages = 8

type cell = {
  faults : int;
  dir_hops : int;
  invals : int;
  max_fanout : int;
  hist : Stats.Histogram.t;
}

(* A write will trap iff the local PTE is absent or read-only; checking
   costs nothing in simulated time, so the histogram records exactly the
   fault-service path, not cache hits. *)
let will_write_fault (r : Types.replica) ~addr =
  let vpn = Kernelmodel.Page_table.vpn_of_addr addr in
  match Kernelmodel.Page_table.get r.Types.pt ~vpn with
  | Some pte -> not pte.Kernelmodel.Page_table.writable
  | None -> true

let run_cell (ctx : Run_ctx.t) ~kernels ~share_pct ~ops =
  let hist = Stats.Histogram.create () in
  let counters = ref (0, 0, 0, 0) in
  let opts =
    {
      Types.default_options with
      Types.coherence = ctx.Run_ctx.coherence;
    }
  in
  ignore
    (Common.run_popcorn ctx ~opts ~kernels (fun cluster th ->
         let eng = Types.eng cluster in
         let len = (hot_pages + (kernels * priv_pages)) * page in
         let base =
           match Api.mmap th ~len ~prot:Kernelmodel.Vma.prot_rw with
           | Ok v -> v.Kernelmodel.Vma.start
           | Error e -> failwith e
         in
         let hot_addr i = base + (i * page) in
         let priv_addr w i =
           base + ((hot_pages + (w * priv_pages) + i) * page)
         in
         let latch = Workloads.Latch.create eng kernels in
         for w = 0 to kernels - 1 do
           ignore
             (Api.spawn th ~target:w (fun worker ->
                  let rng =
                    Prng.create
                      ~seed:
                        (ctx.Run_ctx.seed + (1009 * kernels)
                        + (31 * share_pct) + w)
                  in
                  let r = Api.replica worker in
                  for _ = 1 to ops do
                    let addr =
                      if Prng.int rng 100 < share_pct then
                        hot_addr (Prng.int rng hot_pages)
                      else priv_addr w (Prng.int rng priv_pages)
                    in
                    let faulting = will_write_fault r ~addr in
                    let t0 = Engine.now eng in
                    (match Api.write worker ~addr with
                    | Ok () -> ()
                    | Error e -> failwith e);
                    if faulting then
                      Stats.Histogram.add hist
                        (Common.ns (Time.sub (Engine.now eng) t0))
                  done;
                  Workloads.Latch.arrive latch))
         done;
         Workloads.Latch.wait latch;
         let s = cluster.Types.coh_stats in
         counters :=
           ( s.Coherence.Stats.faults,
             s.Coherence.Stats.dir_hops,
             s.Coherence.Stats.invalidations,
             s.Coherence.Stats.max_fanout )));
  let faults, dir_hops, invals, max_fanout = !counters in
  { faults; dir_hops; invals; max_fanout; hist }

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let kernel_counts = if quick then [ 4; 16 ] else [ 2; 4; 8; 16 ] in
  let shares = if quick then [ 10; 90 ] else [ 0; 25; 90 ] in
  let ops = if quick then 30 else 100 in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "R3: fault service under %s coherence (%d writes/worker)"
           (Coherence.Protocol.to_string ctx.Run_ctx.coherence)
           ops)
      ~columns:
        [
          "kernels";
          "shared%";
          "faults";
          "dir hops";
          "invals";
          "max fanout";
          "p50";
          "p99";
          "max";
        ]
  in
  List.iter
    (fun kernels ->
      List.iter
        (fun share_pct ->
          let c = run_cell ctx ~kernels ~share_pct ~ops in
          Stats.Table.add_row t
            [
              string_of_int kernels;
              string_of_int share_pct;
              string_of_int c.faults;
              string_of_int c.dir_hops;
              string_of_int c.invals;
              string_of_int c.max_fanout;
              Stats.Table.fmt_ns (Stats.Histogram.median c.hist);
              Stats.Table.fmt_ns (Stats.Histogram.p99 c.hist);
              Stats.Table.fmt_ns (Stats.Histogram.max c.hist);
            ])
        shares)
    kernel_counts;
  [ t ]
