(** R4 — the deadline SLO envelope: fault rate x offered load.

    Not a paper figure: the predictability companion to R1/R2. Every
    other experiment reports how fast migration is; this one asks when it
    stops being {e predictably} fast. Two deadline-carrying streams share
    a cluster: worker threads ping-pong migrations between kernels, each
    migration carrying an end-to-end deadline ([Popcorn.Api.migrate
    ?deadline]), and an open-loop request stream ([Workloads.Server] with
    [deadline_ns]) loads the same kernels through the placement layer. A
    seeded fault plan ([Inject.Plan]) degrades the fabric. Sweeping fault
    rate x arrival rate yields the {e envelope}: the region of the
    (fault, load) plane where the migration SLO still holds, and the
    frontier where violations first exceed the threshold.

    Deadlines are accounting-only (they never change protocol behaviour),
    so every cell is bit-identical to the same cell without deadlines —
    and the whole sweep is deterministic in (seed, cell), which is what
    lets CI assert the exported [slo] section is byte-stable under
    [--jobs 4]. *)

open Sim
module P = Popcorn.Types

let kernels = 4
let frontend = 0
let workers = 6
let cost_ns = Time.us 40

(* Budgets. A fault-free migration on this cluster shape lands well under
   50us even with the server load resident; the envelope should open with
   a clean 0% column. The dispatch budget spans every placement retry. *)
let migration_deadline = Time.us 80
let dispatch_deadline = Time.us 200

(* Retries keep faulty cells from wedging; a blown retry shows up as a
   deadline violation (fallback counts as violated), not a hang. *)
let retry_policy =
  {
    Msg.Rpc.max_tries = 4;
    base_timeout = Time.us 50;
    backoff_factor = 2;
    max_timeout = Time.ms 1;
  }

type cell = {
  m_attempts : int;
  m_met : int;
  m_viol : int;
  m_worst_ns : int;  (** slowest migration, met or not (exact, not p99). *)
  stats : Workloads.Server.stats;
}

let viol_pct c =
  100. *. float_of_int c.m_viol /. float_of_int (max 1 c.m_attempts)

(* One sweep cell: the migration stream and the server stream run
   concurrently on one cluster under one fault plan. The fault window
   opens only after every migration worker exists (spawn is not
   retry-protected) and closes before teardown. *)
let run_cell ctx ~requests ~gap ~migrations ~fault_rate () : cell =
  let met = ref 0 and viol = ref 0 and attempts = ref 0 in
  let worst = ref 0 in
  let stats = ref None in
  let opts =
    { P.default_options with P.migration_retry = Some retry_policy }
  in
  ignore
    (Common.run_popcorn ctx ~opts ~kernels (fun cluster th ->
         let eng = P.eng cluster in
         let plan = Inject.Plan.create ~seed:1337 eng in
         Inject.Plan.attach plan cluster.P.fabric;
         let faulty =
           {
             Inject.Plan.drop = fault_rate;
             duplicate = fault_rate /. 2.;
             delay = fault_rate;
             delay_max = Time.us 20;
             doorbell_loss = fault_rate;
             doorbell_recovery = Time.us 30;
           }
         in
         let disp = Popcorn.Placement.create ~frontend cluster in
         let start = Barrier.create eng ~parties:(workers + 1) in
         let latch = Workloads.Latch.create eng workers in
         for w = 0 to workers - 1 do
           ignore
             (Popcorn.Api.spawn th ~target:0 (fun worker ->
                  ignore (Barrier.wait start);
                  let partner = 1 + (w mod (kernels - 1)) in
                  for _ = 1 to migrations do
                    Popcorn.Api.compute worker (Time.us 2);
                    let here = (Popcorn.Api.current_kernel worker).P.kid in
                    let dst = if here = 0 then partner else 0 in
                    let b =
                      Popcorn.Api.migrate ~deadline:migration_deadline worker
                        ~dst
                    in
                    incr attempts;
                    worst := max !worst b.Popcorn.Migration.total_ns;
                    if
                      b.Popcorn.Migration.migrated
                      && b.Popcorn.Migration.total_ns <= migration_deadline
                    then incr met
                    else incr viol
                  done;
                  Workloads.Latch.arrive latch))
         done;
         (* Everyone exists: open the fault window, release both streams. *)
         Inject.Plan.set_default_rates plan faulty;
         ignore (Barrier.wait start);
         let config =
           {
             Workloads.Server.requests;
             interarrival = (fun _ -> gap);
             cost_ns;
             deadline_ns = Some dispatch_deadline;
           }
         in
         stats := Some (Workloads.Server.run cluster disp config);
         Workloads.Latch.wait latch;
         Inject.Plan.set_default_rates plan Inject.Plan.zero));
  {
    m_attempts = !attempts;
    m_met = !met;
    m_viol = !viol;
    m_worst_ns = !worst;
    stats = Option.get !stats;
  }

(* The envelope frontier: within one arrival rate (one row), the first
   fault rate whose violation share exceeds the threshold. *)
let threshold_pct = 1.0

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let rates =
    if quick then [ ("500k/s", Time.us 2); ("1M/s", Time.us 1) ]
    else [ ("250k/s", Time.us 4); ("500k/s", Time.us 2); ("1M/s", Time.us 1) ]
  in
  let fault_rates =
    if quick then [ 0.0; 0.05; 0.2 ] else [ 0.0; 0.02; 0.05; 0.1; 0.2 ]
  in
  let requests = if quick then 1200 else 6000 in
  let migrations = if quick then 8 else 20 in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "R4: deadline SLO sweep (%d kernels; %d workers x %d migrations \
            @ %s deadline; %d requests @ %s dispatch deadline)"
           kernels workers migrations
           (Stats.Table.fmt_ns (float_of_int migration_deadline))
           requests
           (Stats.Table.fmt_ns (float_of_int dispatch_deadline)))
      ~columns:
        [
          "rate";
          "fault";
          "migrations";
          "met";
          "violated";
          "viol%";
          "worst";
          "goodput";
          "in-deadline";
        ]
  in
  let env =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "R4 envelope: migration SLO violations (%% of attempts; * marks \
            the frontier, first cell past %.1f%%)"
           threshold_pct)
      ~columns:("rate \\ fault" :: List.map (Printf.sprintf "%.2f") fault_rates)
  in
  List.iter
    (fun (rname, gap) ->
      let cells =
        List.map
          (fun fault_rate ->
            (fault_rate, run_cell ctx ~requests ~gap ~migrations ~fault_rate ()))
          fault_rates
      in
      List.iter
        (fun (fault_rate, c) ->
          let s = c.stats in
          Stats.Table.add_row t
            [
              rname;
              Printf.sprintf "%.2f" fault_rate;
              string_of_int c.m_attempts;
              string_of_int c.m_met;
              string_of_int c.m_viol;
              Printf.sprintf "%.1f%%" (viol_pct c);
              Stats.Table.fmt_ns (float_of_int c.m_worst_ns);
              Printf.sprintf "%.1f%%" (100. *. Workloads.Server.goodput s);
              Printf.sprintf "%.1f%%"
                (100. *. Workloads.Server.goodput_within s);
            ])
        cells;
      let frontier =
        List.find_opt (fun (_, c) -> viol_pct c > threshold_pct) cells
        |> Option.map fst
      in
      Stats.Table.add_row env
        (rname
        :: List.map
             (fun (fr, c) ->
               Printf.sprintf "%.1f%%%s" (viol_pct c)
                 (if frontier = Some fr then " *" else ""))
             cells))
    rates;
  [ t; env ]
