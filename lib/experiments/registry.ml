(** Experiment registry: maps stable experiment ids to runners. *)

type t = {
  id : string;
  title : string;
  run : Run_ctx.t -> Stats.Table.t list;
}

let all : t list =
  [
    {
      id = "T1";
      title = "Thread migration cost breakdown";
      run = T1_migration.run;
    };
    {
      id = "T2";
      title = "Messaging layer latency/throughput";
      run = T2_messaging.run;
    };
    {
      id = "F1";
      title = "Thread creation latency vs group size";
      run = F1_thread_create.run;
    };
    {
      id = "F2";
      title = "Thread creation throughput scalability";
      run = F2_spawn_scale.run;
    };
    {
      id = "F3";
      title = "mmap/munmap throughput scalability";
      run = F3_mmap_scale.run;
    };
    { id = "F4"; title = "Page fault service latency"; run = F4_page_fault.run };
    { id = "F5"; title = "Futex latency and throughput"; run = F5_futex.run };
    {
      id = "F6";
      title = "Application scalability (Popcorn vs SMP vs multikernel)";
      run = F6_apps.run;
    };
    {
      id = "F7";
      title = "Process creation scalability (fork storm)";
      run = F7_processes.run;
    };
    {
      id = "T3";
      title = "Remote syscall forwarding (SSI file I/O)";
      run = T3_syscalls.run;
    };
    {
      id = "A1";
      title = "Design-choice ablations (pool, replication, prefetch)";
      run = A1_ablations.run;
    };
    {
      id = "A2";
      title = "Kernel granularity sweep (partitioning trade-off)";
      run = A2_granularity.run;
    };
    {
      id = "R1";
      title = "Migration under injected messaging faults (robustness)";
      run = R1_faults.run;
    };
    {
      id = "R2";
      title = "Health-aware placement under faults (open-loop server load)";
      run = R2_placement.run;
    };
    {
      id = "R3";
      title = "Coherence protocol crossover (kernels x write-sharing)";
      run = R3_coherence.run;
    };
    {
      id = "R4";
      title = "Deadline SLO envelope (fault rate x offered load)";
      run = R4_slo.run;
    };
  ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

(** Everything one experiment run produced: its tables, the host wall-clock
    of the experiment body alone (sink post-processing and rendering are
    excluded), the total simulator events the body executed (with the
    derived events/sec, the tracked engine-throughput metric — host time is
    noisy, so both are informational: excluded from determinism digests and
    from [diff] regression gating; the rate is [None] below timer
    resolution), the observability sink and profiler that were live during
    the run (when [observe] / [profile] were on), the worst-case & SLO
    summary (when observed), and the fully rendered textual output. [run_one] never prints — callers
    decide when to emit [output], which is what lets [run_all] overlap
    experiment execution while still presenting results in registry
    order. *)
type outcome = {
  spec : t;
  host_ms : float;
  events_processed : int;
  tables : Stats.Table.t list;
  sink : Obs.Sink.t option;
  prof : Obs.Prof.t option;
  slo : Obs.Slo.t option;
  output : string;
}

(* Below ~1 ms of host time the division is dominated by timer
   resolution — the "rate" would be noise, or a flat 0.0 when the clock
   never ticked, which reads as "infinitely slow". Report absence
   instead; callers render it as "n/a". *)
let min_rate_host_ms = 1.0

let events_per_sec ~events ~host_ms =
  if host_ms >= min_rate_host_ms then
    Some (float_of_int events /. (host_ms /. 1e3))
  else None

let render_mev_s ~events ~host_ms =
  match events_per_sec ~events ~host_ms with
  | Some r -> Printf.sprintf "%.2f Mev/s" (r /. 1e6)
  | None -> "n/a Mev/s"

(** Suite-level engine throughput: total events over total host time,
    across a list of outcomes. This is the headline number the CLI `all`
    command prints and the microbench/PRs quote — a single aggregate is
    far less noisy than per-experiment rates (several experiments finish
    under a millisecond in --quick). Host-time-derived, so informational
    only: never part of determinism digests or diff gating. *)
let suite_totals (outcomes : outcome list) =
  List.fold_left
    (fun (ms, ev) o -> (ms +. o.host_ms, ev + o.events_processed))
    (0., 0) outcomes

let render_suite_total (outcomes : outcome list) =
  let host_ms, events = suite_totals outcomes in
  Printf.sprintf "== suite total: %.0f ms host time, %d events, %s ==" host_ms
    events
    (render_mev_s ~events ~host_ms)

let run_one ?(quick = false) ?(observe = false) ?(profile = false) ?seed
    ?coherence ?evq (e : t) : outcome =
  let sink = if observe then Some (Obs.Sink.create ()) else None in
  let prof = if profile then Some (Obs.Prof.create ()) else None in
  let ctx = Run_ctx.create ?sink ?prof ?seed ?coherence ?evq ~quick () in
  let t0 = Unix.gettimeofday () in
  let tables = e.run ctx in
  let host_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let events_processed = Run_ctx.total_events ctx in
  (* Instrumentation-health metrics, recorded after the run so they see
     the final state: spans the workload never closed (analysis clamps
     them to end-of-run) and trace-ring events evicted by the capacity
     bound. *)
  (match sink with
  | None -> ()
  | Some s ->
      let unclosed =
        List.fold_left
          (fun n (sp : Obs.Span.span) ->
            if sp.Obs.Span.stop < 0 then n + 1 else n)
          0
          (Obs.Span.spans s.Obs.Sink.spans)
      in
      Obs.Metrics.add s.Obs.Sink.metrics "spans.unclosed" unclosed;
      Obs.Metrics.add s.Obs.Sink.metrics "trace.dropped"
        (Sim.Trace.total s.Obs.Sink.trace - Sim.Trace.count s.Obs.Sink.trace));
  (* Worst-case & SLO summary over the run's span DAG. Recording it into
     the metrics registry (slo.<kind>.worst_case_ns gauges) is what lets
     the committed baseline carry the bound and `popcornsim diff` gate a
     worst-case regression like any other time metric. Purely a function
     of simulated data, so it is bit-identical across hosts and --jobs. *)
  let slo =
    match sink with
    | None -> None
    | Some s ->
        let t =
          Obs.Slo.summarize
            ~counters:(Obs.Slo.counters_of_registry s.Obs.Sink.metrics)
            ~spans:(Obs.Critpath.ispans_of_recorder s.Obs.Sink.spans)
            ~causal:(Obs.Causal.events s.Obs.Sink.causal)
            ()
        in
        Obs.Slo.record t s.Obs.Sink.metrics;
        Some t
  in
  let b = Buffer.create 4096 in
  Printf.bprintf b "\n### %s — %s\n\n" e.id e.title;
  Buffer.add_string b (Run_ctx.output ctx);
  List.iter
    (fun t ->
      Buffer.add_string b (Stats.Table.render t);
      Buffer.add_char b '\n')
    tables;
  Printf.bprintf b "(%s: %.0f ms host time, %d events, %s)\n" e.id host_ms
    events_processed
    (render_mev_s ~events:events_processed ~host_ms);
  {
    spec = e;
    host_ms;
    events_processed;
    tables;
    sink;
    prof;
    slo;
    output = Buffer.contents b;
  }

(** Parallel suite runner. Experiments are independent by construction
    (each [run_one] builds a private [Run_ctx.t], sink and machines), so
    scheduling them across [Domain]s cannot change any result: outcomes
    are returned in registry order and are bit-identical to [jobs = 1].
    Work-stealing over an atomic index keeps all domains busy even though
    experiment durations vary by an order of magnitude. *)
let default_jobs () = Domain.recommended_domain_count ()

let run_all ?quick ?observe ?profile ?seed ?coherence ?evq ?jobs () :
    outcome list =
  let specs = Array.of_list all in
  let n = Array.length specs in
  let jobs =
    max 1 (min n (match jobs with Some j -> j | None -> default_jobs ()))
  in
  if jobs = 1 then
    List.map
      (fun e -> run_one ?quick ?observe ?profile ?seed ?coherence ?evq e)
      all
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            Some
              (run_one ?quick ?observe ?profile ?seed ?coherence ?evq
                 specs.(i));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some o -> o
         | None -> failwith "Registry.run_all: experiment produced no outcome")
  end

(* --- machine-readable results (schema documented in EXPERIMENTS.md) --- *)

let table_json (t : Stats.Table.t) =
  Obs.Json.Obj
    [
      ("title", Obs.Json.Str (Stats.Table.title t));
      ( "columns",
        Obs.Json.Arr
          (List.map (fun c -> Obs.Json.Str c) (Stats.Table.columns t)) );
      ( "rows",
        Obs.Json.Arr
          (List.map
             (fun row -> Obs.Json.Arr (List.map (fun c -> Obs.Json.Str c) row))
             (Stats.Table.rows t)) );
    ]

let outcome_json ?(metrics_only = false) (o : outcome) =
  Obs.Json.Obj
    ([
       ("id", Obs.Json.Str o.spec.id);
       ("title", Obs.Json.Str o.spec.title);
       ("host_ms", Obs.Json.Float o.host_ms);
       (* Informational throughput fields: host-time-derived, so noisy run
          to run. `popcornsim diff` reads only "metrics" and ignores
          these. *)
       ("events_processed", Obs.Json.Int o.events_processed);
       ( "events_per_sec",
         (* Null (not 0.0) when host time is below timer resolution. *)
         match events_per_sec ~events:o.events_processed ~host_ms:o.host_ms with
         | Some r -> Obs.Json.Float r
         | None -> Obs.Json.Null );
       ("tables", Obs.Json.Arr (List.map table_json o.tables));
     ]
    @ (match o.slo with
      | Some t when t.Obs.Slo.kinds <> [] -> [ ("slo", Obs.Slo.to_json t) ]
      | Some _ | None -> [])
    @
    match o.sink with
    | None -> []
    | Some s ->
        ("metrics", Obs.Metrics.to_json s.Obs.Sink.metrics)
        ::
        (if metrics_only then []
         else
           [
             ( "spans",
               Obs.Critpath.ispans_to_json
                 (Obs.Critpath.ispans_of_recorder s.Obs.Sink.spans) );
             ("causal", Obs.Causal.to_json s.Obs.Sink.causal);
           ]))

(* v2 adds per-experiment "spans" and "causal" sections (when the run was
   observed) for `popcornsim analyze`; `popcornsim diff` accepts v1 too.
   [metrics_only] drops those sections — `popcornsim diff` reads only
   "metrics", and the result is small enough to commit as the CI
   regression baseline. *)
let report_json ?(quick = false) ?(metrics_only = false)
    (outcomes : outcome list) =
  Obs.Json.Obj
    ([ ("schema", Obs.Json.Str "popcornsim-bench-v2");
       ("quick", Obs.Json.Bool quick) ]
    @ (* Suite-level throughput header: informational (host-time-derived)
         and therefore excluded from the [metrics_only] baseline documents
         that `popcornsim diff` gates on. *)
    (if metrics_only then []
     else
       let host_ms, events = suite_totals outcomes in
       [
         ("suite_host_ms", Obs.Json.Float host_ms);
         ("suite_events_processed", Obs.Json.Int events);
         ( "suite_events_per_sec",
           match events_per_sec ~events ~host_ms with
           | Some r -> Obs.Json.Float r
           | None -> Obs.Json.Null );
       ])
    @ [
        ( "experiments",
          Obs.Json.Arr (List.map (outcome_json ~metrics_only) outcomes) );
      ])
