(** Experiment registry: maps stable experiment ids to runners. *)

type t = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Stats.Table.t list;
}

let all : t list =
  [
    {
      id = "T1";
      title = "Thread migration cost breakdown";
      run = T1_migration.run;
    };
    {
      id = "T2";
      title = "Messaging layer latency/throughput";
      run = T2_messaging.run;
    };
    {
      id = "F1";
      title = "Thread creation latency vs group size";
      run = F1_thread_create.run;
    };
    {
      id = "F2";
      title = "Thread creation throughput scalability";
      run = F2_spawn_scale.run;
    };
    {
      id = "F3";
      title = "mmap/munmap throughput scalability";
      run = F3_mmap_scale.run;
    };
    { id = "F4"; title = "Page fault service latency"; run = F4_page_fault.run };
    { id = "F5"; title = "Futex latency and throughput"; run = F5_futex.run };
    {
      id = "F6";
      title = "Application scalability (Popcorn vs SMP vs multikernel)";
      run = F6_apps.run;
    };
    {
      id = "F7";
      title = "Process creation scalability (fork storm)";
      run = F7_processes.run;
    };
    {
      id = "T3";
      title = "Remote syscall forwarding (SSI file I/O)";
      run = T3_syscalls.run;
    };
    {
      id = "A1";
      title = "Design-choice ablations (pool, replication, prefetch)";
      run = A1_ablations.run;
    };
    {
      id = "A2";
      title = "Kernel granularity sweep (partitioning trade-off)";
      run = A2_granularity.run;
    };
    {
      id = "R1";
      title = "Migration under injected messaging faults (robustness)";
      run = R1_faults.run;
    };
  ]

let find id =
  List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all

let run_one ?quick (e : t) =
  Printf.printf "\n### %s — %s\n\n%!" e.id e.title;
  let tables = e.run ?quick () in
  List.iter (fun t -> print_string (Stats.Table.render t); print_newline ()) tables

let run_all ?quick () = List.iter (run_one ?quick) all
