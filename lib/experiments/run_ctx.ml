(** Explicit per-run context for the experiment stack.

    Everything an experiment run needs that used to be ambient — the
    observability sink, the machine seed, the quick flag — plus a private
    output buffer, travels in one value. Threading it explicitly (instead
    of a module-level [ref] in [Common]) makes a run self-contained, which
    is what lets [Registry.run_all] fan independent experiments out over
    [Domain]s: each job owns its context, so jobs share nothing and the
    results are identical to a serial run. *)

type t = {
  sink : Obs.Sink.t option;
      (** When set (the CLI/bench [--json] / [--trace-out] /
          [--baseline-out] paths), every machine the run boots gets the
          sink's metrics registry and span recorder attached, and Popcorn
          clusters additionally get the trace ring and per-kernel [rpc.*]
          routing. One experiment may boot many machines; they share the
          run's sink (the span recorder separates them by run index). *)
  seed : int;  (** Machine/PRNG seed for every machine the run boots. *)
  quick : bool;  (** Shrink parameter sweeps for a fast run. *)
  coherence : Coherence.Protocol.t;
      (** Page-coherence protocol every Popcorn cluster of the run boots
          with (the CLI [--coherence] flag), unless an experiment pins its
          own options explicitly. *)
  evq : Sim.Evq.impl;
      (** Event-queue implementation every machine of the run boots with
          (the CLI [--evq] flag). Runs are bit-identical under either; the
          cross-implementation equivalence test and CI gate enforce it. *)
  prof : Obs.Prof.t option;
      (** When set (the [popcornsim profile] path), every machine the run
          boots gets the profiler attached as its engine observer, so host
          self-time, GC deltas and scheduler telemetry accumulate across
          the whole run. Host-side only: simulated results are
          bit-identical with or without it. *)
  out : Buffer.t;
      (** Private output buffer: anything an experiment wants to narrate
          goes here, never to stdout, so concurrent runs cannot interleave.
          [Registry.run_one] folds it into the outcome's rendered output. *)
  mutable engines : Sim.Engine.t list;
      (** Every engine the run booted (pushed by [Common.machine]), so
          [Registry.run_one] can total [Engine.events_processed] after the
          body finishes — the events/sec throughput metric. *)
}

(** The historical default; previously hard-coded in [Common.machine]. *)
let default_seed = 42

let create ?sink ?prof ?(seed = default_seed) ?(quick = false)
    ?(coherence = Coherence.Protocol.Origin_home) ?(evq = Sim.Evq.Heap) () =
  {
    sink;
    seed;
    quick;
    coherence;
    evq;
    prof;
    out = Buffer.create 1024;
    engines = [];
  }

let printf t fmt = Printf.ksprintf (Buffer.add_string t.out) fmt
let output t = Buffer.contents t.out

(** Total simulator events executed by every machine this run booted. *)
let total_events t =
  List.fold_left (fun acc e -> acc + Sim.Engine.events_processed e) 0 t.engines
