(** T1 — Thread-migration cost breakdown.

    Reproduces the paper's migration-cost table: one thread migrates
    between kernels; we decompose the latency into context save, messaging,
    destination-side import, and schedule-in, for four scenarios (same vs
    cross socket, with/without FPU state) plus the dummy-thread-pool
    ablation. *)

open Popcorn

let scenario ctx ?opts ~dst ~fpu () =
  (* 16 kernels x 4 cores on a 4x16 machine: kernel 1 shares a socket with
     kernel 0; kernel 8 is two sockets away. *)
  let result = ref None in
  ignore
    (Common.run_popcorn ctx ?opts ~kernels:16 (fun _cluster th ->
         if fpu then
           th.Api.task.Kernelmodel.Task.ctx <-
             Kernelmodel.Context.touch_fpu
               (Sim.Engine.rng (Types.eng th.Api.cluster))
               th.Api.task.Kernelmodel.Task.ctx;
         Api.compute th (Sim.Time.us 5);
         let b = Api.migrate th ~dst in
         result := Some b));
  match !result with Some b -> b | None -> assert false

let run (ctx : Run_ctx.t) =
  let scenario = scenario ctx in
  let t =
    Stats.Table.create
      ~title:
        "T1: thread migration cost breakdown (one migration, 16-kernel \
         cluster)"
      ~columns:
        [ "scenario"; "save ctx"; "messaging"; "import"; "sched-in"; "total" ]
  in
  let add name (b : Migration.breakdown) =
    Stats.Table.add_row t
      [
        name;
        Stats.Table.fmt_ns (float_of_int b.Migration.save_ctx_ns);
        Stats.Table.fmt_ns (float_of_int b.Migration.messaging_ns);
        Stats.Table.fmt_ns (float_of_int b.Migration.import_ns);
        Stats.Table.fmt_ns (float_of_int b.Migration.schedule_in_ns);
        Stats.Table.fmt_ns (float_of_int b.Migration.total_ns);
      ]
  in
  add "same socket, no FPU" (scenario ~dst:1 ~fpu:false ());
  add "same socket, FPU" (scenario ~dst:1 ~fpu:true ());
  add "cross socket, no FPU" (scenario ~dst:8 ~fpu:false ());
  add "cross socket, FPU" (scenario ~dst:8 ~fpu:true ());
  let no_pool =
    { Types.default_options with Types.use_dummy_pool = false }
  in
  add "cross socket, no dummy pool (ablation)"
    (scenario ~opts:no_pool ~dst:8 ~fpu:false ());
  let het =
    {
      Types.default_options with
      Types.arch_of_kernel =
        (fun k -> if k >= 8 then Types.Arm64 else Types.X86_64);
    }
  in
  add "cross ISA, no FPU (heterogeneous extension)"
    (scenario ~opts:het ~dst:8 ~fpu:false ());
  [ t ]
