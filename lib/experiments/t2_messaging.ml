(** T2 — Messaging-layer microbenchmark.

    One-way latency vs message size, and aggregate throughput vs number of
    concurrent senders, over the shared-memory ring + IPI-doorbell
    transport (the substrate every Popcorn protocol rides on). *)

open Sim

type proto = Ping of { seq : int } | Done

let one_way_latency ctx ~bytes ~cross_socket : Time.t =
  let m = Common.machine ctx () in
  let eng = m.Hw.Machine.eng in
  let received = ref (-1) in
  let sent_at = ref 0 in
  let fabric =
    Msg.Transport.create m ~ring_slots:64
      ~handler:(fun _t ~dst:_ ~src:_ _delivery -> function
      | Ping _ -> received := Time.sub (Engine.now eng) !sent_at
      | Done -> ())
  in
  Msg.Transport.add_node fabric 0 ~home_core:0;
  Msg.Transport.add_node fabric 1
    ~home_core:(if cross_socket then Common.cores_per_socket else 1);
  Engine.spawn eng (fun () ->
      sent_at := Engine.now eng;
      Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes (Ping { seq = 0 }));
  Engine.run eng;
  assert (!received >= 0);
  !received

let throughput ctx ~senders ~msgs_each ~bytes : float =
  let m = Common.machine ctx () in
  let eng = m.Hw.Machine.eng in
  let delivered = ref 0 in
  let fabric =
    Msg.Transport.create m ~ring_slots:256
      ~handler:(fun _t ~dst:_ ~src:_ _delivery -> function
      | Ping _ -> incr delivered
      | Done -> ())
  in
  (* Receiver on core 0 of socket 0; senders spread over remaining cores. *)
  Msg.Transport.add_node fabric 0 ~home_core:0;
  for s = 1 to senders do
    Msg.Transport.add_node fabric s ~home_core:(s mod Common.total_cores)
  done;
  let t0 = ref 0 and t1 = ref 0 in
  for s = 1 to senders do
    Engine.spawn eng (fun () ->
        if !t0 = 0 then t0 := Engine.now eng;
        for i = 1 to msgs_each do
          Msg.Transport.send fabric ~src:s ~dst:0 ~bytes (Ping { seq = i })
        done;
        t1 := max !t1 (Engine.now eng))
  done;
  Engine.run eng;
  (* Throughput over the full drain interval. *)
  Common.ops_per_sec ~ops:!delivered ~elapsed:(Engine.now eng - !t0)

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let one_way_latency = one_way_latency ctx in
  let throughput = throughput ctx in
  let lat =
    Stats.Table.create ~title:"T2a: messaging one-way latency vs size"
      ~columns:[ "size (B)"; "same socket"; "cross socket" ]
  in
  let sizes = if quick then [ 64; 4096 ] else [ 64; 256; 1024; 4096 ] in
  List.iter
    (fun bytes ->
      Stats.Table.add_row lat
        [
          string_of_int bytes;
          Stats.Table.fmt_ns (Common.ns (one_way_latency ~bytes ~cross_socket:false));
          Stats.Table.fmt_ns (Common.ns (one_way_latency ~bytes ~cross_socket:true));
        ])
    sizes;
  let thr =
    Stats.Table.create
      ~title:"T2b: messaging throughput vs concurrent senders (64B)"
      ~columns:[ "senders"; "delivered msgs/s" ]
  in
  let senders = if quick then [ 1; 8 ] else [ 1; 2; 4; 8; 16; 32; 63 ] in
  let msgs_each = if quick then 200 else 1000 in
  List.iter
    (fun s ->
      Stats.Table.add_row thr
        [
          string_of_int s;
          Stats.Table.fmt_rate (throughput ~senders:s ~msgs_each ~bytes:64);
        ])
    senders;
  [ lat; thr ]
