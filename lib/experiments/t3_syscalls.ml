(** T3 — Remote-syscall forwarding (single-system-image file I/O).

    File operations are served by the device-owning kernel; a thread
    elsewhere pays one messaging round trip per syscall. This experiment
    measures the forwarding tax per operation class and the throughput of
    the single VFS server as clients spread across kernels — the
    serialisation the SSI design accepts for device state. *)

open Popcorn
module K = Kernelmodel

let op_latencies ctx ~target =
  let results = ref [] in
  ignore
    (Common.run_popcorn ctx ~kernels:16 (fun cluster th ->
         let eng = Types.eng cluster in
         let timed name f =
           let t0 = Sim.Engine.now eng in
           (match f () with Ok _ -> () | Error e -> failwith e);
           results := (name, float_of_int (Sim.Engine.now eng - t0)) :: !results
         in
         let run_on worker =
           let fd = ref 0 in
           timed "open" (fun () ->
               match Api.open_file worker ~path:"/bench" with
               | Ok f ->
                   fd := f;
                   Ok f
               | Error e -> Error e);
           timed "write 4KiB" (fun () -> Api.file_write worker ~fd:!fd ~len:4096);
           (match Api.file_seek worker ~fd:!fd ~pos:0 with
           | Ok _ -> ()
           | Error e -> failwith e);
           timed "read 4KiB" (fun () -> Api.file_read worker ~fd:!fd ~len:4096);
           timed "close" (fun () ->
               Result.map (fun () -> 0) (Api.close_file worker ~fd:!fd))
         in
         if target = 0 then run_on th
         else begin
           let latch = Workloads.Latch.create eng 1 in
           ignore
             (Api.spawn th ~target (fun worker ->
                  run_on worker;
                  Workloads.Latch.arrive latch));
           Workloads.Latch.wait latch
         end));
  List.rev !results

let server_throughput ctx ~clients ~ops_each =
  let elapsed =
    Common.run_popcorn ctx ~kernels:16 (fun cluster th ->
        let eng = Types.eng cluster in
        let latch = Workloads.Latch.create eng clients in
        for c = 0 to clients - 1 do
          ignore
            (Api.spawn th ~target:(c mod 16) (fun worker ->
                 let fd =
                   match
                     Api.open_file worker ~path:(Printf.sprintf "/f%d" c)
                   with
                   | Ok f -> f
                   | Error e -> failwith e
                 in
                 for _ = 1 to ops_each do
                   match Api.file_write worker ~fd ~len:512 with
                   | Ok _ -> ()
                   | Error e -> failwith e
                 done;
                 Workloads.Latch.arrive latch))
        done;
        Workloads.Latch.wait latch)
  in
  Common.ops_per_sec ~ops:(clients * ops_each) ~elapsed

let run (ctx : Run_ctx.t) =
  let quick = ctx.Run_ctx.quick in
  let op_latencies = op_latencies ctx
  and server_throughput = server_throughput ctx in
  let lat =
    Stats.Table.create
      ~title:"T3a: file syscall latency — local vs forwarded"
      ~columns:[ "operation"; "local (k0)"; "remote (k8)"; "tax" ]
  in
  let local = op_latencies ~target:0 and remote = op_latencies ~target:8 in
  List.iter2
    (fun (name, l) (_, r) ->
      Stats.Table.add_row lat
        [
          name;
          Stats.Table.fmt_ns l;
          Stats.Table.fmt_ns r;
          Printf.sprintf "%.1fx" (r /. l);
        ])
    local remote;
  let thr =
    Stats.Table.create
      ~title:"T3b: VFS server throughput (512B writes/s) vs clients"
      ~columns:[ "clients"; "writes/s" ]
  in
  let counts = if quick then [ 1; 8 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let ops_each = if quick then 50 else 200 in
  List.iter
    (fun clients ->
      Stats.Table.add_row thr
        [
          string_of_int clients;
          Stats.Table.fmt_rate (server_throughput ~clients ~ops_each);
        ])
    counts;
  [ lat; thr ]
