open Sim

type t = {
  eng : Engine.t;
  params : Params.t;
  topo : Topology.t;
  name : string;
  mutable busy : bool;
  mutable last_core : Topology.core;
  waiters : unit Waitq.t; (* pending ops, FIFO *)
  mutable ops : int;
  mutable wait : Time.t;
}

let create eng params topo ~name =
  {
    eng;
    params;
    topo;
    name;
    busy = false;
    last_core = 0;
    waiters = Waitq.create ~eng ();
    ops = 0;
    wait = Time.zero;
  }

let transfer t ~core =
  Params.line_transfer t.params ~same_core:(t.last_core = core)
    ~same_socket:(Topology.same_socket t.topo t.last_core core)

let access t ~core =
  let t0 = Engine.now t.eng in
  if t.busy then Waitq.wait t.eng t.waiters else t.busy <- true;
  (* We now own the line's service slot; pay the transfer. *)
  Engine.sleep t.eng (transfer t ~core);
  t.last_core <- core;
  t.ops <- t.ops + 1;
  t.wait <- Time.add t.wait (Time.sub (Engine.now t.eng) t0);
  (* Hand the slot to the next queued op, or free it. *)
  if not (Waitq.wake_one t.waiters ()) then t.busy <- false

let ops t = t.ops
let total_wait t = t.wait

let reset_stats t =
  t.ops <- 0;
  t.wait <- Time.zero
