open Sim

type fault = Ipi_deliver | Ipi_drop | Ipi_delay of Time.t

type t = {
  eng : Engine.t;
  params : Params.t;
  topo : Topology.t;
  mutable sent : int;
  mutable dropped : int;
  mutable fault_hook :
    (src:Topology.core -> dst:Topology.core -> fault) option;
}

let create eng params topo =
  { eng; params; topo; sent = 0; dropped = 0; fault_hook = None }

let delivery_latency t ~src ~dst =
  let base = Time.add t.params.Params.ipi_latency t.params.Params.irq_entry in
  match Topology.distance t.topo src dst with
  | Topology.Self | Topology.Same_socket -> base
  | Topology.Cross_socket -> Time.add base (Time.ns 300)

let send t ~src ~dst handler =
  t.sent <- t.sent + 1;
  let fault =
    match t.fault_hook with
    | None -> Ipi_deliver
    | Some hook -> hook ~src ~dst
  in
  match fault with
  | Ipi_drop -> t.dropped <- t.dropped + 1
  | Ipi_deliver ->
      Engine.schedule t.eng ~after:(delivery_latency t ~src ~dst) handler
  | Ipi_delay extra ->
      Engine.schedule t.eng
        ~after:(Time.add (delivery_latency t ~src ~dst) extra)
        handler

let set_fault_hook t hook = t.fault_hook <- hook
let sent t = t.sent
let dropped t = t.dropped
