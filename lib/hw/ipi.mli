open Sim

(** Inter-processor interrupts.

    An IPI is the doorbell mechanism of the Popcorn messaging layer: after
    writing a message into a shared-memory ring, the sender kicks the
    destination core. Delivery cost depends on socket distance. *)

type t

type fault = Ipi_deliver | Ipi_drop | Ipi_delay of Time.t
(** Fault-injection verdict for one IPI: delivered normally, silently lost,
    or delivered with extra latency. *)

val create : Engine.t -> Params.t -> Topology.t -> t

val send :
  t -> src:Topology.core -> dst:Topology.core -> (unit -> unit) -> unit
(** Deliver: after the modelled latency, run the handler (a fresh fiber, as
    if in interrupt context on [dst]). When a fault hook is installed it is
    consulted first; a dropped IPI never runs the handler. *)

val set_fault_hook :
  t -> (src:Topology.core -> dst:Topology.core -> fault) option -> unit
(** Install (or remove) a fault-injection hook ([Inject.Plan] is the
    standard provider). No hook means every IPI is delivered. *)

val delivery_latency : t -> src:Topology.core -> dst:Topology.core -> Time.t
(** The latency [send] will charge, exposed for cost breakdowns. *)

val sent : t -> int
(** Total IPIs sent (a contention/overhead metric reported by benches). *)

val dropped : t -> int
(** IPIs lost to fault injection. *)
