open Sim

type t = {
  eng : Engine.t;
  params : Params.t;
  topo : Topology.t;
  mem : Memory.t;
  ipi : Ipi.t;
  mutable metrics : Obs.Metrics.t option;
  mutable spans : Obs.Span.t option;
  mutable causal : Obs.Causal.t option;
}

let create ?seed ?evq ?(params = Params.default) ?(frames_per_socket = 65536)
    ~sockets ~cores_per_socket () =
  let eng = Engine.create ?seed ?evq () in
  let topo = Topology.create ~sockets ~cores_per_socket in
  let mem = Memory.create topo ~frames_per_socket in
  let ipi = Ipi.create eng params topo in
  { eng; params; topo; mem; ipi; metrics = None; spans = None; causal = None }

let attach_obs t ?metrics ?spans ?causal () =
  (match metrics with Some _ -> t.metrics <- metrics | None -> ());
  (match causal with
  | Some c ->
      Obs.Causal.new_run c;
      t.causal <- causal
  | None -> ());
  match spans with
  | Some r ->
      Obs.Span.new_run r;
      t.spans <- spans
  | None -> ()

(* Instrumentation helpers: single option check when observability is off,
   and never sleeping or touching the RNG, so simulated behaviour is
   unchanged either way. *)
let metric_incr t ?kernel name =
  match t.metrics with None -> () | Some m -> Obs.Metrics.incr m ?kernel name

let metric_add t ?kernel name n =
  match t.metrics with None -> () | Some m -> Obs.Metrics.add m ?kernel name n

let metric_observe t ?kernel name x =
  match t.metrics with
  | None -> ()
  | Some m -> Obs.Metrics.observe m ?kernel name x

let causal_send t ~id ~src ~dst ~bytes ~from_span =
  match t.causal with
  | None -> ()
  | Some c ->
      Obs.Causal.emit_send c ~id ~src ~dst ~at:(Engine.now t.eng) ~bytes
        ~from_span

let causal_deliver t ~id ~dst =
  match t.causal with
  | None -> ()
  | Some c -> Obs.Causal.emit_deliver c ~id ~dst ~at:(Engine.now t.eng)

let causal_link t ~id ~span =
  match t.causal with
  | None -> ()
  | Some c -> Obs.Causal.link c ~id ~span

let now t = Engine.now t.eng

let compute t dt = Engine.sleep t.eng dt

let copy t ~bytes ~src_socket ~dst_socket =
  let cross_socket = src_socket <> dst_socket in
  Engine.sleep t.eng (Params.copy_cost t.params ~bytes ~cross_socket)

let line_access t ~from ~core =
  let same_core = from = core in
  let same_socket = Topology.same_socket t.topo from core in
  Engine.sleep t.eng (Params.line_transfer t.params ~same_core ~same_socket)
