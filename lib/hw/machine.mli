open Sim

(** The simulated machine: engine, topology, parameters, physical memory and
    IPI fabric bundled together. Every OS model (Popcorn, SMP Linux,
    multikernel) boots on a [Machine.t]. *)

type t = {
  eng : Engine.t;
  params : Params.t;
  topo : Topology.t;
  mem : Memory.t;
  ipi : Ipi.t;
  mutable metrics : Obs.Metrics.t option;
  mutable spans : Obs.Span.t option;
  mutable causal : Obs.Causal.t option;
}

val create :
  ?seed:int ->
  ?evq:Evq.impl ->
  ?params:Params.t ->
  ?frames_per_socket:int ->
  sockets:int ->
  cores_per_socket:int ->
  unit ->
  t
(** Build a machine with a fresh engine. [evq] selects the engine's
    event-queue implementation (default the binary heap; runs are
    bit-identical under either). [frames_per_socket] defaults to 65536
    (256 MiB of 4 KiB pages per socket). *)

val attach_obs :
  t ->
  ?metrics:Obs.Metrics.t ->
  ?spans:Obs.Span.t ->
  ?causal:Obs.Causal.t ->
  unit ->
  unit
(** Attach observability to this machine. The messaging layer and OS models
    consult [metrics]/[spans]/[causal] on their hot paths; with nothing
    attached the cost is one [option] check and simulated results are
    bit-identical. Attaching [spans] or [causal] also opens a new run in the
    recorder so repeated boots export to distinct trace tracks. *)

val metric_incr : t -> ?kernel:int -> string -> unit
val metric_add : t -> ?kernel:int -> string -> int -> unit
val metric_observe : t -> ?kernel:int -> string -> float -> unit
(** No-ops when no metrics registry is attached. *)

val causal_send :
  t -> id:int -> src:int -> dst:int -> bytes:int -> from_span:int option -> unit

val causal_deliver : t -> id:int -> dst:int -> unit

val causal_link : t -> id:int -> span:int -> unit
(** Causal-event helpers for the messaging layer and the OS models; no-ops
    when no {!Obs.Causal.t} recorder is attached. *)

val now : t -> Time.t
val compute : t -> Time.t -> unit
(** A task performing pure computation for the given duration. *)

val copy : t -> bytes:int -> src_socket:int -> dst_socket:int -> unit
(** A task performing a memory copy; sleeps for the modelled duration. *)

val line_access : t -> from:Topology.core -> core:Topology.core -> unit
(** A task pulling one cache line last touched by [from] into [core]. *)
