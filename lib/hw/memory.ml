type frame = int

(* Free frames are represented lazily: a per-socket bump cursor over the
   never-yet-allocated range plus a stack of explicitly freed frames.
   Materializing every frame id up front (the old eager per-socket stack)
   allocated frames_per_socket x sockets cons cells — several MB of
   short-lived garbage per machine boot, paid again for every data point
   that boots a fresh machine. Allocation order is unchanged: freed frames
   are LIFO and always preferred (in the eager stack they sat above the
   untouched range), then pristine frames ascend — exactly the order the
   eager stack popped. *)
type t = {
  topo : Topology.t;
  frames_per_socket : int;
  next : int array; (* per-socket: first never-allocated frame offset *)
  freed : frame Stack.t array; (* one per socket: explicitly freed frames *)
  allocated : Bytes.t; (* 1 byte per frame: 0 free, 1 used *)
  mutable used : int;
}

let create topo ~frames_per_socket =
  assert (frames_per_socket > 0);
  let sockets = Topology.sockets topo in
  {
    topo;
    frames_per_socket;
    next = Array.make sockets 0;
    freed = Array.init sockets (fun _ -> Stack.create ());
    allocated = Bytes.make (sockets * frames_per_socket) '\000';
    used = 0;
  }

let frames_per_socket t = t.frames_per_socket
let total_frames t = Topology.sockets t.topo * t.frames_per_socket

let take t node =
  let f =
    match Stack.pop_opt t.freed.(node) with
    | Some f -> f
    | None ->
        let n = t.next.(node) in
        if n >= t.frames_per_socket then -1
        else begin
          t.next.(node) <- n + 1;
          (node * t.frames_per_socket) + n
        end
  in
  if f < 0 then None
  else begin
    Bytes.set t.allocated f '\001';
    t.used <- t.used + 1;
    Some f
  end

let alloc t ~node =
  assert (node >= 0 && node < Topology.sockets t.topo);
  match take t node with
  | Some f -> Some f
  | None ->
      let sockets = Topology.sockets t.topo in
      let rec try_nodes i =
        if i >= sockets then None
        else if i = node then try_nodes (i + 1)
        else match take t i with Some f -> Some f | None -> try_nodes (i + 1)
      in
      try_nodes 0

let alloc_exn t ~node =
  match alloc t ~node with
  | Some f -> f
  | None -> failwith "Memory.alloc_exn: out of physical frames"

let node_of_frame t f =
  assert (f >= 0 && f < total_frames t);
  f / t.frames_per_socket

let free t f =
  if f < 0 || f >= total_frames t then
    invalid_arg "Memory.free: frame out of range";
  if Bytes.get t.allocated f = '\000' then
    invalid_arg "Memory.free: double free";
  Bytes.set t.allocated f '\000';
  t.used <- t.used - 1;
  Stack.push f t.freed.(node_of_frame t f)

let used_count t = t.used
let free_count t = total_frames t - t.used
