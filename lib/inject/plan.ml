open Sim

type rates = {
  drop : float;
  duplicate : float;
  delay : float;
  delay_max : Time.t;
  doorbell_loss : float;
  doorbell_recovery : Time.t;
}

let zero =
  {
    drop = 0.;
    duplicate = 0.;
    delay = 0.;
    delay_max = Time.zero;
    doorbell_loss = 0.;
    doorbell_recovery = Time.zero;
  }

type stall = { node : int; from_ : Time.t; until_ : Time.t }

type t = {
  rng : Prng.t;
  mutable default_rates : rates;
  links : (int * int, rates) Hashtbl.t;
  mutable stalls : stall list;
  mutable st_drops : int;
  mutable st_duplicates : int;
  mutable st_delays : int;
  mutable st_doorbells_lost : int;
  mutable st_stalls_applied : int;
  mutable st_ipi_drops : int;
}

(* The plan's stream is keyed off the engine's seed (salted so it differs
   from the engine's own stream) — one simulation seed reproduces the whole
   fault schedule — but it is a separate generator: drawing fault decisions
   never advances the engine's PRNG, so attaching a plan cannot perturb
   what the simulation itself draws. *)
let create ?seed ?(default_rates = zero) eng =
  let seed =
    match seed with
    | Some s -> s
    | None -> Engine.seed eng lxor 0x494e4a45 (* "INJE" *)
  in
  {
    rng = Prng.create ~seed;
    default_rates;
    links = Hashtbl.create 16;
    stalls = [];
    st_drops = 0;
    st_duplicates = 0;
    st_delays = 0;
    st_doorbells_lost = 0;
    st_stalls_applied = 0;
    st_ipi_drops = 0;
  }

let set_default_rates t r = t.default_rates <- r
let set_link t ~src ~dst r = Hashtbl.replace t.links (src, dst) r

let add_stall t ~node ~from_ ~until_ =
  if until_ < from_ then invalid_arg "Plan.add_stall: until_ < from_";
  t.stalls <- { node; from_; until_ } :: t.stalls

let link_rates t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some r -> r
  | None -> t.default_rates

(* Rate-0 decisions must not touch the stream: a zero-rate plan then draws
   nothing at all, so its presence is undetectable (bit-identical runs) and
   a non-zero plan's schedule does not depend on how many zero-rate links
   exist. *)
let hit t rate = rate > 0. && Prng.float t.rng 1.0 < rate

let on_send t ~src ~dst ~now:_ : Msg.Transport.fault_action =
  let r = link_rates t ~src ~dst in
  if hit t r.drop then begin
    t.st_drops <- t.st_drops + 1;
    Msg.Transport.Drop
  end
  else if hit t r.duplicate then begin
    t.st_duplicates <- t.st_duplicates + 1;
    Msg.Transport.Duplicate
  end
  else if hit t r.delay && r.delay_max > 0 then begin
    t.st_delays <- t.st_delays + 1;
    Msg.Transport.Delay (1 + Prng.int t.rng r.delay_max)
  end
  else Msg.Transport.Pass

let on_doorbell t ~src ~dst ~now:_ =
  let r = link_rates t ~src ~dst in
  if hit t r.doorbell_loss then begin
    t.st_doorbells_lost <- t.st_doorbells_lost + 1;
    Some (Time.max r.doorbell_recovery (Time.ns 1))
  end
  else None

let on_deliver t ~node ~now =
  let extra =
    List.fold_left
      (fun acc s ->
        if s.node = node && now >= s.from_ && now < s.until_ then
          Time.max acc (Time.sub s.until_ now)
        else acc)
      Time.zero t.stalls
  in
  if extra > 0 then t.st_stalls_applied <- t.st_stalls_applied + 1;
  extra

let attach t transport =
  Msg.Transport.set_hooks transport
    (Some
       {
         Msg.Transport.on_send =
           (fun ~src ~dst ~now -> on_send t ~src ~dst ~now);
         on_doorbell = (fun ~src ~dst ~now -> on_doorbell t ~src ~dst ~now);
         on_deliver = (fun ~node ~now -> on_deliver t ~node ~now);
       })

let detach transport = Msg.Transport.set_hooks transport None

let attach_ipi t ipi =
  Hw.Ipi.set_fault_hook ipi
    (Some
       (fun ~src:_ ~dst:_ ->
         if hit t t.default_rates.doorbell_loss then begin
           t.st_ipi_drops <- t.st_ipi_drops + 1;
           Hw.Ipi.Ipi_drop
         end
         else Hw.Ipi.Ipi_deliver))

type stats = {
  drops : int;
  duplicates : int;
  delays : int;
  doorbells_lost : int;
  stalls_applied : int;
  ipi_drops : int;
}

let stats t =
  {
    drops = t.st_drops;
    duplicates = t.st_duplicates;
    delays = t.st_delays;
    doorbells_lost = t.st_doorbells_lost;
    stalls_applied = t.st_stalls_applied;
    ipi_drops = t.st_ipi_drops;
  }

let injected t =
  t.st_drops + t.st_duplicates + t.st_delays + t.st_doorbells_lost
  + t.st_stalls_applied + t.st_ipi_drops
