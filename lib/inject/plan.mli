(** Deterministic fault-injection plans for the inter-kernel fabric.

    A plan is a seeded, reproducible fault schedule: every fault decision is
    drawn from the plan's own {!Sim.Prng} stream (keyed off the engine's
    seed, but independent of the engine's main stream — attaching a plan
    never perturbs the simulation's other random draws). Given the same
    (seed, rates) a plan makes the identical drop/delay/duplicate decisions
    in the identical order, so faulty runs are as reproducible as fault-free
    ones — the property the R1 experiment and the regression tests rely on.

    A plan expresses, per link (src kernel -> dst kernel) or as a default
    for all links:
    - message {b drop}, {b duplicate} and {b delay} rates (with a delay
      bound),
    - {b doorbell loss}: the ring write lands but the IPI is lost, so an
      idle receive worker only notices the message at its next recovery
      poll,
    plus timed {b kernel stall windows}: a kernel stops draining its
    receive ring for [\[from_, until_\]].

    Attach a plan to a {!Msg.Transport.t} with {!attach} (and, for OS
    models that use raw IPIs, to {!Hw.Ipi.t} with {!attach_ipi}); faults
    then apply uniformly to whatever runs over that fabric — Popcorn, the
    multikernel baseline, or any future OS model. A plan with all-zero
    rates and no stalls draws nothing and perturbs nothing: results are
    bit-identical to runs with no plan attached. *)

type rates = {
  drop : float;  (** probability a message is lost in the ring. *)
  duplicate : float;  (** probability a message is enqueued twice. *)
  delay : float;  (** probability a message is delayed. *)
  delay_max : Sim.Time.t;
      (** delayed messages get uniform extra latency in (0, delay_max]. *)
  doorbell_loss : float;  (** probability a needed doorbell IPI is lost. *)
  doorbell_recovery : Sim.Time.t;
      (** how long a lost doorbell leaves the message unnoticed (the
          receive path's poll interval). *)
}

val zero : rates
(** All rates 0 — a plan built from this injects nothing. *)

type t

val create : ?seed:int -> ?default_rates:rates -> Sim.Engine.t -> t
(** A plan whose fault stream is seeded from [seed] (default: derived from
    the engine's seed, so one simulation seed reproduces everything) and
    whose per-link default is [default_rates] (default {!zero}). *)

val set_default_rates : t -> rates -> unit
(** Replace the default rates (links without an explicit override). Useful
    to open a fault window mid-run: start at {!zero}, raise, lower again. *)

val set_link : t -> src:int -> dst:int -> rates -> unit
(** Override the rates of one directed link. *)

val add_stall : t -> node:int -> from_:Sim.Time.t -> until_:Sim.Time.t -> unit
(** Schedule a stall window: [node]'s receive worker processes nothing in
    [\[from_, until_\]] (messages arriving during the window are delivered
    when it ends). *)

type stats = {
  drops : int;
  duplicates : int;
  delays : int;
  doorbells_lost : int;
  stalls_applied : int;  (** deliveries delayed by a stall window. *)
  ipi_drops : int;  (** raw IPIs dropped via {!attach_ipi}. *)
}

val stats : t -> stats

val injected : t -> int
(** Total faults injected so far (sum of every {!stats} counter). *)

val attach : t -> 'a Msg.Transport.t -> unit
(** Install this plan as the transport's fault hooks (replacing any
    previous hooks). *)

val detach : 'a Msg.Transport.t -> unit
(** Remove whatever hooks are installed on the transport. *)

val attach_ipi : t -> Hw.Ipi.t -> unit
(** Subject raw IPIs to the plan's {e default} doorbell-loss rate (lost
    IPIs simply never fire — callers must tolerate that). For OS models
    that signal cores directly rather than through {!Msg.Transport}. *)

(** {1 Decision procedures}

    Exposed for tests and for wiring custom transports; each consults the
    plan's seeded stream and bumps the matching counter. *)

val on_send :
  t -> src:int -> dst:int -> now:Sim.Time.t -> Msg.Transport.fault_action

val on_doorbell :
  t -> src:int -> dst:int -> now:Sim.Time.t -> Sim.Time.t option

val on_deliver : t -> node:int -> now:Sim.Time.t -> Sim.Time.t
