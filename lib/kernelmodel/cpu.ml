open Sim

type t = {
  eng : Engine.t;
  params : Hw.Params.t;
  core : Hw.Topology.core;
  quantum : Time.t;
  runq : unit Waitq.t;
  mutable occupied : bool;
  mutable busy : Time.t;
  mutable switches : int;
  mutable assigned : int;
}

let create eng params ~core ~quantum =
  assert (quantum > 0);
  {
    eng;
    params;
    core;
    quantum;
    runq = Waitq.create ~eng ();
    occupied = false;
    busy = Time.zero;
    switches = 0;
    assigned = 0;
  }

let core t = t.core

let acquire t =
  if not t.occupied then t.occupied <- true
  else begin
    Waitq.wait t.eng t.runq;
    (* Ownership was handed off to us; pay the switch-in cost. *)
    t.switches <- t.switches + 1;
    Engine.sleep t.eng t.params.Hw.Params.context_switch
  end

let release t = if not (Waitq.wake_one t.runq ()) then t.occupied <- false

let compute t dt =
  assert (dt >= 0);
  acquire t;
  let rec go remaining =
    let slice = Time.min remaining t.quantum in
    Engine.sleep t.eng slice;
    t.busy <- Time.add t.busy slice;
    let remaining = Time.sub remaining slice in
    if remaining > 0 then begin
      (* Quantum expired: yield to queued fibers, if any, then requeue. *)
      if Waitq.length t.runq > 0 then begin
        release t;
        acquire t
      end;
      go remaining
    end
  in
  go dt;
  release t

let assign t = t.assigned <- t.assigned + 1
let unassign t = t.assigned <- max 0 (t.assigned - 1)
let assigned t = t.assigned
let load t = (if t.occupied then 1 else 0) + Waitq.length t.runq
let busy_time t = t.busy
let switches t = t.switches
