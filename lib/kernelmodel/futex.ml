open Sim

type t = { eng : Engine.t; queues : (int, unit Waitq.t) Hashtbl.t }

let create eng = { eng; queues = Hashtbl.create 64 }

let queue t addr =
  match Hashtbl.find_opt t.queues addr with
  | Some q -> q
  | None ->
      let q = Waitq.create ~eng:t.eng () in
      Hashtbl.add t.queues addr q;
      q

type wait_result = Woken | Timed_out

let wait t ~addr ?timeout () =
  let q = queue t addr in
  match timeout with
  | None ->
      Waitq.wait t.eng q;
      Woken
  | Some timeout -> (
      match Waitq.wait_timeout t.eng q ~timeout with
      | Waitq.Signalled () -> Woken
      | Waitq.Timed_out -> Timed_out)

let wake t ~addr ~count =
  match Hashtbl.find_opt t.queues addr with
  | None -> 0
  | Some q ->
      let rec go n =
        if n >= count then n
        else if Waitq.wake_one q () then go (n + 1)
        else n
      in
      go 0

let requeue t ~from_addr ~to_addr ~max_wake ~max_move =
  let woken = wake t ~addr:from_addr ~count:max_wake in
  match Hashtbl.find_opt t.queues from_addr with
  | None -> (woken, 0)
  | Some src ->
      let dst = queue t to_addr in
      let rec move n =
        if n >= max_move then n
        else
          match Waitq.take src with
          | None -> n
          | Some resume ->
              ignore (Waitq.push dst resume);
              move (n + 1)
      in
      (woken, move 0)

let waiters t ~addr =
  match Hashtbl.find_opt t.queues addr with
  | None -> 0
  | Some q -> Waitq.length q
