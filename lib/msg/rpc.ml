open Sim

(* Response delivery may race with the caller still executing its send
   (which sleeps for the wire costs): the cell buffers an early response
   until the caller parks. *)
type 'r cell = Unresolved | Waiting of ('r -> unit) | Done of 'r

type retry_policy = {
  max_tries : int;
  base_timeout : Time.t;
  backoff_factor : int;
  max_timeout : Time.t;
}

let default_retry =
  {
    max_tries = 4;
    base_timeout = Time.us 50;
    backoff_factor = 2;
    max_timeout = Time.ms 1;
  }

type retry_stats = {
  calls : int;
  retried : int;  (** retransmissions (attempts beyond the first). *)
  recovered : int;  (** calls that succeeded after at least one retry. *)
  gave_up : int;  (** calls that exhausted every attempt. *)
}

type 'r t = {
  eng : Engine.t;
  mutable next_ticket : int;
  waiting : (int, 'r -> unit) Hashtbl.t;
  mutable rt_calls : int;
  mutable rt_retried : int;
  mutable rt_recovered : int;
  mutable rt_gave_up : int;
  mutable obs : rpc_metrics option;
      (** rpc.* counter handles for this kernel, resolved once at
          [set_metrics] instead of a by-name registry probe per call. *)
}

and rpc_metrics = {
  rm_calls : Obs.Metrics.counter_handle;
  rm_retried : Obs.Metrics.counter_handle;
  rm_recovered : Obs.Metrics.counter_handle;
  rm_gave_up : Obs.Metrics.counter_handle;
}

let create eng =
  {
    eng;
    next_ticket = 1;
    waiting = Hashtbl.create 64;
    rt_calls = 0;
    rt_retried = 0;
    rt_recovered = 0;
    rt_gave_up = 0;
    obs = None;
  }

let set_metrics t reg ~kernel =
  t.obs <-
    Some
      {
        rm_calls = Obs.Metrics.counter_handle reg ~kernel "rpc.calls";
        rm_retried = Obs.Metrics.counter_handle reg ~kernel "rpc.retried";
        rm_recovered = Obs.Metrics.counter_handle reg ~kernel "rpc.recovered";
        rm_gave_up = Obs.Metrics.counter_handle reg ~kernel "rpc.gave_up";
      }

let obs_incr t field =
  match t.obs with
  | None -> ()
  | Some h -> Obs.Metrics.handle_incr (field h)

let fresh t =
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  ticket

let register t callback =
  let ticket = fresh t in
  Hashtbl.replace t.waiting ticket callback;
  ticket

let call t send =
  obs_incr t (fun h -> h.rm_calls);
  let cell = ref Unresolved in
  let ticket =
    register t (fun r ->
        match !cell with
        | Waiting resume -> resume r
        | Unresolved -> cell := Done r
        | Done _ -> ())
  in
  send ticket;
  match !cell with
  | Done r -> r
  | Waiting _ -> assert false
  | Unresolved ->
      Engine.suspend t.eng (fun resume ->
          match !cell with
          | Done r -> resume r
          | Unresolved -> cell := Waiting resume
          | Waiting _ -> assert false)

let call_timeout t ~timeout send =
  (* [result]: Some (Some r) = responded, Some None = timed out. *)
  let result = ref None in
  let waiter = ref None in
  let deliver out =
    match !waiter with Some resume -> resume out | None -> result := Some out
  in
  let ticket = register t (fun r -> deliver (Some r)) in
  Engine.schedule t.eng ~after:timeout (fun () ->
      if Hashtbl.mem t.waiting ticket then begin
        Hashtbl.remove t.waiting ticket;
        deliver None
      end);
  send ticket;
  match !result with
  | Some out -> out
  | None ->
      Engine.suspend t.eng (fun resume ->
          match !result with
          | Some out -> resume out
          | None -> waiter := Some resume)

(* Retransmit until a response lands or the policy is exhausted. Each
   attempt uses a fresh ticket, so a response to a timed-out attempt is
   dropped as stale rather than completing a later attempt; the per-attempt
   timeout grows geometrically (capped), which doubles as the backoff —
   the caller is parked for the whole window before retransmitting. *)
let call_retry t ?(policy = default_retry) send =
  assert (policy.max_tries >= 1);
  assert (policy.base_timeout > 0);
  t.rt_calls <- t.rt_calls + 1;
  obs_incr t (fun h -> h.rm_calls);
  let rec attempt i ~timeout =
    match call_timeout t ~timeout (fun ticket -> send ~attempt:i ticket) with
    | Some r ->
        if i > 1 then begin
          t.rt_recovered <- t.rt_recovered + 1;
          obs_incr t (fun h -> h.rm_recovered)
        end;
        Some r
    | None when i >= policy.max_tries ->
        t.rt_gave_up <- t.rt_gave_up + 1;
        obs_incr t (fun h -> h.rm_gave_up);
        None
    | None ->
        t.rt_retried <- t.rt_retried + 1;
        obs_incr t (fun h -> h.rm_retried);
        attempt (i + 1)
          ~timeout:
            (Time.min
               (Time.scale policy.backoff_factor timeout)
               policy.max_timeout)
  in
  attempt 1 ~timeout:(Time.min policy.base_timeout policy.max_timeout)

let retry_stats t =
  {
    calls = t.rt_calls;
    retried = t.rt_retried;
    recovered = t.rt_recovered;
    gave_up = t.rt_gave_up;
  }

let complete t ~ticket r =
  match Hashtbl.find_opt t.waiting ticket with
  | None -> () (* stale response for a timed-out call *)
  | Some resume ->
      Hashtbl.remove t.waiting ticket;
      resume r

let forget t ~ticket =
  if Hashtbl.mem t.waiting ticket then begin
    Hashtbl.remove t.waiting ticket;
    true
  end
  else false

let pending t = Hashtbl.length t.waiting
