open Sim

(** Ticketed request/response matching over {!Transport}.

    The OS model's protocol variant carries ticket integers; this module
    owns the ticket namespace and the table from ticket to parked caller.
    A typical remote operation is:

    {[
      let resp =
        Rpc.call rpc (fun ticket ->
            Transport.send fabric ~src ~dst ~bytes (Page_request { ticket; ... }))
      in ...
    ]}

    and the message handler for the response side runs
    [Rpc.complete rpc ~ticket resp]. *)

type 'r t
(** ['r] is the response payload type. *)

val create : Engine.t -> 'r t

val set_metrics : 'r t -> Obs.Metrics.t -> kernel:int -> unit
(** Route this table's rpc.* counters (calls/retried/recovered/gave_up) to a
    metrics registry, scoped to [kernel]. No-op cost when never called. *)

val register : 'r t -> ('r -> unit) -> int
(** Allocate a ticket whose completion runs the callback instead of waking a
    parked fiber — the building block for parallel broadcasts where one
    fiber waits on many tickets at once. *)

val call : 'r t -> (int -> unit) -> 'r
(** [call t send] allocates a ticket, invokes [send ticket] (which should
    transmit the request), then parks the calling fiber until
    {!complete} is invoked with that ticket. *)

val call_timeout : 'r t -> timeout:Time.t -> (int -> unit) -> 'r option
(** Like {!call}; [None] if no response arrives in time (the ticket is then
    forgotten and a late response is dropped). *)

(** {1 Retry}

    Resilience against a lossy transport (fault injection): retransmit a
    request until a response lands or the policy is exhausted. *)

type retry_policy = {
  max_tries : int;  (** total attempts, including the first (>= 1). *)
  base_timeout : Time.t;  (** per-attempt timeout of the first attempt. *)
  backoff_factor : int;
      (** the timeout is multiplied by this after each failed attempt —
          capped exponential backoff (the caller stays parked for the whole
          window, so the growing timeout is the backoff). *)
  max_timeout : Time.t;  (** cap on the per-attempt timeout. *)
}

val default_retry : retry_policy
(** 4 tries, 50us base, doubling, capped at 1ms. *)

type retry_stats = {
  calls : int;  (** {!call_retry} invocations. *)
  retried : int;  (** retransmissions (attempts beyond a call's first). *)
  recovered : int;  (** calls that succeeded after at least one retry. *)
  gave_up : int;  (** calls that exhausted every attempt. *)
}

val call_retry :
  'r t -> ?policy:retry_policy -> (attempt:int -> int -> unit) -> 'r option
(** [call_retry t send] runs [send ~attempt ticket] (attempts number from
    1) with a fresh ticket per attempt, parking until a response or the
    attempt's timeout. A response to a timed-out attempt is dropped as
    stale — it can never complete a later attempt. [None] after
    [max_tries] failures. *)

val retry_stats : 'r t -> retry_stats
(** Cumulative {!call_retry} counters for this table. *)

val complete : 'r t -> ticket:int -> 'r -> unit
(** Deliver a response. Unknown or stale tickets are ignored (they belong to
    timed-out calls). *)

val forget : 'r t -> ticket:int -> bool
(** Drop a pending ticket (e.g. when a caller times out on its own);
    returns whether it was still pending. A response arriving later is
    silently ignored. *)

val pending : 'r t -> int
(** Number of in-flight calls. *)
