open Sim

type node = int

type 'a packet = {
  src : node;
  src_core : Hw.Topology.core;
  payload : 'a;
  bytes : int;
  seq : int;  (** per-(src,dst) sequence number, for duplicate suppression. *)
  msg_id : int;  (** unique per transport; keyed into causal events. *)
  from_span : int option;
      (** id of the protocol span this message was sent from (trace
          context carried on the wire), when the sender annotated it. *)
  enqueued_at : Time.t;
  doorbell : Time.t;
      (** IPI delivery latency to charge before processing; non-zero only
          when the receive worker was idle at send time. *)
  extra_delay : Time.t;
      (** injected per-message delivery latency (fault injection). *)
}

(* This kernel's msg.* metric cells, resolved once instead of a by-name
   registry probe on every message (several updates per delivery — the
   hottest instrumentation in the simulator). *)
type ep_metrics = {
  em_sent : Obs.Metrics.counter_handle;
  em_bytes : Obs.Metrics.counter_handle;
  em_dropped : Obs.Metrics.counter_handle;
  em_duplicated : Obs.Metrics.counter_handle;
  em_delivered : Obs.Metrics.counter_handle;
  em_dup_suppressed : Obs.Metrics.counter_handle;
  em_doorbells : Obs.Metrics.counter_handle;
  em_doorbells_lost : Obs.Metrics.counter_handle;
  em_latency : Obs.Metrics.hist_handle;
}

type 'a endpoint = {
  node : node;
  core : Hw.Topology.core;
  inbox : 'a packet Channel.t;
  handler_label : Sim.Engine.label;
      (** interned ["msg-handler-n<node>"] label, built once at [add_node]:
          the worker spawns one handler fiber per delivered message, and
          formatting + interning that name per message was the single
          largest allocation on the delivery path. *)
  mutable last_seq : int array;
      (** per-source highest delivered sequence number, indexed by source
          node (grown on demand; 0 = nothing delivered); rings are FIFO per
          link, so a packet at or below it is a duplicate. *)
  mutable tx_seq : int array;
      (** last sent sequence number per destination node, indexed by
          destination (grown on demand): the sender-side twin of
          [last_seq]. Sends from a node without an endpoint fall back to
          the transport-level table. *)
  mutable worker_idle : bool;
  mutable em : (Obs.Metrics.t * ep_metrics) option;
      (** handles + the registry they were resolved against (observability
          can be attached after the endpoint exists, so resolution is
          lazy; the registry is re-checked by physical equality). *)
}

type stats = {
  sent : int;
  delivered : int;
  doorbells : int;
  total_latency : Time.t;
  dropped : int;  (** messages lost to fault injection. *)
  duplicated : int;  (** extra copies enqueued by fault injection. *)
  dup_suppressed : int;  (** duplicates filtered before the handler. *)
  doorbells_lost : int;  (** doorbell IPIs lost to fault injection. *)
}

(* Fault-injection interface: an installed hook set sees every message and
   doorbell and may perturb it. [Inject.Plan] is the standard provider; the
   indirection keeps this library free of a dependency on it. *)
type fault_action = Pass | Drop | Duplicate | Delay of Time.t

type hooks = {
  on_send : src:node -> dst:node -> now:Time.t -> fault_action;
  on_doorbell : src:node -> dst:node -> now:Time.t -> Time.t option;
      (** [None]: the IPI arrives normally. [Some d]: the doorbell is lost
          and the idle worker only notices the ring after [d] (the receive
          path's recovery poll). *)
  on_deliver : node:node -> now:Time.t -> Time.t;
      (** Extra receiver-side delay before the worker processes the next
          packet (kernel stall windows). 0 when the kernel is healthy. *)
}

(** What the handler learns about the packet beyond src/dst/payload; the
    msg id keys the delivery into the causal-event log so protocol handlers
    can link the spans they open back to the message that caused them. *)
type delivery = { msg_id : int; from_span : int option }

type 'a t = {
  machine : Hw.Machine.t;
  ring_slots : int;
  handler : 'a t -> dst:node -> src:node -> delivery -> 'a -> unit;
  endpoints : (node, 'a endpoint) Hashtbl.t;
  seq_tx : (node * node, int) Hashtbl.t;
      (** (src,dst) -> last sent seq, for sources {e without} an endpoint
          ([send_from_core] is public); endpoint sources use their
          [tx_seq] array instead. *)
  mutable next_msg_id : int;
  mutable hooks : hooks option;
  mutable st_sent : int;
  mutable st_delivered : int;
  mutable st_doorbells : int;
  mutable st_latency : Time.t;
  mutable st_dropped : int;
  mutable st_duplicated : int;
  mutable st_dup_suppressed : int;
  mutable st_doorbells_lost : int;
  mutable jitter : Time.t;
}

let create machine ~ring_slots ~handler =
  assert (ring_slots >= 1);
  {
    machine;
    ring_slots;
    handler;
    endpoints = Hashtbl.create 16;
    seq_tx = Hashtbl.create 64;
    next_msg_id = 0;
    hooks = None;
    st_sent = 0;
    st_delivered = 0;
    st_doorbells = 0;
    st_latency = Time.zero;
    st_dropped = 0;
    st_duplicated = 0;
    st_dup_suppressed = 0;
    st_doorbells_lost = 0;
    jitter = Time.zero;
  }

let machine t = t.machine

let endpoint t node =
  match Hashtbl.find_opt t.endpoints node with
  | Some ep -> ep
  | None -> invalid_arg (Printf.sprintf "Transport: unknown node %d" node)

let nodes t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.endpoints [] |> List.sort compare

let home_core t node = (endpoint t node).core

let set_hooks t hooks = t.hooks <- hooks

(* One [option] check when observability is off; one pointer compare on the
   cached-handle hit path. *)
let ep_metrics t ep =
  match t.machine.Hw.Machine.metrics with
  | None -> None
  | Some reg -> (
      match ep.em with
      | Some (r, h) when r == reg -> Some h
      | _ ->
          let kernel = ep.node in
          let c name = Obs.Metrics.counter_handle reg ~kernel name in
          let h =
            {
              em_sent = c "msg.sent";
              em_bytes = c "msg.bytes";
              em_dropped = c "msg.dropped";
              em_duplicated = c "msg.duplicated";
              em_delivered = c "msg.delivered";
              em_dup_suppressed = c "msg.dup_suppressed";
              em_doorbells = c "msg.doorbells";
              em_doorbells_lost = c "msg.doorbells_lost";
              em_latency = Obs.Metrics.hist_handle reg ~kernel "msg.latency_ns";
            }
          in
          ep.em <- Some (reg, h);
          Some h)

let ep_incr t ep field =
  match ep_metrics t ep with
  | None -> ()
  | Some h -> Obs.Metrics.handle_incr (field h)

(* Receiver-side cost to pull a message out of the ring and enter the
   handler: payload copy plus a little dispatch work. *)
let receive_cost t ep (pkt : 'a packet) =
  let m = t.machine in
  let cross =
    not (Hw.Topology.same_socket m.Hw.Machine.topo ep.core pkt.src_core)
  in
  let copy =
    Hw.Params.copy_cost m.Hw.Machine.params ~bytes:pkt.bytes
      ~cross_socket:cross
  in
  Time.add copy (Time.ns 150)

let worker_loop t ep =
  let m = t.machine in
  let eng = m.Hw.Machine.eng in
  let process (pkt : 'a packet) =
    (* A doorbell wake-up: the IPI takes this long to reach us. *)
    Engine.sleep eng pkt.doorbell;
    (* Injected per-message delivery latency. *)
    Engine.sleep eng pkt.extra_delay;
    (* Injected kernel stall: this kernel stops draining its ring. *)
    (match t.hooks with
    | Some h ->
        let stall = h.on_deliver ~node:ep.node ~now:(Engine.now eng) in
        if stall > 0 then Engine.sleep eng stall
    | None -> ());
    Engine.sleep eng (receive_cost t ep pkt);
    (* Robustness-testing jitter: a per-message processing delay. It keeps
       each ring FIFO (as real shared-memory rings are) while perturbing
       interleavings across kernels. *)
    if t.jitter > 0 then
      Engine.sleep eng (Sim.Prng.int (Engine.rng eng) (t.jitter + 1));
    (* Duplicate suppression: links are FIFO, so any packet whose sequence
       number does not advance the per-source high-water mark has already
       been delivered (a retransmission or an injected duplicate). *)
    let last =
      if pkt.src < Array.length ep.last_seq then ep.last_seq.(pkt.src) else 0
    in
    if pkt.seq <= last then begin
      t.st_dup_suppressed <- t.st_dup_suppressed + 1;
      ep_incr t ep (fun h -> h.em_dup_suppressed)
    end
    else begin
      if pkt.src >= Array.length ep.last_seq then begin
        let a = Array.make (max 16 (2 * (pkt.src + 1))) 0 in
        Array.blit ep.last_seq 0 a 0 (Array.length ep.last_seq);
        ep.last_seq <- a
      end;
      ep.last_seq.(pkt.src) <- pkt.seq;
      t.st_delivered <- t.st_delivered + 1;
      let latency = Time.sub (Engine.now eng) pkt.enqueued_at in
      t.st_latency <- Time.add t.st_latency latency;
      (match ep_metrics t ep with
      | None -> ()
      | Some h ->
          Obs.Metrics.handle_incr h.em_delivered;
          Obs.Metrics.handle_observe h.em_latency (float_of_int latency));
      Hw.Machine.causal_deliver m ~id:pkt.msg_id ~dst:ep.node;
      let src = pkt.src and payload = pkt.payload in
      let d = { msg_id = pkt.msg_id; from_span = pkt.from_span } in
      (* Fresh fiber per message: handlers may block on nested RPCs. The
         label was interned once at [add_node] — no per-message name
         formatting or hashing. *)
      Engine.spawn_label eng ep.handler_label (fun () ->
          t.handler t ~dst:ep.node ~src d payload)
    end
  in
  let rec loop () =
    ep.worker_idle <- true;
    (* Drain every packet already rung into the inbox and process the
       burst in FIFO order. The drain is slot-accurate: packets after the
       first keep their ring slot reserved until [release_slot] frees it
       at the instant their item-at-a-time [recv] would have run, so
       sender backpressure, doorbell accounting and every latency are
       bit-identical to the unbatched loop. *)
    match Channel.recv_batch ep.inbox with
    | [] -> assert false
    | first :: rest ->
        ep.worker_idle <- false;
        process first;
        List.iter
          (fun pkt ->
            Channel.release_slot ep.inbox;
            process pkt)
          rest;
        loop ()
  in
  loop ()

let add_node t node ~home_core =
  if Hashtbl.mem t.endpoints node then
    invalid_arg (Printf.sprintf "Transport.add_node: duplicate node %d" node);
  let eng = t.machine.Hw.Machine.eng in
  let ep =
    {
      node;
      core = home_core;
      inbox = Channel.create eng ~capacity:t.ring_slots;
      handler_label =
        Engine.label eng ~tag:"msg" (Printf.sprintf "msg-handler-n%d" node);
      last_seq = [||];
      tx_seq = [||];
      worker_idle = true;
      em = None;
    }
  in
  Hashtbl.add t.endpoints node ep;
  Engine.spawn eng ~tag:"msg"
    ~name:(Printf.sprintf "msg-worker-n%d" node)
    (fun () -> worker_loop t ep)

(* Per-destination tx sequence, from the source endpoint's flat array when
   there is one (the hot path: no tuple key, no hashing), else the
   transport-level table. *)
let next_seq t ~src_ep ~src ~dst =
  match src_ep with
  | Some ep ->
      if dst >= Array.length ep.tx_seq then begin
        let a = Array.make (max 16 (2 * (dst + 1))) 0 in
        Array.blit ep.tx_seq 0 a 0 (Array.length ep.tx_seq);
        ep.tx_seq <- a
      end;
      let seq = ep.tx_seq.(dst) + 1 in
      ep.tx_seq.(dst) <- seq;
      seq
  | None ->
      let seq =
        1 + Option.value ~default:0 (Hashtbl.find_opt t.seq_tx (src, dst))
      in
      Hashtbl.replace t.seq_tx (src, dst) seq;
      seq

(* Ring write + (conditional) doorbell for one packet copy. *)
let enqueue t ep ~src ~src_core ~bytes ~seq ~msg_id ~from_span ~extra_delay
    payload =
  let m = t.machine in
  let eng = m.Hw.Machine.eng in
  let was_idle = ep.worker_idle && Channel.is_empty ep.inbox in
  let doorbell =
    if was_idle then begin
      t.st_doorbells <- t.st_doorbells + 1;
      ep_incr t ep (fun h -> h.em_doorbells);
      let latency =
        Hw.Ipi.delivery_latency m.Hw.Machine.ipi ~src:src_core ~dst:ep.core
      in
      match t.hooks with
      | None -> latency
      | Some h -> (
          match h.on_doorbell ~src ~dst:ep.node ~now:(Engine.now eng) with
          | None -> latency
          | Some recovery ->
              (* Doorbell lost: the worker only notices the ring write at
                 its next recovery poll. *)
              t.st_doorbells_lost <- t.st_doorbells_lost + 1;
              ep_incr t ep (fun h -> h.em_doorbells_lost);
              recovery)
    end
    else Time.zero
  in
  Channel.send ep.inbox
    {
      src;
      src_core;
      payload;
      bytes;
      seq;
      msg_id;
      from_span;
      enqueued_at = Engine.now eng;
      doorbell;
      extra_delay;
    }

let send_from_core t ?from_span ~src ~src_core ~dst ~bytes payload =
  let m = t.machine in
  let eng = m.Hw.Machine.eng in
  let ep = endpoint t dst in
  let cross = not (Hw.Topology.same_socket m.Hw.Machine.topo src_core ep.core) in
  (* Sender cost: reserve a slot (one atomic fetch-add on a possibly-remote
     cache line) + copy the payload into shared memory. *)
  let reserve =
    Hw.Params.line_transfer m.Hw.Machine.params ~same_core:false
      ~same_socket:(not cross)
  in
  let copy = Hw.Params.copy_cost m.Hw.Machine.params ~bytes ~cross_socket:cross in
  Engine.sleep eng (Time.add reserve copy);
  t.st_sent <- t.st_sent + 1;
  (* Sender-side metrics are scoped to [src]; its own endpoint caches the
     handles. (A src without an endpoint cannot arise from [send], but
     [send_from_core] is public — fall back to the by-name path.) *)
  let src_ep = Hashtbl.find_opt t.endpoints src in
  (match src_ep with
  | Some sep -> (
      match ep_metrics t sep with
      | None -> ()
      | Some h ->
          Obs.Metrics.handle_incr h.em_sent;
          Obs.Metrics.handle_add h.em_bytes bytes)
  | None ->
      Hw.Machine.metric_incr m ~kernel:src "msg.sent";
      Hw.Machine.metric_add m ~kernel:src "msg.bytes" bytes);
  let seq = next_seq t ~src_ep ~src ~dst in
  let msg_id = t.next_msg_id in
  t.next_msg_id <- msg_id + 1;
  (* The send event fires even for messages the fault plan then drops: a
     Send with no matching Deliver is exactly how a loss appears in the
     causal DAG. *)
  Hw.Machine.causal_send m ~id:msg_id ~src ~dst ~bytes ~from_span;
  let action =
    match t.hooks with
    | None -> Pass
    | Some h -> h.on_send ~src ~dst ~now:(Engine.now eng)
  in
  match action with
  | Drop ->
      (* The sender paid the full send cost, but the message never makes it
         out of the ring (modelling a corrupted/lost slot). *)
      t.st_dropped <- t.st_dropped + 1;
      (match src_ep with
      | Some sep -> ep_incr t sep (fun h -> h.em_dropped)
      | None -> Hw.Machine.metric_incr m ~kernel:src "msg.dropped")
  | Pass | Duplicate | Delay _ ->
      let extra_delay = match action with Delay d -> d | _ -> Time.zero in
      enqueue t ep ~src ~src_core ~bytes ~seq ~msg_id ~from_span ~extra_delay
        payload;
      if action = Duplicate then begin
        t.st_duplicated <- t.st_duplicated + 1;
        (match src_ep with
        | Some sep -> ep_incr t sep (fun h -> h.em_duplicated)
        | None -> Hw.Machine.metric_incr m ~kernel:src "msg.duplicated");
        enqueue t ep ~src ~src_core ~bytes ~seq ~msg_id ~from_span
          ~extra_delay payload
      end

let send t ?from_span ~src ~dst ~bytes payload =
  send_from_core t ?from_span ~src ~src_core:(endpoint t src).core ~dst ~bytes
    payload

let stats t =
  {
    sent = t.st_sent;
    delivered = t.st_delivered;
    doorbells = t.st_doorbells;
    total_latency = t.st_latency;
    dropped = t.st_dropped;
    duplicated = t.st_duplicated;
    dup_suppressed = t.st_dup_suppressed;
    doorbells_lost = t.st_doorbells_lost;
  }

let set_jitter t ~max_extra =
  assert (max_extra >= 0);
  t.jitter <- max_extra

let reset_stats t =
  t.st_sent <- 0;
  t.st_delivered <- 0;
  t.st_doorbells <- 0;
  t.st_latency <- Time.zero;
  t.st_dropped <- 0;
  t.st_duplicated <- 0;
  t.st_dup_suppressed <- 0;
  t.st_doorbells_lost <- 0
