open Sim

(** Inter-kernel message transport.

    Models Popcorn's messaging layer: each kernel owns a receive ring in
    shared memory; senders copy the payload into a slot (paying memcpy +
    ring-bookkeeping coherence costs) and kick the destination kernel with an
    IPI doorbell only when its message worker is idle — when the worker is
    already draining the ring, messages are batched doorbell-free, exactly as
    in the real implementation.

    The transport is polymorphic in the payload type; the OS model defines a
    single protocol variant. Handlers run as fresh fibers so a handler may
    itself block (e.g. issue a nested RPC) without stalling the ring. *)

type 'a t

type node = int
(** Kernel identifier. *)

type stats = {
  sent : int;
  delivered : int;
  doorbells : int;
  total_latency : Time.t;  (** summed enqueue-to-handler-start latency. *)
  dropped : int;  (** messages lost to fault injection. *)
  duplicated : int;  (** extra copies enqueued by fault injection. *)
  dup_suppressed : int;
      (** duplicate packets filtered by sequence-number suppression before
          reaching the handler. *)
  doorbells_lost : int;  (** doorbell IPIs lost to fault injection. *)
}

(** {1 Fault injection}

    An installed hook set intercepts every message and doorbell; the
    standard provider is [Inject.Plan] (a seeded, deterministic fault
    schedule). With no hooks installed — or hooks that always answer
    [Pass]/[None]/[0] — the transport behaves exactly as before, paying no
    extra simulated time, so fault-free runs are bit-identical whether or
    not a (zero-rate) plan is attached.

    Every packet carries a per-link (src,dst) sequence number; the receive
    worker suppresses any packet that does not advance the per-source
    high-water mark (links are FIFO), which filters both injected
    duplicates and protocol-level retransmissions that were already
    delivered. *)

type fault_action =
  | Pass  (** deliver normally. *)
  | Drop  (** sender pays its costs but the message is lost. *)
  | Duplicate  (** the message is enqueued twice (same sequence number). *)
  | Delay of Time.t  (** deliver after this much extra latency. *)

type hooks = {
  on_send : src:node -> dst:node -> now:Time.t -> fault_action;
  on_doorbell : src:node -> dst:node -> now:Time.t -> Time.t option;
      (** Consulted only when a doorbell IPI is actually needed (idle
          worker). [None]: the IPI arrives normally. [Some d]: the doorbell
          is lost; the worker notices the ring write only after [d]. *)
  on_deliver : node:node -> now:Time.t -> Time.t;
      (** Extra receiver-side delay before the worker processes the next
          packet (kernel stall windows). Return 0 when healthy. *)
}

val set_hooks : 'a t -> hooks option -> unit
(** Install (or remove) the fault-injection hook set. *)

type delivery = { msg_id : int; from_span : int option }
(** Per-packet wire metadata handed to the handler: the message's unique
    id (keys the delivery into the {!Obs.Causal} event log) and the id of
    the protocol span the sender annotated it with, if any — the trace
    context carried in the message, as in the real implementation's
    per-message header. *)

val create :
  Hw.Machine.t ->
  ring_slots:int ->
  handler:('a t -> dst:node -> src:node -> delivery -> 'a -> unit) ->
  'a t
(** A fabric with no nodes yet; [ring_slots] bounds each receive ring
    (senders block on a full ring). The handler receives every delivered
    message together with its {!delivery} metadata. *)

val add_node : 'a t -> node -> home_core:Hw.Topology.core -> unit
(** Register a kernel and start its message worker. The home core determines
    socket distances for cost modelling. *)

val machine : 'a t -> Hw.Machine.t
val nodes : 'a t -> node list
val home_core : 'a t -> node -> Hw.Topology.core

val send :
  'a t -> ?from_span:int -> src:node -> dst:node -> bytes:int -> 'a -> unit
(** Send; the calling fiber pays the sender-side costs and blocks if the
    destination ring is full. Delivery is asynchronous. Every message gets
    a transport-unique id; when a causal recorder is attached to the
    machine, a [Send] event is emitted (a [Deliver] follows at the
    destination unless the message is lost). [from_span] stamps the
    message with the protocol span it belongs to. *)

val send_from_core :
  'a t ->
  ?from_span:int ->
  src:node ->
  src_core:Hw.Topology.core ->
  dst:node ->
  bytes:int ->
  'a ->
  unit
(** Like {!send} but with an explicit sending core (for threads running on a
    non-home core of the source kernel). *)

val set_jitter : 'a t -> max_extra:Time.t -> unit
(** Fault/robustness injection: add a uniformly random extra delay in
    [\[0, max_extra\]] to every delivery (drawn from the engine's seeded
    PRNG, so runs stay deterministic). 0 disables. Used by the protocol
    property tests to stress message interleavings. *)

val stats : 'a t -> stats
val reset_stats : 'a t -> unit
