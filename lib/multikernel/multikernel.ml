(** Barrelfish-style multikernel baseline.

    One CPU driver per core; {e no} shared kernel state, no single-system
    image, no transparent thread migration. An application is a {e domain}
    that spans cores by explicitly spawning one dispatcher per core; each
    dispatcher owns a private address space (so mm operations are purely
    local and scale perfectly), and dispatchers communicate over explicit
    message channels (UMP-style: shared-memory rings with notification).

    This is the comparison point for the paper's claim that a
    replicated-kernel OS "scales as well as a multikernel OS" while keeping
    the shared-memory programming model: here the {e application} must be
    rewritten around message passing and partitioning. *)

open Sim
module K = Kernelmodel

type payload =
  | Spawn_req of { ticket : int; domain_id : int }
  | Spawn_ack of { ticket : int }
  | User_msg of { chan_id : int; data : int; bytes : int }

type t = {
  machine : Hw.Machine.t;
  fabric : payload Msg.Transport.t;
  cpus : K.Cpu.t array; (* one per core; single dispatcher each, RR *)
  rpc : payload Msg.Rpc.t array; (* per-core ticket tables *)
  chans : (int, chan) Hashtbl.t;
  mutable next_chan : int;
  mutable next_domain : int;
  domains : (int, domain) Hashtbl.t;
}

and domain = {
  sys : t;
  id : int;
  mutable dispatchers : int; (* live count *)
  exit_waiters : unit Waitq.t;
}

and dispatcher = {
  dom : domain;
  core : Hw.Topology.core;
  vmas : K.Vma.t;
  pt : K.Page_table.t;
}

and chan = {
  chan_id : int;
  inbox : (int * int) Queue.t; (* (data, bytes) *)
  recv_waiters : (int * int) Waitq.t;
}

let eng t = t.machine.Hw.Machine.eng
let params t = t.machine.Hw.Machine.params

(* Barrelfish syscalls are cheap (small CPU driver). *)
let syscall_cost = Time.ns 80
let vma_op_cost = Time.ns 350
let dispatcher_create_cost = Time.us 20
let frame_alloc_cost = Time.ns 300
let zero_page_cost = Time.ns 600

let boot (machine : Hw.Machine.t) : t =
  let e = machine.Hw.Machine.eng in
  let p = machine.Hw.Machine.params in
  let topo = machine.Hw.Machine.topo in
  let ncores = Hw.Topology.total_cores topo in
  let sys_ref = ref None in
  let fabric =
    Msg.Transport.create machine ~ring_slots:64
      ~handler:(fun _t ~dst ~src _delivery payload ->
        let sys = match !sys_ref with Some s -> s | None -> assert false in
        match payload with
        | Spawn_req { ticket; domain_id } ->
            (* Monitor on [dst] constructs the dispatcher, then acks. *)
            Engine.sleep e dispatcher_create_cost;
            ignore domain_id;
            Msg.Transport.send sys.fabric ~src:dst ~dst:src ~bytes:48
              (Spawn_ack { ticket })
        | Spawn_ack { ticket } -> Msg.Rpc.complete sys.rpc.(dst) ~ticket payload
        | User_msg { chan_id; data; bytes } -> (
            match Hashtbl.find_opt sys.chans chan_id with
            | None -> ()
            | Some c ->
                if not (Waitq.wake_one c.recv_waiters (data, bytes)) then
                  Queue.push (data, bytes) c.inbox))
  in
  List.iter
    (fun core -> Msg.Transport.add_node fabric core ~home_core:core)
    (Hw.Topology.all_cores topo);
  let sys =
    {
      machine;
      fabric;
      cpus =
        Array.init ncores (fun core ->
            K.Cpu.create e p ~core ~quantum:(Time.ms 1));
      rpc = Array.init ncores (fun _ -> Msg.Rpc.create e);
      chans = Hashtbl.create 64;
      next_chan = 1;
      next_domain = 1;
      domains = Hashtbl.create 16;
    }
  in
  sys_ref := Some sys;
  sys

let compute (d : dispatcher) dt = K.Cpu.compute d.dom.sys.cpus.(d.core) dt

let fresh_vmas () =
  let vmas = K.Vma.create () in
  List.iter
    (fun (start, len, prot, kind) ->
      match K.Vma.map vmas ~fixed:start ~len ~prot ~kind () with
      | Ok _ -> ()
      | Error e -> invalid_arg e)
    [
      (0x400000, 0x100000, K.Vma.prot_rx, K.Vma.File "domain");
      (0x800000, 0x400000, K.Vma.prot_rw, K.Vma.Heap);
    ];
  vmas

let make_dispatcher dom core =
  { dom; core; vmas = fresh_vmas (); pt = K.Page_table.create () }

(** Start a domain with its first dispatcher on [core]. *)
let start_domain t ~core main : domain =
  Hw.Machine.metric_incr t.machine "mk.domains";
  Hw.Machine.metric_incr t.machine ~kernel:core "mk.dispatchers";
  let id = t.next_domain in
  t.next_domain <- id + 1;
  let dom = { sys = t; id; dispatchers = 1; exit_waiters = Waitq.create ~eng:(eng t) () } in
  Hashtbl.replace t.domains id dom;
  let d = make_dispatcher dom core in
  Engine.spawn (eng t) ~tag:"mk" ~name:(Printf.sprintf "mk-dom%d-c%d" id core)
    (fun () ->
      Engine.sleep (eng t) dispatcher_create_cost;
      main d;
      dom.dispatchers <- dom.dispatchers - 1;
      if dom.dispatchers = 0 then ignore (Waitq.wake_all dom.exit_waiters ()));
  dom

(** Explicitly span the domain onto another core: ship a spawn request to
    the remote monitor, wait for the dispatcher to be constructed, then run
    [body] there. This is the multikernel's (non-transparent) analogue of
    remote thread creation. *)
let spawn_dispatcher (d : dispatcher) ~core body : unit =
  let t = d.dom.sys in
  Hw.Machine.metric_incr t.machine ~kernel:core "mk.dispatchers";
  Engine.sleep (eng t) syscall_cost;
  (match
     Msg.Rpc.call t.rpc.(d.core) (fun ticket ->
         Msg.Transport.send t.fabric ~src:d.core ~dst:core ~bytes:96
           (Spawn_req { ticket; domain_id = d.dom.id }))
   with
  | Spawn_ack _ -> ()
  | _ -> assert false);
  d.dom.dispatchers <- d.dom.dispatchers + 1;
  let child = make_dispatcher d.dom core in
  Engine.spawn (eng t) ~tag:"mk" ~name:(Printf.sprintf "mk-dom%d-c%d" d.dom.id core)
    (fun () ->
      Engine.sleep (eng t) (params t).Hw.Params.context_switch;
      body child;
      d.dom.dispatchers <- d.dom.dispatchers - 1;
      if d.dom.dispatchers = 0 then
        ignore (Waitq.wake_all d.dom.exit_waiters ()))

(* --- local memory: private per dispatcher, no global consistency --- *)

let mmap (d : dispatcher) ~len ~prot =
  Engine.sleep (eng d.dom.sys) (Time.add syscall_cost vma_op_cost);
  K.Vma.map d.vmas ~len ~prot ~kind:K.Vma.Anon ()

let munmap (d : dispatcher) ~start ~len =
  let t = d.dom.sys in
  Engine.sleep (eng t) (Time.add syscall_cost vma_op_cost);
  let removed = K.Page_table.clear_range d.pt ~start ~len in
  List.iter
    (fun (pte : K.Page_table.pte) ->
      Hw.Memory.free t.machine.Hw.Machine.mem pte.K.Page_table.frame)
    removed;
  if removed <> [] then
    Engine.sleep (eng t) (params t).Hw.Params.tlb_flush_local;
  K.Vma.unmap d.vmas ~start ~len

let touch (d : dispatcher) ~addr ~access :
    (K.Fault.classification, string) result =
  let t = d.dom.sys in
  let p = params t in
  Engine.sleep (eng t) p.Hw.Params.l1_hit;
  match K.Fault.classify d.vmas d.pt ~addr ~access with
  | K.Fault.Present -> Ok K.Fault.Present
  | K.Fault.Segv -> Error "segmentation fault"
  | (K.Fault.Minor | K.Fault.Cow_or_upgrade) as c ->
      Hw.Machine.metric_incr t.machine ~kernel:d.core "fault.serviced";
      Engine.sleep (eng t)
        (Time.add p.Hw.Params.page_table_walk
           (Time.add frame_alloc_cost zero_page_cost));
      let node = Hw.Topology.socket_of t.machine.Hw.Machine.topo d.core in
      let frame = Hw.Memory.alloc_exn t.machine.Hw.Machine.mem ~node in
      K.Page_table.set d.pt
        ~vpn:(K.Page_table.vpn_of_addr addr)
        { K.Page_table.frame; writable = true };
      Engine.sleep (eng t) p.Hw.Params.page_table_walk;
      Ok c

(* --- explicit channels --- *)

let make_chan t : chan =
  let c =
    {
      chan_id = t.next_chan;
      inbox = Queue.create ();
      recv_waiters = Waitq.create ~eng:(eng t) ();
    }
  in
  t.next_chan <- t.next_chan + 1;
  Hashtbl.replace t.chans c.chan_id c;
  c

let chan_send (d : dispatcher) (c : chan) ~dst_core ~data ~bytes =
  let t = d.dom.sys in
  Msg.Transport.send t.fabric ~src:d.core ~dst:dst_core ~bytes
    (User_msg { chan_id = c.chan_id; data; bytes })

let chan_recv (d : dispatcher) (c : chan) : int * int =
  let t = d.dom.sys in
  match Queue.take_opt c.inbox with
  | Some v -> v
  | None -> Waitq.wait (eng t) c.recv_waiters

let wait_domain (dom : domain) =
  if dom.dispatchers > 0 then Waitq.wait (eng dom.sys) dom.exit_waiters
