(* Typed causal events of the messaging layer. Each Transport message gets
   a unique id per (transport, run); the three event kinds are the edges a
   happens-before reconstruction needs: a span sent a message (Send,
   [from_span]), the message reached its destination worker (Deliver), and
   a span on the destination was opened to handle it (Link). Recording is
   append-only and allocation-light; like Span, the recorder never touches
   the engine clock or RNG, so instrumented runs are bit-identical. *)

type event =
  | Send of {
      id : int;
      run : int;
      src : int;
      dst : int;
      at : Sim.Time.t;
      bytes : int;
      from_span : int option;
    }
  | Deliver of { id : int; run : int; dst : int; at : Sim.Time.t }
  | Link of { id : int; run : int; span : int }

type t = {
  mutable run : int; (* bumped per machine boot, mirrors Span.run *)
  mutable acc : event list; (* newest first; [events] reverses *)
  mutable count : int;
}

let create () = { run = -1; acc = []; count = 0 }
let new_run t = t.run <- t.run + 1
let run t = Stdlib.max 0 t.run

let push t e =
  t.acc <- e :: t.acc;
  t.count <- t.count + 1

let emit_send t ~id ~src ~dst ~at ~bytes ~from_span =
  push t (Send { id; run = run t; src; dst; at; bytes; from_span })

let emit_deliver t ~id ~dst ~at = push t (Deliver { id; run = run t; dst; at })
let link t ~id ~span = push t (Link { id; run = run t; span })
let events t = List.rev t.acc
let count t = t.count

(* --- JSON (rides in the results document; see DESIGN.md, causal model) --- *)

let opt_int = function None -> Json.Null | Some i -> Json.Int i

let event_json = function
  | Send { id; run; src; dst; at; bytes; from_span } ->
      Json.Obj
        [
          ("ev", Json.Str "send");
          ("id", Json.Int id);
          ("run", Json.Int run);
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("at", Json.Int at);
          ("bytes", Json.Int bytes);
          ("from_span", opt_int from_span);
        ]
  | Deliver { id; run; dst; at } ->
      Json.Obj
        [
          ("ev", Json.Str "deliver");
          ("id", Json.Int id);
          ("run", Json.Int run);
          ("dst", Json.Int dst);
          ("at", Json.Int at);
        ]
  | Link { id; run; span } ->
      Json.Obj
        [
          ("ev", Json.Str "link");
          ("id", Json.Int id);
          ("run", Json.Int run);
          ("span", Json.Int span);
        ]

let to_json t = Json.Arr (List.map event_json (events t))

(* Tolerant decoding: an analyzer must survive truncated or hand-edited
   documents, so unknown shapes are skipped rather than fatal. *)

let field k = function Json.Obj fs -> List.assoc_opt k fs | _ -> None

let int_field k j =
  match field k j with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let event_of_json j =
  let req k f = Option.bind (int_field k j) f in
  match field "ev" j with
  | Some (Json.Str "send") ->
      req "id" (fun id ->
          req "src" (fun src ->
              req "dst" (fun dst ->
                  req "at" (fun at ->
                      Some
                        (Send
                           {
                             id;
                             run = Option.value ~default:0 (int_field "run" j);
                             src;
                             dst;
                             at;
                             bytes =
                               Option.value ~default:0 (int_field "bytes" j);
                             from_span = int_field "from_span" j;
                           })))))
  | Some (Json.Str "deliver") ->
      req "id" (fun id ->
          req "dst" (fun dst ->
              req "at" (fun at ->
                  Some
                    (Deliver
                       {
                         id;
                         run = Option.value ~default:0 (int_field "run" j);
                         dst;
                         at;
                       }))))
  | Some (Json.Str "link") ->
      req "id" (fun id ->
          req "span" (fun span ->
              Some
                (Link
                   {
                     id;
                     run = Option.value ~default:0 (int_field "run" j);
                     span;
                   })))
  | _ -> None

let events_of_json = function
  | Json.Arr items -> List.filter_map event_of_json items
  | _ -> []
