(** Typed causal events of the messaging layer.

    Every [Msg.Transport] message carries a unique id within its (transport,
    run); three event kinds record the cross-kernel happens-before edges:

    - [Send]: a message left a kernel, optionally annotated with the id of
      the protocol span it was sent from (the span "carried" on the wire);
    - [Deliver]: the destination worker handed it to the handler;
    - [Link]: a span on the destination was opened to process it.

    Chaining [span --Send--> message --Deliver/Link--> span] reconstructs
    the happens-before DAG of a run; {!Critpath} walks it. Recording never
    sleeps and never touches the engine RNG, so instrumented runs are
    bit-identical in simulated time to uninstrumented ones. *)

type event =
  | Send of {
      id : int;
      run : int;
      src : int;
      dst : int;
      at : Sim.Time.t;
      bytes : int;
      from_span : int option;
    }
  | Deliver of { id : int; run : int; dst : int; at : Sim.Time.t }
  | Link of { id : int; run : int; span : int }

type t

val create : unit -> t

val new_run : t -> unit
(** Call once per machine boot sharing this recorder (mirrors
    [Span.new_run]); events from different runs never share message ids. *)

val emit_send :
  t ->
  id:int ->
  src:int ->
  dst:int ->
  at:Sim.Time.t ->
  bytes:int ->
  from_span:int option ->
  unit

val emit_deliver : t -> id:int -> dst:int -> at:Sim.Time.t -> unit

val link : t -> id:int -> span:int -> unit
(** Message [id] caused the opening of span [span] on the receiving
    kernel. *)

val events : t -> event list
(** All events in emission order. *)

val count : t -> int

val to_json : t -> Json.t
(** Array of event objects ([{"ev":"send"|"deliver"|"link", ...}]). *)

val event_of_json : Json.t -> event option
(** Decode one event object; [None] on anything malformed. Also decodes
    the [args] objects of {!Export.chrome_trace} causal flow events (same
    shape). *)

val events_of_json : Json.t -> event list
(** Tolerant inverse of {!to_json}: malformed or unknown entries are
    skipped, so truncated documents still decode. *)
