(* Happens-before reconstruction + critical path. See the .mli for the
   model. Everything is keyed by (run, id): span ids are unique within a
   recorder but message ids restart per machine boot, and spans parsed
   back from JSON carry no uniqueness guarantee at all. *)

type ispan = {
  sid : int;
  parent : int option;
  kind : string;
  kernel : int;
  tid : int option;
  run : int;
  start : int;
  stop : int;
}

let ispans_of_recorder rec_ =
  List.map
    (fun (s : Span.span) ->
      {
        sid = s.Span.id;
        parent = s.Span.parent;
        kind = Span.kind_name s.Span.kind;
        kernel = s.Span.kernel;
        tid = s.Span.tid;
        run = s.Span.run;
        start = s.Span.start;
        stop = s.Span.stop;
      })
    (Span.spans rec_)

let ispans_to_json spans =
  Json.Arr
    (List.map
       (fun s ->
         Json.Obj
           ([
              ("id", Json.Int s.sid);
              ("kind", Json.Str s.kind);
              ("kernel", Json.Int s.kernel);
              ("run", Json.Int s.run);
              ("start", Json.Int s.start);
              ("stop", Json.Int s.stop);
            ]
           @ (match s.parent with
             | None -> []
             | Some p -> [ ("parent", Json.Int p) ])
           @
           match s.tid with
           | None -> []
           | Some t -> [ ("tid", Json.Int t) ]))
       spans)

let int_field fields name =
  match List.assoc_opt name fields with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let str_field fields name =
  match List.assoc_opt name fields with Some (Json.Str s) -> Some s | _ -> None

let ispans_of_json j =
  match j with
  | Json.Arr items ->
      List.filter_map
        (function
          | Json.Obj fields -> (
              match
                ( int_field fields "id",
                  str_field fields "kind",
                  int_field fields "kernel",
                  int_field fields "start" )
              with
              | Some sid, Some kind, Some kernel, Some start ->
                  Some
                    {
                      sid;
                      parent = int_field fields "parent";
                      kind;
                      kernel;
                      tid = int_field fields "tid";
                      run = Option.value (int_field fields "run") ~default:0;
                      start;
                      stop = Option.value (int_field fields "stop") ~default:(-1);
                    }
              | _ -> None)
          | _ -> None)
        items
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Indexes over one (spans, causal) data set.                          *)
(* ------------------------------------------------------------------ *)

type send_rec = { s_src : int; s_dst : int; s_at : int; s_from : int option }

type index = {
  span_by_id : (int * int, ispan) Hashtbl.t; (* (run, sid) *)
  children : (int * int, int list) Hashtbl.t; (* (run, sid) -> child sids *)
  sends : (int * int, send_rec) Hashtbl.t; (* (run, msg id) *)
  delivers : (int * int, int) Hashtbl.t; (* (run, msg id) -> at *)
  links : (int * int, int list) Hashtbl.t; (* (run, msg id) -> span sids *)
  sends_by_span : (int * int, int list) Hashtbl.t; (* (run, sid) -> msg ids *)
  run_end : (int, int) Hashtbl.t; (* run -> latest timestamp seen *)
}

let add_multi tbl key v =
  Hashtbl.replace tbl key (v :: Option.value (Hashtbl.find_opt tbl key) ~default:[])

let build_index ~spans ~causal =
  let ix =
    {
      span_by_id = Hashtbl.create 256;
      children = Hashtbl.create 256;
      sends = Hashtbl.create 256;
      delivers = Hashtbl.create 256;
      links = Hashtbl.create 64;
      sends_by_span = Hashtbl.create 64;
      run_end = Hashtbl.create 4;
    }
  in
  let bump_end run at =
    let cur = Option.value (Hashtbl.find_opt ix.run_end run) ~default:0 in
    Hashtbl.replace ix.run_end run (Stdlib.max cur at)
  in
  List.iter
    (fun s ->
      Hashtbl.replace ix.span_by_id (s.run, s.sid) s;
      (match s.parent with
      | Some p -> add_multi ix.children (s.run, p) s.sid
      | None -> ());
      bump_end s.run (Stdlib.max s.start s.stop))
    spans;
  List.iter
    (fun (e : Causal.event) ->
      match e with
      | Causal.Send { id; run; src; dst; at; from_span; _ } ->
          if not (Hashtbl.mem ix.sends (run, id)) then
            Hashtbl.replace ix.sends (run, id)
              { s_src = src; s_dst = dst; s_at = at; s_from = from_span };
          (match from_span with
          | Some sp -> add_multi ix.sends_by_span (run, sp) id
          | None -> ());
          bump_end run at
      | Causal.Deliver { id; run; at; _ } ->
          (* first delivery wins (duplicates are suppressed downstream) *)
          if not (Hashtbl.mem ix.delivers (run, id)) then
            Hashtbl.replace ix.delivers (run, id) at;
          bump_end run at
      | Causal.Link { id; run; span } -> add_multi ix.links (run, id) span)
    causal;
  ix

let stop_eff ix (s : ispan) =
  if s.stop >= 0 then s.stop
  else
    Stdlib.max s.start
      (Option.value (Hashtbl.find_opt ix.run_end s.run) ~default:s.start)

(* ------------------------------------------------------------------ *)
(* Critical path.                                                      *)
(* ------------------------------------------------------------------ *)

type seg = { label : string; on_wire : bool; seg_start : int; seg_stop : int }
type path = { root : ispan; total_ns : int; segs : seg list }

(* An interval competing for slices of the root window. Innermost-active
   wins: latest start first, wire beats the span it was sent from on ties,
   id as the deterministic tiebreak. *)
type ival = {
  i_start : int;
  i_stop : int;
  i_wire : bool;
  i_id : int;
  i_label : string;
}

let rank iv = (iv.i_start, (if iv.i_wire then 1 else 0), iv.i_id)

(* Component of the happens-before DAG reachable from [root]: children via
   parent edges, messages via their sending span, remote spans via Link. *)
let component ix (root : ispan) =
  let run = root.run in
  let comp_spans = Hashtbl.create 64 in
  let comp_msgs = Hashtbl.create 64 in
  let pending = Queue.create () in
  Queue.add (`Span root.sid) pending;
  while not (Queue.is_empty pending) do
    match Queue.pop pending with
    | `Span sid ->
        if not (Hashtbl.mem comp_spans sid) then begin
          Hashtbl.replace comp_spans sid ();
          List.iter
            (fun c -> Queue.add (`Span c) pending)
            (Option.value (Hashtbl.find_opt ix.children (run, sid)) ~default:[]);
          List.iter
            (fun m -> Queue.add (`Msg m) pending)
            (Option.value
               (Hashtbl.find_opt ix.sends_by_span (run, sid))
               ~default:[])
        end
    | `Msg id ->
        if not (Hashtbl.mem comp_msgs id) then begin
          Hashtbl.replace comp_msgs id ();
          List.iter
            (fun sp -> Queue.add (`Span sp) pending)
            (Option.value (Hashtbl.find_opt ix.links (run, id)) ~default:[])
        end
  done;
  (comp_spans, comp_msgs)

let critical_path ~spans ~causal ~root =
  let ix = build_index ~spans ~causal in
  let run = root.run in
  let comp_spans, comp_msgs = component ix root in
  let w_start = root.start and w_stop = stop_eff ix root in
  let intervals = ref [] in
  Hashtbl.iter
    (fun sid () ->
      match Hashtbl.find_opt ix.span_by_id (run, sid) with
      | None -> ()
      | Some s ->
          intervals :=
            {
              i_start = s.start;
              i_stop = stop_eff ix s;
              i_wire = false;
              i_id = sid;
              i_label = Printf.sprintf "%s@k%d" s.kind s.kernel;
            }
            :: !intervals)
    comp_spans;
  Hashtbl.iter
    (fun id () ->
      match
        (Hashtbl.find_opt ix.sends (run, id), Hashtbl.find_opt ix.delivers (run, id))
      with
      | Some sr, Some d_at when d_at > sr.s_at ->
          intervals :=
            {
              i_start = sr.s_at;
              i_stop = d_at;
              i_wire = true;
              i_id = id;
              i_label = Printf.sprintf "wire k%d->k%d" sr.s_src sr.s_dst;
            }
            :: !intervals
      | _ -> () (* dropped or instant: time stays with the sender span *))
    comp_msgs;
  (* Slice boundaries: every interval edge inside the window. *)
  let module IS = Set.Make (Int) in
  let bounds =
    List.fold_left
      (fun acc iv ->
        let acc =
          if iv.i_start > w_start && iv.i_start < w_stop then
            IS.add iv.i_start acc
          else acc
        in
        if iv.i_stop > w_start && iv.i_stop < w_stop then IS.add iv.i_stop acc
        else acc)
      (IS.of_list [ w_start; w_stop ])
      !intervals
  in
  let bounds = IS.elements bounds in
  let pick a b =
    (* Innermost interval covering [a, b); the root always qualifies. *)
    List.fold_left
      (fun best iv ->
        if iv.i_start <= a && iv.i_stop >= b then
          match best with
          | Some bv when rank bv >= rank iv -> best
          | _ -> Some iv
        else best)
      None !intervals
  in
  let rec slices acc = function
    | a :: (b :: _ as rest) when a < b -> (
        match pick a b with
        | Some iv -> slices ((iv, a, b) :: acc) rest
        | None -> slices acc rest (* unreachable: root covers the window *))
    | _ :: rest -> slices acc rest
    | [] -> List.rev acc
  in
  let segs =
    List.fold_left
      (fun acc (iv, a, b) ->
        match acc with
        | { label; on_wire; seg_stop; seg_start } :: tl
          when label = iv.i_label && on_wire = iv.i_wire && seg_stop = a ->
            { label; on_wire; seg_start; seg_stop = b } :: tl
        | _ ->
            { label = iv.i_label; on_wire = iv.i_wire; seg_start = a; seg_stop = b }
            :: acc)
      []
      (slices [] bounds)
  in
  { root; total_ns = w_stop - w_start; segs = List.rev segs }

let roots ~spans ~kind =
  List.filter (fun s -> s.parent = None && s.kind = kind) spans

(* ------------------------------------------------------------------ *)
(* Per-subsystem self time.                                            *)
(* ------------------------------------------------------------------ *)

let subsystem = function
  | "migration" | "context_capture" | "transfer" | "import" | "resume" ->
      "migration"
  | "page_fault" -> "coherence"
  | "futex" -> "futex"
  | "thread_group_create" | "thread_import" -> "thread_group"
  | "task_list" | "ssi_task_list" -> "ssi"
  | other -> other

(* Total length of the union of [intervals], each clipped to [lo, hi]. *)
let union_len ~lo ~hi intervals =
  let clipped =
    List.filter_map
      (fun (a, b) ->
        let a = Stdlib.max a lo and b = Stdlib.min b hi in
        if b > a then Some (a, b) else None)
      intervals
    |> List.sort compare
  in
  let _, total =
    List.fold_left
      (fun (edge, total) (a, b) ->
        if b <= edge then (edge, total)
        else (b, total + (b - Stdlib.max a edge)))
      (lo, 0) clipped
  in
  total

let self_times ~spans ~causal =
  let ix = build_index ~spans ~causal in
  let acc = Hashtbl.create 16 in
  let add name ns =
    if ns > 0 then
      Hashtbl.replace acc name
        (ns + Option.value (Hashtbl.find_opt acc name) ~default:0)
  in
  List.iter
    (fun s ->
      let lo = s.start and hi = stop_eff ix s in
      let child_ivals =
        List.filter_map
          (fun c ->
            Option.map
              (fun cs -> (cs.start, stop_eff ix cs))
              (Hashtbl.find_opt ix.span_by_id (s.run, c)))
          (Option.value (Hashtbl.find_opt ix.children (s.run, s.sid)) ~default:[])
      in
      let wire_ivals =
        List.filter_map
          (fun id ->
            match
              ( Hashtbl.find_opt ix.sends (s.run, id),
                Hashtbl.find_opt ix.delivers (s.run, id) )
            with
            | Some sr, Some d_at when d_at > sr.s_at -> Some (sr.s_at, d_at)
            | _ -> None)
          (Option.value
             (Hashtbl.find_opt ix.sends_by_span (s.run, s.sid))
             ~default:[])
      in
      add (subsystem s.kind)
        (hi - lo - union_len ~lo ~hi (child_ivals @ wire_ivals)))
    spans;
  Hashtbl.iter
    (fun (run, id) d_at ->
      match Hashtbl.find_opt ix.sends (run, id) with
      | Some sr when d_at > sr.s_at -> add "msg" (d_at - sr.s_at)
      | _ -> ())
    ix.delivers;
  Hashtbl.fold (fun name ns l -> (name, ns) :: l) acc []
  |> List.sort (fun (na, a) (nb, b) -> compare (-a, na) (-b, nb))
