(** Happens-before reconstruction and critical-path analysis.

    Combines a span forest ({!Span}) with the messaging layer's causal
    event log ({!Causal}) into the cross-kernel happens-before DAG of a
    run, then answers two questions about it:

    - {b critical path}: for a root protocol span (e.g. one migration),
      the chain of span / wire segments that accounts for every nanosecond
      of its end-to-end latency. Segments partition the root's window
      exactly: their durations sum to the root's duration.
    - {b self time}: flamegraph-style attribution of each span's own time
      (duration minus nested children and in-flight wire time), rolled up
      per subsystem.

    Analysis works on plain {!ispan} records rather than live
    {!Span.span}s so that the same code path serves both in-process sinks
    and spans parsed back from an exported JSON document. *)

type ispan = {
  sid : int;
  parent : int option;
  kind : string;  (** {!Span.kind_name} of the phase *)
  kernel : int;
  tid : int option;
  run : int;
  start : int;
  stop : int;  (** -1 while open; clamped to end-of-run by the analysis *)
}

val ispans_of_recorder : Span.t -> ispan list
(** Snapshot a live recorder into analysis records (creation order). *)

val ispans_to_json : ispan list -> Json.t
(** Array of span objects; the "spans" section of a results document. *)

val ispans_of_json : Json.t -> ispan list
(** Tolerant inverse of {!ispans_to_json}: malformed entries are skipped,
    so truncated documents still decode. *)

type seg = {
  label : string;
      (** ["kind\@k<kernel>"] for span segments, ["wire k<src>->k<dst>"]
          for time a message was in flight. *)
  on_wire : bool;
  seg_start : int;
  seg_stop : int;
}

type path = { root : ispan; total_ns : int; segs : seg list }
(** [total_ns] equals the root span's (clamped) duration and equals the
    sum of all segment durations — the partition is exact. *)

val critical_path :
  spans:ispan list -> causal:Causal.event list -> root:ispan -> path
(** Critical path through the happens-before component reachable from
    [root]: children via parent edges, messages via their sending span,
    remote spans via the message that caused them ({!Causal.Link}).
    Every elementary time slice of the root's window is attributed to the
    innermost active interval (latest start wins; wire beats its sender),
    and consecutive slices with the same owner merge into one segment. *)

val roots : spans:ispan list -> kind:string -> ispan list
(** Top-level spans (no parent) of [kind], in creation order. *)

val subsystem : string -> string
(** Map a span-kind name to its owning subsystem: migration phases to
    ["migration"], page faults to ["coherence"], futexes to ["futex"],
    thread-group create/import to ["thread_group"], task listing to
    ["ssi"]; unknown kinds map to themselves, wire time to ["msg"]. *)

val self_times :
  spans:ispan list -> causal:Causal.event list -> (string * int) list
(** Per-subsystem self time over every run in the input: each span's
    duration minus its children and its own messages' wire time (clipped
    to the span), plus all delivered messages' wire time under ["msg"].
    Sorted by descending time, then name; concurrent spans each count
    their own self time in full. *)
