(* Chrome trace_event ("catapult") JSON, loadable in Perfetto / about:tracing.
   Simulated time is nanoseconds; trace_event wants microseconds in [ts]/
   [dur], so we divide by 1e3 and keep the fraction. Tracks: one "process"
   per (run, kernel) pair so repeated boots sharing a recorder don't overlap,
   one "thread" row per simulated tid (row 0 for kernel-level spans).

   Every span event also carries exact-nanosecond [start_ns]/[stop_ns] args
   (plus ids and parent links) so `popcornsim analyze` can reconstruct the
   span forest from the trace file without precision loss; causal events
   (message send/deliver/link) ride along as flow events in cat "causal". *)

let us ns = float_of_int ns /. 1_000.

let pid_of_kernel ~run_offset ~run ~kernel = ((run_offset + run) * 100) + kernel
let pid_of ~run_offset (s : Span.span) =
  pid_of_kernel ~run_offset ~run:s.run ~kernel:s.kernel

let span_event ~run_offset ~run_end (s : Span.span) =
  (* An unclosed span (the workload never finished it) is clamped to the
     end of its run so it renders — and analyzes — as "open until the end"
     rather than as a zero-width sliver at its start. *)
  let stop = if s.stop < 0 then Stdlib.max s.start (run_end s.run) else s.stop in
  let args =
    [ ("span_id", Json.Int s.id); ("kernel", Json.Int s.kernel);
      ("run", Json.Int s.run);
      ("start_ns", Json.Int s.start); ("stop_ns", Json.Int stop) ]
    @ (if s.stop < 0 then [ ("unclosed", Json.Bool true) ] else [])
    @ (match s.parent with
      | None -> []
      | Some p -> [ ("parent", Json.Int p) ])
    @ match s.tid with None -> [] | Some t -> [ ("sim_tid", Json.Int t) ]
  in
  Json.Obj
    [
      ("name", Json.Str (Span.kind_name s.kind));
      ("cat", Json.Str "span");
      ("ph", Json.Str "X");
      ("ts", Json.Float (us s.start));
      ("dur", Json.Float (us (stop - s.start)));
      ("pid", Json.Int (pid_of ~run_offset s));
      ("tid", Json.Int (match s.tid with None -> 0 | Some t -> t + 1));
      ("args", Json.Obj args);
    ]

let process_meta ~pid name =
  Json.Obj
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let trace_event (e : Sim.Trace.event) =
  Json.Obj
    [
      ("name", Json.Str e.msg);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str "i");
      ("s", Json.Str "g");
      ("ts", Json.Float (us e.at));
      ("pid", Json.Int 0);
      ("tid", Json.Int 0);
    ]

(* Flow-event id: unique per (run, message) within one export. *)
let flow_id ~run_offset ~run id = (((run_offset + run) * 1_000_000) + id)

let causal_event ~run_offset (e : Causal.event) =
  match e with
  | Causal.Send { id; run; src; dst; at; bytes; from_span } ->
      Json.Obj
        [
          ("name", Json.Str "msg");
          ("cat", Json.Str "causal");
          ("ph", Json.Str "s");
          ("id", Json.Int (flow_id ~run_offset ~run id));
          ("ts", Json.Float (us at));
          ("pid", Json.Int (pid_of_kernel ~run_offset ~run ~kernel:src));
          ("tid", Json.Int 0);
          ( "args",
            Json.Obj
              ([
                 ("ev", Json.Str "send");
                 ("id", Json.Int id);
                 ("run", Json.Int run);
                 ("src", Json.Int src);
                 ("dst", Json.Int dst);
                 ("at", Json.Int at);
                 ("bytes", Json.Int bytes);
               ]
              @
              match from_span with
              | None -> []
              | Some sp -> [ ("from_span", Json.Int sp) ]) );
        ]
  | Causal.Deliver { id; run; dst; at } ->
      Json.Obj
        [
          ("name", Json.Str "msg");
          ("cat", Json.Str "causal");
          ("ph", Json.Str "f");
          ("bp", Json.Str "e");
          ("id", Json.Int (flow_id ~run_offset ~run id));
          ("ts", Json.Float (us at));
          ("pid", Json.Int (pid_of_kernel ~run_offset ~run ~kernel:dst));
          ("tid", Json.Int 0);
          ( "args",
            Json.Obj
              [
                ("ev", Json.Str "deliver");
                ("id", Json.Int id);
                ("run", Json.Int run);
                ("dst", Json.Int dst);
                ("at", Json.Int at);
              ] );
        ]
  | Causal.Link { id; run; span } ->
      (* No timestamp of its own: a pure edge record (message -> span). *)
      Json.Obj
        [
          ("name", Json.Str "link");
          ("cat", Json.Str "causal");
          ("ph", Json.Str "i");
          ("s", Json.Str "t");
          ("ts", Json.Float 0.);
          ("pid", Json.Int 0);
          ("tid", Json.Int 0);
          ( "args",
            Json.Obj
              [
                ("ev", Json.Str "link");
                ("id", Json.Int id);
                ("run", Json.Int run);
                ("span", Json.Int span);
              ] );
        ]

let chrome_trace ?(spans = []) ?(causal = []) ?(traces = []) () =
  let events = ref [] in
  let push e = events := e :: !events in
  if traces <> [] then push (process_meta ~pid:0 "trace ring");
  let run_offset = ref 0 in
  let offsets = ref [] (* per span-recorder starting offset, in order *) in
  List.iter
    (fun rec_ ->
      offsets := !run_offset :: !offsets;
      let seen_pids = Hashtbl.create 8 in
      (* End-of-run timestamps for clamping unclosed spans. *)
      let run_ends = Hashtbl.create 4 in
      List.iter
        (fun (s : Span.span) ->
          let upper = Stdlib.max s.start s.stop in
          let cur =
            Option.value (Hashtbl.find_opt run_ends s.run) ~default:0
          in
          Hashtbl.replace run_ends s.run (Stdlib.max cur upper))
        (Span.spans rec_);
      let run_end r = Option.value (Hashtbl.find_opt run_ends r) ~default:0 in
      List.iter
        (fun (s : Span.span) ->
          let pid = pid_of ~run_offset:!run_offset s in
          if not (Hashtbl.mem seen_pids pid) then begin
            Hashtbl.add seen_pids pid ();
            push
              (process_meta ~pid
                 (Printf.sprintf "run %d / kernel %d"
                    (!run_offset + s.run) s.kernel))
          end;
          push (span_event ~run_offset:!run_offset ~run_end s))
        (Span.spans rec_);
      (* Reserve this recorder's run range before the next one starts. *)
      let max_run =
        List.fold_left
          (fun m (s : Span.span) -> Stdlib.max m s.run)
          (-1) (Span.spans rec_)
      in
      run_offset := !run_offset + max_run + 1)
    spans;
  (* Causal recorders pair positionally with span recorders (a sink holds
     one of each), so their events land on the same offset-adjusted pids. *)
  let offsets = Array.of_list (List.rev !offsets) in
  List.iteri
    (fun i c ->
      let off = if i < Array.length offsets then offsets.(i) else 0 in
      List.iter
        (fun e -> push (causal_event ~run_offset:off e))
        (Causal.events c))
    causal;
  List.iter
    (fun tr -> List.iter (fun e -> push (trace_event e)) (Sim.Trace.events tr))
    traces;
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.rev !events));
      ("displayTimeUnit", Json.Str "ns");
    ]
