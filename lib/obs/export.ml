(* Chrome trace_event ("catapult") JSON, loadable in Perfetto / about:tracing.
   Simulated time is nanoseconds; trace_event wants microseconds in [ts]/
   [dur], so we divide by 1e3 and keep the fraction. Tracks: one "process"
   per (run, kernel) pair so repeated boots sharing a recorder don't overlap,
   one "thread" row per simulated tid (row 0 for kernel-level spans). *)

let us ns = float_of_int ns /. 1_000.

let pid_of ~run_offset (s : Span.span) = ((run_offset + s.run) * 100) + s.kernel

let span_event ~run_offset (s : Span.span) =
  let stop = if s.stop < 0 then s.start else s.stop in
  let args =
    [ ("span_id", Json.Int s.id); ("kernel", Json.Int s.kernel);
      ("run", Json.Int s.run) ]
    @ (match s.parent with
      | None -> []
      | Some p -> [ ("parent", Json.Int p) ])
    @ match s.tid with None -> [] | Some t -> [ ("sim_tid", Json.Int t) ]
  in
  Json.Obj
    [
      ("name", Json.Str (Span.kind_name s.kind));
      ("cat", Json.Str "span");
      ("ph", Json.Str "X");
      ("ts", Json.Float (us s.start));
      ("dur", Json.Float (us (stop - s.start)));
      ("pid", Json.Int (pid_of ~run_offset s));
      ("tid", Json.Int (match s.tid with None -> 0 | Some t -> t + 1));
      ("args", Json.Obj args);
    ]

let process_meta ~pid name =
  Json.Obj
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let trace_event (e : Sim.Trace.event) =
  Json.Obj
    [
      ("name", Json.Str e.msg);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str "i");
      ("s", Json.Str "g");
      ("ts", Json.Float (us e.at));
      ("pid", Json.Int 0);
      ("tid", Json.Int 0);
    ]

let chrome_trace ?(spans = []) ?(traces = []) () =
  let events = ref [] in
  let push e = events := e :: !events in
  if traces <> [] then push (process_meta ~pid:0 "trace ring");
  let run_offset = ref 0 in
  List.iter
    (fun rec_ ->
      let seen_pids = Hashtbl.create 8 in
      List.iter
        (fun (s : Span.span) ->
          let pid = pid_of ~run_offset:!run_offset s in
          if not (Hashtbl.mem seen_pids pid) then begin
            Hashtbl.add seen_pids pid ();
            push
              (process_meta ~pid
                 (Printf.sprintf "run %d / kernel %d"
                    (!run_offset + s.run) s.kernel))
          end;
          push (span_event ~run_offset:!run_offset s))
        (Span.spans rec_);
      (* Reserve this recorder's run range before the next one starts. *)
      let max_run =
        List.fold_left
          (fun m (s : Span.span) -> Stdlib.max m s.run)
          (-1) (Span.spans rec_)
      in
      run_offset := !run_offset + max_run + 1)
    spans;
  List.iter
    (fun tr -> List.iter (fun e -> push (trace_event e)) (Sim.Trace.events tr))
    traces;
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.rev !events));
      ("displayTimeUnit", Json.Str "ns");
    ]
