(** Exporters for recorded observability data. *)

val chrome_trace :
  ?spans:Span.t list ->
  ?causal:Causal.t list ->
  ?traces:Sim.Trace.t list ->
  unit ->
  Json.t
(** Chrome [trace_event] JSON (load in {{:https://ui.perfetto.dev}Perfetto}
    or [chrome://tracing]). Each span becomes a complete ("X") event on a
    process track named after its (run, kernel) pair, with simulated
    nanoseconds mapped to trace microseconds; exact-nanosecond
    [start_ns]/[stop_ns] args let [popcornsim analyze] reconstruct the span
    forest losslessly. Spans left unclosed by the workload are clamped to
    the end of their run and flagged with an [unclosed] arg. Causal events
    become flow events ("s"/"f", cat "causal") linking the sending track to
    the delivering track, with link records as instants; trace-ring entries
    become global instant ("i") events on pid 0. When several recorders are
    passed, their run numbers are offset so tracks never collide; causal
    recorders pair positionally with span recorders. *)
