(** Exporters for recorded observability data. *)

val chrome_trace :
  ?spans:Span.t list -> ?traces:Sim.Trace.t list -> unit -> Json.t
(** Chrome [trace_event] JSON (load in {{:https://ui.perfetto.dev}Perfetto}
    or [chrome://tracing]). Each span becomes a complete ("X") event on a
    process track named after its (run, kernel) pair, with simulated
    nanoseconds mapped to trace microseconds; trace-ring entries become
    global instant ("i") events on pid 0. When several recorders are passed,
    their run numbers are offset so tracks never collide. *)
