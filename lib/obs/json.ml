type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  (* JSON has no NaN/Infinity; map them to null. *)
  if Float.is_nan f || Float.abs f = Float.infinity then None
  else if Float.is_integer f && Float.abs f < 1e15 then
    Some (Printf.sprintf "%.0f" f)
  else Some (Printf.sprintf "%.12g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match float_repr f with
      | Some s -> Buffer.add_string buf s
      | None -> Buffer.add_string buf "null")
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc j;
      output_char oc '\n')

(* --- parsing (for `popcornsim analyze` / `diff`, which read documents the
   serialiser above wrote). Recursive descent over the full RFC 8259
   grammar; numbers without '.', 'e' or overflow parse as Int so documents
   round-trip through the Int/Float split above. --- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let parse_fail st msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> parse_fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else parse_fail st ("expected " ^ word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then parse_fail st "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub st.src st.pos 4) in
  st.pos <- st.pos + 4;
  v

(* Encode a code point as UTF-8 (we only ever *read* what we wrote, which
   escapes nothing above 0x1f, but accept the full range anyway). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
            st.pos <- st.pos + 1;
            let cp = parse_hex4 st in
            (* Surrogate pair: \uD800-\uDBFF must be followed by a low
               surrogate; combine them. *)
            let cp =
              if cp >= 0xD800 && cp <= 0xDBFF
                 && st.pos + 6 <= String.length st.src
                 && st.src.[st.pos] = '\\'
                 && st.src.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = parse_hex4 st in
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else cp
            in
            add_utf8 buf cp;
            go ()
        | _ -> parse_fail st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let lit = String.sub st.src start (st.pos - start) in
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
  in
  if is_float then
    match float_of_string_opt lit with
    | Some f -> Float f
    | None -> parse_fail st ("bad number " ^ lit)
  else
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        (* Integer literal too large for native int: keep it as a float. *)
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> parse_fail st ("bad number " ^ lit))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; members ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> parse_fail st "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; elements ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> parse_fail st "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> parse_fail st (Printf.sprintf "unexpected '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg (* e.g. malformed \u escape *)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
