type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  (* JSON has no NaN/Infinity; map them to null. *)
  if Float.is_nan f || Float.abs f = Float.infinity then None
  else if Float.is_integer f && Float.abs f < 1e15 then
    Some (Printf.sprintf "%.0f" f)
  else Some (Printf.sprintf "%.12g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match float_repr f with
      | Some s -> Buffer.add_string buf s
      | None -> Buffer.add_string buf "null")
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc j;
      output_char oc '\n')
