(** Minimal JSON document model and serialiser.

    The exporters build values of {!t} and render them with {!to_string} /
    {!to_file}; no external JSON dependency is needed. Strings are escaped
    per RFC 8259; NaN/infinite floats (which JSON cannot represent) render
    as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_channel : out_channel -> t -> unit

val to_file : string -> t -> unit
(** Write the document (plus a trailing newline) to [path], truncating. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (full RFC 8259 grammar). Numbers without a
    fraction or exponent that fit a native [int] parse as [Int], everything
    else as [Float], so documents written by {!to_string} round-trip. *)

val of_file : string -> (t, string) result
(** {!of_string} over the file's contents; I/O errors become [Error]. *)
