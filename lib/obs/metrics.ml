(* Cells are keyed by (name, kernel scope). Names are interned into dense
   ids ([Names]); per name, cells live in a slot holding the unscoped cell
   plus a kernel-indexed array — so an update through the by-name API is
   one string-hash (the intern) and two array reads, and an update through
   a pre-resolved handle touches no hash at all. All read-out goes through
   [rows], which reconstructs (name, kernel) keys and sorts, so consumers
   see exactly the same deterministic order (and byte-identical JSON) as
   the original hashtable-of-(string * int option) implementation. *)

type cell =
  | CCounter of int ref
  | CGauge of float ref
  | CHist of Stats.Histogram.t

(** All cells of one name: the global (unscoped) cell and the per-kernel
    cells, indexed by kernel id (dense small ints in every model). *)
type slot = {
  mutable s_global : cell option;
  mutable s_kernels : cell option array;
}

type t = { names : Names.t; mutable slots : slot option array }

type view =
  | Counter of int
  | Gauge of float
  | Hist of {
      count : int;
      mean : float;
      p50 : float;
      p99 : float;
      p999 : float;
      max : float;
    }

let create () = { names = Names.create (); slots = [||] }

let kind_name = function
  | CCounter _ -> "counter"
  | CGauge _ -> "gauge"
  | CHist _ -> "histogram"

let slot t id =
  if id >= Array.length t.slots then begin
    let a = Array.make (max 16 (2 * (id + 1))) None in
    Array.blit t.slots 0 a 0 (Array.length t.slots);
    t.slots <- a
  end;
  match t.slots.(id) with
  | Some s -> s
  | None ->
      let s = { s_global = None; s_kernels = [||] } in
      t.slots.(id) <- Some s;
      s

(* Read-only probe: never mints a name id, a slot or a cell. *)
let find_cell t ~kernel name =
  match Names.find t.names name with
  | None -> None
  | Some id -> (
      if id >= Array.length t.slots then None
      else
        match t.slots.(id) with
        | None -> None
        | Some s -> (
            match kernel with
            | None -> s.s_global
            | Some k ->
                if k >= 0 && k < Array.length s.s_kernels then
                  s.s_kernels.(k)
                else None))

let cell_in_slot s ~kernel name make =
  match kernel with
  | None -> (
      match s.s_global with
      | Some c -> c
      | None ->
          let c = make () in
          s.s_global <- Some c;
          c)
  | Some k -> (
      if k < 0 then
        invalid_arg
          (Printf.sprintf "Metrics: negative kernel scope %d for %s" k name);
      if k >= Array.length s.s_kernels then begin
        let a = Array.make (max 16 (2 * (k + 1))) None in
        Array.blit s.s_kernels 0 a 0 (Array.length s.s_kernels);
        s.s_kernels <- a
      end;
      match s.s_kernels.(k) with
      | Some c -> c
      | None ->
          let c = make () in
          s.s_kernels.(k) <- Some c;
          c)

let cell t ~kernel name make =
  cell_in_slot (slot t (Names.intern t.names name)) ~kernel name make

let wrong_kind name c want =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name c) want)

let add t ?kernel name n =
  match cell t ~kernel name (fun () -> CCounter (ref 0)) with
  | CCounter r -> r := !r + n
  | c -> wrong_kind name c "counter"

let incr t ?kernel name = add t ?kernel name 1

let set_gauge t ?kernel name v =
  match cell t ~kernel name (fun () -> CGauge (ref 0.)) with
  | CGauge r -> r := v
  | c -> wrong_kind name c "gauge"

let observe t ?kernel name x =
  match cell t ~kernel name (fun () -> CHist (Stats.Histogram.create ())) with
  | CHist h -> Stats.Histogram.add h x
  | c -> wrong_kind name c "histogram"

(* Pre-resolved handles. Updating through one is a single option check +
   mutation — no name hashing at all. The name is interned at resolution
   (ids without cells never reach an export), but the underlying cell is
   materialized on the first update: a handle that is resolved but never
   updated leaves the registry (and every metrics export) exactly as if it
   never existed, so callers can resolve a full bundle of handles up front
   without minting zero-valued cells. Once materialized, a cell is never
   removed, so the cached ref stays valid for the registry's lifetime. *)
type counter_handle = {
  ch_reg : t;
  ch_id : int;
  ch_name : string;
  ch_kernel : int option;
  mutable ch_cell : int ref option;
}

type hist_handle = {
  hh_reg : t;
  hh_id : int;
  hh_name : string;
  hh_kernel : int option;
  mutable hh_cell : Stats.Histogram.t option;
}

let counter_handle t ?kernel name =
  (* Kind mismatch with an existing cell surfaces here; a fresh name is
     only checked on first update (when the cell is created). *)
  (match find_cell t ~kernel name with
  | None | Some (CCounter _) -> ()
  | Some c -> wrong_kind name c "counter");
  {
    ch_reg = t;
    ch_id = Names.intern t.names name;
    ch_name = name;
    ch_kernel = kernel;
    ch_cell = None;
  }

let hist_handle t ?kernel name =
  (match find_cell t ~kernel name with
  | None | Some (CHist _) -> ()
  | Some c -> wrong_kind name c "histogram");
  {
    hh_reg = t;
    hh_id = Names.intern t.names name;
    hh_name = name;
    hh_kernel = kernel;
    hh_cell = None;
  }

let handle_add h n =
  match h.ch_cell with
  | Some r -> r := !r + n
  | None -> (
      match
        cell_in_slot
          (slot h.ch_reg h.ch_id)
          ~kernel:h.ch_kernel h.ch_name
          (fun () -> CCounter (ref 0))
      with
      | CCounter r ->
          h.ch_cell <- Some r;
          r := !r + n
      | c -> wrong_kind h.ch_name c "counter")

let handle_incr h = handle_add h 1

let handle_observe h x =
  match h.hh_cell with
  | Some hist -> Stats.Histogram.add hist x
  | None -> (
      match
        cell_in_slot
          (slot h.hh_reg h.hh_id)
          ~kernel:h.hh_kernel h.hh_name
          (fun () -> CHist (Stats.Histogram.create ()))
      with
      | CHist hist ->
          h.hh_cell <- Some hist;
          Stats.Histogram.add hist x
      | c -> wrong_kind h.hh_name c "histogram")

let counter t ?kernel name =
  match find_cell t ~kernel name with
  | Some (CCounter r) -> !r
  | Some c -> wrong_kind name c "counter"
  | None -> 0

let gauge t ?kernel name =
  match find_cell t ~kernel name with
  | Some (CGauge r) -> !r
  | Some c -> wrong_kind name c "gauge"
  | None -> 0.

let view = function
  | CCounter r -> Counter !r
  | CGauge r -> Gauge !r
  | CHist h ->
      Hist
        {
          count = Stats.Histogram.count h;
          mean = Stats.Histogram.mean h;
          p50 = Stats.Histogram.median h;
          p99 = Stats.Histogram.p99 h;
          p999 = Stats.Histogram.p999 h;
          max = Stats.Histogram.max h;
        }

(* (name, kernel) ascending, with the unscoped (global) entry of a name
   before its per-kernel entries — [None < Some _] under compare. The
   (name, kernel) keys are reconstructed from the interned store, so the
   result (and every export below) is indistinguishable from the original
   string-keyed implementation. *)
let rows t =
  let acc = ref [] in
  for id = Array.length t.slots - 1 downto 0 do
    match t.slots.(id) with
    | None -> ()
    | Some s ->
        let name = Names.to_string t.names id in
        Array.iteri
          (fun k c ->
            match c with
            | None -> ()
            | Some c -> acc := ((name, Some k), view c) :: !acc)
          s.s_kernels;
        (match s.s_global with
        | None -> ()
        | Some c -> acc := ((name, None), view c) :: !acc)
  done;
  List.sort (fun (ka, _) (kb, _) -> compare ka kb) !acc

(* Exported JSON must be byte-stable regardless of the order metrics were
   first touched: the parallel suite runner serializes one sink per
   experiment and CI byte-diffs the result against a committed baseline.
   Entries are sorted by (name, kernel) here — the same order [rows]
   guarantees — so the export does not depend on [rows] keeping that
   property. *)
let to_json t =
  let scope kernel =
    match kernel with None -> Json.Null | Some k -> Json.Int k
  in
  let entry extra ((name, kernel), _) =
    Json.Obj (("name", Json.Str name) :: ("kernel", scope kernel) :: extra)
  in
  let counters, gauges, hists =
    List.fold_left
      (fun (cs, gs, hs) ((_, v) as row) ->
        match v with
        | Counter n -> (entry [ ("value", Json.Int n) ] row :: cs, gs, hs)
        | Gauge x -> (cs, entry [ ("value", Json.Float x) ] row :: gs, hs)
        | Hist h ->
            ( cs,
              gs,
              entry
                [
                  ("count", Json.Int h.count);
                  ("mean", Json.Float h.mean);
                  ("p50", Json.Float h.p50);
                  ("p99", Json.Float h.p99);
                  ("p999", Json.Float h.p999);
                  ("max", Json.Float h.max);
                ]
                row
              :: hs ))
      ([], [], [])
      (List.sort (fun (ka, _) (kb, _) -> compare ka kb) (rows t))
  in
  Json.Obj
    [
      ("counters", Json.Arr (List.rev counters));
      ("gauges", Json.Arr (List.rev gauges));
      ("histograms", Json.Arr (List.rev hists));
    ]

let pp fmt t =
  List.iter
    (fun ((name, kernel), v) ->
      let scope =
        match kernel with
        | None -> "-"
        | Some k -> Printf.sprintf "k%d" k
      in
      let value =
        match v with
        | Counter n -> string_of_int n
        | Gauge x -> Printf.sprintf "%.2f" x
        | Hist h ->
            Printf.sprintf
              "n=%d mean=%.0f p50=%.0f p99=%.0f p999=%.0f max=%.0f" h.count
              h.mean h.p50 h.p99 h.p999 h.max
      in
      Format.fprintf fmt "%-28s %-5s %s@\n" name scope value)
    (rows t)
