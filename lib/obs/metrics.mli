(** Metrics registry: named counters, gauges and latency histograms, each
    either global or scoped to one kernel.

    A registry is attached to a machine ([Hw.Machine.attach_obs]); the
    messaging layer and the OS models bump metrics only when one is
    attached, so runs without observability pay a single [option] check per
    event and produce bit-identical simulated results. Updates are O(1) —
    names are interned ({!Names}) and cells live in arrays indexed by name
    id and kernel id, so the by-name API hashes one string and a handle
    update hashes nothing; all read-out ({!rows}, {!to_json}, {!pp}) is
    sorted by (name, kernel), so the output order is deterministic
    regardless of the order in which metrics were first touched. *)

type t

(** Read-only snapshot of one metric.

    Histogram summaries are computed from {!Stats.Histogram}'s log
    buckets (4 sub-buckets per octave): every reported percentile — p50,
    p99 and p999 alike — carries the bucket quantisation's ±9% relative
    error ([2^(1/8) ≈ 1.09] around the bucket's representative value),
    while [max] is the exact largest observation. Worst-case/SLO
    reporting therefore reads [max]; percentiles describe the
    distribution's shape, not its bound. *)
type view =
  | Counter of int
  | Gauge of float
  | Hist of {
      count : int;
      mean : float;
      p50 : float;
      p99 : float;
      p999 : float;
      max : float;
    }

val create : unit -> t

val incr : t -> ?kernel:int -> string -> unit
(** Add 1 to a counter (created on first use). *)

val add : t -> ?kernel:int -> string -> int -> unit
(** Add [n] to a counter. *)

val set_gauge : t -> ?kernel:int -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : t -> ?kernel:int -> string -> float -> unit
(** Record one observation in a log-bucketed histogram
    ({!Stats.Histogram}). *)

(** {1 Pre-resolved handles}

    {!incr}/{!add}/{!observe} probe the registry hashtable by (name,
    kernel) on every call — fine for cold paths, measurable on hot ones
    (the messaging layer updates several metrics per delivered message).
    A handle resolves that lookup once; updating through it is one option
    check plus a mutation. The backing cell is materialized on the first
    update, not at resolution, so a handle that is never updated leaves
    the registry — and every export — untouched; callers can resolve a
    full bundle of handles up front without minting zero-valued metrics.
    Handles stay valid for the registry's lifetime (cells are never
    removed). A kind mismatch with an existing cell raises
    [Invalid_argument] at resolution; for a not-yet-existing name it
    raises on the first update. *)

type counter_handle
type hist_handle

val counter_handle : t -> ?kernel:int -> string -> counter_handle
val hist_handle : t -> ?kernel:int -> string -> hist_handle
val handle_incr : counter_handle -> unit
val handle_add : counter_handle -> int -> unit
val handle_observe : hist_handle -> float -> unit

val counter : t -> ?kernel:int -> string -> int
(** Current value; 0 if the counter was never touched. Raises
    [Invalid_argument] if the name is registered as a different kind. *)

val gauge : t -> ?kernel:int -> string -> float

val rows : t -> ((string * int option) * view) list
(** Every metric, sorted by (name, kernel); the global scope of a name
    sorts before its per-kernel scopes. *)

val to_json : t -> Json.t
(** [{"counters":[{"name","kernel","value"}...], "gauges":[...],
    "histograms":[{"name","kernel","count","mean","p50","p99","p999",
    "max"}...]}] with entries in {!rows} order; [kernel] is null for
    global metrics. *)

val pp : Format.formatter -> t -> unit
(** One aligned line per metric, in {!rows} order. *)
