(* String interner: dense int ids for metric/span/label names, so hot paths
   key arrays by id instead of hashing strings. Per-instance (never global):
   experiment runs execute on parallel domains, each with its own registry. *)

type t = {
  tbl : (string, int) Hashtbl.t;
  mutable arr : string array;
  mutable n : int;
}

let create ?(size = 64) () = { tbl = Hashtbl.create size; arr = [||]; n = 0 }

let intern t s =
  match Hashtbl.find_opt t.tbl s with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.arr then begin
        let a = Array.make (max 16 (2 * id)) "" in
        Array.blit t.arr 0 a 0 id;
        t.arr <- a
      end;
      t.arr.(id) <- s;
      t.n <- id + 1;
      Hashtbl.add t.tbl s id;
      id

let find t s = Hashtbl.find_opt t.tbl s
let to_string t id = t.arr.(id)
let count t = t.n
