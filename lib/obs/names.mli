(** String interner: dense int ids for names on observability hot paths.

    {!intern} returns a stable id for a string (minting the next dense id
    on first sight); {!find} looks one up without minting — the read-side
    counterpart, so pure readers never grow the table. Ids index plain
    arrays ({!count} bounds them, {!to_string} inverts them).

    Instances are not thread-safe and deliberately per-registry/per-run:
    the experiment suite runs on parallel domains, so a global interner
    would be both a race and a determinism hazard. *)

type t

val create : ?size:int -> unit -> t
val intern : t -> string -> int
val find : t -> string -> int option
val to_string : t -> int -> string
val count : t -> int
