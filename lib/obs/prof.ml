(* Host-time attribution rides the engine's observer hook. The clock is
   bechamel's monotonic clock (CLOCK_MONOTONIC, integer nanoseconds, no
   allocation); GC deltas come from [Gc.counters]. Everything here runs on
   the host side of the observer contract: no simulated time, no RNG, no
   event scheduling — see prof.mli for the inertness argument. *)

let clock () = Int64.to_int (Monotonic_clock.now ())

(* Collapse digit runs so per-instance fiber names ("thread-17", "req-409",
   "msg-handler-n3") aggregate into a bounded label set. *)
let normalize name =
  let n = String.length name in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if name.[!i] >= '0' && name.[!i] <= '9' then begin
      Buffer.add_char b '*';
      while !i < n && name.[!i] >= '0' && name.[!i] <= '9' do incr i done
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

type stat = {
  mutable st_events : int;
  mutable st_self_ns : int;
  mutable st_minor : float;
  mutable st_major : float;
}

type row = {
  name : string;
  tag : string option;
  events : int;
  self_ns : int;
  minor_words : float;
  major_words : float;
}

type sample = {
  boot : int;
  at : Sim.Time.t;
  s_events : int;
  queue_len : int;
  queue_max : int;
  s_parks : int;
  s_resumes : int;
  s_waitq_dead : int;
  s_chan_queued : int;
}

let max_samples = 4096

type t = {
  labels : (string * string option, stat) Hashtbl.t;
  (* Per-boot cache: engine label id -> stat. Engine labels are dense ints
     minted per engine, so after the first event of each distinct label the
     hot path is one array read — no string normalization, no hashing.
     Reset on [attach]: a fresh engine is a fresh id space. *)
  mutable by_label : stat option array;
  mutable boots : int;
  mutable total_events : int;
  mutable sched_ns : int;
  (* state of the event currently executing *)
  mutable cur : stat option;
  mutable t0 : int;
  mutable minor0 : float;
  mutable major0 : float;
  (* host time of the previous event's end (or run start), -1 outside
     [Engine.run]: the gap to the next event's start is scheduler time. *)
  mutable last_end : int;
  (* virtual-time sampling *)
  mutable sample_every : Sim.Time.t;
  mutable next_sample : Sim.Time.t;
  mutable n_samples : int;
  mutable samples_rev : sample list;
}

let create ?(sample_every = Sim.Time.us 100) () =
  {
    labels = Hashtbl.create 64;
    by_label = [||];
    boots = 0;
    total_events = 0;
    sched_ns = 0;
    cur = None;
    t0 = 0;
    minor0 = 0.;
    major0 = 0.;
    last_end = -1;
    sample_every;
    next_sample = 0;
    n_samples = 0;
    samples_rev = [];
  }

let stat t ~name ~tag =
  let key = (normalize name, tag) in
  match Hashtbl.find_opt t.labels key with
  | Some s -> s
  | None ->
      let s =
        { st_events = 0; st_self_ns = 0; st_minor = 0.; st_major = 0. }
      in
      Hashtbl.add t.labels key s;
      s

(* Cold path: first event of a label this boot. Resolve the engine's label
   id to its (name, tag), normalize, and cache the accumulator cell so
   every later event of this label is an array read. *)
let resolve t eng (lbl : Sim.Engine.label) =
  let n = (lbl :> int) in
  if n >= Array.length t.by_label then begin
    let ncap = max 64 (2 * (n + 1)) in
    let a = Array.make ncap None in
    Array.blit t.by_label 0 a 0 (Array.length t.by_label);
    t.by_label <- a
  end;
  match t.by_label.(n) with
  | Some s -> s
  | None ->
      let s =
        stat t
          ~name:(Sim.Engine.label_name eng lbl)
          ~tag:(Sim.Engine.label_tag eng lbl)
      in
      t.by_label.(n) <- Some s;
      s

(* Thin the sample buffer in place of failing on long runs: drop every
   other retained sample and double the interval. *)
let thin t =
  let keep = ref [] and n = ref 0 and i = ref 0 in
  List.iter
    (fun s ->
      if !i land 1 = 0 then begin
        keep := s :: !keep;
        incr n
      end;
      incr i)
    t.samples_rev;
  t.samples_rev <- List.rev !keep;
  t.n_samples <- !n;
  t.sample_every <- 2 * t.sample_every

let take_sample t eng ~now =
  let s =
    {
      boot = t.boots;
      at = now;
      s_events = Sim.Engine.events_processed eng;
      queue_len = Sim.Engine.queue_length eng;
      queue_max = Sim.Engine.queue_max_length eng;
      s_parks = Sim.Engine.parks eng;
      s_resumes = Sim.Engine.resumes eng;
      s_waitq_dead = Sim.Engine.waitq_dead eng;
      s_chan_queued = Sim.Engine.chan_queued eng;
    }
  in
  t.samples_rev <- s :: t.samples_rev;
  t.n_samples <- t.n_samples + 1;
  if t.n_samples >= max_samples then thin t;
  t.next_sample <- Sim.Time.add now t.sample_every

let observer t eng : Sim.Engine.observer =
  {
    on_run_start =
      (fun ~now:_ ->
        (* Count heap-pop/dispatch time from here; the gap before the first
           event is scheduler work too. *)
        t.last_end <- clock ());
    on_event =
      (fun ~label ~now ->
        let c = clock () in
        if t.last_end >= 0 then t.sched_ns <- t.sched_ns + (c - t.last_end);
        if now >= t.next_sample then take_sample t eng ~now;
        let minor, _promoted, major = Gc.counters () in
        let n = (label :> int) in
        let s =
          if n < Array.length t.by_label then
            match Array.unsafe_get t.by_label n with
            | Some s -> s
            | None -> resolve t eng label
          else resolve t eng label
        in
        t.cur <- Some s;
        t.t0 <- c;
        t.minor0 <- minor;
        t.major0 <- major);
    on_event_done =
      (fun () ->
        match t.cur with
        | None -> ()
        | Some s ->
            let c = clock () in
            let minor, _promoted, major = Gc.counters () in
            s.st_events <- s.st_events + 1;
            s.st_self_ns <- s.st_self_ns + (c - t.t0);
            s.st_minor <- s.st_minor +. (minor -. t.minor0);
            s.st_major <- s.st_major +. (major -. t.major0);
            t.total_events <- t.total_events + 1;
            t.cur <- None;
            t.last_end <- c);
    on_run_stop =
      (fun ~now:_ ->
        (* Close the trailing dispatch gap and stop counting: host time
           between engine runs belongs to the harness, not the scheduler. *)
        if t.last_end >= 0 then
          t.sched_ns <- t.sched_ns + (clock () - t.last_end);
        t.last_end <- -1);
  }

let attach t eng =
  t.boots <- t.boots + 1;
  t.next_sample <- 0;
  (* Fresh engine, fresh label-id space: drop the per-boot cache (the
     accumulated per-name stats in [labels] survive across boots). *)
  t.by_label <- [||];
  Sim.Engine.set_observer eng (Some (observer t eng))

let detach eng = Sim.Engine.set_observer eng None

let boots t = t.boots
let total_events t = t.total_events
let sched_ns t = t.sched_ns

let rows t =
  Hashtbl.fold
    (fun (name, tag) s acc ->
      {
        name;
        tag;
        events = s.st_events;
        self_ns = s.st_self_ns;
        minor_words = s.st_minor;
        major_words = s.st_major;
      }
      :: acc)
    t.labels []
  |> List.sort (fun a b ->
         match compare b.self_ns a.self_ns with
         | 0 -> compare (a.name, a.tag) (b.name, b.tag)
         | c -> c)

let attributed_ns t =
  Hashtbl.fold (fun _ s acc -> acc + s.st_self_ns) t.labels 0

let samples t = List.rev t.samples_rev

(* --- rendering --- *)

let label_string r =
  match r.tag with None -> r.name | Some tag -> tag ^ ":" ^ r.name

let report t ~host_ms ~top =
  let b = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let total_ns = host_ms *. 1e6 in
  let pct ns = if total_ns <= 0. then 0. else 100. *. float_of_int ns /. total_ns in
  let all = rows t in
  let shown, rest =
    let rec split i = function
      | r :: tl when i < top ->
          let s, t = split (i + 1) tl in
          (r :: s, t)
      | tl -> ([], tl)
    in
    split 0 all
  in
  addf "host-time attribution (%d events over %d engine boot%s):\n"
    (total_events t) (boots t)
    (if boots t = 1 then "" else "s");
  addf "  %-32s %10s %9s %6s %9s %9s\n" "label" "self(ms)" "events" "%" "ns/ev"
    "words/ev";
  let row_line label ns events minor major =
    let per d = if events = 0 then 0. else d /. float_of_int events in
    addf "  %-32s %10.2f %9d %5.1f%% %9.0f %9.1f\n" label
      (float_of_int ns /. 1e6)
      events (pct ns)
      (per (float_of_int ns))
      (per (minor +. major))
  in
  List.iter
    (fun r -> row_line (label_string r) r.self_ns r.events r.minor_words r.major_words)
    shown;
  (match rest with
  | [] -> ()
  | _ ->
      let ns, ev, mw, mj =
        List.fold_left
          (fun (ns, ev, mw, mj) r ->
            (ns + r.self_ns, ev + r.events, mw +. r.minor_words,
             mj +. r.major_words))
          (0, 0, 0., 0.) rest
      in
      row_line
        (Printf.sprintf "(other: %d labels)" (List.length rest))
        ns ev mw mj);
  row_line "[engine dispatch]" t.sched_ns (total_events t) 0. 0.;
  let unattributed =
    int_of_float total_ns - attributed_ns t - t.sched_ns
  in
  addf "  %-32s %10.2f %19s %5.1f%%\n" "[harness, unattributed]"
    (float_of_int unattributed /. 1e6)
    "" (pct unattributed);
  addf "  %-32s %10.2f %19s %5.1f%%\n" "= total host time" host_ms "" 100.;
  (* scheduler telemetry: final values of the introspection series *)
  (match List.rev t.samples_rev with
  | [] -> ()
  | samples ->
      let last = List.hd (List.rev samples) in
      addf
        "scheduler telemetry (%d samples, final boot): eheap depth %d (max \
         %d), parks %d, resumes %d, waitq dead %d, chan queued %d\n"
        (List.length samples) last.queue_len last.queue_max last.s_parks
        last.s_resumes last.s_waitq_dead last.s_chan_queued);
  Buffer.contents b

let folded t =
  let b = Buffer.create 1024 in
  let lines =
    List.map
      (fun r ->
        Printf.sprintf "popcornsim;%s;%s %d"
          (match r.tag with None -> "sim" | Some tag -> tag)
          r.name r.self_ns)
      (rows t)
    @ [ Printf.sprintf "popcornsim;sim;[dispatch] %d" t.sched_ns ]
  in
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    (List.sort compare lines);
  Buffer.contents b

let to_json t ~host_ms =
  let row_json r =
    Json.Obj
      [
        ("name", Json.Str r.name);
        ("tag", match r.tag with None -> Json.Null | Some s -> Json.Str s);
        ("events", Json.Int r.events);
        ("self_ns", Json.Int r.self_ns);
        ("minor_words", Json.Float r.minor_words);
        ("major_words", Json.Float r.major_words);
      ]
  in
  let sample_json s =
    Json.Obj
      [
        ("boot", Json.Int s.boot);
        ("at_ns", Json.Int s.at);
        ("events", Json.Int s.s_events);
        ("queue_len", Json.Int s.queue_len);
        ("queue_max", Json.Int s.queue_max);
        ("parks", Json.Int s.s_parks);
        ("resumes", Json.Int s.s_resumes);
        ("waitq_dead", Json.Int s.s_waitq_dead);
        ("chan_queued", Json.Int s.s_chan_queued);
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "popcornsim-profile-v1");
      ("host_ms", Json.Float host_ms);
      ("boots", Json.Int t.boots);
      ("events", Json.Int t.total_events);
      ("attributed_ns", Json.Int (attributed_ns t));
      ("sched_ns", Json.Int t.sched_ns);
      ("labels", Json.Arr (List.map row_json (rows t)));
      ("samples", Json.Arr (List.map sample_json (samples t)));
    ]
