(** Host-time profiling and engine telemetry.

    Where the rest of [lib/obs] attributes {e simulated} nanoseconds to
    protocol phases, [Prof] answers the other question: where does a {e
    host} second go while the simulator runs? It plugs into the engine's
    observer hook ({!Sim.Engine.set_observer}) and, per event, attributes
    monotonic wall-clock self-time, an event count and GC minor/major-word
    deltas to the event's label — the [as_fiber] name (digit runs collapsed
    to ["*"] so ["thread-17"] and ["thread-4093"] aggregate as
    ["thread-*"]) plus the spawn site's subsystem tag. It also samples
    scheduler-introspection series over virtual time: event-heap depth
    (current and high-water), fiber park/resume totals, dead wait-queue
    entries and buffered channel items.

    Profiling is off by default and provably inert when off: with no
    observer installed the engine pays one [option] check per event, and
    with one installed the observer only reads host clocks and engine
    counters — it cannot schedule events, advance time or touch the RNG, so
    simulated results are bit-identical either way (enforced by
    [test_prof.ml]).

    One [Prof.t] may be attached to many engines in sequence (an experiment
    boots a fresh machine per data point); stats accumulate across all of
    them and samples carry the boot index. *)

type t

val create : ?sample_every:Sim.Time.t -> unit -> t
(** [sample_every] is the virtual-time interval between introspection
    samples (default 100us). The sample buffer is bounded: when it fills,
    the interval doubles and every other retained sample is dropped, so
    long runs keep coarse coverage instead of failing. *)

val attach : t -> Sim.Engine.t -> unit
(** Install this profiler as [eng]'s observer and start a new boot
    (sampling restarts at virtual time zero). *)

val detach : Sim.Engine.t -> unit
(** Remove any observer from [eng]. *)

val boots : t -> int
(** How many engines this profiler has been attached to. *)

(** Accumulated per-label totals. [self_ns] is host monotonic self-time;
    [minor_words]/[major_words] are GC allocation deltas attributed to the
    label's events (the profiler's own bookkeeping allocates a few words
    per event, which is included — use [popcornsim profile --overhead] to
    bound it). *)
type row = {
  name : string;  (** normalized fiber name, digit runs collapsed to ["*"] *)
  tag : string option;  (** subsystem tag from the spawn site *)
  events : int;
  self_ns : int;
  minor_words : float;
  major_words : float;
}

val rows : t -> row list
(** All labels, hottest (largest [self_ns]) first; ties break by name so
    the order is deterministic. *)

val total_events : t -> int

val attributed_ns : t -> int
(** Sum of [self_ns] over all labels. *)

val sched_ns : t -> int
(** Host time spent inside [Engine.run] but between events: heap pops,
    dispatch, the observer itself. [attributed_ns + sched_ns] is the host
    time of everything under [Engine.run]; the remainder of an experiment's
    [host_ms] is harness code outside the engine. *)

(** One scheduler-introspection sample. *)
type sample = {
  boot : int;  (** which engine attachment this sample belongs to *)
  at : Sim.Time.t;  (** virtual time *)
  s_events : int;  (** events processed by that engine so far *)
  queue_len : int;
  queue_max : int;
  s_parks : int;
  s_resumes : int;
  s_waitq_dead : int;
  s_chan_queued : int;
}

val samples : t -> sample list
(** Chronological (boot, then virtual time). *)

val report : t -> host_ms:float -> top:int -> string
(** The hot-label table: top-[top] labels by host self-time with events,
    ns/event and allocated words/event, then aggregate rows for the
    remaining labels, engine dispatch ({!sched_ns}) and unattributed
    harness time, summing to [host_ms]; followed by a scheduler-telemetry
    summary. *)

val folded : t -> string
(** Flamegraph-compatible folded stacks, one line per label:
    ["popcornsim;<tag>;<name> <self_ns>"] (plus a line for engine
    dispatch). Feed to [flamegraph.pl] or speedscope. *)

val to_json : t -> host_ms:float -> Json.t
(** Machine-readable dump: totals, per-label rows and the sampled
    introspection series. *)
