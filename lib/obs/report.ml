(* ASCII reports for `popcornsim analyze` / `popcornsim diff`. Everything
   here is a pure function of the parsed document, so output is stable
   across hosts and runs — the diff gate in CI depends on that. *)

type dataset = {
  label : string;
  spans : Critpath.ispan list;
  causal : Causal.event list;
  slo_counters : Slo.counters;
      (* deadline accounting from the experiment's metrics section (zero
         when the document carries none, e.g. a Chrome trace). *)
}

(* --- tiny Json accessors (tolerant: wrong shapes read as absent) --- *)

let field k = function Json.Obj fs -> List.assoc_opt k fs | _ -> None

let str_field k j =
  match field k j with Some (Json.Str s) -> Some s | _ -> None

let int_field k j =
  match field k j with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let num_field k j =
  match field k j with
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

let arr_field k j = match field k j with Some (Json.Arr l) -> l | _ -> []

(* --- document -> datasets --- *)

(* Chrome trace: span X-events carry exact-ns args; causal flow events
   carry args in the same shape as Causal.to_json entries. *)
let datasets_of_chrome_trace j =
  let events = arr_field "traceEvents" j in
  let spans =
    List.filter_map
      (fun e ->
        match (str_field "cat" e, str_field "ph" e) with
        | Some "span", Some "X" -> (
            match field "args" e with
            | Some args -> (
                match
                  ( int_field "span_id" args,
                    str_field "name" e,
                    int_field "kernel" args,
                    int_field "start_ns" args )
                with
                | Some sid, Some kind, Some kernel, Some start ->
                    Some
                      {
                        Critpath.sid;
                        parent = int_field "parent" args;
                        kind;
                        kernel;
                        tid = int_field "sim_tid" args;
                        run = Option.value (int_field "run" args) ~default:0;
                        start;
                        stop =
                          Option.value (int_field "stop_ns" args) ~default:(-1);
                      }
                | _ -> None)
            | None -> None)
        | _ -> None)
      events
  in
  let causal =
    List.filter_map
      (fun e ->
        match str_field "cat" e with
        | Some "causal" -> Option.bind (field "args" e) Causal.event_of_json
        | _ -> None)
      events
  in
  if spans = [] && causal = [] then []
  else [ { label = "trace"; spans; causal; slo_counters = Slo.no_counters } ]

let datasets_of_results j =
  List.filter_map
    (fun e ->
      let label = Option.value (str_field "id" e) ~default:"?" in
      let spans =
        match field "spans" e with
        | Some s -> Critpath.ispans_of_json s
        | None -> []
      in
      let causal =
        match field "causal" e with
        | Some c -> Causal.events_of_json c
        | None -> []
      in
      let slo_counters =
        match field "metrics" e with
        | Some m -> Slo.counters_of_json m
        | None -> Slo.no_counters
      in
      if spans = [] && causal = [] then None
      else Some { label; spans; causal; slo_counters })
    (arr_field "experiments" j)

let datasets_of_doc j =
  match field "traceEvents" j with
  | Some _ -> datasets_of_chrome_trace j
  | None -> datasets_of_results j

(* --- analysis rendering --- *)

let buf_addf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let render_path b indent (p : Critpath.path) =
  List.iter
    (fun (s : Critpath.seg) ->
      buf_addf b "%s+%-10d %-28s %10d ns\n" indent
        (s.Critpath.seg_start - p.Critpath.root.Critpath.start)
        s.Critpath.label
        (s.Critpath.seg_stop - s.Critpath.seg_start))
    p.Critpath.segs;
  let sum =
    List.fold_left
      (fun a (s : Critpath.seg) -> a + s.Critpath.seg_stop - s.Critpath.seg_start)
      0 p.Critpath.segs
  in
  buf_addf b "%s= total %d ns (%d segments%s)\n" indent p.Critpath.total_ns
    (List.length p.Critpath.segs)
    (if sum = p.Critpath.total_ns then ", sum exact"
     else Printf.sprintf ", SUM MISMATCH %d" sum)

let path_kinds = [ "migration"; "thread_group_create" ]

let render_analysis (d : dataset) =
  let b = Buffer.create 4096 in
  buf_addf b "== %s ==\n" d.label;
  let unclosed =
    List.length (List.filter (fun s -> s.Critpath.stop < 0) d.spans)
  in
  let sends, delivers =
    List.fold_left
      (fun (s, dl) (e : Causal.event) ->
        match e with
        | Causal.Send _ -> (s + 1, dl)
        | Causal.Deliver _ -> (s, dl + 1)
        | Causal.Link _ -> (s, dl))
      (0, 0) d.causal
  in
  buf_addf b "  spans: %d (%d unclosed)   messages: %d sent, %d delivered"
    (List.length d.spans) unclosed sends delivers;
  if sends > delivers then buf_addf b ", %d lost" (sends - delivers);
  Buffer.add_char b '\n';
  (match Critpath.self_times ~spans:d.spans ~causal:d.causal with
  | [] -> ()
  | self ->
      let total = List.fold_left (fun a (_, ns) -> a + ns) 0 self in
      buf_addf b "  self time by subsystem:\n";
      List.iter
        (fun (name, ns) ->
          buf_addf b "    %-16s %12d ns  %5.1f%%\n" name ns
            (100. *. float_of_int ns /. float_of_int (Stdlib.max 1 total)))
        self);
  (* Worst-case & SLO block: the exact bound (not a percentile) per root
     kind, the worst path's phase budget, and deadline accounting. *)
  (match
     Slo.summarize ~counters:d.slo_counters ~spans:d.spans ~causal:d.causal ()
   with
  | { Slo.kinds = []; _ } -> ()
  | slo -> Buffer.add_string b (Slo.render slo));
  List.iter
    (fun kind ->
      match Critpath.roots ~spans:d.spans ~kind with
      | [] -> ()
      | roots ->
          let paths =
            List.map
              (fun root ->
                Critpath.critical_path ~spans:d.spans ~causal:d.causal ~root)
              roots
          in
          let n = List.length paths in
          let total =
            List.fold_left (fun a (p : Critpath.path) -> a + p.total_ns) 0 paths
          in
          let slowest =
            List.fold_left
              (fun (best : Critpath.path) (p : Critpath.path) ->
                if p.total_ns > best.total_ns then p else best)
              (List.hd paths) (List.tl paths)
          in
          buf_addf b "  %s: %d roots, mean %d ns, max %d ns\n" kind n
            (total / n) slowest.total_ns;
          buf_addf b "  critical path of slowest %s (span %d, run %d, k%d):\n"
            kind slowest.root.Critpath.sid slowest.root.Critpath.run
            slowest.root.Critpath.kernel;
          render_path b "    " slowest)
    path_kinds;
  Buffer.contents b

let analyze_doc j =
  match datasets_of_doc j with
  | [] ->
      Error
        "no span/causal data found (expected a popcornsim-bench-v2 results \
         document produced with --json, or a Chrome trace from --trace-out)"
  | ds -> Ok (String.concat "\n" (List.map render_analysis ds))

(* --- diff --- *)

(* One comparable scalar. Histograms project to .mean / .p99 / .max — max
   included so a pure tail regression (mean and p99 flat, worst case blown
   out) still shows up and can gate CI. *)
type metric = { m_exp : string; m_name : string; m_kernel : int option }

let metric_compare a b =
  compare (a.m_exp, a.m_name, a.m_kernel) (b.m_exp, b.m_name, b.m_kernel)

let metric_label m =
  Printf.sprintf "%s %s%s" m.m_exp m.m_name
    (match m.m_kernel with None -> "" | Some k -> Printf.sprintf " k%d" k)

let metrics_of_doc j =
  List.concat_map
    (fun e ->
      let m_exp = Option.value (str_field "id" e) ~default:"?" in
      match field "metrics" e with
      | None -> []
      | Some m ->
          let entry suffixes row =
            match str_field "name" row with
            | None -> []
            | Some name ->
                let m_kernel = int_field "kernel" row in
                List.filter_map
                  (fun (suffix, key) ->
                    Option.map
                      (fun v ->
                        ({ m_exp; m_name = name ^ suffix; m_kernel }, v))
                      (num_field key row))
                  suffixes
          in
          List.concat_map (entry [ ("", "value") ]) (arr_field "counters" m)
          @ List.concat_map (entry [ ("", "value") ]) (arr_field "gauges" m)
          @ List.concat_map
              (entry
                 [
                   (".mean", "mean");
                   (".p99", "p99");
                   (".p999", "p999");
                   (".max", "max");
                 ])
              (arr_field "histograms" m))
    (arr_field "experiments" j)

let is_time_metric name =
  (* e.g. migration.total_ns, msg.latency_ns.mean *)
  let has_sub sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  has_sub "_ns" name

let is_badness_counter name =
  List.exists
    (fun suffix ->
      let n = String.length name and m = String.length suffix in
      n >= m && String.sub name (n - m) m = suffix)
    [ ".failed"; ".dropped"; ".gave_up"; ".dup_suppressed"; ".unclosed";
      ".violations"; "doorbells_lost" ]

let diff ?(fail_pct = 10.) ~old_doc ~new_doc () =
  let olds = List.sort (fun (a, _) (b, _) -> metric_compare a b)
      (metrics_of_doc old_doc)
  and news = List.sort (fun (a, _) (b, _) -> metric_compare a b)
      (metrics_of_doc new_doc) in
  let b = Buffer.create 4096 in
  let regressions = ref 0 in
  let compared = ref 0 in
  let line tag m detail = buf_addf b "  [%s] %-60s %s\n" tag (metric_label m) detail in
  let rec walk olds news =
    match (olds, news) with
    | [], [] -> ()
    | (m, _) :: rest, [] ->
        line "gone" m "present in old only";
        walk rest []
    | [], (m, _) :: rest ->
        line "new" m "present in new only";
        walk [] rest
    | ((mo, vo) :: ro as allo), ((mn, vn) :: rn as alln) ->
        let c = metric_compare mo mn in
        if c < 0 then begin
          line "gone" mo "present in old only";
          walk ro alln
        end
        else if c > 0 then begin
          line "new" mn "present in new only";
          walk allo rn
        end
        else begin
          incr compared;
          let pct =
            if vo = 0. then if vn = 0. then 0. else infinity
            else (vn -. vo) /. Float.abs vo *. 100.
          in
          let detail op =
            if pct = infinity then
              Printf.sprintf "%.0f -> %.0f (was zero)" vo vn
            else Printf.sprintf "%.0f -> %.0f (%+.1f%% %s %.1f%%)" vo vn pct op fail_pct
          in
          (if is_time_metric mo.m_name && pct > fail_pct then begin
             incr regressions;
             line "REGRESS" mo (detail ">")
           end
           else if is_badness_counter mo.m_name && vn > vo then begin
             incr regressions;
             line "REGRESS" mo
               (Printf.sprintf "%.0f -> %.0f (failure counter increased)" vo vn)
           end
           else if is_time_metric mo.m_name && pct < -.fail_pct then
             line "better" mo (detail "<")
           else if vn <> vo then line "change" mo (detail "|"));
          walk ro rn
        end
  in
  Buffer.add_string b "metric comparison (old -> new):\n";
  walk olds news;
  buf_addf b
    "summary: %d metrics compared, %d regression%s (time threshold +%.1f%%)\n"
    !compared !regressions
    (if !regressions = 1 then "" else "s")
    fail_pct;
  (Buffer.contents b, !regressions)
