(** Deterministic ASCII reports over exported observability documents:
    the back end of [popcornsim analyze] and [popcornsim diff].

    Accepts either a results document ([popcornsim-bench-v2], whose
    experiments carry "spans" and "causal" sections) or a Chrome trace
    file written by {!Export.chrome_trace} (spans are reconstructed from
    the exact-nanosecond args). All output is a pure function of the
    document contents — no wall clock, no randomness — so reports diff
    cleanly across runs. *)

type dataset = {
  label : string;  (** experiment id, or ["trace"] for a Chrome trace *)
  spans : Critpath.ispan list;
  causal : Causal.event list;
  slo_counters : Slo.counters;
      (** deadline accounting parsed from the experiment's metrics
          section; {!Slo.no_counters} when the document carries none. *)
}

val datasets_of_doc : Json.t -> dataset list
(** Extract analyzable datasets from a parsed document. Results documents
    yield one dataset per experiment that recorded spans; Chrome traces
    yield a single dataset. Unrecognized documents yield []. *)

val render_analysis : dataset -> string
(** The causal/critical-path report for one dataset: span and message
    counts, per-subsystem self time, the worst-case & SLO block
    ({!Slo.render}: exact worst-case latency per root kind, the worst
    path's phase budget, deadline met/violated counters), per-root-kind
    critical-path summary, and the full segment listing of the slowest
    migration and thread-group-create (whose segment durations sum
    exactly to the root's end-to-end latency). *)

val analyze_doc : Json.t -> (string, string) result
(** Full report over every dataset in the document; [Error] when the
    document contains nothing analyzable. *)

val diff :
  ?fail_pct:float -> old_doc:Json.t -> new_doc:Json.t -> unit -> string * int
(** Metric-by-metric comparison of two results documents (v1 or v2).
    Time metrics (name containing ["_ns"], including histogram
    mean/p99/p999/max projections — max so pure tail regressions gate
    too, and the [slo.*.worst_case_ns] gauges so the certified bound
    itself gates) regress when they grow by more than [fail_pct] percent
    (default 10); failure-ish counters (.failed / .dropped / .gave_up /
    .dup_suppressed / .unclosed / .violations / doorbells_lost) regress
    on any increase. Improvements, disappearances and new metrics are reported
    as info. Returns the rendered report and the number of regressions;
    [host_ms] is never compared (host wall-clock is nondeterministic). *)
