type t = {
  metrics : Metrics.t;
  spans : Span.t;
  causal : Causal.t;
  trace : Sim.Trace.t;
}

let create ?(trace_capacity = 4096) () =
  {
    metrics = Metrics.create ();
    spans = Span.create ();
    causal = Causal.create ();
    trace = Sim.Trace.create ~capacity:trace_capacity ();
  }

let chrome_trace t =
  Export.chrome_trace ~spans:[ t.spans ] ~causal:[ t.causal ]
    ~traces:[ t.trace ] ()
