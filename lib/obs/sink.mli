(** A sink bundles one of everything the instrumentation can feed: a metrics
    registry, a span recorder, a causal (message send/deliver) event log and
    a bounded trace ring. Create one, attach it to a machine or cluster,
    run, then export. *)

type t = {
  metrics : Metrics.t;
  spans : Span.t;
  causal : Causal.t;
  trace : Sim.Trace.t;
}

val create : ?trace_capacity:int -> unit -> t
(** [trace_capacity] bounds the event ring (default 4096). *)

val chrome_trace : t -> Json.t
(** {!Export.chrome_trace} over this sink's spans and trace ring. *)
