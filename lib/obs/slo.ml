(* Worst-case & SLO analysis. Pure functions of spans/causal/counters —
   no wall clock, no randomness — so summaries are byte-stable and can be
   CI-gated (diff) and compared across --jobs levels (R4's digest). *)

type phase = { ph_label : string; ph_ns : int }

type kind_summary = {
  ks_kind : string;
  ks_roots : int;
  ks_mean_ns : int;
  ks_p99_ns : int;
  ks_worst_ns : int;
  ks_worst_sid : int;
  ks_worst_run : int;
  ks_worst_kernel : int;
  ks_phases : phase list;
}

type counters = {
  met : int;
  violations : int;
  dispatch_met : int;
  dispatch_violations : int;
}

let no_counters =
  { met = 0; violations = 0; dispatch_met = 0; dispatch_violations = 0 }

let counters_of_registry m =
  {
    met = Metrics.counter m "slo.met";
    violations = Metrics.counter m "slo.violations";
    dispatch_met = Metrics.counter m "slo.dispatch.met";
    dispatch_violations = Metrics.counter m "slo.dispatch.violations";
  }

(* --- tolerant Json accessors (wrong shapes read as absent/zero) --- *)

let field k = function Json.Obj fs -> List.assoc_opt k fs | _ -> None

let str_field k j =
  match field k j with Some (Json.Str s) -> Some s | _ -> None

let int_field k j =
  match field k j with
  | Some (Json.Int i) -> Some i
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let arr_field k j = match field k j with Some (Json.Arr l) -> l | _ -> []

let counters_of_json metrics_json =
  let sum name =
    List.fold_left
      (fun acc row ->
        match (str_field "name" row, int_field "value" row) with
        | Some n, Some v when n = name -> acc + v
        | _ -> acc)
      0
      (arr_field "counters" metrics_json)
  in
  {
    met = sum "slo.met";
    violations = sum "slo.violations";
    dispatch_met = sum "slo.dispatch.met";
    dispatch_violations = sum "slo.dispatch.violations";
  }

type t = { kinds : kind_summary list; counters : counters }

let kinds_analyzed = [ "migration"; "thread_group_create" ]

(* Exact p-th percentile over the full latency list (nearest-rank, the
   same convention as Stats.Histogram.percentile but with no bucket
   error: we have every sample). *)
let exact_percentile sorted p =
  match Array.length sorted with
  | 0 -> 0
  | n ->
      let target =
        Stdlib.max 1
          (int_of_float (Float.round (p /. 100. *. float_of_int n)))
      in
      sorted.(Stdlib.min (n - 1) (target - 1))

(* Phase label of one critical-path segment: the span kind for span
   segments ("context_capture@k3" -> "context_capture"), "wire" for
   in-flight time. *)
let seg_phase (s : Critpath.seg) =
  if s.Critpath.on_wire then "wire"
  else
    match String.index_opt s.Critpath.label '@' with
    | Some i -> String.sub s.Critpath.label 0 i
    | None -> s.Critpath.label

let phases_of_path (p : Critpath.path) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Critpath.seg) ->
      let label = seg_phase s in
      let ns = s.Critpath.seg_stop - s.Critpath.seg_start in
      Hashtbl.replace tbl label
        (ns + Option.value (Hashtbl.find_opt tbl label) ~default:0))
    p.Critpath.segs;
  Hashtbl.fold (fun ph_label ph_ns acc -> { ph_label; ph_ns } :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.ph_ns a.ph_ns with
         | 0 -> compare a.ph_label b.ph_label
         | c -> c)

let summarize_kind ~spans ~causal ~kind =
  match Critpath.roots ~spans ~kind with
  | [] -> None
  | roots ->
      let paths =
        List.map
          (fun root -> Critpath.critical_path ~spans ~causal ~root)
          roots
      in
      let worst =
        List.fold_left
          (fun (best : Critpath.path) (p : Critpath.path) ->
            if p.Critpath.total_ns > best.Critpath.total_ns then p else best)
          (List.hd paths) (List.tl paths)
      in
      let totals =
        Array.of_list
          (List.map (fun (p : Critpath.path) -> p.Critpath.total_ns) paths)
      in
      let n = Array.length totals in
      let sum = Array.fold_left ( + ) 0 totals in
      Array.sort compare totals;
      Some
        {
          ks_kind = kind;
          ks_roots = n;
          ks_mean_ns = sum / n;
          ks_p99_ns = exact_percentile totals 99.;
          ks_worst_ns = worst.Critpath.total_ns;
          ks_worst_sid = worst.Critpath.root.Critpath.sid;
          ks_worst_run = worst.Critpath.root.Critpath.run;
          ks_worst_kernel = worst.Critpath.root.Critpath.kernel;
          ks_phases = phases_of_path worst;
        }

let summarize ?(counters = no_counters) ~spans ~causal () =
  {
    kinds =
      List.filter_map
        (fun kind -> summarize_kind ~spans ~causal ~kind)
        kinds_analyzed;
    counters;
  }

let record t m =
  List.iter
    (fun ks ->
      Metrics.set_gauge m
        (Printf.sprintf "slo.%s.worst_case_ns" ks.ks_kind)
        (float_of_int ks.ks_worst_ns);
      Metrics.set_gauge m
        (Printf.sprintf "slo.%s.mean_ns" ks.ks_kind)
        (float_of_int ks.ks_mean_ns))
    t.kinds

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "popcornsim-slo-v1");
      ( "counters",
        Json.Obj
          [
            ("met", Json.Int t.counters.met);
            ("violations", Json.Int t.counters.violations);
            ("dispatch_met", Json.Int t.counters.dispatch_met);
            ("dispatch_violations", Json.Int t.counters.dispatch_violations);
          ] );
      ( "kinds",
        Json.Arr
          (List.map
             (fun ks ->
               Json.Obj
                 [
                   ("kind", Json.Str ks.ks_kind);
                   ("roots", Json.Int ks.ks_roots);
                   ("mean_ns", Json.Int ks.ks_mean_ns);
                   ("p99_ns", Json.Int ks.ks_p99_ns);
                   ("worst_ns", Json.Int ks.ks_worst_ns);
                   ("worst_sid", Json.Int ks.ks_worst_sid);
                   ("worst_run", Json.Int ks.ks_worst_run);
                   ("worst_kernel", Json.Int ks.ks_worst_kernel);
                   ( "phases",
                     Json.Arr
                       (List.map
                          (fun p ->
                            Json.Obj
                              [
                                ("label", Json.Str p.ph_label);
                                ("ns", Json.Int p.ph_ns);
                              ])
                          ks.ks_phases) );
                 ])
             t.kinds) );
    ]

let of_json j =
  match str_field "schema" j with
  | Some "popcornsim-slo-v1" ->
      let counters =
        match field "counters" j with
        | Some c ->
            let i k = Option.value (int_field k c) ~default:0 in
            {
              met = i "met";
              violations = i "violations";
              dispatch_met = i "dispatch_met";
              dispatch_violations = i "dispatch_violations";
            }
        | None -> no_counters
      in
      let kinds =
        List.filter_map
          (fun k ->
            match (str_field "kind" k, int_field "worst_ns" k) with
            | Some ks_kind, Some ks_worst_ns ->
                let i name = Option.value (int_field name k) ~default:0 in
                Some
                  {
                    ks_kind;
                    ks_roots = i "roots";
                    ks_mean_ns = i "mean_ns";
                    ks_p99_ns = i "p99_ns";
                    ks_worst_ns;
                    ks_worst_sid = i "worst_sid";
                    ks_worst_run = i "worst_run";
                    ks_worst_kernel = i "worst_kernel";
                    ks_phases =
                      List.filter_map
                        (fun p ->
                          match (str_field "label" p, int_field "ns" p) with
                          | Some ph_label, Some ph_ns ->
                              Some { ph_label; ph_ns }
                          | _ -> None)
                        (arr_field "phases" k);
                  }
            | _ -> None)
          (arr_field "kinds" j)
      in
      Some { kinds; counters }
  | _ -> None

let buf_addf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let render t =
  let b = Buffer.create 1024 in
  buf_addf b "  worst-case & SLO:\n";
  buf_addf b "    %-22s %6s %12s %12s %12s\n" "kind" "roots" "mean" "p99"
    "worst";
  List.iter
    (fun ks ->
      buf_addf b "    %-22s %6d %9d ns %9d ns %9d ns  (span %d, run %d, k%d)\n"
        ks.ks_kind ks.ks_roots ks.ks_mean_ns ks.ks_p99_ns ks.ks_worst_ns
        ks.ks_worst_sid ks.ks_worst_run ks.ks_worst_kernel;
      buf_addf b "      worst-case budget:";
      List.iteri
        (fun i p ->
          buf_addf b "%s %s %d ns (%.1f%%)"
            (if i = 0 then "" else ",")
            p.ph_label p.ph_ns
            (100. *. float_of_int p.ph_ns
            /. float_of_int (Stdlib.max 1 ks.ks_worst_ns)))
        ks.ks_phases;
      Buffer.add_char b '\n')
    t.kinds;
  let c = t.counters in
  if c.met + c.violations + c.dispatch_met + c.dispatch_violations > 0 then
    buf_addf b
      "    deadlines: migrations %d met / %d violated; dispatches %d met / \
       %d violated\n"
      c.met c.violations c.dispatch_met c.dispatch_violations;
  Buffer.contents b
