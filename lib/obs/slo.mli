(** Worst-case latency and SLO accounting over the critical-path DAG.

    The rest of the observability stack reports {e distributions}
    (p50/p99/p999/max of metric histograms). This module graduates it
    into a {e bound}: for each protocol root kind (migrations, remote
    thread creations) it computes the worst-case end-to-end latency of a
    run from the same happens-before DAG {!Critpath} builds — not a
    percentile estimate but the exact slowest root — together with the
    per-phase partition of that worst path (where the budget went), and
    folds in the deadline counters the protocol layer records when
    migrations or placement dispatches carry deadlines
    ([slo.met] / [slo.violations] / [slo.dispatch.*]).

    Everything here is a pure function of spans + causal events +
    counters, so summaries are deterministic and byte-stable across
    runs — which is what lets `popcornsim diff` gate on them in CI and
    the R4 experiment assert bit-identity under [--jobs 4]. *)

type phase = {
  ph_label : string;
      (** span kind of the segment owner ("context_capture", "transfer",
          "import", …), or ["wire"] for in-flight message time. *)
  ph_ns : int;
}
(** One phase's share of the worst root's critical path. *)

type kind_summary = {
  ks_kind : string;  (** {!Span.kind_name} of the root ("migration", …). *)
  ks_roots : int;
  ks_mean_ns : int;
  ks_p99_ns : int;
      (** exact 99th percentile over the root latencies (no bucket error:
          computed from the full sorted list, not a histogram). *)
  ks_worst_ns : int;  (** the slowest root's end-to-end latency. *)
  ks_worst_sid : int;
  ks_worst_run : int;
  ks_worst_kernel : int;
  ks_phases : phase list;
      (** critical-path partition of the worst root, merged by phase
          label, descending time; durations sum exactly to
          [ks_worst_ns]. *)
}

(** Deadline accounting counters, as recorded by the protocol layer. *)
type counters = {
  met : int;  (** migrations that met their deadline. *)
  violations : int;  (** migrations that missed (or failed outright). *)
  dispatch_met : int;  (** placement dispatches within deadline. *)
  dispatch_violations : int;
}

val no_counters : counters

val counters_of_registry : Metrics.t -> counters
(** Read the [slo.met] / [slo.violations] / [slo.dispatch.met] /
    [slo.dispatch.violations] counters (global scope). *)

val counters_of_json : Json.t -> counters
(** Same, from an exported "metrics" section (sums kernel scopes);
    tolerant — missing pieces read as zero. *)

type t = { kinds : kind_summary list; counters : counters }

val kinds_analyzed : string list
(** Root kinds summarized, in report order (migration first). *)

val summarize :
  ?counters:counters ->
  spans:Critpath.ispan list ->
  causal:Causal.event list ->
  unit ->
  t
(** Analyze one run's spans. Kinds with no roots are omitted. *)

val record : t -> Metrics.t -> unit
(** Write [slo.<kind>.worst_case_ns] and [slo.<kind>.mean_ns] gauges for
    every summarized kind into a registry, so exported metrics (and the
    committed CI baseline) carry the bound and `popcornsim diff`'s
    time-metric rule gates regressions of the worst case itself. *)

val to_json : t -> Json.t
(** The [popcornsim-slo-v1] section of a results document. *)

val of_json : Json.t -> t option
(** Tolerant inverse of {!to_json}; [None] if the schema tag is absent. *)

val render : t -> string
(** The "worst-case & SLO" report block of [popcornsim analyze]:
    per-kind roots/mean/p99/worst rows, the worst path's phase budget,
    and the deadline counters when any deadline was carried. *)
