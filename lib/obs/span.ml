type kind =
  | Migration
  | Context_capture
  | Transfer
  | Import
  | Resume
  | Thread_group_create
  | Page_fault
  | Futex
  | Custom of string

let kind_name = function
  | Migration -> "migration"
  | Context_capture -> "context_capture"
  | Transfer -> "transfer"
  | Import -> "import"
  | Resume -> "resume"
  | Thread_group_create -> "thread_group_create"
  | Page_fault -> "page_fault"
  | Futex -> "futex"
  | Custom s -> s

type span = {
  id : int;
  parent : int option;
  kind : kind;
  kernel : int;
  tid : int option;
  run : int;
  start : Sim.Time.t;
  mutable stop : Sim.Time.t; (* -1 while open *)
}

type t = {
  mutable next_id : int;
  mutable run : int; (* bumped per machine boot so tracks don't collide *)
  mutable acc : span list; (* newest first; [spans] reverses *)
}

let create () = { next_id = 0; run = -1; acc = [] }
let new_run t = t.run <- t.run + 1

let start t ?parent ?tid ~kernel ~at kind =
  let s =
    {
      id = t.next_id;
      parent;
      kind;
      kernel;
      tid;
      run = Stdlib.max 0 t.run;
      start = at;
      stop = -1;
    }
  in
  t.next_id <- t.next_id + 1;
  t.acc <- s :: t.acc;
  s

let finish s ~at = s.stop <- at
let spans t = List.rev t.acc
