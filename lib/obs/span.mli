(** Typed spans over simulated time for the migration protocol and friends.

    A recorder accumulates closed intervals ([start ..stop] in simulated
    nanoseconds) tagged with a protocol phase, the kernel they ran on and an
    optional thread id. Spans may nest via [?parent], which the Chrome-trace
    exporter preserves as stack depth. Recording never sleeps and never
    touches the engine RNG, so an instrumented run is bit-identical in
    simulated time to an uninstrumented one. *)

type kind =
  | Migration  (** whole [Api.migrate] round trip, recorded at the source *)
  | Context_capture  (** saving registers + FPU state before transfer *)
  | Transfer  (** RPC to the destination kernel, including retries *)
  | Import  (** destination-side address-space consistency import *)
  | Resume  (** destination scheduling the thread back in *)
  | Thread_group_create
  | Page_fault
  | Futex
  | Custom of string

val kind_name : kind -> string

type span = private {
  id : int;
  parent : int option;
  kind : kind;
  kernel : int;
  tid : int option;
  run : int;  (** which machine boot this span belongs to *)
  start : Sim.Time.t;
  mutable stop : Sim.Time.t;  (** -1 while the span is still open *)
}

type t

val create : unit -> t

val new_run : t -> unit
(** Call once per machine/cluster boot sharing this recorder; spans from
    different runs export to different Chrome-trace process tracks. *)

val start :
  t -> ?parent:int -> ?tid:int -> kernel:int -> at:Sim.Time.t -> kind -> span
(** Open a span at simulated time [at]. [?parent] is the id of an enclosing
    span. *)

val finish : span -> at:Sim.Time.t -> unit

val spans : t -> span list
(** All spans in creation order. *)
