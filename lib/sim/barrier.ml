type t = {
  eng : Engine.t;
  parties : int;
  mutable arrived : int;
  mutable rounds : int;
  waiters : unit Waitq.t;
}

let create eng ~parties =
  assert (parties >= 1);
  { eng; parties; arrived = 0; rounds = 0; waiters = Waitq.create ~eng () }

let wait t =
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    (* Last arrival: open the barrier and reset for the next round. *)
    t.arrived <- 0;
    t.rounds <- t.rounds + 1;
    ignore (Waitq.wake_all t.waiters ());
    `Leader
  end
  else begin
    Waitq.wait t.eng t.waiters;
    `Follower
  end

let parties t = t.parties
let waiting t = Waitq.length t.waiters
let rounds t = t.rounds
