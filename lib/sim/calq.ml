(* Calendar queue: a bucketed event scheduler with O(1) amortized push and
   pop for events landing inside the current time window, falling back to
   binary heaps for the fully-ordered near band ([front]) and for far-future
   timers ([far]).

   Invariant map of the timeline, left to right:

     [front]           [buckets cur..nbuckets-1]          [far]
     all at < front_end | width-sized unsorted bins      | at >= horizon
     (fully ordered)    | covering [front_end, horizon)  | (heap-ordered)

   Every event keeps its original [(at, seq)] key; moving a bucket's
   unsorted cells into the [front] heap restores the exact total order, so
   the pop sequence is bit-identical to a single binary heap. *)

type 'a cell = { at : Time.t; seq : int; v : 'a }

let nbuckets = 256

type 'a t = {
  front : 'a Eheap.t;  (** ordered band: every queued at < [front_end] *)
  far : 'a Eheap.t;  (** overflow band: every queued at >= [horizon] *)
  buckets : 'a cell list array;  (** unsorted bins, index [cur..nbuckets-1] *)
  mutable t0 : Time.t;  (** window origin: bucket [i] covers
                            [t0 + i*width, t0 + (i+1)*width) *)
  mutable width : Time.t;  (** bucket span, >= 1 *)
  mutable cur : int;  (** first bucket not yet drained into [front] *)
  mutable front_end : Time.t;  (** exclusive upper bound of the [front] band *)
  mutable horizon : Time.t;  (** exclusive upper bound of the bucket window *)
  mutable far_max : Time.t;  (** largest at ever routed to [far]; sizes the
                                 next window's width *)
  mutable n : int;
  mutable max_n : int;
}

let create ?dummy () =
  {
    front = Eheap.create ?dummy ();
    far = Eheap.create ?dummy ();
    buckets = Array.make nbuckets [];
    t0 = 0;
    width = 1;
    cur = nbuckets;
    (* Empty window: nothing is below [front_end] or [horizon], so the
       first pushes all land in [far] and the first pop triggers a
       rewindow sized from real data. *)
    front_end = 0;
    horizon = 0;
    far_max = 0;
    n = 0;
    max_n = 0;
  }

let push t ~at ~seq v =
  t.n <- t.n + 1;
  if t.n > t.max_n then t.max_n <- t.n;
  if at < t.front_end then Eheap.push t.front ~at ~seq v
  else if at < t.horizon then begin
    let idx = (at - t.t0) / t.width in
    if idx >= nbuckets then begin
      (* Only reachable when [horizon] was clamped at the int ceiling. *)
      if at > t.far_max then t.far_max <- at;
      Eheap.push t.far ~at ~seq v
    end
    else t.buckets.(idx) <- { at; seq; v } :: t.buckets.(idx)
  end
  else begin
    if at > t.far_max then t.far_max <- at;
    Eheap.push t.far ~at ~seq v
  end

(* Recenter the bucket window on the earliest far-future event and spread
   it toward [far_max], then pull everything below the new horizon out of
   [far] into the bins. Runs only when front and all buckets are empty. *)
let rewindow t =
  let t0 = Eheap.next_at t.far in
  let spread = t.far_max - t0 in
  let width = max 1 ((spread + nbuckets - 1) / nbuckets) in
  t.t0 <- t0;
  t.width <- width;
  t.cur <- 0;
  t.front_end <- t0;
  t.horizon <-
    (if width > (max_int - t0) / nbuckets then max_int
     else t0 + (nbuckets * width));
  (* [horizon] is exclusive, so an event at exactly [max_int] can never be
     below it once the window is clamped at the int ceiling — admit it here
     anyway (into the last bucket) or the window could never advance past
     it and [ensure_front] would rewindow forever. *)
  while
    (not (Eheap.is_empty t.far))
    &&
    let at = Eheap.next_at t.far in
    at < t.horizon || (at = max_int && t.horizon = max_int)
  do
    match Eheap.pop t.far with
    | Some (at, seq, v) ->
        let idx = min ((at - t.t0) / t.width) (nbuckets - 1) in
        t.buckets.(idx) <- { at; seq; v } :: t.buckets.(idx)
    | None -> assert false
  done;
  (* Fully drained: forget the old spread so the next window adapts to
     whatever is pushed from here on instead of an old far-future outlier. *)
  if Eheap.is_empty t.far then t.far_max <- t.t0

(* Make [front] hold the globally earliest event (if any exist): advance
   [cur] past empty bins, drain the first occupied bin into [front], and
   when the window is exhausted rebuild it from [far]. *)
let rec ensure_front t =
  if Eheap.is_empty t.front then begin
    let i = ref t.cur in
    while !i < nbuckets && t.buckets.(!i) == [] do incr i done;
    if !i < nbuckets then begin
      let cells = t.buckets.(!i) in
      t.buckets.(!i) <- [];
      t.cur <- !i + 1;
      t.front_end <-
        (if t.cur = nbuckets then t.horizon else t.t0 + (t.cur * t.width));
      List.iter
        (fun { at; seq; v } -> Eheap.push t.front ~at ~seq v)
        cells
    end
    else begin
      t.cur <- nbuckets;
      t.front_end <- t.horizon;
      if not (Eheap.is_empty t.far) then begin
        rewindow t;
        ensure_front t
      end
    end
  end

let next_at t =
  ensure_front t;
  Eheap.next_at t.front

let peek_time t =
  ensure_front t;
  Eheap.peek_time t.front

let pop_exn t =
  ensure_front t;
  let v = Eheap.pop_exn t.front in
  t.n <- t.n - 1;
  v

let pop t =
  ensure_front t;
  match Eheap.pop t.front with
  | None -> None
  | Some _ as s ->
      t.n <- t.n - 1;
      s

let size t = t.n
let length = size
let max_length t = t.max_n
let is_empty t = t.n = 0
