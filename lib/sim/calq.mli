(** Calendar-queue event scheduler.

    Same contract as {!Eheap} — a priority queue of events totally ordered
    by [(at, seq)] — but with O(1) amortized push/pop for events inside the
    current time window. Events are binned into fixed-width buckets; the
    bucket being consumed is drained into a small binary heap (restoring
    exact order), and far-future events overflow into a fallback heap until
    the window is rebuilt around them. The pop sequence is bit-identical to
    {!Eheap} for any push sequence. *)

type 'a t

val create : ?dummy:'a -> unit -> 'a t
(** [dummy] plays the same retention-hygiene role as in {!Eheap.create}:
    both internal heaps overwrite vacated slots with it. *)

val push : 'a t -> at:Time.t -> seq:int -> 'a -> unit
val pop : 'a t -> (Time.t * int * 'a) option
val pop_exn : 'a t -> 'a
val next_at : 'a t -> Time.t
val peek_time : 'a t -> Time.t option
val size : 'a t -> int
val length : 'a t -> int
val max_length : 'a t -> int
val is_empty : 'a t -> bool
