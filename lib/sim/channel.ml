type 'a t = {
  eng : Engine.t;
  capacity : int; (* max_int = unbounded *)
  items : 'a Queue.t;
  senders : unit Waitq.t; (* parked when full; each wake = one free slot *)
  receivers : 'a Waitq.t; (* parked when empty; direct handoff *)
  mutable reserved : int;
      (** Slots held by items a {!recv_batch} drained but whose consumer
          has not yet called {!release_slot}: they still count against
          [capacity], so batching is invisible to senders — a slot frees
          (and wakes one sender) at exactly the instant an item-at-a-time
          [recv] of that item would have freed it. *)
}

let create eng ~capacity =
  assert (capacity >= 1);
  {
    eng;
    capacity;
    items = Queue.create ();
    senders = Waitq.create ~eng ();
    receivers = Waitq.create ~eng ();
    reserved = 0;
  }

let unbounded eng =
  {
    eng;
    capacity = max_int;
    items = Queue.create ();
    senders = Waitq.create ~eng ();
    receivers = Waitq.create ~eng ();
    reserved = 0;
  }

(* Ring occupancy as senders experience it: buffered + drained-but-not-
   yet-released. *)
let occupancy t = Queue.length t.items + t.reserved

(* Buffered-item accounting feeds the engine-wide aggregate the profiler
   samples; a direct handoff to a parked receiver never buffers, so it is
   not counted. *)
let buffer t v =
  Queue.push v t.items;
  Engine.Introspect.chan_queued_add t.eng 1

let unbuffer t =
  match Queue.take_opt t.items with
  | None -> None
  | Some v ->
      Engine.Introspect.chan_queued_add t.eng (-1);
      Some v

let send t v =
  if Waitq.wake_one t.receivers v then ()
  else if occupancy t < t.capacity then buffer t v
  else begin
    (* Park until a recv frees a slot; exactly one sender is woken per
       dequeue, so the slot is reserved for us. *)
    Waitq.wait t.eng t.senders;
    buffer t v
  end

let try_send t v =
  if Waitq.wake_one t.receivers v then true
  else if occupancy t < t.capacity then begin
    buffer t v;
    true
  end
  else false

let recv t =
  match unbuffer t with
  | Some v ->
      ignore (Waitq.wake_one t.senders ());
      v
  | None -> Waitq.wait t.eng t.receivers

(* Batched receive, slot-accurate. The first item's slot frees now (wake
   probe included), exactly like [recv]; every further drained item keeps
   its slot [reserved] until the consumer calls [release_slot] at the
   moment it starts consuming that item — the same instant an
   item-at-a-time [recv] would have dequeued it. Senders therefore see an
   occupancy trajectory, park/wake timing and gauge accounting that are
   bit-identical to the unbatched loop; the batch only removes the
   per-item queue/wake round-trips from the consumer's hot path. *)
let recv_batch t =
  match unbuffer t with
  | None -> [ Waitq.wait t.eng t.receivers ]
  | Some v ->
      ignore (Waitq.wake_one t.senders ());
      let rec drain acc n =
        match Queue.take_opt t.items with
        | None ->
            t.reserved <- t.reserved + n;
            List.rev acc
        | Some v -> drain (v :: acc) (n + 1)
      in
      v :: drain [] 0

let release_slot t =
  if t.reserved <= 0 then invalid_arg "Channel.release_slot: none reserved";
  t.reserved <- t.reserved - 1;
  Engine.Introspect.chan_queued_add t.eng (-1);
  ignore (Waitq.wake_one t.senders ())

let recv_timeout t ~timeout =
  match unbuffer t with
  | Some v ->
      ignore (Waitq.wake_one t.senders ());
      Some v
  | None -> (
      match Waitq.wait_timeout t.eng t.receivers ~timeout with
      | Waitq.Signalled v -> Some v
      | Waitq.Timed_out -> None)

let try_recv t =
  match unbuffer t with
  | Some v ->
      ignore (Waitq.wake_one t.senders ());
      Some v
  | None -> None

let length t = occupancy t
let is_empty t = occupancy t = 0
