type 'a t = {
  eng : Engine.t;
  capacity : int; (* max_int = unbounded *)
  items : 'a Queue.t;
  senders : unit Waitq.t; (* parked when full; each wake = one free slot *)
  receivers : 'a Waitq.t; (* parked when empty; direct handoff *)
}

let create eng ~capacity =
  assert (capacity >= 1);
  {
    eng;
    capacity;
    items = Queue.create ();
    senders = Waitq.create ~eng ();
    receivers = Waitq.create ~eng ();
  }

let unbounded eng =
  {
    eng;
    capacity = max_int;
    items = Queue.create ();
    senders = Waitq.create ~eng ();
    receivers = Waitq.create ~eng ();
  }

(* Buffered-item accounting feeds the engine-wide aggregate the profiler
   samples; a direct handoff to a parked receiver never buffers, so it is
   not counted. *)
let buffer t v =
  Queue.push v t.items;
  Engine.Introspect.chan_queued_add t.eng 1

let unbuffer t =
  match Queue.take_opt t.items with
  | None -> None
  | Some v ->
      Engine.Introspect.chan_queued_add t.eng (-1);
      Some v

let send t v =
  if Waitq.wake_one t.receivers v then ()
  else if Queue.length t.items < t.capacity then buffer t v
  else begin
    (* Park until a recv frees a slot; exactly one sender is woken per
       dequeue, so the slot is reserved for us. *)
    Waitq.wait t.eng t.senders;
    buffer t v
  end

let try_send t v =
  if Waitq.wake_one t.receivers v then true
  else if Queue.length t.items < t.capacity then begin
    buffer t v;
    true
  end
  else false

let recv t =
  match unbuffer t with
  | Some v ->
      ignore (Waitq.wake_one t.senders ());
      v
  | None -> Waitq.wait t.eng t.receivers

let recv_timeout t ~timeout =
  match unbuffer t with
  | Some v ->
      ignore (Waitq.wake_one t.senders ());
      Some v
  | None -> (
      match Waitq.wait_timeout t.eng t.receivers ~timeout with
      | Waitq.Signalled v -> Some v
      | Waitq.Timed_out -> None)

let try_recv t =
  match unbuffer t with
  | Some v ->
      ignore (Waitq.wake_one t.senders ());
      Some v
  | None -> None

let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
