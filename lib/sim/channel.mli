(** Bounded FIFO channels between fibers, in simulated time.

    Used pervasively as mailboxes for simulated kernel worker threads. A
    channel of capacity [n] blocks senders when [n] messages are queued;
    capacity 0 is rendezvous-free here — use capacity >= 1. *)

type 'a t

val create : Engine.t -> capacity:int -> 'a t
(** [capacity >= 1]. *)

val unbounded : Engine.t -> 'a t
(** Channel that never blocks senders. *)

val send : 'a t -> 'a -> unit
(** Enqueue; parks the fiber while the channel is full. *)

val try_send : 'a t -> 'a -> bool
(** Enqueue if there is room; never blocks. *)

val recv : 'a t -> 'a
(** Dequeue; parks the fiber while the channel is empty. *)

val recv_batch : 'a t -> 'a list
(** Dequeue at least one item (parking like {!recv} while empty) plus every
    other item already buffered, in FIFO order — {e slot-accurate}: the
    first item's slot frees immediately (as in {!recv}), while each further
    item keeps its ring slot reserved until the consumer calls
    {!release_slot} at the moment it starts consuming that item. Senders
    observe an occupancy trajectory and wake timing bit-identical to
    receiving the items one at a time. *)

val release_slot : 'a t -> unit
(** Free one slot reserved by {!recv_batch} (waking one parked sender, if
    any). Call exactly once per batch item after the first, when starting
    to consume it. Raises [Invalid_argument] when nothing is reserved. *)

val recv_timeout : 'a t -> timeout:Time.t -> 'a option
(** [None] on timeout. *)

val try_recv : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool
