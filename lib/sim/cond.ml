type t = { eng : Engine.t; waiters : unit Waitq.t }

let create eng = { eng; waiters = Waitq.create ~eng () }

let wait t m =
  Mutex.unlock m;
  Waitq.wait t.eng t.waiters;
  Mutex.lock m

let wait_timeout t m ~timeout =
  Mutex.unlock m;
  let r = Waitq.wait_timeout t.eng t.waiters ~timeout in
  Mutex.lock m;
  match r with Waitq.Signalled () -> `Signalled | Waitq.Timed_out -> `Timed_out

let signal t = ignore (Waitq.wake_one t.waiters ())
let broadcast t = Waitq.wake_all t.waiters ()
let waiters t = Waitq.length t.waiters
