type 'a cell = { at : Time.t; seq : int; v : 'a }

type 'a t = {
  mutable a : 'a cell array;
  mutable n : int;
  mutable max_n : int;
  dummy : 'a cell option;
      (** When set, [pop] overwrites the slot it vacates with this cell, so
          the heap never retains a reference to an already-executed payload
          (event closures can pin whole object graphs through their captured
          continuations). Without it, vacated slots keep their old cell. *)
}

let create ?dummy () =
  {
    a = [||];
    n = 0;
    max_n = 0;
    dummy = Option.map (fun v -> { at = 0; seq = 0; v }) dummy;
  }

let before x y = x.at < y.at || (x.at = y.at && x.seq < y.seq)

let grow t =
  let cap = Array.length t.a in
  let ncap = if cap = 0 then 16 else 2 * cap in
  (* Fresh slots are never observed ([n] bounds access); fill them with the
     dummy when there is one so they hold no live payload. *)
  let fill = match t.dummy with Some d -> d | None -> t.a.(0) in
  let a' = Array.make ncap fill in
  Array.blit t.a 0 a' 0 t.n;
  t.a <- a'

let push t ~at ~seq v =
  let c = { at; seq; v } in
  if t.n = 0 && Array.length t.a = 0 then
    t.a <- Array.make 16 (match t.dummy with Some d -> d | None -> c);
  if t.n = Array.length t.a then grow t;
  t.a.(t.n) <- c;
  t.n <- t.n + 1;
  if t.n > t.max_n then t.max_n <- t.n;
  (* sift up *)
  let i = ref (t.n - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    before t.a.(!i) t.a.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.a.(p) in
    t.a.(p) <- t.a.(!i);
    t.a.(!i) <- tmp;
    i := p
  done

(* Raw pop: removes the root and returns only its payload. The engine's
   dispatch loop pairs this with [next_at], so the hot path allocates
   nothing (no [Some], no tuple); [pop] below wraps it for callers that
   want the key too. *)
let pop_exn t =
  if t.n = 0 then invalid_arg "Eheap.pop_exn: empty";
  let root = t.a.(0) in
  t.n <- t.n - 1;
  (match t.dummy with
  | Some d ->
      let last = t.a.(t.n) in
      t.a.(t.n) <- d;
      if t.n > 0 then t.a.(0) <- last
  | None -> if t.n > 0 then t.a.(0) <- t.a.(t.n));
  if t.n > 0 then begin
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.n && before t.a.(l) t.a.(!smallest) then smallest := l;
      if r < t.n && before t.a.(r) t.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.a.(!smallest) in
        t.a.(!smallest) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := !smallest
      end
    done
  end;
  root.v

let pop t =
  if t.n = 0 then None
  else begin
    let root = t.a.(0) in
    let at = root.at and seq = root.seq in
    let v = pop_exn t in
    Some (at, seq, v)
  end

let next_at t = if t.n = 0 then -1 else t.a.(0).at
let peek_time t = if t.n = 0 then None else Some t.a.(0).at
let size t = t.n
let length = size
let max_length t = t.max_n
let is_empty t = t.n = 0
