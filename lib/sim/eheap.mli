(** Binary min-heap of scheduled events, keyed by (time, sequence).

    The sequence number makes ordering total and stable: two events scheduled
    for the same instant fire in scheduling order, which keeps simulations
    deterministic. *)

type 'a t

val create : ?dummy:'a -> unit -> 'a t
(** [dummy], when given, is used to overwrite heap slots as they are
    vacated, so the heap never retains a reference to a payload it already
    popped. Engine event closures capture fiber continuations — without a
    dummy, a drained heap can pin the entire object graph of the last
    events it executed. *)

val push : 'a t -> at:Time.t -> seq:int -> 'a -> unit

val pop : 'a t -> (Time.t * int * 'a) option
(** Remove and return the earliest event, or [None] when empty. *)

val pop_exn : 'a t -> 'a
(** Remove the earliest event and return only its payload. Raises
    [Invalid_argument] when empty. Allocation-free: the dispatch hot path
    pairs this with {!next_at} instead of paying [pop]'s option + tuple. *)

val next_at : 'a t -> Time.t
(** Timestamp of the earliest event, or [-1] when empty (timestamps are
    non-negative). The allocation-free counterpart of {!peek_time}. *)

val peek_time : 'a t -> Time.t option

val size : 'a t -> int

val length : 'a t -> int
(** Synonym for {!size}: events currently queued. *)

val max_length : 'a t -> int
(** High-water mark of {!length} over the heap's lifetime. *)

val is_empty : 'a t -> bool
