(* Each queued event carries an interned label: the id of its fiber's
   ([as_fiber] name, subsystem tag) pair in this engine's label table.
   Labels cost one int per scheduled event and never influence ordering, so
   simulated behaviour is identical whether or not anyone reads them — they
   exist for the profiling observer below. Interning happens once per
   distinct (name, tag) at spawn time; the hot paths (every Sleep/Suspend
   reschedule, every observer callback) only ever touch the int. *)

type label = int

type event = { ev_label : label; ev_run : unit -> unit }

(** Host-side hooks invoked around event execution; see the .mli. *)
type observer = {
  on_run_start : now:Time.t -> unit;
  on_event : label:label -> now:Time.t -> unit;
  on_event_done : unit -> unit;
  on_run_stop : now:Time.t -> unit;
}

type t = {
  mutable now : Time.t;
  queue : event Evq.t;
  mutable seq : int;
  seed : int;
  rng : Prng.t;
  mutable processed : int;
  mutable tracer : (Time.t -> string -> unit) option;
  mutable observer : observer option;
  (* Label interner: ids are dense, per-engine, minted at spawn/schedule
     time; the reverse arrays resolve them for error messages and
     profiling reports. *)
  labels : (string * string option, label) Hashtbl.t;
  mutable label_names : string array;
  mutable label_tags : string option array;
  mutable nlabels : int;
  (* Scheduler introspection, maintained unconditionally (plain integer
     arithmetic in simulated-deterministic order, so it can never perturb a
     run): fiber park/resume totals, aggregate dead wait-queue entries and
     aggregate buffered channel items across this engine's primitives. *)
  mutable parks : int;
  mutable resumes : int;
  mutable waitq_dead : int;
  mutable waitq_dead_max : int;
  mutable chan_queued : int;
  mutable chan_queued_max : int;
}

exception Fiber_failure of string * exn

type _ Effect.t +=
  | Sleep : t * Time.t -> unit Effect.t
  | Suspend : t * (('a -> unit) -> unit) -> 'a Effect.t

let create ?(seed = 42) ?(evq = Evq.Heap) () =
  {
    now = Time.zero;
    (* The dummy lets the queue clear vacated slots: an executed event's
       closure captures its continuation, which can pin the whole object
       graph the fiber touches (machine, cluster) long after it ran. *)
    queue = Evq.create ~dummy:{ ev_label = 0; ev_run = ignore } evq;
    seq = 0;
    seed;
    rng = Prng.create ~seed;
    processed = 0;
    tracer = None;
    observer = None;
    labels = Hashtbl.create 64;
    label_names = [||];
    label_tags = [||];
    nlabels = 0;
    parks = 0;
    resumes = 0;
    waitq_dead = 0;
    waitq_dead_max = 0;
    chan_queued = 0;
    chan_queued_max = 0;
  }

let now t = t.now
let rng t = t.rng
let seed t = t.seed
let evq_impl t = Evq.impl t.queue
let events_processed t = t.processed
let queue_length t = Evq.length t.queue
let queue_max_length t = Evq.max_length t.queue
let parks t = t.parks
let resumes t = t.resumes
let waitq_dead t = t.waitq_dead
let waitq_dead_max t = t.waitq_dead_max
let chan_queued t = t.chan_queued
let chan_queued_max t = t.chan_queued_max

let label t ?tag name =
  let key = (name, tag) in
  match Hashtbl.find_opt t.labels key with
  | Some id -> id
  | None ->
      let id = t.nlabels in
      if id = Array.length t.label_names then begin
        let ncap = max 16 (2 * id) in
        let names' = Array.make ncap "" in
        Array.blit t.label_names 0 names' 0 id;
        t.label_names <- names';
        let tags' = Array.make ncap None in
        Array.blit t.label_tags 0 tags' 0 id;
        t.label_tags <- tags'
      end;
      t.label_names.(id) <- name;
      t.label_tags.(id) <- tag;
      t.nlabels <- id + 1;
      Hashtbl.add t.labels key id;
      id

let label_name t id = t.label_names.(id)
let label_tag t id = t.label_tags.(id)
let label_count t = t.nlabels

module Introspect = struct
  let waitq_dead_add t n =
    t.waitq_dead <- t.waitq_dead + n;
    if t.waitq_dead > t.waitq_dead_max then t.waitq_dead_max <- t.waitq_dead

  let chan_queued_add t n =
    t.chan_queued <- t.chan_queued + n;
    if t.chan_queued > t.chan_queued_max then
      t.chan_queued_max <- t.chan_queued
end

let push_event t ~after ~label run =
  assert (after >= 0);
  let seq = t.seq in
  t.seq <- seq + 1;
  Evq.push t.queue
    ~at:(Time.add t.now after)
    ~seq
    { ev_label = label; ev_run = run }

(* Wrap a thunk in the effect handler that turns Sleep/Suspend into engine
   events. The continuation keeps the handler, so a fiber only needs wrapping
   once, at its entry point; continuation events inherit the fiber's label,
   which is what lets the profiler attribute every host nanosecond of a
   fiber's life to its name, not just its first slice. *)
let as_fiber t lbl f =
  let open Effect.Deep in
  fun () ->
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> raise (Fiber_failure (label_name t lbl, e)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sleep (eng, dt) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    push_event eng ~after:dt ~label:lbl (fun () ->
                        continue k ()))
            | Suspend (eng, register) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    eng.parks <- eng.parks + 1;
                    let fired = ref false in
                    register (fun v ->
                        if not !fired then begin
                          fired := true;
                          eng.resumes <- eng.resumes + 1;
                          push_event eng ~after:0 ~label:lbl (fun () ->
                              continue k v)
                        end))
            | _ -> None);
      }

let schedule_label t lbl ~after f = push_event t ~after ~label:lbl (as_fiber t lbl f)
let spawn_label t lbl f = push_event t ~after:0 ~label:lbl (as_fiber t lbl f)

let schedule t ?(name = "callback") ?tag ~after f =
  schedule_label t (label t ?tag name) ~after f

let spawn t ?(name = "fiber") ?tag f = spawn_label t (label t ?tag name) f

let set_observer t ob = t.observer <- ob

let run ?until t =
  (match t.observer with
  | None -> ()
  | Some ob -> ob.on_run_start ~now:t.now);
  let limit = match until with Some l -> l | None -> max_int in
  let continue = ref true in
  while !continue do
    let at = Evq.next_at t.queue in
    if at < 0 then continue := false
    else if at > limit then begin
      t.now <- limit;
      continue := false
    end
    else begin
      t.now <- at;
      (* Drain the whole same-instant cohort in one dispatch iteration:
         every queued event with this timestamp, including ones pushed by
         the cohort itself (a resume at [now] lands here with a larger
         seq, exactly where the one-event-per-iteration loop would run
         it). Order is identical; the queue is consulted once per event
         instead of twice (peek + pop), and nothing is allocated. *)
      match t.observer with
      | None ->
          while Evq.next_at t.queue = at do
            let ev = Evq.pop_exn t.queue in
            t.processed <- t.processed + 1;
            ev.ev_run ()
          done
      | Some ob ->
          while Evq.next_at t.queue = at do
            let ev = Evq.pop_exn t.queue in
            t.processed <- t.processed + 1;
            ob.on_event ~label:ev.ev_label ~now:at;
            ev.ev_run ();
            ob.on_event_done ()
          done
    end
  done;
  match t.observer with
  | None -> ()
  | Some ob -> ob.on_run_stop ~now:t.now

let sleep t dt = if dt <= 0 then () else Effect.perform (Sleep (t, dt))
let yield t = Effect.perform (Sleep (t, 0))
let suspend t register = Effect.perform (Suspend (t, register))

let set_trace t sink = t.tracer <- sink

let trace t msg =
  match t.tracer with None -> () | Some sink -> sink t.now (msg ())
