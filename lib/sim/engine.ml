type t = {
  mutable now : Time.t;
  queue : (unit -> unit) Eheap.t;
  mutable seq : int;
  seed : int;
  rng : Prng.t;
  mutable processed : int;
  mutable tracer : (Time.t -> string -> unit) option;
}

exception Fiber_failure of string * exn

type _ Effect.t +=
  | Sleep : t * Time.t -> unit Effect.t
  | Suspend : t * (('a -> unit) -> unit) -> 'a Effect.t

let create ?(seed = 42) () =
  {
    now = Time.zero;
    queue = Eheap.create ();
    seq = 0;
    seed;
    rng = Prng.create ~seed;
    processed = 0;
    tracer = None;
  }

let now t = t.now
let rng t = t.rng
let seed t = t.seed
let events_processed t = t.processed

let push t ~after run =
  assert (after >= 0);
  let seq = t.seq in
  t.seq <- seq + 1;
  Eheap.push t.queue ~at:(Time.add t.now after) ~seq run

(* Wrap a thunk in the effect handler that turns Sleep/Suspend into engine
   events. The continuation keeps the handler, so a fiber only needs wrapping
   once, at its entry point. *)
let as_fiber name f =
  let open Effect.Deep in
  fun () ->
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> raise (Fiber_failure (name, e)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sleep (eng, dt) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    push eng ~after:dt (fun () -> continue k ()))
            | Suspend (eng, register) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    let fired = ref false in
                    register (fun v ->
                        if not !fired then begin
                          fired := true;
                          push eng ~after:0 (fun () -> continue k v)
                        end))
            | _ -> None);
      }

let schedule t ~after f = push t ~after (as_fiber "callback" f)

let spawn t ?(name = "fiber") f = push t ~after:0 (as_fiber name f)

let run ?until t =
  let continue = ref true in
  while !continue do
    match Eheap.peek_time t.queue with
    | None -> continue := false
    | Some at -> (
        match until with
        | Some limit when at > limit ->
            t.now <- limit;
            continue := false
        | _ ->
            let _, _, run =
              match Eheap.pop t.queue with
              | Some e -> e
              | None -> assert false
            in
            t.now <- at;
            t.processed <- t.processed + 1;
            run ())
  done

let sleep t dt = if dt <= 0 then () else Effect.perform (Sleep (t, dt))
let yield t = Effect.perform (Sleep (t, 0))
let suspend t register = Effect.perform (Suspend (t, register))

let set_trace t sink = t.tracer <- sink

let trace t msg =
  match t.tracer with None -> () | Some sink -> sink t.now (msg ())
