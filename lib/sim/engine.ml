(* Each queued event carries the label of the fiber it belongs to: the
   [as_fiber] name plus an optional subsystem tag from the spawn site.
   Labels cost one small record per scheduled event and never influence
   ordering, so simulated behaviour is identical whether or not anyone
   reads them — they exist for the profiling observer below. *)
type event = { ev_name : string; ev_tag : string option; ev_run : unit -> unit }

(** Host-side hooks invoked around event execution; see the .mli. *)
type observer = {
  on_run_start : now:Time.t -> unit;
  on_event : name:string -> tag:string option -> now:Time.t -> unit;
  on_event_done : unit -> unit;
  on_run_stop : now:Time.t -> unit;
}

type t = {
  mutable now : Time.t;
  queue : event Eheap.t;
  mutable seq : int;
  seed : int;
  rng : Prng.t;
  mutable processed : int;
  mutable tracer : (Time.t -> string -> unit) option;
  mutable observer : observer option;
  (* Scheduler introspection, maintained unconditionally (plain integer
     arithmetic in simulated-deterministic order, so it can never perturb a
     run): fiber park/resume totals, aggregate dead wait-queue entries and
     aggregate buffered channel items across this engine's primitives. *)
  mutable parks : int;
  mutable resumes : int;
  mutable waitq_dead : int;
  mutable waitq_dead_max : int;
  mutable chan_queued : int;
  mutable chan_queued_max : int;
}

exception Fiber_failure of string * exn

type _ Effect.t +=
  | Sleep : t * Time.t -> unit Effect.t
  | Suspend : t * (('a -> unit) -> unit) -> 'a Effect.t

let create ?(seed = 42) () =
  {
    now = Time.zero;
    (* The dummy lets the heap clear vacated slots: an executed event's
       closure captures its continuation, which can pin the whole object
       graph the fiber touches (machine, cluster) long after it ran. *)
    queue =
      Eheap.create ~dummy:{ ev_name = ""; ev_tag = None; ev_run = ignore } ();
    seq = 0;
    seed;
    rng = Prng.create ~seed;
    processed = 0;
    tracer = None;
    observer = None;
    parks = 0;
    resumes = 0;
    waitq_dead = 0;
    waitq_dead_max = 0;
    chan_queued = 0;
    chan_queued_max = 0;
  }

let now t = t.now
let rng t = t.rng
let seed t = t.seed
let events_processed t = t.processed
let queue_length t = Eheap.length t.queue
let queue_max_length t = Eheap.max_length t.queue
let parks t = t.parks
let resumes t = t.resumes
let waitq_dead t = t.waitq_dead
let waitq_dead_max t = t.waitq_dead_max
let chan_queued t = t.chan_queued
let chan_queued_max t = t.chan_queued_max

module Introspect = struct
  let waitq_dead_add t n =
    t.waitq_dead <- t.waitq_dead + n;
    if t.waitq_dead > t.waitq_dead_max then t.waitq_dead_max <- t.waitq_dead

  let chan_queued_add t n =
    t.chan_queued <- t.chan_queued + n;
    if t.chan_queued > t.chan_queued_max then
      t.chan_queued_max <- t.chan_queued
end

let push_event t ~after ~name ~tag run =
  assert (after >= 0);
  let seq = t.seq in
  t.seq <- seq + 1;
  Eheap.push t.queue
    ~at:(Time.add t.now after)
    ~seq
    { ev_name = name; ev_tag = tag; ev_run = run }

(* Wrap a thunk in the effect handler that turns Sleep/Suspend into engine
   events. The continuation keeps the handler, so a fiber only needs wrapping
   once, at its entry point; continuation events inherit the fiber's label,
   which is what lets the profiler attribute every host nanosecond of a
   fiber's life to its name, not just its first slice. *)
let as_fiber ?tag name f =
  let open Effect.Deep in
  fun () ->
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> raise (Fiber_failure (name, e)));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sleep (eng, dt) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    push_event eng ~after:dt ~name ~tag (fun () ->
                        continue k ()))
            | Suspend (eng, register) ->
                Some
                  (fun (k : (a, _) continuation) ->
                    eng.parks <- eng.parks + 1;
                    let fired = ref false in
                    register (fun v ->
                        if not !fired then begin
                          fired := true;
                          eng.resumes <- eng.resumes + 1;
                          push_event eng ~after:0 ~name ~tag (fun () ->
                              continue k v)
                        end))
            | _ -> None);
      }

let schedule t ?(name = "callback") ?tag ~after f =
  push_event t ~after ~name ~tag (as_fiber ?tag name f)

let spawn t ?(name = "fiber") ?tag f =
  push_event t ~after:0 ~name ~tag (as_fiber ?tag name f)

let set_observer t ob = t.observer <- ob

let run ?until t =
  (match t.observer with
  | None -> ()
  | Some ob -> ob.on_run_start ~now:t.now);
  let continue = ref true in
  while !continue do
    match Eheap.peek_time t.queue with
    | None -> continue := false
    | Some at -> (
        match until with
        | Some limit when at > limit ->
            t.now <- limit;
            continue := false
        | _ ->
            let _, _, ev =
              match Eheap.pop t.queue with
              | Some e -> e
              | None -> assert false
            in
            t.now <- at;
            t.processed <- t.processed + 1;
            (match t.observer with
            | None -> ev.ev_run ()
            | Some ob ->
                ob.on_event ~name:ev.ev_name ~tag:ev.ev_tag ~now:at;
                ev.ev_run ();
                ob.on_event_done ()))
  done;
  match t.observer with
  | None -> ()
  | Some ob -> ob.on_run_stop ~now:t.now

let sleep t dt = if dt <= 0 then () else Effect.perform (Sleep (t, dt))
let yield t = Effect.perform (Sleep (t, 0))
let suspend t register = Effect.perform (Suspend (t, register))

let set_trace t sink = t.tracer <- sink

let trace t msg =
  match t.tracer with None -> () | Some sink -> sink t.now (msg ())
