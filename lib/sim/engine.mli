(** Deterministic discrete-event simulation engine with lightweight fibers.

    An engine owns a virtual clock and an event queue. Simulated activities
    are {e fibers}: ordinary OCaml functions that may call {!sleep},
    {!suspend} and the synchronisation primitives built on them. Fibers are
    implemented with effect handlers, so simulation code reads like direct
    style ("compute for 3us, then take the lock") while the engine
    single-steps events in virtual-time order.

    Determinism: given the same seed and the same program, every run produces
    the identical event interleaving. Events scheduled for the same instant
    fire in scheduling order. *)

type t

exception Fiber_failure of string * exn
(** Raised out of {!run} when a fiber terminates with an uncaught exception.
    The string is the fiber's name. *)

val create : ?seed:int -> ?evq:Evq.impl -> unit -> t
(** Fresh engine with clock at zero. [seed] (default 42) seeds {!rng}.
    [evq] (default {!Evq.Heap}) selects the event-queue implementation;
    any run is bit-identical under either choice. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Prng.t
(** The engine's deterministic random stream. *)

val seed : t -> int
(** The seed this engine was created with. Components that need their own
    independent random stream (e.g. fault injection) derive one from this
    without advancing {!rng} — which would perturb the simulation. *)

val evq_impl : t -> Evq.impl
(** Which event-queue implementation this engine runs on. *)

val events_processed : t -> int
(** Total events executed so far; a cheap progress/complexity metric. *)

(** {1 Interned labels}

    Every event is labelled with the (name, subsystem tag) of the fiber it
    belongs to, interned per engine into a dense int id. Hot paths — the
    scheduler, the profiling observer — carry only the id; the strings are
    resolved on demand. Ids are engine-local: never mix labels across
    engines. *)

type label = private int

val label : t -> ?tag:string -> string -> label
(** Intern (or look up) the id for [(name, tag)]. Call once and reuse the
    result ({!spawn_label}) when spawning the same label repeatedly. *)

val label_name : t -> label -> string
val label_tag : t -> label -> string option

val label_count : t -> int
(** Number of distinct labels interned so far. Ids are [0..count-1]. *)

(** {1 Scheduler introspection}

    All counters below are maintained unconditionally — plain integer
    updates in simulated-deterministic order, so reading (or ignoring) them
    can never change a run. *)

val queue_length : t -> int
(** Events currently in the event queue. *)

val queue_max_length : t -> int
(** High-water mark of {!queue_length} over the engine's lifetime. *)

val parks : t -> int
(** Fibers parked so far (every {!suspend}, including the ones behind the
    blocking primitives). *)

val resumes : t -> int
(** Parked fibers resumed so far; [parks t - resumes t] fibers are currently
    parked (or were abandoned without a wake-up). *)

val waitq_dead : t -> int
(** Dead (cancelled-but-not-yet-purged) entries across every {!Waitq}
    created with this engine; see {!Waitq.dead_count}. *)

val waitq_dead_max : t -> int

val chan_queued : t -> int
(** Items buffered across every {!Channel} of this engine. *)

val chan_queued_max : t -> int

(**/**)

(** Maintenance hooks for the aggregate counters above; called by [Waitq]
    and [Channel], not by simulation code. *)
module Introspect : sig
  val waitq_dead_add : t -> int -> unit
  val chan_queued_add : t -> int -> unit
end

(**/**)

(** {1 Scheduling} *)

val schedule : t -> ?name:string -> ?tag:string -> after:Time.t -> (unit -> unit) -> unit
(** Run a plain callback [after] nanoseconds from now. The callback runs
    under the fiber handler, so it may itself sleep or suspend. [name]
    (default ["callback"]) and [tag] label the event for the profiling
    observer, exactly as in {!spawn}. *)

val spawn : t -> ?name:string -> ?tag:string -> (unit -> unit) -> unit
(** Start a new fiber at the current instant. [name] (default ["fiber"])
    appears in {!Fiber_failure} and labels the fiber's events for the
    profiling observer; [tag] is an optional subsystem tag (e.g. ["msg"],
    ["popcorn"]) that groups labels in profile reports. *)

val spawn_label : t -> label -> (unit -> unit) -> unit
(** {!spawn} with a pre-interned label: the hot-path form for sites that
    start the same kind of fiber per message/request and must not rebuild
    the name string or re-hash it each time. *)

val schedule_label : t -> label -> after:Time.t -> (unit -> unit) -> unit
(** {!schedule} with a pre-interned label. *)

val run : ?until:Time.t -> t -> unit
(** Execute events until the queue is empty, or until the clock would pass
    [until]. Events sharing an instant are drained as one cohort in a
    single dispatch iteration, in exact scheduling ([seq]) order — the
    interleaving is identical to one-event-per-iteration dispatch.
    Re-raises {!Fiber_failure} if any fiber died. *)

(** {1 Fiber operations}

    These must be called from inside a fiber (i.e. from code started via
    {!spawn} or {!schedule}). *)

val sleep : t -> Time.t -> unit
(** Advance this fiber's virtual time by the given duration. *)

val yield : t -> unit
(** Re-schedule at the current instant, after already-queued events. *)

val suspend : t -> (('a -> unit) -> unit) -> 'a
(** [suspend t register] parks the fiber and calls [register resume].
    Whoever calls [resume v] (later, from any fiber or callback) reschedules
    the fiber, which then returns [v] from [suspend]. [resume] is idempotent:
    calls after the first are ignored, so racing wake-ups (e.g. a signal and
    a timeout) are safe.

    {b Contract}: [register] runs in the scheduler's context, outside any
    fiber, so it must not itself sleep or suspend — it should only record
    [resume] somewhere (a wait queue, a ticket table) and/or schedule plain
    events. Do the effectful work (sending messages, charging costs) in the
    fiber before calling [suspend]. *)

(** {1 Profiling observer} *)

(** Host-side hooks invoked by {!run} around each event execution. The
    engine calls [on_event] (with the event's interned fiber label and the
    virtual time it fires at) immediately before running the event and
    [on_event_done] immediately after; [on_run_start] / [on_run_stop]
    bracket each {!run} call so an observer can separate in-run scheduler
    time from time the host spends outside the engine entirely. Resolve
    the label with {!label_name} / {!label_tag} (cheap array reads).

    The observer runs on the host clock only: it is invoked in a fixed,
    deterministic order, is given no way to schedule events or touch the
    RNG, and the engine never inspects its behaviour — so simulated results
    are bit-identical with or without one installed. *)
type observer = {
  on_run_start : now:Time.t -> unit;
  on_event : label:label -> now:Time.t -> unit;
  on_event_done : unit -> unit;
  on_run_stop : now:Time.t -> unit;
}

val set_observer : t -> observer option -> unit
(** Install (or remove) the profiling observer. When none is installed the
    per-event cost is a single [option] check. *)

(** {1 Tracing} *)

val set_trace : t -> (Time.t -> string -> unit) option -> unit
(** Install (or remove) a trace sink. *)

val trace : t -> (unit -> string) -> unit
(** Emit a trace line; the thunk is only forced when a sink is installed. *)
