(* Pluggable event queue: the engine's scheduling structure, selectable per
   run. Both implementations share one contract — a priority queue totally
   ordered by [(at, seq)] — so any run is bit-identical under either; the
   cross-implementation equivalence test and CI gate enforce that. *)

module type S = sig
  type 'a t

  val create : ?dummy:'a -> unit -> 'a t
  val push : 'a t -> at:Time.t -> seq:int -> 'a -> unit
  val pop : 'a t -> (Time.t * int * 'a) option
  val pop_exn : 'a t -> 'a
  val next_at : 'a t -> Time.t
  val peek_time : 'a t -> Time.t option
  val length : 'a t -> int
  val max_length : 'a t -> int
  val is_empty : 'a t -> bool
end

module Heap : S = Eheap
module Calendar : S = Calq

type impl = Heap | Calendar

let all_impls = [ Heap; Calendar ]
let impl_to_string = function Heap -> "heap" | Calendar -> "calendar"

let impl_of_string s =
  match String.lowercase_ascii s with
  | "heap" | "binary" -> Some Heap
  | "calendar" | "cal" | "ladder" -> Some Calendar
  | _ -> None

type 'a t = H of 'a Eheap.t | C of 'a Calq.t

let create ?dummy impl =
  match impl with
  | Heap -> H (Eheap.create ?dummy ())
  | Calendar -> C (Calq.create ?dummy ())

let impl = function H _ -> Heap | C _ -> Calendar

let push t ~at ~seq v =
  match t with
  | H h -> Eheap.push h ~at ~seq v
  | C c -> Calq.push c ~at ~seq v

let pop = function H h -> Eheap.pop h | C c -> Calq.pop c
let pop_exn = function H h -> Eheap.pop_exn h | C c -> Calq.pop_exn c
let next_at = function H h -> Eheap.next_at h | C c -> Calq.next_at c
let peek_time = function H h -> Eheap.peek_time h | C c -> Calq.peek_time c
let length = function H h -> Eheap.length h | C c -> Calq.length c

let max_length = function
  | H h -> Eheap.max_length h
  | C c -> Calq.max_length c

let is_empty = function H h -> Eheap.is_empty h | C c -> Calq.is_empty c
