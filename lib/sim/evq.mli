(** Pluggable event-queue for the engine's scheduling hot path.

    One contract, two implementations: the classic binary heap ({!Eheap})
    and a calendar queue ({!Calq}) with O(1) amortized push/pop inside the
    active time window. Both order events totally by [(at, seq)], so a run
    is bit-identical under either — enforced by the same-seed equivalence
    test and a CI gate. Select per run via {!impl} (CLI [--evq]). *)

module type S = sig
  type 'a t

  val create : ?dummy:'a -> unit -> 'a t
  val push : 'a t -> at:Time.t -> seq:int -> 'a -> unit
  val pop : 'a t -> (Time.t * int * 'a) option

  val pop_exn : 'a t -> 'a
  (** Payload-only pop; raises [Invalid_argument] when empty.
      Allocation-free with {!next_at} on the dispatch hot path. *)

  val next_at : 'a t -> Time.t
  (** Earliest queued timestamp, [-1] when empty. *)

  val peek_time : 'a t -> Time.t option
  val length : 'a t -> int
  val max_length : 'a t -> int
  val is_empty : 'a t -> bool
end

module Heap : S
module Calendar : S

(** Run-time implementation choice, threaded from the CLI down to
    {!Engine.create}. *)
type impl = Heap | Calendar

val all_impls : impl list
val impl_to_string : impl -> string
val impl_of_string : string -> impl option

(** A queue packed with its implementation tag; dispatch is one branch per
    operation. *)
type 'a t

val create : ?dummy:'a -> impl -> 'a t
val impl : 'a t -> impl
val push : 'a t -> at:Time.t -> seq:int -> 'a -> unit
val pop : 'a t -> (Time.t * int * 'a) option
val pop_exn : 'a t -> 'a
val next_at : 'a t -> Time.t
val peek_time : 'a t -> Time.t option
val length : 'a t -> int
val max_length : 'a t -> int
val is_empty : 'a t -> bool
