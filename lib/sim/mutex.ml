type t = {
  eng : Engine.t;
  mutable locked : bool;
  waiters : unit Waitq.t;
}

let create eng = { eng; locked = false; waiters = Waitq.create ~eng () }

let lock t =
  if not t.locked then t.locked <- true
  else begin
    (* FIFO handoff: unlock passes ownership directly to the woken waiter,
       so the lock stays [locked] across the handoff. *)
    Waitq.wait t.eng t.waiters
  end

let try_lock t =
  if t.locked then false
  else begin
    t.locked <- true;
    true
  end

let unlock t =
  if not t.locked then invalid_arg "Mutex.unlock: not locked";
  if not (Waitq.wake_one t.waiters ()) then t.locked <- false

let is_locked t = t.locked
let waiters t = Waitq.length t.waiters

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
