type t = { eng : Engine.t; mutable permits : int; waiters : unit Waitq.t }

let create eng n =
  assert (n >= 0);
  { eng; permits = n; waiters = Waitq.create ~eng () }

let acquire t =
  if t.permits > 0 then t.permits <- t.permits - 1
  else Waitq.wait t.eng t.waiters

let try_acquire t =
  if t.permits > 0 then begin
    t.permits <- t.permits - 1;
    true
  end
  else false

let release t =
  (* Hand the permit directly to a waiter if one exists. *)
  if not (Waitq.wake_one t.waiters ()) then t.permits <- t.permits + 1

let available t = t.permits
let waiters t = Waitq.length t.waiters
