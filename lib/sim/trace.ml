type event = { at : Time.t; cat : string; msg : string }

type t = {
  capacity : int;
  ring : event option array;
  mutable next : int; (* slot for the next event *)
  mutable total : int;
  mutable retained : int; (* occupied slots, so [count] is O(1) *)
}

let create ?(capacity = 4096) () =
  assert (capacity > 0);
  { capacity; ring = Array.make capacity None; next = 0; total = 0; retained = 0 }

let emit t ~at ~cat msg =
  if t.ring.(t.next) = None then t.retained <- t.retained + 1;
  t.ring.(t.next) <- Some { at; cat; msg };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let events ?cat ?prefix t =
  (* Oldest first: the slot at [next] is the oldest retained event. *)
  let keep e =
    (match cat with Some c -> e.cat = c | None -> true)
    && match prefix with
       | Some p -> String.starts_with ~prefix:p e.cat
       | None -> true
  in
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    match t.ring.((t.next + i) mod t.capacity) with
    | Some e when keep e -> out := e :: !out
    | Some _ | None -> ()
  done;
  List.rev !out

let count t = t.retained
let total t = t.total

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0;
  t.retained <- 0

let pp fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "[%10s] %-12s %s@\n" (Time.to_string e.at) e.cat
        e.msg)
    (events t)
