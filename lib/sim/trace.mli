(** Bounded in-memory event traces.

    A trace is a ring of (time, category, message) events; producers emit
    cheaply (messages are built only when tracing is enabled by
    construction — the caller holds a [t option]), and consumers dump or
    filter after the run. Used by the OS models to record protocol events
    (migrations, faults, grants) for debugging and the CLI's timeline
    view. *)

type t

type event = { at : Time.t; cat : string; msg : string }

val create : ?capacity:int -> unit -> t
(** Ring of at most [capacity] (default 4096) most-recent events. *)

val emit : t -> at:Time.t -> cat:string -> string -> unit

val events : ?cat:string -> ?prefix:string -> t -> event list
(** Chronological; [cat] filters by exact category, [prefix] by category
    prefix (both filters apply when both are given). *)

val count : t -> int
(** Events currently retained (≤ capacity); O(1). [total t - count t] is
    how many events the ring has dropped. *)

val total : t -> int
(** Events ever emitted (including ones the ring has dropped). *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One line per retained event: "[time] cat: msg". *)
