type 'a entry = { mutable active : bool; resume : 'a -> unit; owner : 'a t }

and 'a t = {
  q : 'a entry Queue.t;
  eng : Engine.t option;
      (** When known (every creation site in the tree passes it), dead-entry
          occupancy is also folded into the engine-wide aggregate the
          profiler samples ([Engine.waitq_dead]). *)
  mutable dead : int;
      (** Cancelled entries still queued: they occupy slots (and memory)
          until they reach the head and are purged. *)
}

let create ?eng () = { q = Queue.create (); eng; dead = 0 }

let push t resume =
  let e = { active = true; resume; owner = t } in
  Queue.push e t.q;
  e

let note_dead t n =
  t.dead <- t.dead + n;
  match t.eng with
  | None -> ()
  | Some eng -> Engine.Introspect.waitq_dead_add eng n

(* Rebuild the queue keeping only live entries, in order. Entries never
   consume a wake-up once inactive, so dropping them early is observable
   only through [dead_count] and memory — never through wake order. *)
let compact t =
  if t.dead > 0 then begin
    let keep = Queue.create () in
    Queue.iter (fun e -> if e.active then Queue.push e keep) t.q;
    Queue.clear t.q;
    Queue.transfer keep t.q;
    note_dead t (-t.dead)
  end

let cancel e =
  if e.active then begin
    e.active <- false;
    let t = e.owner in
    note_dead t 1;
    (* Compact lazily once dead entries dominate: without this, a storm of
       timeouts on a rarely-woken queue accumulates dead slots without
       bound (they are otherwise purged only when they reach the head). *)
    if 2 * t.dead > Queue.length t.q then compact t
  end

let is_active e = e.active

let dead_count t = t.dead

(* Dead (cancelled or already-woken) entries stay queued until they reach the
   head; popping purges them so they never consume a wake-up. *)
let rec pop_active t =
  match Queue.take_opt t.q with
  | None -> None
  | Some e ->
      if e.active then Some e
      else begin
        note_dead t (-1);
        pop_active t
      end

let wake_one t v =
  match pop_active t with
  | None -> false
  | Some e ->
      e.active <- false;
      e.resume v;
      true

let wake_all t v =
  let rec loop n =
    match pop_active t with
    | None -> n
    | Some e ->
        e.active <- false;
        e.resume v;
        loop (n + 1)
  in
  loop 0

let take t =
  match pop_active t with
  | None -> None
  | Some e ->
      e.active <- false;
      Some e.resume

(* Inactive entries stay queued only via [cancel] (wake/take remove before
   deactivating), and [cancel]/purge maintain [dead] exactly — so the
   active count is a subtraction, not a fold. *)
let length t = Queue.length t.q - t.dead
let is_empty t = length t = 0

let wait eng t = Engine.suspend eng (fun resume -> ignore (push t resume))

type 'a timed = Signalled of 'a | Timed_out

let wait_timeout eng t ~timeout =
  Engine.suspend eng (fun resume ->
      let entry = push t (fun v -> resume (Signalled v)) in
      Engine.schedule eng ~name:"timeout" ~after:timeout (fun () ->
          if is_active entry then begin
            cancel entry;
            resume Timed_out
          end))
