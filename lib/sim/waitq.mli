(** FIFO queues of parked fibers, with cancellation.

    This is the building block for every blocking primitive in the simulator
    (mutexes, condition variables, futexes, message rings...). An entry can
    be cancelled (e.g. by a timeout) without disturbing queue order; a
    cancelled entry never consumes a wake-up. *)

type 'a t
(** A queue of waiters, each to be resumed with a value of type ['a]. *)

type 'a entry

val create : ?eng:Engine.t -> unit -> 'a t
(** When [eng] is given, this queue's dead-entry occupancy is also folded
    into the engine-wide [Engine.waitq_dead] aggregate, which the profiler
    samples; behaviour is otherwise identical. *)

val push : 'a t -> ('a -> unit) -> 'a entry
(** Register a resume function, typically obtained from {!Engine.suspend}. *)

val cancel : 'a entry -> unit
(** Deactivate an entry. Idempotent; no-op if the entry was already woken. *)

val is_active : 'a entry -> bool

val wake_one : 'a t -> 'a -> bool
(** Resume the oldest active waiter. Returns [false] if none was waiting. *)

val wake_all : 'a t -> 'a -> int
(** Resume every active waiter, oldest first. Returns how many were woken. *)

val take : 'a t -> ('a -> unit) option
(** Remove the oldest active waiter {e without} resuming it; the caller
    becomes responsible for eventually calling the returned resume function
    (used by futex-requeue to move waiters between queues). *)

val length : 'a t -> int
(** Number of currently-active waiters. *)

val dead_count : 'a t -> int
(** Cancelled entries still occupying queue slots. They are purged lazily —
    when they reach the head, or by {!compact} as soon as they outnumber
    the live entries — so the count is bounded by the number of active
    waiters and a timeout storm can no longer grow the queue without
    bound. *)

val compact : 'a t -> unit
(** Drop every dead entry now, preserving the order of live ones.
    {!cancel} calls this automatically once [2 * dead_count > queue slots];
    exposed for tests and for callers that want memory back eagerly. *)

val is_empty : 'a t -> bool

val wait : Engine.t -> 'a t -> 'a
(** [wait eng q] parks the calling fiber on [q] until woken. *)

type 'a timed = Signalled of 'a | Timed_out

val wait_timeout : Engine.t -> 'a t -> timeout:Time.t -> 'a timed
(** Park on [q] for at most [timeout]; a timeout cancels the queue entry. *)
