(** Thread-handle API over {!Smp_os}, mirroring [Popcorn.Api] so workloads
    and benchmarks can drive both OS models through the same shapes. *)

open Sim
module K = Kernelmodel

type thread = { sys : Smp_os.t; proc : Smp_os.process; task : K.Task.t }

let current_core th =
  match th.task.K.Task.core with
  | Some c -> c
  | None -> invalid_arg "smp thread has no core"

let tid th = th.task.K.Task.tid
let pid th = th.proc.Smp_os.pid

let schedule_in th =
  let core = K.Sched.pick_core th.sys.Smp_os.sched in
  K.Sched.assign th.sys.Smp_os.sched core;
  th.task.K.Task.core <- Some core;
  Smp_os.note_core th.proc core 1;
  K.Task.set_state th.task K.Task.Running

let unschedule th =
  match th.task.K.Task.core with
  | Some core -> K.Sched.unassign th.sys.Smp_os.sched core
  | None -> ()

let compute th dt = K.Sched.compute_on th.sys.Smp_os.sched (current_core th) dt

(** Clone a thread running [body]; SMP has no placement targets — the
    scheduler picks the least-loaded core. *)
let spawn th body : K.Ids.tid =
  let task = Smp_os.clone th.sys th.proc ~core:(current_core th) in
  let child = { sys = th.sys; proc = th.proc; task } in
  Engine.spawn (Smp_os.eng th.sys) ~tag:"smp"
    ~name:(Printf.sprintf "smp-thread-%d" task.K.Task.tid)
    (fun () ->
      schedule_in child;
      Engine.sleep (Smp_os.eng th.sys)
        (Smp_os.params th.sys).Hw.Params.context_switch;
      body child;
      unschedule child;
      Smp_os.exit_thread child.sys child.proc child.task);
  task.K.Task.tid

let mmap th ~len ~prot = Smp_os.mmap th.sys th.proc ~core:(current_core th) ~len ~prot

let munmap th ~start ~len =
  Smp_os.munmap th.sys th.proc ~core:(current_core th) ~start ~len

let mprotect th ~start ~len ~prot =
  Smp_os.mprotect th.sys th.proc ~core:(current_core th) ~start ~len ~prot

let read th ~addr = Smp_os.read th.sys th.proc ~core:(current_core th) ~addr
let write th ~addr = Smp_os.write th.sys th.proc ~core:(current_core th) ~addr

type wait_result = Smp_os.wait_result = Woken | Timed_out

let futex_wait th ?timeout ~addr () =
  Smp_os.futex_wait th.sys th.proc ~core:(current_core th) ?timeout () ~addr

let futex_wake th ~addr ~count =
  Smp_os.futex_wake th.sys th.proc ~core:(current_core th) ~addr ~count

(** fork(): child process running [main] with a COW-inherited address
    space. *)
let fork th main : Smp_os.process =
  let child, task = Smp_os.fork th.sys th.proc ~core:(current_core th) in
  let cth = { sys = th.sys; proc = child; task } in
  Engine.spawn (Smp_os.eng th.sys) ~tag:"smp"
    ~name:(Printf.sprintf "smp-proc-%d-main" child.Smp_os.pid)
    (fun () ->
      schedule_in cth;
      Engine.sleep (Smp_os.eng th.sys)
        (Smp_os.params th.sys).Hw.Params.context_switch;
      main cth;
      unschedule cth;
      Smp_os.exit_thread cth.sys cth.proc cth.task;
      if child.Smp_os.live_threads = 0 then Smp_os.reap th.sys child);
  child

(** Start a process whose initial thread runs [main]. *)
let start_process sys main : Smp_os.process =
  let proc, task = Smp_os.create_process sys in
  let th = { sys; proc; task } in
  Engine.spawn (Smp_os.eng sys) ~tag:"smp"
    ~name:(Printf.sprintf "smp-proc-%d-main" proc.Smp_os.pid)
    (fun () ->
      schedule_in th;
      Engine.sleep (Smp_os.eng sys) (Smp_os.params sys).Hw.Params.context_switch;
      main th;
      unschedule th;
      Smp_os.exit_thread sys proc task);
  proc

let wait_exit sys proc = Smp_os.wait_exit sys proc
