(** The SMP Linux baseline: one shared kernel image over all cores.

    Same mechanisms as the Popcorn model (tasks, VMAs, demand faulting,
    futexes) but with the shared-memory structure of a symmetric monolithic
    kernel: one task list under a global lock, one VMA tree per process
    under an [mmap_sem] whose cache line every core hammers, one futex hash
    table with bucket spinlocks, and TLB shootdown IPIs to every core
    running the process on unmap. No messages, no replicas — and therefore
    the contention collapse the paper measures. *)

open Sim
module K = Kernelmodel

type process = {
  pid : K.Ids.pid;
  vmas : K.Vma.t;
  pt : K.Page_table.t;
  page_version : (int, int) Hashtbl.t;
  mmap_sem : Rwsem.t;
  mm_line : Hw.Cacheline.t;  (** mm_users / counters cache line. *)
  mutable live_threads : int;
  mutable threads_per_core : (Hw.Topology.core, int) Hashtbl.t;
  exit_waiters : unit Waitq.t;
}

type t = {
  machine : Hw.Machine.t;
  sched : K.Sched.t;  (** all cores, one scheduler domain. *)
  tasklist_lock : Hw.Spinlock.t;
  pid_alloc : K.Ids.allocator;
  tid_alloc : K.Ids.allocator;
  futex : K.Futex.t;
  futex_buckets : Hw.Spinlock.t array;
  procs : (K.Ids.pid, process) Hashtbl.t;
  tasks : (K.Ids.tid, K.Task.t) Hashtbl.t;
}

let n_futex_buckets = 64

let boot (machine : Hw.Machine.t) : t =
  let eng = machine.Hw.Machine.eng in
  let params = machine.Hw.Machine.params in
  let topo = machine.Hw.Machine.topo in
  {
    machine;
    sched = K.Sched.create eng params ~cores:(Hw.Topology.all_cores topo) ();
    tasklist_lock = Hw.Spinlock.create eng params topo ~name:"tasklist_lock";
    pid_alloc = K.Ids.make_shared ();
    tid_alloc = K.Ids.make_shared ();
    futex = K.Futex.create eng;
    futex_buckets =
      Array.init n_futex_buckets (fun i ->
          Hw.Spinlock.create eng params topo
            ~name:(Printf.sprintf "futex_bucket.%d" i));
    procs = Hashtbl.create 16;
    tasks = Hashtbl.create 256;
  }

let eng t = t.machine.Hw.Machine.eng
let params t = t.machine.Hw.Machine.params
let topo t = t.machine.Hw.Machine.topo

let syscall t = Engine.sleep (eng t) (params t).Hw.Params.syscall_overhead

(* Multiplicative hash, like Linux's futex key hashing — page-aligned
   addresses must not all collide into one bucket. *)
let bucket t addr =
  let h = addr * 0x61C88647 land max_int in
  t.futex_buckets.((h lsr 16) mod n_futex_buckets)

(* Same initial layout as the Popcorn model, for like-for-like timing. *)
let initial_layout =
  [
    { K.Vma.start = 0x400000; len = 0x100000; prot = K.Vma.prot_rx; kind = K.Vma.File "a.out" };
    { K.Vma.start = 0x800000; len = 0x400000; prot = K.Vma.prot_rw; kind = K.Vma.Heap };
    { K.Vma.start = 0x7FFD_0000_0000; len = 0x200000; prot = K.Vma.prot_rw; kind = K.Vma.Stack };
  ]

let task_construct_cost = Time.us 12
let clone_bookkeeping_cost = Time.us 2
let vma_op_cost = Time.ns 350
let frame_alloc_cost = Time.ns 300
let zero_page_cost = Time.ns 600
let futex_op_cost = Time.ns 250

let create_process t : process * K.Task.t =
  let pid = K.Ids.next t.pid_alloc in
  let vmas = K.Vma.create () in
  List.iter
    (fun (v : K.Vma.vma) ->
      match
        K.Vma.map vmas ~fixed:v.K.Vma.start ~len:v.K.Vma.len ~prot:v.K.Vma.prot
          ~kind:v.K.Vma.kind ()
      with
      | Ok _ -> ()
      | Error e -> invalid_arg e)
    initial_layout;
  let proc =
    {
      pid;
      vmas;
      pt = K.Page_table.create ();
      page_version = Hashtbl.create 256;
      mmap_sem =
        Rwsem.create (eng t) (params t) (topo t)
          ~name:(Printf.sprintf "mmap_sem.%d" pid);
      mm_line =
        Hw.Cacheline.create (eng t) (params t) (topo t)
          ~name:(Printf.sprintf "mm.%d" pid);
      live_threads = 0;
      threads_per_core = Hashtbl.create 16;
      exit_waiters = Waitq.create ~eng:(eng t) ();
    }
  in
  Hashtbl.replace t.procs pid proc;
  let tid = K.Ids.next t.tid_alloc in
  let ctx = K.Context.fresh (Engine.rng (eng t)) ~use_fpu:false in
  let task = K.Task.create ~tid ~tgid:pid ~kernel:0 ~ctx in
  Hashtbl.replace t.tasks tid task;
  proc.live_threads <- 1;
  (proc, task)

let note_core proc core delta =
  let cur =
    match Hashtbl.find_opt proc.threads_per_core core with
    | Some n -> n
    | None -> 0
  in
  let n = cur + delta in
  if n <= 0 then Hashtbl.remove proc.threads_per_core core
  else Hashtbl.replace proc.threads_per_core core n

(** Cores (other than [core]) currently running threads of [proc]; the TLB
    shootdown victim set. *)
let other_cores proc ~core =
  Hashtbl.fold
    (fun c _ acc -> if c = core then acc else c :: acc)
    proc.threads_per_core []

(* Modelled pthread stack, mmapped at create (never unmapped: glibc's
   stack cache), same size as the Popcorn model uses. *)
let stack_len = 16 * 4096

(** pthread_create: stack mmap under mmap_sem (write), then
    clone(CLONE_VM|CLONE_THREAD) — global task list insertion under the
    tasklist lock plus an atomic on the shared mm counters. *)
let clone t (proc : process) ~core : K.Task.t =
  Hw.Machine.metric_incr t.machine "threads.spawned";
  syscall t;
  Rwsem.with_write proc.mmap_sem ~core (fun () ->
      Engine.sleep (eng t) vma_op_cost;
      match
        K.Vma.map proc.vmas ~len:stack_len ~prot:K.Vma.prot_rw
          ~kind:K.Vma.Stack ()
      with
      | Ok _ -> ()
      | Error e -> failwith ("thread stack allocation failed: " ^ e));
  Engine.sleep (eng t) clone_bookkeeping_cost;
  Hw.Cacheline.access proc.mm_line ~core;
  Hw.Spinlock.with_lock t.tasklist_lock ~core (fun () ->
      Engine.sleep (eng t) (Time.ns 200));
  Engine.sleep (eng t) task_construct_cost;
  let tid = K.Ids.next t.tid_alloc in
  let ctx = K.Context.fresh (Engine.rng (eng t)) ~use_fpu:false in
  let task = K.Task.create ~tid ~tgid:proc.pid ~kernel:0 ~ctx in
  Hashtbl.replace t.tasks tid task;
  proc.live_threads <- proc.live_threads + 1;
  task

let exit_thread t (proc : process) (task : K.Task.t) =
  Hw.Machine.metric_incr t.machine "threads.exited";
  syscall t;
  let core = match task.K.Task.core with Some c -> c | None -> 0 in
  Hw.Cacheline.access proc.mm_line ~core;
  Hw.Spinlock.with_lock t.tasklist_lock ~core (fun () ->
      Engine.sleep (eng t) (Time.ns 200));
  Hashtbl.remove t.tasks task.K.Task.tid;
  K.Task.set_state task (K.Task.Exited 0);
  (match task.K.Task.core with Some c -> note_core proc c (-1) | None -> ());
  proc.live_threads <- proc.live_threads - 1;
  if proc.live_threads = 0 then ignore (Waitq.wake_all proc.exit_waiters ())

(** fork(): new process inheriting the parent's layout COW-style (page
    tables copied; data materialises on first touch). Serialises on the
    global task-list lock and reads the parent's layout under its
    mmap_sem. *)
let fork t (parent : process) ~core : process * K.Task.t =
  Hw.Machine.metric_incr t.machine "process.forks";
  syscall t;
  Engine.sleep (eng t) (Time.us 4);
  let layout =
    Rwsem.with_read parent.mmap_sem ~core (fun () ->
        Engine.sleep (eng t)
          (Time.scale (K.Vma.count parent.vmas) vma_op_cost);
        K.Vma.vmas parent.vmas)
  in
  Engine.sleep (eng t)
    (Time.scale (Hashtbl.length parent.page_version) (Time.ns 150));
  Hw.Spinlock.with_lock t.tasklist_lock ~core (fun () ->
      Engine.sleep (eng t) (Time.ns 200));
  Engine.sleep (eng t) task_construct_cost;
  let pid = K.Ids.next t.pid_alloc in
  let vmas = K.Vma.create () in
  List.iter
    (fun (v : K.Vma.vma) ->
      match
        K.Vma.map vmas ~fixed:v.K.Vma.start ~len:v.K.Vma.len ~prot:v.K.Vma.prot
          ~kind:v.K.Vma.kind ()
      with
      | Ok _ -> ()
      | Error e -> invalid_arg e)
    layout;
  let child =
    {
      pid;
      vmas;
      pt = K.Page_table.create ();
      page_version = Hashtbl.copy parent.page_version;
      mmap_sem =
        Rwsem.create (eng t) (params t) (topo t)
          ~name:(Printf.sprintf "mmap_sem.%d" pid);
      mm_line =
        Hw.Cacheline.create (eng t) (params t) (topo t)
          ~name:(Printf.sprintf "mm.%d" pid);
      live_threads = 1;
      threads_per_core = Hashtbl.create 16;
      exit_waiters = Waitq.create ~eng:(eng t) ();
    }
  in
  Hashtbl.replace t.procs pid child;
  let tid = K.Ids.next t.tid_alloc in
  let ctx = K.Context.fresh (Engine.rng (eng t)) ~use_fpu:false in
  let task = K.Task.create ~tid ~tgid:pid ~kernel:0 ~ctx in
  Hashtbl.replace t.tasks tid task;
  (child, task)

(** Free a dead process's frames (called when its last thread exits). *)
let reap t (proc : process) =
  K.Page_table.iter proc.pt (fun ~vpn:_ pte ->
      Hw.Memory.free t.machine.Hw.Machine.mem pte.K.Page_table.frame);
  Hashtbl.reset proc.page_version;
  Hashtbl.remove t.procs proc.pid

(* --- mm operations --- *)

let mmap t (proc : process) ~core ~len ~prot =
  syscall t;
  Rwsem.with_write proc.mmap_sem ~core (fun () ->
      Engine.sleep (eng t) vma_op_cost;
      K.Vma.map proc.vmas ~len ~prot ~kind:K.Vma.Anon ())

let shootdown t (proc : process) ~core =
  let victims = other_cores proc ~core in
  let p = params t in
  match victims with
  | [] -> Engine.sleep (eng t) p.Hw.Params.tlb_flush_local
  | _ ->
      (* Initiator IPIs every core running this mm and waits for acks. *)
      let cost =
        Time.add p.Hw.Params.ipi_latency
          (Time.scale (List.length victims)
             p.Hw.Params.tlb_shootdown_per_core)
      in
      Engine.sleep (eng t) (Time.add p.Hw.Params.tlb_flush_local cost)

let drop_pages t (proc : process) ~start ~len =
  let removed = K.Page_table.clear_range proc.pt ~start ~len in
  List.iter
    (fun (pte : K.Page_table.pte) ->
      Hw.Memory.free t.machine.Hw.Machine.mem pte.K.Page_table.frame)
    removed;
  let first = K.Page_table.vpn_of_addr start in
  let last = K.Page_table.vpn_of_addr (start + len - 1) in
  for vpn = first to last do
    Hashtbl.remove proc.page_version vpn
  done

let munmap t (proc : process) ~core ~start ~len =
  syscall t;
  Rwsem.with_write proc.mmap_sem ~core (fun () ->
      Engine.sleep (eng t) vma_op_cost;
      match K.Vma.unmap proc.vmas ~start ~len with
      | Error e -> Error e
      | Ok () ->
          drop_pages t proc ~start ~len;
          shootdown t proc ~core;
          Ok ())

let mprotect t (proc : process) ~core ~start ~len ~prot =
  syscall t;
  Rwsem.with_write proc.mmap_sem ~core (fun () ->
      Engine.sleep (eng t) vma_op_cost;
      match K.Vma.protect proc.vmas ~start ~len ~prot with
      | Error e -> Error e
      | Ok () ->
          drop_pages t proc ~start ~len;
          shootdown t proc ~core;
          Ok ())

(* --- memory access with demand faulting --- *)

let latest_version proc vpn =
  match Hashtbl.find_opt proc.page_version vpn with Some v -> v | None -> 0

let touch t (proc : process) ~core ~addr ~access :
    (K.Fault.classification, string) result =
  let p = params t in
  Engine.sleep (eng t) p.Hw.Params.l1_hit;
  match K.Fault.classify proc.vmas proc.pt ~addr ~access with
  | K.Fault.Present -> Ok K.Fault.Present
  | K.Fault.Segv -> Error "segmentation fault"
  | (K.Fault.Minor | K.Fault.Cow_or_upgrade) as c ->
      Hw.Machine.metric_incr t.machine "fault.serviced";
      Engine.sleep (eng t) p.Hw.Params.page_table_walk;
      Rwsem.with_read proc.mmap_sem ~core (fun () ->
          let vpn = K.Page_table.vpn_of_addr addr in
          (match K.Page_table.get proc.pt ~vpn with
          | Some pte ->
              K.Page_table.set proc.pt ~vpn
                { pte with K.Page_table.writable = true }
          | None ->
              Engine.sleep (eng t)
                (Time.add frame_alloc_cost zero_page_cost);
              let node = Hw.Topology.socket_of (topo t) core in
              let frame =
                Hw.Memory.alloc_exn t.machine.Hw.Machine.mem ~node
              in
              K.Page_table.set proc.pt ~vpn
                { K.Page_table.frame; writable = true });
          Engine.sleep (eng t) p.Hw.Params.page_table_walk);
      Ok c

let write t (proc : process) ~core ~addr =
  match touch t proc ~core ~addr ~access:K.Fault.Write with
  | Error e -> Error e
  | Ok _ ->
      let vpn = K.Page_table.vpn_of_addr addr in
      Hashtbl.replace proc.page_version vpn (latest_version proc vpn + 1);
      Ok ()

let read t (proc : process) ~core ~addr =
  match touch t proc ~core ~addr ~access:K.Fault.Read with
  | Error e -> Error e
  | Ok _ -> Ok (latest_version proc (K.Page_table.vpn_of_addr addr))

(* --- futexes --- *)

type wait_result = Woken | Timed_out

let futex_wait t (_proc : process) ~core ?timeout () ~addr : wait_result =
  Hw.Machine.metric_incr t.machine "futex.waits";
  syscall t;
  Hw.Spinlock.with_lock (bucket t addr) ~core (fun () ->
      Engine.sleep (eng t) futex_op_cost);
  match K.Futex.wait t.futex ~addr ?timeout () with
  | K.Futex.Woken -> Woken
  | K.Futex.Timed_out -> Timed_out

let futex_wake t (_proc : process) ~core ~addr ~count : int =
  Hw.Machine.metric_incr t.machine "futex.wakes";
  syscall t;
  Hw.Spinlock.with_lock (bucket t addr) ~core (fun () ->
      Engine.sleep (eng t) futex_op_cost);
  K.Futex.wake t.futex ~addr ~count

let wait_exit t proc =
  if proc.live_threads > 0 then Waitq.wait (eng t) proc.exit_waiters
