(* 4 sub-buckets per octave over 2^-8 .. 2^55: 256 buckets is plenty. *)
let sub_per_octave = 4.
let min_exp = -8.
let nbuckets = 256

type t = {
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable mx : float;
}

let create () = { buckets = Array.make nbuckets 0; n = 0; sum = 0.; mx = 0. }

let bucket_of x =
  if x <= 0. then 0
  else
    let i =
      int_of_float (Float.round ((Float.log2 x -. min_exp) *. sub_per_octave))
    in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

let value_of i = Float.exp2 ((float_of_int i /. sub_per_octave) +. min_exp)

let add t x =
  assert (x >= 0.);
  t.buckets.(bucket_of x) <- t.buckets.(bucket_of x) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x > t.mx then t.mx <- x

let count t = t.n
let max t = t.mx

let percentile t p =
  assert (p >= 0. && p <= 100.);
  if t.n = 0 then 0.
  else begin
    let target =
      Stdlib.max 1
        (int_of_float (Float.round (p /. 100. *. float_of_int t.n)))
    in
    let rec scan i acc =
      if i >= nbuckets then t.mx
      else
        let acc = acc + t.buckets.(i) in
        if acc >= target then value_of i else scan (i + 1) acc
    in
    scan 0 0
  end

let median t = percentile t 50.
let p99 t = percentile t 99.
let p999 t = percentile t 99.9
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let pp ~unit fmt t =
  if t.n = 0 then Format.fprintf fmt "(no samples)"
  else
    Format.fprintf fmt "n=%d p50=%.2f%s p90=%.2f%s p99=%.2f%s max=%.2f%s" t.n
      (median t) unit (percentile t 90.) unit (p99 t) unit t.mx unit
