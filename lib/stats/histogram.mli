(** Log-bucketed histograms for latency distributions.

    Buckets grow geometrically (base 2 with 4 sub-buckets per octave), giving
    ~±9% relative error on percentile estimates over a huge dynamic range —
    the usual choice for microsecond-to-second latency data. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one non-negative observation. *)

val count : t -> int

val max : t -> float
(** Largest observation so far; 0. when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]]; 0. when empty. Returns the
    representative value of the bucket containing the p-th sample. *)

val median : t -> float
val p99 : t -> float

val mean : t -> float

val pp : unit:string -> Format.formatter -> t -> unit
(** One-line "p50/p90/p99/max" rendering. *)
