(** Log-bucketed histograms for latency distributions.

    Buckets grow geometrically (base 2 with 4 sub-buckets per octave), giving
    ~±9% relative error on percentile estimates over a huge dynamic range —
    the usual choice for microsecond-to-second latency data.

    {b Error bound.} Adjacent bucket boundaries differ by a factor of
    [2^(1/4) ≈ 1.189]; a percentile query returns the representative value
    of the bucket containing the p-th sample, so every reported percentile
    (p50, p99, p999, …) is within a multiplicative factor of [2^(1/8) ≈
    1.09] — about ±9% — of a sample actually in that bucket. The bound is
    relative, not absolute: it holds identically at 100 ns and at 10 s.
    {!max} is exact (the largest sample is stored verbatim), which is why
    worst-case reporting reads [max], never a percentile. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one non-negative observation. *)

val count : t -> int

val max : t -> float
(** Largest observation so far; 0. when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]]; 0. when empty. Returns the
    representative value of the bucket containing the p-th sample. *)

val median : t -> float
val p99 : t -> float

val p999 : t -> float
(** 99.9th percentile — the deep-tail summary between {!p99} and the exact
    {!max}; subject to the same ±9% bucket error as every percentile. *)

val mean : t -> float

val pp : unit:string -> Format.formatter -> t -> unit
(** One-line "p50/p90/p99/max" rendering. *)
