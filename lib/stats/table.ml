type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: column count mismatch";
  t.rows <- row :: t.rows

let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 256 in
  let pad i cell =
    let w = widths.(i) in
    let n = String.length cell in
    if i = 0 then cell ^ String.make (w - n) ' '
    else String.make (w - n) ' ' ^ cell
  in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad i cell);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  hline ();
  emit_row t.columns;
  hline ();
  List.iter emit_row rows;
  hline ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_ns v =
  let a = Float.abs v in
  if a < 1e3 then Printf.sprintf "%.0fns" v
  else if a < 1e6 then Printf.sprintf "%.2fus" (v /. 1e3)
  else if a < 1e9 then Printf.sprintf "%.3fms" (v /. 1e6)
  else Printf.sprintf "%.3fs" (v /. 1e9)

let fmt_rate v =
  let a = Float.abs v in
  if a < 1e3 then Printf.sprintf "%.1f/s" v
  else if a < 1e6 then Printf.sprintf "%.1fK/s" (v /. 1e3)
  else Printf.sprintf "%.2fM/s" (v /. 1e6)

let fmt_f v = Printf.sprintf "%.2f" v

let series ~title ~x_label curves =
  let xs =
    List.concat_map (fun (_, pts) -> List.map fst pts) curves
    |> List.sort_uniq compare
  in
  let t = create ~title ~columns:(x_label :: List.map fst curves) in
  List.iter
    (fun x ->
      let cells =
        List.map
          (fun (_, pts) ->
            match List.assoc_opt x pts with
            | Some y -> fmt_f y
            | None -> "-")
          curves
      in
      let x_str =
        if Float.is_integer x then string_of_int (int_of_float x)
        else fmt_f x
      in
      add_row t (x_str :: cells))
    xs;
  t
