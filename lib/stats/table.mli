(** ASCII tables and series for bench output, shaped like the paper's tables
    and figures (a "figure" is emitted as a data series, one row per x). *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Must match the column count. *)

val title : t -> string
val columns : t -> string list

val rows : t -> string list list
(** Rows in insertion order. *)

val render : t -> string
(** Boxed, aligned table with the title on top. *)

val print : t -> unit
(** [render] to stdout. *)

val fmt_ns : float -> string
(** Adaptive ns/us/ms rendering of a nanosecond quantity. *)

val fmt_rate : float -> string
(** Adaptive ops/s rendering (K/M suffixes). *)

val fmt_f : float -> string
(** Two-decimal float. *)

val series :
  title:string -> x_label:string -> (string * (float * float) list) list -> t
(** [series ~title ~x_label curves] builds a table with one row per distinct
    x and one column per named curve — the textual equivalent of a figure
    with several lines. Missing points render as "-". *)
