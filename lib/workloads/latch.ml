(** Harness-level completion latch.

    Used by workload drivers to join their workers without charging any OS
    cost: the join is measurement scaffolding (the stopwatch around the
    workload), not part of the benchmarked system. *)

type t = {
  eng : Sim.Engine.t;
  mutable remaining : int;
  waiters : unit Sim.Waitq.t;
}

let create eng n =
  assert (n >= 0);
  { eng; remaining = n; waiters = Sim.Waitq.create ~eng () }

let arrive t =
  assert (t.remaining > 0);
  t.remaining <- t.remaining - 1;
  if t.remaining = 0 then ignore (Sim.Waitq.wake_all t.waiters ())

let wait t = if t.remaining > 0 then Sim.Waitq.wait t.eng t.waiters
