(** Open-loop server workload (see the interface for the discipline). *)

open Sim

type config = {
  requests : int;
  interarrival : int -> Time.t;
  cost_ns : int;
  deadline_ns : Time.t option;
}

let steady ~requests ~gap ~cost_ns =
  { requests; interarrival = (fun _ -> gap); cost_ns; deadline_ns = None }

type stats = {
  offered : int;
  completed : int;
  rejected : int;
  failed : int;
  retried : int;
  within_deadline : int;
  latency : Stats.Histogram.t;
  elapsed : Time.t;
}

let goodput s =
  if s.offered = 0 then 0. else float_of_int s.completed /. float_of_int s.offered

let shed_rate s =
  if s.offered = 0 then 0. else float_of_int s.rejected /. float_of_int s.offered

let goodput_within s =
  if s.offered = 0 then 0.
  else float_of_int s.within_deadline /. float_of_int s.offered

let run cluster dispatcher config =
  let eng = Popcorn.Types.eng cluster in
  let latency = Stats.Histogram.create () in
  let completed = ref 0 and rejected = ref 0 and failed = ref 0 in
  let retried = ref 0 and within = ref 0 in
  let latch = Latch.create eng config.requests in
  let started = Engine.now eng in
  (* The generator never waits for outcomes: arrival [i] fires
     [interarrival i] after arrival [i-1], full stop. Each request rides
     its own fiber so a slow placement delays nothing but itself. *)
  Engine.spawn eng ~tag:"workload" ~name:"server-gen" (fun () ->
      for i = 1 to config.requests do
        Engine.sleep eng (config.interarrival i);
        Engine.spawn eng ~tag:"workload"
          ~name:(Printf.sprintf "req-%d" i)
          (fun () ->
            let t0 = Engine.now eng in
            (match
               Popcorn.Placement.dispatch ?deadline:config.deadline_ns
                 dispatcher ~cost_ns:config.cost_ns
             with
            | Popcorn.Placement.Placed { attempts; _ } ->
                incr completed;
                if attempts > 1 then incr retried;
                let lat = Time.sub (Engine.now eng) t0 in
                (match config.deadline_ns with
                | Some d when lat <= d -> incr within
                | Some _ | None -> ());
                Stats.Histogram.add latency (float_of_int lat);
                Popcorn.Types.m_observe cluster "server.latency_ns"
                  (float_of_int lat)
            | Popcorn.Placement.Rejected -> incr rejected
            | Popcorn.Placement.Failed _ -> incr failed);
            Latch.arrive latch)
      done);
  Latch.wait latch;
  {
    offered = config.requests;
    completed = !completed;
    rejected = !rejected;
    failed = !failed;
    retried = !retried;
    within_deadline = !within;
    latency;
    elapsed = Time.sub (Engine.now eng) started;
  }
