(** Open-loop server workload over the Popcorn cluster.

    Requests arrive at a configured rate {e regardless of completion} — the
    open-loop discipline of serious latency benchmarking: a closed loop
    (next request only after the previous answer) self-throttles under
    stress and hides exactly the collapse this workload exists to measure.
    Each arrival is handed to a {!Popcorn.Placement} dispatcher (admission
    control, health-aware kernel choice, bounded retry) and its fate is
    recorded: completed with a latency sample, shed ([Rejected]), or failed
    (every placement attempt timed out).

    Compose with [Inject.Plan] fault plans on the cluster's transport to
    measure behaviour under kernel crash / slowness / message loss. *)

(** Arrival process and per-request cost. *)
type config = {
  requests : int;  (** total arrivals. *)
  interarrival : int -> Sim.Time.t;
      (** gap before arrival [i] (1-based): constant for a steady rate, or
          vary by index for bursts. *)
  cost_ns : int;  (** CPU cost of serving one request. *)
  deadline_ns : Sim.Time.t option;
      (** optional per-request SLO: arrival-to-response budget. Passed to
          {!Popcorn.Placement.dispatch} (which accounts
          [slo.dispatch.met] / [slo.dispatch.violations]) and used for
          the {!field-within_deadline} / {!goodput_within} report.
          Accounting only — never changes scheduling. *)
}

val steady : requests:int -> gap:Sim.Time.t -> cost_ns:int -> config
(** Constant-rate arrivals every [gap]; no deadline. *)

type stats = {
  offered : int;  (** arrivals (= [config.requests]). *)
  completed : int;  (** got a response. *)
  rejected : int;  (** shed by admission control. *)
  failed : int;  (** exhausted every placement attempt. *)
  retried : int;  (** completed, but needed more than one attempt. *)
  within_deadline : int;
      (** completed within [deadline_ns] (0 when no deadline was set). *)
  latency : Stats.Histogram.t;
      (** arrival-to-response latency (ns) of completed requests. *)
  elapsed : Sim.Time.t;  (** first arrival to last outcome (drain included). *)
}

val goodput : stats -> float
(** Completed fraction of offered, in [0,1]. *)

val shed_rate : stats -> float
(** Rejected fraction of offered, in [0,1]. *)

val goodput_within : stats -> float
(** Fraction of offered requests that completed {e within their
    deadline}, in [0,1] — the SLO-aware goodput. 0 when the config
    carried no deadline. *)

val run : Popcorn.Types.cluster -> Popcorn.Placement.t -> config -> stats
(** Run the workload to completion (spawns its own fibers; call from a
    fiber, returns once every request has an outcome). Each completion also
    feeds the [server.latency_ns] metric when observability is attached. *)
