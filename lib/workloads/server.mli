(** Open-loop server workload over the Popcorn cluster.

    Requests arrive at a configured rate {e regardless of completion} — the
    open-loop discipline of serious latency benchmarking: a closed loop
    (next request only after the previous answer) self-throttles under
    stress and hides exactly the collapse this workload exists to measure.
    Each arrival is handed to a {!Popcorn.Placement} dispatcher (admission
    control, health-aware kernel choice, bounded retry) and its fate is
    recorded: completed with a latency sample, shed ([Rejected]), or failed
    (every placement attempt timed out).

    Compose with [Inject.Plan] fault plans on the cluster's transport to
    measure behaviour under kernel crash / slowness / message loss. *)

(** Arrival process and per-request cost. *)
type config = {
  requests : int;  (** total arrivals. *)
  interarrival : int -> Sim.Time.t;
      (** gap before arrival [i] (1-based): constant for a steady rate, or
          vary by index for bursts. *)
  cost_ns : int;  (** CPU cost of serving one request. *)
}

val steady : requests:int -> gap:Sim.Time.t -> cost_ns:int -> config
(** Constant-rate arrivals every [gap]. *)

type stats = {
  offered : int;  (** arrivals (= [config.requests]). *)
  completed : int;  (** got a response. *)
  rejected : int;  (** shed by admission control. *)
  failed : int;  (** exhausted every placement attempt. *)
  retried : int;  (** completed, but needed more than one attempt. *)
  latency : Stats.Histogram.t;
      (** arrival-to-response latency (ns) of completed requests. *)
  elapsed : Sim.Time.t;  (** first arrival to last outcome (drain included). *)
}

val goodput : stats -> float
(** Completed fraction of offered, in [0,1]. *)

val shed_rate : stats -> float
(** Rejected fraction of offered, in [0,1]. *)

val run : Popcorn.Types.cluster -> Popcorn.Placement.t -> config -> stats
(** Run the workload to completion (spawns its own fibers; call from a
    fiber, returns once every request has an outcome). Each completion also
    feeds the [server.latency_ns] metric when observability is attached. *)
