(* Tests for causal tracing (lib/obs/causal), critical-path analysis
   (lib/obs/critpath), the analyze/diff reports (lib/obs/report), the JSON
   parser, and the trace-ring retained counter. *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Same shape as test_obs's workload, with the causal recorder attached:
   two threads, each migrating once between two kernels. *)
let run_workload ~sink ~seed () =
  let machine = Hw.Machine.create ~seed ~sockets:1 ~cores_per_socket:4 () in
  let cluster = Popcorn.Cluster.boot machine ~kernels:2 ~cores_per_kernel:2 in
  let (s : Obs.Sink.t) = sink in
  Hw.Machine.attach_obs machine ~metrics:s.Obs.Sink.metrics
    ~spans:s.Obs.Sink.spans ~causal:s.Obs.Sink.causal ();
  Popcorn.Cluster.observe ~metrics:s.Obs.Sink.metrics
    ~tracer:s.Obs.Sink.trace cluster;
  let eng = machine.Hw.Machine.eng in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Popcorn.Api.start_process cluster ~origin:0 (fun th ->
            let latch = Workloads.Latch.create eng 2 in
            for i = 0 to 1 do
              ignore
                (Popcorn.Api.spawn th ~target:(i mod 2) (fun worker ->
                     Popcorn.Api.compute worker (Sim.Time.us 20);
                     ignore (Popcorn.Api.migrate worker ~dst:((i + 1) mod 2));
                     Popcorn.Api.compute worker (Sim.Time.us 20);
                     Workloads.Latch.arrive latch))
            done;
            Workloads.Latch.wait latch)
      in
      Popcorn.Api.wait_exit cluster proc);
  Sim.Engine.run eng;
  Sim.Engine.now eng

(* --- causal event log: shape and determinism --- *)

let test_causal_dag_shape () =
  let sink = Obs.Sink.create () in
  ignore (run_workload ~sink ~seed:42 ());
  let events = Obs.Causal.events sink.Obs.Sink.causal in
  let sends = Hashtbl.create 64 in
  List.iter
    (fun (e : Obs.Causal.event) ->
      match e with
      | Obs.Causal.Send { id; run; at; _ } -> Hashtbl.replace sends (run, id) at
      | _ -> ())
    events;
  Alcotest.(check bool) "messages were recorded" true (Hashtbl.length sends > 0);
  (* Every delivery matches an earlier send; fault-free fabric loses none. *)
  let delivers = ref 0 in
  List.iter
    (fun (e : Obs.Causal.event) ->
      match e with
      | Obs.Causal.Deliver { id; run; at; _ } -> (
          incr delivers;
          match Hashtbl.find_opt sends (run, id) with
          | Some send_at ->
              Alcotest.(check bool) "deliver after send" true (at >= send_at)
          | None -> Alcotest.fail "delivery without a matching send")
      | _ -> ())
    events;
  Alcotest.(check int) "nothing lost" (Hashtbl.length sends) !delivers;
  (* The cross-kernel chain exists: each Import span is linked to a message
     that was sent from a Transfer span. *)
  let spans = Obs.Span.spans sink.Obs.Sink.spans in
  let kind_of_sid = Hashtbl.create 64 in
  List.iter
    (fun (s : Obs.Span.span) ->
      Hashtbl.replace kind_of_sid (s.Obs.Span.run, s.Obs.Span.id)
        (Obs.Span.kind_name s.Obs.Span.kind))
    spans;
  let send_from = Hashtbl.create 64 in
  List.iter
    (fun (e : Obs.Causal.event) ->
      match e with
      | Obs.Causal.Send { id; run; from_span = Some sp; _ } ->
          Hashtbl.replace send_from (run, id) sp
      | _ -> ())
    events;
  let import_links =
    List.filter
      (fun (e : Obs.Causal.event) ->
        match e with
        | Obs.Causal.Link { id; run; span } -> (
            Hashtbl.find_opt kind_of_sid (run, span) = Some "import"
            &&
            match Hashtbl.find_opt send_from (run, id) with
            | Some sender ->
                Hashtbl.find_opt kind_of_sid (run, sender) = Some "transfer"
            | None -> false)
        | _ -> false)
      events
  in
  Alcotest.(check int) "transfer -> wire -> import chain per migration" 2
    (List.length import_links)

let test_causal_deterministic () =
  let once () =
    let sink = Obs.Sink.create () in
    ignore (run_workload ~sink ~seed:7 ());
    ( Obs.Json.to_string (Obs.Causal.to_json sink.Obs.Sink.causal),
      Obs.Json.to_string
        (Obs.Critpath.ispans_to_json
           (Obs.Critpath.ispans_of_recorder sink.Obs.Sink.spans)) )
  in
  let c1, s1 = once () in
  let c2, s2 = once () in
  Alcotest.(check string) "causal log reproducible" c1 c2;
  Alcotest.(check string) "span forest reproducible" s1 s2

let test_causal_json_roundtrip () =
  let sink = Obs.Sink.create () in
  ignore (run_workload ~sink ~seed:11 ());
  let events = Obs.Causal.events sink.Obs.Sink.causal in
  let decoded =
    Obs.Causal.events_of_json (Obs.Causal.to_json sink.Obs.Sink.causal)
  in
  Alcotest.(check int) "all events decode" (List.length events)
    (List.length decoded);
  Alcotest.(check bool) "roundtrip is the identity" true (events = decoded)

(* --- critical path of a hand-built 3-kernel migration --- *)

let ispan ?parent ?tid ~sid ~kind ~kernel ~start ~stop () =
  { Obs.Critpath.sid; parent; kind; kernel; tid; run = 0; start; stop }

let test_critical_path_known_chain () =
  (* Migration k0 -> k2 with a forwarding hop on k1 (three kernels on the
     causal chain). Known longest chain covers the whole root window. *)
  let root = ispan ~sid:0 ~kind:"migration" ~kernel:0 ~start:0 ~stop:1000 () in
  let spans =
    [
      root;
      ispan ~sid:1 ~parent:0 ~kind:"context_capture" ~kernel:0 ~start:0
        ~stop:200 ();
      ispan ~sid:2 ~parent:0 ~kind:"transfer" ~kernel:0 ~start:200 ~stop:800 ();
      ispan ~sid:3 ~kind:"forward" ~kernel:1 ~start:400 ~stop:450 ();
      ispan ~sid:4 ~kind:"import" ~kernel:2 ~start:550 ~stop:700 ();
      ispan ~sid:5 ~parent:0 ~kind:"resume" ~kernel:2 ~start:800 ~stop:950 ();
      (* An unrelated concurrent span must not appear in the path. *)
      ispan ~sid:6 ~kind:"page_fault" ~kernel:3 ~start:100 ~stop:900 ();
    ]
  in
  let causal =
    [
      Obs.Causal.Send
        { id = 1; run = 0; src = 0; dst = 1; at = 250; bytes = 64;
          from_span = Some 2 };
      Obs.Causal.Deliver { id = 1; run = 0; dst = 1; at = 400 };
      Obs.Causal.Link { id = 1; run = 0; span = 3 };
      Obs.Causal.Send
        { id = 2; run = 0; src = 1; dst = 2; at = 450; bytes = 64;
          from_span = Some 3 };
      Obs.Causal.Deliver { id = 2; run = 0; dst = 2; at = 550 };
      Obs.Causal.Link { id = 2; run = 0; span = 4 };
      Obs.Causal.Send
        { id = 3; run = 0; src = 2; dst = 0; at = 700; bytes = 32;
          from_span = Some 4 };
      Obs.Causal.Deliver { id = 3; run = 0; dst = 0; at = 800 };
    ]
  in
  let p = Obs.Critpath.critical_path ~spans ~causal ~root in
  Alcotest.(check int) "total is the root duration" 1000 p.Obs.Critpath.total_ns;
  let segs =
    List.map
      (fun (s : Obs.Critpath.seg) ->
        (s.Obs.Critpath.label, s.Obs.Critpath.seg_start, s.Obs.Critpath.seg_stop))
      p.Obs.Critpath.segs
  in
  Alcotest.(check (list (triple string int int)))
    "known longest chain"
    [
      ("context_capture@k0", 0, 200);
      ("transfer@k0", 200, 250);
      ("wire k0->k1", 250, 400);
      ("forward@k1", 400, 450);
      ("wire k1->k2", 450, 550);
      ("import@k2", 550, 700);
      ("wire k2->k0", 700, 800);
      ("resume@k2", 800, 950);
      ("migration@k0", 950, 1000);
    ]
    segs;
  let sum =
    List.fold_left (fun a (_, s, e) -> a + e - s) 0 segs
  in
  Alcotest.(check int) "segments sum exactly to end-to-end latency" 1000 sum

let test_critical_path_of_real_run () =
  (* On a live run, every migration's critical path must partition its
     window exactly (the sum-exact acceptance property). *)
  let sink = Obs.Sink.create () in
  ignore (run_workload ~sink ~seed:42 ());
  let spans = Obs.Critpath.ispans_of_recorder sink.Obs.Sink.spans in
  let causal = Obs.Causal.events sink.Obs.Sink.causal in
  let roots = Obs.Critpath.roots ~spans ~kind:"migration" in
  Alcotest.(check int) "two migrations analyzed" 2 (List.length roots);
  List.iter
    (fun root ->
      let p = Obs.Critpath.critical_path ~spans ~causal ~root in
      let sum =
        List.fold_left
          (fun a (s : Obs.Critpath.seg) ->
            a + s.Obs.Critpath.seg_stop - s.Obs.Critpath.seg_start)
          0 p.Obs.Critpath.segs
      in
      Alcotest.(check int) "segments sum to migration latency"
        p.Obs.Critpath.total_ns sum;
      Alcotest.(check bool) "path crosses the wire" true
        (List.exists (fun (s : Obs.Critpath.seg) -> s.Obs.Critpath.on_wire)
           p.Obs.Critpath.segs))
    roots

(* --- analyze / diff documents --- *)

let doc_with_hist ~mean ~failed =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "popcornsim-bench-v2");
      ( "experiments",
        Obs.Json.Arr
          [
            Obs.Json.Obj
              [
                ("id", Obs.Json.Str "T1");
                ( "metrics",
                  Obs.Json.Obj
                    [
                      ( "counters",
                        Obs.Json.Arr
                          [
                            Obs.Json.Obj
                              [
                                ("name", Obs.Json.Str "migration.failed");
                                ("kernel", Obs.Json.Null);
                                ("value", Obs.Json.Int failed);
                              ];
                          ] );
                      ("gauges", Obs.Json.Arr []);
                      ( "histograms",
                        Obs.Json.Arr
                          [
                            Obs.Json.Obj
                              [
                                ("name", Obs.Json.Str "migration.total_ns");
                                ("kernel", Obs.Json.Int 0);
                                ("count", Obs.Json.Int 4);
                                ("mean", Obs.Json.Float mean);
                                ("p50", Obs.Json.Float mean);
                                ("p99", Obs.Json.Float 20000.);
                                ("max", Obs.Json.Float 20000.);
                              ];
                          ] );
                    ] );
              ];
          ] );
    ]

let test_diff_flags_regression () =
  let old_doc = doc_with_hist ~mean:10000. ~failed:0 in
  let regressed = doc_with_hist ~mean:15000. ~failed:0 in
  let report, n = Obs.Report.diff ~fail_pct:10. ~old_doc ~new_doc:regressed () in
  Alcotest.(check int) "+50%% mean is a regression" 1 n;
  Alcotest.(check bool) "report names the metric" true
    (contains ~sub:"migration.total_ns.mean" report)

let test_diff_passes_unchanged () =
  let doc = doc_with_hist ~mean:10000. ~failed:0 in
  let _, n = Obs.Report.diff ~fail_pct:10. ~old_doc:doc ~new_doc:doc () in
  Alcotest.(check int) "identical docs: no regressions" 0 n

let test_diff_flags_failure_counter () =
  let old_doc = doc_with_hist ~mean:10000. ~failed:0 in
  let new_doc = doc_with_hist ~mean:10000. ~failed:2 in
  let _, n = Obs.Report.diff ~fail_pct:10. ~old_doc ~new_doc () in
  Alcotest.(check int) "failure-counter increase is a regression" 1 n

let test_analyze_real_doc () =
  (* End-to-end through the v2 results schema: serialize, reparse, analyze. *)
  let sink = Obs.Sink.create () in
  ignore (run_workload ~sink ~seed:42 ());
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "popcornsim-bench-v2");
        ( "experiments",
          Obs.Json.Arr
            [
              Obs.Json.Obj
                [
                  ("id", Obs.Json.Str "W");
                  ( "spans",
                    Obs.Critpath.ispans_to_json
                      (Obs.Critpath.ispans_of_recorder sink.Obs.Sink.spans) );
                  ("causal", Obs.Causal.to_json sink.Obs.Sink.causal);
                ];
            ] );
      ]
  in
  let reparsed =
    match Obs.Json.of_string (Obs.Json.to_string doc) with
    | Ok j -> j
    | Error e -> Alcotest.fail e
  in
  match Obs.Report.analyze_doc reparsed with
  | Ok report ->
      Alcotest.(check bool) "report has a critical path" true
        (contains ~sub:"critical path of slowest migration"
           report);
      Alcotest.(check bool) "sum is exact" true
        (contains ~sub:"sum exact" report)
  | Error e -> Alcotest.fail e

let test_analyze_tolerates_truncation () =
  (* Malformed span / causal entries (as from a truncated or hand-edited
     stream) are skipped; the analyzer still reports on what's left. *)
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "popcornsim-bench-v2");
        ( "experiments",
          Obs.Json.Arr
            [
              Obs.Json.Obj
                [
                  ("id", Obs.Json.Str "X");
                  ( "spans",
                    Obs.Json.Arr
                      [
                        Obs.Json.Obj
                          [
                            ("id", Obs.Json.Int 0);
                            ("kind", Obs.Json.Str "migration");
                            ("kernel", Obs.Json.Int 0);
                            ("run", Obs.Json.Int 0);
                            ("start", Obs.Json.Int 0);
                            ("stop", Obs.Json.Int (-1));
                            (* left open: clamped to end of run *)
                          ];
                        Obs.Json.Obj [ ("id", Obs.Json.Int 1) ];
                        (* truncated entry: skipped *)
                        Obs.Json.Str "garbage";
                      ] );
                  ( "causal",
                    Obs.Json.Arr
                      [
                        Obs.Json.Obj
                          [
                            ("ev", Obs.Json.Str "send");
                            ("id", Obs.Json.Int 9);
                            ("run", Obs.Json.Int 0);
                            ("src", Obs.Json.Int 0);
                            ("dst", Obs.Json.Int 1);
                            ("at", Obs.Json.Int 500);
                            ("bytes", Obs.Json.Int 8);
                            ("from_span", Obs.Json.Int 0);
                          ];
                        (* send with no deliver: a lost message *)
                        Obs.Json.Obj [ ("ev", Obs.Json.Str "deliver") ];
                        Obs.Json.Null;
                      ] );
                ];
            ] );
      ]
  in
  match Obs.Report.analyze_doc doc with
  | Ok report ->
      Alcotest.(check bool) "surviving span analyzed" true
        (contains ~sub:"spans: 1 (1 unclosed)" report);
      Alcotest.(check bool) "lost message surfaced" true
        (contains ~sub:"1 sent, 0 delivered, 1 lost" report)
  | Error e -> Alcotest.fail e

(* --- JSON parser --- *)

let test_json_parser_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("i", Obs.Json.Int 42);
        ("neg", Obs.Json.Int (-7));
        ("f", Obs.Json.Float 2.5);
        ("s", Obs.Json.Str "a\"b\\c\nd\tunicode \xe2\x9c\x93");
        ("null", Obs.Json.Null);
        ("t", Obs.Json.Bool true);
        ( "arr",
          Obs.Json.Arr
            [ Obs.Json.Int 1; Obs.Json.Obj [ ("k", Obs.Json.Str "v") ] ] );
        ("empty_obj", Obs.Json.Obj []);
        ("empty_arr", Obs.Json.Arr []);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string doc) with
  | Ok parsed ->
      Alcotest.(check string) "roundtrip identical"
        (Obs.Json.to_string doc)
        (Obs.Json.to_string parsed)
  | Error e -> Alcotest.fail e

let test_json_parser_rejects_garbage () =
  let bad s =
    match Obs.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "truncated object" true (bad {|{"a": [1, 2|});
  Alcotest.(check bool) "trailing garbage" true (bad {|{"a": 1} extra|});
  Alcotest.(check bool) "bare word" true (bad "flase");
  Alcotest.(check bool) "empty input" true (bad "");
  Alcotest.(check bool) "unterminated string" true (bad {|"abc|});
  match Obs.Json.of_string {| {"u": "é😀", "n": -0.5e2} |} with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid escapes rejected: %s" e

(* Malformed-input edges beyond plain garbage: truncation inside every
   construct, broken escapes, and duplicate keys (which must parse — the
   JSON spec allows them — with first-key-wins access, never a crash). *)
let test_json_malformed_edges () =
  let bad s =
    match Obs.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  (* Truncated objects, in every spot a token can end. *)
  Alcotest.(check bool) "cut after brace" true (bad {|{|});
  Alcotest.(check bool) "cut after key" true (bad {|{"a"|});
  Alcotest.(check bool) "cut after colon" true (bad {|{"a":|});
  Alcotest.(check bool) "cut after comma" true (bad {|{"a": 1,|});
  Alcotest.(check bool) "cut mid-nested" true (bad {|{"a": {"b": [{|});
  Alcotest.(check bool) "comma without pair" true (bad {|{"a": 1,}|});
  (* Broken string escapes. *)
  Alcotest.(check bool) "unknown escape" true (bad {|{"a": "\x"}|});
  Alcotest.(check bool) "truncated \\u" true (bad {|{"a": "\u12"}|});
  Alcotest.(check bool) "non-hex \\u" true (bad {|{"a": "\uzzzz"}|});
  Alcotest.(check bool) "lone backslash at end" true (bad {|{"a": "\|});
  (* Valid escapes still parse. *)
  (match Obs.Json.of_string {|{"a": "\n\t\\\"A"}|} with
  | Ok (Obs.Json.Obj [ ("a", Obs.Json.Str s) ]) ->
      Alcotest.(check string) "escapes decoded" "\n\t\\\"A" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.failf "valid escapes rejected: %s" e);
  (* Duplicate keys: parse succeeds, both pairs survive in order, and
     List.assoc-based access (what every of_json in the tree uses) sees
     the first — so a malicious/buggy producer cannot shadow a value. *)
  match Obs.Json.of_string {|{"k": 1, "k": 2}|} with
  | Ok (Obs.Json.Obj fields as j) ->
      Alcotest.(check int) "both pairs kept" 2 (List.length fields);
      (match List.assoc_opt "k" fields with
      | Some (Obs.Json.Int v) -> Alcotest.(check int) "first key wins" 1 v
      | _ -> Alcotest.fail "assoc lost the key");
      Alcotest.(check string) "reserialises both, in order"
        {|{"k":1,"k":2}|}
        (Obs.Json.to_string j)
  | Ok _ -> Alcotest.fail "duplicate keys parsed to a non-object"
  | Error e -> Alcotest.failf "duplicate keys rejected: %s" e

(* --- trace ring retained counter --- *)

let test_trace_retained_o1 () =
  let tr = Sim.Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Sim.Trace.emit tr ~at:i ~cat:"c" "e"
  done;
  Alcotest.(check int) "retained is capacity-bounded" 4 (Sim.Trace.count tr);
  Alcotest.(check int) "total counts evictions" 10 (Sim.Trace.total tr);
  Alcotest.(check int) "dropped = total - retained" 6
    (Sim.Trace.total tr - Sim.Trace.count tr);
  Sim.Trace.clear tr;
  Alcotest.(check int) "clear resets retained" 0 (Sim.Trace.count tr);
  Sim.Trace.emit tr ~at:1 ~cat:"c" "e";
  Alcotest.(check int) "counts again after clear" 1 (Sim.Trace.count tr)

(* --- unclosed spans clamp at export --- *)

let test_export_clamps_unclosed () =
  let rec_ = Obs.Span.create () in
  Obs.Span.new_run rec_;
  let open_span = Obs.Span.start rec_ ~kernel:0 ~at:100 Obs.Span.Migration in
  let closed = Obs.Span.start rec_ ~kernel:1 ~at:200 Obs.Span.Import in
  Obs.Span.finish closed ~at:800;
  ignore open_span;
  let doc = Obs.Export.chrome_trace ~spans:[ rec_ ] () in
  match Obs.Report.datasets_of_doc doc with
  | [ d ] -> (
      match
        List.find_opt
          (fun (s : Obs.Critpath.ispan) -> s.Obs.Critpath.kind = "migration")
          d.Obs.Report.spans
      with
      | Some s ->
          Alcotest.(check int) "clamped to end of run" 800 s.Obs.Critpath.stop
      | None -> Alcotest.fail "migration span missing from export")
  | ds -> Alcotest.failf "expected one dataset, got %d" (List.length ds)

let () =
  Alcotest.run "causal"
    [
      ( "causal-log",
        [
          Alcotest.test_case "happens-before shape" `Quick test_causal_dag_shape;
          Alcotest.test_case "deterministic across runs" `Quick
            test_causal_deterministic;
          Alcotest.test_case "json roundtrip" `Quick test_causal_json_roundtrip;
        ] );
      ( "critical-path",
        [
          Alcotest.test_case "hand-built 3-kernel chain" `Quick
            test_critical_path_known_chain;
          Alcotest.test_case "real run sums exactly" `Quick
            test_critical_path_of_real_run;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "v2 results document" `Quick test_analyze_real_doc;
          Alcotest.test_case "tolerates truncation" `Quick
            test_analyze_tolerates_truncation;
        ] );
      ( "diff",
        [
          Alcotest.test_case "flags +50%% regression" `Quick
            test_diff_flags_regression;
          Alcotest.test_case "passes unchanged run" `Quick
            test_diff_passes_unchanged;
          Alcotest.test_case "flags failure counter" `Quick
            test_diff_flags_failure_counter;
        ] );
      ( "json-parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_parser_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_json_parser_rejects_garbage;
          Alcotest.test_case "malformed edges" `Quick test_json_malformed_edges;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "trace retained O(1)" `Quick test_trace_retained_o1;
          Alcotest.test_case "export clamps unclosed spans" `Quick
            test_export_clamps_unclosed;
        ] );
    ]
