(* Protocol-level tests of the Popcorn subsystems: page-coherence
   invariants (single writer, read coherence), address-space consistency
   across replicas, migration fidelity, distributed futexes, and the
   single-system image. Includes randomized workloads whose final state is
   checked against the protocol invariants. *)

open Popcorn
module K = Kernelmodel

let page = 4096

let mk ?(kernels = 4) ?(cores_per_kernel = 4) ?opts ?seed () =
  let machine =
    Hw.Machine.create ?seed ~sockets:2
      ~cores_per_socket:(kernels * cores_per_kernel / 2)
      ()
  in
  (machine, Cluster.boot ?opts machine ~kernels ~cores_per_kernel)

let run machine = Sim.Engine.run machine.Hw.Machine.eng

let in_proc ?(origin = 0) (machine, cluster) main =
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc = Api.start_process cluster ~origin main in
      Api.wait_exit cluster proc);
  run machine

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* Scenario tests below run under both coherence protocols: the memory
   model they check is protocol-independent by design. *)
let proto_opts protocol =
  { Types.default_options with Types.coherence = protocol }

(* ------------------------------------------------------------------ *)
(* Invariant checkers (run at quiescence)                              *)
(* ------------------------------------------------------------------ *)

(* Across all kernels: at most one writable PTE per page, and a writable
   PTE excludes any other PTE for that page. *)
let check_single_writer cluster pid =
  let holders : (int, (int * bool) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (k : Types.kernel) ->
      match Types.find_replica k pid with
      | None -> ()
      | Some r ->
          K.Page_table.iter r.Types.pt (fun ~vpn pte ->
              let cur =
                match Hashtbl.find_opt holders vpn with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace holders vpn
                ((k.Types.kid, pte.K.Page_table.writable) :: cur)))
    cluster.Types.kernels;
  Hashtbl.iter
    (fun vpn l ->
      let writers = List.filter snd l in
      if List.length writers > 1 then
        Alcotest.failf "page %d has %d writers" vpn (List.length writers);
      if writers <> [] && List.length l > 1 then
        Alcotest.failf "page %d writable on k%d but replicated on %d kernels"
          vpn
          (fst (List.hd writers))
          (List.length l))
    holders

(* Any kernel holding a PTE must hold the latest committed content. *)
let check_read_coherence cluster pid =
  let proc = Types.proc_exn cluster pid in
  Array.iter
    (fun (k : Types.kernel) ->
      match Types.find_replica k pid with
      | None -> ()
      | Some r ->
          K.Page_table.iter r.Types.pt (fun ~vpn _ ->
              let latest =
                match Hashtbl.find_opt proc.Types.page_version vpn with
                | Some v -> v
                | None -> 0
              in
              let held =
                match Hashtbl.find_opt r.Types.page_data vpn with
                | Some v -> v
                | None -> 0
              in
              if held <> latest then
                Alcotest.failf "kernel %d holds v%d of page %d, latest is v%d"
                  k.Types.kid held vpn latest))
    cluster.Types.kernels

(* Every replica VMA must agree (range and prot) with the origin layout. *)
let check_vma_agreement cluster pid =
  let proc = Types.proc_exn cluster pid in
  let origin = Types.kernel_of cluster proc.Types.origin in
  let master = (Types.replica_exn origin pid).Types.vmas in
  Array.iter
    (fun (k : Types.kernel) ->
      if k.Types.kid <> proc.Types.origin then
        match Types.find_replica k pid with
        | None -> ()
        | Some r ->
            List.iter
              (fun (v : K.Vma.vma) ->
                let rec covered addr =
                  if addr >= K.Vma.vma_end v then true
                  else
                    match K.Vma.find master addr with
                    | Some mv when mv.K.Vma.prot = v.K.Vma.prot ->
                        covered (K.Vma.vma_end mv)
                    | _ -> false
                in
                if not (covered v.K.Vma.start) then
                  Alcotest.failf
                    "kernel %d replica vma %x+%x disagrees with origin"
                    k.Types.kid v.K.Vma.start v.K.Vma.len)
              (K.Vma.vmas r.Types.vmas))
    cluster.Types.kernels

(* Directory writer/readers agree with actual PTE state. *)
let check_directory cluster pid =
  let proc = Types.proc_exn cluster pid in
  Hashtbl.iter
    (fun vpn (loc : Types.page_loc) ->
      match loc.Types.writer with
      | Some w -> (
          match Types.find_replica (Types.kernel_of cluster w) pid with
          | None -> Alcotest.failf "directory writer k%d has no replica" w
          | Some r -> (
              match K.Page_table.get r.Types.pt ~vpn with
              | Some pte ->
                  if not pte.K.Page_table.writable then
                    Alcotest.failf "directory says k%d writes %d; pte is ro" w
                      vpn
              | None ->
                  Alcotest.failf "directory says k%d writes %d; no pte" w vpn))
      | None -> ())
    proc.Types.directory

let check_all cluster pid =
  check_single_writer cluster pid;
  check_read_coherence cluster pid;
  check_vma_agreement cluster pid;
  check_directory cluster pid

(* ------------------------------------------------------------------ *)
(* Scenario tests                                                      *)
(* ------------------------------------------------------------------ *)

let test_write_read_across_kernels protocol () =
  let sys = mk ~opts:(proto_opts protocol) () in
  let _, cluster = sys in
  let the_pid = ref 0 in
  in_proc sys (fun th ->
      the_pid := Api.pid th;
      let vma = ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw) in
      let addr = vma.K.Vma.start in
      (* Write 3 times at origin; remote reader must see version 3. *)
      for _ = 1 to 3 do
        ok (Api.write th ~addr)
      done;
      let done_ = Workloads.Latch.create (Types.eng cluster) 1 in
      ignore
        (Api.spawn th ~target:2 (fun child ->
             Alcotest.(check int) "sees latest" 3 (ok (Api.read child ~addr));
             (* Remote write bumps to 4... *)
             ok (Api.write child ~addr);
             Workloads.Latch.arrive done_));
      Workloads.Latch.wait done_;
      (* ...and the origin re-reads coherently. *)
      Alcotest.(check int) "origin sees remote write" 4
        (ok (Api.read th ~addr)));
  check_all cluster !the_pid

let test_write_invalidates_readers protocol () =
  let sys = mk ~opts:(proto_opts protocol) () in
  let _, cluster = sys in
  let the_pid = ref 0 in
  in_proc sys (fun th ->
      the_pid := Api.pid th;
      let vma = ok (Api.mmap th ~len:page ~prot:K.Vma.prot_rw) in
      let addr = vma.K.Vma.start in
      ok (Api.write th ~addr);
      (* Three remote kernels replicate the page read-only. *)
      let latch = Workloads.Latch.create (Types.eng cluster) 3 in
      for k = 1 to 3 do
        ignore
          (Api.spawn th ~target:k (fun child ->
               Alcotest.(check int) "replica read" 1 (ok (Api.read child ~addr));
               Workloads.Latch.arrive latch))
      done;
      Workloads.Latch.wait latch;
      (* Origin writes again: all replicas must be invalidated. *)
      ok (Api.write th ~addr);
      Array.iter
        (fun (k : Types.kernel) ->
          if k.Types.kid <> 0 then
            match Types.find_replica k (Api.pid th) with
            | None -> ()
            | Some r ->
                Alcotest.(check bool)
                  (Printf.sprintf "kernel %d invalidated" k.Types.kid)
                  true
                  (K.Page_table.get r.Types.pt
                     ~vpn:(K.Page_table.vpn_of_addr addr)
                  = None))
        cluster.Types.kernels);
  check_all cluster !the_pid

let test_migration_preserves_context () =
  let sys = mk () in
  in_proc sys (fun th ->
      Api.compute th (Sim.Time.us 3);
      let _ = Api.migrate th ~dst:1 in
      let d1 = K.Context.digest th.Api.task.K.Task.ctx in
      let _ = Api.migrate th ~dst:3 in
      let d2 = K.Context.digest th.Api.task.K.Task.ctx in
      Alcotest.(check bool) "ctx evolves deterministically" true (d1 <> d2);
      Alcotest.(check int) "migrations counted" 2 th.Api.task.K.Task.migrations;
      Alcotest.(check int) "hosted by k3" 3 th.Api.task.K.Task.kernel)

let test_migration_roundtrip_and_pages () =
  let sys = mk () in
  let _, cluster = sys in
  let the_pid = ref 0 in
  in_proc sys (fun th ->
      the_pid := Api.pid th;
      let vma = ok (Api.mmap th ~len:(4 * page) ~prot:K.Vma.prot_rw) in
      let addr = vma.K.Vma.start in
      ok (Api.write th ~addr);
      let _ = Api.migrate th ~dst:2 in
      (* Page follows the thread on demand. *)
      Alcotest.(check int) "page followed" 1 (ok (Api.read th ~addr));
      ok (Api.write th ~addr);
      let _ = Api.migrate th ~dst:0 in
      Alcotest.(check int) "back home, still coherent" 2
        (ok (Api.read th ~addr)));
  check_all cluster !the_pid

let test_munmap_across_kernels () =
  let sys = mk () in
  let _, cluster = sys in
  let the_pid = ref 0 in
  in_proc sys (fun th ->
      the_pid := Api.pid th;
      let vma = ok (Api.mmap th ~len:(4 * page) ~prot:K.Vma.prot_rw) in
      let addr = vma.K.Vma.start in
      let latch = Workloads.Latch.create (Types.eng cluster) 1 in
      ignore
        (Api.spawn th ~target:3 (fun child ->
             ok (Api.write child ~addr);
             Workloads.Latch.arrive latch));
      Workloads.Latch.wait latch;
      (* Unmap from the origin; kernel 3's replica must drop everything. *)
      ok (Api.munmap th ~start:addr ~len:(4 * page));
      (match Api.read th ~addr with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read after munmap succeeded");
      let r3 = Types.replica_exn (Types.kernel_of cluster 3) (Api.pid th) in
      Alcotest.(check bool) "k3 dropped pte" true
        (K.Page_table.get r3.Types.pt ~vpn:(K.Page_table.vpn_of_addr addr)
        = None));
  check_all cluster !the_pid

let test_mprotect_enforced_remotely () =
  let sys = mk () in
  let _, cluster = sys in
  in_proc sys (fun th ->
      let vma = ok (Api.mmap th ~len:(2 * page) ~prot:K.Vma.prot_rw) in
      let addr = vma.K.Vma.start in
      let latch = Workloads.Latch.create (Types.eng cluster) 1 in
      ignore
        (Api.spawn th ~target:1 (fun child ->
             ok (Api.write child ~addr);
             Workloads.Latch.arrive latch));
      Workloads.Latch.wait latch;
      ok (Api.mprotect th ~start:addr ~len:(2 * page) ~prot:K.Vma.prot_r);
      let latch2 = Workloads.Latch.create (Types.eng cluster) 1 in
      ignore
        (Api.spawn th ~target:1 (fun child ->
             (* Reads still fine, writes now refused — also on kernel 1. *)
             ignore (ok (Api.read child ~addr));
             (match Api.write child ~addr with
             | Error _ -> ()
             | Ok () -> Alcotest.fail "write after mprotect r/o succeeded");
             Workloads.Latch.arrive latch2));
      Workloads.Latch.wait latch2)

let test_no_messages_for_local_process () =
  (* The fast-path claim: a single-kernel process performs mmap/fault/futex
     without a single inter-kernel message. *)
  let machine, cluster = mk () in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:1 (fun th ->
            let vma = ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw) in
            for i = 0 to 7 do
              ok (Api.write th ~addr:(vma.K.Vma.start + (i * page)))
            done;
            ignore (Api.futex_wake th ~addr:vma.K.Vma.start ~count:1);
            ok (Api.munmap th ~start:vma.K.Vma.start ~len:(8 * page)))
      in
      Api.wait_exit cluster proc);
  Msg.Transport.reset_stats cluster.Types.fabric;
  run machine;
  let st = Msg.Transport.stats cluster.Types.fabric in
  Alcotest.(check int) "zero messages" 0 st.Msg.Transport.sent

let test_group_exit_wakes_waiters () =
  let machine, cluster = mk () in
  let observed = ref (-1) in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            for k = 1 to 3 do
              ignore
                (Api.spawn th ~target:k (fun child ->
                     Api.compute child (Sim.Time.us (100 * k))))
            done;
            Api.compute th (Sim.Time.us 50))
      in
      Api.wait_exit cluster proc;
      observed := proc.Types.live_threads);
  run machine;
  Alcotest.(check int) "all threads exited" 0 !observed

let test_ssi_global_tasks () =
  let machine, cluster = mk () in
  let listed = ref [] in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let latch = Workloads.Latch.create (Types.eng cluster) 3 in
            let gate = Workloads.Latch.create (Types.eng cluster) 1 in
            for k = 1 to 3 do
              ignore
                (Api.spawn th ~target:k (fun child ->
                     Workloads.Latch.arrive latch;
                     Workloads.Latch.wait gate;
                     ignore child))
            done;
            Workloads.Latch.wait latch;
            listed := Api.global_tasks th;
            Workloads.Latch.arrive gate)
      in
      Api.wait_exit cluster proc);
  run machine;
  Alcotest.(check int) "four live threads listed" 4 (List.length !listed);
  let tids = List.map fst !listed in
  Alcotest.(check bool) "tids unique" true
    (List.length (List.sort_uniq compare tids) = List.length tids)

let test_dfutex_timeout () =
  let sys = mk () in
  let _, cluster = sys in
  in_proc sys (fun th ->
      let result = ref Api.Woken in
      let latch = Workloads.Latch.create (Types.eng cluster) 1 in
      ignore
        (Api.spawn th ~target:2 (fun child ->
             result :=
               Api.futex_wait child ~timeout:(Sim.Time.us 50) ~addr:0x800000 ();
             Workloads.Latch.arrive latch));
      Workloads.Latch.wait latch;
      Alcotest.(check bool) "timed out" true (!result = Api.Timed_out);
      (* A wake after the timeout wakes nobody. *)
      Api.compute th (Sim.Time.us 10);
      Alcotest.(check int) "nobody woken" 0
        (Api.futex_wake th ~addr:0x800000 ~count:1))

let test_dfutex_wake_count () =
  let sys = mk () in
  let _, cluster = sys in
  in_proc sys (fun th ->
      let addr = 0x800000 in
      let parked = Workloads.Latch.create (Types.eng cluster) 4 in
      let woken = ref 0 in
      for k = 0 to 3 do
        ignore
          (Api.spawn th ~target:k (fun child ->
               (match Api.futex_wait child ~addr () with
               | Api.Woken -> incr woken
               | Api.Timed_out -> ());
               Workloads.Latch.arrive parked))
      done;
      Api.compute th (Sim.Time.ms 1);
      (* Wake exactly 2, then the rest. *)
      let n = ref 0 in
      while !n < 2 do
        n := !n + Api.futex_wake th ~addr ~count:(2 - !n);
        if !n < 2 then Api.compute th (Sim.Time.us 100)
      done;
      Api.compute th (Sim.Time.ms 1);
      Alcotest.(check int) "exactly two woken so far" 2 !woken;
      let m = ref 0 in
      while !m < 2 do
        m := !m + Api.futex_wake th ~addr ~count:10;
        if !m < 2 then Api.compute th (Sim.Time.us 100)
      done;
      Workloads.Latch.wait parked)

let test_error_paths () =
  let sys = mk () in
  in_proc sys (fun th ->
      (* Unmapped access is a segfault, not a crash. *)
      (match Api.read th ~addr:0x1234_5000 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read of unmapped succeeded");
      (* mmap argument validation. *)
      (match Api.mmap th ~len:123 ~prot:K.Vma.prot_rw with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "unaligned mmap accepted");
      (* munmap over a hole is fine (POSIX), munmap unaligned is not. *)
      (match Api.munmap th ~start:0x7000_0000_0000 ~len:page with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (match Api.munmap th ~start:0x7000_0000_0001 ~len:page with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "unaligned munmap accepted");
      (* Waking a futex nobody waits on. *)
      Alcotest.(check int) "wake none" 0
        (Api.futex_wake th ~addr:0xDEAD000 ~count:5);
      (* Writes to a read-only region are refused on every kernel. *)
      let vma = ok (Api.mmap th ~len:page ~prot:K.Vma.prot_r) in
      match Api.write th ~addr:vma.K.Vma.start with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "write to r/o accepted")

(* ------------------------------------------------------------------ *)
(* Cross-protocol equivalence                                          *)
(* ------------------------------------------------------------------ *)

(* Both protocols implement the same single-writer memory model; they may
   only differ in timing and message routing. A seeded, strictly
   sequential op stream — one thread migrating across all four kernels,
   reading, writing and punching munmap holes — must therefore produce
   identical read values, identical error steps and an identical final
   page-version table under either protocol. *)
type proto_trace = {
  reads : (int * int) list;  (** (step, value read) *)
  errors : (int * string) list;  (** (step, segfault/error text) *)
  versions : (int * int) list;  (** final (vpn, version), sorted *)
}

let protocol_trace protocol ~seed =
  let sys = mk ~kernels:4 ~opts:(proto_opts protocol) ~seed () in
  let machine, cluster = sys in
  let the_proc = ref None in
  let reads = ref [] and errors = ref [] in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            let rng = Sim.Prng.create ~seed in
            let shared = ok (Api.mmap th ~len:(24 * page) ~prot:K.Vma.prot_rw) in
            let base = shared.K.Vma.start in
            let record step = function
              | Ok v -> reads := (step, v) :: !reads
              | Error e -> errors := (step, e) :: !errors
            in
            for step = 1 to 150 do
              let addr = base + (Sim.Prng.int rng 24 * page) in
              match Sim.Prng.int rng 12 with
              | 0 | 1 | 2 | 3 -> record step (Api.read th ~addr)
              | 4 | 5 | 6 | 7 | 8 ->
                  record step (Result.map (fun () -> -1) (Api.write th ~addr))
              | 9 | 10 -> ignore (Api.migrate th ~dst:(Sim.Prng.int rng 4))
              | _ ->
                  let len = (1 + Sim.Prng.int rng 4) * page in
                  record step
                    (Result.map (fun () -> -2) (Api.munmap th ~start:addr ~len))
            done)
      in
      the_proc := Some proc;
      Api.wait_exit cluster proc);
  run machine;
  let proc = Option.get !the_proc in
  let versions =
    Hashtbl.fold (fun vpn v acc -> (vpn, v) :: acc) proc.Types.page_version []
    |> List.sort compare
  in
  { reads = List.rev !reads; errors = List.rev !errors; versions }

let test_protocol_equivalence () =
  List.iter
    (fun seed ->
      let a = protocol_trace Coherence.Protocol.Origin_home ~seed in
      let b = protocol_trace Coherence.Protocol.Sharded_dir ~seed in
      Alcotest.(check (list (pair int int))) "read values agree" a.reads b.reads;
      Alcotest.(check (list (pair int string)))
        "segfault steps agree" a.errors b.errors;
      Alcotest.(check (list (pair int int)))
        "final page versions agree" a.versions b.versions)
    [ 11; 23; 4242 ]

(* ------------------------------------------------------------------ *)
(* drop_range edge cases                                               *)
(* ------------------------------------------------------------------ *)

(* A partial munmap whose range spans origin-owned, remotely-owned,
   read-replicated and never-touched pages must clean up exactly the
   directory entries, versions and fault locks inside the hole — on
   whichever kernel homes each page — and leave the rest coherent. *)
let test_drop_range_edges protocol () =
  let sys = mk ~opts:(proto_opts protocol) () in
  let _, cluster = sys in
  let the_pid = ref 0 in
  in_proc sys (fun th ->
      the_pid := Api.pid th;
      let vma = ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw) in
      let base = vma.K.Vma.start in
      let vpn i = K.Page_table.vpn_of_addr (base + (i * page)) in
      (* Pages 0,1 owned at the origin... *)
      ok (Api.write th ~addr:base);
      ok (Api.write th ~addr:(base + page));
      let latch = Workloads.Latch.create (Types.eng cluster) 1 in
      ignore
        (Api.spawn th ~target:2 (fun child ->
             (* ...3,4 owned on kernel 2, 1 also read-replicated there... *)
             ok (Api.write child ~addr:(base + (3 * page)));
             ok (Api.write child ~addr:(base + (4 * page)));
             ignore (ok (Api.read child ~addr:(base + page)));
             Workloads.Latch.arrive latch));
      Workloads.Latch.wait latch;
      (* ...and 6,7 never touched. Unmap the middle six pages. *)
      ok (Api.munmap th ~start:(base + page) ~len:(6 * page));
      let proc = th.Api.proc in
      for i = 1 to 6 do
        Alcotest.(check bool)
          (Printf.sprintf "page %d directory entry dropped" i)
          true
          (Option.is_none (Hashtbl.find_opt proc.Types.directory (vpn i)));
        Alcotest.(check bool)
          (Printf.sprintf "page %d version dropped" i)
          true
          (Option.is_none (Hashtbl.find_opt proc.Types.page_version (vpn i)));
        Alcotest.(check bool)
          (Printf.sprintf "page %d fault lock dropped" i)
          true
          (Option.is_none (Hashtbl.find_opt proc.Types.fault_locks (vpn i)))
      done;
      (* Outside the hole page 0 keeps its history... *)
      Alcotest.(check int) "page 0 still coherent" 1 (ok (Api.read th ~addr:base));
      (* ...while the hole segfaults on every kernel. *)
      (match Api.read th ~addr:(base + (3 * page)) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read in hole succeeded");
      let latch2 = Workloads.Latch.create (Types.eng cluster) 1 in
      ignore
        (Api.spawn th ~target:2 (fun child ->
             (match Api.read child ~addr:(base + (4 * page)) with
             | Error _ -> ()
             | Ok _ -> Alcotest.fail "remote read in hole succeeded");
             Workloads.Latch.arrive latch2));
      Workloads.Latch.wait latch2);
  check_all cluster !the_pid

(* The documented trade-off of the sharded directory: pages hash to homes
   irrespective of the origin, so even a single-kernel process messages the
   remote shards its pages land on (cf. the origin-home zero-message test
   above). *)
let test_sharded_homes_off_origin () =
  let machine, cluster =
    mk ~opts:(proto_opts Coherence.Protocol.Sharded_dir) ()
  in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:1 (fun th ->
            let vma = ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw) in
            for i = 0 to 7 do
              ok (Api.write th ~addr:(vma.K.Vma.start + (i * page)))
            done)
      in
      Api.wait_exit cluster proc);
  Msg.Transport.reset_stats cluster.Types.fabric;
  run machine;
  let st = Msg.Transport.stats cluster.Types.fabric in
  Alcotest.(check bool) "remote shards were consulted" true
    (st.Msg.Transport.sent > 0)

(* ------------------------------------------------------------------ *)
(* Randomized workload + invariant check                               *)
(* ------------------------------------------------------------------ *)

let random_workload ?opts ~seed ~kernels ~threads ~steps () =
  let sys = mk ~kernels ?opts ~seed () in
  let machine, cluster = sys in
  let the_pid = ref 0 in
  let rng = Sim.Prng.create ~seed in
  Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
      let proc =
        Api.start_process cluster ~origin:0 (fun th ->
            the_pid := Api.pid th;
            (* Shared region all threads fault on. *)
            let shared = ok (Api.mmap th ~len:(16 * page) ~prot:K.Vma.prot_rw) in
            let latch = Workloads.Latch.create (Types.eng cluster) threads in
            for _ = 1 to threads do
              let target = Sim.Prng.int rng kernels in
              ignore
                (Api.spawn th ~target (fun child ->
                     for _ = 1 to steps do
                       let addr =
                         shared.K.Vma.start + (Sim.Prng.int rng 16 * page)
                       in
                       match Sim.Prng.int rng 4 with
                       | 0 -> ignore (ok (Api.read child ~addr))
                       | 1 -> ok (Api.write child ~addr)
                       | 2 -> Api.compute child (Sim.Time.us 5)
                       | _ ->
                           let dst = Sim.Prng.int rng kernels in
                           ignore (Api.migrate child ~dst)
                     done;
                     Workloads.Latch.arrive latch))
            done;
            Workloads.Latch.wait latch)
      in
      Api.wait_exit cluster proc);
  run machine;
  (cluster, !the_pid)

(* The determinism claim, end to end: identical seeds give bit-identical
   simulations — same final clock, same message counts, same event count. *)
let test_whole_system_determinism () =
  let drive (machine, cluster) ~seed =
    let rng = Sim.Prng.create ~seed in
    Sim.Engine.spawn machine.Hw.Machine.eng (fun () ->
        let proc =
          Api.start_process cluster ~origin:0 (fun th ->
              let shared =
                ok (Api.mmap th ~len:(8 * page) ~prot:K.Vma.prot_rw)
              in
              let latch = Workloads.Latch.create (Types.eng cluster) 5 in
              for _ = 1 to 5 do
                ignore
                  (Api.spawn th ~target:(Sim.Prng.int rng 4) (fun child ->
                       for _ = 1 to 10 do
                         let addr =
                           shared.K.Vma.start + (Sim.Prng.int rng 8 * page)
                         in
                         if Sim.Prng.bool rng then ok (Api.write child ~addr)
                         else
                           ignore
                             (Api.migrate child ~dst:(Sim.Prng.int rng 4))
                       done;
                       Workloads.Latch.arrive latch))
              done;
              Workloads.Latch.wait latch)
        in
        Api.wait_exit cluster proc);
    run machine
  in
  (* The determinism claim, end to end: identical seeds give bit-identical
     simulations — same final clock, same message and event counts. *)
  let fingerprint seed =
    let sys = mk ~seed () in
    let machine, cluster = sys in
    drive sys ~seed;
    let st = Msg.Transport.stats cluster.Types.fabric in
    ( Sim.Engine.now machine.Hw.Machine.eng,
      Sim.Engine.events_processed machine.Hw.Machine.eng,
      st.Msg.Transport.sent,
      st.Msg.Transport.doorbells )
  in
  let a = fingerprint 77 and b = fingerprint 77 and c = fingerprint 78 in
  Alcotest.(check bool) "same seed, same universe" true (a = b);
  Alcotest.(check bool) "different seed, different universe" true (a <> c)

let test_random_invariants () =
  List.iter
    (fun seed ->
      let cluster, pid =
        random_workload ~seed ~kernels:4 ~threads:8 ~steps:30 ()
      in
      check_all cluster pid)
    [ 1; 2; 3; 42; 1337 ]

let test_random_invariants_sharded () =
  let opts = proto_opts Coherence.Protocol.Sharded_dir in
  List.iter
    (fun seed ->
      let cluster, pid =
        random_workload ~opts ~seed ~kernels:4 ~threads:8 ~steps:30 ()
      in
      check_all cluster pid)
    [ 1; 2; 42; 1337 ]

let prop_random_coherence =
  QCheck.Test.make ~name:"random workload keeps coherence invariants"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let cluster, pid =
        random_workload ~seed ~kernels:4 ~threads:6 ~steps:15 ()
      in
      check_all cluster pid;
      true)

let () =
  Alcotest.run "popcorn-protocols"
    [
      ( "coherence",
        [
          Alcotest.test_case "write/read across kernels (origin)" `Quick
            (test_write_read_across_kernels Coherence.Protocol.Origin_home);
          Alcotest.test_case "write/read across kernels (sharded)" `Quick
            (test_write_read_across_kernels Coherence.Protocol.Sharded_dir);
          Alcotest.test_case "write invalidates readers (origin)" `Quick
            (test_write_invalidates_readers Coherence.Protocol.Origin_home);
          Alcotest.test_case "write invalidates readers (sharded)" `Quick
            (test_write_invalidates_readers Coherence.Protocol.Sharded_dir);
          Alcotest.test_case "protocols are memory-model equivalent" `Quick
            test_protocol_equivalence;
        ] );
      ( "migration",
        [
          Alcotest.test_case "context preserved" `Quick
            test_migration_preserves_context;
          Alcotest.test_case "roundtrip with pages" `Quick
            test_migration_roundtrip_and_pages;
        ] );
      ( "addr-space",
        [
          Alcotest.test_case "munmap across kernels" `Quick
            test_munmap_across_kernels;
          Alcotest.test_case "mprotect enforced remotely" `Quick
            test_mprotect_enforced_remotely;
          Alcotest.test_case "local process sends no messages" `Quick
            test_no_messages_for_local_process;
          Alcotest.test_case "drop_range edge cases (origin)" `Quick
            (test_drop_range_edges Coherence.Protocol.Origin_home);
          Alcotest.test_case "drop_range edge cases (sharded)" `Quick
            (test_drop_range_edges Coherence.Protocol.Sharded_dir);
          Alcotest.test_case "sharded homes pages off-origin" `Quick
            test_sharded_homes_off_origin;
        ] );
      ( "groups+ssi",
        [
          Alcotest.test_case "group exit wakes waiters" `Quick
            test_group_exit_wakes_waiters;
          Alcotest.test_case "global task list" `Quick test_ssi_global_tasks;
        ] );
      ( "errors",
        [ Alcotest.test_case "syscall error paths" `Quick test_error_paths ] );
      ( "dfutex",
        [
          Alcotest.test_case "timeout" `Quick test_dfutex_timeout;
          Alcotest.test_case "wake count" `Quick test_dfutex_wake_count;
        ] );
      ( "random",
        Alcotest.test_case "whole-system determinism" `Quick
          test_whole_system_determinism
        :: Alcotest.test_case "seeded invariant runs" `Quick
          test_random_invariants
        :: Alcotest.test_case "seeded invariant runs (sharded)" `Quick
          test_random_invariants_sharded
        :: List.map QCheck_alcotest.to_alcotest [ prop_random_coherence ] );
    ]
