(* Event-queue equivalence suite.

   The engine's scheduling queue is pluggable (Sim.Evq): a binary heap and
   a calendar queue share one contract — pop order is the total order
   (at, seq). This file checks that contract three ways:

   1. property tests drive both implementations through random push/pop
      interleavings against a sorted-list reference model (exact (at, seq)
      tie-breaks, far-future/horizon-clamp times included);
   2. a retention test proves dummy-slot clearing: popped payloads are
      collectable in both implementations (the engine relies on this —
      stale event closures used to pin whole machine graphs);
   3. the headline guarantee: a same-seed quick suite run under the
      calendar queue is bit-identical to the heap — rendered tables,
      metrics JSON, span/causal digests and SLO digests per experiment.

   Plus the metrics-interning satellites: same-name-different-kernel cells
   stay distinct, and Metrics.to_json is byte-identical to a string-keyed
   reference implementation over a recorded operation sequence. *)

open Sim

(* ---------- reference model: sorted association list ---------- *)

module Model = struct
  (* Events ordered by (at, seq); both keys strictly increase along the
     list, making every pop unambiguous. *)
  type 'a t = { mutable items : (int * int * 'a) list }

  let create () = { items = [] }

  let push t ~at ~seq v =
    let rec ins = function
      | [] -> [ (at, seq, v) ]
      | (a, s, _) :: _ as rest when at < a || (at = a && seq < s) ->
          (at, seq, v) :: rest
      | hd :: rest -> hd :: ins rest
    in
    t.items <- ins t.items

  let pop t =
    match t.items with
    | [] -> None
    | hd :: rest ->
        t.items <- rest;
        Some hd
end

(* Op sequences mix pushes (with a time generator) and pops. *)
let apply_ops impl times_of_ops =
  let q = Evq.create impl in
  let model = Model.create () in
  let seq = ref 0 in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Some at ->
          Evq.push q ~at ~seq:!seq !seq;
          Model.push model ~at ~seq:!seq !seq;
          incr seq
      | None -> if Evq.pop q <> Model.pop model then ok := false)
    times_of_ops;
  (* Drain both to the end: the tail must agree too, and the queue must
     report empty exactly when the model does. *)
  let rec drain () =
    let a = Evq.pop q and b = Model.pop model in
    if a <> b then ok := false else if a <> None then drain ()
  in
  drain ();
  !ok && Evq.is_empty q

(* Time generator: mostly near-horizon values with occasional far-future
   and max_int-adjacent outliers, so calendar rewindowing and horizon
   clamping are exercised, not just the front band. *)
let gen_time =
  QCheck.Gen.(
    frequency
      [
        (8, int_bound 1_000);
        (3, map (fun x -> x * 1009) (int_bound 10_000));
        (2, map (fun x -> x * 1_000_003) (int_bound 100_000));
        (1, map (fun x -> max_int - x) (int_bound 1_000));
      ])

let gen_ops =
  QCheck.Gen.(
    list
      (frequency
         [ (3, map Option.some gen_time); (2, return None) ]))

let arb_ops =
  QCheck.make gen_ops
    ~print:
      (QCheck.Print.list (function
        | Some at -> Printf.sprintf "push@%d" at
        | None -> "pop"))

let prop_vs_model name impl =
  QCheck.Test.make ~name ~count:300 arb_ops (fun ops -> apply_ops impl ops)

(* Same ops, both implementations, identical pop streams — the pairwise
   phrasing of the contract, independent of the model. *)
let prop_cross_impl =
  QCheck.Test.make ~name:"heap and calendar pop identically" ~count:300
    arb_ops (fun ops ->
      let run impl =
        let q = Evq.create impl in
        let seq = ref 0 in
        let out = ref [] in
        List.iter
          (function
            | Some at ->
                Evq.push q ~at ~seq:!seq !seq;
                incr seq
            | None -> out := Evq.pop q :: !out)
          ops;
        let rec drain () =
          match Evq.pop q with
          | None -> ()
          | item ->
              out := item :: !out;
              drain ()
        in
        drain ();
        List.rev !out
      in
      run Evq.Heap = run Evq.Calendar)

(* Deterministic spot-checks of the calendar's awkward corners. *)

let test_same_instant_fifo () =
  List.iter
    (fun impl ->
      let q = Evq.create impl in
      for seq = 0 to 99 do
        Evq.push q ~at:42 ~seq seq
      done;
      for expect = 0 to 99 do
        match Evq.pop q with
        | Some (42, s, v) when s = expect && v = expect -> ()
        | got ->
            Alcotest.failf "%s: same-instant pop %d mismatch: %s"
              (Evq.impl_to_string (Evq.impl q))
              expect
              (match got with
              | None -> "empty"
              | Some (a, s, _) -> Printf.sprintf "(%d,%d)" a s)
      done)
    Evq.all_impls

let test_horizon_clamp () =
  (* Timestamps near max_int force the calendar's window arithmetic to
     clamp instead of overflowing; order must survive. *)
  List.iter
    (fun impl ->
      let q = Evq.create impl in
      let times = [ max_int - 1; 5; max_int; 0; max_int - 7; 3 ] in
      List.iteri (fun seq at -> Evq.push q ~at ~seq seq) times;
      let sorted =
        List.sort compare (List.mapi (fun seq at -> (at, seq)) times)
      in
      List.iter
        (fun (at, seq) ->
          match Evq.pop q with
          | Some (a, s, _) when a = at && s = seq -> ()
          | got ->
              Alcotest.failf "%s: expected (%d,%d), got %s"
                (Evq.impl_to_string (Evq.impl q))
                at seq
                (match got with
                | None -> "empty"
                | Some (a, s, _) -> Printf.sprintf "(%d,%d)" a s))
        sorted;
      Alcotest.(check bool)
        "drained" true (Evq.is_empty q))
    Evq.all_impls

let test_interleaved_rewindow () =
  (* Pop partway into the window, then push both behind the consumed
     front and into the far future: the calendar routes the former into
     its ordered front heap and the latter through a rewindow; the pop
     stream must still be globally (at, seq)-sorted. *)
  List.iter
    (fun impl ->
      let q = Evq.create impl in
      let seq = ref 0 in
      let push at =
        Evq.push q ~at ~seq:!seq ();
        incr seq
      in
      List.iter push [ 10; 20; 30; 40_000; 50_000 ];
      (match Evq.pop q with
      | Some (10, _, _) -> ()
      | _ -> Alcotest.fail "first pop");
      (* Behind the consumed band and far beyond the current horizon. *)
      List.iter push [ 11; 15; 9_000_000; 25 ];
      let rec drain acc =
        match Evq.pop q with
        | None -> List.rev acc
        | Some (at, _, _) -> drain (at :: acc)
      in
      let got = drain [] in
      Alcotest.(check (list int))
        (Evq.impl_to_string (Evq.impl q) ^ ": global order")
        [ 11; 15; 20; 25; 30; 40_000; 50_000; 9_000_000 ]
        got)
    Evq.all_impls

let test_dummy_slot_clearing () =
  (* Payloads popped from a queue created with ~dummy must be
     collectable immediately: no internal slot (front heap, bucket, far
     heap) may retain them. This is what keeps executed engine closures
     from pinning machine graphs. *)
  List.iter
    (fun impl ->
      let n = 64 in
      let weak = Weak.create n in
      let q = Evq.create ~dummy:(Bytes.create 0) impl in
      for i = 0 to n - 1 do
        let payload = Bytes.make 16 'p' in
        Weak.set weak i (Some payload);
        (* Spread across bands: near, bucketed, far. *)
        Evq.push q ~at:(i * 1_000_003) ~seq:i payload
      done;
      for _ = 1 to n do
        ignore (Evq.pop_exn q)
      done;
      Alcotest.(check bool) "drained" true (Evq.is_empty q);
      Gc.full_major ();
      let live = ref 0 in
      for i = 0 to n - 1 do
        if Weak.check weak i then incr live
      done;
      Alcotest.(check int)
        (Evq.impl_to_string (Evq.impl q) ^ ": retained payloads")
        0 !live)
    Evq.all_impls

let test_next_at_matches_peek () =
  List.iter
    (fun impl ->
      let q = Evq.create impl in
      Alcotest.(check int) "empty sentinel" (-1) (Evq.next_at q);
      Evq.push q ~at:17 ~seq:0 ();
      Evq.push q ~at:5 ~seq:1 ();
      Alcotest.(check int) "min" 5 (Evq.next_at q);
      Alcotest.(check (option int))
        "peek agrees" (Some 5) (Evq.peek_time q);
      ignore (Evq.pop_exn q);
      Alcotest.(check int) "after pop" 17 (Evq.next_at q))
    Evq.all_impls

(* ---------- engine-level equivalence: the headline guarantee ---------- *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let strip_host_ms s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         not
           (String.length line > 0
           && line.[0] = '('
           && contains ~affix:"ms host time" line))
  |> String.concat "\n"

let json_digest j = Digest.to_hex (Digest.string (Obs.Json.to_string j))

let test_cross_evq_suite_identical () =
  let suite evq =
    Experiments.Registry.run_all ~quick:true ~observe:true ~evq ~jobs:1 ()
  in
  let heap = suite Evq.Heap and cal = suite Evq.Calendar in
  Alcotest.(check int)
    "experiment count" (List.length heap) (List.length cal);
  List.iter2
    (fun (a : Experiments.Registry.outcome)
         (b : Experiments.Registry.outcome) ->
      let id = a.spec.Experiments.Registry.id in
      Alcotest.(check string)
        (id ^ ": rendered tables identical")
        (strip_host_ms a.output) (strip_host_ms b.output);
      Alcotest.(check int)
        (id ^ ": events processed identical")
        a.events_processed b.events_processed;
      (match (a.slo, b.slo) with
      | Some sa, Some sb ->
          Alcotest.(check string)
            (id ^ ": SLO digest identical")
            (json_digest (Obs.Slo.to_json sa))
            (json_digest (Obs.Slo.to_json sb))
      | None, None -> ()
      | _ -> Alcotest.failf "%s: SLO presence differs across evq" id);
      match (a.sink, b.sink) with
      | Some sa, Some sb ->
          Alcotest.(check string)
            (id ^ ": metrics JSON identical")
            (Obs.Json.to_string (Obs.Metrics.to_json sa.Obs.Sink.metrics))
            (Obs.Json.to_string (Obs.Metrics.to_json sb.Obs.Sink.metrics));
          Alcotest.(check string)
            (id ^ ": span digest identical")
            (json_digest
               (Obs.Critpath.ispans_to_json
                  (Obs.Critpath.ispans_of_recorder sa.Obs.Sink.spans)))
            (json_digest
               (Obs.Critpath.ispans_to_json
                  (Obs.Critpath.ispans_of_recorder sb.Obs.Sink.spans)));
          Alcotest.(check string)
            (id ^ ": causal-DAG digest identical")
            (json_digest (Obs.Causal.to_json sa.Obs.Sink.causal))
            (json_digest (Obs.Causal.to_json sb.Obs.Sink.causal))
      | _ -> Alcotest.failf "%s: observed run is missing its sink" id)
    heap cal

(* ---------- metrics interning ---------- *)

let test_interned_cells_distinct () =
  let m = Obs.Metrics.create () in
  (* One name, three scopes: global, kernel 0, kernel 7. Interning maps
     them all to one name id; the cells must stay distinct. *)
  Obs.Metrics.add m "migrations" 5;
  Obs.Metrics.incr m ~kernel:0 "migrations";
  Obs.Metrics.add m ~kernel:7 "migrations" 3;
  Obs.Metrics.incr m ~kernel:7 "migrations";
  Alcotest.(check int) "global" 5 (Obs.Metrics.counter m "migrations");
  Alcotest.(check int) "k0" 1 (Obs.Metrics.counter m ~kernel:0 "migrations");
  Alcotest.(check int) "k7" 4 (Obs.Metrics.counter m ~kernel:7 "migrations");
  (* Handles resolve to the same distinct cells. *)
  let h0 = Obs.Metrics.counter_handle m ~kernel:0 "migrations" in
  let h7 = Obs.Metrics.counter_handle m ~kernel:7 "migrations" in
  Obs.Metrics.handle_incr h0;
  Obs.Metrics.handle_add h7 10;
  Alcotest.(check int) "k0 via handle" 2
    (Obs.Metrics.counter m ~kernel:0 "migrations");
  Alcotest.(check int) "k7 via handle" 14
    (Obs.Metrics.counter m ~kernel:7 "migrations");
  (* Row order: global scope sorts before per-kernel scopes. *)
  let keys = List.map fst (Obs.Metrics.rows m) in
  Alcotest.(check bool)
    "rows ordered (name, None) < (name, Some k)" true
    (keys
    = [
        ("migrations", None); ("migrations", Some 0); ("migrations", Some 7);
      ])

(* A faithful string-keyed reference registry — the pre-interning
   implementation: one Hashtbl over (name, kernel option), read out by
   sorting the keys. Drives the byte-identity check below. *)
module String_keyed = struct
  type cell =
    | C of int ref
    | G of float ref
    | H of Stats.Histogram.t

  type t = (string * int option, cell) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let cell t key mk =
    match Hashtbl.find_opt t key with
    | Some c -> c
    | None ->
        let c = mk () in
        Hashtbl.add t key c;
        c

  let add t ?kernel name n =
    match cell t (name, kernel) (fun () -> C (ref 0)) with
    | C r -> r := !r + n
    | _ -> assert false

  let set_gauge t ?kernel name x =
    match cell t (name, kernel) (fun () -> G (ref 0.)) with
    | G r -> r := x
    | _ -> assert false

  let observe t ?kernel name x =
    match cell t (name, kernel) (fun () -> H (Stats.Histogram.create ()))
    with
    | H h -> Stats.Histogram.add h x
    | _ -> assert false

  let to_json (t : t) =
    let open Obs.Json in
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
      |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
    in
    let scope = function None -> Null | Some k -> Int k in
    let entry extra ((name, kernel), _) =
      Obj (("name", Str name) :: ("kernel", scope kernel) :: extra)
    in
    let counters, gauges, hists =
      List.fold_left
        (fun (cs, gs, hs) ((_, v) as row) ->
          match v with
          | C r -> (entry [ ("value", Int !r) ] row :: cs, gs, hs)
          | G r -> (cs, entry [ ("value", Float !r) ] row :: gs, hs)
          | H h ->
              ( cs,
                gs,
                entry
                  [
                    ("count", Int (Stats.Histogram.count h));
                    ("mean", Float (Stats.Histogram.mean h));
                    ("p50", Float (Stats.Histogram.median h));
                    ("p99", Float (Stats.Histogram.p99 h));
                    ("p999", Float (Stats.Histogram.p999 h));
                    ("max", Float (Stats.Histogram.max h));
                  ]
                  row
                :: hs ))
        ([], [], []) rows
    in
    Obj
      [
        ("counters", Arr (List.rev counters));
        ("gauges", Arr (List.rev gauges));
        ("histograms", Arr (List.rev hists));
      ]
end

let test_to_json_byte_identical () =
  (* A seeded op sequence over a realistic name/kernel space, applied to
     both registries; the JSON exports must agree byte for byte. The
     names are minted in a scrambled order on purpose — the export is
     sorted, so first-touch order must not leak. *)
  let m = Obs.Metrics.create () in
  let r = String_keyed.create () in
  let rng = Prng.create ~seed:20260808 in
  let names =
    [|
      "msg.sent";
      "msg.latency_ns";
      "sched.load";
      "migrations";
      "coherence.faults";
      "slo.violations";
    |]
  in
  for _ = 1 to 2_000 do
    let name = names.(Prng.int_in rng 0 (Array.length names - 1)) in
    let kernel =
      match Prng.int_in rng 0 3 with
      | 0 -> None
      | k -> Some (k - 1)
    in
    (* Partition kinds by name so both registries agree on the kind. *)
    match name with
    | "msg.latency_ns" ->
        let x = float_of_int (Prng.int_in rng 100 100_000) in
        Obs.Metrics.observe m ?kernel name x;
        String_keyed.observe r ?kernel name x
    | "sched.load" ->
        let x = float_of_int (Prng.int_in rng 0 100) /. 7. in
        Obs.Metrics.set_gauge m ?kernel name x;
        String_keyed.set_gauge r ?kernel name x
    | _ ->
        let n = Prng.int_in rng 1 5 in
        Obs.Metrics.add m ?kernel name n;
        String_keyed.add r ?kernel name n
  done;
  Alcotest.(check string)
    "byte-identical export"
    (Obs.Json.to_string (String_keyed.to_json r))
    (Obs.Json.to_string (Obs.Metrics.to_json m))

let test_kind_mismatch_raises () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "x";
  Alcotest.check_raises "observe on a counter name"
    (Invalid_argument "Metrics: x is a counter, not a histogram") (fun () ->
      Obs.Metrics.observe m "x" 1.)

let () =
  Alcotest.run "evq"
    [
      ( "contract",
        [
          Alcotest.test_case "same-instant fifo" `Quick
            test_same_instant_fifo;
          Alcotest.test_case "horizon clamp near max_int" `Quick
            test_horizon_clamp;
          Alcotest.test_case "interleaved rewindow" `Quick
            test_interleaved_rewindow;
          Alcotest.test_case "dummy-slot clearing" `Quick
            test_dummy_slot_clearing;
          Alcotest.test_case "next_at/peek_time agree" `Quick
            test_next_at_matches_peek;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_vs_model "heap vs sorted-list model" Evq.Heap;
            prop_vs_model "calendar vs sorted-list model" Evq.Calendar;
            prop_cross_impl;
          ] );
      ( "equivalence",
        [
          Alcotest.test_case "same-seed suite bit-identical across evq"
            `Quick test_cross_evq_suite_identical;
        ] );
      ( "interning",
        [
          Alcotest.test_case "cells distinct across kernels" `Quick
            test_interned_cells_distinct;
          Alcotest.test_case "to_json byte-identical to string-keyed"
            `Quick test_to_json_byte_identical;
          Alcotest.test_case "kind mismatch raises" `Quick
            test_kind_mismatch_raises;
        ] );
    ]
