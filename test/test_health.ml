(* Tests for health-aware placement: the Health state machine, the
   Placement policies and dispatcher (admission control, retry-on-other-
   kernel), the Balancer's health integration and stale-hint expiry, and
   the R2 acceptance criteria (proportional degradation under a kernel
   crash — asserted, not just printed). *)

open Sim
module P = Popcorn.Types
module H = Popcorn.Health
module Pl = Popcorn.Placement
module R2 = Experiments.R2_placement

(* --- Health state machine ----------------------------------------------- *)

(* Probing disabled: the machine only moves on note_success/note_failure. *)
let no_probe =
  { H.default_config with H.readmit_prob = 0.; probe_interval = Time.us 10 }

let state = Alcotest.testable (Fmt.of_to_string H.state_name) ( = )

let test_state_machine () =
  let eng = Engine.create ~seed:1 () in
  let h = H.create eng ~config:no_probe ~kernels:2 in
  Engine.spawn eng (fun () ->
      Alcotest.check state "starts healthy" H.Healthy (H.state h 0);
      H.note_failure h ~kernel:0;
      Alcotest.check state "one miss tolerated" H.Healthy (H.state h 0);
      H.note_failure h ~kernel:0;
      Alcotest.check state "two misses suspect" H.Suspect (H.state h 0);
      H.note_success h ~kernel:0;
      Alcotest.check state "one success not enough" H.Suspect (H.state h 0);
      H.note_success h ~kernel:0;
      Alcotest.check state "two successes recover" H.Healthy (H.state h 0);
      (* Misses were cleared by recovery: draining needs a fresh streak. *)
      H.note_failure h ~kernel:0;
      H.note_failure h ~kernel:0;
      H.note_failure h ~kernel:0;
      Alcotest.check state "three misses drain" H.Drained (H.state h 0);
      Alcotest.(check bool) "drained is unavailable" false (H.available h 0);
      Alcotest.check state "other kernel untouched" H.Healthy (H.state h 1);
      (* With probing off, traffic outcomes cannot resurrect it. *)
      H.note_success h ~kernel:0;
      Alcotest.check state "drained ignores successes" H.Drained
        (H.state h 0));
  Engine.run eng;
  let kinds =
    List.map (fun (tr : H.transition) -> (tr.H.tr_from, tr.H.tr_to))
      (H.transitions h)
  in
  Alcotest.(check int) "four transitions logged" 4 (List.length kinds);
  Alcotest.(check bool) "log order oldest-first" true
    (kinds
    = [
        (H.Healthy, H.Suspect);
        (H.Suspect, H.Healthy);
        (H.Healthy, H.Suspect);
        (H.Suspect, H.Drained);
      ])

let test_window_pruning () =
  let eng = Engine.create ~seed:2 () in
  let cfg = { no_probe with H.window = Time.us 100 } in
  let h = H.create eng ~config:cfg ~kernels:1 in
  Engine.spawn eng (fun () ->
      H.note_failure h ~kernel:0;
      Engine.sleep eng (Time.us 200);
      (* The first miss has aged out: this is one miss in the window. *)
      H.note_failure h ~kernel:0;
      Alcotest.check state "stale miss pruned" H.Healthy (H.state h 0);
      H.note_failure h ~kernel:0;
      Alcotest.check state "two fresh misses suspect" H.Suspect (H.state h 0));
  Engine.run eng

let drain ?(kernel = 0) h =
  H.note_failure h ~kernel;
  H.note_failure h ~kernel;
  H.note_failure h ~kernel

(* While drained, a seeded probe readmits to probation; trial traffic then
   decides. The probe schedule must be identical across same-seed runs. *)
let probe_run seed =
  let eng = Engine.create ~seed () in
  let h = H.create eng ~kernels:1 in
  Engine.spawn eng (fun () -> drain h);
  Engine.run eng;
  (* The probe fired (possibly several times) and readmitted: the engine
     only quiesces because readmission stops the probe timer. *)
  Alcotest.check state "probe readmitted to probation" H.Suspect
    (H.state h 0);
  Alcotest.(check bool) "on probation" true (H.probation h 0);
  Alcotest.(check bool) "drained time accounted" true (H.drained_ns h 0 > 0);
  (Engine.now eng, List.map (fun (tr : H.transition) -> (tr.H.tr_at, tr.H.tr_kernel, tr.H.tr_from, tr.H.tr_to)) (H.transitions h))

let test_probe_deterministic () =
  let a = probe_run 7 in
  let b = probe_run 7 in
  Alcotest.(check bool) "same seed, identical transition log" true (a = b)

let test_probation_redrain () =
  let eng = Engine.create ~seed:8 () in
  let h = H.create eng ~kernels:1 in
  Engine.spawn eng (fun () -> drain h);
  Engine.run eng;
  Alcotest.(check bool) "on probation" true (H.probation h 0);
  (* One miss during probation: straight back to drained, no window. *)
  H.note_failure h ~kernel:0;
  Alcotest.check state "probation miss re-drains" H.Drained (H.state h 0);
  (* A success during probation clears the probation flag instead. *)
  H.stop h;
  Engine.run eng (* drain the re-scheduled probe timer (now a no-op) *)

let test_stop_quiesces () =
  let eng = Engine.create ~seed:9 () in
  (* readmit_prob 1.0 but stop before running: the pending probe must be a
     no-op, the kernel stays drained, and the engine terminates. *)
  let cfg = { H.default_config with H.readmit_prob = 1.0 } in
  let h = H.create eng ~config:cfg ~kernels:1 in
  Engine.spawn eng (fun () ->
      drain h;
      H.stop h);
  Engine.run eng;
  Alcotest.check state "still drained after stop" H.Drained (H.state h 0)

(* --- Placement policies -------------------------------------------------- *)

let topo = Hw.Topology.create ~sockets:2 ~cores_per_socket:4

let cand ck ~core ~load ~weight =
  { Pl.ck; ck_core = core; ck_load = load; ck_weight = weight }

let test_weighted_least_loaded () =
  let choose cs = Pl.Weighted_least_loaded.choose ~topo ~src_core:0 ~candidates:cs in
  Alcotest.(check (option int)) "empty -> none" None (choose []);
  Alcotest.(check (option int))
    "weight normalises load: 3/4 of capacity beats 1/1"
    (Some 1)
    (choose [ cand 1 ~core:0 ~load:3 ~weight:4; cand 2 ~core:4 ~load:1 ~weight:1 ]);
  Alcotest.(check (option int))
    "ties break to the lowest kernel id" (Some 1)
    (choose [ cand 3 ~core:4 ~load:1 ~weight:1; cand 1 ~core:0 ~load:1 ~weight:1 ])

let test_numa_aware () =
  let choose cs = Pl.Numa_aware.choose ~topo ~src_core:0 ~candidates:cs in
  (* Equal load: stay on the requester's socket. *)
  Alcotest.(check (option int))
    "equal load prefers same socket" (Some 1)
    (choose [ cand 1 ~core:1 ~load:0 ~weight:1; cand 2 ~core:4 ~load:0 ~weight:1 ]);
  (* Enough imbalance pays for the socket crossing. *)
  Alcotest.(check (option int))
    "imbalance pays for the crossing" (Some 2)
    (choose [ cand 1 ~core:1 ~load:2 ~weight:1; cand 2 ~core:4 ~load:0 ~weight:1 ])

(* --- Placement dispatcher ------------------------------------------------ *)

let mk_cluster () =
  let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  let cluster = Popcorn.Cluster.boot machine ~kernels:4 ~cores_per_kernel:4 in
  (machine.Hw.Machine.eng, cluster)

let test_admission_shedding () =
  let eng, cluster = mk_cluster () in
  let disp = Pl.create ~high_water:4 ~frontend:0 cluster in
  let placed = ref 0 and rejected = ref 0 in
  let n = 12 in
  let latch = Workloads.Latch.create eng n in
  Engine.spawn eng (fun () ->
      for _ = 1 to n do
        Engine.spawn eng (fun () ->
            (match Pl.dispatch disp ~cost_ns:(Time.us 20) with
            | Pl.Placed _ -> incr placed
            | Pl.Rejected -> incr rejected
            | Pl.Failed _ -> Alcotest.fail "no faults: nothing may fail");
            Workloads.Latch.arrive latch)
      done;
      Workloads.Latch.wait latch);
  Engine.run eng;
  (* All 12 burst in at the same instant with a high-water mark of 4: the
     first 4 are admitted, the rest shed — explicitly, not queued. *)
  Alcotest.(check int) "admitted up to the mark" 4 !placed;
  Alcotest.(check int) "the rest shed explicitly" 8 !rejected;
  Alcotest.(check int) "nothing left in flight" 0 (Pl.inflight disp)

let test_retry_other_kernel () =
  let eng, cluster = mk_cluster () in
  let health = H.create eng ~kernels:4 in
  let disp = Pl.create ~health ~frontend:0 cluster in
  let plan = Inject.Plan.create eng in
  Inject.Plan.attach plan cluster.P.fabric;
  (* Fresh dispatcher: all loads zero, so the policy picks kernel 1.
     Sever it; the request must fail over to kernel 2 on attempt 2. *)
  Inject.Plan.set_link plan ~src:0 ~dst:1
    { Inject.Plan.zero with Inject.Plan.drop = 1.0 };
  let outcome = ref Pl.Rejected in
  Engine.spawn eng (fun () ->
      outcome := Pl.dispatch disp ~cost_ns:(Time.us 10);
      H.stop health);
  Engine.run eng;
  (match !outcome with
  | Pl.Placed { kernel; attempts } ->
      Alcotest.(check int) "failed over to the next kernel" 2 kernel;
      Alcotest.(check int) "on the second attempt" 2 attempts
  | _ -> Alcotest.fail "dispatch did not fail over");
  Alcotest.(check bool) "the miss was fed to health" true
    (H.state health 1 <> H.Drained (* one miss: healthy, counted *));
  Alcotest.check state "server kernel stays healthy" H.Healthy
    (H.state health 2)

(* --- Balancer: stale hints and health integration ----------------------- *)

let test_balancer_stale_hints () =
  let eng, cluster = mk_cluster () in
  let balancer = ref None in
  let stale_before = ref (-1) in
  Engine.spawn eng (fun () ->
      let proc =
        Popcorn.Api.start_process cluster ~origin:0 (fun th ->
            (* A worker parked on a futex: live, but it never reaches a
               cooperative migration point, so its hint can only expire. *)
            let wtid =
              Popcorn.Api.spawn th (fun w ->
                  ignore (Popcorn.Api.futex_wait w ~addr:0x800000 ()))
            in
            (* threshold 99: the balancer never issues hints of its own
               here; we only exercise expiry. *)
            let b =
              Popcorn.Balancer.start ~period:(Time.us 50)
                ~hint_ttl:(Time.us 100) ~threshold:99 cluster
            in
            balancer := Some b;
            let k0 = P.kernel_of cluster 0 in
            let now = Engine.now eng in
            (* One hint for a tid that does not exist (the thread exited
               or migrated away), one for the parked live thread. *)
            Hashtbl.replace k0.P.migrate_hints 9999
              { P.hint_dst = 1; hint_at = now };
            Hashtbl.replace k0.P.migrate_hints wtid
              { P.hint_dst = 1; hint_at = now };
            stale_before := Popcorn.Balancer.hints_stale b;
            Popcorn.Api.compute th (Time.us 400);
            Alcotest.(check int) "both hints expired" 0
              (Hashtbl.length k0.P.migrate_hints);
            ignore (Popcorn.Api.futex_wake th ~addr:0x800000 ~count:1);
            Popcorn.Balancer.stop b)
      in
      Popcorn.Api.wait_exit cluster proc);
  Engine.run eng;
  Alcotest.(check int) "no stale hints at the start" 0 !stale_before;
  match !balancer with
  | Some b ->
      Alcotest.(check int) "both counted stale" 2
        (Popcorn.Balancer.hints_stale b)
  | None -> Alcotest.fail "balancer never started"

(* A crashed kernel must not wedge the balancer (the old Gather-based
   round parked forever waiting for its load reply), must get drained by
   the shared health tracker, and must be readmitted once it heals. *)
let test_balancer_survives_crashed_kernel () =
  let eng, cluster = mk_cluster () in
  let health = H.create eng ~kernels:4 in
  let plan = Inject.Plan.create eng in
  Inject.Plan.attach plan cluster.P.fabric;
  let victim = 3 in
  let sever rates =
    for k = 0 to 3 do
      if k <> victim then begin
        Inject.Plan.set_link plan ~src:k ~dst:victim rates;
        Inject.Plan.set_link plan ~src:victim ~dst:k rates
      end
    done
  in
  let mid = ref H.Healthy in
  Engine.spawn eng (fun () ->
      let proc =
        Popcorn.Api.start_process cluster ~origin:0 (fun th ->
            let b =
              Popcorn.Balancer.start ~period:(Time.us 100) ~threshold:99
                ~health cluster
            in
            Popcorn.Api.compute th (Time.ms 1);
            Alcotest.check state "healthy while fault-free" H.Healthy
              (H.state health victim);
            sever { Inject.Plan.zero with Inject.Plan.drop = 1.0 };
            Popcorn.Api.compute th (Time.ms 2);
            mid := H.state health victim;
            sever Inject.Plan.zero;
            Popcorn.Api.compute th (Time.ms 3);
            Alcotest.(check bool) "readmitted after healing" true
              (H.available health victim);
            Alcotest.check state "healthy majority never drained" H.Healthy
              (H.state health 1);
            Popcorn.Balancer.stop b;
            H.stop health)
      in
      Popcorn.Api.wait_exit cluster proc);
  Engine.run eng;
  (* Engine.run returning at all is the no-hang half of the test. *)
  Alcotest.check state "drained while severed" H.Drained !mid

(* --- R2 acceptance: proportional degradation under kernel crash --------- *)

let ctx () = Experiments.Run_ctx.create ~quick:true ()

let r2_cell scenario =
  R2.run_cell (ctx ()) ~requests:3000 ~gap:(Time.us 2) ~scenario ()

let test_r2_crash_acceptance () =
  let base = r2_cell R2.Baseline in
  let crash = r2_cell R2.Crash in
  let bs = base.R2.stats and cs = crash.R2.stats in
  (* Moderate load (~42% of worker capacity) and a crash of 1 of 3 worker
     kernels for the middle third of the run. Losing a third of capacity
     still leaves headroom, so goodput must degrade (at most)
     proportionally — anything near the lost-capacity floor would mean
     collapse, not degradation. *)
  Alcotest.(check bool) "baseline is clean" true
    (Workloads.Server.goodput bs = 1.0 && bs.Workloads.Server.failed = 0);
  Alcotest.(check bool) "no goodput collapse under crash" true
    (Workloads.Server.goodput cs >= 0.95);
  Alcotest.(check bool) "shed rate bounded" true
    (Workloads.Server.shed_rate cs <= 0.05);
  (* Tail latency of the requests that *were* accepted: within 2x of the
     fault-free baseline (the few retried requests pay the failover
     deadline; health must drain the victim before they pollute p99). *)
  let p99 s = Stats.Histogram.p99 s.Workloads.Server.latency in
  Alcotest.(check bool) "p99 of accepted within 2x baseline" true
    (p99 cs <= 2. *. p99 bs);
  (* The health machinery actually reacted: drained during the fault,
     readmitted after it. *)
  Alcotest.(check bool) "victim drained after fault onset" true
    (crash.R2.drain_after_ns >= 0);
  Alcotest.(check bool) "drained quickly (< 1ms of fault)" true
    (crash.R2.drain_after_ns < Time.ms 1);
  Alcotest.(check bool) "victim readmitted after recovery" true
    (crash.R2.readmit_after_ns >= 0);
  Alcotest.(check bool) "victim serving again at the end" true
    (crash.R2.victim_final <> H.Drained);
  Alcotest.(check bool) "some requests failed over" true
    (cs.Workloads.Server.retried > 0)

(* --- determinism --------------------------------------------------------- *)

(* Two same-seed R2 cells: identical health-transition logs (the seeded
   probe schedule included) and identical headline numbers. *)
let test_r2_same_seed_same_transitions () =
  let digest (c : R2.cell) =
    ( List.map
        (fun (tr : H.transition) ->
          (tr.H.tr_at, tr.H.tr_kernel, H.state_name tr.H.tr_from,
           H.state_name tr.H.tr_to))
        c.R2.transitions,
      Workloads.Server.goodput c.R2.stats,
      Stats.Histogram.p99 c.R2.stats.Workloads.Server.latency,
      c.R2.drain_after_ns,
      c.R2.readmit_after_ns )
  in
  let a = r2_cell R2.Crash in
  let b = r2_cell R2.Crash in
  Alcotest.(check bool) "health transitions happened" true
    (a.R2.transitions <> []);
  Alcotest.(check bool) "identical transition logs and headline stats" true
    (digest a = digest b)

(* R2 under domain parallelism is bit-identical to a serial run: four
   concurrent observed runs (same seed) agree on rendered tables and
   metrics JSON with a serial one. (test_parallel covers the whole suite;
   this pins the new experiment directly.) *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let strip_host_ms s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         not
           (String.length line > 0
           && line.[0] = '('
           && contains ~affix:"ms host time" line))
  |> String.concat "\n"

let test_r2_parallel_equivalence () =
  let spec = Option.get (Experiments.Registry.find "R2") in
  let run () = Experiments.Registry.run_one ~quick:true ~observe:true spec in
  let serial = run () in
  let domains = List.init 3 (fun _ -> Domain.spawn run) in
  let outcomes = serial :: List.map Domain.join domains in
  let table o = strip_host_ms o.Experiments.Registry.output in
  let metrics (o : Experiments.Registry.outcome) =
    Obs.Json.to_string
      (Obs.Metrics.to_json (Option.get o.Experiments.Registry.sink).Obs.Sink.metrics)
  in
  List.iter
    (fun o ->
      Alcotest.(check string) "tables identical" (table serial) (table o);
      Alcotest.(check string) "metrics identical" (metrics serial) (metrics o))
    outcomes

let () =
  Alcotest.run "health"
    [
      ( "state machine",
        [
          Alcotest.test_case "healthy/suspect/drained" `Quick
            test_state_machine;
          Alcotest.test_case "sliding window prunes" `Quick
            test_window_pruning;
          Alcotest.test_case "probe readmission deterministic" `Quick
            test_probe_deterministic;
          Alcotest.test_case "probation miss re-drains" `Quick
            test_probation_redrain;
          Alcotest.test_case "stop quiesces probing" `Quick
            test_stop_quiesces;
        ] );
      ( "policies",
        [
          Alcotest.test_case "weighted least loaded" `Quick
            test_weighted_least_loaded;
          Alcotest.test_case "numa aware" `Quick test_numa_aware;
        ] );
      ( "dispatcher",
        [
          Alcotest.test_case "admission control sheds" `Quick
            test_admission_shedding;
          Alcotest.test_case "retry on other kernel" `Quick
            test_retry_other_kernel;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "stale hints expire" `Quick
            test_balancer_stale_hints;
          Alcotest.test_case "crashed kernel: no hang, drain, readmit"
            `Quick test_balancer_survives_crashed_kernel;
        ] );
      ( "r2 acceptance",
        [
          Alcotest.test_case "crash degrades proportionally" `Quick
            test_r2_crash_acceptance;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same transitions" `Quick
            test_r2_same_seed_same_transitions;
          Alcotest.test_case "parallel runs bit-identical" `Quick
            test_r2_parallel_equivalence;
        ] );
    ]
