(* Tests for the fault-injection subsystem (Inject.Plan) and the messaging
   resilience it exercises: drop/delay/duplicate/stall injection, duplicate
   suppression, retry-with-backoff recovery, and origin-fallback
   degradation of migration. *)

open Sim

type proto = Ping of int | Req of { ticket : int } | Resp of { ticket : int }

let mk_machine () = Hw.Machine.create ~sockets:2 ~cores_per_socket:4 ()

(* A two-node fabric whose node 1 echoes [Req] back as [Resp]; node 0
   completes responses against [rpc]. *)
let mk_echo () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let rpc : proto Msg.Rpc.t = Msg.Rpc.create eng in
  let fabric_ref = ref None in
  let fabric =
    Msg.Transport.create m ~ring_slots:16 ~handler:(fun _t ~dst ~src _d p ->
        let fabric = Option.get !fabric_ref in
        match p with
        | Req { ticket } ->
            Msg.Transport.send fabric ~src:dst ~dst:src ~bytes:64
              (Resp { ticket })
        | Resp { ticket } -> Msg.Rpc.complete rpc ~ticket p
        | Ping _ -> ())
  in
  fabric_ref := Some fabric;
  Msg.Transport.add_node fabric 0 ~home_core:0;
  Msg.Transport.add_node fabric 1 ~home_core:4;
  (m, fabric, rpc)

let only_drop rate = { Inject.Plan.zero with Inject.Plan.drop = rate }

(* --- zero-rate identity ------------------------------------------------ *)

(* An attached plan with all-zero rates must not perturb the simulation at
   all: same final time, same event count, same transport stats as a run
   with no plan attached. *)
let run_cluster_workload ~with_zero_plan () =
  let machine =
    Hw.Machine.create ~sockets:2 ~cores_per_socket:8 ()
  in
  let cluster =
    Popcorn.Cluster.boot machine ~kernels:4 ~cores_per_kernel:4
  in
  let eng = machine.Hw.Machine.eng in
  let injected = ref 0 in
  let plan =
    if with_zero_plan then begin
      let plan = Inject.Plan.create eng in
      Inject.Plan.attach plan cluster.Popcorn.Types.fabric;
      Some plan
    end
    else None
  in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Popcorn.Api.start_process cluster ~origin:0 (fun th ->
            for i = 1 to 3 do
              Popcorn.Api.compute th (Time.us 5);
              ignore (Popcorn.Api.migrate th ~dst:(i mod 4))
            done)
      in
      Popcorn.Api.wait_exit cluster proc);
  Sim.Engine.run eng;
  (match plan with Some p -> injected := Inject.Plan.injected p | None -> ());
  ( Sim.Engine.now eng,
    Sim.Engine.events_processed eng,
    Msg.Transport.stats cluster.Popcorn.Types.fabric,
    !injected )

let test_zero_rate_identity () =
  let now0, ev0, st0, _ = run_cluster_workload ~with_zero_plan:false () in
  let now1, ev1, st1, inj = run_cluster_workload ~with_zero_plan:true () in
  Alcotest.(check int) "same final time" now0 now1;
  Alcotest.(check int) "same event count" ev0 ev1;
  Alcotest.(check bool) "same transport stats" true (st0 = st1);
  Alcotest.(check int) "nothing injected" 0 inj

(* --- individual fault kinds -------------------------------------------- *)

let test_drop () =
  let m, fabric, _rpc = mk_echo () in
  let eng = m.Hw.Machine.eng in
  let plan = Inject.Plan.create ~seed:11 eng in
  Inject.Plan.attach plan fabric;
  Inject.Plan.set_link plan ~src:0 ~dst:1 (only_drop 1.0);
  Engine.spawn eng (fun () ->
      for i = 1 to 5 do
        Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Ping i)
      done);
  Engine.run eng;
  let st = Msg.Transport.stats fabric in
  Alcotest.(check int) "all counted as sent" 5 st.Msg.Transport.sent;
  Alcotest.(check int) "none delivered" 0 st.Msg.Transport.delivered;
  Alcotest.(check int) "all dropped" 5 st.Msg.Transport.dropped;
  Alcotest.(check int) "plan agrees" 5 (Inject.Plan.stats plan).Inject.Plan.drops

let test_duplicate_suppression () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let got = ref 0 in
  let fabric =
    Msg.Transport.create m ~ring_slots:16 ~handler:(fun _t ~dst:_ ~src:_ _d p ->
        match p with Ping _ -> incr got | _ -> ())
  in
  Msg.Transport.add_node fabric 0 ~home_core:0;
  Msg.Transport.add_node fabric 1 ~home_core:4;
  let plan = Inject.Plan.create ~seed:12 eng in
  Inject.Plan.attach plan fabric;
  Inject.Plan.set_link plan ~src:0 ~dst:1
    { Inject.Plan.zero with Inject.Plan.duplicate = 1.0 };
  let n = 7 in
  Engine.spawn eng (fun () ->
      for i = 1 to n do
        Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Ping i)
      done);
  Engine.run eng;
  let st = Msg.Transport.stats fabric in
  Alcotest.(check int) "handler ran once per message" n !got;
  Alcotest.(check int) "every message duplicated" n st.Msg.Transport.duplicated;
  Alcotest.(check int) "every copy suppressed" n
    st.Msg.Transport.dup_suppressed;
  Alcotest.(check int) "plan agrees" n
    (Inject.Plan.stats plan).Inject.Plan.duplicates

let one_ping_arrival ~tweak () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let arrival = ref 0 in
  let fabric =
    Msg.Transport.create m ~ring_slots:16 ~handler:(fun _t ~dst:_ ~src:_ _ _ ->
        arrival := Engine.now eng)
  in
  Msg.Transport.add_node fabric 0 ~home_core:0;
  Msg.Transport.add_node fabric 1 ~home_core:4;
  tweak eng fabric;
  Engine.spawn eng (fun () ->
      Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Ping 0));
  Engine.run eng;
  !arrival

let test_delay () =
  let base = one_ping_arrival ~tweak:(fun _ _ -> ()) () in
  let plan_stats = ref None in
  let delayed =
    one_ping_arrival
      ~tweak:(fun eng fabric ->
        let plan = Inject.Plan.create ~seed:13 eng in
        Inject.Plan.attach plan fabric;
        Inject.Plan.set_link plan ~src:0 ~dst:1
          {
            Inject.Plan.zero with
            Inject.Plan.delay = 1.0;
            delay_max = Time.us 10;
          };
        plan_stats := Some plan)
      ()
  in
  Alcotest.(check bool) "delivered strictly later" true (delayed > base);
  Alcotest.(check bool) "bounded extra" true
    (delayed - base <= Time.us 10);
  match !plan_stats with
  | Some plan ->
      Alcotest.(check int) "one delay injected" 1
        (Inject.Plan.stats plan).Inject.Plan.delays
  | None -> Alcotest.fail "plan not created"

let test_doorbell_loss () =
  let recovery = Time.us 100 in
  let arrival =
    one_ping_arrival
      ~tweak:(fun eng fabric ->
        let plan = Inject.Plan.create ~seed:14 eng in
        Inject.Plan.attach plan fabric;
        Inject.Plan.set_link plan ~src:0 ~dst:1
          {
            Inject.Plan.zero with
            Inject.Plan.doorbell_loss = 1.0;
            doorbell_recovery = recovery;
          })
      ()
  in
  (* The lost doorbell is replaced by the recovery poll latency. *)
  Alcotest.(check bool) "arrival waits for recovery poll" true
    (arrival >= recovery)

let test_stall_window () =
  let until_ = Time.us 200 in
  let arrival =
    one_ping_arrival
      ~tweak:(fun eng fabric ->
        let plan = Inject.Plan.create ~seed:15 eng in
        Inject.Plan.attach plan fabric;
        Inject.Plan.add_stall plan ~node:1 ~from_:0 ~until_)
      ()
  in
  Alcotest.(check bool) "delivery held until the stall ends" true
    (arrival >= until_)

(* --- stall window edge cases -------------------------------------------- *)

(* A zero-length window ([from_ = until_]) matches no delivery instant:
   attaching one must leave the run bit-identical to no plan at all. *)
let test_zero_length_stall () =
  let base = one_ping_arrival ~tweak:(fun _ _ -> ()) () in
  let plan_ref = ref None in
  let arrival =
    one_ping_arrival
      ~tweak:(fun eng fabric ->
        let plan = Inject.Plan.create ~seed:19 eng in
        Inject.Plan.attach plan fabric;
        Inject.Plan.add_stall plan ~node:1 ~from_:(Time.us 1)
          ~until_:(Time.us 1);
        plan_ref := Some plan)
      ()
  in
  Alcotest.(check int) "arrival unchanged" base arrival;
  match !plan_ref with
  | Some plan ->
      Alcotest.(check int) "no stall applied" 0
        (Inject.Plan.stats plan).Inject.Plan.stalls_applied
  | None -> Alcotest.fail "plan not created"

(* Overlapping windows on one node: delivery is held until the *latest*
   [until_] among the windows covering it, not the first to match. *)
let test_overlapping_stalls () =
  let short = Time.us 150 and long = Time.us 400 in
  let arrival =
    one_ping_arrival
      ~tweak:(fun eng fabric ->
        let plan = Inject.Plan.create ~seed:20 eng in
        Inject.Plan.attach plan fabric;
        (* Registration order is the adversarial one: the shorter window
           second, so a first-match implementation would release early. *)
        Inject.Plan.add_stall plan ~node:1 ~from_:0 ~until_:long;
        Inject.Plan.add_stall plan ~node:1 ~from_:0 ~until_:short)
      ()
  in
  Alcotest.(check bool) "held until the longest window ends" true
    (arrival >= long)

let test_inverted_stall_rejected () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let plan = Inject.Plan.create ~seed:21 eng in
  Alcotest.check_raises "until_ < from_ is a caller bug"
    (Invalid_argument "Plan.add_stall: until_ < from_") (fun () ->
      Inject.Plan.add_stall plan ~node:1 ~from_:(Time.us 10)
        ~until_:(Time.us 5))

(* --- retry: recovery and giving up ------------------------------------- *)

let policy ~tries =
  {
    Msg.Rpc.max_tries = tries;
    base_timeout = Time.us 50;
    backoff_factor = 2;
    max_timeout = Time.ms 1;
  }

let test_retry_recovers () =
  let m, fabric, rpc = mk_echo () in
  let eng = m.Hw.Machine.eng in
  let plan = Inject.Plan.create ~seed:16 eng in
  Inject.Plan.attach plan fabric;
  (* Requests 0->1 are certain losses until the outage "heals" at 120us;
     with 50us/100us/200us attempt timeouts the third attempt lands. *)
  Inject.Plan.set_link plan ~src:0 ~dst:1 (only_drop 1.0);
  Engine.schedule eng ~after:(Time.us 120) (fun () ->
      Inject.Plan.set_link plan ~src:0 ~dst:1 Inject.Plan.zero);
  let result = ref None in
  Engine.spawn eng (fun () ->
      result :=
        Msg.Rpc.call_retry rpc ~policy:(policy ~tries:5)
          (fun ~attempt:_ ticket ->
            Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Req { ticket })));
  Engine.run eng;
  (match !result with
  | Some (Resp _) -> ()
  | _ -> Alcotest.fail "retry did not recover");
  let s = Msg.Rpc.retry_stats rpc in
  Alcotest.(check bool) "retransmitted" true (s.Msg.Rpc.retried >= 2);
  Alcotest.(check int) "recovered once" 1 s.Msg.Rpc.recovered;
  Alcotest.(check int) "never gave up" 0 s.Msg.Rpc.gave_up;
  Alcotest.(check bool) "drops recorded" true
    ((Inject.Plan.stats plan).Inject.Plan.drops >= 2)

let test_retry_gives_up () =
  let m, fabric, rpc = mk_echo () in
  let eng = m.Hw.Machine.eng in
  let plan = Inject.Plan.create ~seed:17 eng in
  Inject.Plan.attach plan fabric;
  Inject.Plan.set_link plan ~src:0 ~dst:1 (only_drop 1.0);
  let result = ref (Some (Ping 0)) in
  Engine.spawn eng (fun () ->
      result :=
        Msg.Rpc.call_retry rpc ~policy:(policy ~tries:2)
          (fun ~attempt:_ ticket ->
            Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Req { ticket })));
  Engine.run eng;
  Alcotest.(check bool) "gave up" true (!result = None);
  let s = Msg.Rpc.retry_stats rpc in
  Alcotest.(check int) "one give-up" 1 s.Msg.Rpc.gave_up;
  Alcotest.(check int) "no recovery" 0 s.Msg.Rpc.recovered;
  Alcotest.(check int) "no ticket leaked" 0 (Msg.Rpc.pending rpc)

(* The plan's faults end mid-RPC — the outage link rates are cleared and
   the whole plan detached while a retried call is still parked. The
   in-flight retry machinery must simply recover on its next attempt. *)
let test_plan_detach_mid_rpc () =
  let m, fabric, rpc = mk_echo () in
  let eng = m.Hw.Machine.eng in
  let plan = Inject.Plan.create ~seed:22 eng in
  Inject.Plan.attach plan fabric;
  Inject.Plan.set_link plan ~src:0 ~dst:1 (only_drop 1.0);
  Engine.schedule eng ~after:(Time.us 120) (fun () ->
      Inject.Plan.detach fabric);
  let result = ref None in
  Engine.spawn eng (fun () ->
      result :=
        Msg.Rpc.call_retry rpc ~policy:(policy ~tries:5)
          (fun ~attempt:_ ticket ->
            Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Req { ticket })));
  Engine.run eng;
  (match !result with
  | Some (Resp _) -> ()
  | _ -> Alcotest.fail "rpc did not survive mid-call detach");
  let s = Msg.Rpc.retry_stats rpc in
  Alcotest.(check int) "recovered once" 1 s.Msg.Rpc.recovered;
  Alcotest.(check int) "no ticket leaked" 0 (Msg.Rpc.pending rpc)

(* --- raw IPI faults ----------------------------------------------------- *)

let test_ipi_drop () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let ipi = Hw.Ipi.create eng m.Hw.Machine.params m.Hw.Machine.topo in
  let plan = Inject.Plan.create ~seed:18 eng in
  Inject.Plan.set_default_rates plan
    { Inject.Plan.zero with Inject.Plan.doorbell_loss = 1.0 };
  Inject.Plan.attach_ipi plan ipi;
  let ran = ref false in
  Engine.spawn eng (fun () ->
      Hw.Ipi.send ipi ~src:0 ~dst:4 (fun () -> ran := true));
  Engine.run eng;
  Alcotest.(check bool) "handler never ran" false !ran;
  Alcotest.(check int) "ipi counted dropped" 1 (Hw.Ipi.dropped ipi);
  Alcotest.(check int) "plan agrees" 1
    (Inject.Plan.stats plan).Inject.Plan.ipi_drops

(* --- determinism -------------------------------------------------------- *)

(* Same (seed, rates) on the same workload: identical fault schedule,
   identical outcome. *)
let faulty_run () =
  let m, fabric, rpc = mk_echo () in
  let eng = m.Hw.Machine.eng in
  let plan = Inject.Plan.create ~seed:42 eng in
  Inject.Plan.attach plan fabric;
  Inject.Plan.set_default_rates plan
    {
      Inject.Plan.drop = 0.2;
      duplicate = 0.3;
      delay = 0.3;
      delay_max = Time.us 10;
      doorbell_loss = 0.2;
      doorbell_recovery = Time.us 20;
    };
  let ok = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 20 do
        match
          Msg.Rpc.call_retry rpc ~policy:(policy ~tries:6)
            (fun ~attempt:_ ticket ->
              Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Req { ticket }))
        with
        | Some _ -> incr ok
        | None -> ()
      done);
  Engine.run eng;
  (Engine.now eng, !ok, Inject.Plan.stats plan, Msg.Transport.stats fabric)

let test_determinism () =
  let a = faulty_run () in
  let b = faulty_run () in
  Alcotest.(check bool) "identical faulty runs" true (a = b);
  let _, _, st, _ = a in
  Alcotest.(check bool) "faults actually injected" true
    (st.Inject.Plan.drops + st.Inject.Plan.duplicates + st.Inject.Plan.delays
     > 0)

(* --- graceful degradation: origin fallback ------------------------------ *)

let test_origin_fallback () =
  let opts =
    {
      Popcorn.Types.default_options with
      Popcorn.Types.migration_retry = Some (policy ~tries:2);
    }
  in
  let machine = Hw.Machine.create ~sockets:2 ~cores_per_socket:8 () in
  let cluster =
    Popcorn.Cluster.boot ~opts machine ~kernels:4 ~cores_per_kernel:4
  in
  let eng = machine.Hw.Machine.eng in
  let plan = Inject.Plan.create eng in
  Inject.Plan.attach plan cluster.Popcorn.Types.fabric;
  let b_ref = ref None in
  let kernel_after = ref (-1) in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Popcorn.Api.start_process cluster ~origin:0 (fun th ->
            Popcorn.Api.compute th (Time.us 5);
            (* Sever the origin->destination link: every migration request
               (and its retransmissions) is lost. *)
            Inject.Plan.set_link plan ~src:0 ~dst:1 (only_drop 1.0);
            let b = Popcorn.Api.migrate th ~dst:1 in
            b_ref := Some b;
            kernel_after := (Popcorn.Api.current_kernel th).Popcorn.Types.kid;
            Inject.Plan.set_link plan ~src:0 ~dst:1 Inject.Plan.zero;
            (* The thread must still be runnable on its origin kernel. *)
            Popcorn.Api.compute th (Time.us 5))
      in
      Popcorn.Api.wait_exit cluster proc);
  Sim.Engine.run eng;
  (match !b_ref with
  | None -> Alcotest.fail "thread never finished the migrate call"
  | Some b ->
      Alcotest.(check bool) "migration reported failed" false
        b.Popcorn.Migration.migrated;
      Alcotest.(check bool) "fallback still costs time" true
        (b.Popcorn.Migration.total_ns > 0));
  Alcotest.(check int) "thread stayed on origin kernel" 0 !kernel_after;
  let s =
    Msg.Rpc.retry_stats cluster.Popcorn.Types.kernels.(0).Popcorn.Types.rpc
  in
  Alcotest.(check int) "migration rpc gave up once" 1 s.Msg.Rpc.gave_up;
  Alcotest.(check bool) "requests were dropped" true
    ((Inject.Plan.stats plan).Inject.Plan.drops >= 2)

let () =
  Alcotest.run "inject"
    [
      ( "identity",
        [
          Alcotest.test_case "zero-rate plan is bit-identical" `Quick
            test_zero_rate_identity;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "duplicate + suppression" `Quick
            test_duplicate_suppression;
          Alcotest.test_case "delay" `Quick test_delay;
          Alcotest.test_case "doorbell loss" `Quick test_doorbell_loss;
          Alcotest.test_case "kernel stall window" `Quick test_stall_window;
          Alcotest.test_case "raw ipi drop" `Quick test_ipi_drop;
        ] );
      ( "stall edges",
        [
          Alcotest.test_case "zero-length window is inert" `Quick
            test_zero_length_stall;
          Alcotest.test_case "overlapping windows hold to the longest" `Quick
            test_overlapping_stalls;
          Alcotest.test_case "inverted window rejected" `Quick
            test_inverted_stall_rejected;
        ] );
      ( "retry",
        [
          Alcotest.test_case "recovers after outage" `Quick
            test_retry_recovers;
          Alcotest.test_case "gives up when exhausted" `Quick
            test_retry_gives_up;
          Alcotest.test_case "plan detached mid-rpc" `Quick
            test_plan_detach_mid_rpc;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same schedule" `Quick
            test_determinism;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "migration falls back to origin" `Quick
            test_origin_fallback;
        ] );
    ]
