(* Tests for the inter-kernel messaging layer: transport, RPC, gather. *)

open Sim

type proto = Ping of int | Req of { ticket : int } | Resp of { ticket : int }

let mk_machine () = Hw.Machine.create ~sockets:2 ~cores_per_socket:4 ()

let test_transport_delivery () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let got = ref [] in
  let fabric =
    Msg.Transport.create m ~ring_slots:16 ~handler:(fun _t ~dst ~src _d p ->
        match p with Ping i -> got := (src, dst, i) :: !got | _ -> ())
  in
  Msg.Transport.add_node fabric 0 ~home_core:0;
  Msg.Transport.add_node fabric 1 ~home_core:4;
  Engine.spawn eng (fun () ->
      for i = 1 to 3 do
        Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Ping i)
      done);
  Engine.run eng;
  Alcotest.(check (list (triple int int int)))
    "delivered in order"
    [ (0, 1, 1); (0, 1, 2); (0, 1, 3) ]
    (List.rev !got);
  let st = Msg.Transport.stats fabric in
  Alcotest.(check int) "sent" 3 st.Msg.Transport.sent;
  Alcotest.(check int) "delivered" 3 st.Msg.Transport.delivered;
  Alcotest.(check bool) "doorbells <= sent" true
    (st.Msg.Transport.doorbells <= st.Msg.Transport.sent)

let test_transport_latency_positive () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let arrival = ref 0 in
  let fabric =
    Msg.Transport.create m ~ring_slots:16 ~handler:(fun _t ~dst:_ ~src:_ _ _ ->
        arrival := Engine.now eng)
  in
  Msg.Transport.add_node fabric 0 ~home_core:0;
  Msg.Transport.add_node fabric 1 ~home_core:4;
  Engine.spawn eng (fun () ->
      Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Ping 0));
  Engine.run eng;
  (* At least IPI + irq entry. *)
  Alcotest.(check bool) "doorbell cost" true (!arrival > Time.ns 1500)

let test_transport_backpressure () =
  (* A tiny ring with a handler that never finishes draining quickly:
     senders must block rather than overflow. *)
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let handled = ref 0 in
  let fabric =
    Msg.Transport.create m ~ring_slots:2 ~handler:(fun _t ~dst:_ ~src:_ _ _ ->
        incr handled)
  in
  Msg.Transport.add_node fabric 0 ~home_core:0;
  Msg.Transport.add_node fabric 1 ~home_core:1;
  let sent = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 50 do
        Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Ping 0);
        incr sent
      done);
  Engine.run eng;
  Alcotest.(check int) "all eventually delivered" 50 !handled;
  Alcotest.(check int) "all sent" 50 !sent

let test_rpc_roundtrip () =
  let m = mk_machine () in
  let eng = m.Hw.Machine.eng in
  let rpc : proto Msg.Rpc.t = Msg.Rpc.create eng in
  let fabric_ref = ref None in
  let fabric =
    Msg.Transport.create m ~ring_slots:16 ~handler:(fun _t ~dst ~src _d p ->
        let fabric = Option.get !fabric_ref in
        match p with
        | Req { ticket } ->
            Msg.Transport.send fabric ~src:dst ~dst:src ~bytes:64
              (Resp { ticket })
        | Resp { ticket } -> Msg.Rpc.complete rpc ~ticket p
        | _ -> ())
  in
  fabric_ref := Some fabric;
  Msg.Transport.add_node fabric 0 ~home_core:0;
  Msg.Transport.add_node fabric 1 ~home_core:4;
  let ok = ref false in
  Engine.spawn eng (fun () ->
      match
        Msg.Rpc.call rpc (fun ticket ->
            Msg.Transport.send fabric ~src:0 ~dst:1 ~bytes:64 (Req { ticket }))
      with
      | Resp _ -> ok := true
      | _ -> ());
  Engine.run eng;
  Alcotest.(check bool) "resp received" true !ok;
  Alcotest.(check int) "no pending" 0 (Msg.Rpc.pending rpc)

let test_rpc_immediate_completion () =
  (* A response arriving while the caller is still inside [send] must be
     buffered, not lost. *)
  let eng = Engine.create () in
  let rpc : int Msg.Rpc.t = Msg.Rpc.create eng in
  let got = ref 0 in
  Engine.spawn eng (fun () ->
      got := Msg.Rpc.call rpc (fun ticket -> Msg.Rpc.complete rpc ~ticket 99));
  Engine.run eng;
  Alcotest.(check int) "buffered response" 99 !got

let test_rpc_timeout_and_stale () =
  let eng = Engine.create () in
  let rpc : int Msg.Rpc.t = Msg.Rpc.create eng in
  let result = ref (Some 0) in
  let the_ticket = ref 0 in
  Engine.spawn eng (fun () ->
      result :=
        Msg.Rpc.call_timeout rpc ~timeout:(Time.us 10) (fun ticket ->
            the_ticket := ticket));
  Engine.run eng;
  Alcotest.(check bool) "timed out" true (!result = None);
  (* A stale completion is dropped silently. *)
  Msg.Rpc.complete rpc ~ticket:!the_ticket 1;
  Alcotest.(check int) "no pending" 0 (Msg.Rpc.pending rpc)

let test_rpc_stale_ticket_vs_later_call () =
  (* A response that arrives after its call timed out must not complete a
     LATER call: the stale ticket was forgotten, and the new call has its
     own ticket. If stale completion leaked into the new call it would see
     666 (and the real response, 42, would then be dropped as unknown). *)
  let eng = Engine.create () in
  let rpc : int Msg.Rpc.t = Msg.Rpc.create eng in
  let first = ref (Some 0) in
  let stale_ticket = ref 0 in
  let second = ref 0 in
  Engine.spawn eng (fun () ->
      first :=
        Msg.Rpc.call_timeout rpc ~timeout:(Time.us 10) (fun ticket ->
            stale_ticket := ticket);
      second :=
        Msg.Rpc.call rpc (fun ticket ->
            (* The late response to the timed-out call lands first... *)
            Engine.schedule eng ~after:(Time.us 5) (fun () ->
                Msg.Rpc.complete rpc ~ticket:!stale_ticket 666);
            (* ...then the genuine response. *)
            Engine.schedule eng ~after:(Time.us 20) (fun () ->
                Msg.Rpc.complete rpc ~ticket 42)));
  Engine.run eng;
  Alcotest.(check bool) "first call timed out" true (!first = None);
  Alcotest.(check int) "second call got its own response" 42 !second;
  Alcotest.(check int) "no pending" 0 (Msg.Rpc.pending rpc)

let test_rpc_forget () =
  let eng = Engine.create () in
  let rpc : int Msg.Rpc.t = Msg.Rpc.create eng in
  let ticket = Msg.Rpc.register rpc (fun _ -> Alcotest.fail "must not run") in
  Alcotest.(check bool) "forgotten" true (Msg.Rpc.forget rpc ~ticket);
  Alcotest.(check bool) "already gone" false (Msg.Rpc.forget rpc ~ticket);
  Msg.Rpc.complete rpc ~ticket 5

let test_gather () =
  let eng = Engine.create () in
  let g = Msg.Gather.create eng ~expected:3 in
  let released = ref false in
  Engine.spawn eng (fun () ->
      Msg.Gather.wait g;
      released := true);
  Engine.schedule eng ~after:10 (fun () -> Msg.Gather.ack g);
  Engine.schedule eng ~after:20 (fun () -> Msg.Gather.ack g);
  Engine.run eng;
  Alcotest.(check bool) "not yet" false !released;
  Msg.Gather.ack g;
  Engine.run eng;
  Alcotest.(check bool) "released" true !released;
  Alcotest.check_raises "extra ack"
    (Invalid_argument "Gather.ack: more acks than expected") (fun () ->
      Msg.Gather.ack g)

let test_gather_zero () =
  let eng = Engine.create () in
  let g = Msg.Gather.create eng ~expected:0 in
  let released = ref false in
  Engine.spawn eng (fun () ->
      Msg.Gather.wait g;
      released := true);
  Engine.run eng;
  Alcotest.(check bool) "immediate" true !released

(* Property: every message is delivered exactly once, in per-ring order,
   even under receive-side jitter. *)
let prop_exactly_once_under_jitter =
  QCheck.Test.make ~name:"transport delivers exactly once under jitter"
    ~count:40
    QCheck.(pair (int_range 1 6) (int_range 1 30))
    (fun (senders, msgs) ->
      let m = mk_machine () in
      let eng = m.Hw.Machine.eng in
      let got : (int, int list) Hashtbl.t = Hashtbl.create 8 in
      let fabric =
        Msg.Transport.create m ~ring_slots:8 ~handler:(fun _t ~dst:_ ~src _d p ->
            match p with
            | Ping i ->
                let cur =
                  Option.value ~default:[] (Hashtbl.find_opt got src)
                in
                Hashtbl.replace got src (i :: cur)
            | _ -> ())
      in
      Msg.Transport.set_jitter fabric ~max_extra:(Time.us 5);
      Msg.Transport.add_node fabric 0 ~home_core:0;
      for s = 1 to senders do
        Msg.Transport.add_node fabric s ~home_core:(s mod 8)
      done;
      for s = 1 to senders do
        Engine.spawn eng (fun () ->
            for i = 1 to msgs do
              Msg.Transport.send fabric ~src:s ~dst:0 ~bytes:64 (Ping i)
            done)
      done;
      Engine.run eng;
      List.for_all
        (fun s ->
          match Hashtbl.find_opt got s with
          | Some l -> List.rev l = List.init msgs (fun i -> i + 1)
          | None -> msgs = 0)
        (List.init senders (fun i -> i + 1)))

(* Property: many concurrent RPCs all match their own ticket. *)
let prop_rpc_matching =
  QCheck.Test.make ~name:"concurrent rpcs match tickets" ~count:50
    QCheck.(int_range 1 30)
    (fun n ->
      let eng = Engine.create () in
      let rpc : int Msg.Rpc.t = Msg.Rpc.create eng in
      let ok = ref 0 in
      for i = 1 to n do
        Engine.spawn eng (fun () ->
            let v =
              Msg.Rpc.call rpc (fun ticket ->
                  Engine.schedule eng
                    ~after:(Prng.int (Engine.rng eng) 100 + 1)
                    (fun () -> Msg.Rpc.complete rpc ~ticket (i * 1000)))
            in
            if v = i * 1000 then incr ok)
      done;
      Engine.run eng;
      !ok = n)

let () =
  Alcotest.run "msg"
    [
      ( "transport",
        [
          Alcotest.test_case "delivery order + stats" `Quick
            test_transport_delivery;
          Alcotest.test_case "latency includes doorbell" `Quick
            test_transport_latency_positive;
          Alcotest.test_case "backpressure" `Quick test_transport_backpressure;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip over transport" `Quick
            test_rpc_roundtrip;
          Alcotest.test_case "immediate completion buffered" `Quick
            test_rpc_immediate_completion;
          Alcotest.test_case "timeout + stale drop" `Quick
            test_rpc_timeout_and_stale;
          Alcotest.test_case "stale ticket cannot complete later call" `Quick
            test_rpc_stale_ticket_vs_later_call;
          Alcotest.test_case "forget" `Quick test_rpc_forget;
        ] );
      ( "gather",
        [
          Alcotest.test_case "acks release waiter" `Quick test_gather;
          Alcotest.test_case "zero expected" `Quick test_gather_zero;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rpc_matching; prop_exactly_once_under_jitter ] );
    ]
