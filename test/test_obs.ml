(* Tests for the observability layer (lib/obs): metrics registry
   determinism, span nesting, exporters, and the guarantee that
   instrumentation never perturbs simulated time. *)

(* --- metrics registry --- *)

let test_metrics_basics () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "a";
  Obs.Metrics.incr m "a";
  Obs.Metrics.add m "a" 3;
  Obs.Metrics.incr m ~kernel:1 "a";
  Alcotest.(check int) "global counter" 5 (Obs.Metrics.counter m "a");
  Alcotest.(check int) "kernel counter" 1 (Obs.Metrics.counter m ~kernel:1 "a");
  Alcotest.(check int) "untouched counter" 0 (Obs.Metrics.counter m "nope");
  Obs.Metrics.set_gauge m "g" 1.5;
  Obs.Metrics.set_gauge m "g" 2.5;
  Alcotest.(check (float 1e-9)) "gauge latest wins" 2.5 (Obs.Metrics.gauge m "g");
  Obs.Metrics.observe m "h" 10.;
  Obs.Metrics.observe m "h" 20.;
  (match List.assoc ("h", None) (Obs.Metrics.rows m) with
  | Obs.Metrics.Hist { count; mean; max; _ } ->
      Alcotest.(check int) "hist count" 2 count;
      Alcotest.(check (float 1e-9)) "hist mean" 15. mean;
      Alcotest.(check (float 1e-9)) "hist max" 20. max
  | _ -> Alcotest.fail "expected a histogram view");
  (* A name registered as one kind cannot be read as another. *)
  Alcotest.(check bool) "wrong kind raises" true
    (try
       ignore (Obs.Metrics.counter m "g");
       false
     with Invalid_argument _ -> true);
  (* Exported histograms carry the full percentile ladder, p999
     included, and the view keeps it between p99 and the exact max. *)
  (match List.assoc ("h", None) (Obs.Metrics.rows m) with
  | Obs.Metrics.Hist { p99; p999; max; _ } ->
      Alcotest.(check bool) "p99 <= p999 <= max-with-bucket-error" true
        (p99 <= p999 && p999 <= max *. 1.1)
  | _ -> Alcotest.fail "expected a histogram view");
  let json = Obs.Json.to_string (Obs.Metrics.to_json m) in
  let has_sub sub s =
    let n = String.length s and q = String.length sub in
    let rec go i = i + q <= n && (String.sub s i q = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json carries p999" true (has_sub "\"p999\"" json)

let test_metrics_rows_deterministic () =
  (* Same metrics touched in two different orders: rows and JSON must be
     identical (sorted by (name, kernel), global scope first). *)
  let touch m order =
    List.iter
      (fun (name, kernel) ->
        match kernel with
        | None -> Obs.Metrics.incr m name
        | Some k -> Obs.Metrics.incr m ~kernel:k name)
      order
  in
  let keys =
    [ ("b", Some 2); ("a", None); ("b", None); ("a", Some 1); ("b", Some 0) ]
  in
  let m1 = Obs.Metrics.create () in
  touch m1 keys;
  let m2 = Obs.Metrics.create () in
  touch m2 (List.rev keys);
  let key_list m = List.map fst (Obs.Metrics.rows m) in
  Alcotest.(check (list (pair string (option int))))
    "sorted, global first"
    [ ("a", None); ("a", Some 1); ("b", None); ("b", Some 0); ("b", Some 2) ]
    (key_list m1);
  Alcotest.(check string) "identical JSON regardless of touch order"
    (Obs.Json.to_string (Obs.Metrics.to_json m1))
    (Obs.Json.to_string (Obs.Metrics.to_json m2))

(* --- JSON serialiser --- *)

let test_json () =
  Alcotest.(check string) "escaping" {|{"k":"a\"b\\c\nd"}|}
    (Obs.Json.to_string (Obs.Json.Obj [ ("k", Obs.Json.Str "a\"b\\c\nd") ]));
  Alcotest.(check string) "nan is null" "[null,null]"
    (Obs.Json.to_string
       (Obs.Json.Arr [ Obs.Json.Float Float.nan; Obs.Json.Float infinity ]));
  Alcotest.(check string) "integral float has no exponent" "2000"
    (Obs.Json.to_string (Obs.Json.Float 2e3));
  Alcotest.(check string) "nested" {|{"a":[1,true,"x"],"b":null}|}
    (Obs.Json.to_string
       (Obs.Json.Obj
          [
            ( "a",
              Obs.Json.Arr
                [ Obs.Json.Int 1; Obs.Json.Bool true; Obs.Json.Str "x" ] );
            ("b", Obs.Json.Null);
          ]))

(* --- span recorder --- *)

let test_span_nesting () =
  let rec_ = Obs.Span.create () in
  Obs.Span.new_run rec_;
  let mig = Obs.Span.start rec_ ~tid:7 ~kernel:0 ~at:100 Obs.Span.Migration in
  let cap =
    Obs.Span.start rec_ ~parent:mig.Obs.Span.id ~kernel:0 ~at:100
      Obs.Span.Context_capture
  in
  Obs.Span.finish cap ~at:150;
  let xfer =
    Obs.Span.start rec_ ~parent:mig.Obs.Span.id ~kernel:0 ~at:150
      Obs.Span.Transfer
  in
  Obs.Span.finish xfer ~at:400;
  Obs.Span.finish mig ~at:500;
  match Obs.Span.spans rec_ with
  | [ s_mig; s_cap; s_xfer ] ->
      Alcotest.(check bool) "creation order" true
        (s_mig.Obs.Span.id < s_cap.Obs.Span.id
        && s_cap.Obs.Span.id < s_xfer.Obs.Span.id);
      Alcotest.(check (option int)) "root has no parent" None s_mig.Obs.Span.parent;
      Alcotest.(check (option int)) "capture nests under migration"
        (Some s_mig.Obs.Span.id) s_cap.Obs.Span.parent;
      Alcotest.(check (option int)) "transfer nests under migration"
        (Some s_mig.Obs.Span.id) s_xfer.Obs.Span.parent;
      Alcotest.(check int) "closed at finish time" 500 s_mig.Obs.Span.stop;
      Alcotest.(check (option int)) "tid recorded" (Some 7) s_mig.Obs.Span.tid;
      Alcotest.(check int) "run stamped" 0 s_mig.Obs.Span.run;
      Alcotest.(check string) "kind name" "migration"
        (Obs.Span.kind_name s_mig.Obs.Span.kind)
  | spans ->
      Alcotest.failf "expected 3 spans, got %d" (List.length spans)

(* --- end-to-end: an instrumented migration workload --- *)

(* Two threads, each migrating once between two kernels; mirrors the
   `popcornsim metrics demo` shape at a smaller scale. Returns final
   simulated time. *)
let run_workload ?sink ~seed () =
  let machine = Hw.Machine.create ~seed ~sockets:1 ~cores_per_socket:4 () in
  let cluster = Popcorn.Cluster.boot machine ~kernels:2 ~cores_per_kernel:2 in
  (match sink with
  | None -> ()
  | Some (s : Obs.Sink.t) ->
      Hw.Machine.attach_obs machine ~metrics:s.Obs.Sink.metrics
        ~spans:s.Obs.Sink.spans ();
      Popcorn.Cluster.observe ~metrics:s.Obs.Sink.metrics
        ~tracer:s.Obs.Sink.trace cluster);
  let eng = machine.Hw.Machine.eng in
  Sim.Engine.spawn eng (fun () ->
      let proc =
        Popcorn.Api.start_process cluster ~origin:0 (fun th ->
            let latch = Workloads.Latch.create eng 2 in
            for i = 0 to 1 do
              ignore
                (Popcorn.Api.spawn th ~target:(i mod 2) (fun worker ->
                     Popcorn.Api.compute worker (Sim.Time.us 20);
                     ignore (Popcorn.Api.migrate worker ~dst:((i + 1) mod 2));
                     Popcorn.Api.compute worker (Sim.Time.us 20);
                     Workloads.Latch.arrive latch))
            done;
            Workloads.Latch.wait latch)
      in
      Popcorn.Api.wait_exit cluster proc);
  Sim.Engine.run eng;
  Sim.Engine.now eng

let sum_counter reg name =
  List.fold_left
    (fun acc ((n, _), view) ->
      match view with
      | Obs.Metrics.Counter v when n = name -> acc + v
      | _ -> acc)
    0 (Obs.Metrics.rows reg)

let test_migration_metrics () =
  let sink = Obs.Sink.create () in
  ignore (run_workload ~sink ~seed:42 ());
  let reg = sink.Obs.Sink.metrics in
  Alcotest.(check int) "migrations started" 2 (sum_counter reg "migration.started");
  Alcotest.(check int) "migrations completed" 2
    (sum_counter reg "migration.completed");
  Alcotest.(check int) "none failed" 0 (sum_counter reg "migration.failed");
  Alcotest.(check int) "imports mirror migrations" 2
    (sum_counter reg "migration.imported");
  Alcotest.(check int) "threads spawned" 2 (sum_counter reg "threads.spawned");
  Alcotest.(check bool) "messages flowed" true (sum_counter reg "msg.sent" > 0)

let test_migration_spans_nested () =
  let sink = Obs.Sink.create () in
  ignore (run_workload ~sink ~seed:42 ());
  let spans = Obs.Span.spans sink.Obs.Sink.spans in
  let of_kind k =
    List.filter (fun (s : Obs.Span.span) -> s.Obs.Span.kind = k) spans
  in
  let migs = of_kind Obs.Span.Migration in
  Alcotest.(check int) "one migration span per migrate" 2 (List.length migs);
  let mig_ids = List.map (fun (s : Obs.Span.span) -> s.Obs.Span.id) migs in
  List.iter
    (fun kind ->
      let children = of_kind kind in
      Alcotest.(check int)
        (Obs.Span.kind_name kind ^ " count")
        2 (List.length children);
      List.iter
        (fun (c : Obs.Span.span) ->
          match c.Obs.Span.parent with
          | Some p when List.mem p mig_ids -> ()
          | _ ->
              Alcotest.failf "%s span not nested under a migration"
                (Obs.Span.kind_name kind))
        children)
    [ Obs.Span.Context_capture; Obs.Span.Transfer; Obs.Span.Resume ];
  (* Import runs on the destination; it is a top-level span there. *)
  Alcotest.(check int) "imports" 2 (List.length (of_kind Obs.Span.Import));
  List.iter
    (fun (s : Obs.Span.span) ->
      Alcotest.(check bool) "span closed" true (s.Obs.Span.stop >= s.Obs.Span.start))
    spans

let test_observation_is_pure () =
  (* Attaching the full sink must not move simulated time: identical final
     clock with and without instrumentation. *)
  let bare = run_workload ~seed:42 () in
  let observed = run_workload ~sink:(Obs.Sink.create ()) ~seed:42 () in
  Alcotest.(check int) "identical simulated time" bare observed

let test_metrics_deterministic_across_runs () =
  (* Same seed, two separate runs: byte-identical metrics JSON. *)
  let once () =
    let sink = Obs.Sink.create () in
    ignore (run_workload ~sink ~seed:7 ());
    Obs.Json.to_string (Obs.Metrics.to_json sink.Obs.Sink.metrics)
  in
  Alcotest.(check string) "metrics JSON reproducible" (once ()) (once ())

(* --- Chrome trace export --- *)

let test_chrome_trace_export () =
  let sink = Obs.Sink.create () in
  ignore (run_workload ~sink ~seed:42 ());
  match Obs.Sink.chrome_trace sink with
  | Obs.Json.Obj fields ->
      Alcotest.(check (option string)) "displayTimeUnit"
        (Some "ns")
        (match List.assoc_opt "displayTimeUnit" fields with
        | Some (Obs.Json.Str s) -> Some s
        | _ -> None);
      let events =
        match List.assoc_opt "traceEvents" fields with
        | Some (Obs.Json.Arr evs) -> evs
        | _ -> Alcotest.fail "traceEvents must be an array"
      in
      let phase ev =
        match ev with
        | Obs.Json.Obj f -> (
            match List.assoc_opt "ph" f with
            | Some (Obs.Json.Str p) -> p
            | _ -> "?")
        | _ -> "?"
      in
      let complete = List.filter (fun e -> phase e = "X") events in
      let spans = Obs.Span.spans sink.Obs.Sink.spans in
      Alcotest.(check int) "one X event per span" (List.length spans)
        (List.length complete);
      Alcotest.(check bool) "process metadata present" true
        (List.exists (fun e -> phase e = "M") events);
      (* Every X event carries the required trace_event fields. *)
      List.iter
        (fun ev ->
          match ev with
          | Obs.Json.Obj f ->
              List.iter
                (fun key ->
                  Alcotest.(check bool) (key ^ " present") true
                    (List.mem_assoc key f))
                [ "name"; "pid"; "tid"; "ts"; "dur" ]
          | _ -> Alcotest.fail "event must be an object")
        complete
  | _ -> Alcotest.fail "chrome trace must be a JSON object"

let test_multi_run_tracks () =
  (* One recorder shared by two boots (as `--json` over a sweep does):
     runs must export to disjoint pid ranges. *)
  let sink = Obs.Sink.create () in
  ignore (run_workload ~sink ~seed:3 ());
  ignore (run_workload ~sink ~seed:3 ());
  let spans = Obs.Span.spans sink.Obs.Sink.spans in
  let runs =
    List.sort_uniq compare (List.map (fun (s : Obs.Span.span) -> s.Obs.Span.run) spans)
  in
  Alcotest.(check (list int)) "two distinct runs" [ 0; 1 ] runs

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "basics" `Quick test_metrics_basics;
          Alcotest.test_case "deterministic rows" `Quick
            test_metrics_rows_deterministic;
        ] );
      ("json", [ Alcotest.test_case "serialiser" `Quick test_json ]);
      ("spans", [ Alcotest.test_case "nesting" `Quick test_span_nesting ]);
      ( "end-to-end",
        [
          Alcotest.test_case "migration metrics" `Quick test_migration_metrics;
          Alcotest.test_case "migration spans nest" `Quick
            test_migration_spans_nested;
          Alcotest.test_case "observation is pure" `Quick
            test_observation_is_pure;
          Alcotest.test_case "deterministic across runs" `Quick
            test_metrics_deterministic_across_runs;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_export;
          Alcotest.test_case "multi-run tracks" `Quick test_multi_run_tracks;
        ] );
    ]
