(* Parallel-vs-serial equivalence — the headline guarantee of the explicit
   [Run_ctx] refactor. Every experiment owns its context, sink and
   machines, so scheduling the suite over domains must change nothing:
   the quick suite run with jobs=1 and jobs=4 yields, per experiment,
   identical rendered tables, identical metrics JSON, and identical
   span / causal-DAG digests. Host wall-clock is the one legitimate
   difference; it is stripped before comparing rendered output. *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let strip_host_ms s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         not
           (String.length line > 0
           && line.[0] = '('
           && contains ~affix:"ms host time" line))
  |> String.concat "\n"

let json_digest j = Digest.to_hex (Digest.string (Obs.Json.to_string j))

let suite ~jobs =
  Experiments.Registry.run_all ~quick:true ~observe:true ~jobs ()

let test_jobs_invariant () =
  let serial = suite ~jobs:1 in
  let parallel = suite ~jobs:4 in
  Alcotest.(check int) "experiment count"
    (List.length serial) (List.length parallel);
  List.iter2
    (fun (a : Experiments.Registry.outcome)
         (b : Experiments.Registry.outcome) ->
      let id = a.spec.Experiments.Registry.id in
      Alcotest.(check string)
        (id ^ ": registry order preserved")
        id b.spec.Experiments.Registry.id;
      Alcotest.(check string)
        (id ^ ": rendered tables identical")
        (strip_host_ms a.output) (strip_host_ms b.output);
      match (a.sink, b.sink) with
      | Some sa, Some sb ->
          Alcotest.(check string)
            (id ^ ": metrics JSON identical")
            (Obs.Json.to_string (Obs.Metrics.to_json sa.Obs.Sink.metrics))
            (Obs.Json.to_string (Obs.Metrics.to_json sb.Obs.Sink.metrics));
          Alcotest.(check string)
            (id ^ ": span digest identical")
            (json_digest
               (Obs.Critpath.ispans_to_json
                  (Obs.Critpath.ispans_of_recorder sa.Obs.Sink.spans)))
            (json_digest
               (Obs.Critpath.ispans_to_json
                  (Obs.Critpath.ispans_of_recorder sb.Obs.Sink.spans)));
          Alcotest.(check string)
            (id ^ ": causal-DAG digest identical")
            (json_digest (Obs.Causal.to_json sa.Obs.Sink.causal))
            (json_digest (Obs.Causal.to_json sb.Obs.Sink.causal))
      | _ -> Alcotest.failf "%s: observed run is missing its sink" id)
    serial parallel

(* The seed travels through Run_ctx into every machine an experiment
   boots: the same seed reproduces a run exactly, and the machine's RNG
   stream is the one the seed selects (i.e. Run_ctx.seed actually reaches
   Hw.Machine.create — it is not still hard-coded to 42 somewhere). *)
let test_seed_threaded () =
  let run seed =
    let o =
      Experiments.Registry.run_one ~quick:true ~seed
        (Option.get (Experiments.Registry.find "T2"))
    in
    strip_host_ms o.Experiments.Registry.output
  in
  Alcotest.(check string) "same seed, same tables" (run 7) (run 7);
  let draws seed =
    let m =
      Experiments.Common.machine (Experiments.Run_ctx.create ~seed ()) ()
    in
    let rng = Sim.Engine.rng m.Hw.Machine.eng in
    List.init 4 (fun _ -> Sim.Prng.int rng 1_000_000)
  in
  Alcotest.(check (list int)) "same seed, same rng stream"
    (draws 7) (draws 7);
  Alcotest.(check bool) "different seed, different rng stream" true
    (draws 7 <> draws 42)

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "jobs=4 == jobs=1 (quick suite)" `Slow
            test_jobs_invariant;
          Alcotest.test_case "seed threads through Run_ctx" `Quick
            test_seed_threaded;
        ] );
    ]
