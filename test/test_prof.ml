(* Profiling inertness — the contract that makes `popcornsim profile`
   safe to reach for: the observer only reads host clocks, GC counters and
   engine introspection, so simulated results are bit-identical with
   profiling on or off, serial or parallel. Plus attribution sanity: every
   processed event is attributed to exactly one label. *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

(* Host wall-clock (and the events/sec derived from it) is the one
   legitimate difference between runs; it lives on the "(ID: ... ms host
   time ...)" line, which is stripped before comparing. *)
let strip_host_ms s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         not
           (String.length line > 0
           && line.[0] = '('
           && contains ~affix:"ms host time" line))
  |> String.concat "\n"

let run ?observe ?profile id =
  Experiments.Registry.run_one ~quick:true ?observe ?profile
    (Option.get (Experiments.Registry.find id))

(* T1 exercises migration + messaging; R3 exercises coherence across
   protocols. Between them most event kinds in the simulator fire. *)
let test_profile_inert () =
  List.iter
    (fun id ->
      let off = run id in
      let on = run ~profile:true id in
      Alcotest.(check string)
        (id ^ ": tables identical with profiling on")
        (strip_host_ms off.Experiments.Registry.output)
        (strip_host_ms on.Experiments.Registry.output);
      Alcotest.(check int)
        (id ^ ": same event count")
        off.Experiments.Registry.events_processed
        on.Experiments.Registry.events_processed)
    [ "T1"; "R3" ]

(* Profiling composed with the metrics/spans sink: the exported metrics
   JSON (what the CI baseline digests) must not move either. *)
let test_profile_inert_observed () =
  let metrics_json (o : Experiments.Registry.outcome) =
    match o.sink with
    | Some s -> Obs.Json.to_string (Obs.Metrics.to_json s.Obs.Sink.metrics)
    | None -> Alcotest.fail "observed run is missing its sink"
  in
  let off = run ~observe:true "T2" in
  let on = run ~observe:true ~profile:true "T2" in
  Alcotest.(check string) "T2: metrics JSON identical with profiling on"
    (metrics_json off) (metrics_json on)

let test_attribution () =
  let o = run ~profile:true "T2" in
  let p =
    match o.Experiments.Registry.prof with
    | Some p -> p
    | None -> Alcotest.fail "profiled run is missing its profiler"
  in
  (* Every event the engines processed was attributed to exactly one
     label: the observer's count and the engines' counters agree, and the
     per-row self-times sum to the attributed total. *)
  Alcotest.(check int) "observer saw every event"
    o.Experiments.Registry.events_processed
    (Obs.Prof.total_events p);
  let rows = Obs.Prof.rows p in
  Alcotest.(check bool) "has labels" true (rows <> []);
  Alcotest.(check int) "rows sum to attributed total"
    (Obs.Prof.attributed_ns p)
    (List.fold_left (fun acc (r : Obs.Prof.row) -> acc + r.self_ns) 0 rows);
  Alcotest.(check int) "row event counts sum to total"
    (Obs.Prof.total_events p)
    (List.fold_left (fun acc (r : Obs.Prof.row) -> acc + r.events) 0 rows);
  List.iter
    (fun (r : Obs.Prof.row) ->
      if contains ~affix:"-" r.name && String.length r.name > 0 then
        (* Digit runs are collapsed, so per-instance names cannot leak. *)
        String.iter
          (fun c ->
            if c >= '0' && c <= '9' then
              Alcotest.failf "unnormalized label %S" r.name)
          r.name)
    rows;
  Alcotest.(check bool) "scheduler time non-negative" true
    (Obs.Prof.sched_ns p >= 0);
  Alcotest.(check bool) "took samples" true (Obs.Prof.samples p <> []);
  let report = Obs.Prof.report p ~host_ms:o.Experiments.Registry.host_ms ~top:5 in
  Alcotest.(check bool) "report balances to total" true
    (contains ~affix:"= total host time" report);
  let folded = Obs.Prof.folded p in
  Alcotest.(check bool) "folded includes dispatch" true
    (contains ~affix:"popcornsim;sim;[dispatch] " folded);
  let json =
    Obs.Json.to_string (Obs.Prof.to_json p ~host_ms:o.Experiments.Registry.host_ms)
  in
  Alcotest.(check bool) "json schema tagged" true
    (contains ~affix:"popcornsim-profile-v1" json)

(* The parallel suite stays bit-identical with profiling on: each run_one
   owns its profiler, so domains share nothing. *)
let test_jobs_profiled () =
  let suite jobs =
    Experiments.Registry.run_all ~quick:true ~profile:true ~jobs ()
  in
  let serial = suite 1 and parallel = suite 4 in
  List.iter2
    (fun (a : Experiments.Registry.outcome)
         (b : Experiments.Registry.outcome) ->
      Alcotest.(check string)
        (a.spec.Experiments.Registry.id ^ ": identical under jobs=4")
        (strip_host_ms a.output) (strip_host_ms b.output))
    serial parallel

let () =
  Alcotest.run "prof"
    [
      ( "inertness",
        [
          Alcotest.test_case "profiling off == on (tables)" `Slow
            test_profile_inert;
          Alcotest.test_case "profiling composes with sink (metrics)" `Slow
            test_profile_inert_observed;
          Alcotest.test_case "jobs=4 == jobs=1 with profiling on" `Slow
            test_jobs_profiled;
        ] );
      ( "attribution",
        [ Alcotest.test_case "accounts for every event" `Slow test_attribution ]
      );
    ]
