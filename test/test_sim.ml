(* Unit and property tests for the simulation engine. *)

open Sim

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Time.to_string (Time.ns 500));
  Alcotest.(check string) "us" "2.50us" (Time.to_string (Time.ns 2500));
  Alcotest.(check string) "ms" "1.500ms" (Time.to_string (Time.us 1500));
  Alcotest.(check string) "s" "2.000s" (Time.to_string (Time.s 2))

let test_engine_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~after:30 (fun () -> log := 3 :: !log);
  Engine.schedule eng ~after:10 (fun () -> log := 1 :: !log);
  Engine.schedule eng ~after:20 (fun () -> log := 2 :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_fifo_same_instant () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Engine.schedule eng ~after:5 (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list int))
    "fifo at same instant"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !log)

let test_sleep_advances_clock () =
  let eng = Engine.create () in
  let seen = ref (-1) in
  Engine.spawn eng (fun () ->
      Engine.sleep eng (Time.us 5);
      Engine.sleep eng (Time.us 7);
      seen := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "now" (Time.us 12) !seen

let test_run_until () =
  let eng = Engine.create () in
  let fired = ref 0 in
  Engine.schedule eng ~after:100 (fun () -> incr fired);
  Engine.schedule eng ~after:200 (fun () -> incr fired);
  Engine.run ~until:150 eng;
  Alcotest.(check int) "only first" 1 !fired;
  Alcotest.(check int) "clock clamped" 150 (Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "rest runs" 2 !fired

let test_suspend_resume () =
  let eng = Engine.create () in
  let resume_cell = ref None in
  let got = ref 0 in
  Engine.spawn eng (fun () ->
      let v = Engine.suspend eng (fun r -> resume_cell := Some r) in
      got := v);
  Engine.schedule eng ~after:50 (fun () ->
      match !resume_cell with Some r -> r 42 | None -> ());
  Engine.run eng;
  Alcotest.(check int) "value" 42 !got

let test_suspend_idempotent_resume () =
  let eng = Engine.create () in
  let resume_cell = ref None in
  let count = ref 0 in
  Engine.spawn eng (fun () ->
      let _ = Engine.suspend eng (fun r -> resume_cell := Some r) in
      incr count);
  Engine.schedule eng ~after:10 (fun () ->
      match !resume_cell with
      | Some r ->
          r 1;
          r 2;
          r 3
      | None -> ());
  Engine.run eng;
  Alcotest.(check int) "resumed once" 1 !count

let test_fiber_failure_propagates () =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"boom" (fun () -> failwith "bang");
  Alcotest.check_raises "fiber failure"
    (Engine.Fiber_failure ("boom", Failure "bang"))
    (fun () -> Engine.run eng)

let test_determinism () =
  let run_once () =
    let eng = Engine.create ~seed:7 () in
    let trace = Buffer.create 64 in
    for i = 1 to 5 do
      Engine.spawn eng (fun () ->
          Engine.sleep eng (Prng.int (Engine.rng eng) 100);
          Buffer.add_string trace (string_of_int i))
    done;
    Engine.run eng;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical runs" (run_once ()) (run_once ())

let test_mutex_exclusion () =
  let eng = Engine.create () in
  let m = Mutex.create eng in
  let inside = ref 0 and max_inside = ref 0 and done_count = ref 0 in
  for _ = 1 to 8 do
    Engine.spawn eng (fun () ->
        Mutex.lock m;
        incr inside;
        max_inside := max !max_inside !inside;
        Engine.sleep eng (Time.us 10);
        decr inside;
        Mutex.unlock m;
        incr done_count)
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  Alcotest.(check int) "all finished" 8 !done_count

let test_mutex_fifo () =
  let eng = Engine.create () in
  let m = Mutex.create eng in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      Mutex.lock m;
      Engine.sleep eng (Time.us 50);
      Mutex.unlock m);
  for i = 1 to 5 do
    Engine.schedule eng ~after:i (fun () ->
        Mutex.lock m;
        order := i :: !order;
        Mutex.unlock m)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo handoff" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_cond_signal_broadcast () =
  let eng = Engine.create () in
  let m = Mutex.create eng in
  let c = Cond.create eng in
  let woken = ref 0 in
  for _ = 1 to 4 do
    Engine.spawn eng (fun () ->
        Mutex.lock m;
        Cond.wait c m;
        incr woken;
        Mutex.unlock m)
  done;
  Engine.schedule eng ~after:10 (fun () -> Cond.signal c);
  Engine.schedule eng ~after:20 (fun () -> ignore (Cond.broadcast c));
  Engine.run eng;
  Alcotest.(check int) "all woken" 4 !woken

let test_cond_wait_timeout () =
  let eng = Engine.create () in
  let m = Mutex.create eng in
  let c = Cond.create eng in
  let result = ref `Signalled in
  Engine.spawn eng (fun () ->
      Mutex.lock m;
      result := Cond.wait_timeout c m ~timeout:(Time.us 10);
      Mutex.unlock m);
  Engine.run eng;
  Alcotest.(check bool) "timed out" true (!result = `Timed_out)

let test_semaphore () =
  let eng = Engine.create () in
  let s = Semaphore.create eng 2 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 6 do
    Engine.spawn eng (fun () ->
        Semaphore.acquire s;
        incr inside;
        max_inside := max !max_inside !inside;
        Engine.sleep eng (Time.us 5);
        decr inside;
        Semaphore.release s)
  done;
  Engine.run eng;
  Alcotest.(check int) "at most 2" 2 !max_inside

let test_channel_fifo () =
  let eng = Engine.create () in
  let ch = Channel.create eng ~capacity:4 in
  let received = ref [] in
  Engine.spawn eng (fun () ->
      for i = 1 to 10 do
        Channel.send ch i
      done);
  Engine.spawn eng (fun () ->
      for _ = 1 to 10 do
        let v = Channel.recv ch in
        received := v :: !received;
        Engine.sleep eng (Time.us 1)
      done);
  Engine.run eng;
  Alcotest.(check (list int))
    "in order"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !received)

let test_channel_backpressure () =
  let eng = Engine.create () in
  let ch = Channel.create eng ~capacity:2 in
  let sent = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 5 do
        Channel.send ch ();
        incr sent
      done);
  (* Before any recv, only [capacity] sends complete. *)
  Engine.run ~until:(Time.us 1) eng;
  Alcotest.(check int) "blocked at capacity" 2 !sent;
  Engine.spawn eng (fun () ->
      for _ = 1 to 5 do
        ignore (Channel.recv ch)
      done);
  Engine.run eng;
  Alcotest.(check int) "all sent" 5 !sent

let test_channel_recv_timeout () =
  let eng = Engine.create () in
  let ch : int Channel.t = Channel.create eng ~capacity:1 in
  let got = ref (Some 0) in
  Engine.spawn eng (fun () -> got := Channel.recv_timeout ch ~timeout:(Time.us 3));
  Engine.run eng;
  Alcotest.(check bool) "timeout" true (!got = None)

let test_waitq_cancel () =
  let eng = Engine.create () in
  let q : unit Waitq.t = Waitq.create () in
  let woken = ref [] in
  let entries = ref [] in
  Engine.spawn eng (fun () ->
      ignore q;
      ());
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Engine.suspend eng (fun resume ->
            entries := (i, Waitq.push q (fun () -> resume ())) :: !entries);
        woken := i :: !woken)
  done;
  Engine.schedule eng ~after:10 (fun () ->
      (* Cancel waiter 2, wake one: waiter 1 gets it; wake again: 3. *)
      (match List.assoc_opt 2 !entries with
      | Some e -> Waitq.cancel e
      | None -> ());
      ignore (Waitq.wake_one q ());
      ignore (Waitq.wake_one q ()));
  Engine.run eng;
  Alcotest.(check (list int)) "cancelled skipped" [ 1; 3 ] (List.rev !woken)

let test_barrier_rounds () =
  let eng = Engine.create () in
  let b = Barrier.create eng ~parties:4 in
  let leaders = ref 0 and released = ref 0 in
  for i = 1 to 8 do
    Engine.schedule eng ~after:(i * 10) (fun () ->
        (match Barrier.wait b with
        | `Leader -> incr leaders
        | `Follower -> ());
        incr released)
  done;
  Engine.run eng;
  Alcotest.(check int) "two rounds" 2 (Barrier.rounds b);
  Alcotest.(check int) "one leader per round" 2 !leaders;
  Alcotest.(check int) "all released" 8 !released

let test_barrier_blocks_until_full () =
  let eng = Engine.create () in
  let b = Barrier.create eng ~parties:3 in
  let through = ref 0 in
  for _ = 1 to 2 do
    Engine.spawn eng (fun () ->
        ignore (Barrier.wait b);
        incr through)
  done;
  Engine.run eng;
  Alcotest.(check int) "held at 2/3" 0 !through;
  Engine.spawn eng (fun () -> ignore (Barrier.wait b));
  Engine.run eng;
  Alcotest.(check int) "released" 2 !through

let test_trace_ring () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.emit tr ~at:(i * 10) ~cat:(if i mod 2 = 0 then "even" else "odd")
      (string_of_int i)
  done;
  Alcotest.(check int) "retained" 4 (Trace.count tr);
  Alcotest.(check int) "total" 6 (Trace.total tr);
  let msgs = List.map (fun e -> e.Trace.msg) (Trace.events tr) in
  Alcotest.(check (list string)) "oldest dropped" [ "3"; "4"; "5"; "6" ] msgs;
  let evens = Trace.events ~cat:"even" tr in
  Alcotest.(check (list string)) "filter" [ "4"; "6" ]
    (List.map (fun e -> e.Trace.msg) evens);
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.count tr)

let test_trace_prefix () =
  let tr = Trace.create () in
  Trace.emit tr ~at:10 ~cat:"migration.save" "a";
  Trace.emit tr ~at:20 ~cat:"migration.send" "b";
  Trace.emit tr ~at:30 ~cat:"futex.wait" "c";
  Trace.emit tr ~at:40 ~cat:"migration.send" "d";
  let msgs ?cat ?prefix () =
    List.map (fun e -> e.Trace.msg) (Trace.events ?cat ?prefix tr)
  in
  Alcotest.(check (list string)) "prefix filter" [ "a"; "b"; "d" ]
    (msgs ~prefix:"migration." ());
  Alcotest.(check (list string)) "prefix misses exact-only cats" [ "c" ]
    (msgs ~prefix:"futex" ());
  Alcotest.(check (list string)) "empty prefix keeps all" [ "a"; "b"; "c"; "d" ]
    (msgs ~prefix:"" ());
  Alcotest.(check (list string)) "no match" [] (msgs ~prefix:"zzz" ());
  (* Both filters compose: exact category AND prefix. *)
  Alcotest.(check (list string)) "cat + prefix" [ "b"; "d" ]
    (msgs ~cat:"migration.send" ~prefix:"migration." ());
  Alcotest.(check (list string)) "cat + contradictory prefix" []
    (msgs ~cat:"migration.send" ~prefix:"futex" ())

let test_trace_overflow () =
  (* Many wraparounds: [total] keeps counting while [count]/[events] stay
     bounded by the capacity and hold exactly the newest events. *)
  let cap = 8 in
  let n = 1000 in
  let tr = Trace.create ~capacity:cap () in
  for i = 1 to n do
    Trace.emit tr ~at:i ~cat:"c" (string_of_int i);
    (* Mid-stream invariants: total is exactly monotone (one per emit)
       while count saturates at the ring capacity. *)
    assert (Trace.total tr = i);
    assert (Trace.count tr = min i cap)
  done;
  Alcotest.(check int) "total counts every emit" n (Trace.total tr);
  Alcotest.(check int) "count bounded by capacity" cap (Trace.count tr);
  let msgs = List.map (fun e -> e.Trace.msg) (Trace.events tr) in
  Alcotest.(check int) "events bounded by capacity" cap (List.length msgs);
  Alcotest.(check (list string))
    "exactly the newest events survive"
    (List.init cap (fun i -> string_of_int (n - cap + 1 + i)))
    msgs;
  (* Overflow then clear: counters reset, ring reusable. *)
  Trace.clear tr;
  Alcotest.(check int) "cleared count" 0 (Trace.count tr);
  Trace.emit tr ~at:(n + 1) ~cat:"c" "again";
  Alcotest.(check int) "usable after clear" 1 (Trace.count tr)

let test_trace_chronological () =
  let tr = Trace.create () in
  Trace.emit tr ~at:30 ~cat:"c" "late";
  Trace.emit tr ~at:10 ~cat:"c" "early";
  (* Insertion order is preserved (the engine only moves forward, so
     insertion order is time order in practice). *)
  Alcotest.(check (list string)) "insertion order" [ "late"; "early" ]
    (List.map (fun e -> e.Trace.msg) (Trace.events tr))

(* Scheduler introspection: the counters the profiler samples. All of them
   are maintained unconditionally, so these tests need no observer. *)

let test_eheap_high_water () =
  let h = Eheap.create () in
  Alcotest.(check int) "empty" 0 (Eheap.length h);
  for i = 1 to 5 do
    Eheap.push h ~at:i ~seq:i i
  done;
  Alcotest.(check int) "length tracks pushes" 5 (Eheap.length h);
  ignore (Eheap.pop h);
  ignore (Eheap.pop h);
  Alcotest.(check int) "length tracks pops" 3 (Eheap.length h);
  Alcotest.(check int) "high-water survives pops" 5 (Eheap.max_length h);
  for i = 6 to 12 do
    Eheap.push h ~at:i ~seq:i i
  done;
  (* 3 remaining + 7 new = 10, a new high-water mark. *)
  Alcotest.(check int) "high-water advances" 10 (Eheap.max_length h)

let test_engine_queue_depth () =
  let eng = Engine.create () in
  Engine.schedule eng ~after:10 (fun () -> ());
  Engine.schedule eng ~after:20 (fun () -> ());
  Engine.schedule eng ~after:30 (fun () -> ());
  Alcotest.(check int) "depth before run" 3 (Engine.queue_length eng);
  Engine.run eng;
  Alcotest.(check int) "drained" 0 (Engine.queue_length eng);
  Alcotest.(check int) "high-water survives the run" 3
    (Engine.queue_max_length eng);
  Alcotest.(check int) "events processed" 3 (Engine.events_processed eng)

let test_park_resume_counters () =
  let eng = Engine.create () in
  let resume_cell = ref None in
  Engine.spawn eng (fun () ->
      (* Sleeping is not parking: only [suspend] counts. *)
      Engine.sleep eng (Time.us 1);
      ignore (Engine.suspend eng (fun r -> resume_cell := Some r)));
  Engine.schedule eng ~after:(Time.us 10) (fun () ->
      match !resume_cell with
      | Some r ->
          r 1;
          (* Extra fires are idempotent and must not double-count. *)
          r 2
      | None -> ());
  Engine.run eng;
  Alcotest.(check int) "one park" 1 (Engine.parks eng);
  Alcotest.(check int) "one resume" 1 (Engine.resumes eng)

let test_waitq_dead_occupancy () =
  let eng = Engine.create () in
  let q : unit Waitq.t = Waitq.create ~eng () in
  let entries = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Engine.suspend eng (fun resume ->
            entries := (i, Waitq.push q (fun () -> resume ())) :: !entries))
  done;
  Engine.schedule eng ~after:10 (fun () ->
      (match List.assoc_opt 2 !entries with
      | Some e ->
          Waitq.cancel e;
          (* Cancelling twice counts once. *)
          Waitq.cancel e
      | None -> ());
      Alcotest.(check int) "queue-level dead count" 1 (Waitq.dead_count q);
      Alcotest.(check int) "engine aggregate" 1 (Engine.waitq_dead eng);
      (* Waking drains past the dead entry, reclaiming it. *)
      ignore (Waitq.wake_one q ());
      ignore (Waitq.wake_one q ());
      Alcotest.(check int) "dead entry purged" 0 (Waitq.dead_count q);
      Alcotest.(check int) "engine aggregate drops" 0 (Engine.waitq_dead eng);
      Alcotest.(check int) "high-water survives" 1 (Engine.waitq_dead_max eng));
  Engine.run eng

let test_waitq_compaction () =
  (* Dead entries must not accumulate: once they outnumber the live
     waiters, cancel itself compacts the queue — dead_count drops without
     any wake having drained past the corpses. *)
  let eng = Engine.create () in
  let q : unit Waitq.t = Waitq.create ~eng () in
  let entries = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Engine.suspend eng (fun resume ->
            entries := (i, Waitq.push q (fun () -> resume ())) :: !entries))
  done;
  Engine.schedule eng ~after:10 (fun () ->
      let cancel i = Waitq.cancel (List.assoc i !entries) in
      cancel 1;
      (* 1 dead of 3 slots: below the threshold, still lazily retained. *)
      Alcotest.(check int) "one dead retained" 1 (Waitq.dead_count q);
      cancel 3;
      (* 2 dead of 3 slots trips 2*dead > slots: compacted on the spot. *)
      Alcotest.(check int) "compaction ran" 0 (Waitq.dead_count q);
      Alcotest.(check int) "engine aggregate dropped" 0
        (Engine.waitq_dead eng);
      Alcotest.(check int) "live waiter survives" 1 (Waitq.length q);
      (* The surviving waiter is intact and wakeable. *)
      Alcotest.(check bool) "wake survivor" true (Waitq.wake_one q ());
      Alcotest.(check bool) "queue empty" true (Waitq.is_empty q));
  Engine.run eng;
  (* The second cancel counts before compaction reclaims both corpses,
     so the high-water saw 2. *)
  Alcotest.(check int) "dead high-water survives" 2
    (Engine.waitq_dead_max eng)

let test_chan_queued_gauge () =
  let eng = Engine.create () in
  let ch = Channel.create eng ~capacity:4 in
  Engine.spawn eng (fun () ->
      for i = 1 to 3 do
        Channel.send ch i
      done);
  Engine.run eng;
  Alcotest.(check int) "buffered items" 3 (Engine.chan_queued eng);
  Alcotest.(check int) "high-water" 3 (Engine.chan_queued_max eng);
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        ignore (Channel.recv ch)
      done);
  Engine.run eng;
  Alcotest.(check int) "drained" 0 (Engine.chan_queued eng);
  Alcotest.(check int) "high-water survives drain" 3
    (Engine.chan_queued_max eng)

(* Property tests *)

let prop_heap_ordering =
  QCheck.Test.make ~name:"eheap pops in (time, seq) order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let h = Eheap.create () in
      List.iteri (fun i at -> Eheap.push h ~at ~seq:i i) times;
      let rec drain prev acc =
        match Eheap.pop h with
        | None -> List.rev acc
        | Some (at, seq, _) ->
            (match prev with
            | Some (pat, pseq) ->
                if at < pat || (at = pat && seq < pseq) then
                  QCheck.Test.fail_report "heap order violated"
            | None -> ());
            drain (Some (at, seq)) ((at, seq) :: acc)
      in
      let order = drain None [] in
      List.length order = List.length times)

let prop_prng_deterministic =
  QCheck.Test.make ~name:"prng deterministic from seed" ~count:100
    QCheck.int (fun seed ->
      let a = Prng.create ~seed and b = Prng.create ~seed in
      List.init 20 (fun _ -> Prng.bits64 a)
      = List.init 20 (fun _ -> Prng.bits64 b))

let prop_prng_bounds =
  QCheck.Test.make ~name:"prng int_in bounds" ~count:500
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Prng.create ~seed:(a + b) in
      let v = Prng.int_in rng lo hi in
      lo <= v && v <= hi)

let prop_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(list int)
    (fun l ->
      let rng = Prng.create ~seed:17 in
      let a = Array.of_list l in
      Prng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [ Alcotest.test_case "pretty printing" `Quick test_time_pp ] );
      ( "engine",
        [
          Alcotest.test_case "event ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-instant fifo" `Quick
            test_engine_fifo_same_instant;
          Alcotest.test_case "sleep advances clock" `Quick
            test_sleep_advances_clock;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "resume idempotent" `Quick
            test_suspend_idempotent_resume;
          Alcotest.test_case "fiber failure propagates" `Quick
            test_fiber_failure_propagates;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "sync",
        [
          Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
          Alcotest.test_case "mutex fifo" `Quick test_mutex_fifo;
          Alcotest.test_case "cond signal/broadcast" `Quick
            test_cond_signal_broadcast;
          Alcotest.test_case "cond timeout" `Quick test_cond_wait_timeout;
          Alcotest.test_case "semaphore" `Quick test_semaphore;
          Alcotest.test_case "waitq cancel" `Quick test_waitq_cancel;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "rounds + leader" `Quick test_barrier_rounds;
          Alcotest.test_case "blocks until full" `Quick
            test_barrier_blocks_until_full;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring + filter" `Quick test_trace_ring;
          Alcotest.test_case "prefix filter" `Quick test_trace_prefix;
          Alcotest.test_case "overflow keeps newest" `Quick
            test_trace_overflow;
          Alcotest.test_case "order" `Quick test_trace_chronological;
        ] );
      ( "channel",
        [
          Alcotest.test_case "fifo" `Quick test_channel_fifo;
          Alcotest.test_case "backpressure" `Quick test_channel_backpressure;
          Alcotest.test_case "recv timeout" `Quick test_channel_recv_timeout;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "eheap high-water" `Quick test_eheap_high_water;
          Alcotest.test_case "engine queue depth" `Quick
            test_engine_queue_depth;
          Alcotest.test_case "park/resume counters" `Quick
            test_park_resume_counters;
          Alcotest.test_case "waitq dead occupancy" `Quick
            test_waitq_dead_occupancy;
          Alcotest.test_case "waitq compaction" `Quick
            test_waitq_compaction;
          Alcotest.test_case "channel queued gauge" `Quick
            test_chan_queued_gauge;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_heap_ordering;
            prop_prng_deterministic;
            prop_prng_bounds;
            prop_shuffle_permutes;
          ] );
    ]
